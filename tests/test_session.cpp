// Steppable Session API: snapshot/restore round trips (DESIGN.md §16).
//
// The golden test interrupts a storm-profile lookahead run mid-horizon,
// snapshots, restores under thread counts 1 and 4, and requires every
// output surface — summary JSON, Prometheus exposition, event JSONL — to
// be byte-identical to the uninterrupted run.  Negative-space tests pin
// the checkpoint validator: truncations, corrupt bytes, and scenario
// mismatches must all be rejected with std::invalid_argument.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/report.h"
#include "src/core/session.h"
#include "src/faults/profiles.h"
#include "src/obs/events.h"
#include "src/obs/metrics.h"

namespace dgs::core {
namespace {

const util::Epoch kT0(util::DateTime{2020, 11, 4, 0, 0, 0.0});

struct Scenario {
  std::vector<groundseg::SatelliteConfig> sats;
  std::vector<groundseg::GroundStation> stations;
  SimulationOptions opts;
};

// Storm faults + hourly lookahead replanning: the hardest trajectory to
// reproduce, exercising fault masks, horizon plans, and replans.
Scenario golden_scenario() {
  groundseg::NetworkOptions net;
  net.num_stations = 12;
  net.num_satellites = 8;
  net.seed = 13;
  Scenario s;
  s.sats = groundseg::generate_constellation(net, kT0);
  s.stations = groundseg::generate_dgs_stations(net);
  s.opts.start = kT0;
  s.opts.duration_hours = 4.0;
  s.opts.lookahead_hours = 1.0;
  s.opts.faults = faults::make_profile("storm", 7, net.num_stations);
  if (s.opts.faults.has_backhaul_faults()) {
    s.opts.station_backhaul_bps = 50e6;
  }
  return s;
}

std::string summary_bytes(const SimulationResult& r) {
  std::stringstream ss;
  write_summary_json(ss, r);
  return ss.str();
}

// Every output surface of one full run, captured as bytes.
struct RunOutputs {
  std::string summary;
  std::string prometheus;
  std::string events;
};

RunOutputs run_uninterrupted(const Scenario& s, int threads) {
  SimulationOptions opts = s.opts;
  opts.parallel.num_threads = threads;
  obs::Registry registry;
  opts.metrics = &registry;
  std::ostringstream events;
  obs::EventLog log(&events);
  opts.events = &log;
  Session session(s.sats, s.stations, nullptr, opts);
  RunOutputs out;
  out.summary = summary_bytes(session.run_to_end());
  std::ostringstream prom;
  registry.write_prometheus(prom);
  out.prometheus = prom.str();
  out.events = events.str();
  return out;
}

TEST(Session, RunToEndMatchesSimulatorRun) {
  const Scenario s = golden_scenario();
  Session session(s.sats, s.stations, nullptr, s.opts);
  const std::string via_session = summary_bytes(session.run_to_end());
  const std::string via_simulator =
      summary_bytes(Simulator(s.sats, s.stations, nullptr, s.opts).run());
  EXPECT_EQ(via_session, via_simulator);
}

TEST(Session, StepAccountingAndDoneContract) {
  const Scenario s = golden_scenario();
  Session session(s.sats, s.stations, nullptr, s.opts);
  EXPECT_EQ(session.step_index(), 0);
  EXPECT_FALSE(session.done());
  session.step();
  EXPECT_EQ(session.step_index(), 1);
  EXPECT_EQ(session.run_until_hours(2.0),
            session.num_steps() / 2 - 1);
  while (!session.done()) session.step();
  EXPECT_TRUE(session.finalized());
  EXPECT_THROW(session.step(), std::invalid_argument);
}

TEST(Session, ReportMidRunDoesNotPerturbTheRun) {
  const Scenario s = golden_scenario();
  Session a(s.sats, s.stations, nullptr, s.opts);
  Session b(s.sats, s.stations, nullptr, s.opts);
  a.run_until_hours(2.0);
  const SimulationResult mid = a.report();
  EXPECT_GT(mid.steps, 0);
  while (!a.done()) a.step();
  EXPECT_EQ(summary_bytes(a.report()), summary_bytes(b.run_to_end()));
}

// The tentpole acceptance test: snapshot at mid-horizon, restore at
// thread counts 1 and 4, and require the interrupted run's combined
// outputs to be byte-identical to the uninterrupted baseline.
TEST(SessionCheckpoint, MidHorizonRestoreIsByteIdenticalAcrossThreads) {
  const Scenario s = golden_scenario();
  const RunOutputs baseline = run_uninterrupted(s, 1);

  // First half, snapshotted.
  obs::Registry reg1;
  std::ostringstream events1;
  obs::EventLog log1(&events1);
  SimulationOptions opts1 = s.opts;
  opts1.metrics = &reg1;
  opts1.events = &log1;
  Session first(s.sats, s.stations, nullptr, opts1);
  first.run_until_hours(2.0);
  std::stringstream checkpoint;
  first.snapshot(checkpoint);
  const std::string checkpoint_bytes = checkpoint.str();
  const std::string events_prefix = events1.str();

  for (const int threads : {1, 4}) {
    SimulationOptions opts2 = s.opts;
    opts2.parallel.num_threads = threads;
    obs::Registry reg2;
    std::ostringstream events2;
    obs::EventLog log2(&events2);
    opts2.metrics = &reg2;
    opts2.events = &log2;
    std::istringstream in(checkpoint_bytes);
    std::unique_ptr<Session> restored =
        Session::restore(in, s.sats, s.stations, nullptr, opts2);
    EXPECT_EQ(restored->step_index(), first.step_index());
    const SimulationResult r = restored->run_to_end();
    EXPECT_EQ(summary_bytes(r), baseline.summary) << "threads=" << threads;
    std::ostringstream prom;
    reg2.write_prometheus(prom);
    EXPECT_EQ(prom.str(), baseline.prometheus) << "threads=" << threads;
    EXPECT_EQ(events_prefix + events2.str(), baseline.events)
        << "threads=" << threads;
  }
}

// An immediate snapshot (step 0) restores to the full run, and a
// snapshot after the final step restores as already-done.
TEST(SessionCheckpoint, EdgeOfHorizonSnapshots) {
  const Scenario s = golden_scenario();
  const RunOutputs baseline = run_uninterrupted(s, 1);

  Session fresh(s.sats, s.stations, nullptr, s.opts);
  std::stringstream cp0;
  fresh.snapshot(cp0);
  std::unique_ptr<Session> from0 =
      Session::restore(cp0, s.sats, s.stations, nullptr, s.opts);
  EXPECT_EQ(summary_bytes(from0->run_to_end()), baseline.summary);

  Session full(s.sats, s.stations, nullptr, s.opts);
  const std::string done_summary = summary_bytes(full.run_to_end());
  std::stringstream cp_end;
  full.snapshot(cp_end);
  std::unique_ptr<Session> from_end =
      Session::restore(cp_end, s.sats, s.stations, nullptr, s.opts);
  EXPECT_TRUE(from_end->done());
  EXPECT_TRUE(from_end->finalized());
  EXPECT_EQ(summary_bytes(from_end->report()), done_summary);
}

// --- Negative space: the validator must reject every malformed or
// mismatched checkpoint with std::invalid_argument -------------------------

class SessionCheckpointNegative : public ::testing::Test {
 protected:
  void SetUp() override {
    s_ = golden_scenario();
    Session session(s_.sats, s_.stations, nullptr, s_.opts);
    session.run_until_hours(1.0);
    std::stringstream ss;
    session.snapshot(ss);
    bytes_ = ss.str();
  }

  void expect_rejected(const std::string& data) {
    std::istringstream in(data);
    EXPECT_THROW(Session::restore(in, s_.sats, s_.stations, nullptr, s_.opts),
                 std::invalid_argument);
  }

  Scenario s_;
  std::string bytes_;
};

TEST_F(SessionCheckpointNegative, TruncationsAtEveryLayerAreRejected) {
  // Inside the magic, inside the header, inside the payload, and one
  // byte short of complete.
  for (const std::size_t len :
       {std::size_t{4}, std::size_t{40}, bytes_.size() / 2,
        bytes_.size() - 1}) {
    ASSERT_LT(len, bytes_.size());
    expect_rejected(bytes_.substr(0, len));
  }
}

TEST_F(SessionCheckpointNegative, WrongMagicIsRejected) {
  std::string t = bytes_;
  t[0] = 'x';
  expect_rejected(t);
}

TEST_F(SessionCheckpointNegative, PayloadBitflipFailsTheCrc) {
  // Flip one byte deep in the payload; the header CRC must catch it.
  std::string t = bytes_;
  t[t.size() - 16] ^= 0x01;
  expect_rejected(t);
}

TEST_F(SessionCheckpointNegative, HeaderTamperingIsRejected) {
  // Doctoring the declared step count trips the identity check.
  std::string t = bytes_;
  const std::string key = "\"steps\":";
  const auto pos = t.find(key);
  ASSERT_NE(pos, std::string::npos);
  t[pos + key.size() + 1] = '9';
  expect_rejected(t);
}

TEST_F(SessionCheckpointNegative, ScenarioMismatchesAreRejected) {
  // Different duration.
  {
    Scenario other = s_;
    other.opts.duration_hours = 8.0;
    std::istringstream in(bytes_);
    EXPECT_THROW(Session::restore(in, other.sats, other.stations, nullptr,
                                  other.opts),
                 std::invalid_argument);
  }
  // Different fault plan (options CRC catches trajectory-shaping drift).
  {
    Scenario other = s_;
    other.opts.faults = faults::make_profile("churn", 7, 12);
    std::istringstream in(bytes_);
    EXPECT_THROW(Session::restore(in, other.sats, other.stations, nullptr,
                                  other.opts),
                 std::invalid_argument);
  }
  // Different fleet size.
  {
    Scenario other = s_;
    other.sats.pop_back();
    std::istringstream in(bytes_);
    EXPECT_THROW(Session::restore(in, other.sats, other.stations, nullptr,
                                  other.opts),
                 std::invalid_argument);
  }
}

TEST_F(SessionCheckpointNegative, ThreadCountChangeIsAccepted) {
  // parallel.* is execution-irrelevant by design: restoring under a
  // different thread count must succeed.
  Scenario other = s_;
  other.opts.parallel.num_threads = 4;
  std::istringstream in(bytes_);
  EXPECT_NO_THROW(
      Session::restore(in, other.sats, other.stations, nullptr, other.opts));
}

}  // namespace
}  // namespace dgs::core
