// Earth-observation satellite description.
#pragma once

#include <string>

#include "src/link/budget.h"
#include "src/orbit/tle.h"

namespace dgs::groundseg {

struct SatelliteConfig {
  int id = 0;
  std::string name;
  orbit::Tle tle;
  link::RadioSpec radio;  ///< Downlink radio (per-channel terms + channels).
  /// Imaging data production; the paper's experiment uses 100 GB/day.
  double data_generation_bytes_per_day = 100.0 * 1e9;
  /// On-board recorder size; 0 = unlimited.  Paper §3.3: satellites
  /// already store a full orbit of data, and the ack-free design keeps
  /// delivered-but-unacked data on board too.
  double storage_capacity_bytes = 0.0;
};

}  // namespace dgs::groundseg
