// Value functions Phi: latency, throughput, blended.
#include <gtest/gtest.h>

#include <stdexcept>

#include "src/core/value.h"

namespace dgs::core {
namespace {

const util::Epoch kT0(util::DateTime{2020, 11, 4, 0, 0, 0.0});
constexpr double kGb = 1e9;

TEST(LatencyValue, ZeroForEmptyQueue) {
  OnboardQueue q;
  LatencyValue v;
  EXPECT_DOUBLE_EQ(v.edge_value(q, kT0, 1e9), 0.0);
}

TEST(LatencyValue, AgeWeightedBytes) {
  OnboardQueue q;
  q.generate(2.0 * kGb, kT0);  // 2 GB captured at t0
  LatencyValue v;
  const util::Epoch now = kT0.plus_seconds(600);  // age 10 min
  // Link can move 1 GB: value = 1 GB * 10 min = 10 GB-min.
  EXPECT_NEAR(v.edge_value(q, now, 1.0 * kGb), 10.0, 1e-9);
  // Link can move everything: 2 GB * 10 min.
  EXPECT_NEAR(v.edge_value(q, now, 5.0 * kGb), 20.0, 1e-9);
}

TEST(LatencyValue, OlderDataDominates) {
  OnboardQueue old_q, new_q;
  old_q.generate(1.0 * kGb, kT0);
  new_q.generate(1.0 * kGb, kT0.plus_seconds(3000));
  LatencyValue v;
  const util::Epoch now = kT0.plus_seconds(3600);
  EXPECT_GT(v.edge_value(old_q, now, kGb), v.edge_value(new_q, now, kGb));
}

TEST(LatencyValue, WalksQueueOldestFirst) {
  OnboardQueue q;
  q.generate(1.0 * kGb, kT0);                      // old
  q.generate(1.0 * kGb, kT0.plus_seconds(1800));   // newer
  LatencyValue v;
  const util::Epoch now = kT0.plus_seconds(3600);
  // 1 GB budget consumes only the old chunk: 1 GB * 60 min.
  EXPECT_NEAR(v.edge_value(q, now, kGb), 60.0, 1e-9);
  // 2 GB budget adds the newer chunk: + 1 GB * 30 min.
  EXPECT_NEAR(v.edge_value(q, now, 2 * kGb), 90.0, 1e-9);
}

TEST(ThroughputValue, BytesMovedOnly) {
  OnboardQueue q;
  q.generate(3.0 * kGb, kT0);
  ThroughputValue v;
  EXPECT_NEAR(v.edge_value(q, kT0.plus_seconds(60), 2.0 * kGb), 2.0, 1e-12);
  EXPECT_NEAR(v.edge_value(q, kT0.plus_seconds(60), 9.0 * kGb), 3.0, 1e-12);
}

TEST(ThroughputValue, IndependentOfAge) {
  OnboardQueue q;
  q.generate(1.0 * kGb, kT0);
  ThroughputValue v;
  EXPECT_DOUBLE_EQ(v.edge_value(q, kT0.plus_seconds(60), kGb),
                   v.edge_value(q, kT0.plus_seconds(86400), kGb));
}

TEST(BlendedValue, InterpolatesBetweenExtremes) {
  OnboardQueue q;
  q.generate(1.0 * kGb, kT0);
  const util::Epoch now = kT0.plus_seconds(1200);
  LatencyValue lat;
  ThroughputValue thr;
  BlendedValue mid(0.5);
  const double expect =
      0.5 * lat.edge_value(q, now, kGb) + 0.5 * thr.edge_value(q, now, kGb);
  EXPECT_NEAR(mid.edge_value(q, now, kGb), expect, 1e-12);
  EXPECT_DOUBLE_EQ(BlendedValue(1.0).edge_value(q, now, kGb),
                   lat.edge_value(q, now, kGb));
  EXPECT_DOUBLE_EQ(BlendedValue(0.0).edge_value(q, now, kGb),
                   thr.edge_value(q, now, kGb));
}

TEST(BlendedValue, RejectsBadAlpha) {
  EXPECT_THROW(BlendedValue(-0.1), std::invalid_argument);
  EXPECT_THROW(BlendedValue(1.1), std::invalid_argument);
}

TEST(MakeValueFunction, FactoryNames) {
  EXPECT_EQ(make_value_function(ValueKind::kLatency)->name(), "latency");
  EXPECT_EQ(make_value_function(ValueKind::kThroughput)->name(),
            "throughput");
}

TEST(ValueFunctions, AlwaysNonNegative) {
  OnboardQueue q;
  q.generate(0.5 * kGb, kT0.plus_seconds(120));
  LatencyValue lat;
  ThroughputValue thr;
  // Querying "before" capture (clock skew) must not produce negative value.
  EXPECT_GE(lat.edge_value(q, kT0, kGb), 0.0);
  EXPECT_GE(thr.edge_value(q, kT0, kGb), 0.0);
}

}  // namespace
}  // namespace dgs::core
