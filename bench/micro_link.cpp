// Link-model micro-benchmarks: the per-edge cost of the predictive link
// budget (paper §3.2) that runs for every visible satellite-station pair at
// every scheduling instant.
#include <benchmark/benchmark.h>

#include "src/link/budget.h"
#include "src/link/clouds.h"
#include "src/link/rain.h"
#include "src/util/angles.h"
#include "src/util/time.h"
#include "src/weather/synthetic.h"

namespace {

using dgs::util::deg2rad;

void BM_RainCoefficients(benchmark::State& state) {
  double f = 8.0;
  for (auto _ : state) {
    f = f >= 30.0 ? 8.0 : f + 0.1;
    benchmark::DoNotOptimize(dgs::link::rain_coefficients(
        f, dgs::link::Polarization::kCircular));
  }
}
BENCHMARK(BM_RainCoefficients);

void BM_RainSlantAttenuation(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(dgs::link::rain_attenuation_db(
        8.2, 25.0, deg2rad(30.0), deg2rad(45.0), 0.0));
  }
}
BENCHMARK(BM_RainSlantAttenuation);

void BM_CloudAttenuation(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dgs::link::cloud_attenuation_db(8.2, 1.0, deg2rad(30.0)));
  }
}
BENCHMARK(BM_CloudAttenuation);

void BM_FullLinkBudget(benchmark::State& state) {
  dgs::link::PathConditions path;
  path.range_km = 1200.0;
  path.elevation_rad = deg2rad(27.0);
  path.site_latitude_rad = deg2rad(45.0);
  path.rain_rate_mm_h = 4.0;
  path.cloud_liquid_kg_m2 = 0.8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dgs::link::evaluate_link(
        dgs::link::RadioSpec{}, dgs::link::ReceiveSystem{}, path));
  }
}
BENCHMARK(BM_FullLinkBudget);

void BM_WeatherQuery(benchmark::State& state) {
  const dgs::util::Epoch start(dgs::util::DateTime{2020, 11, 4, 0, 0, 0.0});
  const dgs::weather::SyntheticWeatherProvider wx(7, start, 24.0);
  double lat = -1.0;
  for (auto _ : state) {
    lat = lat >= 1.0 ? -1.0 : lat + 0.01;
    benchmark::DoNotOptimize(
        wx.actual(lat, 0.3, start.plus_seconds(7200.0)));
  }
}
BENCHMARK(BM_WeatherQuery);

void BM_WeatherForecastQuery(benchmark::State& state) {
  const dgs::util::Epoch start(dgs::util::DateTime{2020, 11, 4, 0, 0, 0.0});
  const dgs::weather::SyntheticWeatherProvider wx(7, start, 24.0);
  double lat = -1.0;
  for (auto _ : state) {
    lat = lat >= 1.0 ? -1.0 : lat + 0.01;
    benchmark::DoNotOptimize(
        wx.forecast(lat, 0.3, start.plus_seconds(7200.0), 3600.0));
  }
}
BENCHMARK(BM_WeatherForecastQuery);

}  // namespace

BENCHMARK_MAIN();
