// E7 — matching micro-benchmarks: Gale-Shapley convergence cost vs graph
// size (the paper quotes O(K^2), K = max(N, M)), compared with the
// Hungarian optimal matcher (O(K^3)) and greedy (O(E log E)).
//
// `--threads=N` applies to BM_ScheduleInstantPaperScale, which runs the
// full contact-graph + weighting + matching pipeline on an N-lane
// ThreadPool; the pure matcher kernels are inherently sequential and
// ignore the flag.
#include <benchmark/benchmark.h>

#include "bench/bench_flags.h"
#include "src/core/dgs.h"
#include "src/core/matching.h"
#include "src/util/rng.h"

namespace {

using dgs::core::Edge;

int g_threads = 1;  // set by --threads in main()

std::vector<Edge> make_graph(int sats, int stations, double density,
                             std::uint64_t seed) {
  dgs::util::Rng rng(seed);
  std::vector<Edge> edges;
  for (int s = 0; s < sats; ++s) {
    for (int g = 0; g < stations; ++g) {
      if (rng.uniform() < density) {
        edges.push_back(Edge{s, g, rng.uniform(0.1, 100.0)});
      }
    }
  }
  return edges;
}

void BM_StableMatching(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const auto edges = make_graph(k, k, 0.1, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dgs::core::stable_matching(edges, k, k));
  }
  state.SetComplexityN(k);
}
BENCHMARK(BM_StableMatching)->RangeMultiplier(2)->Range(32, 512)->Complexity();

void BM_OptimalMatching(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const auto edges = make_graph(k, k, 0.1, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dgs::core::optimal_matching(edges, k, k));
  }
  state.SetComplexityN(k);
}
BENCHMARK(BM_OptimalMatching)->RangeMultiplier(2)->Range(32, 256)->Complexity();

void BM_GreedyMatching(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const auto edges = make_graph(k, k, 0.1, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dgs::core::greedy_matching(edges, k, k));
  }
  state.SetComplexityN(k);
}
BENCHMARK(BM_GreedyMatching)->RangeMultiplier(2)->Range(32, 512)->Complexity();

// The paper-scale instance: 259 satellites x 173 stations, with the edge
// density a real instant produces (each satellite sees a handful of
// stations).
void BM_StableMatchingPaperScale(benchmark::State& state) {
  const auto edges = make_graph(259, 173, 0.04, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dgs::core::stable_matching(edges, 259, 173));
  }
}
BENCHMARK(BM_StableMatchingPaperScale);

void BM_OptimalMatchingPaperScale(benchmark::State& state) {
  const auto edges = make_graph(259, 173, 0.04, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dgs::core::optimal_matching(edges, 259, 173));
  }
}
BENCHMARK(BM_OptimalMatchingPaperScale);

// The matcher in context: one full schedule_instant (SGP4 propagation,
// visibility sweep, link budgets, edge weighting, stable matching) at
// paper scale, on the `--threads` pool.
void BM_ScheduleInstantPaperScale(benchmark::State& state) {
  using namespace dgs;
  const util::Epoch epoch(util::DateTime{2020, 11, 4, 0, 0, 0.0});
  static const auto sats =
      groundseg::generate_constellation(groundseg::NetworkOptions{}, epoch);
  static const auto stations =
      groundseg::generate_dgs_stations(groundseg::NetworkOptions{});
  static weather::SyntheticWeatherProvider wx(7, epoch, 25.0);
  static core::VisibilityEngine engine(sats, stations, &wx);
  static util::ThreadPool pool(
      util::ParallelConfig{.num_threads = g_threads, .chunk_size = 8});
  engine.set_thread_pool(&pool);
  static std::vector<core::OnboardQueue> queues = [&epoch] {
    std::vector<core::OnboardQueue> qs(sats.size());
    for (auto& q : qs) q.generate(20e9, epoch.plus_seconds(-3600));
    return qs;
  }();
  core::Scheduler scheduler(&engine, core::SchedulerConfig{});
  double minute = 0.0;
  for (auto _ : state) {
    minute += 1.0;
    benchmark::DoNotOptimize(scheduler.schedule_instant(
        epoch.plus_seconds(minute * 60.0), queues));
  }
}
BENCHMARK(BM_ScheduleInstantPaperScale);

}  // namespace

int main(int argc, char** argv) {
  g_threads = dgs::bench::consume_threads_flag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
