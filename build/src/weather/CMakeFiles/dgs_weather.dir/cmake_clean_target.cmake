file(REMOVE_RECURSE
  "libdgs_weather.a"
)
