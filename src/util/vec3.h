// Minimal 3-vector used for positions/velocities throughout DGS.
#pragma once

#include <cmath>

namespace dgs::util {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3 operator+(const Vec3& o) const {
    return {x + o.x, y + o.y, z + o.z};
  }
  constexpr Vec3 operator-(const Vec3& o) const {
    return {x - o.x, y - o.y, z - o.z};
  }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }

  constexpr double dot(const Vec3& o) const {
    return x * o.x + y * o.y + z * o.z;
  }
  constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  double norm() const { return std::sqrt(dot(*this)); }
  Vec3 normalized() const { return *this / norm(); }

  friend constexpr bool operator==(const Vec3&, const Vec3&) = default;
};

constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

}  // namespace dgs::util
