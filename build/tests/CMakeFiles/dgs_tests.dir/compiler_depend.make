# Empty compiler generated dependencies file for dgs_tests.
# This may be replaced when dependencies are built.
