# Empty dependencies file for tab_pass_stats.
# This may be replaced when dependencies are built.
