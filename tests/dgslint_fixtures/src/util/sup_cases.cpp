// dgslint fixture: SUP — malformed suppression comments.
#include <cstdlib>

int sup_missing_reason() {
  return rand();  // dgslint: allow(R1)
}

int sup_unknown_rule() {
  return rand();  // dgslint: allow(R9) -- no such rule
}

int sup_self_allow() {
  return rand();  // dgslint: allow(SUP) -- SUP cannot be suppressed
}
