#include "src/orbit/frames.h"

#include <algorithm>
#include <cmath>

#include "src/util/angles.h"
#include "src/util/constants.h"

namespace dgs::orbit {

using util::Vec3;

Vec3 teme_to_ecef(const Vec3& teme, const util::Epoch& when) {
  const double theta = util::gmst(when.jd());
  const double c = std::cos(theta), s = std::sin(theta);
  // Rz(theta) applied to the inertial vector: ECEF = R3(gmst) * TEME.
  return {c * teme.x + s * teme.y, -s * teme.x + c * teme.y, teme.z};
}

void teme_to_ecef(const Vec3& r_teme, const Vec3& v_teme,
                  const util::Epoch& when, Vec3& r_ecef, Vec3& v_ecef) {
  r_ecef = teme_to_ecef(r_teme, when);
  const Vec3 v_rot = teme_to_ecef(v_teme, when);
  // Subtract the frame rotation: v_ecef = R*v_teme - omega x r_ecef.
  const Vec3 omega{0.0, 0.0, util::kEarthRotationRadPerSec};
  v_ecef = v_rot - omega.cross(r_ecef);
}

Vec3 geodetic_to_ecef(const Geodetic& g) {
  using namespace util::wgs84;
  const double slat = std::sin(g.latitude_rad);
  const double clat = std::cos(g.latitude_rad);
  const double n = kSemiMajorKm / std::sqrt(1.0 - kE2 * slat * slat);
  return {(n + g.altitude_km) * clat * std::cos(g.longitude_rad),
          (n + g.altitude_km) * clat * std::sin(g.longitude_rad),
          (n * (1.0 - kE2) + g.altitude_km) * slat};
}

Geodetic ecef_to_geodetic(const Vec3& r) {
  using namespace util::wgs84;
  Geodetic g;
  g.longitude_rad = std::atan2(r.y, r.x);
  const double p = std::hypot(r.x, r.y);
  // Bowring-style fixed-point iteration on the latitude.
  double lat = std::atan2(r.z, p * (1.0 - kE2));
  for (int i = 0; i < 10; ++i) {
    const double slat = std::sin(lat);
    const double n = kSemiMajorKm / std::sqrt(1.0 - kE2 * slat * slat);
    const double next = std::atan2(r.z + kE2 * n * slat, p);
    if (std::fabs(next - lat) < 1e-12) {
      lat = next;
      break;
    }
    lat = next;
  }
  const double slat = std::sin(lat);
  const double n = kSemiMajorKm / std::sqrt(1.0 - kE2 * slat * slat);
  g.latitude_rad = lat;
  // Altitude from whichever component is better conditioned.
  if (p > 1.0) {
    g.altitude_km = p / std::cos(lat) - n;
  } else {
    g.altitude_km = std::fabs(r.z) / std::fabs(slat) - n * (1.0 - kE2);
  }
  return g;
}

LookAngles look_angles(const Geodetic& site, const Vec3& target_ecef,
                       const Vec3& target_vel_ecef) {
  const Vec3 site_ecef = geodetic_to_ecef(site);
  const Vec3 rho = target_ecef - site_ecef;

  const double slat = std::sin(site.latitude_rad);
  const double clat = std::cos(site.latitude_rad);
  const double slon = std::sin(site.longitude_rad);
  const double clon = std::cos(site.longitude_rad);

  // ECEF -> SEZ (south, east, zenith) topocentric frame.
  const double s = slat * clon * rho.x + slat * slon * rho.y - clat * rho.z;
  const double e = -slon * rho.x + clon * rho.y;
  const double z = clat * clon * rho.x + clat * slon * rho.y + slat * rho.z;

  LookAngles la;
  la.range_km = rho.norm();
  la.elevation_rad = std::asin(std::clamp(z / la.range_km, -1.0, 1.0));
  la.azimuth_rad = util::wrap_two_pi(std::atan2(e, -s));
  if (target_vel_ecef.norm() > 0.0) {
    la.range_rate_km_s = rho.dot(target_vel_ecef) / la.range_km;
  }
  return la;
}

Geodetic subsatellite_point(const Vec3& r_teme, const util::Epoch& when) {
  return ecef_to_geodetic(teme_to_ecef(r_teme, when));
}

}  // namespace dgs::orbit
