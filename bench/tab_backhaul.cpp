// E19 — §2's VERGE comparison: raw-RF streaming vs co-located decoding.
//
// "Each [VERGE] antenna will stream raw RF measurements to the cloud ...
// In contrast, DGS co-locates compute alongside the antenna ... This
// significantly reduces the backhaul capacity required to support the
// ground station (by orders of magnitude)."  The first table quantifies
// the per-MODCOD ratio; the second shows the end-to-end effect of finite
// station backhaul with and without the edge-compute priority queue.
#include <cstdio>

#include "bench/common.h"
#include "src/backend/backhaul.h"

int main() {
  using namespace dgs;
  using namespace dgs::bench;

  std::printf("=== E19: backhaul — DGS (co-located decode) vs VERGE "
              "(raw RF to cloud) ===\n\n");

  const double sym = 66.7e6;
  std::printf("Per-channel backhaul at %.1f Msym/s (1.25x oversampling):\n",
              sym / 1e6);
  std::printf("  %-12s %14s %14s %14s %10s\n", "MODCOD", "decoded",
              "raw IQ 8-bit", "raw IQ 16-bit", "reduction");
  for (const char* name :
       {"QPSK 1/4", "QPSK 3/4", "8PSK 3/4", "16APSK 3/4", "32APSK 9/10"}) {
    const link::ModCod* mc = nullptr;
    for (const auto& m : link::dvbs2_modcods()) {
      if (m.name == name) mc = &m;
    }
    const double decoded = backend::decoded_backhaul_bps(*mc, sym);
    const double raw8 = backend::raw_iq_backhaul_bps(sym, 1.25, 8);
    const double raw16 = backend::raw_iq_backhaul_bps(sym, 1.25, 16);
    std::printf("  %-12s %9.1f Mbps %9.1f Mbps %9.1f Mbps %9.0fx\n", name,
                decoded / 1e6, raw8 / 1e6, raw16 / 1e6, raw16 / decoded);
  }
  std::printf("  (the paper's \"orders of magnitude\": 16-bit raw IQ vs "
              "robust MODCODs -> 20-80x per channel; a 6-channel baseline "
              "receiver would need %.1f Gbps of raw backhaul)\n",
              6.0 * backend::raw_iq_backhaul_bps(sym, 1.25, 16) / 1e9);

  // End-to-end: finite station backhaul with the edge priority queue.
  std::printf("\nEnd-to-end with finite station backhaul (24 h, DGS 173, "
              "5%% urgent imagery):\n");
  const Setup setup = make_paper_setup();
  weather::SyntheticWeatherProvider wx(kWeatherSeed, kEpoch, 25.0);

  std::printf("  %12s | %21s | %21s | %12s\n", "backhaul",
              "cloud latency (bulk-ish)", "urgent tier (ground)",
              "stuck at stn");
  std::printf("  %12s | %10s %10s | %10s %10s | %12s\n", "", "median",
              "p90", "median", "p90", "");
  for (double backhaul_mbps : {25.0, 50.0, 100.0, 300.0}) {
    core::SimulationOptions opts = day_sim();
    opts.urgent_fraction = 0.05;
    opts.station_backhaul_bps = backhaul_mbps * 1e6;
    const core::SimulationResult r =
        core::Simulator(setup.sats, setup.dgs, &wx, opts).run();
    std::printf("  %7.0f Mbps | %6.0f min %6.0f min | %6.0f min %6.0f min "
                "| %9.2f TB\n",
                backhaul_mbps, r.cloud_latency_minutes.median(),
                r.cloud_latency_minutes.percentile(90.0),
                r.urgent_latency_minutes.median(),
                r.urgent_latency_minutes.percentile(90.0),
                r.station_queued_bytes / 1e12);
  }
  std::printf("\n  reading: a DGS node needs only tens of Mbps of Internet "
              "uplink to keep cloud latency near the downlink latency — "
              "raw-RF streaming would need Gbps per antenna.  The edge "
              "queue keeps the urgent tier fast even when bulk data "
              "backs up at the station.\n");
  return 0;
}
