#include "src/backend/backhaul.h"

#include "src/util/check.h"

namespace dgs::backend {

double raw_iq_backhaul_bps(double symbol_rate_hz, double oversampling,
                           int bits_per_component) {
  DGS_ENSURE_GT(symbol_rate_hz, 0.0);
  DGS_ENSURE_GE(oversampling, 1.0);
  DGS_ENSURE_GT(bits_per_component, 0);
  // Complex baseband: 2 components per sample.
  return symbol_rate_hz * oversampling * 2.0 * bits_per_component;
}

double decoded_backhaul_bps(const link::ModCod& mc, double symbol_rate_hz,
                            double transport_overhead) {
  DGS_ENSURE_GE(transport_overhead, 0.0);
  return link::bitrate_bps(mc, symbol_rate_hz) * (1.0 + transport_overhead);
}

double backhaul_reduction_factor(const link::ModCod& mc,
                                 double symbol_rate_hz, double oversampling,
                                 int bits_per_component,
                                 double transport_overhead) {
  return raw_iq_backhaul_bps(symbol_rate_hz, oversampling,
                             bits_per_component) /
         decoded_backhaul_bps(mc, symbol_rate_hz, transport_overhead);
}

}  // namespace dgs::backend
