// Ground-track and coverage analysis.
#include <gtest/gtest.h>

#include <stdexcept>

#include "src/orbit/groundtrack.h"
#include "src/orbit/tle.h"
#include "src/util/angles.h"
#include "src/util/constants.h"

namespace dgs::orbit {
namespace {

using util::deg2rad;
using util::rad2deg;

constexpr const char* kIssL1 =
    "1 25544U 98067A   08264.51782528 -.00002182  00000-0 -11606-4 0  2927";
constexpr const char* kIssL2 =
    "2 25544  51.6416 247.4627 0006703 130.5360 325.0288 15.72125391563537";

class GroundTrackTest : public ::testing::Test {
 protected:
  GroundTrackTest() : sat_(parse_tle(kIssL1, kIssL2)) {}
  Sgp4 sat_;
};

TEST_F(GroundTrackTest, LatitudeBoundedByInclination) {
  const auto track = ground_track(sat_, sat_.epoch(),
                                  sat_.epoch().plus_days(1.0), 30.0);
  ASSERT_GT(track.size(), 1000u);
  for (const auto& p : track) {
    EXPECT_LE(std::fabs(rad2deg(p.geodetic.latitude_rad)), 51.6416 + 0.3);
  }
  // ...and actually reaches near the inclination extremes within a day.
  double max_lat = 0.0;
  for (const auto& p : track) {
    max_lat = std::max(max_lat, std::fabs(rad2deg(p.geodetic.latitude_rad)));
  }
  EXPECT_GT(max_lat, 51.0);
}

TEST_F(GroundTrackTest, AltitudeIsLeo) {
  for (const auto& p : ground_track(sat_, sat_.epoch(),
                                    sat_.epoch().plus_minutes(200.0), 60.0)) {
    EXPECT_GT(p.geodetic.altitude_km, 300.0);
    EXPECT_LT(p.geodetic.altitude_km, 400.0);
  }
}

TEST_F(GroundTrackTest, NodeShiftMatchesEarthRotation) {
  // ~91.6 min period -> the Earth rotates ~22.9 deg per orbit.
  const double shift = rad2deg(node_shift_per_orbit_rad(sat_));
  EXPECT_NEAR(shift, 360.0 * sat_.period_minutes() / (24.0 * 60.0), 0.1);
  EXPECT_NEAR(shift, 22.9, 0.3);
}

TEST_F(GroundTrackTest, SuccessiveEquatorCrossingsShiftWestward) {
  // Find successive ascending equator crossings and measure the longitude
  // shift between them.
  const auto track = ground_track(sat_, sat_.epoch(),
                                  sat_.epoch().plus_minutes(200.0), 5.0);
  std::vector<double> crossing_lons;
  for (std::size_t i = 1; i < track.size(); ++i) {
    if (track[i - 1].geodetic.latitude_rad < 0.0 &&
        track[i].geodetic.latitude_rad >= 0.0) {
      crossing_lons.push_back(track[i].geodetic.longitude_rad);
    }
  }
  ASSERT_GE(crossing_lons.size(), 2u);
  const double shift =
      util::wrap_pi(crossing_lons[1] - crossing_lons[0]);
  EXPECT_NEAR(rad2deg(shift), -rad2deg(node_shift_per_orbit_rad(sat_)), 1.0);
}

TEST_F(GroundTrackTest, TargetVisitsForOnTrackPoint) {
  // Pick a point on the track; with a generous swath it must be revisited
  // at least once in a day, and every visit entry is a distinct pass.
  const auto track = ground_track(sat_, sat_.epoch(),
                                  sat_.epoch().plus_minutes(10.0), 60.0);
  const Geodetic target = track[5].geodetic;
  const auto visits = target_visits(sat_, target, 400.0, sat_.epoch(),
                                    sat_.epoch().plus_days(1.0), 30.0);
  ASSERT_GE(visits.size(), 1u);
  for (std::size_t i = 1; i < visits.size(); ++i) {
    EXPECT_GT(visits[i].seconds_since(visits[i - 1]), 600.0);
  }
}

TEST_F(GroundTrackTest, PolarTargetNeverVisited) {
  const Geodetic pole{deg2rad(89.0), 0.0, 0.0};
  EXPECT_TRUE(target_visits(sat_, pole, 200.0, sat_.epoch(),
                            sat_.epoch().plus_days(1.0))
                  .empty());
}

TEST_F(GroundTrackTest, CoverageGrowsWithSwathAndTime) {
  std::vector<Sgp4> sats{sat_};
  const auto narrow = coverage(sats, 100.0, sat_.epoch(),
                               sat_.epoch().plus_days(0.5), 18, 60.0);
  const auto wide = coverage(sats, 500.0, sat_.epoch(),
                             sat_.epoch().plus_days(0.5), 18, 60.0);
  const auto longer = coverage(sats, 100.0, sat_.epoch(),
                               sat_.epoch().plus_days(1.0), 18, 60.0);
  EXPECT_GT(narrow.covered_fraction, 0.0);
  EXPECT_LT(narrow.covered_fraction, 1.0);
  EXPECT_GE(wide.covered_fraction, narrow.covered_fraction);
  EXPECT_GE(longer.covered_fraction, narrow.covered_fraction);
  EXPECT_EQ(narrow.cells_total, wide.cells_total);
}

TEST_F(GroundTrackTest, MidInclinationCannotCoverPoles) {
  std::vector<Sgp4> sats{sat_};
  const auto c = coverage(sats, 300.0, sat_.epoch(),
                          sat_.epoch().plus_days(1.0), 18, 60.0);
  // 51.6 deg inclination leaves the polar caps unimaged: strictly < 85%.
  EXPECT_LT(c.covered_fraction, 0.85);
}

TEST_F(GroundTrackTest, RejectsBadArguments) {
  EXPECT_THROW(ground_track(sat_, sat_.epoch(),
                            sat_.epoch().plus_seconds(-1.0)),
               std::invalid_argument);
  EXPECT_THROW(ground_track(sat_, sat_.epoch(),
                            sat_.epoch().plus_seconds(10.0), 0.0),
               std::invalid_argument);
  EXPECT_THROW(target_visits(sat_, Geodetic{}, 0.0, sat_.epoch(),
                             sat_.epoch().plus_seconds(10.0)),
               std::invalid_argument);
  EXPECT_THROW(coverage({sat_}, 100.0, sat_.epoch(),
                        sat_.epoch().plus_seconds(10.0), 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace dgs::orbit
