// Matching algorithms: stability, optimality, determinism, edge cases, and
// randomized property sweeps.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "src/core/matching.h"
#include "src/util/rng.h"

namespace dgs::core {
namespace {

std::vector<Edge> random_graph(util::Rng& rng, int sats, int stations,
                               double density) {
  std::vector<Edge> edges;
  for (int s = 0; s < sats; ++s) {
    for (int g = 0; g < stations; ++g) {
      if (rng.uniform() < density) {
        edges.push_back(Edge{s, g, rng.uniform(0.1, 100.0)});
      }
    }
  }
  return edges;
}

bool no_duplicate_endpoints(const std::vector<Edge>& edges,
                            const Matching& m) {
  std::vector<int> sat_seen, gs_seen;
  for (int i : m) {
    for (int s : sat_seen) {
      if (s == edges[i].sat) return false;
    }
    for (int g : gs_seen) {
      if (g == edges[i].station) return false;
    }
    sat_seen.push_back(edges[i].sat);
    gs_seen.push_back(edges[i].station);
  }
  return true;
}

TEST(Matching, EmptyGraph) {
  EXPECT_TRUE(stable_matching({}, 5, 5).empty());
  EXPECT_TRUE(optimal_matching({}, 5, 5).empty());
  EXPECT_TRUE(greedy_matching({}, 5, 5).empty());
}

TEST(Matching, SingleEdge) {
  const std::vector<Edge> edges{{0, 0, 5.0}};
  for (auto kind :
       {MatcherKind::kStable, MatcherKind::kOptimal, MatcherKind::kGreedy}) {
    const Matching m = run_matcher(kind, edges, 1, 1);
    ASSERT_EQ(m.size(), 1u) << matcher_name(kind);
    EXPECT_EQ(m[0], 0);
  }
}

TEST(Matching, IgnoresNonPositiveWeights) {
  const std::vector<Edge> edges{{0, 0, 0.0}, {1, 1, -3.0}, {2, 2, 1.0}};
  for (auto kind :
       {MatcherKind::kStable, MatcherKind::kOptimal, MatcherKind::kGreedy}) {
    const Matching m = run_matcher(kind, edges, 3, 3);
    ASSERT_EQ(m.size(), 1u) << matcher_name(kind);
    EXPECT_EQ(edges[m[0]].sat, 2);
  }
}

TEST(Matching, RejectsOutOfRangeEndpoints) {
  const std::vector<Edge> edges{{5, 0, 1.0}};
  EXPECT_THROW(stable_matching(edges, 3, 3), std::invalid_argument);
  EXPECT_THROW(optimal_matching(edges, 3, 3), std::invalid_argument);
  EXPECT_THROW(greedy_matching(edges, 3, 3), std::invalid_argument);
}

TEST(Matching, ContentionResolvedByWeight) {
  // Two satellites want the same station; the heavier edge wins, the loser
  // takes its second choice.
  const std::vector<Edge> edges{
      {0, 0, 10.0}, {1, 0, 8.0}, {1, 1, 3.0}};
  for (auto kind :
       {MatcherKind::kStable, MatcherKind::kOptimal, MatcherKind::kGreedy}) {
    const Matching m = run_matcher(kind, edges, 2, 2);
    EXPECT_EQ(m.size(), 2u) << matcher_name(kind);
    EXPECT_NEAR(matching_value(edges, m), 13.0, 1e-12) << matcher_name(kind);
  }
}

TEST(Matching, StableSacrificesGlobalValueWhenNeeded) {
  // Classic instance where the stable outcome is not the max-weight one:
  //   s0-g0: 10, s0-g1: 9, s1-g0: 9.5, s1-g1: 1
  // Stable: s0 takes g0 (both prefer it) -> s1 gets g1: total 11.
  // Optimal: s0-g1 + s1-g0 = 18.5.
  const std::vector<Edge> edges{
      {0, 0, 10.0}, {0, 1, 9.0}, {1, 0, 9.5}, {1, 1, 1.0}};
  const Matching stable = stable_matching(edges, 2, 2);
  const Matching optimal = optimal_matching(edges, 2, 2);
  EXPECT_NEAR(matching_value(edges, stable), 11.0, 1e-12);
  EXPECT_NEAR(matching_value(edges, optimal), 18.5, 1e-12);
  EXPECT_TRUE(is_stable(edges, stable, 2, 2));
  EXPECT_FALSE(is_stable(edges, optimal, 2, 2));
}

TEST(Matching, OptimalBeatsOrTiesOthersOnRandomGraphs) {
  util::Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    const int sats = static_cast<int>(rng.uniform_int(1, 12));
    const int stations = static_cast<int>(rng.uniform_int(1, 12));
    const auto edges = random_graph(rng, sats, stations, 0.4);
    const double w_opt =
        matching_value(edges, optimal_matching(edges, sats, stations));
    const double w_stable =
        matching_value(edges, stable_matching(edges, sats, stations));
    const double w_greedy =
        matching_value(edges, greedy_matching(edges, sats, stations));
    EXPECT_GE(w_opt, w_stable - 1e-9);
    EXPECT_GE(w_opt, w_greedy - 1e-9);
  }
}

TEST(Matching, StableMatchingsAreAlwaysStable) {
  util::Rng rng(23);
  for (int trial = 0; trial < 100; ++trial) {
    const int sats = static_cast<int>(rng.uniform_int(1, 20));
    const int stations = static_cast<int>(rng.uniform_int(1, 20));
    const auto edges = random_graph(rng, sats, stations, 0.3);
    const Matching m = stable_matching(edges, sats, stations);
    EXPECT_TRUE(is_stable(edges, m, sats, stations)) << "trial " << trial;
    EXPECT_TRUE(no_duplicate_endpoints(edges, m));
  }
}

TEST(Matching, GreedyEqualsStableForAlignedPreferences) {
  // With globally distinct weights and both sides ranking by weight, the
  // greedy descending-weight matching IS the unique stable matching.
  util::Rng rng(31);
  for (int trial = 0; trial < 30; ++trial) {
    const int sats = 8, stations = 8;
    auto edges = random_graph(rng, sats, stations, 0.5);
    // Perturb to make all weights distinct.
    for (std::size_t i = 0; i < edges.size(); ++i) {
      edges[i].weight += static_cast<double>(i) * 1e-7;
    }
    const double w_stable =
        matching_value(edges, stable_matching(edges, sats, stations));
    const double w_greedy =
        matching_value(edges, greedy_matching(edges, sats, stations));
    EXPECT_NEAR(w_stable, w_greedy, 1e-9);
  }
}

TEST(Matching, AllMatchersRespectMatchingConstraint) {
  util::Rng rng(41);
  for (int trial = 0; trial < 30; ++trial) {
    const auto edges = random_graph(rng, 15, 10, 0.5);
    for (auto kind :
         {MatcherKind::kStable, MatcherKind::kOptimal, MatcherKind::kGreedy}) {
      const Matching m = run_matcher(kind, edges, 15, 10);
      EXPECT_TRUE(no_duplicate_endpoints(edges, m)) << matcher_name(kind);
      EXPECT_LE(m.size(), 10u);
    }
  }
}

TEST(Matching, DenseContentionSaturatesStations) {
  // 20 satellites all see 5 stations with positive weight: every station
  // must end up busy under every matcher.
  util::Rng rng(53);
  const auto edges = random_graph(rng, 20, 5, 1.0);
  for (auto kind :
       {MatcherKind::kStable, MatcherKind::kOptimal, MatcherKind::kGreedy}) {
    EXPECT_EQ(run_matcher(kind, edges, 20, 5).size(), 5u)
        << matcher_name(kind);
  }
}

TEST(Matching, DeterministicAcrossCalls) {
  util::Rng rng(61);
  const auto edges = random_graph(rng, 12, 12, 0.4);
  for (auto kind :
       {MatcherKind::kStable, MatcherKind::kOptimal, MatcherKind::kGreedy}) {
    const Matching a = run_matcher(kind, edges, 12, 12);
    const Matching b = run_matcher(kind, edges, 12, 12);
    EXPECT_EQ(a, b) << matcher_name(kind);
  }
}

TEST(Matching, OptimalHandlesParallelEdges) {
  // Duplicate (sat, station) pairs with different weights: the heavier one
  // must be used.
  const std::vector<Edge> edges{{0, 0, 1.0}, {0, 0, 7.0}};
  const Matching m = optimal_matching(edges, 1, 1);
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m[0], 1);
}

TEST(Matching, ValueOfEmptyMatchingIsZero) {
  EXPECT_DOUBLE_EQ(matching_value({}, {}), 0.0);
}

TEST(MatcherName, AllKindsNamed) {
  EXPECT_NE(matcher_name(MatcherKind::kStable), "");
  EXPECT_NE(matcher_name(MatcherKind::kOptimal), "");
  EXPECT_NE(matcher_name(MatcherKind::kGreedy), "");
}

TEST(WarmStartMatcher, EqualsColdStartOnDriftingSequence) {
  // Simulated pass dynamics: weights drift a little each instant, edges
  // appear and vanish.  The warm matcher must return exactly what a fresh
  // Gale-Shapley run returns, instant after instant.
  util::Rng rng(77);
  const int sats = 14, stations = 9;
  std::vector<Edge> edges = random_graph(rng, sats, stations, 0.35);
  WarmStartMatcher warm;
  for (int t = 0; t < 60; ++t) {
    const Matching expect = stable_matching(edges, sats, stations);
    const Matching got = warm.match(edges, sats, stations);
    EXPECT_EQ(expect, got) << "instant " << t;
    // Drift: nudge weights, occasionally drop or add an edge.
    for (Edge& e : edges) {
      e.weight = std::max(0.05, e.weight + rng.uniform(-0.5, 0.5));
    }
    if (!edges.empty() && rng.chance(0.3)) {
      edges.erase(edges.begin() +
                  rng.uniform_int(0, static_cast<int>(edges.size()) - 1));
    }
    if (rng.chance(0.3)) {
      // Contact graphs carry one edge per (sat, station) pair, so the
      // drift must not create parallel edges (those force the cold-start
      // fallback and would mask the warm path entirely).
      const int s = static_cast<int>(rng.uniform_int(0, sats - 1));
      const int g = static_cast<int>(rng.uniform_int(0, stations - 1));
      const double w = rng.uniform(0.1, 100.0);
      const bool present =
          std::any_of(edges.begin(), edges.end(), [&](const Edge& e) {
            return e.sat == s && e.station == g;
          });
      if (!present) edges.push_back(Edge{s, g, w});
    }
  }
  // A slowly-drifting sequence must actually exercise the warm path.
  EXPECT_GT(warm.warm_hits(), 0);
  EXPECT_GT(warm.cold_starts(), 0);
}

TEST(WarmStartMatcher, StableWeightsReuseThePreviousMatching) {
  util::Rng rng(5);
  const auto edges = random_graph(rng, 10, 8, 0.5);
  WarmStartMatcher warm;
  const Matching first = warm.match(edges, 10, 8);
  EXPECT_EQ(warm.cold_starts(), 1);
  for (int t = 0; t < 5; ++t) {
    EXPECT_EQ(warm.match(edges, 10, 8), first);
  }
  EXPECT_EQ(warm.warm_hits(), 5);
  EXPECT_EQ(warm.cold_starts(), 1);
}

TEST(WarmStartMatcher, DuplicatePairsFallBackToColdStart) {
  // Parallel (sat, station) edges make the winning index ambiguous under
  // ties; the warm matcher must defer to plain Gale-Shapley.
  const std::vector<Edge> edges{{0, 0, 1.0}, {0, 0, 7.0}, {1, 1, 3.0}};
  WarmStartMatcher warm;
  for (int t = 0; t < 3; ++t) {
    EXPECT_EQ(warm.match(edges, 2, 2), stable_matching(edges, 2, 2));
  }
  EXPECT_EQ(warm.warm_hits(), 0);
}

TEST(WarmStartMatcher, HandlesEmptyAndShrinkingProblems) {
  WarmStartMatcher warm;
  EXPECT_TRUE(warm.match({}, 0, 0).empty());
  const std::vector<Edge> edges{{0, 0, 2.0}, {1, 1, 1.0}};
  EXPECT_EQ(warm.match(edges, 2, 2), stable_matching(edges, 2, 2));
  // The problem shrinks below the previous matching's indices.
  EXPECT_TRUE(warm.match({}, 1, 1).empty());
  EXPECT_EQ(warm.match(edges, 2, 2), stable_matching(edges, 2, 2));
  warm.reset();
  EXPECT_EQ(warm.match(edges, 2, 2), stable_matching(edges, 2, 2));
}

TEST(WarmStartMatcher, RandomizedSequencesAgreeWithColdStart) {
  // Property sweep: arbitrary regenerated graphs (no temporal locality at
  // all) must still agree — the warm path is exact, not approximate.
  for (const std::uint64_t seed : {11u, 23u, 31u}) {
    util::Rng rng(seed);
    WarmStartMatcher warm;
    for (int t = 0; t < 30; ++t) {
      const int sats = static_cast<int>(rng.uniform_int(1, 12));
      const int stations = static_cast<int>(rng.uniform_int(1, 10));
      const auto edges =
          random_graph(rng, sats, stations, rng.uniform(0.1, 0.9));
      EXPECT_EQ(warm.match(edges, sats, stations),
                stable_matching(edges, sats, stations))
          << "seed " << seed << " instant " << t;
    }
  }
}

}  // namespace
}  // namespace dgs::core
