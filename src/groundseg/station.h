// Ground station model (paper §3).
//
// A DGS ground station is described by its location, receive hardware,
// whether it is transmit-capable (the hybrid design's key bit), and a
// per-satellite downlink constraint bitmap through which owners keep
// control over whose data their antenna will capture.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/link/antenna.h"
#include "src/orbit/frames.h"

namespace dgs::groundseg {

/// The paper's M-bit downlink constraint bitmap: bit i is 1 if downlink
/// from satellite index i is allowed.  Defaults to allow-all.
class DownlinkConstraints {
 public:
  DownlinkConstraints() = default;
  /// Creates an explicit bitmap for `num_satellites`, all allowed.
  explicit DownlinkConstraints(std::size_t num_satellites)
      : bits_(num_satellites, true) {}

  /// True when `sat_index` may downlink here.  Indices beyond an explicit
  /// bitmap (or any index when default-constructed) are allowed.
  bool allows(std::size_t sat_index) const {
    return sat_index >= bits_.size() || bits_[sat_index];
  }

  void deny(std::size_t sat_index) {
    if (sat_index >= bits_.size()) bits_.resize(sat_index + 1, true);
    bits_[sat_index] = false;
  }
  void allow(std::size_t sat_index) {
    if (sat_index < bits_.size()) bits_[sat_index] = true;
  }

  std::size_t denied_count() const;

 private:
  std::vector<bool> bits_;  ///< Empty == allow everything.
};

struct GroundStation {
  int id = 0;
  std::string name;
  orbit::Geodetic location;
  link::ReceiveSystem receiver;
  bool tx_capable = false;        ///< Can uplink plans/acks (S-band TT&C).
  double min_elevation_rad = 0.0; ///< Elevation mask (horizon obstructions).
  DownlinkConstraints constraints;
  /// Beamforming extension (paper §3.3): number of satellites the station
  /// can track simultaneously.  1 = conventional point-to-point dish.
  /// Splitting the aperture across k beams costs 10*log10(k) dB of gain on
  /// every beam (conservative full-split model).
  int beam_count = 1;

  /// Cached ECEF position; call after changing `location`.
  void refresh_ecef();
  const util::Vec3& ecef() const { return ecef_; }

 private:
  util::Vec3 ecef_;
};

}  // namespace dgs::groundseg
