// End-to-end downlink budget (paper §3.2).
//
// Combines free-space path loss, ITU rain/cloud/gas attenuation, transmit
// EIRP and receive G/T into C/N0 -> Es/N0, then selects a DVB-S2 MODCOD to
// produce the *predicted* achievable data rate — the quantity the DGS
// scheduler uses as edge capacity, since receive-only stations cannot give
// live feedback.
#pragma once

#include "src/link/antenna.h"
#include "src/link/dvbs2.h"

namespace dgs::link {

/// Satellite transmit chain.  Defaults approximate the Planet Labs
/// high-speed downlink radio the paper cites ([10]): X-band, per-channel
/// symbol rate sized so six channels peak near 1.6 Gbps.
struct RadioSpec {
  double frequency_hz = 8.2e9;      ///< X-band downlink centre.
  double eirp_dbw = 16.0;           ///< Per-channel EIRP.
  double symbol_rate_hz = 66.7e6;   ///< Per-channel symbol rate.
  int channels = 1;                 ///< Frequency/polarization channels used.
  double implementation_loss_db = 1.0;  ///< Modem implementation loss.
  double modcod_margin_db = 1.0;    ///< Link margin for rate selection.
};

/// Environmental inputs to the prediction.
struct PathConditions {
  double range_km = 1000.0;          ///< Slant range.
  double elevation_rad = 0.5;        ///< Must be > 0 for a usable link.
  double site_latitude_rad = 0.0;    ///< For the rain-height climatology.
  double site_altitude_km = 0.0;     ///< Station altitude AMSL.
  double rain_rate_mm_h = 0.0;       ///< Forecast/actual rain rate.
  double cloud_liquid_kg_m2 = 0.0;   ///< Columnar cloud liquid water.
};

/// Full accounting of one budget evaluation.
struct LinkBudget {
  double fspl_db = 0.0;
  double rain_db = 0.0;
  double cloud_db = 0.0;
  double gas_db = 0.0;
  double total_atmos_db = 0.0;   ///< rain + cloud + gas.
  double g_over_t_db = 0.0;      ///< Including rain-induced noise rise.
  double cn0_dbhz = 0.0;
  double esn0_db = 0.0;
  const ModCod* modcod = nullptr;  ///< Null if the link cannot close.
  double data_rate_bps = 0.0;      ///< Across all channels; 0 if no link.

  bool closes() const { return modcod != nullptr; }
};

/// Evaluates the downlink budget.  Returns a budget with
/// modcod == nullptr (data_rate_bps == 0) when elevation <= 0 or no MODCOD
/// closes; throws std::invalid_argument on non-physical inputs
/// (negative range, rain, etc.).
LinkBudget evaluate_link(const RadioSpec& radio, const ReceiveSystem& rx,
                         const PathConditions& path);

}  // namespace dgs::link
