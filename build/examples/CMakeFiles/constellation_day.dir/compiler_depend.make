# Empty compiler generated dependencies file for constellation_day.
# This may be replaced when dependencies are built.
