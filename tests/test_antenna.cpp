// Antenna gain and system noise temperature.
#include <gtest/gtest.h>

#include <stdexcept>

#include "src/link/antenna.h"

namespace dgs::link {
namespace {

TEST(DishGain, KnownValueAtXBand) {
  // 1 m dish at 8.2 GHz with 55% efficiency: G = 10log10(0.55*(pi*D*f/c)^2)
  // = ~36.1 dBi.
  EXPECT_NEAR(dish_gain_dbi(1.0, 8.2e9, 0.55), 36.1, 0.2);
  // 4 m dish gains +12 dB over 1 m (20*log10(4)).
  EXPECT_NEAR(dish_gain_dbi(4.0, 8.2e9, 0.55) - dish_gain_dbi(1.0, 8.2e9, 0.55),
              12.04, 0.01);
}

TEST(DishGain, QuadraticInDiameterAndFrequency) {
  EXPECT_NEAR(dish_gain_dbi(2.0, 8.2e9) - dish_gain_dbi(1.0, 8.2e9), 6.02,
              0.01);
  EXPECT_NEAR(dish_gain_dbi(1.0, 16.4e9) - dish_gain_dbi(1.0, 8.2e9), 6.02,
              0.01);
}

TEST(DishGain, RejectsBadInputs) {
  EXPECT_THROW(dish_gain_dbi(0.0, 8.2e9), std::invalid_argument);
  EXPECT_THROW(dish_gain_dbi(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(dish_gain_dbi(1.0, 8.2e9, 0.0), std::invalid_argument);
  EXPECT_THROW(dish_gain_dbi(1.0, 8.2e9, 1.5), std::invalid_argument);
}

TEST(SystemNoise, ClearSkyBaseline) {
  const ReceiveSystem rx;
  const double t = system_noise_temp_k(rx, 0.0);
  EXPECT_DOUBLE_EQ(t, rx.clear_sky_temp_k + rx.ground_spillover_k +
                          rx.lna_noise_temp_k);
}

TEST(SystemNoise, RainRaisesNoiseTemperature) {
  const ReceiveSystem rx;
  const double clear = system_noise_temp_k(rx, 0.0);
  const double light = system_noise_temp_k(rx, 1.0);
  const double heavy = system_noise_temp_k(rx, 10.0);
  EXPECT_GT(light, clear);
  EXPECT_GT(heavy, light);
  // Saturates toward T_medium + fixed terms as A -> inf.
  const double opaque = system_noise_temp_k(rx, 60.0);
  EXPECT_NEAR(opaque, 275.0 + rx.ground_spillover_k + rx.lna_noise_temp_k,
              0.5);
}

TEST(SystemNoise, RejectsNegativeLoss) {
  EXPECT_THROW(system_noise_temp_k(ReceiveSystem{}, -0.1),
               std::invalid_argument);
}

TEST(GOverT, ImprovesWithDishAndDegradesWithRain) {
  ReceiveSystem small, big;
  big.dish_diameter_m = 4.0;
  EXPECT_GT(g_over_t_db(big, 8.2e9, 0.0), g_over_t_db(small, 8.2e9, 0.0));
  EXPECT_GT(g_over_t_db(small, 8.2e9, 0.0), g_over_t_db(small, 8.2e9, 3.0));
}

TEST(GOverT, TypicalMagnitudeForDgsNode) {
  // 1 m dish, ~155 K clear-sky system: G/T ~ 14 dB/K at X band.
  EXPECT_NEAR(g_over_t_db(ReceiveSystem{}, 8.2e9, 0.0), 14.2, 1.0);
}

}  // namespace
}  // namespace dgs::link
