// Constellation-scale ablation (EXPERIMENTS.md E25): per-step scheduling
// cost at 1k/5k/10k satellites, brute-force all-pairs sweep vs the
// spatial visibility index, and cold vs warm-started stable matching.
//
// Timings come from google-benchmark (no raw clocks, dgslint R1).  With
// `--summary-out=FILE` the binary additionally writes a deterministic
// artifact — edge/matching counts and CRC32 digests, no timings — that
// the CI scale lane byte-compares across `--threads 1` and `--threads 4`
// to pin thread-count invariance at scale.  `--sats=N` restricts the run
// to one constellation size.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_flags.h"
#include "src/core/data_queue.h"
#include "src/core/matching.h"
#include "src/core/scheduler.h"
#include "src/core/visibility.h"
#include "src/groundseg/network_gen.h"
#include "src/util/crc32.h"
#include "src/util/thread_pool.h"

namespace {

using dgs::core::ContactEdge;
using dgs::core::OnboardQueue;
using dgs::core::Scheduler;
using dgs::core::SchedulerConfig;
using dgs::core::VisibilityEngine;

int g_threads = 1;

const dgs::util::Epoch kEpoch(dgs::util::DateTime{2020, 11, 4, 0, 0, 0.0});

struct World {
  std::vector<dgs::groundseg::SatelliteConfig> sats;
  std::vector<dgs::groundseg::GroundStation> stations;
  std::unique_ptr<dgs::util::ThreadPool> pool;
  std::unique_ptr<VisibilityEngine> brute;
  std::unique_ptr<VisibilityEngine> indexed;
  std::unique_ptr<Scheduler> sched_warm;  ///< On the indexed engine.
  std::unique_ptr<Scheduler> sched_cold;
  std::vector<OnboardQueue> queues;
};

World& world(int num_sats) {
  static std::map<int, std::unique_ptr<World>> cache;
  std::unique_ptr<World>& slot = cache[num_sats];
  if (slot) return *slot;
  slot = std::make_unique<World>();
  World& w = *slot;

  dgs::groundseg::NetworkOptions opts;
  opts.num_satellites = num_sats;
  w.sats = dgs::groundseg::generate_constellation(opts, kEpoch);
  w.stations = dgs::groundseg::generate_dgs_stations(opts);

  dgs::util::ParallelConfig pc;
  pc.num_threads = g_threads;
  w.pool = std::make_unique<dgs::util::ThreadPool>(pc);

  w.brute = std::make_unique<VisibilityEngine>(w.sats, w.stations, nullptr);
  w.brute->set_spatial_index(false);
  w.brute->set_thread_pool(w.pool.get());
  w.indexed = std::make_unique<VisibilityEngine>(w.sats, w.stations, nullptr);
  w.indexed->set_thread_pool(w.pool.get());

  SchedulerConfig warm_cfg;
  w.sched_warm = std::make_unique<Scheduler>(w.indexed.get(), warm_cfg);
  SchedulerConfig cold_cfg;
  cold_cfg.warm_start = false;
  w.sched_cold = std::make_unique<Scheduler>(w.indexed.get(), cold_cfg);

  // Deterministic backlog so edge values are positive (no RNG: a fixed
  // arithmetic pattern over the fleet).
  w.queues.resize(w.sats.size());
  for (std::size_t i = 0; i < w.queues.size(); ++i) {
    const double bytes = 1e8 * static_cast<double>(i % 97 + 1);
    const double age_s = 600.0 * static_cast<double>(i % 13);
    w.queues[i].generate(bytes, kEpoch.plus_seconds(-age_s));
  }
  return w;
}

void BM_ScaleStepBrute(benchmark::State& state) {
  World& w = world(static_cast<int>(state.range(0)));
  const dgs::util::Epoch t = kEpoch.plus_seconds(600.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.brute->contacts(t));
  }
}

void BM_ScaleStepIndexed(benchmark::State& state) {
  World& w = world(static_cast<int>(state.range(0)));
  const dgs::util::Epoch t = kEpoch.plus_seconds(600.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.indexed->contacts(t));
  }
}

void BM_ScaleScheduleCold(benchmark::State& state) {
  World& w = world(static_cast<int>(state.range(0)));
  std::int64_t step = 0;
  for (auto _ : state) {
    const dgs::util::Epoch t =
        kEpoch.plus_seconds(60.0 * static_cast<double>(step++ % 90));
    benchmark::DoNotOptimize(w.sched_cold->schedule_instant(t, w.queues));
  }
}

void BM_ScaleScheduleWarm(benchmark::State& state) {
  World& w = world(static_cast<int>(state.range(0)));
  std::int64_t step = 0;
  for (auto _ : state) {
    const dgs::util::Epoch t =
        kEpoch.plus_seconds(60.0 * static_cast<double>(step++ % 90));
    benchmark::DoNotOptimize(w.sched_warm->schedule_instant(t, w.queues));
  }
}

// --- Deterministic summary artifact ----------------------------------------

void append_u32(std::vector<std::uint8_t>& buf, std::uint32_t v) {
  for (int k = 0; k < 4; ++k) {
    buf.push_back(static_cast<std::uint8_t>(v >> (8 * k)));
  }
}

void append_double(std::vector<std::uint8_t>& buf, double d) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  for (int k = 0; k < 8; ++k) {
    buf.push_back(static_cast<std::uint8_t>(bits >> (8 * k)));
  }
}

std::uint32_t edges_crc(const std::vector<ContactEdge>& edges) {
  std::vector<std::uint8_t> buf;
  buf.reserve(edges.size() * 40);
  for (const ContactEdge& e : edges) {
    append_u32(buf, static_cast<std::uint32_t>(e.sat));
    append_u32(buf, static_cast<std::uint32_t>(e.station));
    append_double(buf, e.elevation_rad);
    append_double(buf, e.range_km);
    append_double(buf, e.predicted_rate_bps);
  }
  return dgs::util::crc32(buf);
}

std::uint32_t matched_crc(const std::vector<ContactEdge>& matched) {
  std::vector<std::uint8_t> buf;
  buf.reserve(matched.size() * 16);
  for (const ContactEdge& e : matched) {
    append_u32(buf, static_cast<std::uint32_t>(e.sat));
    append_u32(buf, static_cast<std::uint32_t>(e.station));
    append_double(buf, e.weight);
  }
  return dgs::util::crc32(buf);
}

/// One point of the scale sweep, computed fresh (independent of however
/// many iterations the benchmarks ran): contact graph at a fixed epoch,
/// cross-validated brute vs indexed, plus the stable matching.  Every
/// field is thread-count independent by the determinism contract.
int write_summary(const std::string& path, const std::vector<int>& sizes) {
  std::FILE* fh = std::fopen(path.c_str(), "w");
  if (fh == nullptr) {
    std::fprintf(stderr, "abl_scale: cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(fh, "{\n  \"schema\": \"dgs.scale_summary.v1\",\n"
                   "  \"points\": [\n");
  bool failed = false;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    World& w = world(sizes[i]);
    const dgs::util::Epoch t = kEpoch.plus_seconds(600.0);
    const std::vector<ContactEdge> brute = w.brute->contacts(t);
    const std::vector<ContactEdge> indexed = w.indexed->contacts(t);
    const std::uint32_t brute_crc = edges_crc(brute);
    const std::uint32_t indexed_crc = edges_crc(indexed);
    if (brute.size() != indexed.size() || brute_crc != indexed_crc) {
      std::fprintf(stderr,
                   "abl_scale: spatial index mismatch at %d sats "
                   "(brute %zu edges crc %08x, indexed %zu edges crc %08x)\n",
                   sizes[i], brute.size(), brute_crc, indexed.size(),
                   indexed_crc);
      failed = true;
    }
    // Fresh schedulers: the matching digest must not depend on benchmark
    // iteration counts.  Warm and cold must agree exactly.
    SchedulerConfig warm_cfg;
    Scheduler warm(w.indexed.get(), warm_cfg);
    SchedulerConfig cold_cfg;
    cold_cfg.warm_start = false;
    Scheduler cold(w.indexed.get(), cold_cfg);
    const std::vector<ContactEdge> mw = warm.schedule_instant(t, w.queues);
    const std::vector<ContactEdge> mc = cold.schedule_instant(t, w.queues);
    const std::uint32_t warm_crc = matched_crc(mw);
    const std::uint32_t cold_crc = matched_crc(mc);
    if (mw.size() != mc.size() || warm_crc != cold_crc) {
      std::fprintf(stderr,
                   "abl_scale: warm/cold matching mismatch at %d sats\n",
                   sizes[i]);
      failed = true;
    }
    std::fprintf(fh,
                 "    {\"sats\": %d, \"stations\": %zu, \"edges\": %zu, "
                 "\"edges_crc32\": \"%08x\", \"matched\": %zu, "
                 "\"matched_crc32\": \"%08x\"}%s\n",
                 sizes[i], w.stations.size(), indexed.size(), indexed_crc,
                 mw.size(), warm_crc, i + 1 < sizes.size() ? "," : "");
  }
  std::fprintf(fh, "  ]\n}\n");
  std::fclose(fh);
  return failed ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = dgs::bench::consume_threads_flag(&argc, argv);
  const int only_sats = dgs::bench::consume_int_flag(&argc, argv, "--sats", 0);
  const std::string summary_path =
      dgs::bench::consume_string_flag(&argc, argv, "--summary-out");
  g_threads = threads;

  std::vector<int> sizes{1000, 5000, 10000};
  if (only_sats > 0) sizes = {only_sats};
  for (const int n : sizes) {
    benchmark::RegisterBenchmark("BM_ScaleStepBrute", BM_ScaleStepBrute)
        ->Arg(n)->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark("BM_ScaleStepIndexed", BM_ScaleStepIndexed)
        ->Arg(n)->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark("BM_ScaleScheduleCold", BM_ScaleScheduleCold)
        ->Arg(n)->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark("BM_ScaleScheduleWarm", BM_ScaleScheduleWarm)
        ->Arg(n)->Unit(benchmark::kMillisecond);
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!summary_path.empty()) return write_summary(summary_path, sizes);
  return 0;
}
