file(REMOVE_RECURSE
  "CMakeFiles/abl_seeds.dir/abl_seeds.cpp.o"
  "CMakeFiles/abl_seeds.dir/abl_seeds.cpp.o.d"
  "abl_seeds"
  "abl_seeds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_seeds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
