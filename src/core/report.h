// Run reports: machine-readable artifacts of a simulation.
//
// The evaluation harness prints human tables; downstream users want the
// raw curves.  This module emits (a) the per-step timeseries a plotting
// pipeline consumes and (b) a JSON summary of the headline metrics.
//
// Both writers emit the versioned run-artifact schema defined in
// run_artifact.h (they are implemented against its field tables in
// run_artifact.cpp); validate with the checkers declared there.
#pragma once

#include <iosfwd>

#include "src/core/simulator.h"

namespace dgs::core {

/// CSV: hours,delivered_tb_cum,backlog_gb_total,active_links,
///      failed_links_cum.  Requires SimulationOptions::collect_timeseries.
void write_timeseries_csv(std::ostream& out, const SimulationResult& result);

/// JSON object with the headline metrics (latency/backlog percentiles,
/// totals, utilization) plus the leading schema_version key.  Flat,
/// stable keys; no external dependency.
void write_summary_json(std::ostream& out, const SimulationResult& result);

}  // namespace dgs::core
