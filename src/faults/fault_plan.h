// Deterministic seeded fault injection (paper §1, §2).
//
// The paper's robustness argument is that a centralized ground segment is
// "a single point of failure" while DGS's consumer-grade stations fail
// *often but independently*.  This module makes that failure model a
// first-class simulation input: a FaultPlan composes scheduled and
// stochastic station outages, backhaul degradation, ack-relay Internet
// loss, and TX-contact plan-upload failures, all drawn from one seed so a
// run is fully reproducible for a fixed (seed, step grid) — see
// DESIGN.md §11 for the taxonomy and the determinism rules.
//
// Reproducibility is load-bearing: every stochastic draw is either
// (a) pre-expanded on the driver thread at timeline construction (station
// churn windows, from per-station PCG32 streams), or (b) a stateless hash
// of (seed, stream, step, sat, station, attempt) — so no draw depends on
// evaluation order or thread count, per the DESIGN.md §9 contract.
#pragma once

#include <cstdint>
#include <vector>

namespace dgs::faults {

/// Scheduled outage: the station is unavailable during [start, end).
/// A step is blanked iff its *start* lies in the window, so an outage
/// ending exactly on a step boundary does not blank that step.
struct OutageWindow {
  int station_index = 0;
  double start_hours = 0.0;  ///< Relative to the simulation start.
  double end_hours = 0.0;
};

/// Stochastic station churn: each participating station alternates
/// up/down with exponentially-distributed dwell times (the consumer-grade
/// "fails often but independently" regime).  mtbf_hours == 0 disables.
struct StationChurn {
  double mtbf_hours = 0.0;       ///< Mean time between failures (up dwell).
  double mttr_hours = 0.0;       ///< Mean time to repair (down dwell).
  double station_fraction = 1.0; ///< Fraction of stations that churn.
};

/// Backhaul degradation interval for one station: the station->cloud
/// uplink runs at `rate_multiplier` x its nominal rate during
/// [start, end).  0 is a hard blackout (data queues at the edge).
struct BackhaulFault {
  int station_index = 0;
  double start_hours = 0.0;
  double end_hours = 0.0;
  double rate_multiplier = 0.0;
};

/// Ack-relay Internet faults: a receive-only station's collated report
/// upload to the operator is lost with `loss_probability` per attempt and
/// retried with capped exponential backoff; the report (and hence the
/// ack or missing-pieces verdict) only becomes available to the next
/// TX contact once the retries succeed.  max_attempts bounds the retry
/// loop so a report always lands eventually.
struct AckRelayFaults {
  double loss_probability = 0.0;  ///< Per-attempt loss, in [0, 1).
  double initial_backoff_s = 60.0;
  double backoff_multiplier = 2.0;
  double max_backoff_s = 1800.0;
  int max_attempts = 16;
};

/// TX-contact plan-upload faults: with this probability the whole TT&C
/// exchange at a transmit-capable contact fails — no acks are collected
/// and no fresh plan is uploaded, so the satellite keeps flying stale
/// forecasts until the next TX opportunity.
struct PlanUploadFaults {
  double failure_probability = 0.0;  ///< Per TX contact, in [0, 1).
};

/// The full fault configuration for one run.  Default-constructed plans
/// are empty (no faults); the simulator's fast paths are preserved.
struct FaultPlan {
  std::uint64_t seed = 0;
  std::vector<OutageWindow> outages;
  StationChurn churn;
  std::vector<BackhaulFault> backhaul;
  AckRelayFaults ack_relay;
  PlanUploadFaults plan_upload;

  bool has_station_faults() const {
    return !outages.empty() || churn.mtbf_hours > 0.0;
  }
  bool has_backhaul_faults() const { return !backhaul.empty(); }
  bool has_ack_relay_faults() const {
    return ack_relay.loss_probability > 0.0;
  }
  bool has_plan_upload_faults() const {
    return plan_upload.failure_probability > 0.0;
  }
  bool empty() const {
    return !has_station_faults() && !has_backhaul_faults() &&
           !has_ack_relay_faults() && !has_plan_upload_faults();
  }
};

/// First step whose start time is at or after `hours` on the step grid,
/// with a relative tolerance absorbing float dust when `hours` lands
/// exactly on a boundary (so 2.0 h at dt=60 s is step 120, not 121).
/// Exposed for the boundary tests.
std::int64_t step_at_or_after(double hours, double step_seconds);

/// Result of one ack-relay retry sequence: how many attempts were lost
/// and the total backoff delay accumulated before the report landed.
struct AckRelayOutcome {
  int retries = 0;
  double delay_s = 0.0;
};

/// The plan expanded onto a concrete step grid.  Construction (driver
/// thread only) pre-draws all churn windows; queries are pure lookups or
/// stateless hash draws, so results are independent of call order.
class FaultTimeline {
 public:
  /// Throws std::invalid_argument (via DGS_ENSURE) for out-of-range
  /// station indices or non-positive grid parameters.  Validation of the
  /// plan's numeric ranges lives in SimulationOptions::validate().
  FaultTimeline(const FaultPlan& plan, int num_stations,
                std::int64_t num_steps, double step_seconds);

  bool has_station_faults() const { return has_station_faults_; }
  bool has_backhaul_faults() const { return !backhaul_.empty(); }

  /// True iff `station` is down at `step` (scheduled or churn outage).
  bool station_down(int station, std::int64_t step) const;

  /// Fills `out` (resized to num_stations) with this step's down mask.
  void fill_station_down(std::int64_t step, std::vector<char>* out) const;

  /// Effective backhaul rate multiplier for `station` at `step`; 1.0 when
  /// healthy, the minimum over covering degradation intervals otherwise.
  double backhaul_multiplier(int station, std::int64_t step) const;

  /// Ack-relay retry sequence for the report of a batch delivered at
  /// (step, sat, station).  Stateless: same arguments, same outcome.
  AckRelayOutcome ack_relay_outcome(std::int64_t step, int sat,
                                    int station) const;

  /// True iff the plan upload at this TX contact fails.  Stateless.
  bool plan_upload_fails(std::int64_t step, int sat, int station) const;

  /// Half-open [begin, end) step interval; down intervals per station
  /// after merging scheduled windows and expanded churn.  For tests.
  struct StepInterval {
    std::int64_t begin = 0;
    std::int64_t end = 0;
  };
  const std::vector<std::vector<StepInterval>>& down_intervals() const {
    return down_;
  }

 private:
  const FaultPlan plan_;
  int num_stations_;
  std::int64_t num_steps_;
  bool has_station_faults_ = false;
  /// Per station: disjoint sorted [begin, end) down intervals.
  std::vector<std::vector<StepInterval>> down_;
  /// Per station: degradation intervals with multipliers (may overlap;
  /// queries take the minimum).
  struct BackhaulInterval {
    std::int64_t begin = 0;
    std::int64_t end = 0;
    double multiplier = 1.0;
  };
  std::vector<std::vector<BackhaulInterval>> backhaul_;
};

}  // namespace dgs::faults
