#include "src/faults/profiles.h"

#include "src/faults/fault_rng.h"
#include "src/util/check.h"

namespace dgs::faults {

namespace {

void add_churn(FaultPlan* plan) {
  plan->churn.mtbf_hours = 18.0;
  plan->churn.mttr_hours = 1.5;
  plan->churn.station_fraction = 1.0;
}

void add_flaky_net(FaultPlan* plan) {
  plan->ack_relay.loss_probability = 0.35;
  plan->ack_relay.initial_backoff_s = 30.0;
  plan->ack_relay.backoff_multiplier = 2.0;
  plan->ack_relay.max_backoff_s = 900.0;
  plan->ack_relay.max_attempts = 12;
  plan->plan_upload.failure_probability = 0.15;
}

void add_brownout(FaultPlan* plan, std::uint64_t seed, int num_stations) {
  // ~25% of stations get one degradation window; every eighth affected
  // station is a hard blackout.  Windows are drawn from a dedicated PCG
  // stream so the selection is a pure function of (seed, num_stations).
  Pcg32 rng(mix_key(seed, 0x42524f574eULL));  // "BROWN"
  int affected = 0;
  for (int g = 0; g < num_stations; ++g) {
    const double pick = rng.uniform();
    const double start_h = 2.0 + rng.uniform() * 16.0;
    const double len_h = 1.0 + rng.uniform() * 3.0;
    if (pick >= 0.25) continue;
    BackhaulFault f;
    f.station_index = g;
    f.start_hours = start_h;
    f.end_hours = start_h + len_h;
    f.rate_multiplier = (affected % 8 == 7) ? 0.0 : 0.25;
    plan->backhaul.push_back(f);
    affected += 1;
  }
}

}  // namespace

FaultPlan make_profile(std::string_view name, std::uint64_t seed,
                       int num_stations) {
  DGS_ENSURE_GT(num_stations, 0);
  FaultPlan plan;
  plan.seed = seed;
  if (name == "none") return plan;
  if (name == "churn") {
    add_churn(&plan);
    return plan;
  }
  if (name == "flaky-net") {
    add_flaky_net(&plan);
    return plan;
  }
  if (name == "brownout") {
    add_brownout(&plan, seed, num_stations);
    return plan;
  }
  if (name == "storm") {
    add_churn(&plan);
    add_flaky_net(&plan);
    add_brownout(&plan, seed, num_stations);
    return plan;
  }
  DGS_ENSURE(false, "unknown fault profile '"
                        << name << "' (known: " << profile_names() << ")");
  return plan;  // unreachable
}

const char* profile_names() {
  return "none, churn, flaky-net, brownout, storm";
}

}  // namespace dgs::faults
