#include "src/link/dvbs2.h"

#include <algorithm>
#include <array>
#include <iterator>

#include "src/util/check.h"

namespace dgs::link {
namespace {

// EN 302 307 table 13 (normal FECFRAME, ideal demodulator).  Sorted by
// required Es/N0; spectral efficiencies include LDPC+BCH overhead.
constexpr ModCod kModCods[] = {
    {"QPSK 1/4", Modulation::kQpsk, 1.0 / 4, 0.490243, -2.35},
    {"QPSK 1/3", Modulation::kQpsk, 1.0 / 3, 0.656448, -1.24},
    {"QPSK 2/5", Modulation::kQpsk, 2.0 / 5, 0.789412, -0.30},
    {"QPSK 1/2", Modulation::kQpsk, 1.0 / 2, 0.988858, 1.00},
    {"QPSK 3/5", Modulation::kQpsk, 3.0 / 5, 1.188304, 2.23},
    {"QPSK 2/3", Modulation::kQpsk, 2.0 / 3, 1.322253, 3.10},
    {"QPSK 3/4", Modulation::kQpsk, 3.0 / 4, 1.487473, 4.03},
    {"QPSK 4/5", Modulation::kQpsk, 4.0 / 5, 1.587196, 4.68},
    {"QPSK 5/6", Modulation::kQpsk, 5.0 / 6, 1.654663, 5.18},
    {"8PSK 3/5", Modulation::k8psk, 3.0 / 5, 1.779991, 5.50},
    {"QPSK 8/9", Modulation::kQpsk, 8.0 / 9, 1.766451, 6.20},
    {"QPSK 9/10", Modulation::kQpsk, 9.0 / 10, 1.788612, 6.42},
    {"8PSK 2/3", Modulation::k8psk, 2.0 / 3, 1.980636, 6.62},
    {"8PSK 3/4", Modulation::k8psk, 3.0 / 4, 2.228124, 7.91},
    {"16APSK 2/3", Modulation::k16apsk, 2.0 / 3, 2.637201, 8.97},
    {"8PSK 5/6", Modulation::k8psk, 5.0 / 6, 2.478562, 9.35},
    {"16APSK 3/4", Modulation::k16apsk, 3.0 / 4, 2.966728, 10.21},
    {"8PSK 8/9", Modulation::k8psk, 8.0 / 9, 2.646012, 10.69},
    {"8PSK 9/10", Modulation::k8psk, 9.0 / 10, 2.679207, 10.98},
    {"16APSK 4/5", Modulation::k16apsk, 4.0 / 5, 3.165623, 11.03},
    {"16APSK 5/6", Modulation::k16apsk, 5.0 / 6, 3.300184, 11.61},
    {"32APSK 3/4", Modulation::k32apsk, 3.0 / 4, 3.703295, 12.73},
    {"16APSK 8/9", Modulation::k16apsk, 8.0 / 9, 3.523143, 12.89},
    {"16APSK 9/10", Modulation::k16apsk, 9.0 / 10, 3.567342, 13.13},
    {"32APSK 4/5", Modulation::k32apsk, 4.0 / 5, 3.951571, 13.64},
    {"32APSK 5/6", Modulation::k32apsk, 5.0 / 6, 4.119540, 14.28},
    {"32APSK 8/9", Modulation::k32apsk, 8.0 / 9, 4.397854, 15.69},
    {"32APSK 9/10", Modulation::k32apsk, 9.0 / 10, 4.453027, 16.05},
};

}  // namespace

std::span<const ModCod> dvbs2_modcods() {
  // One-time table sanity audit: EN 302 307 ordering (ascending required
  // Es/N0) and physically meaningful rates.  Index-based MODCOD round-trips
  // (dvbs2_framing) and select_modcod both lean on these properties.
  [[maybe_unused]] static const bool audited = [] {
    for (std::size_t i = 0; i < std::size(kModCods); ++i) {
      const ModCod& mc = kModCods[i];
      DGS_CHECK(mc.code_rate > 0.0 && mc.code_rate < 1.0,
                mc.name << ": code_rate=" << mc.code_rate);
      DGS_CHECK(mc.spectral_efficiency > 0.0,
                mc.name << ": spectral_efficiency="
                        << mc.spectral_efficiency);
      if (i > 0) {
        DGS_CHECK_GE(mc.required_esn0_db, kModCods[i - 1].required_esn0_db);
      }
    }
    return true;
  }();
  return kModCods;
}

const ModCod* select_modcod(double esn0_db, double margin_db) {
  DGS_ENSURE_GE(margin_db, 0.0);
  // The table is Es/N0-sorted, so the feasible entries form a prefix
  // (float addition of the same margin preserves the ordering).  It is
  // not strictly efficiency-sorted (some 8PSK entries need more SNR than
  // lower-order MODCODs with higher efficiency), so the answer is the
  // best entry over that prefix — precomputed once below with the same
  // first-wins tie-breaking as a linear max scan, hence the identical
  // pointer.  This runs once per candidate contact edge, so O(log n)
  // instead of O(n) matters at constellation scale.
  static const std::array<const ModCod*, std::size(kModCods)> kPrefixBest =
      [] {
        std::array<const ModCod*, std::size(kModCods)> best{};
        const ModCod* run = nullptr;
        for (std::size_t i = 0; i < std::size(kModCods); ++i) {
          if (run == nullptr ||
              kModCods[i].spectral_efficiency > run->spectral_efficiency) {
            run = &kModCods[i];
          }
          best[i] = run;
        }
        return best;
      }();
  const ModCod* end_feasible = std::partition_point(
      std::begin(kModCods), std::end(kModCods), [&](const ModCod& mc) {
        return mc.required_esn0_db + margin_db <= esn0_db;
      });
  if (end_feasible == std::begin(kModCods)) return nullptr;
  return kPrefixBest[static_cast<std::size_t>(end_feasible -
                                              std::begin(kModCods)) -
                     1];
}

double bitrate_bps(const ModCod& mc, double symbol_rate_hz) {
  DGS_ENSURE_GT(symbol_rate_hz, 0.0);
  return mc.spectral_efficiency * symbol_rate_hz;
}

}  // namespace dgs::link
