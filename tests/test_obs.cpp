// Unit tests for the observability subsystem (src/obs): metrics registry,
// scoped trace spans, and the structured event log.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/events.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "tests/json_lite.h"

namespace dgs::obs {
namespace {

using dgs::testing::json_number_field;
using dgs::testing::json_string_field;
using dgs::testing::json_valid;

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0.0);
  c.inc();
  c.inc(2.5);
  EXPECT_EQ(c.value(), 3.5);
}

TEST(Counter, ConcurrentIntegerIncrementsFoldExactly) {
  // The determinism contract: integer counts summed across shards are
  // associative, so the fold is exact for any thread/shard assignment.
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  // dgslint: allow(R3) -- deliberately hammers shards with raw threads
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    // dgslint: allow(R3) -- deliberately hammers shards with raw threads
    threads.emplace_back([&c] {
      for (int i = 0; i < kIters; ++i) c.inc();
    });
  }
  // dgslint: allow(R3) -- deliberately hammers shards with raw threads
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<double>(kThreads) * kIters);
}

TEST(Gauge, LastWriteWins) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(4.25);
  g.set(-1.5);
  EXPECT_EQ(g.value(), -1.5);
}

TEST(Histogram, BucketsAreCumulative) {
  Histogram h({1.0, 5.0, 10.0});
  h.observe(0.5);
  h.observe(3.0);
  h.observe(7.0);
  h.observe(100.0);
  EXPECT_EQ(h.cumulative_bucket(0), 1u);
  EXPECT_EQ(h.cumulative_bucket(1), 2u);
  EXPECT_EQ(h.cumulative_bucket(2), 3u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 110.5);
}

TEST(Histogram, BoundIsInclusive) {
  Histogram h({1.0, 2.0});
  h.observe(1.0);  // le="1" is <=, Prometheus semantics
  EXPECT_EQ(h.cumulative_bucket(0), 1u);
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(Registry, ReRegistrationReturnsTheSameInstance) {
  Registry r;
  Counter* a = r.counter("dgs_test_total", "help");
  Counter* b = r.counter("dgs_test_total", "ignored on re-registration");
  EXPECT_EQ(a, b);
}

TEST(Registry, TypeMismatchThrows) {
  Registry r;
  r.counter("dgs_test_total", "help");
  EXPECT_THROW(r.gauge("dgs_test_total", "help"), std::invalid_argument);
}

TEST(Registry, PrometheusExpositionShape) {
  Registry r;
  r.counter("dgs_test_b_total", "second family")->inc(17.0);
  r.counter("dgs_test_a_total", "first family")->inc(2.0);
  r.gauge("dgs_test_g", "a gauge")->set(1.5);
  Histogram* h = r.histogram("dgs_test_h", "a histogram", {1.0, 2.0});
  h->observe(0.5);
  h->observe(1.5);
  h->observe(9.0);

  std::stringstream ss;
  r.write_prometheus(ss);
  const std::string text = ss.str();

  // Families in ascending name order, each with HELP/TYPE headers.
  EXPECT_LT(text.find("dgs_test_a_total"), text.find("dgs_test_b_total"));
  EXPECT_NE(text.find("# HELP dgs_test_a_total first family\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE dgs_test_a_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("dgs_test_a_total 2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE dgs_test_g gauge\n"), std::string::npos);
  EXPECT_NE(text.find("dgs_test_g 1.5\n"), std::string::npos);
  // Histogram: cumulative le buckets, +Inf, _sum, _count.
  EXPECT_NE(text.find("# TYPE dgs_test_h histogram\n"), std::string::npos);
  EXPECT_NE(text.find("dgs_test_h_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("dgs_test_h_bucket{le=\"2\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("dgs_test_h_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("dgs_test_h_sum 11\n"), std::string::npos);
  EXPECT_NE(text.find("dgs_test_h_count 3\n"), std::string::npos);

  // counter + counter + gauge + histogram (2 buckets + Inf + sum + count).
  EXPECT_EQ(r.series_count(), 2u + 1u + 5u);
}

TEST(Trace, DisabledSpansRecordNothing) {
  set_trace_enabled(false);
  clear_trace();
  {
    DGS_TRACE_SPAN("test.disabled");
  }
  EXPECT_EQ(trace_span_count(), 0u);
}

// The remaining trace tests need spans compiled in; with
// -DDGS_OBS_TRACING=OFF the macro is a no-op and nothing records.
#ifndef DGS_OBS_NO_TRACING
TEST(Trace, RecordsAndExportsChromeJson) {
  clear_trace();
  set_trace_enabled(true);
  {
    DGS_TRACE_SPAN("test.outer");
    DGS_TRACE_SPAN("test.inner");
  }
  set_trace_enabled(false);
  EXPECT_EQ(trace_span_count(), 2u);

  std::stringstream ss;
  write_chrome_trace(ss);
  const std::string text = ss.str();
  EXPECT_TRUE(json_valid(text)) << text;
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(text.find("test.outer"), std::string::npos);
  EXPECT_NE(text.find("test.inner"), std::string::npos);

  clear_trace();
  EXPECT_EQ(trace_span_count(), 0u);
}

TEST(Trace, SpansFromWorkerThreadsSurviveThreadExit) {
  clear_trace();
  set_trace_enabled(true);
  // dgslint: allow(R3) -- exercises span collection across raw thread exit
  std::thread worker([] { DGS_TRACE_SPAN("test.worker"); });
  worker.join();
  set_trace_enabled(false);
  EXPECT_EQ(trace_span_count(), 1u);
  std::stringstream ss;
  write_chrome_trace(ss);
  EXPECT_NE(ss.str().find("test.worker"), std::string::npos);
  clear_trace();
}
#endif  // DGS_OBS_NO_TRACING

TEST(StepClock, SharedTimestampFormula) {
  const util::Epoch t0(util::DateTime{2020, 11, 4, 0, 0, 0.0});
  const StepClock clock(t0, 60.0);
  // Same formula the timeseries exporter uses: step end, hours.
  EXPECT_DOUBLE_EQ(clock.end_hours(0), 1.0 / 60.0);
  EXPECT_DOUBLE_EQ(clock.end_hours(59), 1.0);
  // step_start must be the simulator's own `now` formula (one
  // plus_seconds from t0, not an accumulation), bit for bit.
  EXPECT_EQ(clock.step_start(10).seconds_since(t0),
            t0.plus_seconds(600.0).seconds_since(t0));
  EXPECT_EQ(clock.step_seconds(), 60.0);
}

TEST(EventLog, DisabledEmittersAreNoOps) {
  EventLog log;  // no sink
  EXPECT_FALSE(log.enabled());
  log.begin_step(0, 0.0);
  log.contact_open(0, 0, "QPSK 1/2", 1e6, 10.0);
  log.bytes_moved(0, 0, 1.0, true);  // must not crash
}

TEST(EventLog, EveryEventTypeEmitsOneValidJsonLine) {
  std::stringstream ss;
  EventLog log(&ss);
  ASSERT_TRUE(log.enabled());
  log.begin_step(3, 0.05);
  log.contact_open(1, 2, "QPSK 3/4", 1e6, 45.5);
  log.modcod_selected(1, 2, "8PSK 2/3", 2e6);
  log.bytes_moved(1, 2, 1234.5, true);
  log.bytes_moved(1, 2, 10.25, false);
  log.ack_relayed(1, 2, 10.0, 5.0, 2);
  log.plan_uploaded(1, 2, 60.0);
  log.contact_close(1, 2, 4);
  log.outage_begin(7);
  log.outage_end(7);
  log.cache_hit(3);
  log.cache_miss(1);
  log.backhaul_step(1.0, 2.0, 3.0);

  std::set<std::string> types;
  std::string line;
  int lines = 0;
  while (std::getline(ss, line)) {
    ++lines;
    EXPECT_TRUE(json_valid(line)) << line;
    double step = -1.0;
    double t_hours = -1.0;
    EXPECT_TRUE(json_number_field(line, "step", &step)) << line;
    EXPECT_TRUE(json_number_field(line, "t_hours", &t_hours)) << line;
    EXPECT_EQ(step, 3.0);
    EXPECT_EQ(t_hours, 0.05);
    std::string type;
    ASSERT_TRUE(json_string_field(line, "type", &type)) << line;
    types.insert(type);
  }
  EXPECT_EQ(lines, 12);
  const std::set<std::string> expected{
      "contact_open", "modcod_selected", "bytes_moved", "ack_relayed",
      "plan_uploaded", "contact_close", "outage_begin", "outage_end",
      "cache_hit", "cache_miss", "backhaul_step"};
  EXPECT_EQ(types, expected);
}

TEST(EventLog, ByteQuantitiesRoundTripExactly) {
  std::stringstream ss;
  EventLog log(&ss);
  log.begin_step(0, 0.0);
  const double awkward = 123456789.000000123;  // does not survive %g
  log.bytes_moved(0, 1, awkward, true);
  double parsed = 0.0;
  const std::string line = ss.str();
  ASSERT_TRUE(json_number_field(line, "bytes", &parsed)) << line;
  EXPECT_EQ(parsed, awkward);  // bit-exact: the log is a ledger
}

}  // namespace
}  // namespace dgs::obs
