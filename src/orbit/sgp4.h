// SGP4 orbit propagator (near-earth variant).
//
// From-scratch implementation of the SGP4 analytical theory in the
// formulation of Vallado et al., "Revisiting Spacetrack Report #3" (AIAA
// 2006-6753), using the WGS-72 gravity constants that NORAD element sets are
// fitted against.  Output state vectors are in the TEME (True Equator, Mean
// Equinox) inertial frame of the element set epoch, in kilometres and
// kilometres per second.
//
// Scope: the near-earth theory only.  All satellites in the paper's
// evaluation are LEO (300-600 km, period ~90 min); element sets with periods
// of 225 minutes or more require the deep-space extension (SDP4) and are
// rejected at construction with std::domain_error.
#pragma once

#include "src/orbit/tle.h"
#include "src/util/time.h"
#include "src/util/vec3.h"

namespace dgs::orbit {

/// Position/velocity state in the TEME frame.
struct TemeState {
  util::Vec3 position_km;
  util::Vec3 velocity_km_s;
};

class Sgp4 {
 public:
  /// Initializes the propagator from a parsed element set.
  /// Throws std::domain_error for deep-space (period >= 225 min) or
  /// physically invalid element sets.
  explicit Sgp4(const Tle& tle);

  /// Propagates to `tsince_minutes` after the element set epoch (may be
  /// negative).  Throws std::domain_error if the mean elements become
  /// non-physical (eccentricity out of range, negative semi-latus rectum)
  /// or the satellite has decayed below the Earth's surface.
  TemeState propagate(double tsince_minutes) const;

  /// Propagates to an absolute epoch.
  TemeState propagate_to(const util::Epoch& when) const {
    return propagate(when.minutes_since(epoch_));
  }

  const util::Epoch& epoch() const { return epoch_; }
  int satnum() const { return satnum_; }
  /// Un-Kozai'd (Brouwer) mean motion [rad/min] recovered during init.
  double mean_motion_rad_per_min() const { return no_unkozai_; }
  /// Orbital period from the recovered mean motion [minutes].
  double period_minutes() const;

 private:
  util::Epoch epoch_;
  int satnum_ = 0;

  // Elements at epoch (radians, rad/min).
  double ecco_ = 0.0, inclo_ = 0.0, nodeo_ = 0.0, argpo_ = 0.0, mo_ = 0.0;
  double no_unkozai_ = 0.0;
  double bstar_ = 0.0;

  // Derived initialization constants (names follow the reference theory).
  bool isimp_ = false;
  double aycof_ = 0.0, con41_ = 0.0, cc1_ = 0.0, cc4_ = 0.0, cc5_ = 0.0;
  double d2_ = 0.0, d3_ = 0.0, d4_ = 0.0;
  double delmo_ = 0.0, eta_ = 0.0, argpdot_ = 0.0, omgcof_ = 0.0;
  double sinmao_ = 0.0, t2cof_ = 0.0, t3cof_ = 0.0, t4cof_ = 0.0, t5cof_ = 0.0;
  double x1mth2_ = 0.0, x7thm1_ = 0.0, mdot_ = 0.0, nodedot_ = 0.0;
  double xlcof_ = 0.0, xmcof_ = 0.0, nodecf_ = 0.0;
};

}  // namespace dgs::orbit
