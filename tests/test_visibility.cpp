// Contact graph construction: geometry, masks, constraints, weather input.
#include <gtest/gtest.h>

#include <stdexcept>

#include "src/core/visibility.h"
#include "src/orbit/passes.h"
#include "src/util/angles.h"

namespace dgs::core {
namespace {

using util::deg2rad;

const util::Epoch kEpoch(util::DateTime{2020, 11, 4, 0, 0, 0.0});

groundseg::NetworkOptions small_opts() {
  groundseg::NetworkOptions opts;
  opts.num_stations = 12;
  opts.num_satellites = 8;
  opts.seed = 7;
  return opts;
}

class VisibilityTest : public ::testing::Test {
 protected:
  VisibilityTest()
      : sats_(groundseg::generate_constellation(small_opts(), kEpoch)),
        stations_(groundseg::generate_dgs_stations(small_opts())),
        engine_(sats_, stations_, nullptr) {}

  std::vector<groundseg::SatelliteConfig> sats_;
  std::vector<groundseg::GroundStation> stations_;
  VisibilityEngine engine_;
};

TEST_F(VisibilityTest, EdgesRespectElevationMasks) {
  for (double h = 0.0; h < 3.0; h += 0.25) {
    const util::Epoch t = kEpoch.plus_seconds(h * 3600.0);
    for (const ContactEdge& e : engine_.contacts(t)) {
      EXPECT_GE(e.elevation_rad,
                stations_[e.station].min_elevation_rad - 1e-9);
      EXPECT_GT(e.range_km, 400.0);   // never below the orbit altitude
      EXPECT_LT(e.range_km, 3500.0);  // LEO horizon limit
    }
  }
}

TEST_F(VisibilityTest, EdgesAgreeWithPassPredictor) {
  // Cross-check against the independent pass predictor for one pair.
  const orbit::Sgp4 prop(sats_[0].tle);
  const auto& gs = stations_[0];
  orbit::PassPredictorOptions popts;
  popts.min_elevation_rad = gs.min_elevation_rad;
  const auto passes = orbit::predict_passes(prop, gs.location, kEpoch,
                                            kEpoch.plus_days(0.5), popts);
  for (const orbit::Pass& p : passes) {
    const util::Epoch mid = p.aos.plus_seconds(p.duration_seconds() / 2.0);
    EXPECT_TRUE(engine_.visible(0, 0, mid));
    bool found = false;
    for (const ContactEdge& e : engine_.contacts(mid)) {
      if (e.sat == 0 && e.station == 0) found = true;
    }
    EXPECT_TRUE(found) << "pass at " << mid.to_string();
  }
}

TEST_F(VisibilityTest, SomeContactsExistOverAnOrbit) {
  int total = 0;
  for (double m = 0.0; m < 100.0; m += 5.0) {
    total += static_cast<int>(
        engine_.contacts(kEpoch.plus_seconds(m * 60.0)).size());
  }
  EXPECT_GT(total, 0);
}

TEST_F(VisibilityTest, PredictedRatesDecreaseWithRange) {
  // Within a single station's simultaneous contacts, a much longer slant
  // range never yields a faster predicted rate.
  for (double m = 0.0; m < 200.0; m += 10.0) {
    const auto edges = engine_.contacts(kEpoch.plus_seconds(m * 60.0));
    for (const auto& a : edges) {
      for (const auto& b : edges) {
        if (a.station != b.station) continue;
        if (a.range_km > b.range_km * 1.8) {
          EXPECT_LE(a.predicted_rate_bps, b.predicted_rate_bps + 1e-6);
        }
      }
    }
  }
}

TEST_F(VisibilityTest, ConstraintsRemoveEdges) {
  // Deny satellite 0 everywhere; its edges must vanish.
  auto constrained = stations_;
  for (auto& gs : constrained) {
    gs.constraints = groundseg::DownlinkConstraints(sats_.size());
    gs.constraints.deny(0);
  }
  VisibilityEngine restricted(sats_, constrained, nullptr);
  for (double m = 0.0; m < 300.0; m += 7.0) {
    for (const ContactEdge& e :
         restricted.contacts(kEpoch.plus_seconds(m * 60.0))) {
      EXPECT_NE(e.sat, 0);
    }
  }
}

TEST_F(VisibilityTest, RainAtAStationReducesItsPredictedRate) {
  // A provider that rains hard everywhere vs clear sky.
  class Monsoon final : public weather::WeatherProvider {
   public:
    weather::WeatherSample actual(double, double,
                                  const util::Epoch&) const override {
      return {40.0, 2.0};
    }
  } monsoon;

  VisibilityEngine wet(sats_, stations_, &monsoon);
  for (double m = 0.0; m < 200.0; m += 10.0) {
    const util::Epoch t = kEpoch.plus_seconds(m * 60.0);
    const auto clear_edges = engine_.contacts(t);
    const auto wet_edges = wet.contacts(t);
    // Wet predictions never exceed clear ones for the same pair.
    for (const auto& ce : clear_edges) {
      for (const auto& we : wet_edges) {
        if (we.sat == ce.sat && we.station == ce.station) {
          EXPECT_LE(we.predicted_rate_bps, ce.predicted_rate_bps + 1e-6);
        }
      }
    }
    // And the wet graph cannot contain extra edges.
    EXPECT_LE(wet_edges.size(), clear_edges.size());
  }
}

TEST_F(VisibilityTest, SatelliteEcefIsLeoAltitude) {
  for (int s = 0; s < engine_.num_sats(); ++s) {
    const double r = engine_.satellite_ecef(s, kEpoch).norm();
    EXPECT_GT(r, 6800.0);
    EXPECT_LT(r, 7050.0);
  }
}

TEST_F(VisibilityTest, LeadVectorSizeValidated) {
  std::vector<double> bad(3, 0.0);  // wrong size
  EXPECT_THROW(engine_.contacts(kEpoch, bad), std::invalid_argument);
}

}  // namespace
}  // namespace dgs::core
