#include "src/weather/synthetic.h"

#include <algorithm>
#include <cmath>

#include "src/util/angles.h"
#include "src/util/check.h"
#include "src/util/constants.h"
#include "src/util/rng.h"
#include "src/weather/climatology.h"

namespace dgs::weather {
namespace {

constexpr double kEarthRadiusKm = 6371.0;

/// SplitMix64 — used for deterministic forecast-error angles.
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

SyntheticWeatherProvider::SyntheticWeatherProvider(
    std::uint64_t seed, const util::Epoch& start, double horizon_hours,
    const SyntheticWeatherOptions& opts)
    : start_(start), horizon_s_(horizon_hours * 3600.0), opts_(opts),
      seed_(seed) {
  DGS_ENSURE_GT(horizon_hours, 0.0);
  DGS_ENSURE_GE(opts.mean_active_storms, 0);
  util::Rng rng(seed);

  // Storms whose lifetime overlaps the horizon: steady-state population times
  // (horizon + lifetime) / lifetime.
  const double life_s = opts_.mean_lifetime_hours * 3600.0;
  const int total = static_cast<int>(
      opts_.mean_active_storms * (horizon_s_ + life_s) / life_s);
  storms_.reserve(total);

  for (int i = 0; i < total; ++i) {
    Storm s;
    // Rejection-sample a latitude from climatological storm density,
    // area-weighted by cos(lat).
    for (;;) {
      const double lat = rng.uniform(-util::kPi / 2.0, util::kPi / 2.0);
      const double w = storm_density_weight(lat) * std::cos(lat);
      if (rng.uniform() < w) {
        s.lat0_rad = lat;
        break;
      }
    }
    s.lon0_rad = rng.uniform(-util::kPi, util::kPi);

    // Zonal drift: easterlies inside 30 deg, westerlies poleward of it.
    const double lat_deg = util::rad2deg(std::fabs(s.lat0_rad));
    const double zonal_m_s = (lat_deg < 30.0 ? -1.0 : 1.0) *
                             rng.uniform(5.0, 25.0);
    const double meridional_m_s = rng.normal(0.0, 3.0);
    const double coslat = std::max(0.2, std::cos(s.lat0_rad));
    s.vel_east_rad_s = zonal_m_s / (kEarthRadiusKm * 1000.0 * coslat);
    s.vel_north_rad_s = meridional_m_s / (kEarthRadiusKm * 1000.0);

    const double lifetime = rng.exponential(1.0 / life_s);
    s.birth_s = rng.uniform(-lifetime, horizon_s_);
    s.death_s = s.birth_s + lifetime;

    s.radius_km = std::max(40.0, rng.normal(opts_.mean_radius_km,
                                            opts_.mean_radius_km * 0.4));
    const double typical = typical_peak_rain_mm_h(s.lat0_rad);
    s.peak_rain_mm_h = std::min(120.0, rng.exponential(1.0 / typical));
    s.cloud_kg_m2 = rng.uniform(0.4, 1.6);
    storms_.push_back(s);
  }
}

WeatherSample SyntheticWeatherProvider::sample_at(double lat, double lon,
                                                  double t_s) const {
  WeatherSample out;
  out.cloud_liquid_kg_m2 = background_cloud_kg_m2(lat);

  for (const Storm& s : storms_) {
    if (t_s < s.birth_s || t_s > s.death_s) continue;
    const double age = t_s - s.birth_s;
    const double c_lat = s.lat0_rad + s.vel_north_rad_s * age;
    const double c_lon = s.lon0_rad + s.vel_east_rad_s * age;

    // The precipitating core is much smaller than the cloud shield: rain
    // covers only a few percent of the globe at any instant while cloud
    // cover is a large fraction.
    const double cloud_sigma = s.radius_km;
    const double rain_sigma = s.radius_km / 4.0;

    // Cheap meridional prefilter: |dlat| alone already exceeds the shield.
    if (std::fabs(lat - c_lat) * kEarthRadiusKm > 3.5 * cloud_sigma) continue;

    const double d_km =
        util::great_circle_angle(lat, lon, c_lat, c_lon) * kEarthRadiusKm;
    if (d_km > 3.5 * cloud_sigma) continue;

    // Storm intensity ramps up and decays over its lifetime (sine envelope).
    const double life = s.death_s - s.birth_s;
    const double envelope = std::sin(util::kPi * age / life);

    if (d_km < 2.5 * rain_sigma) {
      const double rain =
          s.peak_rain_mm_h * envelope *
          std::exp(-d_km * d_km / (2.0 * rain_sigma * rain_sigma));
      out.rain_rate_mm_h = std::max(out.rain_rate_mm_h, rain);
    }
    out.cloud_liquid_kg_m2 +=
        s.cloud_kg_m2 * envelope *
        std::exp(-d_km * d_km / (2.0 * cloud_sigma * cloud_sigma));
  }
  out.cloud_liquid_kg_m2 = std::min(out.cloud_liquid_kg_m2, 4.0);
  return out;
}

WeatherSample SyntheticWeatherProvider::actual(double latitude_rad,
                                               double longitude_rad,
                                               const util::Epoch& when) const {
  return sample_at(latitude_rad, longitude_rad, when.seconds_since(start_));
}

WeatherSample SyntheticWeatherProvider::forecast(double latitude_rad,
                                                 double longitude_rad,
                                                 const util::Epoch& when,
                                                 double lead_seconds) const {
  DGS_ENSURE_GE(lead_seconds, 0.0);
  // A forecast error is modelled as evaluating the true field at a point
  // displaced by an error that grows with lead time.  The displacement
  // direction is a deterministic function of (seed, forecast valid-hour),
  // mimicking a coherent model bias rather than white noise.
  const double lead_h = lead_seconds / 3600.0;
  const double err_km = opts_.forecast_drift_km_per_hour * lead_h;
  const std::uint64_t key =
      mix64(seed_ ^ static_cast<std::uint64_t>(when.jd() * 24.0));
  const double angle =
      static_cast<double>(key % 62832) / 10000.0;  // [0, 2*pi)
  const double dlat = err_km * std::sin(angle) / kEarthRadiusKm;
  const double coslat = std::max(0.2, std::cos(latitude_rad));
  const double dlon = err_km * std::cos(angle) / (kEarthRadiusKm * coslat);
  return sample_at(latitude_rad + dlat, longitude_rad + dlon,
                   when.seconds_since(start_));
}

}  // namespace dgs::weather
