// Run-artifact contract: the versioned schema of everything a simulation
// run writes to disk, plus validators and a restricted JSON reader.
//
// A run produces three artifacts (DESIGN.md §12): the summary JSON
// (headline metrics), the timeseries CSV (per-step curves), and the JSONL
// event log.  Their shapes used to live implicitly in three places —
// report.cpp's writers, dgs_cli's consumers, and tests/json_lite.h — and
// drifted independently.  This module is now the single source of truth:
// the writers in report.h iterate summary_field_specs(), the validators
// here check the same table, and every consumer (dgs_cli, the Monte-Carlo
// campaign runner, the test suite, CI) pins kRunArtifactSchemaVersion.
//
// Versioning policy: the version is a single integer stamped into every
// summary and aggregate document as its first key.  Any change to the key
// set, key order, nesting, or number formatting of an artifact bumps it;
// adding a new event type to the JSONL log does not (event lines are
// self-describing via "type").  Validators accept exactly the current
// version — a campaign never mixes artifacts from two schema generations.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dgs::core {

/// Bumped on any incompatible artifact-shape change (see policy above).
/// v2: the summary gained the "tenants" field (multi-tenant service mode,
/// DESIGN.md §16) and the dgs.checkpoint.v1 header joined the artifact
/// family.
inline constexpr int kRunArtifactSchemaVersion = 2;

/// One invalid spot in an artifact: where it is and what is wrong,
/// mirroring OptionsError's shape for CLI error messages.
struct ArtifactError {
  std::string where;    ///< e.g. "summary.latency_minutes" or "line 17".
  std::string message;  ///< Human-readable constraint description.
};

// ---------------------------------------------------------------------------
// Restricted JSON reader.
//
// Run artifacts deliberately use a JSON subset — objects, numbers,
// strings, booleans, and null; no arrays, no non-ASCII escapes — so the
// reader stays small enough to be obviously correct and every consumer
// (including the campaign aggregator) shares one implementation.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  /// Object members in document order (order is part of the contract).
  std::vector<std::pair<std::string, JsonValue>> members;

  /// First member with this key, or nullptr.
  const JsonValue* find(std::string_view key) const;
};

/// Parses one complete document of the restricted subset.  On failure
/// returns nullopt and fills `err` (byte offset + reason) when non-null.
std::optional<JsonValue> parse_restricted_json(std::string_view text,
                                               ArtifactError* err = nullptr);

// ---------------------------------------------------------------------------
// Summary JSON schema (one flat object; see report.h for the writer).

enum class SummaryFieldKind {
  kInt,      ///< Integer-valued number (emitted %lld).
  kReal,     ///< Real-valued number (emitted %.6f).
  kStats,    ///< Percentile object {median,p90,p99,mean,count} or null.
  kTenants,  ///< Per-tenant object keyed "t_%03d" (tenant_field_specs),
             ///< or null for single-tenant runs.
};

struct SummaryFieldSpec {
  const char* key;
  SummaryFieldKind kind;
};

/// The authoritative ordered field list of the summary JSON.  The writer
/// emits exactly these keys in exactly this order; the validator rejects
/// anything else.
std::span<const SummaryFieldSpec> summary_field_specs();

/// Member keys of a kStats percentile object, in emission order.
std::span<const char* const> stats_member_keys();

// Per-tenant summary rows (the kTenants field; service mode, DESIGN.md
// §16).  The restricted subset has no arrays, so tenants live in an object
// keyed "t_%03d" in declaration order, mirroring the netdesign "k_%03d"
// convention.

enum class TenantFieldKind {
  kTInt,    ///< Integer-valued number (emitted %lld).
  kTReal,   ///< Real-valued number (emitted %.6f).
  kTString, ///< Non-empty string.
  kTStats,  ///< Percentile object (stats_member_keys) or null.
};

struct TenantFieldSpec {
  const char* key;
  TenantFieldKind kind;
};

/// Ordered member list of one tenant row in the summary "tenants" object.
std::span<const TenantFieldSpec> tenant_field_specs();

/// The exact timeseries CSV header row (no trailing newline).
std::string_view timeseries_csv_header();

/// Full schema validation of a summary JSON document: syntax, pinned
/// schema_version, exact key set and order, per-field kinds.
std::optional<ArtifactError> validate_summary_json(std::string_view text);

/// Timeseries CSV: exact header, 5 numeric columns per row, strictly
/// increasing hours.
std::optional<ArtifactError> validate_timeseries_csv(std::string_view text);

/// Event log: every non-empty line is a restricted-JSON object opening
/// with ("t_hours": number, "step": integer >= 0, "type": string).
std::optional<ArtifactError> validate_events_jsonl(std::string_view text);

/// A parsed-and-validated summary, ready for campaign aggregation.
struct RunSummary {
  JsonValue root;  ///< Validated object (kind == kObject).

  /// Value of a kInt/kReal field; the field must exist (checked).
  double scalar(std::string_view key) const;
  /// Percentile object of a kStats field, or nullptr when it was null.
  const JsonValue* stats(std::string_view key) const;
};

/// validate_summary_json + DOM in one pass.
std::optional<ArtifactError> parse_summary_json(std::string_view text,
                                                RunSummary* out);

// ---------------------------------------------------------------------------
// Campaign artifacts (src/campaign): the manifest identifying a campaign
// and the aggregate produced from its sample summaries.

/// Manifest: flat object with schema_version, artifact tag
/// "campaign_manifest", the scenario identity fields, and nothing else.
std::optional<ArtifactError> validate_campaign_manifest_json(
    std::string_view text);

/// Aggregate: schema_version + artifact tag "campaign_aggregate" +
/// campaign identity + a "metrics" object whose values each carry exactly
/// {mean, sd, ci95, p50, p99, min, max, count}.
std::optional<ArtifactError> validate_campaign_aggregate_json(
    std::string_view text);

/// Member keys of one aggregate metric object, in emission order.
std::span<const char* const> aggregate_metric_member_keys();

// ---------------------------------------------------------------------------
// Network-design artifacts (src/netdesign): the cost/performance Pareto
// front emitted by a budget sweep (`dgs.netdesign.v1`).  Same restricted
// JSON subset; the per-K points live in a "points" object keyed "k_%03d"
// (ascending) because the subset has no arrays.

enum class NetdesignFieldKind {
  kNInt,     ///< Integer-valued number (emitted %lld).
  kNReal,    ///< Real-valued number (emitted %.6f).
  kNBool,    ///< true / false.
  kNString,  ///< Non-empty string.
};

struct NetdesignFieldSpec {
  const char* key;
  NetdesignFieldKind kind;
};

/// Front identity fields (emitted after schema_version + the
/// "netdesign_front" tag, in this order): what pool and scenario the
/// sweep optimized over.
std::span<const NetdesignFieldSpec> netdesign_identity_specs();

/// Ordered member list of one front point.  "station_ids" is the selected
/// subset as a comma-joined ascending id list; its length must equal the
/// "stations" member.
std::span<const NetdesignFieldSpec> netdesign_point_specs();

/// Full schema validation of a netdesign front document: header, identity
/// fields, non-empty "points" object with ascending "k_NNN" keys matching
/// each point's "stations" value, exact per-point key set/order/kinds,
/// and station_ids consistency.
std::optional<ArtifactError> validate_netdesign_front_json(
    std::string_view text);

// ---------------------------------------------------------------------------
// Checkpoint artifact (src/core/checkpoint.h): the `dgs.checkpoint.v1`
// container opens with a restricted-JSON header identifying the run a
// snapshot belongs to.  The binary framing (magic line, sized sections,
// CRC) is defined in checkpoint.h; the header's key set lives here so the
// writer and the validator iterate one spec table like every other
// artifact.  The magic names the container format; schema_version inside
// the header is the repo-wide artifact generation, like every artifact.

/// Header identity fields (emitted after schema_version + the
/// "checkpoint" tag, in this order).  "finalized" records whether the
/// horizon had completed; the trailing section/payload fields pin the
/// binary framing that follows the header.
std::span<const NetdesignFieldSpec> checkpoint_header_specs();

/// Ordered payload section names of a checkpoint, the exact sequence the
/// writer emits and the reader requires.
std::span<const char* const> checkpoint_section_names();

/// Full schema validation of a checkpoint header document: artifact
/// header, exact key set/order/kinds, and range checks (positive grid,
/// step_index within [0, steps], CRC/size fields representable).
std::optional<ArtifactError> validate_checkpoint_header_json(
    std::string_view text);

}  // namespace dgs::core
