#include "src/obs/metrics.h"

#include <cstdio>
#include <cstdlib>
#include <ostream>

#include "src/util/check.h"

namespace dgs::obs {

namespace internal {

int this_thread_shard() {
  static std::atomic<int> next{0};
  thread_local const int slot =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return slot;
}

}  // namespace internal

namespace {

/// Shortest round-trip-exact rendering of a sample value ("17" stays "17",
/// byte totals keep every bit).
std::string format_value(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Prefer the compact form when it round-trips (it always does for the
  // small integers most counters hold).
  char compact[64];
  std::snprintf(compact, sizeof(compact), "%g", v);
  double back = 0.0;
  std::sscanf(compact, "%lf", &back);
  return back == v ? compact : buf;
}

}  // namespace

void Counter::reset_to(double v) {
  for (Shard& s : shards_) s.cell.store(0.0, std::memory_order_relaxed);
  shards_[static_cast<std::size_t>(internal::this_thread_shard())].cell.store(
      v, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  DGS_ENSURE(!bounds_.empty(), "histogram needs at least one bucket bound");
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    DGS_ENSURE(bounds_[i - 1] < bounds_[i],
               "bounds must ascend: " << bounds_[i - 1] << " then "
                                      << bounds_[i]);
  }
  for (Shard& s : shards_) {
    s.cells = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
  }
}

void Histogram::observe(double v) {
  // Lower-bound search over the (short) bound list; the overflow cell is
  // the implicit +Inf bucket.
  std::size_t b = 0;
  while (b < bounds_.size() && v > bounds_[b]) ++b;
  Shard& s = shards_[static_cast<std::size_t>(internal::this_thread_shard())];
  s.cells[b].fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(v, std::memory_order_relaxed);
}

std::uint64_t Histogram::cumulative_bucket(std::size_t i) const {
  DGS_ENSURE_LT(i, bounds_.size());
  std::uint64_t n = 0;
  for (const Shard& s : shards_) {
    for (std::size_t b = 0; b <= i; ++b) {
      n += s.cells[b].load(std::memory_order_relaxed);
    }
  }
  return n;
}

std::uint64_t Histogram::count() const {
  std::uint64_t n = 0;
  for (const Shard& s : shards_) {
    for (const std::atomic<std::uint64_t>& c : s.cells) {
      n += c.load(std::memory_order_relaxed);
    }
  }
  return n;
}

double Histogram::sum() const {
  double total = 0.0;
  for (const Shard& s : shards_) {
    total += s.sum.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<std::uint64_t> Histogram::folded_cells() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1, 0);
  for (const Shard& s : shards_) {
    for (std::size_t b = 0; b < out.size(); ++b) {
      out[b] += s.cells[b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

void Histogram::reset_to(std::span<const std::uint64_t> cells, double sum) {
  DGS_ENSURE_EQ(cells.size(), bounds_.size() + 1);
  for (Shard& s : shards_) {
    for (std::atomic<std::uint64_t>& c : s.cells) {
      c.store(0, std::memory_order_relaxed);
    }
    s.sum.store(0.0, std::memory_order_relaxed);
  }
  Shard& mine =
      shards_[static_cast<std::size_t>(internal::this_thread_shard())];
  for (std::size_t b = 0; b < cells.size(); ++b) {
    mine.cells[b].store(cells[b], std::memory_order_relaxed);
  }
  mine.sum.store(sum, std::memory_order_relaxed);
}

Registry::Entry& Registry::entry_for(const std::string& name, Kind kind,
                                     const std::string& help) {
  DGS_ENSURE(!name.empty(), "metric name must be non-empty");
  const auto it = entries_.find(name);
  if (it != entries_.end()) {
    DGS_ENSURE(it->second.kind == kind,
               "metric '" << name << "' re-registered as a different type");
    return it->second;
  }
  Entry e;
  e.kind = kind;
  e.help = help;
  return entries_.emplace(name, std::move(e)).first->second;
}

Counter* Registry::counter(const std::string& name, const std::string& help) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = entry_for(name, Kind::kCounter, help);
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return e.counter.get();
}

Gauge* Registry::gauge(const std::string& name, const std::string& help) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = entry_for(name, Kind::kGauge, help);
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return e.gauge.get();
}

Histogram* Registry::histogram(const std::string& name,
                               const std::string& help,
                               std::vector<double> upper_bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = entry_for(name, Kind::kHistogram, help);
  if (!e.histogram) {
    e.histogram = std::make_unique<Histogram>(std::move(upper_bounds));
  }
  return e.histogram.get();
}

void Registry::write_prometheus(std::ostream& out) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, e] : entries_) {
    out << "# HELP " << name << ' ' << e.help << '\n';
    switch (e.kind) {
      case Kind::kCounter:
        out << "# TYPE " << name << " counter\n";
        out << name << ' ' << format_value(e.counter->value()) << '\n';
        break;
      case Kind::kGauge:
        out << "# TYPE " << name << " gauge\n";
        out << name << ' ' << format_value(e.gauge->value()) << '\n';
        break;
      case Kind::kHistogram: {
        out << "# TYPE " << name << " histogram\n";
        const Histogram& h = *e.histogram;
        for (std::size_t i = 0; i < h.upper_bounds().size(); ++i) {
          out << name << "_bucket{le=\""
              << format_value(h.upper_bounds()[i]) << "\"} "
              << h.cumulative_bucket(i) << '\n';
        }
        out << name << "_bucket{le=\"+Inf\"} " << h.count() << '\n';
        out << name << "_sum " << format_value(h.sum()) << '\n';
        out << name << "_count " << h.count() << '\n';
        break;
      }
    }
  }
}

std::size_t Registry::series_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& [name, e] : entries_) {
    (void)name;
    n += e.kind == Kind::kHistogram
             ? e.histogram->upper_bounds().size() + 3  // buckets+Inf+sum+cnt
             : 1;
  }
  return n;
}

std::vector<MetricSnapshot> Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MetricSnapshot> out;
  out.reserve(entries_.size());
  for (const auto& [name, e] : entries_) {
    MetricSnapshot m;
    m.name = name;
    m.help = e.help;
    switch (e.kind) {
      case Kind::kCounter:
        m.kind = 0;
        m.value = e.counter->value();
        break;
      case Kind::kGauge:
        m.kind = 1;
        m.value = e.gauge->value();
        break;
      case Kind::kHistogram:
        m.kind = 2;
        m.upper_bounds = e.histogram->upper_bounds();
        m.cells = e.histogram->folded_cells();
        m.sum = e.histogram->sum();
        break;
    }
    out.push_back(std::move(m));
  }
  return out;
}

void Registry::restore(std::span<const MetricSnapshot> metrics) {
  for (const MetricSnapshot& m : metrics) {
    switch (m.kind) {
      case 0:
        counter(m.name, m.help)->reset_to(m.value);
        break;
      case 1:
        gauge(m.name, m.help)->set(m.value);
        break;
      case 2: {
        Histogram* h = histogram(m.name, m.help, m.upper_bounds);
        DGS_ENSURE(h->upper_bounds() == m.upper_bounds,
                   "histogram '" << m.name
                                 << "' restored with different buckets");
        h->reset_to(m.cells, m.sum);
        break;
      }
      default:
        DGS_ENSURE(false, "unknown metric kind " << m.kind << " for '"
                                                 << m.name << "'");
    }
  }
}

bool read_prometheus_sample(std::string_view exposition,
                            std::string_view name, double* out) {
  std::size_t pos = 0;
  while (pos < exposition.size()) {
    std::size_t eol = exposition.find('\n', pos);
    if (eol == std::string_view::npos) eol = exposition.size();
    const std::string_view line = exposition.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.find(' ');
    if (space == std::string_view::npos || line.substr(0, space) != name) {
      continue;
    }
    // NUL-terminated copy for strtod.
    const std::string value(line.substr(space + 1));
    char* end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    if (end == value.c_str()) return false;
    *out = v;
    return true;
  }
  return false;
}

}  // namespace dgs::obs
