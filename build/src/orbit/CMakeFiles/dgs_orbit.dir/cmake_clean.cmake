file(REMOVE_RECURSE
  "CMakeFiles/dgs_orbit.dir/frames.cpp.o"
  "CMakeFiles/dgs_orbit.dir/frames.cpp.o.d"
  "CMakeFiles/dgs_orbit.dir/groundtrack.cpp.o"
  "CMakeFiles/dgs_orbit.dir/groundtrack.cpp.o.d"
  "CMakeFiles/dgs_orbit.dir/kepler.cpp.o"
  "CMakeFiles/dgs_orbit.dir/kepler.cpp.o.d"
  "CMakeFiles/dgs_orbit.dir/numerical.cpp.o"
  "CMakeFiles/dgs_orbit.dir/numerical.cpp.o.d"
  "CMakeFiles/dgs_orbit.dir/passes.cpp.o"
  "CMakeFiles/dgs_orbit.dir/passes.cpp.o.d"
  "CMakeFiles/dgs_orbit.dir/sgp4.cpp.o"
  "CMakeFiles/dgs_orbit.dir/sgp4.cpp.o.d"
  "CMakeFiles/dgs_orbit.dir/sun.cpp.o"
  "CMakeFiles/dgs_orbit.dir/sun.cpp.o.d"
  "CMakeFiles/dgs_orbit.dir/tle.cpp.o"
  "CMakeFiles/dgs_orbit.dir/tle.cpp.o.d"
  "libdgs_orbit.a"
  "libdgs_orbit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgs_orbit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
