# Empty dependencies file for station_agenda.
# This may be replaced when dependencies are built.
