// The ack-free downlink protocol, step by step (paper §3.3).
//
// One satellite, three stations: two receive-only, one transmit-capable.
// This example traces a few hours of operation and prints every protocol
// event: data dumps to receive-only stations, ack relay through the
// Internet-connected backend, collated-ack upload at the TX contact, and
// on-board storage being released only then.
#include <cstdio>

#include "src/core/dgs.h"

int main() {
  using namespace dgs;
  using util::deg2rad;

  const util::Epoch epoch(util::DateTime{2020, 11, 4, 0, 0, 0.0});
  groundseg::NetworkOptions net;
  net.num_satellites = 1;
  auto sats = groundseg::generate_constellation(net, epoch);
  sats[0].tle.inclination_deg = 97.5;  // pin an SSO orbit for the walkthrough
  sats[0].data_generation_bytes_per_day = 200e9;

  // A receive-only pair in Europe and North America, one TX site in Japan:
  // the satellite meets the acks two continents after dumping the data.
  auto make_station = [](int id, const char* name, double lat, double lon,
                         bool tx) {
    groundseg::GroundStation gs;
    gs.id = id;
    gs.name = name;
    gs.location = {deg2rad(lat), deg2rad(lon), 0.2};
    gs.min_elevation_rad = deg2rad(5.0);
    gs.tx_capable = tx;
    gs.refresh_ecef();
    return gs;
  };
  const std::vector<groundseg::GroundStation> stations{
      make_station(0, "Lisbon (receive-only)", 38.7, -9.1, false),
      make_station(1, "Denver (receive-only)", 39.7, -105.0, false),
      make_station(2, "Tokyo (TX-capable)", 35.7, 139.7, true),
  };

  std::printf("Protocol walkthrough: 1 satellite, 2 receive-only stations, "
              "1 transmit-capable station\n");
  std::printf("(paper Sec. 3.3: data is discarded on-board only after an "
              "ack round-trips via a TX contact)\n\n");

  core::VisibilityEngine engine(sats, stations, nullptr);
  core::Scheduler sched(&engine, core::SchedulerConfig{});
  std::vector<core::OnboardQueue> queues(1);
  core::OnboardQueue& q = queues[0];

  const double dt = 60.0;
  double last_storage = -1.0;
  for (double m = 0.0; m < 14.0 * 60.0; m += 1.0) {
    const util::Epoch t = epoch.plus_seconds(m * 60.0);
    q.generate(sats[0].data_generation_bytes_per_day * dt / 86400.0, t);

    const auto assigned = sched.schedule_instant(t, queues);
    for (const auto& e : assigned) {
      const auto& gs = stations[e.station];
      const double link_bytes = e.predicted_rate_bps * dt / 8.0;
      const double sent = q.transmit(link_bytes, t, nullptr);
      if (sent > 0.0) {
        std::printf("%s  DUMP  %6.2f GB -> %-26s (%s, el %4.1f deg, %s)\n",
                    t.to_string().c_str(), sent / 1e9, gs.name.c_str(),
                    e.modcod->name.data(),
                    util::rad2deg(e.elevation_rad),
                    gs.tx_capable ? "tx" : "rx-only");
        if (!gs.tx_capable) {
          std::printf("%s        backend <- ack relayed over the Internet "
                      "from %s; satellite does NOT know yet\n",
                      t.to_string().c_str(), gs.name.c_str());
        }
      }
      if (gs.tx_capable) {
        double acked = q.pending_ack_bytes();
        if (acked > 0.0) {
          q.acknowledge_all(t, [&](double delay_s, double bytes) {
            std::printf("%s  ACK   %6.2f GB confirmed after %5.1f min in "
                        "limbo (uploaded by %s)\n",
                        t.to_string().c_str(), bytes / 1e9, delay_s / 60.0,
                        gs.name.c_str());
          });
          std::printf("%s        on-board storage released: %.2f GB -> "
                      "%.2f GB\n",
                      t.to_string().c_str(),
                      (q.storage_bytes() + acked) / 1e9,
                      q.storage_bytes() / 1e9);
        }
      }
    }

    // Print storage transitions sparsely (every 2 h).
    if (std::fmod(m, 120.0) == 0.0 && q.storage_bytes() != last_storage) {
      std::printf("%s  ....  queued %.2f GB | awaiting ack %.2f GB | "
                  "storage %.2f GB\n",
                  t.to_string().c_str(), q.queued_bytes() / 1e9,
                  q.pending_ack_bytes() / 1e9, q.storage_bytes() / 1e9);
      last_storage = q.storage_bytes();
    }
  }

  std::printf("\nFinal state: queued %.2f GB, awaiting ack %.2f GB\n",
              q.queued_bytes() / 1e9, q.pending_ack_bytes() / 1e9);
  std::printf("Note how DUMPs to receive-only stations leave storage "
              "occupied until the next TX contact collates the acks — the "
              "cost of the hybrid design (paper Sec. 3.3: storage "
              "requirements are unchanged vs today's systems).\n");
  return 0;
}
