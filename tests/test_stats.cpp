// SampleSet percentiles, CDF, and summary formatting.
#include <gtest/gtest.h>

#include <stdexcept>

#include "src/util/rng.h"
#include "src/util/stats.h"

namespace dgs::util {
namespace {

TEST(Percentile, ThrowsOnEmpty) {
  EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
  SampleSet s;
  EXPECT_THROW(s.percentile(50.0), std::invalid_argument);
}

TEST(Percentile, RejectsOutOfRangePct) {
  const double v[] = {1.0, 2.0};
  EXPECT_THROW(percentile(v, -1.0), std::invalid_argument);
  EXPECT_THROW(percentile(v, 100.5), std::invalid_argument);
}

TEST(Percentile, SingleSampleIsEveryPercentile) {
  SampleSet s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(50.0), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 7.0);
}

TEST(Percentile, LinearInterpolation) {
  SampleSet s;
  for (double v : {0.0, 10.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.percentile(50.0), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile(25.0), 2.5);
}

TEST(Percentile, MedianOfKnownSet) {
  SampleSet s;
  for (double v : {5.0, 1.0, 3.0, 2.0, 4.0}) s.add(v);  // unsorted on purpose
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(Percentile, MonotoneInPct) {
  Rng rng(7);
  SampleSet s;
  for (int i = 0; i < 500; ++i) s.add(rng.normal(0.0, 10.0));
  double prev = s.percentile(0.0);
  for (double p = 1.0; p <= 100.0; p += 1.0) {
    const double cur = s.percentile(p);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(Cdf, MatchesDefinition) {
  SampleSet s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(s.cdf(2.5), 0.5);
  EXPECT_DOUBLE_EQ(s.cdf(4.0), 1.0);
  EXPECT_DOUBLE_EQ(s.cdf(100.0), 1.0);
}

TEST(Cdf, CurveEndpointsAndMonotonicity) {
  Rng rng(11);
  SampleSet s;
  for (int i = 0; i < 200; ++i) s.add(rng.exponential(0.1));
  const auto curve = s.cdf_curve(50);
  ASSERT_EQ(curve.size(), 50u);
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].first, curve[i - 1].first);
    EXPECT_GE(curve[i].second, curve[i - 1].second);
  }
}

TEST(Cdf, CurveNeedsTwoPoints) {
  SampleSet s;
  s.add(1.0);
  EXPECT_THROW(s.cdf_curve(1), std::invalid_argument);
}

TEST(Cdf, PercentileAndCdfAreConsistent) {
  Rng rng(3);
  SampleSet s;
  for (int i = 0; i < 1000; ++i) s.add(rng.uniform(0.0, 100.0));
  for (double p : {10.0, 50.0, 90.0, 99.0}) {
    const double x = s.percentile(p);
    EXPECT_NEAR(s.cdf(x) * 100.0, p, 1.0);
  }
}

TEST(SummaryRow, Format) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  const std::string row = summary_row(s, "min");
  EXPECT_NE(row.find("min"), std::string::npos);
  EXPECT_NE(row.find("p90"), std::string::npos);
  EXPECT_NE(row.find("p99"), std::string::npos);
}

TEST(SampleSet, AddAllMatchesRepeatedAdd) {
  SampleSet a, b;
  const double vs[] = {3.0, 1.0, 2.0};
  a.add_all(vs);
  for (double v : vs) b.add(v);
  EXPECT_EQ(a.size(), b.size());
  EXPECT_DOUBLE_EQ(a.median(), b.median());
}

TEST(Rng, ForkedStreamsAreIndependentButDeterministic) {
  Rng a(123), b(123);
  Rng fa = a.fork(1), fb = b.fork(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(fa.uniform(), fb.uniform());
  }
  Rng c(123);
  Rng f2 = c.fork(2);
  // Different stream ids should diverge immediately (overwhelmingly likely).
  Rng d(123);
  Rng f1 = d.fork(1);
  EXPECT_NE(f1.uniform(), f2.uniform());
}

}  // namespace
}  // namespace dgs::util
