#include "src/campaign/manifest.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace dgs::campaign {

std::string render_campaign_identity(const CampaignOptions& opts) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  \"profile\": \"%s\",\n"
                "  \"campaign_seed\": %llu,\n"
                "  \"samples\": %d,\n"
                "  \"duration_hours\": %.6f,\n"
                "  \"step_seconds\": %.6f,\n"
                "  \"num_satellites\": %d,\n"
                "  \"num_stations\": %d,\n"
                "  \"network_seed\": %llu,\n"
                "  \"weather_seed\": %llu",
                opts.profile.c_str(),
                static_cast<unsigned long long>(opts.campaign_seed),
                opts.samples, opts.duration_hours, opts.step_seconds,
                opts.num_satellites, opts.num_stations,
                static_cast<unsigned long long>(opts.network_seed),
                static_cast<unsigned long long>(opts.weather_seed));
  return buf;
}

std::string render_manifest(const CampaignOptions& opts) {
  std::ostringstream out;
  out << "{\n  \"schema_version\": " << core::kRunArtifactSchemaVersion
      << ",\n  \"artifact\": \"campaign_manifest\",\n"
      << render_campaign_identity(opts) << "\n}\n";
  return out.str();
}

void write_or_check_manifest(const CampaignOptions& opts) {
  const std::string path = manifest_path(opts);
  const std::string want = render_manifest(opts);
  std::ifstream in(path);
  if (in) {
    std::ostringstream have;
    have << in.rdbuf();
    if (have.str() != want) {
      // dgslint: allow(R4) -- manifest mismatch is a user-facing error
      throw std::runtime_error(
          "campaign manifest mismatch: " + path +
          " was written by a different campaign (profile/seed/samples/"
          "scenario changed); use a fresh --out directory");
    }
    return;
  }
  std::ofstream out(path);
  // dgslint: allow(R4) -- manifest I/O errors are runtime_error by contract
  if (!out) throw std::runtime_error("cannot write " + path);
  out << want;
}

}  // namespace dgs::campaign
