file(REMOVE_RECURSE
  "CMakeFiles/abl_storage.dir/abl_storage.cpp.o"
  "CMakeFiles/abl_storage.dir/abl_storage.cpp.o.d"
  "abl_storage"
  "abl_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
