#include "src/core/market.h"

#include "src/util/check.h"

namespace dgs::core {

BidMatrix::BidMatrix(std::vector<int> operator_of)
    : operator_of_(std::move(operator_of)) {
  DGS_ENSURE(!operator_of_.empty(), "empty operator mapping");
}

void BidMatrix::set_bid(int operator_id, int station, double multiplier) {
  DGS_ENSURE_GT(multiplier, 0.0);
  station_bid_[{operator_id, station}] = multiplier;
}

void BidMatrix::set_default_bid(int operator_id, double multiplier) {
  DGS_ENSURE_GT(multiplier, 0.0);
  default_bid_[operator_id] = multiplier;
}

double BidMatrix::multiplier(int sat, int station) const {
  const int op = operator_of_.at(sat);
  if (const auto it = station_bid_.find({op, station});
      it != station_bid_.end()) {
    return it->second;
  }
  if (const auto it = default_bid_.find(op); it != default_bid_.end()) {
    return it->second;
  }
  return 1.0;
}

EdgeValueModifier BidMatrix::as_modifier() const {
  return [this](int sat, int station, double base) {
    return base * multiplier(sat, station);
  };
}

}  // namespace dgs::core
