file(REMOVE_RECURSE
  "CMakeFiles/fig3c_value_function.dir/fig3c_value_function.cpp.o"
  "CMakeFiles/fig3c_value_function.dir/fig3c_value_function.cpp.o.d"
  "fig3c_value_function"
  "fig3c_value_function.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3c_value_function.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
