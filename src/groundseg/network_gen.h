// Synthetic network generation (SatNOGS-footprint substitute).
//
// The paper's evaluation uses 173 operational SatNOGS ground stations and
// 259 satellites from the SatNOGS database.  That database snapshot is not
// redistributable, so this generator produces a deterministic population
// with the same aggregate structure:
//   * stations clustered where SatNOGS stations actually are (dense in
//     Europe and North America, sparse in oceans and the global south),
//   * a polar/sun-synchronous LEO constellation at 475-600 km, which is
//     where ~45% of LEO Earth-observation satellites fly (paper §1),
//   * a small transmit-capable subset (the hybrid design, §3),
//   * high-end baseline stations at the classic polar downlink sites
//     (paper §2: operators deploy "preferably close to the Earth's poles").
#pragma once

#include <cstdint>
#include <vector>

#include "src/groundseg/satellite.h"
#include "src/groundseg/station.h"

namespace dgs::groundseg {

struct NetworkOptions {
  int num_stations = 173;         ///< Matches the filtered SatNOGS set.
  int num_satellites = 259;       ///< Matches the paper.
  double tx_fraction = 0.10;      ///< Fraction of stations with uplink.
  double dish_diameter_m = 1.0;   ///< Low-complexity DGS node (paper §4).
  /// Fraction of (station, satellite) pairs denied by owner constraint
  /// bitmaps (regulatory / subscription restrictions, §3.1).
  double constraint_denial_fraction = 0.0;
  std::uint64_t seed = 42;
  /// Candidate-pool controls (src/netdesign): when pool_size > 0,
  /// generate_dgs_stations draws exactly pool_size sites seeded from
  /// pool_seed, decoupled from the simulated network's num_stations/seed
  /// — so the same candidate pool reproduces across tools regardless of
  /// what network each of them simulates.  The defaults (0) keep the
  /// legacy behaviour byte-for-byte: num_stations sites from seed
  /// (pinned by a byte-equality regression test in test_network_gen).
  int pool_size = 0;
  std::uint64_t pool_seed = 0;
};

struct BaselineOptions {
  int channels = 6;               ///< Six frequency/polarization channels [10].
  double dish_diameter_m = 4.0;   ///< High-end receiver dishes [10].
};

/// Generates the distributed DGS station network.  TX-capable stations are
/// spread across regions (not clustered), since plan upload opportunities
/// depend on their geographic spread.
std::vector<GroundStation> generate_dgs_stations(const NetworkOptions& opts);

/// The 5 high-end polar baseline stations of the paper's comparison.
std::vector<GroundStation> baseline_stations(const BaselineOptions& opts = {});

/// Generates the synthetic EO constellation with valid, parseable TLEs at
/// epoch `epoch`.  Satellite ids are 0..n-1 (used as bitmap indices).
std::vector<SatelliteConfig> generate_constellation(
    const NetworkOptions& opts, const util::Epoch& epoch);

/// Deterministically selects `fraction` of the stations (DGS(25%) in the
/// paper) preserving relative geographic spread: every k-th station of a
/// latitude-sorted ordering.  Keeps at least one TX-capable station.
std::vector<GroundStation> subsample_stations(
    const std::vector<GroundStation>& all, double fraction);

}  // namespace dgs::groundseg
