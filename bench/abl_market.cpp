// E21 — the bidding market (paper §3.1/§3.3): two operators share the DGS
// network; operator B raises its network-wide bid and buys a larger share
// of station time.  Measures each operator's delivered volume and backlog
// as the bid sweeps — the supply/demand curve of the fragmented ground
// segment.
#include <cstdio>

#include "bench/common.h"
#include "src/core/market.h"

int main() {
  using namespace dgs;
  using namespace dgs::bench;

  std::printf("=== E21: priority-access bidding (24 h, two operators, "
              "DGS 25%% = 43 stations, where contention exists) ===\n\n");
  const Setup setup = make_paper_setup();
  weather::SyntheticWeatherProvider wx(kWeatherSeed, kEpoch, 25.0);

  // Interleaved fleets: both operators fly comparable orbits.
  std::vector<int> operator_of(setup.sats.size());
  for (std::size_t s = 0; s < setup.sats.size(); ++s) {
    operator_of[s] = static_cast<int>(s % 2);
  }

  std::printf("  %8s | %21s | %21s\n", "B's bid", "operator A (bid 1x)",
              "operator B");
  std::printf("  %8s | %10s %10s | %10s %10s\n", "", "delivered",
              "backlog", "delivered", "backlog");
  for (double bid : {1.0, 1.5, 2.0, 4.0, 8.0}) {
    core::BidMatrix bids(operator_of);
    bids.set_default_bid(1, bid);

    core::SimulationOptions opts = day_sim();
    opts.edge_value_modifier = bids.as_modifier();
    const core::SimulationResult r =
        core::Simulator(setup.sats, setup.dgs25, &wx, opts).run();

    double delivered[2] = {0, 0}, backlog[2] = {0, 0};
    int count[2] = {0, 0};
    for (std::size_t s = 0; s < setup.sats.size(); ++s) {
      const int op = operator_of[s];
      delivered[op] += r.per_satellite[s].delivered_bytes;
      backlog[op] += r.per_satellite[s].backlog_bytes;
      count[op] += 1;
    }
    std::printf("  %7.1fx | %7.2f TB %7.2f GB | %7.2f TB %7.2f GB\n", bid,
                delivered[0] / 1e12, backlog[0] / count[0] / 1e9,
                delivered[1] / 1e12, backlog[1] / count[1] / 1e9);
  }
  std::printf("\n  expected shape: B's delivered share and A's backlog both "
              "rise with B's bid; the effect saturates once B wins every "
              "contested instant (most of DGS's capacity is uncontested, "
              "which bounds how much money can buy — a nice property of "
              "the distributed design).\n");
  return 0;
}
