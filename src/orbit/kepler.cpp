#include "src/orbit/kepler.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/util/angles.h"
#include "src/util/constants.h"

namespace dgs::orbit {

using util::Vec3;
using util::wgs72::kMu;

double solve_kepler(double mean_anomaly_rad, double ecc) {
  if (ecc < 0.0 || ecc >= 1.0) {
    // dgslint: allow(R4) -- domain_error is the documented math contract
    throw std::domain_error("solve_kepler: eccentricity out of [0,1)");
  }
  const double m = util::wrap_pi(mean_anomaly_rad);
  // Starting guess: E = M for small e, else sign(M)*pi heuristic.
  double e0 = (ecc < 0.8) ? m : util::kPi * (m >= 0 ? 1.0 : -1.0);
  for (int i = 0; i < 50; ++i) {
    const double f = e0 - ecc * std::sin(e0) - m;
    const double fp = 1.0 - ecc * std::cos(e0);
    const double step = f / fp;
    e0 -= step;
    if (std::fabs(step) < 1.0e-13) break;
  }
  return e0;
}

double mean_motion_rad_s(double semi_major_axis_km) {
  return std::sqrt(kMu / (semi_major_axis_km * semi_major_axis_km *
                          semi_major_axis_km));
}

StateVector propagate_two_body(const KeplerianElements& el, double dt_seconds) {
  const double a = el.semi_major_axis_km;
  const double e = el.eccentricity;
  const double n = mean_motion_rad_s(a);
  const double m = el.mean_anomaly_rad + n * dt_seconds;
  const double ea = solve_kepler(m, e);

  // Perifocal coordinates.
  const double cos_ea = std::cos(ea);
  const double sin_ea = std::sin(ea);
  const double r = a * (1.0 - e * cos_ea);
  const double x_pf = a * (cos_ea - e);
  const double y_pf = a * std::sqrt(1.0 - e * e) * sin_ea;
  const double rdot_coeff = std::sqrt(kMu * a) / r;
  const double vx_pf = -rdot_coeff * sin_ea;
  const double vy_pf = rdot_coeff * std::sqrt(1.0 - e * e) * cos_ea;

  // Rotation perifocal -> inertial: Rz(-raan) Rx(-i) Rz(-argp).
  const double cO = std::cos(el.raan_rad), sO = std::sin(el.raan_rad);
  const double ci = std::cos(el.inclination_rad),
               si = std::sin(el.inclination_rad);
  const double cw = std::cos(el.arg_perigee_rad),
               sw = std::sin(el.arg_perigee_rad);

  const Vec3 p_hat{cO * cw - sO * sw * ci, sO * cw + cO * sw * ci, sw * si};
  const Vec3 q_hat{-cO * sw - sO * cw * ci, -sO * sw + cO * cw * ci, cw * si};

  StateVector sv;
  sv.position_km = p_hat * x_pf + q_hat * y_pf;
  sv.velocity_km_s = p_hat * vx_pf + q_hat * vy_pf;
  return sv;
}

KeplerianElements elements_from_state(const StateVector& sv) {
  const Vec3 r = sv.position_km;
  const Vec3 v = sv.velocity_km_s;
  const double rn = r.norm();
  const double vn = v.norm();
  // dgslint: allow(R4) -- domain_error is the documented math contract
  if (rn <= 0.0) throw std::domain_error("elements_from_state: zero radius");

  const double energy = vn * vn / 2.0 - kMu / rn;
  if (energy >= 0.0) {
    // dgslint: allow(R4) -- domain_error is the documented math contract
    throw std::domain_error("elements_from_state: orbit is not elliptical");
  }
  const double a = -kMu / (2.0 * energy);

  const Vec3 h = r.cross(v);
  const Vec3 e_vec = (v.cross(h) / kMu) - r / rn;
  const double e = e_vec.norm();

  const double i = std::acos(std::clamp(h.z / h.norm(), -1.0, 1.0));

  // Node vector.
  const Vec3 n_vec{-h.y, h.x, 0.0};
  const double nn = n_vec.norm();

  double raan = 0.0, argp = 0.0;
  if (nn > 1e-12) {
    raan = std::atan2(n_vec.y, n_vec.x);
    if (raan < 0.0) raan += util::kTwoPi;
    if (e > 1e-12) {
      argp = std::acos(std::clamp(n_vec.dot(e_vec) / (nn * e), -1.0, 1.0));
      if (e_vec.z < 0.0) argp = util::kTwoPi - argp;
    }
  }

  // True anomaly -> eccentric -> mean.
  double nu;
  if (e > 1e-12) {
    nu = std::acos(std::clamp(e_vec.dot(r) / (e * rn), -1.0, 1.0));
    if (r.dot(v) < 0.0) nu = util::kTwoPi - nu;
  } else {
    // Circular: measure from the node (or x-axis for equatorial).
    const Vec3 ref = nn > 1e-12 ? n_vec / nn : Vec3{1.0, 0.0, 0.0};
    nu = std::acos(std::clamp(ref.dot(r) / rn, -1.0, 1.0));
    if (r.z < 0.0) nu = util::kTwoPi - nu;
  }
  const double ea =
      2.0 * std::atan2(std::sqrt(1.0 - e) * std::sin(nu / 2.0),
                       std::sqrt(1.0 + e) * std::cos(nu / 2.0));
  double m = ea - e * std::sin(ea);
  m = util::wrap_two_pi(m);

  KeplerianElements el;
  el.semi_major_axis_km = a;
  el.eccentricity = e;
  el.inclination_rad = i;
  el.raan_rad = raan;
  el.arg_perigee_rad = argp;
  el.mean_anomaly_rad = m;
  return el;
}

}  // namespace dgs::orbit
