// Fuzz-style negative tests for the restricted-JSON reader and the
// summary validator of src/core/run_artifact.cpp (satellite of the
// dgslint PR, mirroring test_options_fuzz.cpp's corruption-table style).
//
// Two layers:
//   1. a named corruption table applied deterministically — every entry
//      must produce a *located* ArtifactError (non-empty where+message),
//      never a crash and never silent acceptance;
//   2. ~200 seeded random byte-level mutations of a valid summary — the
//      validator must either reject with a located error or accept, and
//      whatever it accepts parse_summary_json must also accept (the
//      validator and the DOM parser may never disagree).
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/report.h"
#include "src/core/run_artifact.h"
#include "src/faults/fault_rng.h"

namespace dgs::core {
namespace {

std::string valid_summary() {
  std::stringstream ss;
  write_summary_json(ss, SimulationResult{});
  return ss.str();
}

/// `n` objects nested inside each other, innermost value 1.
std::string nested(int n) {
  std::string t;
  for (int i = 0; i < n; ++i) t += "{\"k\": ";
  t += "1";
  t.append(static_cast<std::size_t>(n), '}');
  return t;
}

// --- Reader limits ---------------------------------------------------------

TEST(RestrictedJsonFuzz, NestingDepthBoundaryIsExactlyEight) {
  for (int d = 1; d <= 8; ++d) {
    EXPECT_TRUE(parse_restricted_json(nested(d)).has_value()) << d;
  }
  for (int d = 9; d <= 64; d += 11) {
    ArtifactError e;
    EXPECT_FALSE(parse_restricted_json(nested(d), &e).has_value()) << d;
    EXPECT_EQ(e.message, "nesting too deep");
  }
}

TEST(RestrictedJsonFuzz, EveryTruncationOfAValidSummaryIsRejected) {
  const std::string text = valid_summary();
  ASSERT_GT(text.size(), 2u);
  ASSERT_EQ(text.back(), '\n');
  for (std::size_t len = 0; len + 1 < text.size(); ++len) {
    ArtifactError e;
    const auto doc = parse_restricted_json(text.substr(0, len), &e);
    EXPECT_FALSE(doc.has_value()) << "prefix of length " << len;
    EXPECT_FALSE(e.message.empty()) << len;
  }
  // Only dropping the trailing newline leaves a complete document.
  EXPECT_TRUE(
      parse_restricted_json(text.substr(0, text.size() - 1)).has_value());
}

TEST(RestrictedJsonFuzz, EscapesOutsideTheWriterSubsetAreRejected) {
  // The writers only ever emit \" and \\; everything else must be named.
  for (const char* bad : {R"({"k": "a\nb"})", R"({"k": "a\tb"})",
                          R"({"k": "a\Ab"})", R"({"k": "a\/b"})",
                          R"({"k": "a\qb"})"}) {
    ArtifactError e;
    EXPECT_FALSE(parse_restricted_json(bad, &e).has_value()) << bad;
    EXPECT_EQ(e.message, "unsupported escape in artifact string") << bad;
  }
  ArtifactError e;
  EXPECT_FALSE(parse_restricted_json("{\"k\": \"a\\", &e).has_value());
  EXPECT_EQ(e.message, "dangling escape");
  EXPECT_TRUE(parse_restricted_json(R"({"k": "a\"b\\c"})").has_value());
}

TEST(RestrictedJsonFuzz, DuplicateKeysParseButFailTheSummarySchema) {
  // The reader is a dumb subset parser: duplicates are representable and
  // find() returns the first.  The *schema* validator must still reject
  // a summary whose key sequence repeats a field.
  const auto doc = parse_restricted_json(R"({"k": 1, "k": 2})");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->members.size(), 2u);
  EXPECT_EQ(doc->find("k")->number, 1.0);

  std::string text = valid_summary();
  const std::string dup = "\"schema_version\": 2,\n  \"schema_version\": 2";
  const std::size_t pos = text.find("\"schema_version\": 2");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, std::string("\"schema_version\": 2").size(), dup);
  const auto err = validate_summary_json(text);
  ASSERT_TRUE(err.has_value());
  EXPECT_FALSE(err->where.empty());
}

// --- Deterministic corruption table ----------------------------------------

struct Corruption {
  const char* name;
  std::function<std::string(std::string)> apply;
};

const std::vector<Corruption>& corruption_table() {
  static const std::vector<Corruption> kTable = {
      {"array value", [](std::string t) {
         const std::size_t p = t.find(": 2");
         return t.replace(p, 3, ": [1]");
       }},
      {"bare word literal", [](std::string t) {
         const std::size_t p = t.find(": 2");
         return t.replace(p, 3, ": tru");
       }},
      {"uppercase literal", [](std::string t) {
         const std::size_t p = t.find(": 2");
         return t.replace(p, 3, ": TRUE");
       }},
      {"double-dot number", [](std::string t) {
         const std::size_t p = t.find(": 2");
         return t.replace(p, 3, ": 1.2.3");
       }},
      {"hex number", [](std::string t) {
         const std::size_t p = t.find(": 2");
         return t.replace(p, 3, ": 0x10");
       }},
      {"unquoted key", [](std::string t) {
         const std::size_t p = t.find("\"schema_version\"");
         return t.replace(p, 16, "schema_version");
       }},
      {"missing colon", [](std::string t) {
         const std::size_t p = t.find("\": 2");
         return t.replace(p, 4, "\" 2");
       }},
      {"trailing comma", [](std::string t) {
         const std::size_t p = t.rfind('}');
         return t.replace(p, 1, ",}");
       }},
      {"junk after document", [](std::string t) { return t + "x"; }},
      {"second document", [](std::string t) { return t + "{}"; }},
      {"leading BOM-ish junk", [](std::string t) { return "\xef" + t; }},
      {"empty document", [](std::string) { return std::string(); }},
      {"whitespace only", [](std::string) { return std::string("  \n "); }},
  };
  return kTable;
}

TEST(RestrictedJsonFuzz, EveryTableCorruptionYieldsALocatedError) {
  const std::string base = valid_summary();
  for (const Corruption& c : corruption_table()) {
    ArtifactError e{"(unset)", ""};
    const auto doc = parse_restricted_json(c.apply(base), &e);
    EXPECT_FALSE(doc.has_value()) << c.name;
    EXPECT_FALSE(e.message.empty()) << c.name;
    EXPECT_NE(e.where, "(unset)") << c.name;
  }
}

// --- Seeded random byte-level mutations ------------------------------------

/// One random byte-level edit: delete, insert, replace, transpose, or
/// truncate at a position drawn from the stream.
std::string mutate(std::string t, faults::Pcg32& rng) {
  if (t.empty()) return t;
  const auto pos = static_cast<std::size_t>(rng.uniform() *
                                            static_cast<double>(t.size()));
  const char glyphs[] = "{}[]\":,.\\0123456789eE+-truefalsnx \n";
  const char g = glyphs[rng.next() % (sizeof(glyphs) - 1)];
  switch (rng.next() % 5) {
    case 0: t.erase(pos, 1); break;
    case 1: t.insert(pos, 1, g); break;
    case 2: t[pos] = g; break;
    case 3:
      if (pos + 1 < t.size()) std::swap(t[pos], t[pos + 1]);
      break;
    default: t.resize(pos); break;
  }
  return t;
}

TEST(RestrictedJsonFuzz, RandomMutationsNeverCrashOrDesyncTheValidator) {
  const std::string base = valid_summary();
  int rejected = 0;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    faults::Pcg32 rng(7000 + seed);
    std::string t = base;
    const int edits = 1 + static_cast<int>(rng.next() % 4);
    for (int i = 0; i < edits; ++i) t = mutate(std::move(t), rng);

    const auto err = validate_summary_json(t);
    RunSummary summary;
    const auto perr = parse_summary_json(t, &summary);
    if (err.has_value()) {
      ++rejected;
      // A located error, and the parsing front door agrees.
      EXPECT_FALSE(err->message.empty()) << "seed " << seed;
      EXPECT_TRUE(perr.has_value()) << "seed " << seed;
    } else {
      // Accepted (the mutation was benign, e.g. a digit change): the
      // DOM must be usable and carry the pinned schema version.
      ASSERT_FALSE(perr.has_value()) << "seed " << seed;
      EXPECT_EQ(summary.scalar("schema_version"),
                kRunArtifactSchemaVersion)
          << "seed " << seed;
    }
  }
  // The mutation engine must actually be hitting the parser: the vast
  // majority of byte edits break a schema this rigid.
  EXPECT_GT(rejected, 150);
}

}  // namespace
}  // namespace dgs::core
