// Antenna slew/re-lock accounting in the simulator.
#include <gtest/gtest.h>

#include "src/core/simulator.h"

namespace dgs::core {
namespace {

const util::Epoch kT0(util::DateTime{2020, 11, 4, 0, 0, 0.0});

class SlewTest : public ::testing::Test {
 protected:
  SlewTest() {
    groundseg::NetworkOptions net;
    net.num_stations = 20;
    net.num_satellites = 30;  // contention forces station switching
    net.seed = 23;
    sats_ = groundseg::generate_constellation(net, kT0);
    stations_ = groundseg::generate_dgs_stations(net);
  }

  SimulationResult run_with_slew(double slew_s, double lookahead_h = 0.0) {
    SimulationOptions opts;
    opts.start = kT0;
    opts.duration_hours = 6.0;
    opts.slew_seconds = slew_s;
    opts.lookahead_hours = lookahead_h;
    return Simulator(sats_, stations_, nullptr, opts).run();
  }

  std::vector<groundseg::SatelliteConfig> sats_;
  std::vector<groundseg::GroundStation> stations_;
};

TEST_F(SlewTest, ZeroSlewCountsNoEvents) {
  const SimulationResult r = run_with_slew(0.0);
  EXPECT_EQ(r.slew_events, 0);
}

TEST_F(SlewTest, SlewEventsAppearUnderContention) {
  const SimulationResult r = run_with_slew(10.0);
  EXPECT_GT(r.slew_events, 0);
  // Every assignment can produce at most one slew event.
  EXPECT_LE(r.slew_events, r.assignments);
}

TEST_F(SlewTest, SlewReducesDeliveredVolume) {
  const SimulationResult fast = run_with_slew(0.0);
  const SimulationResult slow = run_with_slew(45.0);  // most of each quantum
  EXPECT_LT(slow.total_delivered_bytes, fast.total_delivered_bytes);
}

TEST_F(SlewTest, LookaheadSwitchesLessThanPerInstant) {
  const SimulationResult instant = run_with_slew(10.0);
  const SimulationResult planned = run_with_slew(10.0, 0.5);
  ASSERT_GT(instant.slew_events, 0);
  ASSERT_GT(planned.slew_events, 0);
  EXPECT_LT(planned.slew_events, instant.slew_events);
}

TEST_F(SlewTest, ConservationHoldsWithSlew) {
  const SimulationResult r = run_with_slew(20.0);
  double backlog = 0.0;
  for (const auto& o : r.per_satellite) backlog += o.backlog_bytes;
  EXPECT_NEAR(r.total_generated_bytes, r.total_delivered_bytes + backlog,
              r.total_generated_bytes * 1e-9 + 1.0);
}

}  // namespace
}  // namespace dgs::core
