file(REMOVE_RECURSE
  "libdgs_link.a"
)
