// Weather-adaptive scheduling in action (paper §3, "if the link from
// satellite alpha to ground station i is expected to encounter clouds, it
// could downlink at a different ground station j along its path").
//
// Two stations sit ~700 km apart; a stationary storm cell parks over one of
// them.  We run the scheduler with and without weather awareness and show
// the schedule steering the satellite to the dry station — and the rate
// penalty when it doesn't.
#include <cstdio>

#include "src/core/dgs.h"

namespace {

/// A single stationary storm parked over a configurable point.
class ParkedStorm final : public dgs::weather::WeatherProvider {
 public:
  ParkedStorm(double lat_rad, double lon_rad)
      : lat_(lat_rad), lon_(lon_rad) {}

  dgs::weather::WeatherSample actual(
      double lat, double lon, const dgs::util::Epoch&) const override {
    const double d_km =
        dgs::util::great_circle_angle(lat, lon, lat_, lon_) * 6371.0;
    dgs::weather::WeatherSample s;
    if (d_km < 300.0) {
      s.rain_rate_mm_h = 35.0 * std::exp(-d_km * d_km / (2 * 120.0 * 120.0));
      s.cloud_liquid_kg_m2 = 2.5 * std::exp(-d_km * d_km / (2 * 250.0 * 250.0));
    }
    return s;
  }

 private:
  double lat_, lon_;
};

}  // namespace

int main() {
  using namespace dgs;
  using util::deg2rad;
  using util::rad2deg;

  const util::Epoch epoch(util::DateTime{2020, 11, 4, 0, 0, 0.0});

  // One satellite on a Ku-band downlink (more weather-sensitive than X).
  groundseg::NetworkOptions net;
  net.num_satellites = 1;
  net.num_stations = 1;  // regenerated below; generator needs >= 1
  auto sats = groundseg::generate_constellation(net, epoch);
  sats[0].radio.frequency_hz = 14.0e9;

  // Two identical stations, one of which will sit under the storm.
  groundseg::GroundStation wet, dry;
  wet.id = 0;
  wet.name = "Munich (under storm)";
  wet.location = {deg2rad(48.1), deg2rad(11.6), 0.5};
  wet.min_elevation_rad = deg2rad(5.0);
  wet.refresh_ecef();
  dry.id = 1;
  dry.name = "Vienna (clear)";
  dry.location = {deg2rad(48.2), deg2rad(16.4), 0.2};
  dry.min_elevation_rad = deg2rad(5.0);
  dry.refresh_ecef();
  const std::vector<groundseg::GroundStation> stations{wet, dry};

  ParkedStorm storm(wet.location.latitude_rad, wet.location.longitude_rad);

  std::printf("Storm parked over %s; %s is clear, 330 km east.\n\n",
              wet.name.c_str(), dry.name.c_str());

  // Walk the day; at every instant where the satellite sees both stations,
  // compare the weather-aware choice to the weather-blind one.
  core::VisibilityEngine aware(sats, stations, &storm);
  core::VisibilityEngine blind(sats, stations, nullptr);
  core::Scheduler sched_aware(&aware, core::SchedulerConfig{});
  core::Scheduler sched_blind(&blind, core::SchedulerConfig{});

  std::vector<core::OnboardQueue> queues(1);
  queues[0].generate(500e9, epoch);  // plenty of data to move

  int both_visible = 0, aware_picked_dry = 0, blind_picked_wet = 0;
  double aware_bytes = 0.0, blind_bytes = 0.0;
  for (double m = 0.0; m < 24.0 * 60.0; m += 1.0) {
    const util::Epoch t = epoch.plus_seconds(m * 60.0);
    const auto contacts = aware.contacts(t);
    bool sees_wet = false, sees_dry = false;
    for (const auto& c : contacts) {
      sees_wet |= c.station == 0;
      sees_dry |= c.station == 1;
    }
    if (!(sees_wet && sees_dry)) continue;
    ++both_visible;

    const auto pick_aware = sched_aware.schedule_instant(t, queues);
    const auto pick_blind = sched_blind.schedule_instant(t, queues);
    if (!pick_aware.empty()) {
      if (pick_aware[0].station == 1) ++aware_picked_dry;
      // Realized bytes: the aware schedule predicted with true weather.
      aware_bytes += pick_aware[0].predicted_rate_bps * 60.0 / 8.0;
    }
    if (!pick_blind.empty()) {
      if (pick_blind[0].station == 0) ++blind_picked_wet;
      // Blind schedule transmits at the clear-sky MODCOD; it only sticks if
      // the actual Es/N0 still clears it.  Re-evaluate with the storm.
      const auto& e = pick_blind[0];
      const auto& gs = stations[e.station];
      auto wx = storm.actual(gs.location.latitude_rad,
                             gs.location.longitude_rad, t);
      link::PathConditions path;
      path.range_km = e.range_km;
      path.elevation_rad = e.elevation_rad;
      path.site_latitude_rad = gs.location.latitude_rad;
      path.rain_rate_mm_h = wx.rain_rate_mm_h;
      path.cloud_liquid_kg_m2 = wx.cloud_liquid_kg_m2;
      const auto actual = link::evaluate_link(sats[0].radio, gs.receiver, path);
      if (e.modcod != nullptr &&
          actual.esn0_db >= e.modcod->required_esn0_db) {
        blind_bytes += e.predicted_rate_bps * 60.0 / 8.0;
      }
    }
  }

  std::printf("Instants with both stations visible: %d\n", both_visible);
  std::printf("  weather-aware scheduler picked the dry station %d/%d "
              "times\n",
              aware_picked_dry, both_visible);
  std::printf("  weather-blind scheduler picked the stormy station %d/%d "
              "times (and lost those slots when the MODCOD failed)\n",
              blind_picked_wet, both_visible);
  std::printf("\nData moved during contested instants:\n");
  std::printf("  weather-aware: %.1f GB\n", aware_bytes / 1e9);
  std::printf("  weather-blind: %.1f GB\n", blind_bytes / 1e9);
  if (aware_bytes > blind_bytes) {
    if (blind_bytes > 0.0) {
      std::printf("\nThe aware scheduler rerouted around the storm and "
                  "moved %.1fx the data.\n",
                  aware_bytes / blind_bytes);
    } else {
      std::printf("\nThe aware scheduler rerouted around the storm; the "
                  "blind one lost every contested slot.\n");
    }
  }
  return 0;
}
