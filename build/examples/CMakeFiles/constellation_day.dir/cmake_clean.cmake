file(REMOVE_RECURSE
  "CMakeFiles/constellation_day.dir/constellation_day.cpp.o"
  "CMakeFiles/constellation_day.dir/constellation_day.cpp.o.d"
  "constellation_day"
  "constellation_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constellation_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
