# Empty compiler generated dependencies file for abl_market.
# This may be replaced when dependencies are built.
