#include "src/orbit/numerical.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/util/check.h"
#include "src/util/constants.h"

namespace dgs::orbit {

using util::Vec3;
using util::wgs72::kEarthRadiusKm;
using util::wgs72::kJ2;
using util::wgs72::kMu;

Vec3 gravity_j2(const Vec3& r) {
  const double rn = r.norm();
  if (rn < kEarthRadiusKm) {
    // dgslint: allow(R4) -- domain_error is the documented math contract
    throw std::domain_error("gravity_j2: position inside the Earth");
  }
  const double rn2 = rn * rn;
  const double rn3 = rn2 * rn;

  // Point mass.
  Vec3 a = r * (-kMu / rn3);

  // J2 oblateness (Vallado eq. 8-30).
  const double z2_r2 = (r.z * r.z) / rn2;
  const double k = -1.5 * kJ2 * kMu * kEarthRadiusKm * kEarthRadiusKm /
                   (rn2 * rn3);
  a.x += k * r.x * (1.0 - 5.0 * z2_r2);
  a.y += k * r.y * (1.0 - 5.0 * z2_r2);
  a.z += k * r.z * (3.0 - 5.0 * z2_r2);
  return a;
}

namespace {

struct Deriv {
  Vec3 v;  ///< dr/dt
  Vec3 a;  ///< dv/dt
};

Deriv eval(const StateVector& s) {
  return {s.velocity_km_s, gravity_j2(s.position_km)};
}

StateVector step_rk4(const StateVector& s, double h) {
  const Deriv k1 = eval(s);
  const Deriv k2 = eval({s.position_km + k1.v * (h / 2.0),
                         s.velocity_km_s + k1.a * (h / 2.0)});
  const Deriv k3 = eval({s.position_km + k2.v * (h / 2.0),
                         s.velocity_km_s + k2.a * (h / 2.0)});
  const Deriv k4 = eval({s.position_km + k3.v * h, s.velocity_km_s + k3.a * h});
  StateVector out;
  out.position_km =
      s.position_km + (k1.v + (k2.v + k3.v) * 2.0 + k4.v) * (h / 6.0);
  out.velocity_km_s =
      s.velocity_km_s + (k1.a + (k2.a + k3.a) * 2.0 + k4.a) * (h / 6.0);
  return out;
}

}  // namespace

StateVector propagate_rk4_j2(const StateVector& initial, double dt_seconds,
                             double max_step_seconds) {
  DGS_ENSURE_GT(max_step_seconds, 0.0);
  StateVector s = initial;
  double remaining = dt_seconds;
  const double dir = remaining >= 0.0 ? 1.0 : -1.0;
  remaining = std::fabs(remaining);
  while (remaining > 0.0) {
    const double h = dir * std::min(remaining, max_step_seconds);
    s = step_rk4(s, h);
    remaining -= std::fabs(h);
  }
  return s;
}

}  // namespace dgs::orbit
