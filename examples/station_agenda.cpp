// What a DGS station operator actually receives: tonight's agenda.
//
// Plans six hours for a 60-station network and prints the busiest
// station's tracking jobs — AOS/LOS times, pointing arcs, MODCOD, and
// expected volume — followed by the machine-readable CSV a rotator
// controller would consume (paper §3: the schedule is "distributed to all
// the ground stations over the Internet").
#include <cstdio>
#include <iostream>

#include "src/core/agenda.h"
#include "src/core/dgs.h"
#include "src/link/dvbs2_framing.h"

int main() {
  using namespace dgs;

  const util::Epoch t0(util::DateTime{2020, 11, 4, 0, 0, 0.0});
  groundseg::NetworkOptions net;
  net.num_satellites = 60;
  net.num_stations = 60;
  const auto sats = groundseg::generate_constellation(net, t0);
  const auto stations = groundseg::generate_dgs_stations(net);

  core::VisibilityEngine engine(sats, stations, nullptr);
  std::vector<core::OnboardQueue> queues(sats.size());
  for (auto& q : queues) q.generate(80e9, t0.plus_seconds(-7200));

  core::LatencyValue phi;
  const int steps = 6 * 60;  // 6 h at 60 s quanta
  const core::HorizonPlan plan =
      core::plan_horizon(engine, queues, phi, t0, steps, 60.0);
  const auto agendas = core::build_agendas(engine, plan, t0, 60.0);

  const core::StationAgenda* busiest = &agendas[0];
  for (const auto& a : agendas) {
    if (a.entries.size() > busiest->entries.size()) busiest = &a;
  }
  const auto& gs = stations[busiest->station];
  std::printf("Agenda for \"%s\" (%.2f deg, %.2f deg), next 6 h — %zu "
              "tracking jobs:\n\n",
              gs.name.c_str(), util::rad2deg(gs.location.latitude_rad),
              util::rad2deg(gs.location.longitude_rad),
              busiest->entries.size());

  for (const auto& e : busiest->entries) {
    std::printf("  %s  sat %-3d  %4.1f min  az %5.1f->%5.1f deg  el %4.1f/"
                "%4.1f/%4.1f deg  %-11s %6.2f GB\n",
                e.start.to_string().c_str(), e.sat,
                e.duration_seconds() / 60.0, e.aos_pointing.azimuth_deg,
                e.los_pointing.azimuth_deg, e.aos_pointing.elevation_deg,
                e.tca_pointing.elevation_deg, e.los_pointing.elevation_deg,
                link::modcod_by_index(e.modcod_index).name.data(),
                e.expected_bytes / 1e9);
  }

  std::printf("\nMachine-readable (CSV):\n");
  core::write_agenda_csv(std::cout, *busiest);
  return 0;
}
