file(REMOVE_RECURSE
  "libdgs_orbit.a"
)
