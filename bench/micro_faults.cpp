// Fault-subsystem micro-benchmarks (DESIGN.md §11): what fault injection
// costs on the hot path.  Timeline construction is a once-per-run expense;
// the per-step queries (down-mask fill, stateless ack-relay draws) ride
// inside the simulation loop, so CI's bench-smoke lane pins them along
// with a one-hour paper-scale simulation running the full storm profile.
//
// `--threads=N` selects the simulator's ThreadPool lane count for the
// simulation benches (results are bit-identical at any setting — the tsan
// lane runs this binary threaded to shake out races in the fault paths).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "bench/bench_flags.h"
#include "src/core/dgs.h"

namespace {

using namespace dgs;

const util::Epoch kEpoch(util::DateTime{2020, 11, 4, 0, 0, 0.0});
constexpr int kStations = 173;     // paper-scale ground segment
constexpr std::int64_t kSteps = 24 * 60;  // 24 h at 60 s quanta

int g_threads = 1;  // set by --threads in main()

// Expanding the storm profile (churn on every station + brownouts +
// flaky ack relay) onto the 24 h step grid: the once-per-run cost of
// enabling fault injection.
void BM_FaultTimelineConstructStorm(benchmark::State& state) {
  const faults::FaultPlan plan = faults::make_profile("storm", 7, kStations);
  for (auto _ : state) {
    faults::FaultTimeline timeline(plan, kStations, kSteps, 60.0);
    benchmark::DoNotOptimize(timeline.down_intervals().size());
  }
}
BENCHMARK(BM_FaultTimelineConstructStorm);

// Refreshing the per-step down mask: runs once per simulation step.
void BM_FillStationDownMask(benchmark::State& state) {
  const faults::FaultPlan plan = faults::make_profile("churn", 7, kStations);
  const faults::FaultTimeline timeline(plan, kStations, kSteps, 60.0);
  std::vector<char> mask;
  std::int64_t step = 0;
  for (auto _ : state) {
    timeline.fill_station_down(step % kSteps, &mask);
    benchmark::DoNotOptimize(mask.data());
    ++step;
  }
}
BENCHMARK(BM_FillStationDownMask);

// One stateless ack-relay retry sequence: a handful of SplitMix64 rounds
// per delivered batch.  Must stay cheap — it runs per (batch, station).
void BM_AckRelayOutcomeDraw(benchmark::State& state) {
  const faults::FaultPlan plan =
      faults::make_profile("flaky-net", 7, kStations);
  const faults::FaultTimeline timeline(plan, kStations, kSteps, 60.0);
  std::int64_t step = 0;
  for (auto _ : state) {
    const faults::AckRelayOutcome o = timeline.ack_relay_outcome(
        step % kSteps, static_cast<int>(step % 259),
        static_cast<int>(step % kStations));
    benchmark::DoNotOptimize(o.delay_s);
    ++step;
  }
}
BENCHMARK(BM_AckRelayOutcomeDraw);

struct PaperScale {
  PaperScale()
      : sats(groundseg::generate_constellation(groundseg::NetworkOptions{},
                                               kEpoch)),
        stations(groundseg::generate_dgs_stations(
            groundseg::NetworkOptions{})),
        wx(7, kEpoch, 25.0) {}
  std::vector<groundseg::SatelliteConfig> sats;
  std::vector<groundseg::GroundStation> stations;
  weather::SyntheticWeatherProvider wx;
};

PaperScale& fixture() {
  static PaperScale ps;
  return ps;
}

core::SimulationOptions hour_sim() {
  core::SimulationOptions opts;
  opts.start = kEpoch;
  opts.duration_hours = 1.0;
  opts.parallel.num_threads = g_threads;
  opts.parallel.chunk_size = 8;
  return opts;
}

// The fault-free hour, for reference: the delta against the storm bench
// below is the whole-pipeline overhead of fault injection.
void BM_SimulateOneHourNoFaults(benchmark::State& state) {
  PaperScale& ps = fixture();
  const core::SimulationOptions opts = hour_sim();
  for (auto _ : state) {
    core::Simulator sim(ps.sats, ps.stations, &ps.wx, opts);
    benchmark::DoNotOptimize(sim.run());
  }
}
BENCHMARK(BM_SimulateOneHourNoFaults)->Unit(benchmark::kMillisecond);

// The same hour under the storm profile: churn everywhere, brownouts,
// lossy ack relay, failing plan uploads.
void BM_SimulateOneHourStormFaults(benchmark::State& state) {
  PaperScale& ps = fixture();
  core::SimulationOptions opts = hour_sim();
  opts.station_backhaul_bps = 50e6;  // brownouts need an edge queue
  opts.faults = faults::make_profile(
      "storm", 7, static_cast<int>(ps.stations.size()));
  for (auto _ : state) {
    core::Simulator sim(ps.sats, ps.stations, &ps.wx, opts);
    benchmark::DoNotOptimize(sim.run());
  }
}
BENCHMARK(BM_SimulateOneHourStormFaults)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  g_threads = dgs::bench::consume_threads_flag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
