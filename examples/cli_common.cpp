#include "examples/cli_common.h"

#include <cstdlib>
#include <cstring>

#include "src/faults/profiles.h"
#include "src/groundseg/io.h"

namespace dgs::examples {

const char* flag_value(int argc, char** argv, int* i) {
  if (*i + 1 >= argc) return nullptr;
  return argv[++*i];
}

bool parse_common_flag(int argc, char** argv, int* i, CommonFlags* flags) {
  const char* arg = argv[*i];
  const char* v = nullptr;
  if (std::strcmp(arg, "--threads") == 0 &&
      (v = flag_value(argc, argv, i))) {
    flags->threads = std::atoi(v);
    return true;
  }
  if (std::strcmp(arg, "--fault-profile") == 0 &&
      (v = flag_value(argc, argv, i))) {
    flags->fault_profile = v;
    return true;
  }
  if (std::strcmp(arg, "--fault-seed") == 0 &&
      (v = flag_value(argc, argv, i))) {
    flags->fault_seed = std::strtoull(v, nullptr, 10);
    return true;
  }
  if (std::strcmp(arg, "--stations-subset") == 0 &&
      (v = flag_value(argc, argv, i))) {
    flags->stations_subset = v;
    return true;
  }
  if (std::strcmp(arg, "--json") == 0 && (v = flag_value(argc, argv, i))) {
    flags->json_out = v;
    return true;
  }
  if (std::strcmp(arg, "--csv") == 0 && (v = flag_value(argc, argv, i))) {
    flags->csv_out = v;
    return true;
  }
  if (std::strcmp(arg, "--metrics-out") == 0 &&
      (v = flag_value(argc, argv, i))) {
    flags->metrics_out = v;
    return true;
  }
  if (std::strcmp(arg, "--events-out") == 0 &&
      (v = flag_value(argc, argv, i))) {
    flags->events_out = v;
    return true;
  }
  if (std::strcmp(arg, "--trace-out") == 0 &&
      (v = flag_value(argc, argv, i))) {
    flags->trace_out = v;
    return true;
  }
  return false;
}

const char* common_flags_usage() {
  return "  [--threads <n>] [--stations-subset <file>]\n"
         "  [--fault-profile <name>] [--fault-seed <n>]\n"
         "  [--json <file>] [--csv <file>] [--metrics-out <file>]\n"
         "  [--events-out <file>] [--trace-out <file>]\n";
}

int apply_common_flags(const CommonFlags& flags, int num_stations,
                       core::SimulationOptions* opts) {
  opts->parallel.num_threads = flags.threads;
  // Replay on an explicit subset (the netdesign interchange format):
  // everything downstream of validation — fault-plan station indices
  // included — refers to the filtered station list.
  if (!flags.stations_subset.empty()) {
    opts->station_subset =
        groundseg::load_station_subset(flags.stations_subset);
  }
  const int effective = opts->station_subset.empty()
                            ? num_stations
                            : static_cast<int>(opts->station_subset.size());
  opts->faults =
      faults::make_profile(flags.fault_profile, flags.fault_seed, effective);
  // The brownout channels need a modelled backhaul to degrade.
  if (opts->faults.has_backhaul_faults()) {
    opts->station_backhaul_bps = 50e6;
  }
  return effective;
}

}  // namespace dgs::examples
