// Weather data access interface.
//
// The paper drives its link predictions from the Dark Sky weather API (§4).
// That service is proprietary (and since discontinued), so DGS programs
// against this interface; the shipped implementation is a seedable synthetic
// provider with realistic spatial/temporal correlation (see synthetic.h and
// DESIGN.md for the substitution rationale).
#pragma once

#include "src/util/time.h"

namespace dgs::weather {

/// Point weather relevant to a slant-path link budget.
struct WeatherSample {
  double rain_rate_mm_h = 0.0;       ///< Surface rain rate.
  double cloud_liquid_kg_m2 = 0.0;   ///< Columnar cloud liquid water.
};

class WeatherProvider {
 public:
  virtual ~WeatherProvider() = default;

  /// Ground-truth weather at a geodetic point (radians) and time.
  virtual WeatherSample actual(double latitude_rad, double longitude_rad,
                               const util::Epoch& when) const = 0;

  /// Forecast issued `lead_seconds` ahead of `when` (i.e. what a scheduler
  /// planning at `when - lead` believes `when` will look like).  The default
  /// is a perfect forecast; providers may add lead-dependent error.
  virtual WeatherSample forecast(double latitude_rad, double longitude_rad,
                                 const util::Epoch& when,
                                 double lead_seconds) const {
    (void)lead_seconds;
    return actual(latitude_rad, longitude_rad, when);
  }
};

/// Trivial provider: permanently clear sky everywhere.  Used as the
/// weather-blind ablation and in tests.
class ClearSkyProvider final : public WeatherProvider {
 public:
  WeatherSample actual(double, double, const util::Epoch&) const override {
    return {};
  }
};

}  // namespace dgs::weather
