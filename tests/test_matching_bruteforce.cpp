// Exhaustive cross-validation of the Hungarian optimal matcher against
// brute-force enumeration on small random graphs, and of the stable
// matcher against the deferred-acceptance definition.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "src/core/matching.h"
#include "src/util/rng.h"

namespace dgs::core {
namespace {

std::vector<Edge> random_graph(util::Rng& rng, int sats, int stations,
                               double density) {
  std::vector<Edge> edges;
  for (int s = 0; s < sats; ++s) {
    for (int g = 0; g < stations; ++g) {
      if (rng.uniform() < density) {
        edges.push_back(Edge{s, g, rng.uniform(0.1, 100.0)});
      }
    }
  }
  return edges;
}

/// Brute force: maximum-weight matching by enumerating all station
/// permutations (stations <= 8).
double brute_force_max_weight(const std::vector<Edge>& edges, int sats,
                              int stations) {
  // Weight lookup.
  std::vector<std::vector<double>> w(sats, std::vector<double>(stations, 0.0));
  for (const Edge& e : edges) {
    w[e.sat][e.station] = std::max(w[e.sat][e.station], e.weight);
  }
  // Enumerate subsets of satellites mapped injectively to stations via
  // permutations of station indices over satellite choices; simpler:
  // recursive search over satellites.
  double best = 0.0;
  std::vector<char> used(stations, 0);
  auto rec = [&](auto&& self, int s, double acc) -> void {
    if (s == sats) {
      best = std::max(best, acc);
      return;
    }
    self(self, s + 1, acc);  // leave satellite s unmatched
    for (int g = 0; g < stations; ++g) {
      if (!used[g] && w[s][g] > 0.0) {
        used[g] = 1;
        self(self, s + 1, acc + w[s][g]);
        used[g] = 0;
      }
    }
  };
  rec(rec, 0, 0.0);
  return best;
}

TEST(MatchingBruteForce, HungarianIsExactlyOptimalOnSmallGraphs) {
  util::Rng rng(97);
  for (int trial = 0; trial < 200; ++trial) {
    const int sats = static_cast<int>(rng.uniform_int(1, 6));
    const int stations = static_cast<int>(rng.uniform_int(1, 6));
    const auto edges = random_graph(rng, sats, stations, 0.6);
    const double expected = brute_force_max_weight(edges, sats, stations);
    const double actual =
        matching_value(edges, optimal_matching(edges, sats, stations));
    EXPECT_NEAR(actual, expected, 1e-9)
        << "trial " << trial << " (" << sats << "x" << stations << ", "
        << edges.size() << " edges)";
  }
}

TEST(MatchingBruteForce, StableNeverExceedsOptimal) {
  util::Rng rng(101);
  for (int trial = 0; trial < 200; ++trial) {
    const int sats = static_cast<int>(rng.uniform_int(1, 6));
    const int stations = static_cast<int>(rng.uniform_int(1, 6));
    const auto edges = random_graph(rng, sats, stations, 0.6);
    const double opt = brute_force_max_weight(edges, sats, stations);
    const double stable =
        matching_value(edges, stable_matching(edges, sats, stations));
    EXPECT_LE(stable, opt + 1e-9);
    // ...and is never worse than half the optimum (greedy/stable matchings
    // on weight-aligned preferences are 2-approximations).
    EXPECT_GE(stable, opt / 2.0 - 1e-9) << "trial " << trial;
  }
}

TEST(MatchingBruteForce, StableIsMaximal) {
  // A stable matching with aligned preferences is maximal: no positive
  // edge has both endpoints free.
  util::Rng rng(103);
  for (int trial = 0; trial < 100; ++trial) {
    const int sats = static_cast<int>(rng.uniform_int(1, 10));
    const int stations = static_cast<int>(rng.uniform_int(1, 10));
    const auto edges = random_graph(rng, sats, stations, 0.4);
    const Matching m = stable_matching(edges, sats, stations);
    std::vector<char> sat_used(sats, 0), gs_used(stations, 0);
    for (int i : m) {
      sat_used[edges[i].sat] = 1;
      gs_used[edges[i].station] = 1;
    }
    for (const Edge& e : edges) {
      if (e.weight <= 0.0) continue;
      EXPECT_TRUE(sat_used[e.sat] || gs_used[e.station])
          << "unmatched positive edge " << e.sat << "-" << e.station;
    }
  }
}

}  // namespace
}  // namespace dgs::core
