file(REMOVE_RECURSE
  "libdgs_core.a"
)
