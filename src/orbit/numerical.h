// Numerical orbit propagation (RK4 with a J2-perturbed point-mass field).
//
// This integrator is deliberately independent of the SGP4 analytical theory:
// the test suite cross-validates SGP4 against it over multi-orbit horizons,
// where both models agree to kilometre level for LEO (the residual is J3/J4,
// drag, and resonance terms that are negligible over hours).
#pragma once

#include "src/orbit/kepler.h"
#include "src/util/vec3.h"

namespace dgs::orbit {

/// Gravitational acceleration [km/s^2] at inertial position `r_km`,
/// including the J2 oblateness term (WGS-72 constants).
util::Vec3 gravity_j2(const util::Vec3& r_km);

/// Integrates the state forward by `dt_seconds` using fixed-step RK4 with
/// steps of at most `max_step_seconds`.  Throws std::domain_error if the
/// trajectory intersects the Earth.
StateVector propagate_rk4_j2(const StateVector& initial, double dt_seconds,
                             double max_step_seconds = 10.0);

}  // namespace dgs::orbit
