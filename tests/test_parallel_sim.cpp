// Parallel-simulation determinism: a multi-threaded run must produce a
// Report byte-identical to the serial run — same SimulationResult fields,
// same serialized summary JSON, same timeseries CSV.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/core/report.h"
#include "src/core/simulator.h"
#include "src/faults/profiles.h"
#include "src/groundseg/network_gen.h"
#include "src/obs/events.h"
#include "src/obs/metrics.h"
#include "src/weather/synthetic.h"

namespace {

using namespace dgs;

const util::Epoch kT0(util::DateTime{2020, 11, 4, 0, 0, 0.0});

core::SimulationResult run_sim(int num_threads, double lookahead_hours,
                               obs::Registry* metrics = nullptr,
                               obs::EventLog* events = nullptr,
                               bool storm_faults = false) {
  groundseg::NetworkOptions net;
  net.num_satellites = 10;
  net.num_stations = 12;
  net.tx_fraction = 0.25;
  net.seed = 99;
  const auto sats = groundseg::generate_constellation(net, kT0);
  const auto stations = groundseg::generate_dgs_stations(net);
  weather::SyntheticWeatherProvider wx(31, kT0, 25.0);

  core::SimulationOptions opts;
  opts.start = kT0;
  opts.duration_hours = 24.0;
  opts.step_seconds = 60.0;
  opts.urgent_fraction = 0.05;
  opts.station_backhaul_bps = 40e6;
  opts.slew_seconds = lookahead_hours > 0.0 ? 0.0 : 5.0;
  opts.lookahead_hours = lookahead_hours;
  opts.collect_timeseries = true;
  opts.parallel.num_threads = num_threads;
  opts.parallel.chunk_size = 4;
  opts.metrics = metrics;
  opts.events = events;
  if (storm_faults) {
    opts.faults =
        faults::make_profile("storm", 7, static_cast<int>(stations.size()));
  }

  core::Simulator sim(sats, stations, &wx, opts);
  return sim.run();
}

/// The full machine-readable artifact of a run: summary JSON + timeseries
/// CSV.  Byte equality here is the PR's determinism acceptance criterion.
std::string render_report(const core::SimulationResult& r) {
  std::ostringstream out;
  core::write_summary_json(out, r);
  out << '\n';
  core::write_timeseries_csv(out, r);
  return out.str();
}

void expect_identical(const core::SimulationResult& a,
                      const core::SimulationResult& b) {
  // Exact float equality everywhere: the parallel path runs the same
  // operations in the same order per item, so results match bitwise.
  EXPECT_EQ(a.total_generated_bytes, b.total_generated_bytes);
  EXPECT_EQ(a.total_delivered_bytes, b.total_delivered_bytes);
  EXPECT_EQ(a.total_dropped_bytes, b.total_dropped_bytes);
  EXPECT_EQ(a.assigned_capacity_bytes, b.assigned_capacity_bytes);
  EXPECT_EQ(a.assignments, b.assignments);
  EXPECT_EQ(a.total_matched_value, b.total_matched_value);
  EXPECT_EQ(a.failed_assignments, b.failed_assignments);
  EXPECT_EQ(a.wasted_transmission_bytes, b.wasted_transmission_bytes);
  EXPECT_EQ(a.requeued_bytes, b.requeued_bytes);
  EXPECT_EQ(a.slew_events, b.slew_events);
  EXPECT_EQ(a.outage_lost_bytes, b.outage_lost_bytes);
  EXPECT_EQ(a.ack_retries, b.ack_retries);
  EXPECT_EQ(a.replans, b.replans);
  EXPECT_EQ(a.plan_upload_failures, b.plan_upload_failures);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.mean_station_utilization, b.mean_station_utilization);
  EXPECT_EQ(a.station_queued_bytes, b.station_queued_bytes);
  EXPECT_EQ(a.latency_minutes.sorted(), b.latency_minutes.sorted());
  EXPECT_EQ(a.urgent_latency_minutes.sorted(),
            b.urgent_latency_minutes.sorted());
  EXPECT_EQ(a.bulk_latency_minutes.sorted(), b.bulk_latency_minutes.sorted());
  EXPECT_EQ(a.backlog_gb.sorted(), b.backlog_gb.sorted());
  EXPECT_EQ(a.ack_delay_minutes.sorted(), b.ack_delay_minutes.sorted());
  EXPECT_EQ(a.cloud_latency_minutes.sorted(),
            b.cloud_latency_minutes.sorted());
  ASSERT_EQ(a.per_satellite.size(), b.per_satellite.size());
  for (std::size_t s = 0; s < a.per_satellite.size(); ++s) {
    EXPECT_EQ(a.per_satellite[s].generated_bytes,
              b.per_satellite[s].generated_bytes);
    EXPECT_EQ(a.per_satellite[s].delivered_bytes,
              b.per_satellite[s].delivered_bytes);
    EXPECT_EQ(a.per_satellite[s].backlog_bytes,
              b.per_satellite[s].backlog_bytes);
    EXPECT_EQ(a.per_satellite[s].pending_ack_bytes,
              b.per_satellite[s].pending_ack_bytes);
    EXPECT_EQ(a.per_satellite[s].dropped_bytes,
              b.per_satellite[s].dropped_bytes);
    EXPECT_EQ(a.per_satellite[s].tx_contacts, b.per_satellite[s].tx_contacts);
  }
  ASSERT_EQ(a.timeseries.size(), b.timeseries.size());
  for (std::size_t i = 0; i < a.timeseries.size(); ++i) {
    EXPECT_EQ(a.timeseries[i].delivered_bytes_cum,
              b.timeseries[i].delivered_bytes_cum);
    EXPECT_EQ(a.timeseries[i].backlog_bytes_total,
              b.timeseries[i].backlog_bytes_total);
    EXPECT_EQ(a.timeseries[i].active_links, b.timeseries[i].active_links);
  }
  EXPECT_EQ(render_report(a), render_report(b));
}

TEST(ParallelSimulator, FourThreads24hByteIdenticalToSerial) {
  const core::SimulationResult serial = run_sim(1, 0.0);
  const core::SimulationResult parallel = run_sim(4, 0.0);
  // Sanity: the scenario actually exercises delivery and retransmission.
  EXPECT_GT(serial.total_delivered_bytes, 0.0);
  EXPECT_GT(serial.assignments, 0);
  expect_identical(serial, parallel);
}

TEST(ParallelSimulator, HardwareThreadsMatchSerial) {
  const core::SimulationResult serial = run_sim(1, 0.0);
  const core::SimulationResult parallel = run_sim(0, 0.0);  // all cores
  expect_identical(serial, parallel);
}

TEST(ParallelSimulator, LookaheadPlannerDeterministicAcrossThreads) {
  const core::SimulationResult serial = run_sim(1, 2.0);
  const core::SimulationResult parallel = run_sim(4, 2.0);
  EXPECT_GT(serial.total_delivered_bytes, 0.0);
  expect_identical(serial, parallel);
}

TEST(ParallelSimulator, ObservabilityIsByteIdenticalAcrossThreads) {
  // DESIGN.md §10: the metrics fold and the event log are part of the
  // deterministic artifact.  A threaded run must scrape the identical
  // Prometheus text and emit the identical JSONL, byte for byte.
  obs::Registry serial_reg;
  std::ostringstream serial_events;
  obs::EventLog serial_log(&serial_events);
  const core::SimulationResult serial =
      run_sim(1, 0.0, &serial_reg, &serial_log);

  obs::Registry parallel_reg;
  std::ostringstream parallel_events;
  obs::EventLog parallel_log(&parallel_events);
  const core::SimulationResult parallel =
      run_sim(4, 0.0, &parallel_reg, &parallel_log);

  expect_identical(serial, parallel);

  std::ostringstream serial_prom, parallel_prom;
  serial_reg.write_prometheus(serial_prom);
  parallel_reg.write_prometheus(parallel_prom);
  EXPECT_GT(serial_reg.series_count(), 0u);
  EXPECT_EQ(serial_prom.str(), parallel_prom.str());

  EXPECT_FALSE(serial_events.str().empty());
  EXPECT_EQ(serial_events.str(), parallel_events.str());
}

TEST(ParallelSimulator, FaultedLookahead24hByteIdenticalAcrossThreads) {
  // The ISSUE's acceptance criterion: a 24 h run with a fixed fault seed
  // (the full storm taxonomy: churn, flaky ack relay, plan-upload
  // failures, backhaul brownouts) under the look-ahead planner with
  // replanning must produce a byte-equal Report, metrics exposition, and
  // event log serially and with 4 threads.
  obs::Registry serial_reg;
  std::ostringstream serial_events;
  obs::EventLog serial_log(&serial_events);
  const core::SimulationResult serial =
      run_sim(1, 1.0, &serial_reg, &serial_log, /*storm_faults=*/true);

  obs::Registry parallel_reg;
  std::ostringstream parallel_events;
  obs::EventLog parallel_log(&parallel_events);
  const core::SimulationResult parallel =
      run_sim(4, 1.0, &parallel_reg, &parallel_log, /*storm_faults=*/true);

  // The storm actually bites: outage transitions happen and data is lost
  // into the requeue loop.
  EXPECT_GT(serial.total_delivered_bytes, 0.0);
  EXPECT_GT(serial.ack_retries, 0);
  expect_identical(serial, parallel);

  std::ostringstream serial_prom, parallel_prom;
  serial_reg.write_prometheus(serial_prom);
  parallel_reg.write_prometheus(parallel_prom);
  EXPECT_NE(serial_prom.str().find("dgs_faults_"), std::string::npos);
  EXPECT_EQ(serial_prom.str(), parallel_prom.str());
  EXPECT_EQ(serial_events.str(), parallel_events.str());
}

}  // namespace
