#include "src/link/budget.h"

#include <cmath>
#include <limits>

#include "src/link/clouds.h"
#include "src/link/fspl.h"
#include "src/link/gases.h"
#include "src/link/rain.h"
#include "src/util/check.h"
#include "src/util/constants.h"

namespace dgs::link {
namespace {

/// `10*log10(symbol_rate)` with a single-entry memo: the symbol rate is a
/// per-radio constant shared fleet-wide, and the term is recomputed for
/// every candidate edge of a contact sweep.  Same expression on the same
/// input, so the cached value is bit-identical; the NaN sentinel never
/// compares equal, so the first call always computes.
double symbol_rate_db(double symbol_rate_hz) {
  thread_local double memo_hz = std::numeric_limits<double>::quiet_NaN();
  thread_local double memo_db = 0.0;
  if (symbol_rate_hz != memo_hz) {
    memo_db = 10.0 * std::log10(symbol_rate_hz);
    memo_hz = symbol_rate_hz;
  }
  return memo_db;
}

}  // namespace

LinkBudget evaluate_link(const RadioSpec& radio, const ReceiveSystem& rx,
                         const PathConditions& path) {
  DGS_ENSURE_GE(radio.channels, 1);
  DGS_ENSURE_GT(path.range_km, 0.0);
  DGS_ENSURE(std::isfinite(path.range_km) &&
                 std::isfinite(path.elevation_rad) &&
                 std::isfinite(path.rain_rate_mm_h) &&
                 std::isfinite(path.cloud_liquid_kg_m2),
             "non-finite path conditions: range=" << path.range_km
                 << " el=" << path.elevation_rad << " rain="
                 << path.rain_rate_mm_h << " clw="
                 << path.cloud_liquid_kg_m2);

  LinkBudget b;
  if (path.elevation_rad <= 0.0) return b;  // Below the horizon: no link.

  const double f_ghz = radio.frequency_hz / 1e9;
  b.fspl_db = fspl_db(path.range_km, radio.frequency_hz);
  b.rain_db = rain_attenuation_db(f_ghz, path.rain_rate_mm_h,
                                  path.elevation_rad, path.site_latitude_rad,
                                  path.site_altitude_km);
  b.cloud_db = cloud_attenuation_db(f_ghz, path.cloud_liquid_kg_m2,
                                    path.elevation_rad);
  b.gas_db = gaseous_attenuation_db(f_ghz, path.elevation_rad);
  b.total_atmos_db = b.rain_db + b.cloud_db + b.gas_db;

  b.g_over_t_db = g_over_t_db(rx, radio.frequency_hz, b.total_atmos_db);

  // C/N0 [dBHz] = EIRP - FSPL - A_atmos + G/T - 10log10(k) - L_impl.
  b.cn0_dbhz = radio.eirp_dbw - b.fspl_db - b.total_atmos_db + b.g_over_t_db -
               util::kBoltzmannDb - radio.implementation_loss_db;
  b.esn0_db = b.cn0_dbhz - symbol_rate_db(radio.symbol_rate_hz);

  // Every dB term must be finite and every attenuation non-negative: a NaN
  // here would silently poison edge weights and the whole schedule.
  DGS_DCHECK(std::isfinite(b.fspl_db) && b.fspl_db > 0.0,
             "fspl_db=" << b.fspl_db);
  DGS_DCHECK(std::isfinite(b.rain_db) && b.rain_db >= 0.0,
             "rain_db=" << b.rain_db);
  DGS_DCHECK(std::isfinite(b.cloud_db) && b.cloud_db >= 0.0,
             "cloud_db=" << b.cloud_db);
  DGS_DCHECK(std::isfinite(b.gas_db) && b.gas_db >= 0.0,
             "gas_db=" << b.gas_db);
  DGS_DCHECK(std::isfinite(b.g_over_t_db), "g_over_t_db=" << b.g_over_t_db);
  DGS_DCHECK(std::isfinite(b.cn0_dbhz), "cn0_dbhz=" << b.cn0_dbhz);
  DGS_DCHECK(std::isfinite(b.esn0_db), "esn0_db=" << b.esn0_db);

  b.modcod = select_modcod(b.esn0_db, radio.modcod_margin_db);
  if (b.modcod != nullptr) {
    b.data_rate_bps =
        bitrate_bps(*b.modcod, radio.symbol_rate_hz) * radio.channels;
    // The selected MODCOD honours the margin, and the resulting rate is a
    // real positive bit rate.
    DGS_DCHECK_LE(b.modcod->required_esn0_db + radio.modcod_margin_db,
                  b.esn0_db);
    DGS_DCHECK(std::isfinite(b.data_rate_bps) && b.data_rate_bps > 0.0,
               "data_rate_bps=" << b.data_rate_bps);
  }
  return b;
}

}  // namespace dgs::link
