#include "src/netdesign/value_table.h"

#include <cmath>

#include "src/core/visibility.h"
#include "src/util/check.h"

namespace dgs::netdesign {

double CandidateEntry::standalone_gb() const {
  double total = 0.0;
  for (const PassValue& pass : passes) {
    for (double v : pass.step_values) total += v;
  }
  return total;
}

ValueTable build_value_table(
    const std::vector<groundseg::SatelliteConfig>& sats,
    const std::vector<CandidateSite>& pool,
    const weather::WeatherProvider* forecast_weather,
    const ValueTableOptions& opts) {
  DGS_ENSURE(!sats.empty() && !pool.empty(),
             "sats=" << sats.size() << " pool=" << pool.size());
  DGS_ENSURE(opts.duration_hours > 0.0 && opts.step_seconds > 0.0,
             "duration_hours=" << opts.duration_hours
                               << " step_seconds=" << opts.step_seconds);

  ValueTable table;
  table.num_sats = static_cast<int>(sats.size());
  table.num_steps = static_cast<int>(
      std::llround(opts.duration_hours * 3600.0 / opts.step_seconds));
  table.step_seconds = opts.step_seconds;
  DGS_ENSURE_GE(table.num_steps, 1);

  const std::vector<groundseg::GroundStation> stations =
      pool_stations(pool);
  core::VisibilityEngine engine(sats, stations, forecast_weather);
  util::ThreadPool thread_pool(opts.parallel);
  engine.set_thread_pool(&thread_pool);
  engine.set_metrics(opts.metrics);

  obs::Counter* candidates_metric = nullptr;
  obs::Counter* passes_metric = nullptr;
  if (opts.metrics != nullptr) {
    candidates_metric = opts.metrics->counter(
        "dgs_netdesign_candidates_total",
        "Candidate sites swept into value tables");
    passes_metric = opts.metrics->counter(
        "dgs_netdesign_value_passes_total",
        "(candidate, satellite) visibility passes tabulated");
  }

  const int num_candidates = static_cast<int>(pool.size());
  table.candidates.resize(pool.size());
  for (int c = 0; c < num_candidates; ++c) {
    CandidateEntry& entry = table.candidates[static_cast<std::size_t>(c)];
    entry.candidate = c;
    entry.cost = pool[static_cast<std::size_t>(c)].install_cost;
    entry.availability = pool[static_cast<std::size_t>(c)].availability;
  }

  // Open-pass bookkeeping per (candidate, sat): index into the entry's
  // passes vector while the window is still contiguous, -1 otherwise.
  std::vector<int> open_pass(
      static_cast<std::size_t>(num_candidates) *
          static_cast<std::size_t>(table.num_sats),
      -1);
  std::vector<int> last_step(open_pass.size(), -2);
  const auto slot = [&](int c, int s) {
    return static_cast<std::size_t>(c) *
               static_cast<std::size_t>(table.num_sats) +
           static_cast<std::size_t>(s);
  };

  // The step loop itself is serial: contacts() already parallelizes its
  // inner sweeps and its output is thread-count-invariant, so the
  // assembled table is too.
  for (int step = 0; step < table.num_steps; ++step) {
    const util::Epoch when =
        opts.start.plus_seconds(step * opts.step_seconds);
    for (const core::ContactEdge& e : engine.contacts(when)) {
      CandidateEntry& entry =
          table.candidates[static_cast<std::size_t>(e.station)];
      const double value_gb = entry.availability * e.predicted_rate_bps *
                              opts.step_seconds / 8.0 / 1e9;
      const std::size_t key = slot(e.station, e.sat);
      if (last_step[key] == step - 1 && open_pass[key] >= 0) {
        entry.passes[static_cast<std::size_t>(open_pass[key])]
            .step_values.push_back(value_gb);
      } else {
        PassValue pass;
        pass.sat = e.sat;
        pass.first_step = step;
        pass.step_values.push_back(value_gb);
        open_pass[key] = static_cast<int>(entry.passes.size());
        entry.passes.push_back(std::move(pass));
        if (passes_metric != nullptr) passes_metric->inc();
      }
      last_step[key] = step;
    }
  }

  if (candidates_metric != nullptr) {
    candidates_metric->inc(static_cast<double>(num_candidates));
  }
  return table;
}

}  // namespace dgs::netdesign
