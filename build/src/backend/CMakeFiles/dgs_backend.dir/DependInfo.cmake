
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/backend/backhaul.cpp" "src/backend/CMakeFiles/dgs_backend.dir/backhaul.cpp.o" "gcc" "src/backend/CMakeFiles/dgs_backend.dir/backhaul.cpp.o.d"
  "/root/repo/src/backend/station_edge.cpp" "src/backend/CMakeFiles/dgs_backend.dir/station_edge.cpp.o" "gcc" "src/backend/CMakeFiles/dgs_backend.dir/station_edge.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dgs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/dgs_link.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
