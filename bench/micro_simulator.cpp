// Whole-pipeline micro-benchmarks: the per-step cost of each scheduler
// stage at paper scale (259 satellites x 173 stations), and a full
// simulated hour.  These are the numbers that say whether the backend
// scheduler could run in real time (it must plan faster than the
// constellation flies).
//
// `--threads=N` runs the pipeline on an N-lane ThreadPool (1 = serial,
// 0 = hardware concurrency); results are bit-identical at any setting, so
// sweeping the flag measures pure speedup.  CI's bench-smoke lane gates on
// the serial numbers (bench/baseline.json).
#include <benchmark/benchmark.h>

#include <fstream>
#include <string>

#include "bench/bench_flags.h"
#include "src/core/dgs.h"
#include "src/core/lookahead.h"
#include "src/obs/trace.h"

namespace {

using namespace dgs;

const util::Epoch kEpoch(util::DateTime{2020, 11, 4, 0, 0, 0.0});

int g_threads = 1;  // set by --threads in main()

struct PaperScale {
  PaperScale()
      : sats(groundseg::generate_constellation(groundseg::NetworkOptions{},
                                               kEpoch)),
        stations(groundseg::generate_dgs_stations(
            groundseg::NetworkOptions{})),
        wx(7, kEpoch, 25.0), engine(sats, stations, &wx),
        pool(util::ParallelConfig{.num_threads = g_threads,
                                  .chunk_size = 8}),
        queues(sats.size()) {
    engine.set_thread_pool(&pool);
    for (auto& q : queues) q.generate(20e9, kEpoch.plus_seconds(-3600));
  }
  std::vector<groundseg::SatelliteConfig> sats;
  std::vector<groundseg::GroundStation> stations;
  weather::SyntheticWeatherProvider wx;
  core::VisibilityEngine engine;
  util::ThreadPool pool;
  std::vector<core::OnboardQueue> queues;
};

PaperScale& fixture() {
  static PaperScale ps;
  return ps;
}

void BM_ContactGraphOneInstant(benchmark::State& state) {
  PaperScale& ps = fixture();
  double minute = 0.0;
  for (auto _ : state) {
    minute += 1.0;
    benchmark::DoNotOptimize(
        ps.engine.contacts(kEpoch.plus_seconds(minute * 60.0)));
  }
}
BENCHMARK(BM_ContactGraphOneInstant);

void BM_ScheduleOneInstant(benchmark::State& state) {
  PaperScale& ps = fixture();
  core::Scheduler scheduler(&ps.engine, core::SchedulerConfig{});
  double minute = 0.0;
  for (auto _ : state) {
    minute += 1.0;
    benchmark::DoNotOptimize(scheduler.schedule_instant(
        kEpoch.plus_seconds(minute * 60.0), ps.queues));
  }
}
BENCHMARK(BM_ScheduleOneInstant);

void BM_PlanThreeHourHorizon(benchmark::State& state) {
  PaperScale& ps = fixture();
  core::LatencyValue phi;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::plan_horizon(ps.engine, ps.queues, phi, kEpoch, 180, 60.0));
  }
}
BENCHMARK(BM_PlanThreeHourHorizon)->Unit(benchmark::kMillisecond);

// Same sweep with the step-geometry cache enabled: after the first
// iteration every epoch is a cache hit, isolating the non-geometry cost
// (weather + budgets + block allocation) of a planning pass.
void BM_PlanThreeHourHorizonCached(benchmark::State& state) {
  PaperScale& ps = fixture();
  ps.engine.enable_geometry_cache(kEpoch, 60.0, 192);
  core::LatencyValue phi;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::plan_horizon(ps.engine, ps.queues, phi, kEpoch, 180, 60.0));
  }
  ps.engine.enable_geometry_cache(kEpoch, 60.0, 1);  // drop the memory
}
BENCHMARK(BM_PlanThreeHourHorizonCached)->Unit(benchmark::kMillisecond);

void BM_SimulateOneHourPaperScale(benchmark::State& state) {
  PaperScale& ps = fixture();
  core::SimulationOptions opts;
  opts.start = kEpoch;
  opts.duration_hours = 1.0;
  opts.parallel.num_threads = g_threads;
  opts.parallel.chunk_size = 8;
  for (auto _ : state) {
    core::Simulator sim(ps.sats, ps.stations, &ps.wx, opts);
    benchmark::DoNotOptimize(sim.run());
  }
}
BENCHMARK(BM_SimulateOneHourPaperScale)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  g_threads = dgs::bench::consume_threads_flag(&argc, argv);
  // `--trace-out=FILE` turns span tracing on for the whole run and dumps
  // the Chrome-trace JSON afterwards (CI uploads it as an artifact).
  const std::string trace_out =
      dgs::bench::consume_trace_out_flag(&argc, argv);
  if (!trace_out.empty()) dgs::obs::set_trace_enabled(true);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  if (!trace_out.empty()) {
    std::ofstream out(trace_out);
    dgs::obs::write_chrome_trace(out);
  }
  benchmark::Shutdown();
  return 0;
}
