file(REMOVE_RECURSE
  "CMakeFiles/abl_outage.dir/abl_outage.cpp.o"
  "CMakeFiles/abl_outage.dir/abl_outage.cpp.o.d"
  "abl_outage"
  "abl_outage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_outage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
