// dgslint fixture: R3 — raw threading primitives.
#include <future>
#include <thread>

void r3_thread() {
  std::thread t([] {});  // finding: R3 raw std::thread
  t.join();
}

int r3_async() {
  auto f = std::async([] { return 1; });  // finding: R3 std::async
  return f.get();
}

#pragma omp parallel for  // finding: R3 OpenMP

void r3_suppressed() {
  // dgslint: allow(R3) -- fixture: suppressed raw thread
  std::thread t([] {});
  t.join();
}
