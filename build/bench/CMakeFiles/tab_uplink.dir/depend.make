# Empty dependencies file for tab_uplink.
# This may be replaced when dependencies are built.
