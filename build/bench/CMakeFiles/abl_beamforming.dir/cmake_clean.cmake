file(REMOVE_RECURSE
  "CMakeFiles/abl_beamforming.dir/abl_beamforming.cpp.o"
  "CMakeFiles/abl_beamforming.dir/abl_beamforming.cpp.o.d"
  "abl_beamforming"
  "abl_beamforming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_beamforming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
