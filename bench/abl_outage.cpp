// E13 — robustness: station failures (paper §1: "the centralized link is a
// single point of failure"; the distributed design's gains should degrade
// gracefully).
//
// Injects outages into both systems and measures the damage:
//   baseline: lose 1 of 5 polar stations for 12 h (20% of the ground
//             segment — one storm, fibre cut, or maintenance window)
//   DGS:      lose the same *fraction* (35 of 173 stations) for 12 h
//   DGS:      lose an entire region (all European stations) for 12 h
#include <cstdio>

#include "bench/common.h"
#include "src/util/angles.h"

int main() {
  using namespace dgs;
  using namespace dgs::bench;
  using util::rad2deg;

  std::printf("=== E13: robustness to station outages (24 h) ===\n\n");
  const Setup setup = make_paper_setup();
  weather::SyntheticWeatherProvider wx(kWeatherSeed, kEpoch, 25.0);

  auto report = [](const char* label, const core::SimulationResult& r) {
    std::printf("  %-34s lat med %6.1f  p90 %6.1f  p99 %6.1f min | "
                "backlog med %5.2f p99 %6.2f GB\n",
                label, r.latency_minutes.median(),
                r.latency_minutes.percentile(90.0),
                r.latency_minutes.percentile(99.0), r.backlog_gb.median(),
                r.backlog_gb.percentile(99.0));
  };

  // Healthy references.
  report("baseline, healthy",
         core::Simulator(setup.sats_6ch, setup.baseline, &wx, day_sim())
             .run());
  report("DGS, healthy",
         core::Simulator(setup.sats, setup.dgs, &wx, day_sim()).run());

  // Baseline loses Svalbard (its busiest polar site) from hour 6 to 18.
  {
    core::SimulationOptions opts = day_sim();
    opts.faults.outages.push_back(dgs::faults::OutageWindow{0, 6.0, 18.0});
    report("baseline, -1 station (20%) 12 h",
           core::Simulator(setup.sats_6ch, setup.baseline, &wx, opts).run());
  }

  // DGS loses the same fraction: every 5th station, hours 6-18.
  {
    core::SimulationOptions opts = day_sim();
    for (std::size_t g = 0; g < setup.dgs.size(); g += 5) {
      opts.faults.outages.push_back(
          dgs::faults::OutageWindow{static_cast<int>(g), 6.0, 18.0});
    }
    report("DGS, -20% stations 12 h",
           core::Simulator(setup.sats, setup.dgs, &wx, opts).run());
  }

  // DGS loses all of Europe (a correlated regional failure: power grid,
  // weather system, regulatory shutdown), hours 6-18.
  {
    core::SimulationOptions opts = day_sim();
    int killed = 0;
    for (std::size_t g = 0; g < setup.dgs.size(); ++g) {
      const double lat = rad2deg(setup.dgs[g].location.latitude_rad);
      const double lon = rad2deg(setup.dgs[g].location.longitude_rad);
      if (lat > 36.0 && lat < 69.0 && lon > -10.0 && lon < 40.0) {
        opts.faults.outages.push_back(
            dgs::faults::OutageWindow{static_cast<int>(g), 6.0, 18.0});
        ++killed;
      }
    }
    std::printf("  (European regional outage kills %d stations)\n", killed);
    report("DGS, -Europe 12 h",
           core::Simulator(setup.sats, setup.dgs, &wx, opts).run());
  }

  std::printf("\n  expected shape: the baseline's tail latency blows up "
              "when one of five stations dies; DGS absorbs the same "
              "fractional loss, and even a full regional outage, with a "
              "modest degradation.\n");
  return 0;
}
