#include "src/core/visibility.h"

#include <cmath>

#include "src/obs/trace.h"
#include "src/orbit/frames.h"
#include "src/util/check.h"

namespace dgs::core {

VisibilityEngine::VisibilityEngine(
    const std::vector<groundseg::SatelliteConfig>& sats,
    const std::vector<groundseg::GroundStation>& stations,
    const weather::WeatherProvider* forecast_weather)
    : sats_(&sats), stations_(&stations), wx_(forecast_weather) {
  props_.reserve(sats.size());
  for (const groundseg::SatelliteConfig& sc : sats) {
    props_.emplace_back(sc.tle);
  }
  geom_.reserve(stations.size());
  for (const groundseg::GroundStation& gs : stations) {
    StationGeom g;
    g.ecef = orbit::geodetic_to_ecef(gs.location);
    const double clat = std::cos(gs.location.latitude_rad);
    g.up = {clat * std::cos(gs.location.longitude_rad),
            clat * std::sin(gs.location.longitude_rad),
            std::sin(gs.location.latitude_rad)};
    geom_.push_back(g);
  }
}

void VisibilityEngine::set_metrics(obs::Registry* registry) {
  metrics_ = registry;
  if (registry == nullptr) {
    propagations_ = nullptr;
    link_budgets_ = nullptr;
    contact_edges_ = nullptr;
    return;
  }
  propagations_ = registry->counter(
      "dgs_vis_propagations_total",
      "Satellite propagations (SGP4 + TEME->ECEF) computed");
  link_budgets_ = registry->counter(
      "dgs_vis_link_budgets_total",
      "Predictive link budgets evaluated over visible pairs");
  contact_edges_ = registry->counter(
      "dgs_vis_contact_edges_total",
      "Contact-graph edges produced (budget closed)");
}

void VisibilityEngine::enable_geometry_cache(const util::Epoch& base,
                                             double step_seconds,
                                             int capacity_steps) {
  cache_ = std::make_unique<GeometryCache>(base, step_seconds, capacity_steps,
                                           metrics_);
}

util::Vec3 VisibilityEngine::satellite_ecef(int sat,
                                            const util::Epoch& when) const {
  const orbit::TemeState st = props_.at(sat).propagate_to(when);
  return orbit::teme_to_ecef(st.position_km, when);
}

bool VisibilityEngine::visible(int sat, int station,
                               const util::Epoch& when) const {
  const util::Vec3 sat_ecef = satellite_ecef(sat, when);
  const StationGeom& g = geom_.at(station);
  const util::Vec3 rho = sat_ecef - g.ecef;
  const double el = std::asin(rho.dot(g.up) / rho.norm());
  return el >= (*stations_)[station].min_elevation_rad;
}

void VisibilityEngine::compute_step_geometry(const util::Epoch& when,
                                             StepGeometry& out) const {
  DGS_TRACE_SPAN("vis.geometry");
  const auto num_sats = static_cast<std::int64_t>(props_.size());
  const auto num_stations = static_cast<std::int64_t>(stations_->size());
  out.sat_ecef.resize(props_.size());
  out.per_station.resize(stations_->size());

  // Propagate every satellite once for this instant (SGP4 + TEME->ECEF);
  // per-index writes keep the result thread-count independent.
  const auto propagate = [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t s = begin; s < end; ++s) {
      out.sat_ecef[static_cast<std::size_t>(s)] =
          satellite_ecef(static_cast<int>(s), when);
    }
    if (propagations_ != nullptr) {
      propagations_->inc(static_cast<double>(end - begin));
    }
  };
  // Sweep each station's elevation mask over all satellites.  Stations
  // are independent; each writes only its own visibility list, in
  // ascending satellite order — exactly the serial sweep's order.
  const auto sweep = [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t g = begin; g < end; ++g) {
      const groundseg::GroundStation& gs =
          (*stations_)[static_cast<std::size_t>(g)];
      const StationGeom& geom = geom_[static_cast<std::size_t>(g)];
      std::vector<VisibleSat>& vis =
          out.per_station[static_cast<std::size_t>(g)];
      vis.clear();
      for (std::size_t s = 0; s < props_.size(); ++s) {
        if (!gs.constraints.allows(s)) continue;
        const util::Vec3 rho = out.sat_ecef[s] - geom.ecef;
        const double range = rho.norm();
        const double el = std::asin(rho.dot(geom.up) / range);
        if (el < gs.min_elevation_rad) continue;
        vis.push_back(VisibleSat{static_cast<int>(s), el, range});
      }
    }
  };
  if (pool_ != nullptr) {
    pool_->parallel_for(num_sats, propagate);
    pool_->parallel_for(num_stations, sweep);
  } else {
    propagate(0, num_sats);
    sweep(0, num_stations);
  }
}

const StepGeometry* VisibilityEngine::step_geometry(const util::Epoch& when,
                                                    StepGeometry& local)
    const {
  if (cache_ != nullptr) {
    if (const std::optional<std::int64_t> key = cache_->step_key(when)) {
      if (const StepGeometry* hit = cache_->find(*key)) return hit;
      StepGeometry& slot = cache_->emplace(*key);
      compute_step_geometry(when, slot);
      return &slot;
    }
  }
  compute_step_geometry(when, local);
  return &local;
}

std::vector<ContactEdge> VisibilityEngine::contacts(
    const util::Epoch& when, std::span<const double> forecast_lead_s,
    std::span<const char> station_down) const {
  DGS_ENSURE(forecast_lead_s.empty() ||
                 forecast_lead_s.size() == props_.size(),
             "forecast_lead_s size=" << forecast_lead_s.size()
                                     << " sats=" << props_.size());
  DGS_ENSURE(station_down.empty() || station_down.size() == stations_->size(),
             "station_down size=" << station_down.size() << " stations="
                                  << stations_->size());
  DGS_TRACE_SPAN("vis.contacts");

  StepGeometry local;
  const StepGeometry* geo = step_geometry(when, local);

  // Weather sampling and link budgets depend on the forecast lead and the
  // outage mask, so they are evaluated per call (never cached).  Each
  // station produces its own edge list; concatenating them in station
  // order reproduces the serial station-major, satellite-minor order.
  std::vector<std::vector<ContactEdge>> per_station(stations_->size());
  const auto budgets = [&](std::int64_t begin, std::int64_t end) {
    std::int64_t budgets_evaluated = 0;
    std::int64_t edges_produced = 0;
    for (std::int64_t gi = begin; gi < end; ++gi) {
      const auto g = static_cast<std::size_t>(gi);
      if (!station_down.empty() && station_down[g]) continue;
      const groundseg::GroundStation& gs = (*stations_)[g];

      // Zero-lead forecast is shared by all satellites at this station;
      // cache.
      std::optional<weather::WeatherSample> station_wx;

      for (const VisibleSat& v : geo->per_station[g]) {
        const auto s = static_cast<std::size_t>(v.sat);
        weather::WeatherSample wx;  // defaults to clear sky
        if (wx_ != nullptr) {
          const double lead =
              forecast_lead_s.empty() ? 0.0 : forecast_lead_s[s];
          if (lead <= 0.0) {
            if (!station_wx) {
              station_wx = wx_->actual(gs.location.latitude_rad,
                                       gs.location.longitude_rad, when);
            }
            wx = *station_wx;
          } else {
            wx = wx_->forecast(gs.location.latitude_rad,
                               gs.location.longitude_rad, when, lead);
          }
        }

        link::PathConditions path;
        path.range_km = v.range_km;
        path.elevation_rad = v.elevation_rad;
        path.site_latitude_rad = gs.location.latitude_rad;
        path.site_altitude_km = gs.location.altitude_km;
        path.rain_rate_mm_h = wx.rain_rate_mm_h;
        path.cloud_liquid_kg_m2 = wx.cloud_liquid_kg_m2;

        // Beamforming stations split aperture power across their beams;
        // model the conservative full-split penalty by scaling the
        // aperture efficiency down by the beam count.
        link::ReceiveSystem rx = gs.receiver;
        if (gs.beam_count > 1) {
          rx.aperture_efficiency /= gs.beam_count;
        }
        const link::LinkBudget b =
            link::evaluate_link((*sats_)[s].radio, rx, path);
        ++budgets_evaluated;
        if (!b.closes()) continue;
        ++edges_produced;

        ContactEdge e;
        e.sat = v.sat;
        e.station = static_cast<int>(g);
        e.elevation_rad = v.elevation_rad;
        e.range_km = v.range_km;
        e.predicted_rate_bps = b.data_rate_bps;
        e.modcod = b.modcod;
        per_station[g].push_back(e);
      }
    }
    // One whole-chunk integer add per counter: lock-free, and exact for
    // any shard assignment (DESIGN.md §10 determinism rules).
    if (link_budgets_ != nullptr && budgets_evaluated > 0) {
      link_budgets_->inc(static_cast<double>(budgets_evaluated));
    }
    if (contact_edges_ != nullptr && edges_produced > 0) {
      contact_edges_->inc(static_cast<double>(edges_produced));
    }
  };
  if (pool_ != nullptr) {
    pool_->parallel_for(static_cast<std::int64_t>(stations_->size()),
                        budgets);
  } else {
    budgets(0, static_cast<std::int64_t>(stations_->size()));
  }

  std::size_t total = 0;
  for (const std::vector<ContactEdge>& v : per_station) total += v.size();
  std::vector<ContactEdge> edges;
  edges.reserve(total);
  for (const std::vector<ContactEdge>& v : per_station) {
    edges.insert(edges.end(), v.begin(), v.end());
  }
  return edges;
}

}  // namespace dgs::core
