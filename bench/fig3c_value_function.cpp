// Figure 3c — value-function adaptability: Baseline(L) vs DGS(25% L) vs
// DGS(25% T).
//
// Paper numbers: on DGS(25%), switching Phi from latency- to
// throughput-optimized moves the median from 20 to 22 min and the p90 from
// 58 to 119 min — i.e. the tail roughly doubles, showing the value function
// has real steering power.  Even the throughput-optimized 25% deployment
// stays below the latency-optimized baseline.
#include "bench/common.h"

int main() {
  using namespace dgs;
  using namespace dgs::bench;

  std::printf("=== Fig. 3c: Value-function adaptability (24 h) ===\n");
  const Setup setup = make_paper_setup();
  weather::SyntheticWeatherProvider wx(kWeatherSeed, kEpoch, 25.0);

  const core::SimulationResult base_l =
      core::Simulator(setup.sats_6ch, setup.baseline, &wx,
                      day_sim(core::ValueKind::kLatency))
          .run();
  const core::SimulationResult dgs25_l =
      core::Simulator(setup.sats, setup.dgs25, &wx,
                      day_sim(core::ValueKind::kLatency))
          .run();
  const core::SimulationResult dgs25_t =
      core::Simulator(setup.sats, setup.dgs25, &wx,
                      day_sim(core::ValueKind::kThroughput))
          .run();

  std::printf("\nLatency under different value functions (paper Fig. 3c):\n");
  print_percentiles("Baseline (L)", base_l.latency_minutes, "min");
  print_percentiles("DGS(25%) (L)", dgs25_l.latency_minutes, "min");
  print_percentiles("DGS(25%) (T)", dgs25_t.latency_minutes, "min");

  std::printf("\n");
  print_cdf("latency: Baseline (L)", base_l.latency_minutes, "min");
  print_cdf("latency: DGS(25%) (L)", dgs25_l.latency_minutes, "min");
  print_cdf("latency: DGS(25%) (T)", dgs25_t.latency_minutes, "min");

  std::printf("\n  Phi: latency -> throughput on DGS(25%%):\n");
  std::printf("    median %.0f -> %.0f min (paper: 20 -> 22)\n",
              dgs25_l.latency_minutes.median(),
              dgs25_t.latency_minutes.median());
  std::printf("    p90    %.0f -> %.0f min (paper: 58 -> 119)\n",
              dgs25_l.latency_minutes.percentile(90.0),
              dgs25_t.latency_minutes.percentile(90.0));
  std::printf("    delivered %.1f -> %.1f TB (throughput-optimized moves "
              "at least as much data)\n",
              dgs25_l.total_delivered_bytes / 1e12,
              dgs25_t.total_delivered_bytes / 1e12);
  return 0;
}
