#include "src/campaign/campaign.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#ifdef __unix__
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "src/campaign/manifest.h"
#include "src/core/report.h"
#include "src/faults/fault_rng.h"
#include "src/faults/profiles.h"
#include "src/util/stats.h"
#include "src/util/thread_pool.h"
#include "src/weather/synthetic.h"

namespace dgs::campaign {
namespace {

namespace fs = std::filesystem;

/// Fixed scenario epoch (same reference as dgs_cli): campaigns sample the
/// fault space, not the calendar.
util::Epoch campaign_epoch() {
  return util::Epoch(util::DateTime{2020, 11, 4, 0, 0, 0.0});
}

/// The per-sample scalars the aggregate reports, in emission order.
/// Latency/backlog come from the summary's percentile objects (per-run
/// mean and p99); the rest are summary scalars.
constexpr const char* kAggregateMetrics[] = {
    "latency_mean_minutes", "latency_p99_minutes", "backlog_mean_gb",
    "backlog_p99_gb",       "outage_lost_tb",      "delivered_fraction",
    "total_delivered_tb",   "ack_retries",         "replans",
};

/// Per-run obs counters folded (summed across samples) into the
/// campaign-level registry, re-exposed as dgs_campaign_<suffix>.
constexpr const char* kFoldedSeries[] = {
    "dgs_sim_generated_bytes_total",
    "dgs_sim_delivered_bytes_total",
    "dgs_sim_assignments_total",
    "dgs_sim_failed_assignments_total",
    "dgs_faults_outage_lost_bytes_total",
    "dgs_faults_ack_retries_total",
    "dgs_faults_replans_total",
};

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

/// Crash-safe write: a sample artifact either exists complete or not at
/// all (rename within one directory is atomic on POSIX).
void write_file_atomic(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary);
    // dgslint: allow(R4) -- campaign I/O errors are runtime_error by contract
    if (!out) throw std::runtime_error("cannot write " + tmp);
    out << text;
    // dgslint: allow(R4) -- campaign I/O errors are runtime_error by contract
    if (!out) throw std::runtime_error("short write to " + tmp);
  }
  fs::rename(tmp, path);
}

std::string summary_path(const CampaignOptions& o, int i) {
  return sample_dir(o, i) + "/summary.json";
}

/// Done marker: a validating summary plus the configured sibling sinks.
bool sample_done(const CampaignOptions& o, int i) {
  std::string text;
  if (!read_file(summary_path(o, i), &text)) return false;
  if (core::validate_summary_json(text)) return false;
  const std::string dir = sample_dir(o, i);
  if (o.write_metrics && !fs::exists(dir + "/metrics.txt")) return false;
  if (o.write_events && !fs::exists(dir + "/events.jsonl")) return false;
  return true;
}

void run_pending_serial(const CampaignOptions& o,
                        const std::vector<int>& pending) {
  for (const int i : pending) run_sample(o, i);
}

/// Shards `pending` across `workers` forked processes, worker w taking
/// samples w, w+W, w+2W, ...  The shard rule only affects which process
/// computes a sample, never its content.
void run_pending_sharded(const CampaignOptions& o,
                         const std::vector<int>& pending, int workers) {
#ifndef __unix__
  (void)workers;
  run_pending_serial(o, pending);
#else
  std::fflush(stdout);
  std::fflush(stderr);
  std::vector<pid_t> pids;
  for (int w = 0; w < workers; ++w) {
    const pid_t pid = fork();
    // dgslint: allow(R4) -- worker spawn failure is runtime_error by contract
    if (pid < 0) throw std::runtime_error("fork() failed");
    if (pid == 0) {
      // Worker process: compute the shard, then bypass atexit handlers
      // (the parent owns all shared state).
      try {
        for (std::size_t k = static_cast<std::size_t>(w);
             k < pending.size();
             k += static_cast<std::size_t>(workers)) {
          run_sample(o, pending[k]);
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr, "campaign worker %d: %s\n", w, e.what());
        std::fflush(stderr);
        _exit(1);
      }
      _exit(0);
    }
    pids.push_back(pid);
  }
  int failures = 0;
  for (const pid_t pid : pids) {
    int status = 0;
    if (waitpid(pid, &status, 0) < 0 || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0) {
      ++failures;
    }
  }
  if (failures > 0) {
    // dgslint: allow(R4) -- worker exit status is an environment error
    throw std::runtime_error(
        std::to_string(failures) +
        " campaign worker(s) failed; rerun to resume from the manifest");
  }
#endif
}

struct MetricSeries {
  std::vector<double> values;
};

void add_metric(std::vector<std::pair<std::string, MetricSeries>>* series,
                std::string_view name, double v) {
  for (auto& [n, s] : *series) {
    if (n == name) {
      s.values.push_back(v);
      return;
    }
  }
}

MetricAggregate aggregate_of(std::vector<double> values) {
  MetricAggregate a;
  a.count = static_cast<std::int64_t>(values.size());
  if (values.empty()) return a;
  double sum = 0.0;
  for (const double v : values) sum += v;
  a.mean = sum / static_cast<double>(values.size());
  double sq = 0.0;
  for (const double v : values) sq += (v - a.mean) * (v - a.mean);
  a.sd = values.size() > 1
             ? std::sqrt(sq / static_cast<double>(values.size() - 1))
             : 0.0;
  a.ci95 = 1.96 * a.sd / std::sqrt(static_cast<double>(values.size()));
  std::sort(values.begin(), values.end());
  a.p50 = util::percentile(values, 50.0);
  a.p99 = util::percentile(values, 99.0);
  a.min = values.front();
  a.max = values.back();
  return a;
}

std::string render_aggregate(const CampaignOptions& o,
                             const CampaignResult& r) {
  std::ostringstream out;
  out << "{\n  \"schema_version\": " << core::kRunArtifactSchemaVersion
      << ",\n  \"artifact\": \"campaign_aggregate\",\n"
      << render_campaign_identity(o) << ",\n  \"metrics\": {\n";
  char buf[320];
  for (std::size_t i = 0; i < r.metrics.size(); ++i) {
    const auto& [name, a] = r.metrics[i];
    std::snprintf(buf, sizeof(buf),
                  "    \"%s\": {\"mean\": %.6f, \"sd\": %.6f, "
                  "\"ci95\": %.6f, \"p50\": %.6f, \"p99\": %.6f, "
                  "\"min\": %.6f, \"max\": %.6f, \"count\": %lld}",
                  name.c_str(), a.mean, a.sd, a.ci95, a.p50, a.p99, a.min,
                  a.max, static_cast<long long>(a.count));
    out << buf << (i + 1 < r.metrics.size() ? ",\n" : "\n");
  }
  out << "  }\n}\n";
  return out.str();
}

/// Reads every sample summary in index order (the determinism anchor:
/// neither worker count nor completion order can reorder this fold),
/// harvesting aggregate metric series and the obs snapshot fold.
void aggregate_samples(const CampaignOptions& o, CampaignResult* r,
                       obs::Registry* campaign_metrics) {
  std::vector<std::pair<std::string, MetricSeries>> series;
  for (const char* name : kAggregateMetrics) {
    series.emplace_back(name, MetricSeries{});
  }
  std::vector<double> folded(std::size(kFoldedSeries), 0.0);
  for (int i = 0; i < o.samples; ++i) {
    std::string text;
    if (!read_file(summary_path(o, i), &text)) {
      // dgslint: allow(R4) -- missing artifact on resume is runtime_error
      throw std::runtime_error("missing sample summary " +
                               summary_path(o, i));
    }
    core::RunSummary summary;
    if (const auto e = core::parse_summary_json(text, &summary)) {
      // dgslint: allow(R4) -- corrupt artifact on resume is runtime_error
      throw std::runtime_error(summary_path(o, i) + ": " + e->where +
                               ": " + e->message);
    }
    if (const core::JsonValue* lat = summary.stats("latency_minutes")) {
      add_metric(&series, "latency_mean_minutes", lat->find("mean")->number);
      add_metric(&series, "latency_p99_minutes", lat->find("p99")->number);
    }
    if (const core::JsonValue* bk = summary.stats("backlog_gb")) {
      add_metric(&series, "backlog_mean_gb", bk->find("mean")->number);
      add_metric(&series, "backlog_p99_gb", bk->find("p99")->number);
    }
    add_metric(&series, "outage_lost_tb", summary.scalar("outage_lost_tb"));
    add_metric(&series, "delivered_fraction",
               summary.scalar("delivered_fraction"));
    add_metric(&series, "total_delivered_tb",
               summary.scalar("total_delivered_tb"));
    add_metric(&series, "ack_retries", summary.scalar("ack_retries"));
    add_metric(&series, "replans", summary.scalar("replans"));

    if (o.write_metrics) {
      std::string metrics_text;
      if (read_file(sample_dir(o, i) + "/metrics.txt", &metrics_text)) {
        for (std::size_t f = 0; f < std::size(kFoldedSeries); ++f) {
          double v = 0.0;
          // Fault-free samples never register dgs_faults_* series;
          // absent folds as zero.
          if (obs::read_prometheus_sample(metrics_text, kFoldedSeries[f],
                                          &v)) {
            folded[f] += v;
          }
        }
      }
    }
  }
  for (auto& [name, s] : series) {
    if (s.values.empty()) continue;  // e.g. all-null latency sets
    r->metrics.emplace_back(name, aggregate_of(std::move(s.values)));
  }
  campaign_metrics
      ->counter("dgs_campaign_samples_total",
                "Samples with valid artifacts in this campaign")
      ->inc(static_cast<double>(r->samples));
  campaign_metrics
      ->counter("dgs_campaign_samples_reused_total",
                "Samples found done and skipped by the last invocation")
      ->inc(static_cast<double>(r->reused));
  campaign_metrics
      ->counter("dgs_campaign_samples_computed_total",
                "Samples computed by the last invocation")
      ->inc(static_cast<double>(r->computed));
  if (o.write_metrics) {
    for (std::size_t f = 0; f < std::size(kFoldedSeries); ++f) {
      // dgs_sim_x_total -> dgs_campaign_sim_x_total etc.
      const std::string name =
          "dgs_campaign_" + std::string(kFoldedSeries[f]).substr(4);
      campaign_metrics
          ->counter(name, std::string("Sum of ") + kFoldedSeries[f] +
                              " across sample runs")
          ->inc(folded[f]);
    }
  }
}

}  // namespace

std::optional<core::OptionsError> CampaignOptions::validate() const {
  const auto err = [](const char* field, std::string message) {
    return core::OptionsError{field, std::move(message)};
  };
  try {
    static_cast<void>(faults::make_profile(profile, 0, 1));
  } catch (const std::invalid_argument&) {
    return err("profile", "unknown fault profile \"" + profile +
                              "\" (known: " + faults::profile_names() + ")");
  }
  if (samples < 1) {
    return err("samples",
               "must be >= 1 (got " + std::to_string(samples) + ")");
  }
  if (workers < 0) {
    return err("workers",
               "must be >= 0 (got " + std::to_string(workers) + ")");
  }
  if (!(duration_hours > 0.0)) {
    return err("duration_hours", "must be > 0");
  }
  if (!(step_seconds > 0.0)) return err("step_seconds", "must be > 0");
  if (num_satellites < 1) return err("num_satellites", "must be >= 1");
  if (num_stations < 1) return err("num_stations", "must be >= 1");
  if (out_dir.empty()) return err("out_dir", "must be non-empty");
  return std::nullopt;
}

std::string sample_dir(const CampaignOptions& opts, int sample_index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/samples/sample_%04d", sample_index);
  return opts.out_dir + buf;
}

std::string manifest_path(const CampaignOptions& opts) {
  return opts.out_dir + "/manifest.json";
}

std::string aggregate_path(const CampaignOptions& opts) {
  return opts.out_dir + "/aggregate.json";
}

void run_sample(const CampaignOptions& o, int sample_index) {
  groundseg::NetworkOptions net;
  net.num_satellites = o.num_satellites;
  net.num_stations = o.num_stations;
  net.seed = o.network_seed;
  const util::Epoch start = campaign_epoch();
  const auto sats = groundseg::generate_constellation(net, start);
  const auto stations = groundseg::generate_dgs_stations(net);

  core::SimulationOptions opts;
  opts.start = start;
  opts.duration_hours = o.duration_hours;
  opts.step_seconds = o.step_seconds;
  const std::uint64_t sample_seed =
      faults::campaign_sample_seed(o.campaign_seed, sample_index);
  opts.faults = faults::make_profile(o.profile, sample_seed, o.num_stations);
  // The brownout channels need a modelled backhaul to degrade (same rule
  // as dgs_cli).
  if (opts.faults.has_backhaul_faults()) opts.station_backhaul_bps = 50e6;
  if (const auto e = opts.validate(o.num_stations)) {
    // dgslint: allow(R4) -- renders OptionsError; format is test-pinned
    throw std::runtime_error("SimulationOptions." + e->field + ": " +
                             e->message);
  }

  obs::Registry registry;
  if (o.write_metrics) opts.metrics = &registry;
  std::ostringstream events;
  obs::EventLog event_log(&events);
  if (o.write_events) opts.events = &event_log;

  weather::SyntheticWeatherProvider wx(o.weather_seed, start,
                                       o.duration_hours + 1.0);
  const core::SimulationResult result =
      core::Simulator(sats, stations, &wx, opts).run();

  const std::string dir = sample_dir(o, sample_index);
  fs::create_directories(dir);
  if (o.write_events) {
    write_file_atomic(dir + "/events.jsonl", events.str());
  }
  if (o.write_metrics) {
    std::ostringstream m;
    registry.write_prometheus(m);
    write_file_atomic(dir + "/metrics.txt", m.str());
  }
  // The summary is the done marker, so it lands last: a killed worker
  // leaves either no summary or a fully valid sample.
  std::ostringstream s;
  core::write_summary_json(s, result);
  write_file_atomic(dir + "/summary.json", s.str());
}

CampaignResult run_campaign(const CampaignOptions& o, std::ostream* log) {
  if (const auto e = o.validate()) {
    // dgslint: allow(R4) -- renders OptionsError; format is test-pinned
    throw std::runtime_error("CampaignOptions." + e->field + ": " +
                             e->message);
  }
  fs::create_directories(o.out_dir + "/samples");
  write_or_check_manifest(o);

  CampaignResult r;
  r.samples = o.samples;
  std::vector<int> pending;
  for (int i = 0; i < o.samples; ++i) {
    if (sample_done(o, i)) {
      ++r.reused;
    } else {
      pending.push_back(i);
    }
  }
  r.computed = static_cast<int>(pending.size());
  int workers = o.workers != 0 ? o.workers : util::hardware_concurrency();
  workers = std::clamp(workers, 1,
                       std::max(1, static_cast<int>(pending.size())));
  if (log != nullptr) {
    *log << "campaign " << o.profile << " seed " << o.campaign_seed << ": "
         << r.reused << " of " << o.samples
         << " samples already done, computing " << pending.size()
         << " across " << workers << " worker(s)\n";
  }
  if (!pending.empty()) {
    if (workers <= 1) {
      run_pending_serial(o, pending);
    } else {
      run_pending_sharded(o, pending, workers);
    }
  }

  obs::Registry campaign_metrics;
  aggregate_samples(o, &r, &campaign_metrics);
  write_file_atomic(aggregate_path(o), render_aggregate(o, r));
  std::ostringstream m;
  campaign_metrics.write_prometheus(m);
  write_file_atomic(o.out_dir + "/campaign_metrics.txt", m.str());
  if (log != nullptr) {
    *log << "wrote " << aggregate_path(o) << " (" << r.metrics.size()
         << " metrics over " << o.samples << " samples)\n";
  }
  return r;
}

std::optional<core::ArtifactError> validate_campaign_dir(
    const std::string& dir) {
  const auto fail = [](std::string where, std::string message) {
    return core::ArtifactError{std::move(where), std::move(message)};
  };
  std::string manifest_text;
  if (!read_file(dir + "/manifest.json", &manifest_text)) {
    return fail(dir + "/manifest.json", "missing");
  }
  if (auto e = core::validate_campaign_manifest_json(manifest_text)) {
    return fail(dir + "/manifest.json: " + e->where, e->message);
  }
  const auto manifest = core::parse_restricted_json(manifest_text);
  const int samples =
      static_cast<int>(manifest->find("samples")->number);

  for (int i = 0; i < samples; ++i) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "/samples/sample_%04d", i);
    const std::string sdir = dir + buf;
    std::string text;
    if (!read_file(sdir + "/summary.json", &text)) continue;  // not done
    if (auto e = core::validate_summary_json(text)) {
      return fail(sdir + "/summary.json: " + e->where, e->message);
    }
    if (read_file(sdir + "/events.jsonl", &text)) {
      if (auto e = core::validate_events_jsonl(text)) {
        return fail(sdir + "/events.jsonl: " + e->where, e->message);
      }
    }
  }

  std::string aggregate_text;
  if (!read_file(dir + "/aggregate.json", &aggregate_text)) {
    return fail(dir + "/aggregate.json", "missing");
  }
  if (auto e = core::validate_campaign_aggregate_json(aggregate_text)) {
    return fail(dir + "/aggregate.json: " + e->where, e->message);
  }
  // The aggregate must describe the same campaign as the manifest.
  const auto aggregate = core::parse_restricted_json(aggregate_text);
  for (const char* key :
       {"profile", "campaign_seed", "samples", "duration_hours",
        "step_seconds", "num_satellites", "num_stations", "network_seed",
        "weather_seed"}) {
    const core::JsonValue* a = manifest->find(key);
    const core::JsonValue* b = aggregate->find(key);
    const bool match =
        a->kind == b->kind &&
        (a->kind == core::JsonValue::Kind::kString ? a->text == b->text
                                                   : a->number == b->number);
    if (!match) {
      return fail(dir + "/aggregate.json: aggregate." + key,
                  "does not match the manifest");
    }
  }
  return std::nullopt;
}

}  // namespace dgs::campaign
