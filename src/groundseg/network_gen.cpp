#include "src/groundseg/network_gen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/orbit/kepler.h"
#include "src/util/angles.h"
#include "src/util/check.h"
#include "src/util/constants.h"
#include "src/util/rng.h"

namespace dgs::groundseg {
namespace {

using util::deg2rad;

/// A rectangular region with a sampling weight, approximating where
/// SatNOGS stations are deployed (the map in paper Fig. 2).
struct Region {
  const char* name;
  double lat_min, lat_max;   // degrees
  double lon_min, lon_max;   // degrees
  double weight;             // relative station share
};

// Weights sum to ~1; dominated by Europe and North America like the real
// SatNOGS network.
constexpr Region kRegions[] = {
    {"Western Europe", 36.0, 60.0, -10.0, 20.0, 0.36},
    {"Eastern Europe", 40.0, 60.0, 20.0, 40.0, 0.09},
    {"North America (US/CA)", 25.0, 55.0, -125.0, -65.0, 0.24},
    {"Japan/Korea", 31.0, 43.0, 127.0, 145.0, 0.06},
    {"Australia/NZ", -45.0, -12.0, 113.0, 178.0, 0.07},
    {"South America", -40.0, 5.0, -75.0, -40.0, 0.05},
    {"Southern Africa", -35.0, -20.0, 15.0, 32.0, 0.02},
    {"North Africa/Middle East", 25.0, 37.0, -8.0, 45.0, 0.03},
    {"South Asia", 6.0, 30.0, 68.0, 90.0, 0.03},
    {"Southeast Asia", -8.0, 20.0, 95.0, 125.0, 0.03},
    {"Scandinavia", 55.0, 69.0, 5.0, 30.0, 0.02},
};

const Region& sample_region(util::Rng& rng) {
  double total = 0.0;
  for (const Region& r : kRegions) total += r.weight;
  double u = rng.uniform(0.0, total);
  for (const Region& r : kRegions) {
    if (u < r.weight) return r;
    u -= r.weight;
  }
  return kRegions[0];
}

}  // namespace

std::vector<GroundStation> generate_dgs_stations(const NetworkOptions& opts) {
  // Candidate-pool mode (netdesign): an explicit pool size/seed overrides
  // the network-size-implied pair; everything downstream (region
  // sampling, TX spread, constraint bitmaps) is unchanged, so pool mode
  // with (pool_size, pool_seed) == (num_stations, seed) is byte-identical
  // to legacy mode (regression-pinned).
  const int num_stations =
      opts.pool_size > 0 ? opts.pool_size : opts.num_stations;
  const std::uint64_t seed = opts.pool_size > 0 ? opts.pool_seed : opts.seed;
  DGS_ENSURE_GE(num_stations, 1);
  DGS_ENSURE(opts.tx_fraction >= 0.0 && opts.tx_fraction <= 1.0,
             "tx_fraction=" << opts.tx_fraction << " outside [0, 1]");
  util::Rng rng(seed);
  std::vector<GroundStation> stations;
  stations.reserve(num_stations);

  for (int i = 0; i < num_stations; ++i) {
    const Region& region = sample_region(rng);
    GroundStation gs;
    gs.id = i;
    gs.name = std::string(region.name) + " #" + std::to_string(i);
    gs.location.latitude_rad =
        deg2rad(rng.uniform(region.lat_min, region.lat_max));
    gs.location.longitude_rad =
        deg2rad(rng.uniform(region.lon_min, region.lon_max));
    gs.location.altitude_km = std::max(0.0, rng.normal(0.3, 0.3));
    gs.receiver.dish_diameter_m = opts.dish_diameter_m;
    // Amateur sites have imperfect horizons: 5-15 deg masks.
    gs.min_elevation_rad = deg2rad(rng.uniform(5.0, 15.0));
    gs.refresh_ecef();
    stations.push_back(std::move(gs));
  }

  // TX-capable subset: spread across the network, not clustered — take every
  // k-th station in longitude order so plan-upload opportunities cover the
  // orbit.  At least one station must be TX-capable or the hybrid design
  // cannot bootstrap.
  const int num_tx = std::max(
      1, static_cast<int>(std::lround(opts.tx_fraction * num_stations)));
  std::vector<int> by_lon(stations.size());
  std::iota(by_lon.begin(), by_lon.end(), 0);
  std::sort(by_lon.begin(), by_lon.end(), [&](int a, int b) {
    return stations[a].location.longitude_rad <
           stations[b].location.longitude_rad;
  });
  for (int j = 0; j < num_tx; ++j) {
    const std::size_t pick = static_cast<std::size_t>(
        j * stations.size() / num_tx);
    stations[by_lon[pick]].tx_capable = true;
  }

  // Owner constraint bitmaps.
  if (opts.constraint_denial_fraction > 0.0) {
    for (GroundStation& gs : stations) {
      gs.constraints = DownlinkConstraints(opts.num_satellites);
      for (int s = 0; s < opts.num_satellites; ++s) {
        if (rng.chance(opts.constraint_denial_fraction)) gs.constraints.deny(s);
      }
    }
  }
  return stations;
}

std::vector<GroundStation> baseline_stations(const BaselineOptions& opts) {
  // The classic commercial polar downlink sites.
  struct Site {
    const char* name;
    double lat, lon, alt_km;
  };
  constexpr Site kSites[] = {
      {"Svalbard", 78.23, 15.39, 0.45},
      {"Fairbanks, Alaska", 64.86, -147.85, 0.18},
      {"Inuvik, Canada", 68.32, -133.55, 0.05},
      {"Troll, Antarctica", -72.01, 2.53, 1.30},
      {"Punta Arenas, Chile", -53.02, -70.87, 0.03},
  };
  std::vector<GroundStation> stations;
  int id = 1000;
  for (const Site& s : kSites) {
    GroundStation gs;
    gs.id = id++;
    gs.name = s.name;
    gs.location = {deg2rad(s.lat), deg2rad(s.lon), s.alt_km};
    gs.receiver.dish_diameter_m = opts.dish_diameter_m;
    gs.receiver.aperture_efficiency = 0.65;  // Professional feeds.
    gs.receiver.lna_noise_temp_k = 50.0;
    gs.tx_capable = true;
    gs.min_elevation_rad = deg2rad(5.0);
    gs.refresh_ecef();
    stations.push_back(std::move(gs));
  }
  return stations;
}

std::vector<SatelliteConfig> generate_constellation(const NetworkOptions& opts,
                                                    const util::Epoch& epoch) {
  DGS_ENSURE_GE(opts.num_satellites, 1);
  util::Rng rng(opts.seed + 0x5a7e111e);
  std::vector<SatelliteConfig> sats;
  sats.reserve(opts.num_satellites);

  // Spread across a dozen-ish planes, as real constellations are launched
  // batch-wise into shared planes.
  const int planes = std::max(1, opts.num_satellites / 20);

  for (int i = 0; i < opts.num_satellites; ++i) {
    const int plane = i % planes;
    orbit::Tle tle;
    tle.satnum = 90000 + i;
    tle.intl_designator = "20001A";
    tle.epoch = epoch;
    tle.name = "EO-SAT-" + std::to_string(i);

    const double alt_km = rng.uniform(475.0, 600.0);
    const double a = util::wgs72::kEarthRadiusKm + alt_km;
    const double n_rad_s = orbit::mean_motion_rad_s(a);
    tle.mean_motion_revs_per_day =
        n_rad_s * util::kSecondsPerDay / util::kTwoPi;
    // Inclination mix mirroring the real LEO population the SatNOGS
    // database tracks: sun-synchronous EO constellations, ISS-orbit cubesat
    // rideshares, high-inclination (82 deg) buses, and mid-inclination
    // launches.  The mix matters: polar ground stations barely ever see a
    // 51.6 deg satellite, which is a large part of why the paper's polar
    // baseline develops long latency tails.
    const double incl_pick = rng.uniform();
    if (incl_pick < 0.45) {
      tle.inclination_deg = 97.5 + rng.normal(0.0, 0.5);   // SSO
    } else if (incl_pick < 0.70) {
      tle.inclination_deg = 51.6 + rng.normal(0.0, 0.3);   // ISS rideshare
    } else if (incl_pick < 0.80) {
      tle.inclination_deg = 82.0 + rng.normal(0.0, 0.5);
    } else if (incl_pick < 0.90) {
      tle.inclination_deg = 66.0 + rng.normal(0.0, 1.0);
    } else {
      tle.inclination_deg = rng.uniform(45.0, 100.0);
    }
    tle.raan_deg = 360.0 * plane / planes + rng.normal(0.0, 1.5);
    if (tle.raan_deg < 0.0) tle.raan_deg += 360.0;
    tle.raan_deg = std::fmod(tle.raan_deg, 360.0);
    tle.eccentricity = rng.uniform(0.0002, 0.002);
    tle.arg_perigee_deg = rng.uniform(0.0, 360.0);
    // In-plane phasing: evenly spaced with jitter.
    tle.mean_anomaly_deg =
        std::fmod(360.0 * (i / planes) * planes / opts.num_satellites +
                      rng.uniform(0.0, 15.0),
                  360.0);
    tle.bstar = rng.uniform(1e-5, 8e-5);
    tle.ndot_over_2 = rng.uniform(1e-7, 3e-6);
    tle.element_set_number = 999;
    tle.rev_number = 1;

    SatelliteConfig sc;
    sc.id = i;
    sc.name = tle.name;
    sc.tle = tle;
    sc.radio = link::RadioSpec{};  // State-of-the-art EO radio ([10]).
    sats.push_back(std::move(sc));
  }
  return sats;
}

std::vector<GroundStation> subsample_stations(
    const std::vector<GroundStation>& all, double fraction) {
  DGS_ENSURE(fraction > 0.0 && fraction <= 1.0,
             "fraction=" << fraction << " outside (0, 1]");
  if (fraction == 1.0) return all;
  const std::size_t want =
      std::max<std::size_t>(
          1, static_cast<std::size_t>(std::lround(
                 static_cast<double>(all.size()) * fraction)));
  std::vector<std::size_t> by_lat(all.size());
  std::iota(by_lat.begin(), by_lat.end(), 0);
  std::sort(by_lat.begin(), by_lat.end(), [&](std::size_t a, std::size_t b) {
    return all[a].location.latitude_rad < all[b].location.latitude_rad;
  });

  std::vector<GroundStation> out;
  out.reserve(want);
  for (std::size_t j = 0; j < want; ++j) {
    out.push_back(all[by_lat[j * all.size() / want]]);
  }
  // The hybrid design needs at least one uplink path.
  const bool has_tx =
      std::any_of(out.begin(), out.end(),
                  [](const GroundStation& g) { return g.tx_capable; });
  if (!has_tx) {
    for (const GroundStation& g : all) {
      if (g.tx_capable) {
        out.front() = g;
        break;
      }
    }
  }
  return out;
}

}  // namespace dgs::groundseg
