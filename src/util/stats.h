// Order statistics and CDF helpers used by the evaluation harness.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace dgs::util {

/// Linear-interpolated percentile of a sample set; `pct` in [0, 100].
/// Throws std::invalid_argument on an empty sample.
double percentile(std::span<const double> sorted_samples, double pct);

/// Accumulates scalar samples and answers percentile / CDF queries.
/// Sorting is deferred and cached; adding samples invalidates the cache.
class SampleSet {
 public:
  void add(double v);
  void add_all(std::span<const double> vs);

  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double min() const;
  double max() const;
  double mean() const;
  /// Percentile in [0, 100] with linear interpolation.
  double percentile(double pct) const;
  double median() const { return percentile(50.0); }

  /// Empirical CDF evaluated at x: fraction of samples <= x.
  double cdf(double x) const;

  /// Evenly spaced (x, F(x)) pairs suitable for plotting, `points` >= 2.
  std::vector<std::pair<double, double>> cdf_curve(int points = 100) const;

  /// Sorted view of the samples.
  const std::vector<double>& sorted() const;

  /// The samples in their current (insertion, unless sorted() has been
  /// queried) order, with no sort side effect — checkpoint serialization.
  /// mean() sums in this order, so restoring it exactly keeps every later
  /// query bit-identical to an uninterrupted accumulation.
  const std::vector<double>& raw() const { return samples_; }
  bool sort_cached() const { return sorted_; }
  /// Replaces the contents with a previously captured (raw, sort_cached)
  /// pair, bit-exact.
  void restore(std::vector<double> samples, bool sort_cached) {
    samples_ = std::move(samples);
    sorted_ = sort_cached;
  }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Renders "median (p90, p99)" with the given unit suffix — the format the
/// paper uses to report backlog and latency.
std::string summary_row(const SampleSet& s, const std::string& unit);

}  // namespace dgs::util
