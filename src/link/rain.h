// Rain attenuation (ITU-R P.838 / P.839 / simplified P.618 slant path).
//
// The paper (§3.2) predicts link quality ahead of time from weather
// forecasts using "well-studied models developed by the International
// Telecommunication Union".  We implement:
//   * P.838-3: specific attenuation gamma_R = k * R^alpha [dB/km], with the
//     frequency-dependent k/alpha regression coefficients for horizontal and
//     vertical polarization (valid 1-1000 GHz).
//   * P.839: rain height above mean sea level.  The recommendation's digital
//     maps are replaced by its latitude-band climatological approximation
//     (documented substitution; see DESIGN.md).
//   * P.618 (reduced form): effective slant path through rain with a
//     horizontal path reduction factor.
#pragma once

namespace dgs::link {

enum class Polarization { kHorizontal, kVertical, kCircular };

/// P.838-3 power-law coefficients at `freq_ghz` (1..1000 GHz).
/// Circular polarization returns the H/V average (the standard combination
/// for tau = 45deg at low elevation approximations).
struct RainCoefficients {
  double k = 0.0;
  double alpha = 0.0;
};
RainCoefficients rain_coefficients(double freq_ghz, Polarization pol);

/// Specific rain attenuation [dB/km] for rain rate `rain_mm_h` (>= 0).
double rain_specific_attenuation_db_km(double freq_ghz, double rain_mm_h,
                                       Polarization pol);

/// P.839 rain height [km above mean sea level] as a function of geodetic
/// latitude (radians).  Latitude-band climatology.
double rain_height_km(double latitude_rad);

/// Effective slant-path rain attenuation [dB] for a ground station at
/// `station_alt_km` (AMSL), elevation angle `elevation_rad` (> 0), rain rate
/// `rain_mm_h`, frequency `freq_ghz`.
///
/// Path length below the rain height is divided by sin(el) (spherical-Earth
/// correction applied below 5 deg) and scaled by the classic horizontal
/// reduction factor r = 1 / (1 + L_G / L_0), L_0 = 35 * exp(-0.015 * R).
double rain_attenuation_db(double freq_ghz, double rain_mm_h,
                           double elevation_rad, double latitude_rad,
                           double station_alt_km,
                           Polarization pol = Polarization::kCircular);

}  // namespace dgs::link
