#!/usr/bin/env python3
"""Tests for tools/dgslint/dgslint.py (run under ctest as dgslint_fixtures).

Three layers:
  - fixture-corpus runs over tests/dgslint_fixtures/ pin every rule's
    positive, suppressed, and baselined behaviour;
  - mutation rehearsals copy a real source file into a temp root, inject
    a violation (rand() into fault_plan.cpp, an unordered_map loop into
    run_artifact.cpp), and require dgslint to fail — proof the linter
    would catch a real regression, not just the fixtures;
  - CLI-contract tests pin exit codes, --verify-baseline, and the
    GitHub-annotation output format.

Dependency-free: stdlib unittest + subprocess only.
"""

import json
import os
import shutil
import subprocess
import sys
import tempfile
import unittest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DGSLINT = os.path.join(REPO_ROOT, "tools", "dgslint", "dgslint.py")
FIXTURES = os.path.join(REPO_ROOT, "tests", "dgslint_fixtures")


def run_dgslint(*args):
    proc = subprocess.run(
        [sys.executable, DGSLINT] + list(args),
        capture_output=True, text=True, cwd=REPO_ROOT)
    return proc.returncode, proc.stdout, proc.stderr


def scan_fixtures_json():
    code, out, err = run_dgslint(
        "--root", FIXTURES,
        "--baseline", os.path.join(FIXTURES, "baseline.json"),
        "--format", "json")
    doc = json.loads(out)
    return code, doc


class FixtureCorpusTest(unittest.TestCase):
    """Every rule: positives fire, suppressions hold, baseline absorbs."""

    @classmethod
    def setUpClass(cls):
        cls.code, cls.doc = scan_fixtures_json()
        cls.findings = cls.doc["findings"]

    def by_rule(self, rule, path=None):
        return [f for f in self.findings
                if f["rule"] == rule and (path is None or f["path"] == path)]

    def test_exit_code_reflects_active_findings(self):
        self.assertEqual(self.code, 1)
        self.assertGreater(self.doc["counts"]["active"], 0)

    def test_r1_positives_and_suppressions(self):
        found = self.by_rule("R1", "src/util/r1_cases.cpp")
        self.assertEqual(len(found), 3)
        # The suppressed steady_clock and rand() must not appear, and
        # 'rand' inside identifiers/strings/comments must not fire.
        messages = " ".join(f["message"] for f in found)
        self.assertNotIn("steady_clock", messages)

    def test_r2_output_path_iteration(self):
        found = self.by_rule("R2", "src/obs/r2_cases.cpp")
        # range-for (1) + .begin()/.end() pair (2); the suppressed
        # range-for and the point lookup stay silent.
        self.assertEqual(len(found), 3)

    def test_r3_threading_primitives(self):
        found = self.by_rule("R3", "src/util/r3_cases.cpp")
        self.assertEqual(len(found), 3)

    def test_r4_baseline_absorbs_exactly_one(self):
        found = self.by_rule("R4", "src/core/r4_cases.cpp")
        self.assertEqual(len(found), 3)
        self.assertEqual(sum(1 for f in found if f["baselined"]), 1)

    def test_r5_metric_names_and_summary_keys(self):
        found = self.by_rule("R5")
        names = " ".join(f["message"] for f in found)
        self.assertEqual(len(found), 3)
        self.assertIn("bad_counter_total", names)
        self.assertIn("dgs_Bad_Gauge", names)
        self.assertIn("unknown_key", names)
        self.assertNotIn("suppressed_key", names)
        self.assertNotIn("delivered_fraction", names)

    def test_r6_header_guard(self):
        self.assertEqual(
            len(self.by_rule("R6", "src/util/r6_missing_guard.h")), 1)
        self.assertEqual(
            len(self.by_rule("R6", "src/util/r6_guarded.h")), 0)

    def test_sup_malformed_suppressions_are_unsuppressable(self):
        sup = self.by_rule("SUP", "src/util/sup_cases.cpp")
        self.assertEqual(len(sup), 3)
        # A malformed suppression also fails to silence its target rule.
        self.assertEqual(len(self.by_rule("R1", "src/util/sup_cases.cpp")),
                         3)


class MutationRehearsalTest(unittest.TestCase):
    """Injected regressions in copies of real sources must fail dgslint."""

    def _scan_mutated(self, rel_src, mutate):
        tmp = tempfile.mkdtemp(prefix="dgslint_mut_")
        self.addCleanup(shutil.rmtree, tmp)
        dst = os.path.join(tmp, rel_src)
        os.makedirs(os.path.dirname(dst))
        shutil.copy(os.path.join(REPO_ROOT, rel_src), dst)
        with open(dst, encoding="utf-8") as fh:
            text = fh.read()
        with open(dst, "w", encoding="utf-8") as fh:
            fh.write(mutate(text))
        empty = os.path.join(tmp, "empty_baseline.json")
        with open(empty, "w", encoding="utf-8") as fh:
            fh.write('{"entries": []}')
        code, out, _ = run_dgslint("--root", tmp, "--baseline", empty,
                                   "--format", "json")
        return code, json.loads(out)["findings"]

    def test_unmutated_copies_are_clean(self):
        for rel in ("src/faults/fault_plan.cpp", "src/core/run_artifact.cpp"):
            code, findings = self._scan_mutated(rel, lambda t: t)
            self.assertEqual(code, 0, findings)

    def test_rand_in_fault_plan_fails(self):
        code, findings = self._scan_mutated(
            "src/faults/fault_plan.cpp",
            lambda t: t + "\nint injected() { return rand(); }\n")
        self.assertEqual(code, 1)
        self.assertTrue(any(f["rule"] == "R1" for f in findings), findings)

    def test_unordered_iteration_in_run_artifact_fails(self):
        injected = (
            "\n#include <unordered_map>\n"
            "static std::unordered_map<int, int> injected_map;\n"
            "int injected() {\n"
            "  int s = 0;\n"
            "  for (const auto& [k, v] : injected_map) s += v;\n"
            "  return s;\n"
            "}\n")
        code, findings = self._scan_mutated(
            "src/core/run_artifact.cpp", lambda t: t + injected)
        self.assertEqual(code, 1)
        self.assertTrue(any(f["rule"] == "R2" for f in findings), findings)

    def test_bad_metric_name_in_session_fails(self):
        code, findings = self._scan_mutated(
            "src/core/session.cpp",
            lambda t: t.replace("dgs_sim_assignments_total",
                                "sim_assignments_total", 1))
        self.assertEqual(code, 1)
        self.assertTrue(any(f["rule"] == "R5" for f in findings), findings)


class CliContractTest(unittest.TestCase):
    def test_real_tree_is_clean(self):
        code, out, err = run_dgslint()
        self.assertEqual(code, 0, out + err)

    def test_github_format_emits_error_annotations(self):
        code, out, _ = run_dgslint(
            "--root", FIXTURES,
            "--baseline", os.path.join(FIXTURES, "baseline.json"),
            "--format", "github")
        self.assertEqual(code, 1)
        self.assertIn("::error file=src/util/r1_cases.cpp,line=", out)
        # Baselined findings must not produce annotations.
        self.assertNotIn("::error file=src/core/r4_cases.cpp,line=5", out)

    def test_verify_baseline_rejects_stale_entries(self):
        tmp = tempfile.mkdtemp(prefix="dgslint_base_")
        self.addCleanup(shutil.rmtree, tmp)
        stale = os.path.join(tmp, "baseline.json")
        with open(stale, "w", encoding="utf-8") as fh:
            json.dump({"entries": [
                {"rule": "R1", "path": "src/nonexistent.cpp", "count": 1}
            ]}, fh)
        code, out, _ = run_dgslint("--verify-baseline", "--baseline", stale)
        self.assertEqual(code, 1)
        self.assertIn("stale baseline entry", out)

    def test_verify_baseline_accepts_live_entries(self):
        code, _, _ = run_dgslint(
            "--verify-baseline",
            "--baseline", os.path.join(FIXTURES, "baseline.json"),
            "--root", FIXTURES)
        self.assertEqual(code, 0)

    def test_list_rules(self):
        code, out, _ = run_dgslint("--list-rules")
        self.assertEqual(code, 0)
        for rule in ("R1", "R2", "R3", "R4", "R5", "R6", "SUP"):
            self.assertIn(rule, out)


if __name__ == "__main__":
    unittest.main()
