// Cloud and fog attenuation (ITU-R P.840).
//
// P.840 models clouds as suspended liquid water droplets in the Rayleigh
// regime.  The specific attenuation coefficient K_l [(dB/km)/(g/m^3)] comes
// from the double-Debye dielectric model of water; the slant attenuation is
// A = L * K_l / sin(elevation), with L the columnar liquid water content
// [kg/m^2] along the zenith.
#pragma once

namespace dgs::link {

/// Complex relative permittivity of liquid water at `freq_ghz` and
/// temperature `temp_k` (double-Debye model, P.840 §2).
struct WaterPermittivity {
  double real = 0.0;
  double imag = 0.0;
};
WaterPermittivity water_permittivity(double freq_ghz, double temp_k);

/// Cloud liquid water specific attenuation coefficient K_l
/// [(dB/km)/(g/m^3)] at `freq_ghz` (valid to 200 GHz) and temperature
/// `temp_k` (typically 273.15 K for cloud prediction).
double cloud_specific_attenuation_coeff(double freq_ghz,
                                        double temp_k = 273.15);

/// Slant-path cloud attenuation [dB] for columnar liquid water content
/// `liquid_water_kg_m2` (zenith-integrated) at elevation `elevation_rad`
/// (must be > 0; P.840 validity is elevation >= ~5 deg, shallower paths are
/// clamped to the 5 deg cosecant).
double cloud_attenuation_db(double freq_ghz, double liquid_water_kg_m2,
                            double elevation_rad, double temp_k = 273.15);

}  // namespace dgs::link
