#include "src/util/thread_pool.h"

#include <algorithm>

#include "src/util/check.h"

namespace dgs::util {

namespace {
// Set while a thread is executing inside a fork-join region: for the
// lifetime of every worker thread, and on the calling thread while it runs
// its share of chunks.  A parallel_for issued from such a thread (nested
// submit) must run inline — a worker blocking on a job that needs that
// same worker, or a caller re-locking the region mutex it already holds,
// would deadlock.
thread_local bool tls_in_parallel_region = false;
}  // namespace

ThreadPool::ThreadPool(const ParallelConfig& config) {
  DGS_ENSURE_GE(config.num_threads, 0);
  DGS_ENSURE_GT(config.chunk_size, 0);
  chunk_ = config.chunk_size;
  int lanes = config.num_threads;
  if (lanes == 0) {
    lanes = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(static_cast<std::size_t>(lanes - 1));
  for (int i = 0; i < lanes - 1; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(wake_mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::run_serial(std::int64_t n, const RangeBody& body) {
  // Same chunk-aligned invocations as the parallel path, so per-chunk
  // consumers (reduce_ordered) see identical ranges at any thread count.
  for (std::int64_t begin = 0; begin < n; begin += chunk_) {
    body(begin, std::min<std::int64_t>(n, begin + chunk_));
  }
}

void ThreadPool::run_chunks(const RangeBody& body, std::int64_t n) {
  for (;;) {
    const std::int64_t c = next_chunk_.fetch_add(1, std::memory_order_relaxed);
    const std::int64_t begin = c * chunk_;
    if (begin >= n) return;
    if (failed_.load(std::memory_order_acquire)) return;
    try {
      body(begin, std::min<std::int64_t>(n, begin + chunk_));
    } catch (...) {
      std::lock_guard<std::mutex> lk(error_mutex_);
      if (error_ == nullptr) error_ = std::current_exception();
      failed_.store(true, std::memory_order_release);
    }
  }
}

void ThreadPool::parallel_for(std::int64_t n, const RangeBody& body) {
  if (n <= 0) return;
  if (workers_.empty() || tls_in_parallel_region || n <= chunk_) {
    run_serial(n, body);
    return;
  }

  std::lock_guard<std::mutex> region(job_mutex_);
  {
    std::lock_guard<std::mutex> lk(wake_mutex_);
    body_ = &body;
    n_ = n;
    next_chunk_.store(0, std::memory_order_relaxed);
    failed_.store(false, std::memory_order_relaxed);
    remaining_ = static_cast<int>(workers_.size());
    ++job_seq_;
  }
  wake_cv_.notify_all();

  // The calling thread is a lane too; mark it so any nested submit from
  // the body runs inline instead of re-entering the region.
  tls_in_parallel_region = true;
  run_chunks(body, n);
  tls_in_parallel_region = false;

  std::unique_lock<std::mutex> lk(wake_mutex_);
  done_cv_.wait(lk, [this] { return remaining_ == 0; });
  body_ = nullptr;
  if (failed_.load(std::memory_order_acquire)) {
    std::exception_ptr err;
    {
      std::lock_guard<std::mutex> elk(error_mutex_);
      err = error_;
      error_ = nullptr;
    }
    lk.unlock();
    if (err != nullptr) std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop() {
  tls_in_parallel_region = true;
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lk(wake_mutex_);
  for (;;) {
    wake_cv_.wait(lk, [&] { return stop_ || job_seq_ != seen; });
    if (stop_) return;
    seen = job_seq_;
    const RangeBody* body = body_;
    const std::int64_t n = n_;
    lk.unlock();
    run_chunks(*body, n);
    lk.lock();
    if (--remaining_ == 0) done_cv_.notify_one();
  }
}

}  // namespace dgs::util
