#include "src/faults/fault_plan.h"

#include <algorithm>
#include <cmath>

#include "src/faults/fault_rng.h"
#include "src/util/check.h"

namespace dgs::faults {

std::int64_t step_at_or_after(double hours, double step_seconds) {
  DGS_ENSURE_GT(step_seconds, 0.0);
  const double x = hours * 3600.0 / step_seconds;
  const double nearest = std::round(x);
  // An interval endpoint that *means* a step boundary may miss it by float
  // dust after the hours -> steps conversion; snap within a relative ulp
  // band so [start, end) semantics survive the unit round-trip.
  if (std::abs(x - nearest) <= 1e-9 * std::max(1.0, std::abs(x))) {
    return static_cast<std::int64_t>(nearest);
  }
  return static_cast<std::int64_t>(std::ceil(x));
}

namespace {

using StepInterval = FaultTimeline::StepInterval;

/// Sorts, clips to [0, num_steps), drops empties, and merges overlaps so
/// each station's down intervals are disjoint and ordered.
std::vector<StepInterval> normalize(std::vector<StepInterval> v,
                                    std::int64_t num_steps) {
  std::vector<StepInterval> clipped;
  clipped.reserve(v.size());
  for (StepInterval& i : v) {
    i.begin = std::max<std::int64_t>(i.begin, 0);
    i.end = std::min(i.end, num_steps);
    if (i.begin < i.end) clipped.push_back(i);
  }
  std::sort(clipped.begin(), clipped.end(),
            [](const StepInterval& a, const StepInterval& b) {
              return a.begin < b.begin;
            });
  std::vector<StepInterval> merged;
  for (const StepInterval& i : clipped) {
    if (!merged.empty() && i.begin <= merged.back().end) {
      merged.back().end = std::max(merged.back().end, i.end);
    } else {
      merged.push_back(i);
    }
  }
  return merged;
}

bool intervals_cover(const std::vector<StepInterval>& v, std::int64_t step) {
  const auto it = std::upper_bound(
      v.begin(), v.end(), step,
      [](std::int64_t s, const StepInterval& i) { return s < i.begin; });
  return it != v.begin() && step < std::prev(it)->end;
}

}  // namespace

FaultTimeline::FaultTimeline(const FaultPlan& plan, int num_stations,
                             std::int64_t num_steps, double step_seconds)
    : plan_(plan), num_stations_(num_stations), num_steps_(num_steps) {
  DGS_ENSURE_GT(num_stations, 0);
  DGS_ENSURE_GE(num_steps, 0);
  DGS_ENSURE_GT(step_seconds, 0.0);

  std::vector<std::vector<StepInterval>> raw(
      static_cast<std::size_t>(num_stations));

  // Scheduled outages: [start, end) in hours -> half-open step intervals.
  for (const OutageWindow& o : plan.outages) {
    DGS_ENSURE(o.station_index >= 0 && o.station_index < num_stations,
               "outage station=" << o.station_index);
    raw[static_cast<std::size_t>(o.station_index)].push_back(StepInterval{
        step_at_or_after(o.start_hours, step_seconds),
        step_at_or_after(o.end_hours, step_seconds)});
  }

  // Stochastic churn: each participating station alternates exponential
  // up/down dwells from its own forked PCG32 stream, pre-expanded here on
  // the driver thread so later queries are pure lookups.
  if (plan.churn.mtbf_hours > 0.0 && num_steps > 0) {
    const double horizon_h =
        static_cast<double>(num_steps) * step_seconds / 3600.0;
    for (int g = 0; g < num_stations; ++g) {
      Pcg32 rng(mix_key(mix_key(plan.seed, kStreamChurn),
                        static_cast<std::uint64_t>(g)));
      if (plan.churn.station_fraction < 1.0 &&
          rng.uniform() >= plan.churn.station_fraction) {
        continue;
      }
      double t = 0.0;
      while (t < horizon_h) {
        t += rng.exponential(plan.churn.mtbf_hours);  // up dwell
        if (t >= horizon_h) break;
        const double down_until =
            t + rng.exponential(plan.churn.mttr_hours);
        raw[static_cast<std::size_t>(g)].push_back(
            StepInterval{step_at_or_after(t, step_seconds),
                         step_at_or_after(down_until, step_seconds)});
        t = down_until;
      }
    }
  }

  down_.resize(static_cast<std::size_t>(num_stations));
  for (int g = 0; g < num_stations; ++g) {
    down_[static_cast<std::size_t>(g)] = normalize(
        std::move(raw[static_cast<std::size_t>(g)]), num_steps);
    if (!down_[static_cast<std::size_t>(g)].empty()) {
      has_station_faults_ = true;
    }
  }

  if (!plan.backhaul.empty()) {
    backhaul_.resize(static_cast<std::size_t>(num_stations));
    for (const BackhaulFault& f : plan.backhaul) {
      DGS_ENSURE(f.station_index >= 0 && f.station_index < num_stations,
                 "backhaul fault station=" << f.station_index);
      BackhaulInterval bi;
      bi.begin = step_at_or_after(f.start_hours, step_seconds);
      bi.end = step_at_or_after(f.end_hours, step_seconds);
      bi.multiplier = f.rate_multiplier;
      if (bi.begin < bi.end) {
        backhaul_[static_cast<std::size_t>(f.station_index)].push_back(bi);
      }
    }
  }
}

bool FaultTimeline::station_down(int station, std::int64_t step) const {
  DGS_DCHECK(station >= 0 && station < num_stations_,
             "station=" << station);
  return intervals_cover(down_[static_cast<std::size_t>(station)], step);
}

void FaultTimeline::fill_station_down(std::int64_t step,
                                      std::vector<char>* out) const {
  out->assign(static_cast<std::size_t>(num_stations_), 0);
  for (int g = 0; g < num_stations_; ++g) {
    if (intervals_cover(down_[static_cast<std::size_t>(g)], step)) {
      (*out)[static_cast<std::size_t>(g)] = 1;
    }
  }
}

double FaultTimeline::backhaul_multiplier(int station,
                                          std::int64_t step) const {
  if (backhaul_.empty()) return 1.0;
  DGS_DCHECK(station >= 0 && station < num_stations_,
             "station=" << station);
  double mult = 1.0;
  for (const BackhaulInterval& i :
       backhaul_[static_cast<std::size_t>(station)]) {
    if (step >= i.begin && step < i.end) mult = std::min(mult, i.multiplier);
  }
  return mult;
}

AckRelayOutcome FaultTimeline::ack_relay_outcome(std::int64_t step, int sat,
                                                 int station) const {
  AckRelayOutcome out;
  const AckRelayFaults& f = plan_.ack_relay;
  if (f.loss_probability <= 0.0) return out;
  double backoff = f.initial_backoff_s;
  while (out.retries < f.max_attempts) {
    const double u = keyed_uniform(
        plan_.seed, kStreamAckRelay, static_cast<std::uint64_t>(step),
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(sat))
         << 32) |
            static_cast<std::uint32_t>(station),
        static_cast<std::uint64_t>(out.retries));
    if (u >= f.loss_probability) break;  // this attempt got through
    out.delay_s += std::min(backoff, f.max_backoff_s);
    backoff *= f.backoff_multiplier;
    out.retries += 1;
  }
  return out;
}

bool FaultTimeline::plan_upload_fails(std::int64_t step, int sat,
                                      int station) const {
  const double p = plan_.plan_upload.failure_probability;
  if (p <= 0.0) return false;
  const double u = keyed_uniform(
      plan_.seed, kStreamPlanUpload, static_cast<std::uint64_t>(step),
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(sat)) << 32) |
          static_cast<std::uint32_t>(station),
      0);
  return u < p;
}

}  // namespace dgs::faults
