# Empty dependencies file for abl_lookahead.
# This may be replaced when dependencies are built.
