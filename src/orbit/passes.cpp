#include "src/orbit/passes.h"

#include <cmath>

#include "src/util/check.h"

namespace dgs::orbit {

double elevation_at(const Sgp4& sat, const Geodetic& site,
                    const util::Epoch& when) {
  const TemeState st = sat.propagate_to(when);
  util::Vec3 r_ecef, v_ecef;
  teme_to_ecef(st.position_km, st.velocity_km_s, when, r_ecef, v_ecef);
  return look_angles(site, r_ecef, v_ecef).elevation_rad;
}

namespace {

/// Bisects the elevation-mask crossing in (lo, hi]; `lo` must be on the
/// `below` side and `hi` on the other side.
util::Epoch bisect_crossing(const Sgp4& sat, const Geodetic& site, double mask,
                            util::Epoch lo, util::Epoch hi, double tol_s) {
  while (hi.seconds_since(lo) > tol_s) {
    const util::Epoch mid = lo.plus_seconds(hi.seconds_since(lo) / 2.0);
    if (elevation_at(sat, site, mid) >= mask) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

/// Golden-section search for the elevation maximum inside [lo, hi].
util::Epoch find_peak(const Sgp4& sat, const Geodetic& site, util::Epoch lo,
                      util::Epoch hi, double tol_s) {
  constexpr double kInvPhi = 0.6180339887498949;
  double span = hi.seconds_since(lo);
  double a = 0.0, b = span;
  double c = b - kInvPhi * (b - a);
  double d = a + kInvPhi * (b - a);
  double fc = elevation_at(sat, site, lo.plus_seconds(c));
  double fd = elevation_at(sat, site, lo.plus_seconds(d));
  while (b - a > tol_s) {
    if (fc > fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - kInvPhi * (b - a);
      fc = elevation_at(sat, site, lo.plus_seconds(c));
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + kInvPhi * (b - a);
      fd = elevation_at(sat, site, lo.plus_seconds(d));
    }
  }
  return lo.plus_seconds((a + b) / 2.0);
}

}  // namespace

std::vector<Pass> predict_passes(const Sgp4& sat, const Geodetic& site,
                                 const util::Epoch& start,
                                 const util::Epoch& end,
                                 const PassPredictorOptions& opts) {
  DGS_ENSURE(!(end < start), "end precedes start by "
                                 << start.seconds_since(end) << " s");
  DGS_ENSURE_GT(opts.coarse_step_seconds, 0.0);
  std::vector<Pass> passes;
  const double mask = opts.min_elevation_rad;
  const double tol = opts.refine_tolerance_seconds;

  util::Epoch t = start;
  bool above = elevation_at(sat, site, t) >= mask;
  util::Epoch rise = start;  // valid only while `above`
  bool have_open_pass = above;

  while (t < end) {
    util::Epoch next = t.plus_seconds(opts.coarse_step_seconds);
    if (end < next) next = end;
    const bool above_next = elevation_at(sat, site, next) >= mask;

    if (!above && above_next) {
      rise = bisect_crossing(sat, site, mask, t, next, tol);
      have_open_pass = true;
    } else if (above && !above_next) {
      // For the set crossing the "below" side is `next`.
      util::Epoch lo = next, hi = t;
      while (lo.seconds_since(hi) > tol) {
        const util::Epoch mid = hi.plus_seconds(lo.seconds_since(hi) / 2.0);
        if (elevation_at(sat, site, mid) >= mask) {
          hi = mid;
        } else {
          lo = mid;
        }
      }
      Pass p;
      p.aos = rise;
      p.los = hi;
      p.tca = find_peak(sat, site, p.aos, p.los, tol);
      p.max_elevation_rad = elevation_at(sat, site, p.tca);
      passes.push_back(p);
      have_open_pass = false;
    }
    above = above_next;
    t = next;
  }

  if (have_open_pass && above) {
    Pass p;
    p.aos = rise;
    p.los = end;
    p.tca = find_peak(sat, site, p.aos, p.los, tol);
    p.max_elevation_rad = elevation_at(sat, site, p.tca);
    passes.push_back(p);
  }
  return passes;
}

}  // namespace dgs::orbit
