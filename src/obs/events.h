// Structured event log: one JSON object per line (JSONL), recording the
// per-contact lifecycle of a simulation run — contact open/close, MODCOD
// selection, bytes moved, ack relays, plan uploads, station outages, and
// geometry-cache behaviour.  The schema (stable keys, one example line per
// event type) is documented in DESIGN.md §10.
//
// Timestamps: every event carries the *end-of-step* simulation time of the
// step it happened in, computed by the same StepClock the timeseries
// exporter uses, so the JSONL and the timeseries CSV join exactly on
// (step, t_hours) with no off-by-one-step drift.  Events are emitted only
// from the simulation driver thread, which makes the log deterministic for
// any thread count (DESIGN.md §9).
//
// Byte quantities are printed round-trip exactly (%.17g): the log is a
// ledger, and tests/test_obs_reconcile.cpp balances it against the Report
// aggregates to the last bit.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string_view>

#include "src/util/time.h"

namespace dgs::obs {

/// The single source of step timestamps, shared by SimulationResult
/// timeseries collection and the event log.  Step k covers the sim-time
/// interval [k*dt, (k+1)*dt); its record/event timestamp is the interval
/// end, in hours since the simulation start.
class StepClock {
 public:
  StepClock(const util::Epoch& start, double step_seconds)
      : start_(start), step_seconds_(step_seconds) {}

  double end_hours(std::int64_t step) const {
    return static_cast<double>(step + 1) * step_seconds_ / 3600.0;
  }
  util::Epoch step_start(std::int64_t step) const {
    return start_.plus_seconds(static_cast<double>(step) * step_seconds_);
  }
  double step_seconds() const { return step_seconds_; }

 private:
  util::Epoch start_;
  double step_seconds_;
};

/// JSONL writer.  Construct with a sink (borrowed; must outlive the log) or
/// nullptr for a disabled log whose emitters cost one branch.  Not
/// thread-safe: emit only from the simulation driver thread.
class EventLog {
 public:
  explicit EventLog(std::ostream* out = nullptr) : out_(out) {}

  bool enabled() const { return out_ != nullptr; }

  /// Stamps every subsequent event with (step, t_hours); the simulator
  /// calls this once at the top of each step with StepClock::end_hours.
  void begin_step(std::int64_t step, double t_hours) {
    step_ = step;
    t_hours_ = t_hours;
  }

  // --- Event emitters (no-ops when disabled) -------------------------------

  /// A (sat, station) pair entered the assigned set.
  void contact_open(int sat, int station, std::string_view modcod,
                    double rate_bps, double elevation_deg);
  /// The pair left the assigned set after `held_steps` consecutive steps.
  void contact_close(int sat, int station, int held_steps);
  /// The scheduled MODCOD for an open contact changed mid-pass.
  void modcod_selected(int sat, int station, std::string_view modcod,
                       double rate_bps);
  /// One executed assignment: `bytes` left the satellite queue; `received`
  /// says whether the ground captured them (false = mis-predicted MODCOD).
  void bytes_moved(int sat, int station, double bytes, bool received);
  /// Collated report at a transmit-capable contact.
  void ack_relayed(int sat, int station, double acked_bytes,
                   double requeued_bytes, int batches);
  /// Fresh plan uploaded; `lead_s` is the staleness it replaced.
  void plan_uploaded(int sat, int station, double lead_s);
  void outage_begin(int station);
  void outage_end(int station);
  /// Bytes transmitted into a faulted station's dead contact (a subset of
  /// the matching bytes_moved event's non-received bytes).
  void outage_loss(int sat, int station, double bytes);
  /// The station's report upload was lost `retries` times and retried
  /// with backoff, delaying the batch verdict by `delay_s`.
  void ack_relay_retry(int sat, int station, int retries, double delay_s);
  /// The TT&C exchange (acks + fresh plan) at a TX contact failed.
  void plan_upload_failed(int sat, int station);
  /// The look-ahead planner re-scored the remaining horizon because
  /// assigned `station` faulted; the new plan covers `window_steps`.
  void replan(int station, int window_steps);
  /// Station `station`'s backhaul degraded to `multiplier` x nominal
  /// (0 = blackout) / recovered to nominal.
  void backhaul_fault_begin(int station, double multiplier);
  void backhaul_fault_end(int station);
  /// Geometry-cache hits/misses accrued during this step (emitted only for
  /// steps where the count is nonzero).
  void cache_hit(std::int64_t count);
  void cache_miss(std::int64_t count);
  /// Station-side backhaul activity for this step (aggregate over
  /// stations): bytes newly queued at edges and bytes uploaded to cloud.
  void backhaul_step(double received_bytes, double uploaded_bytes,
                     double queued_bytes);

 private:
  /// Writes the line prefix {"t_hours":...,"step":...,"type":"<type>" and
  /// returns the sink for the caller to append fields and finish.
  std::ostream& begin_line(const char* type);

  std::ostream* out_;
  std::int64_t step_ = 0;
  double t_hours_ = 0.0;
};

}  // namespace dgs::obs
