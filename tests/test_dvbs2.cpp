// DVB-S2 MODCOD table and rate selection.
#include <gtest/gtest.h>

#include <stdexcept>

#include "src/link/dvbs2.h"

namespace dgs::link {
namespace {

TEST(ModCodTable, HasAllTwentyEightNormalFrameModCods) {
  EXPECT_EQ(dvbs2_modcods().size(), 28u);
}

TEST(ModCodTable, SortedByRequiredEsN0) {
  const auto mods = dvbs2_modcods();
  for (std::size_t i = 1; i < mods.size(); ++i) {
    EXPECT_GE(mods[i].required_esn0_db, mods[i - 1].required_esn0_db)
        << mods[i].name;
  }
}

TEST(ModCodTable, KnownEndpoints) {
  const auto mods = dvbs2_modcods();
  EXPECT_EQ(mods.front().name, "QPSK 1/4");
  EXPECT_NEAR(mods.front().required_esn0_db, -2.35, 1e-9);
  EXPECT_NEAR(mods.front().spectral_efficiency, 0.490243, 1e-6);
  EXPECT_EQ(mods.back().name, "32APSK 9/10");
  EXPECT_NEAR(mods.back().required_esn0_db, 16.05, 1e-9);
  EXPECT_NEAR(mods.back().spectral_efficiency, 4.453027, 1e-6);
}

TEST(ModCodTable, EfficiencyConsistentWithModulationOrder) {
  // Spectral efficiency is below bits/symbol of the constellation and
  // roughly code_rate * log2(M).
  for (const ModCod& mc : dvbs2_modcods()) {
    int bits = 0;
    switch (mc.modulation) {
      case Modulation::kQpsk: bits = 2; break;
      case Modulation::k8psk: bits = 3; break;
      case Modulation::k16apsk: bits = 4; break;
      case Modulation::k32apsk: bits = 5; break;
    }
    EXPECT_LT(mc.spectral_efficiency, bits) << mc.name;
    EXPECT_NEAR(mc.spectral_efficiency, mc.code_rate * bits, 0.035 * bits)
        << mc.name;
  }
}

TEST(SelectModCod, NoLinkBelowMinimum) {
  EXPECT_EQ(select_modcod(-3.0, 1.0), nullptr);
  EXPECT_EQ(select_modcod(-1.36, 1.0), nullptr);  // -2.35 + 1.0 margin > -1.36
}

TEST(SelectModCod, ExactThresholdWithMargin) {
  const ModCod* mc = select_modcod(-1.35, 1.0);
  ASSERT_NE(mc, nullptr);
  EXPECT_EQ(mc->name, "QPSK 1/4");
}

TEST(SelectModCod, PicksHighestEfficiencyNotHighestThreshold) {
  // At Es/N0 = 10.8 dB (margin 0) both "8PSK 8/9" (10.69 dB, eff 2.646) and
  // "16APSK 4/5"? (11.03, not feasible) -- feasible set is topped by
  // 16APSK 3/4 (10.21 dB, eff 2.967) which beats 8PSK 8/9 despite a lower
  // threshold.
  const ModCod* mc = select_modcod(10.8, 0.0);
  ASSERT_NE(mc, nullptr);
  EXPECT_EQ(mc->name, "16APSK 3/4");
}

TEST(SelectModCod, TopOfTableAtHighSnr) {
  const ModCod* mc = select_modcod(30.0, 1.0);
  ASSERT_NE(mc, nullptr);
  EXPECT_EQ(mc->name, "32APSK 9/10");
}

TEST(SelectModCod, MonotoneEfficiencyInSnr) {
  double prev = 0.0;
  for (double esn0 = -2.0; esn0 <= 18.0; esn0 += 0.25) {
    const ModCod* mc = select_modcod(esn0, 0.0);
    const double eff = mc ? mc->spectral_efficiency : 0.0;
    EXPECT_GE(eff, prev) << "esn0=" << esn0;
    prev = eff;
  }
}

TEST(SelectModCod, RejectsNegativeMargin) {
  EXPECT_THROW(select_modcod(10.0, -1.0), std::invalid_argument);
}

TEST(Bitrate, MatchesEfficiencyTimesSymbolRate) {
  const ModCod& top = dvbs2_modcods().back();
  EXPECT_NEAR(bitrate_bps(top, 66.7e6), 4.453027 * 66.7e6, 1.0);
}

TEST(Bitrate, PaperBestKnownGroundStationRate) {
  // Paper §2: the best-known design combines six channels at ~1.6 Gbps.
  // Six 66.7 MHz channels at high-order MODCODs land in that regime.
  const ModCod* mc = select_modcod(14.0, 1.0);  // strong link
  ASSERT_NE(mc, nullptr);
  const double six_channel_bps = 6.0 * bitrate_bps(*mc, 66.7e6);
  EXPECT_GT(six_channel_bps, 1.2e9);
  EXPECT_LT(six_channel_bps, 2.0e9);
}

TEST(Bitrate, RejectsNonPositiveSymbolRate) {
  EXPECT_THROW(bitrate_bps(dvbs2_modcods().front(), 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace dgs::link
