#include "src/core/plan.h"

#include <cstring>
#include <limits>

#include "src/util/check.h"
#include "src/util/crc32.h"

namespace dgs::core {
namespace {

constexpr std::uint8_t kVersion = 1;
constexpr std::uint8_t kPlanMagic[4] = {'D', 'G', 'S', 'P'};
constexpr std::uint8_t kAckMagic[4] = {'D', 'G', 'S', 'A'};
constexpr std::size_t kHeaderSize = 4 + 1 + 4 + 8 + 2;  // magic..count
constexpr std::size_t kPlanEntrySize = 10;
constexpr std::size_t kAckRangeSize = 16;
constexpr std::size_t kCrcSize = 4;

class Writer {
 public:
  explicit Writer(std::size_t reserve) { buf_.reserve(reserve); }

  template <typename T>
  void put(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    // Explicit little-endian byte order, independent of host.
    std::uint64_t bits = 0;
    if constexpr (std::is_floating_point_v<T>) {
      std::memcpy(&bits, &v, sizeof(v));
    } else {
      bits = static_cast<std::uint64_t>(v);
    }
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
    }
  }

  void put_bytes(const std::uint8_t* p, std::size_t n) {
    buf_.insert(buf_.end(), p, p + n);
  }

  std::vector<std::uint8_t> finish() {
    const std::uint32_t crc = util::crc32(buf_);
    put(crc);
    return std::move(buf_);
  }

 private:
  std::vector<std::uint8_t> buf_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  template <typename T>
  T get() {
    DGS_ENSURE(pos_ + sizeof(T) <= bytes_.size(),
               "plan parse: truncated message");
    std::uint64_t bits = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      bits |= static_cast<std::uint64_t>(bytes_[pos_ + i]) << (8 * i);
    }
    pos_ += sizeof(T);
    if constexpr (std::is_floating_point_v<T>) {
      T v;
      std::memcpy(&v, &bits, sizeof(T));
      return v;
    } else {
      return static_cast<T>(bits);
    }
  }

  void expect_magic(const std::uint8_t (&magic)[4]) {
    for (std::uint8_t m : magic) {
      DGS_ENSURE(get<std::uint8_t>() == m, "plan parse: bad magic");
    }
  }

  std::size_t pos() const { return pos_; }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

void check_crc(std::span<const std::uint8_t> bytes) {
  DGS_ENSURE(bytes.size() >= kHeaderSize + kCrcSize,
             "plan parse: message too short");
  const auto body = bytes.subspan(0, bytes.size() - kCrcSize);
  std::uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) {
    stored |= static_cast<std::uint32_t>(bytes[bytes.size() - 4 + i])
              << (8 * i);
  }
  DGS_ENSURE(util::crc32(body) == stored, "plan parse: CRC mismatch");
}

}  // namespace

std::size_t plan_wire_size(std::size_t entry_count) {
  return kHeaderSize + entry_count * kPlanEntrySize + kCrcSize;
}

std::size_t ack_wire_size(std::size_t range_count) {
  return kHeaderSize + range_count * kAckRangeSize + kCrcSize;
}

std::vector<std::uint8_t> serialize(const DownlinkPlan& plan) {
  DGS_ENSURE_LE(plan.entries.size(),
                std::size_t{std::numeric_limits<std::uint16_t>::max()});
  Writer w(plan_wire_size(plan.entries.size()));
  w.put_bytes(kPlanMagic, 4);
  w.put(kVersion);
  w.put(plan.sat_id);
  w.put(plan.epoch.jd());
  w.put(static_cast<std::uint16_t>(plan.entries.size()));
  for (const PlanEntry& e : plan.entries) {
    w.put(e.start_offset_s);
    w.put(e.duration_s);
    w.put(e.station_id);
    w.put(e.modcod_index);
    w.put(e.channels);
  }
  return w.finish();
}

std::vector<std::uint8_t> serialize(const AckReport& report) {
  DGS_ENSURE_LE(report.ranges.size(),
                std::size_t{std::numeric_limits<std::uint16_t>::max()});
  Writer w(ack_wire_size(report.ranges.size()));
  w.put_bytes(kAckMagic, 4);
  w.put(kVersion);
  w.put(report.sat_id);
  w.put(report.collated_at.jd());
  w.put(static_cast<std::uint16_t>(report.ranges.size()));
  for (const AckRange& r : report.ranges) {
    w.put(r.first_byte);
    w.put(r.last_byte);
  }
  return w.finish();
}

DownlinkPlan parse_plan(std::span<const std::uint8_t> bytes) {
  check_crc(bytes);
  Reader r(bytes);
  r.expect_magic(kPlanMagic);
  DGS_ENSURE(r.get<std::uint8_t>() == kVersion,
             "plan parse: unsupported version");
  DownlinkPlan plan;
  plan.sat_id = r.get<std::uint32_t>();
  plan.epoch = util::Epoch::from_jd(r.get<double>());
  const std::uint16_t count = r.get<std::uint16_t>();
  DGS_ENSURE(bytes.size() == plan_wire_size(count),
             "plan parse: size/count mismatch");
  plan.entries.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) {
    PlanEntry e;
    e.start_offset_s = r.get<std::uint32_t>();
    e.duration_s = r.get<std::uint16_t>();
    e.station_id = r.get<std::uint16_t>();
    e.modcod_index = r.get<std::uint8_t>();
    e.channels = r.get<std::uint8_t>();
    plan.entries.push_back(e);
  }
  return plan;
}

AckReport parse_ack_report(std::span<const std::uint8_t> bytes) {
  check_crc(bytes);
  Reader r(bytes);
  r.expect_magic(kAckMagic);
  DGS_ENSURE(r.get<std::uint8_t>() == kVersion,
             "ack parse: unsupported version");
  AckReport report;
  report.sat_id = r.get<std::uint32_t>();
  report.collated_at = util::Epoch::from_jd(r.get<double>());
  const std::uint16_t count = r.get<std::uint16_t>();
  DGS_ENSURE(bytes.size() == ack_wire_size(count),
             "ack parse: size/count mismatch");
  report.ranges.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) {
    AckRange range;
    range.first_byte = r.get<std::uint64_t>();
    range.last_byte = r.get<std::uint64_t>();
    report.ranges.push_back(range);
  }
  return report;
}

double upload_duration_s(std::size_t bytes, double rate_bps,
                         double handshake_s) {
  DGS_ENSURE_GT(rate_bps, 0.0);
  DGS_ENSURE_GE(handshake_s, 0.0);
  return handshake_s + static_cast<double>(bytes) * 8.0 / rate_bps;
}

}  // namespace dgs::core
