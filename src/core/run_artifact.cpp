#include "src/core/run_artifact.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>

#include "src/core/report.h"
#include "src/util/check.h"

namespace dgs::core {
namespace {

std::optional<ArtifactError> err(std::string where, std::string message) {
  return ArtifactError{std::move(where), std::move(message)};
}

/// True when `v` is an exact integer the double can represent losslessly.
bool is_integral(double v) {
  return std::nearbyint(v) == v && std::abs(v) < 9.007199254740992e15;
}

// --- Restricted JSON parser ------------------------------------------------

constexpr int kMaxDepth = 8;

struct Cursor {
  std::string_view s;
  std::size_t i = 0;

  bool done() const { return i >= s.size(); }
  char peek() const { return s[i]; }
  void skip_ws() {
    while (!done() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  }
};

bool fail(const Cursor& c, ArtifactError* e, const char* message) {
  if (e != nullptr) {
    *e = ArtifactError{"offset " + std::to_string(c.i), message};
  }
  return false;
}

bool parse_value(Cursor& c, JsonValue* out, int depth, ArtifactError* e);

bool parse_string_body(Cursor& c, std::string* out, ArtifactError* e) {
  if (c.done() || c.peek() != '"') return fail(c, e, "expected '\"'");
  ++c.i;
  out->clear();
  while (!c.done()) {
    const char ch = c.s[c.i++];
    if (ch == '"') return true;
    if (ch == '\\') {
      // The writers only ever escape '"' and '\\'; anything fancier is
      // outside the artifact subset.
      if (c.done()) return fail(c, e, "dangling escape");
      const char esc = c.s[c.i++];
      if (esc != '"' && esc != '\\') {
        return fail(c, e, "unsupported escape in artifact string");
      }
      out->push_back(esc);
      continue;
    }
    out->push_back(ch);
  }
  return fail(c, e, "unterminated string");
}

bool parse_literal(Cursor& c, std::string_view lit, ArtifactError* e) {
  if (c.s.substr(c.i, lit.size()) != lit) {
    return fail(c, e, "unrecognized literal");
  }
  c.i += lit.size();
  return true;
}

bool parse_object(Cursor& c, JsonValue* out, int depth, ArtifactError* e) {
  if (depth >= kMaxDepth) return fail(c, e, "nesting too deep");
  ++c.i;  // consumes '{'
  out->kind = JsonValue::Kind::kObject;
  c.skip_ws();
  if (!c.done() && c.peek() == '}') {
    ++c.i;
    return true;
  }
  while (true) {
    c.skip_ws();
    std::string key;
    if (!parse_string_body(c, &key, e)) return false;
    c.skip_ws();
    if (c.done() || c.peek() != ':') return fail(c, e, "expected ':'");
    ++c.i;
    JsonValue value;
    if (!parse_value(c, &value, depth + 1, e)) return false;
    out->members.emplace_back(std::move(key), std::move(value));
    c.skip_ws();
    if (c.done()) return fail(c, e, "unterminated object");
    if (c.peek() == ',') {
      ++c.i;
      continue;
    }
    if (c.peek() == '}') {
      ++c.i;
      return true;
    }
    return fail(c, e, "expected ',' or '}'");
  }
}

bool parse_value(Cursor& c, JsonValue* out, int depth, ArtifactError* e) {
  c.skip_ws();
  if (c.done()) return fail(c, e, "unexpected end of document");
  switch (c.peek()) {
    case '{':
      return parse_object(c, out, depth, e);
    case '[':
      return fail(c, e, "arrays are outside the artifact JSON subset");
    case '"':
      out->kind = JsonValue::Kind::kString;
      return parse_string_body(c, &out->text, e);
    case 't':
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      return parse_literal(c, "true", e);
    case 'f':
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      return parse_literal(c, "false", e);
    case 'n':
      out->kind = JsonValue::Kind::kNull;
      return parse_literal(c, "null", e);
    default: {
      // Strict JSON number grammar, scanned before conversion: strtod
      // alone would also accept hex / inf / nan spellings, which are
      // outside the artifact subset.
      const std::size_t start = c.i;
      const auto digit_run = [&c] {
        const std::size_t from = c.i;
        while (!c.done() && c.peek() >= '0' && c.peek() <= '9') ++c.i;
        return c.i - from;
      };
      if (!c.done() && c.peek() == '-') ++c.i;
      const std::size_t int_start = c.i;
      if (digit_run() == 0) {
        c.i = start;
        return fail(c, e, "expected a JSON value");
      }
      if (c.s[int_start] == '0' && c.i - int_start > 1) {
        return fail(c, e, "malformed number");
      }
      if (!c.done() && c.peek() == '.') {
        ++c.i;
        if (digit_run() == 0) return fail(c, e, "malformed number");
      }
      if (!c.done() && (c.peek() == 'e' || c.peek() == 'E')) {
        ++c.i;
        if (!c.done() && (c.peek() == '+' || c.peek() == '-')) ++c.i;
        if (digit_run() == 0) return fail(c, e, "malformed number");
      }
      const std::string token(c.s.substr(start, c.i - start));
      out->kind = JsonValue::Kind::kNumber;
      out->number = std::strtod(token.c_str(), nullptr);
      return true;
    }
  }
}

// --- Summary schema table --------------------------------------------------

using enum SummaryFieldKind;

constexpr SummaryFieldSpec kSummaryFields[] = {
    {"schema_version", kInt},
    {"latency_minutes", kStats},
    {"urgent_latency_minutes", kStats},
    {"backlog_gb", kStats},
    {"ack_delay_minutes", kStats},
    {"cloud_latency_minutes", kStats},
    {"total_generated_tb", kReal},
    {"total_delivered_tb", kReal},
    {"total_dropped_tb", kReal},
    {"delivered_fraction", kReal},
    {"assignments", kInt},
    {"failed_assignments", kInt},
    {"wasted_transmission_tb", kReal},
    {"requeued_tb", kReal},
    {"slew_events", kInt},
    {"outage_lost_tb", kReal},
    {"ack_retries", kInt},
    {"replans", kInt},
    {"plan_upload_failures", kInt},
    {"mean_station_utilization", kReal},
    {"steps", kInt},
    {"tenants", kTenants},
};

constexpr const char* kStatsMembers[] = {"median", "p90", "p99", "mean",
                                         "count"};

using enum TenantFieldKind;

constexpr TenantFieldSpec kTenantFields[] = {
    {"name", kTString},
    {"weight", kTReal},
    {"num_satellites", kTInt},
    {"delivered_tb", kTReal},
    {"entitlement", kTReal},
    {"share", kTReal},
    {"sla_latency_minutes", kTReal},
    {"sla_attainment", kTReal},
    {"latency_minutes", kTStats},
};

constexpr const char* kAggregateMetricMembers[] = {
    "mean", "sd", "ci95", "p50", "p99", "min", "max", "count"};

// Netdesign front schema tables (see netdesign_identity_specs /
// netdesign_point_specs in the header).  Writer: src/netdesign/pareto.cpp
// iterates exactly these tables, so writer and validator cannot drift.
using enum NetdesignFieldKind;

constexpr NetdesignFieldSpec kNetdesignIdentity[] = {
    {"pool_size", kNInt},
    {"pool_seed", kNInt},
    {"num_satellites", kNInt},
    {"network_seed", kNInt},
    {"weather_seed", kNInt},
    {"duration_hours", kNReal},
    {"step_seconds", kNReal},
};

constexpr NetdesignFieldSpec kNetdesignPoint[] = {
    {"stations", kNInt},
    {"cost", kNReal},
    {"objective_gb", kNReal},
    {"latency_p50_min", kNReal},
    {"latency_p90_min", kNReal},
    {"backlog_end_gb", kNReal},
    {"delivered_fraction", kNReal},
    {"dominated", kNBool},
    {"station_ids", kNString},
};

// Checkpoint header identity (emitted after schema_version + the
// "checkpoint" tag).  Writer: src/core/checkpoint.cpp iterates exactly this
// table.
constexpr NetdesignFieldSpec kCheckpointHeader[] = {
    {"num_satellites", kNInt},
    {"num_stations", kNInt},
    {"steps", kNInt},
    {"step_index", kNInt},
    {"step_seconds", kNReal},
    {"duration_hours", kNReal},
    {"finalized", kNBool},
    {"options_crc32", kNInt},
    {"sections", kNInt},
    {"payload_bytes", kNInt},
    {"payload_crc32", kNInt},
};

constexpr const char* kCheckpointSections[] = {
    "result", "queues", "stations", "planner",
    "geometry", "matcher", "tenants", "metrics"};

/// Campaign identity fields shared by the manifest and the aggregate
/// (emitted after schema_version and the artifact tag, in this order).
enum class CampaignFieldKind { kCInt, kCReal, kCString };
struct CampaignFieldSpec {
  const char* key;
  CampaignFieldKind kind;
};
constexpr CampaignFieldSpec kCampaignIdentity[] = {
    {"profile", CampaignFieldKind::kCString},
    {"campaign_seed", CampaignFieldKind::kCInt},
    {"samples", CampaignFieldKind::kCInt},
    {"duration_hours", CampaignFieldKind::kCReal},
    {"step_seconds", CampaignFieldKind::kCReal},
    {"num_satellites", CampaignFieldKind::kCInt},
    {"num_stations", CampaignFieldKind::kCInt},
    {"network_seed", CampaignFieldKind::kCInt},
    {"weather_seed", CampaignFieldKind::kCInt},
};

std::optional<ArtifactError> check_number(const JsonValue& v,
                                          const std::string& where,
                                          bool integral) {
  if (v.kind != JsonValue::Kind::kNumber) {
    return err(where, "expected a number");
  }
  if (integral && !is_integral(v.number)) {
    return err(where, "expected an integer-valued number");
  }
  return std::nullopt;
}

std::optional<ArtifactError> check_stats_object(const JsonValue& v,
                                                const std::string& where) {
  if (v.kind == JsonValue::Kind::kNull) return std::nullopt;
  if (v.kind != JsonValue::Kind::kObject) {
    return err(where, "expected a percentile object or null");
  }
  const auto keys = stats_member_keys();
  if (v.members.size() != keys.size()) {
    return err(where, "percentile object must have exactly " +
                          std::to_string(keys.size()) + " members");
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (v.members[i].first != keys[i]) {
      return err(where + "." + v.members[i].first,
                 std::string("expected key \"") + keys[i] +
                     "\" at this position");
    }
    if (auto e = check_number(v.members[i].second, where + "." + keys[i],
                              keys[i] == std::string_view("count"))) {
      return e;
    }
  }
  const JsonValue* count = v.find("count");
  if (count->number < 1.0) {
    return err(where + ".count", "must be >= 1 (empty sets are null)");
  }
  return std::nullopt;
}

std::optional<ArtifactError> check_tenants_object(const JsonValue& v,
                                                  const std::string& where) {
  if (v.kind == JsonValue::Kind::kNull) return std::nullopt;
  if (v.kind != JsonValue::Kind::kObject) {
    return err(where, "expected a tenants object or null");
  }
  if (v.members.empty()) {
    return err(where, "empty runs emit null, not an empty object");
  }
  long long index = 0;
  for (const auto& [key, row] : v.members) {
    const std::string row_where = where + "." + key;
    // Keys are "t_%03d" in declaration order (the netdesign "k_%03d"
    // convention, since the restricted subset has no arrays).
    char expected[8];
    std::snprintf(expected, sizeof(expected), "t_%03lld", index);
    if (key != expected) {
      return err(row_where, std::string("expected key \"") + expected +
                                "\" at this position");
    }
    ++index;
    if (row.kind != JsonValue::Kind::kObject) {
      return err(row_where, "expected an object");
    }
    const auto specs = tenant_field_specs();
    if (row.members.size() != specs.size()) {
      return err(row_where, "expected exactly " +
                                std::to_string(specs.size()) + " members");
    }
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const auto& [k, val] = row.members[i];
      const std::string field = row_where + "." + specs[i].key;
      if (k != specs[i].key) {
        return err(row_where + "." + k,
                   std::string("expected key \"") + specs[i].key +
                       "\" at this position");
      }
      switch (specs[i].kind) {
        case kTInt:
          if (auto e = check_number(val, field, true)) return e;
          break;
        case kTReal:
          if (auto e = check_number(val, field, false)) return e;
          break;
        case kTString:
          if (val.kind != JsonValue::Kind::kString || val.text.empty()) {
            return err(field, "expected a non-empty string");
          }
          break;
        case kTStats:
          if (auto e = check_stats_object(val, field)) return e;
          break;
      }
    }
    if (row.find("weight")->number <= 0.0) {
      return err(row_where + ".weight", "must be > 0");
    }
    for (const char* frac : {"entitlement", "share", "sla_attainment"}) {
      const double f = row.find(frac)->number;
      if (f < 0.0 || f > 1.0) {
        return err(row_where + "." + frac, "must be in [0, 1]");
      }
    }
  }
  return std::nullopt;
}

/// Shared header check: first member schema_version == current, second
/// member the artifact tag.  Fills `*next` with the index of the first
/// member after the header.
std::optional<ArtifactError> check_artifact_header(
    const JsonValue& root, const std::string& where,
    std::string_view expected_tag, std::size_t* next) {
  if (root.kind != JsonValue::Kind::kObject) {
    return err(where, "expected a JSON object");
  }
  if (root.members.size() < 2 ||
      root.members[0].first != "schema_version") {
    return err(where + ".schema_version", "must be the first key");
  }
  const JsonValue& version = root.members[0].second;
  if (auto e = check_number(version, where + ".schema_version", true)) {
    return e;
  }
  if (static_cast<int>(version.number) != kRunArtifactSchemaVersion) {
    return err(where + ".schema_version",
               "expected version " +
                   std::to_string(kRunArtifactSchemaVersion) + ", got " +
                   std::to_string(static_cast<int>(version.number)));
  }
  if (root.members[1].first != "artifact" ||
      root.members[1].second.kind != JsonValue::Kind::kString) {
    return err(where + ".artifact",
               "must be the second key, with a string value");
  }
  if (root.members[1].second.text != expected_tag) {
    return err(where + ".artifact",
               "expected \"" + std::string(expected_tag) + "\", got \"" +
                   root.members[1].second.text + "\"");
  }
  *next = 2;
  return std::nullopt;
}

std::optional<ArtifactError> check_campaign_identity(
    const JsonValue& root, const std::string& where, std::size_t* at) {
  for (const CampaignFieldSpec& f : kCampaignIdentity) {
    if (*at >= root.members.size() || root.members[*at].first != f.key) {
      return err(where + "." + f.key, "missing or out of order");
    }
    const JsonValue& v = root.members[*at].second;
    const std::string field = where + "." + f.key;
    switch (f.kind) {
      case CampaignFieldKind::kCInt:
        if (auto e = check_number(v, field, true)) return e;
        break;
      case CampaignFieldKind::kCReal:
        if (auto e = check_number(v, field, false)) return e;
        break;
      case CampaignFieldKind::kCString:
        if (v.kind != JsonValue::Kind::kString || v.text.empty()) {
          return err(field, "expected a non-empty string");
        }
        break;
    }
    ++*at;
  }
  return std::nullopt;
}

// --- Summary writer value mapping -----------------------------------------

long long int_field(const SimulationResult& r, std::string_view key) {
  if (key == "schema_version") return kRunArtifactSchemaVersion;
  if (key == "assignments") return r.assignments;
  if (key == "failed_assignments") return r.failed_assignments;
  if (key == "slew_events") return r.slew_events;
  if (key == "ack_retries") return r.ack_retries;
  if (key == "replans") return r.replans;
  if (key == "plan_upload_failures") return r.plan_upload_failures;
  if (key == "steps") return r.steps;
  DGS_CHECK(false, "unmapped integer summary field");
  return 0;
}

double real_field(const SimulationResult& r, std::string_view key) {
  if (key == "total_generated_tb") return r.total_generated_bytes / 1e12;
  if (key == "total_delivered_tb") return r.total_delivered_bytes / 1e12;
  if (key == "total_dropped_tb") return r.total_dropped_bytes / 1e12;
  if (key == "delivered_fraction") return r.delivered_fraction();
  if (key == "wasted_transmission_tb") {
    return r.wasted_transmission_bytes / 1e12;
  }
  if (key == "requeued_tb") return r.requeued_bytes / 1e12;
  if (key == "outage_lost_tb") return r.outage_lost_bytes / 1e12;
  if (key == "mean_station_utilization") return r.mean_station_utilization;
  DGS_CHECK(false, "unmapped real summary field");
  return 0.0;
}

const util::SampleSet& stats_field(const SimulationResult& r,
                                   std::string_view key) {
  if (key == "latency_minutes") return r.latency_minutes;
  if (key == "urgent_latency_minutes") return r.urgent_latency_minutes;
  if (key == "backlog_gb") return r.backlog_gb;
  if (key == "ack_delay_minutes") return r.ack_delay_minutes;
  DGS_CHECK(key == "cloud_latency_minutes",
            "unmapped percentile summary field");
  return r.cloud_latency_minutes;
}

// --- Netdesign front helpers -----------------------------------------------

std::optional<ArtifactError> check_netdesign_field(const JsonValue& v,
                                                   const std::string& where,
                                                   NetdesignFieldKind kind) {
  switch (kind) {
    case kNInt:
      return check_number(v, where, true);
    case kNReal:
      return check_number(v, where, false);
    case kNBool:
      if (v.kind != JsonValue::Kind::kBool) {
        return err(where, "expected true or false");
      }
      return std::nullopt;
    case kNString:
      if (v.kind != JsonValue::Kind::kString || v.text.empty()) {
        return err(where, "expected a non-empty string");
      }
      return std::nullopt;
  }
  return std::nullopt;
}

/// "3,17,42" -> strictly ascending non-negative id count, or -1 on any
/// malformation.
int station_ids_count(const std::string& text) {
  int count = 0;
  long long prev = -1;
  std::size_t i = 0;
  while (i < text.size()) {
    std::size_t j = i;
    long long v = 0;
    while (j < text.size() && text[j] >= '0' && text[j] <= '9') {
      v = v * 10 + (text[j] - '0');
      ++j;
    }
    if (j == i) return -1;           // empty token
    if (v <= prev) return -1;        // not strictly ascending
    prev = v;
    ++count;
    if (j == text.size()) break;
    if (text[j] != ',') return -1;
    i = j + 1;
    if (i == text.size()) return -1;  // trailing comma
  }
  return count;
}

std::optional<ArtifactError> check_netdesign_point(const JsonValue& p,
                                                   const std::string& where) {
  if (p.kind != JsonValue::Kind::kObject) {
    return err(where, "expected an object");
  }
  const auto specs = netdesign_point_specs();
  if (p.members.size() != specs.size()) {
    return err(where, "expected exactly " + std::to_string(specs.size()) +
                          " members");
  }
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (p.members[i].first != specs[i].key) {
      return err(where + "." + p.members[i].first,
                 std::string("expected key \"") + specs[i].key +
                     "\" at this position");
    }
    if (auto e = check_netdesign_field(p.members[i].second,
                                       where + "." + specs[i].key,
                                       specs[i].kind)) {
      return e;
    }
  }
  const double stations = p.find("stations")->number;
  if (stations < 1.0) {
    return err(where + ".stations", "must be >= 1");
  }
  const double frac = p.find("delivered_fraction")->number;
  if (frac < 0.0 || frac > 1.0) {
    return err(where + ".delivered_fraction", "must be in [0, 1]");
  }
  const int ids = station_ids_count(p.find("station_ids")->text);
  if (ids < 0) {
    return err(where + ".station_ids",
               "expected comma-joined strictly ascending station ids");
  }
  if (ids != static_cast<int>(stations)) {
    return err(where + ".station_ids",
               "lists " + std::to_string(ids) + " ids but stations is " +
                   std::to_string(static_cast<int>(stations)));
  }
  return std::nullopt;
}

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::optional<JsonValue> parse_restricted_json(std::string_view text,
                                               ArtifactError* err_out) {
  Cursor c{text};
  JsonValue v;
  if (!parse_value(c, &v, 0, err_out)) return std::nullopt;
  c.skip_ws();
  if (!c.done()) {
    fail(c, err_out, "trailing content after the document");
    return std::nullopt;
  }
  return v;
}

std::span<const SummaryFieldSpec> summary_field_specs() {
  return kSummaryFields;
}

std::span<const char* const> stats_member_keys() { return kStatsMembers; }

std::span<const TenantFieldSpec> tenant_field_specs() {
  return kTenantFields;
}

std::span<const NetdesignFieldSpec> checkpoint_header_specs() {
  return kCheckpointHeader;
}

std::span<const char* const> checkpoint_section_names() {
  return kCheckpointSections;
}

std::span<const char* const> aggregate_metric_member_keys() {
  return kAggregateMetricMembers;
}

std::span<const NetdesignFieldSpec> netdesign_identity_specs() {
  return kNetdesignIdentity;
}

std::span<const NetdesignFieldSpec> netdesign_point_specs() {
  return kNetdesignPoint;
}

std::string_view timeseries_csv_header() {
  return "hours,delivered_tb_cum,backlog_gb_total,active_links,"
         "failed_links_cum";
}

std::optional<ArtifactError> validate_summary_json(std::string_view text) {
  ArtifactError parse_err;
  const auto doc = parse_restricted_json(text, &parse_err);
  if (!doc) return err("summary", parse_err.where + ": " + parse_err.message);
  if (doc->kind != JsonValue::Kind::kObject) {
    return err("summary", "expected a JSON object");
  }
  const auto specs = summary_field_specs();
  if (doc->members.size() != specs.size()) {
    return err("summary", "expected exactly " +
                              std::to_string(specs.size()) + " keys, got " +
                              std::to_string(doc->members.size()));
  }
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto& [key, value] = doc->members[i];
    const std::string where = "summary." + key;
    if (key != specs[i].key) {
      return err(where, std::string("expected key \"") + specs[i].key +
                            "\" at this position");
    }
    switch (specs[i].kind) {
      case kInt:
        if (auto e = check_number(value, where, true)) return e;
        break;
      case kReal:
        if (auto e = check_number(value, where, false)) return e;
        break;
      case kStats:
        if (auto e = check_stats_object(value, where)) return e;
        break;
      case kTenants:
        if (auto e = check_tenants_object(value, where)) return e;
        break;
    }
  }
  const int version = static_cast<int>(doc->members[0].second.number);
  if (version != kRunArtifactSchemaVersion) {
    return err("summary.schema_version",
               "expected version " +
                   std::to_string(kRunArtifactSchemaVersion) + ", got " +
                   std::to_string(version));
  }
  return std::nullopt;
}

std::optional<ArtifactError> validate_timeseries_csv(std::string_view text) {
  std::size_t pos = 0;
  int line_no = 0;
  double prev_hours = -1.0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    const std::string where = "timeseries line " + std::to_string(line_no);
    if (line_no == 1) {
      if (line != timeseries_csv_header()) {
        return err(where, "header does not match the schema");
      }
      continue;
    }
    if (line.empty()) return err(where, "empty row");
    // Exactly 5 columns, each a complete number.
    int col = 0;
    std::size_t field_start = 0;
    double hours = 0.0;
    for (std::size_t j = 0; j <= line.size(); ++j) {
      if (j != line.size() && line[j] != ',') continue;
      const std::string field(line.substr(field_start, j - field_start));
      char* end = nullptr;
      const double v = std::strtod(field.c_str(), &end);
      if (field.empty() || end != field.c_str() + field.size()) {
        return err(where, "column " + std::to_string(col + 1) +
                              " is not a number: \"" + field + "\"");
      }
      if (col == 0) hours = v;
      ++col;
      field_start = j + 1;
    }
    if (col != 5) {
      return err(where,
                 "expected 5 columns, got " + std::to_string(col));
    }
    if (hours <= prev_hours) {
      return err(where, "hours must be strictly increasing");
    }
    prev_hours = hours;
  }
  if (line_no == 0) return err("timeseries", "missing header row");
  return std::nullopt;
}

std::optional<ArtifactError> validate_events_jsonl(std::string_view text) {
  std::size_t pos = 0;
  int line_no = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    // NUL-terminated copy: the number scanner is strtod-based.
    const std::string line(text.substr(pos, eol - pos));
    pos = eol + 1;
    ++line_no;
    if (line.empty()) continue;
    const std::string where = "events line " + std::to_string(line_no);
    ArtifactError parse_err;
    const auto doc = parse_restricted_json(line, &parse_err);
    if (!doc) return err(where, parse_err.where + ": " + parse_err.message);
    if (doc->kind != JsonValue::Kind::kObject || doc->members.size() < 3) {
      return err(where, "expected an object with at least 3 members");
    }
    if (doc->members[0].first != "t_hours" ||
        doc->members[0].second.kind != JsonValue::Kind::kNumber) {
      return err(where, "member 1 must be \"t_hours\": <number>");
    }
    const JsonValue& step = doc->members[1].second;
    if (doc->members[1].first != "step" ||
        step.kind != JsonValue::Kind::kNumber ||
        !is_integral(step.number) || step.number < 0.0) {
      return err(where, "member 2 must be \"step\": <integer >= 0>");
    }
    if (doc->members[2].first != "type" ||
        doc->members[2].second.kind != JsonValue::Kind::kString ||
        doc->members[2].second.text.empty()) {
      return err(where, "member 3 must be \"type\": <non-empty string>");
    }
    for (std::size_t i = 3; i < doc->members.size(); ++i) {
      if (doc->members[i].second.kind == JsonValue::Kind::kObject) {
        return err(where + "." + doc->members[i].first,
                   "event payloads are flat (no nested objects)");
      }
    }
  }
  return std::nullopt;
}

double RunSummary::scalar(std::string_view key) const {
  const JsonValue* v = root.find(key);
  DGS_CHECK(v != nullptr && v->kind == JsonValue::Kind::kNumber,
            "RunSummary::scalar on a non-scalar field");
  return v->number;
}

const JsonValue* RunSummary::stats(std::string_view key) const {
  const JsonValue* v = root.find(key);
  DGS_CHECK(v != nullptr, "RunSummary::stats on an unknown field");
  return v->kind == JsonValue::Kind::kObject ? v : nullptr;
}

std::optional<ArtifactError> parse_summary_json(std::string_view text,
                                                RunSummary* out) {
  if (auto e = validate_summary_json(text)) return e;
  out->root = *parse_restricted_json(text);
  return std::nullopt;
}

std::optional<ArtifactError> validate_campaign_manifest_json(
    std::string_view text) {
  ArtifactError parse_err;
  const auto doc = parse_restricted_json(text, &parse_err);
  if (!doc) {
    return err("manifest", parse_err.where + ": " + parse_err.message);
  }
  std::size_t at = 0;
  if (auto e = check_artifact_header(*doc, "manifest", "campaign_manifest",
                                     &at)) {
    return e;
  }
  if (auto e = check_campaign_identity(*doc, "manifest", &at)) return e;
  if (at != doc->members.size()) {
    return err("manifest." + doc->members[at].first, "unknown trailing key");
  }
  return std::nullopt;
}

std::optional<ArtifactError> validate_campaign_aggregate_json(
    std::string_view text) {
  ArtifactError parse_err;
  const auto doc = parse_restricted_json(text, &parse_err);
  if (!doc) {
    return err("aggregate", parse_err.where + ": " + parse_err.message);
  }
  std::size_t at = 0;
  if (auto e = check_artifact_header(*doc, "aggregate",
                                     "campaign_aggregate", &at)) {
    return e;
  }
  if (auto e = check_campaign_identity(*doc, "aggregate", &at)) return e;
  if (at + 1 != doc->members.size() || doc->members[at].first != "metrics") {
    return err("aggregate.metrics", "must be the final key");
  }
  const JsonValue& metrics = doc->members[at].second;
  if (metrics.kind != JsonValue::Kind::kObject || metrics.members.empty()) {
    return err("aggregate.metrics", "expected a non-empty object");
  }
  for (const auto& [name, m] : metrics.members) {
    const std::string where = "aggregate.metrics." + name;
    if (m.kind != JsonValue::Kind::kObject) {
      return err(where, "expected an object");
    }
    const auto keys = aggregate_metric_member_keys();
    if (m.members.size() != keys.size()) {
      return err(where, "expected exactly " + std::to_string(keys.size()) +
                            " members");
    }
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (m.members[i].first != keys[i]) {
        return err(where + "." + m.members[i].first,
                   std::string("expected key \"") + keys[i] +
                       "\" at this position");
      }
      if (auto e =
              check_number(m.members[i].second, where + "." + keys[i],
                           keys[i] == std::string_view("count"))) {
        return e;
      }
    }
    if (m.find("count")->number < 1.0) {
      return err(where + ".count", "must be >= 1");
    }
  }
  return std::nullopt;
}

std::optional<ArtifactError> validate_netdesign_front_json(
    std::string_view text) {
  ArtifactError parse_err;
  const auto doc = parse_restricted_json(text, &parse_err);
  if (!doc) {
    return err("front", parse_err.where + ": " + parse_err.message);
  }
  std::size_t at = 0;
  if (auto e = check_artifact_header(*doc, "front", "netdesign_front",
                                     &at)) {
    return e;
  }
  for (const NetdesignFieldSpec& f : netdesign_identity_specs()) {
    if (at >= doc->members.size() || doc->members[at].first != f.key) {
      return err(std::string("front.") + f.key, "missing or out of order");
    }
    if (auto e = check_netdesign_field(doc->members[at].second,
                                       std::string("front.") + f.key,
                                       f.kind)) {
      return e;
    }
    ++at;
  }
  if (at + 1 != doc->members.size() || doc->members[at].first != "points") {
    return err("front.points", "must be the final key");
  }
  const JsonValue& points = doc->members[at].second;
  if (points.kind != JsonValue::Kind::kObject || points.members.empty()) {
    return err("front.points", "expected a non-empty object");
  }
  long long prev_k = 0;
  for (const auto& [key, point] : points.members) {
    const std::string where = "front.points." + key;
    if (key.size() < 5 || key.compare(0, 2, "k_") != 0) {
      return err(where, "point keys must look like \"k_004\"");
    }
    long long k = 0;
    for (std::size_t i = 2; i < key.size(); ++i) {
      if (key[i] < '0' || key[i] > '9') {
        return err(where, "point keys must look like \"k_004\"");
      }
      k = k * 10 + (key[i] - '0');
    }
    if (k <= prev_k) {
      return err(where, "point keys must be strictly ascending");
    }
    prev_k = k;
    if (auto e = check_netdesign_point(point, where)) return e;
    if (static_cast<long long>(point.find("stations")->number) != k) {
      return err(where + ".stations",
                 "must equal the K encoded in the point key");
    }
  }
  return std::nullopt;
}

std::optional<ArtifactError> validate_checkpoint_header_json(
    std::string_view text) {
  ArtifactError parse_err;
  const auto doc = parse_restricted_json(text, &parse_err);
  if (!doc) {
    return err("checkpoint", parse_err.where + ": " + parse_err.message);
  }
  std::size_t at = 0;
  if (auto e = check_artifact_header(*doc, "checkpoint", "checkpoint",
                                     &at)) {
    return e;
  }
  for (const NetdesignFieldSpec& f : checkpoint_header_specs()) {
    if (at >= doc->members.size() || doc->members[at].first != f.key) {
      return err(std::string("checkpoint.") + f.key,
                 "missing or out of order");
    }
    if (auto e = check_netdesign_field(doc->members[at].second,
                                       std::string("checkpoint.") + f.key,
                                       f.kind)) {
      return e;
    }
    ++at;
  }
  if (at != doc->members.size()) {
    return err("checkpoint." + doc->members[at].first,
               "unknown trailing key");
  }
  const auto field = [&doc](std::string_view key) {
    return doc->find(key)->number;
  };
  for (const char* positive : {"num_satellites", "num_stations", "steps"}) {
    if (field(positive) < 1.0) {
      return err(std::string("checkpoint.") + positive, "must be >= 1");
    }
  }
  if (field("step_seconds") <= 0.0 || field("duration_hours") <= 0.0) {
    return err("checkpoint.step_seconds", "grid must be positive");
  }
  if (field("step_index") < 0.0 || field("step_index") > field("steps")) {
    return err("checkpoint.step_index", "must be in [0, steps]");
  }
  for (const char* crc : {"options_crc32", "payload_crc32"}) {
    const double v = field(crc);
    if (v < 0.0 || v > 4294967295.0) {
      return err(std::string("checkpoint.") + crc,
                 "must fit an unsigned 32-bit value");
    }
  }
  if (field("payload_bytes") < 0.0) {
    return err("checkpoint.payload_bytes", "must be >= 0");
  }
  const auto names = checkpoint_section_names();
  if (field("sections") != static_cast<double>(names.size())) {
    return err("checkpoint.sections",
               "expected " + std::to_string(names.size()) + " sections");
  }
  return std::nullopt;
}

// --- Writers (declared in report.h; the schema table above is the
// contract they emit) -------------------------------------------------------

void write_timeseries_csv(std::ostream& out, const SimulationResult& result) {
  out << timeseries_csv_header() << "\n";
  char buf[128];
  for (const StepRecord& r : result.timeseries) {
    std::snprintf(buf, sizeof(buf), "%.4f,%.6f,%.3f,%d,%lld\n", r.hours,
                  r.delivered_bytes_cum / 1e12, r.backlog_bytes_total / 1e9,
                  r.active_links, static_cast<long long>(r.failed_cum));
    out << buf;
  }
}

namespace {

/// One tenant row of the summary "tenants" object, iterating
/// tenant_field_specs so the writer and validator share the key list.
/// Tenant names are emitted unescaped: validation restricts them to
/// [a-z][a-z0-9_]*, which needs no JSON escaping.
void write_tenant_object(std::ostream& out, const TenantOutcome& t) {
  char buf[192];
  const auto specs = tenant_field_specs();
  out << "{";
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const TenantFieldSpec& f = specs[i];
    const std::string_view key = f.key;
    if (key == "name") {
      std::snprintf(buf, sizeof(buf), "\"%s\": \"%s\"", f.key,
                    t.name.c_str());
    } else if (key == "num_satellites") {
      std::snprintf(buf, sizeof(buf), "\"%s\": %lld", f.key,
                    static_cast<long long>(t.num_satellites));
    } else if (key == "latency_minutes") {
      const util::SampleSet& s = t.latency_minutes;
      if (s.empty()) {
        std::snprintf(buf, sizeof(buf), "\"%s\": null", f.key);
      } else {
        std::snprintf(buf, sizeof(buf),
                      "\"%s\": {\"median\": %.3f, \"p90\": %.3f, "
                      "\"p99\": %.3f, \"mean\": %.3f, \"count\": %zu}",
                      f.key, s.percentile(50.0), s.percentile(90.0),
                      s.percentile(99.0), s.mean(), s.size());
      }
    } else {
      double v = 0.0;
      if (key == "weight") v = t.weight;
      else if (key == "delivered_tb") v = t.delivered_bytes / 1e12;
      else if (key == "entitlement") v = t.entitlement;
      else if (key == "share") v = t.share;
      else if (key == "sla_latency_minutes") v = t.sla_latency_minutes;
      else if (key == "sla_attainment") v = t.sla_attainment;
      else DGS_CHECK(false, "unmapped tenant summary field");
      std::snprintf(buf, sizeof(buf), "\"%s\": %.6f", f.key, v);
    }
    out << buf << (i + 1 < specs.size() ? ", " : "");
  }
  out << "}";
}

}  // namespace

void write_summary_json(std::ostream& out, const SimulationResult& result) {
  out << "{\n";
  char buf[192];
  const auto specs = summary_field_specs();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const SummaryFieldSpec& f = specs[i];
    switch (f.kind) {
      case kInt:
        std::snprintf(buf, sizeof(buf), "  \"%s\": %lld", f.key,
                      int_field(result, f.key));
        out << buf;
        break;
      case kReal:
        std::snprintf(buf, sizeof(buf), "  \"%s\": %.6f", f.key,
                      real_field(result, f.key));
        out << buf;
        break;
      case kStats: {
        const util::SampleSet& s = stats_field(result, f.key);
        if (s.empty()) {
          std::snprintf(buf, sizeof(buf), "  \"%s\": null", f.key);
        } else {
          std::snprintf(buf, sizeof(buf),
                        "  \"%s\": {\"median\": %.3f, \"p90\": %.3f, "
                        "\"p99\": %.3f, \"mean\": %.3f, \"count\": %zu}",
                        f.key, s.percentile(50.0), s.percentile(90.0),
                        s.percentile(99.0), s.mean(), s.size());
        }
        out << buf;
        break;
      }
      case kTenants: {
        out << "  \"" << f.key << "\": ";
        if (result.per_tenant.empty()) {
          out << "null";
        } else {
          out << "{";
          for (std::size_t t = 0; t < result.per_tenant.size(); ++t) {
            std::snprintf(buf, sizeof(buf), "\"t_%03zu\": ", t);
            out << buf;
            write_tenant_object(out, result.per_tenant[t]);
            if (t + 1 < result.per_tenant.size()) out << ", ";
          }
          out << "}";
        }
        break;
      }
    }
    out << (i + 1 < specs.size() ? ",\n" : "\n");
  }
  out << "}\n";
}

}  // namespace dgs::core
