// dgslint fixture: a miniature SummaryFieldSpec table so the R5
// summary-key cross-check has something to parse under this root.
struct SummaryFieldSpec {
  const char* key;
  int kind;
};
constexpr int kInt = 0;
constexpr int kReal = 1;
constexpr int kStats = 2;

constexpr SummaryFieldSpec kSummaryFields[] = {
    {"schema_version", kInt},
    {"delivered_fraction", kReal},
    {"latency_minutes", kStats},
};
