# Empty dependencies file for abl_weather.
# This may be replaced when dependencies are built.
