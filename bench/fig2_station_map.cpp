// Figure 2 — the DGS ground-station footprint.
//
// The paper's Fig. 2 is a world map of the 173 SatNOGS-derived stations.
// This bench renders the synthetic substitute population as an ASCII world
// map plus per-region counts, and emits a CSV (stdout section) for external
// plotting.
#include <algorithm>
#include <array>
#include <cstdio>
#include <map>

#include "bench/common.h"
#include "src/util/angles.h"

int main() {
  using namespace dgs;
  using namespace dgs::bench;
  using util::rad2deg;

  std::printf(
      "=== Fig. 2: DGS station footprint (synthetic SatNOGS-like) ===\n\n");
  groundseg::NetworkOptions opts;
  const auto stations = groundseg::generate_dgs_stations(opts);

  // ASCII map: 60 columns x 24 rows covering lon [-180, 180], lat [72, -60].
  constexpr int kCols = 72, kRows = 23;
  std::array<std::array<char, kCols>, kRows> grid;
  for (auto& row : grid) row.fill('.');
  int tx_count = 0;
  for (const auto& gs : stations) {
    const double lat = rad2deg(gs.location.latitude_rad);
    const double lon = rad2deg(gs.location.longitude_rad);
    const int col = std::clamp(
        static_cast<int>((lon + 180.0) / 360.0 * kCols), 0, kCols - 1);
    const int row = std::clamp(
        static_cast<int>((72.0 - lat) / 132.0 * kRows), 0, kRows - 1);
    // TX-capable stations render as 'T' and win over receive-only 'o'.
    if (gs.tx_capable) {
      grid[row][col] = 'T';
      ++tx_count;
    } else if (grid[row][col] != 'T') {
      grid[row][col] = 'o';
    }
  }
  std::printf("  lat 72N..60S, lon 180W..180E  "
              "('o' receive-only, 'T' transmit-capable)\n");
  for (const auto& row : grid) {
    std::printf("  %.*s\n", kCols, row.data());
  }

  // Region histogram.
  std::map<std::string, int> by_region;
  for (const auto& gs : stations) {
    by_region[gs.name.substr(0, gs.name.find(" #"))]++;
  }
  std::printf("\n  Stations by region (%zu total, %d transmit-capable):\n",
              stations.size(), tx_count);
  for (const auto& [region, count] : by_region) {
    std::printf("    %-28s %3d\n", region.c_str(), count);
  }

  // CSV for external plotting.
  std::printf("\n  CSV: id,lat_deg,lon_deg,alt_km,tx_capable,min_el_deg\n");
  for (const auto& gs : stations) {
    std::printf("  %d,%.4f,%.4f,%.3f,%d,%.1f\n", gs.id,
                rad2deg(gs.location.latitude_rad),
                rad2deg(gs.location.longitude_rad), gs.location.altitude_km,
                gs.tx_capable ? 1 : 0, rad2deg(gs.min_elevation_rad));
  }
  return 0;
}
