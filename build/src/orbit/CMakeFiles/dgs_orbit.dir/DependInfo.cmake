
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/orbit/frames.cpp" "src/orbit/CMakeFiles/dgs_orbit.dir/frames.cpp.o" "gcc" "src/orbit/CMakeFiles/dgs_orbit.dir/frames.cpp.o.d"
  "/root/repo/src/orbit/groundtrack.cpp" "src/orbit/CMakeFiles/dgs_orbit.dir/groundtrack.cpp.o" "gcc" "src/orbit/CMakeFiles/dgs_orbit.dir/groundtrack.cpp.o.d"
  "/root/repo/src/orbit/kepler.cpp" "src/orbit/CMakeFiles/dgs_orbit.dir/kepler.cpp.o" "gcc" "src/orbit/CMakeFiles/dgs_orbit.dir/kepler.cpp.o.d"
  "/root/repo/src/orbit/numerical.cpp" "src/orbit/CMakeFiles/dgs_orbit.dir/numerical.cpp.o" "gcc" "src/orbit/CMakeFiles/dgs_orbit.dir/numerical.cpp.o.d"
  "/root/repo/src/orbit/passes.cpp" "src/orbit/CMakeFiles/dgs_orbit.dir/passes.cpp.o" "gcc" "src/orbit/CMakeFiles/dgs_orbit.dir/passes.cpp.o.d"
  "/root/repo/src/orbit/sgp4.cpp" "src/orbit/CMakeFiles/dgs_orbit.dir/sgp4.cpp.o" "gcc" "src/orbit/CMakeFiles/dgs_orbit.dir/sgp4.cpp.o.d"
  "/root/repo/src/orbit/sun.cpp" "src/orbit/CMakeFiles/dgs_orbit.dir/sun.cpp.o" "gcc" "src/orbit/CMakeFiles/dgs_orbit.dir/sun.cpp.o.d"
  "/root/repo/src/orbit/tle.cpp" "src/orbit/CMakeFiles/dgs_orbit.dir/tle.cpp.o" "gcc" "src/orbit/CMakeFiles/dgs_orbit.dir/tle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dgs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
