# Empty dependencies file for dgs_backend.
# This may be replaced when dependencies are built.
