#include "src/core/visibility.h"

#include <algorithm>
#include <cmath>

#include "src/obs/trace.h"
#include "src/orbit/frames.h"
#include "src/util/check.h"

namespace dgs::core {

namespace {

// Spatial-index constants (DESIGN.md §14).  Bands partition geocentric
// latitude [-pi/2, pi/2]; the cull margin absorbs the deviation between a
// station's geodetic normal (the elevation reference) and its geocentric
// direction (the cone-test axis), which is at most ~0.0034 rad on the
// WGS-84 ellipsoid.
constexpr int kNumBands = 64;
constexpr double kCullMarginRad = 0.004;
constexpr double kPi = 3.14159265358979323846;

int latitude_band(double geocentric_lat_rad) {
  const double t = (geocentric_lat_rad + kPi / 2.0) / kPi;
  const int band = static_cast<int>(t * kNumBands);
  return std::clamp(band, 0, kNumBands - 1);
}

/// Maximum geocentric separation (station direction vs satellite
/// direction) at which a satellite of radius `r_km` can still sit at
/// elevation >= `el_rad` above a station of radius `station_radius_km`:
/// psi_max = acos((R / r) cos el) - el, exact for point geometry.
double max_central_angle(double station_radius_km, double r_km,
                         double el_rad, double cos_el) {
  const double x =
      std::clamp(station_radius_km / r_km * cos_el, -1.0, 1.0);
  return std::acos(x) - el_rad;
}

orbit::Sgp4Batch make_batch(
    const std::vector<groundseg::SatelliteConfig>& sats) {
  std::vector<orbit::Tle> tles;
  tles.reserve(sats.size());
  for (const groundseg::SatelliteConfig& sc : sats) tles.push_back(sc.tle);
  return orbit::Sgp4Batch(tles);
}

}  // namespace

VisibilityEngine::VisibilityEngine(
    const std::vector<groundseg::SatelliteConfig>& sats,
    const std::vector<groundseg::GroundStation>& stations,
    const weather::WeatherProvider* forecast_weather)
    : sats_(&sats), stations_(&stations), wx_(forecast_weather),
      batch_(make_batch(sats)) {
  geom_.reserve(stations.size());
  for (const groundseg::GroundStation& gs : stations) {
    StationGeom g;
    g.ecef = orbit::geodetic_to_ecef(gs.location);
    const double clat = std::cos(gs.location.latitude_rad);
    g.up = {clat * std::cos(gs.location.longitude_rad),
            clat * std::sin(gs.location.longitude_rad),
            std::sin(gs.location.latitude_rad)};
    g.radius_km = g.ecef.norm();
    g.n = g.ecef * (1.0 / g.radius_km);
    g.geocentric_lat_rad = std::asin(g.n.z);
    g.lon_rad = std::atan2(g.n.y, g.n.x);
    g.el_cull_rad = gs.min_elevation_rad - kCullMarginRad;
    g.cos_el_cull = std::cos(g.el_cull_rad);
    geom_.push_back(g);
  }
}

void VisibilityEngine::set_metrics(obs::Registry* registry) {
  metrics_ = registry;
  if (registry == nullptr) {
    propagations_ = nullptr;
    link_budgets_ = nullptr;
    contact_edges_ = nullptr;
    cull_candidates_ = nullptr;
    cull_precise_ = nullptr;
    return;
  }
  propagations_ = registry->counter(
      "dgs_vis_propagations_total",
      "Satellite propagations (SGP4 + TEME->ECEF) computed");
  link_budgets_ = registry->counter(
      "dgs_vis_link_budgets_total",
      "Predictive link budgets evaluated over visible pairs");
  contact_edges_ = registry->counter(
      "dgs_vis_contact_edges_total",
      "Contact-graph edges produced (budget closed)");
  cull_candidates_ = registry->counter(
      "dgs_vis_cull_candidates_total",
      "Sat x station pairs examined by the spatial index (band survivors)");
  cull_precise_ = registry->counter(
      "dgs_vis_cull_precise_total",
      "Pairs passing the cone cull and given the precise elevation test");
}

void VisibilityEngine::enable_geometry_cache(const util::Epoch& base,
                                             double step_seconds,
                                             int capacity_steps,
                                             std::size_t max_bytes) {
  cache_ = std::make_unique<GeometryCache>(base, step_seconds, capacity_steps,
                                           metrics_, max_bytes);
}

util::Vec3 VisibilityEngine::satellite_ecef(int sat,
                                            const util::Epoch& when) const {
  const orbit::TemeState st = batch_.propagate_one(sat, when);
  return orbit::teme_to_ecef(st.position_km, when);
}

bool VisibilityEngine::visible(int sat, int station,
                               const util::Epoch& when) const {
  const util::Vec3 sat_ecef = satellite_ecef(sat, when);
  const StationGeom& g = geom_.at(station);
  const util::Vec3 rho = sat_ecef - g.ecef;
  const double el = std::asin(rho.dot(g.up) / rho.norm());
  return el >= (*stations_)[station].min_elevation_rad;
}

void VisibilityEngine::sweep_brute(StepGeometry& out) const {
  const auto num_stations = static_cast<std::int64_t>(stations_->size());
  // Sweep each station's elevation mask over all satellites.  Stations
  // are independent; each writes only its own visibility list, in
  // ascending satellite order — exactly the serial sweep's order.
  const auto sweep = [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t g = begin; g < end; ++g) {
      const groundseg::GroundStation& gs =
          (*stations_)[static_cast<std::size_t>(g)];
      const StationGeom& geom = geom_[static_cast<std::size_t>(g)];
      std::vector<VisibleSat>& vis =
          out.per_station[static_cast<std::size_t>(g)];
      vis.clear();
      for (std::size_t s = 0; s < out.sat_ecef.size(); ++s) {
        if (!gs.constraints.allows(s)) continue;
        const util::Vec3 rho = out.sat_ecef[s] - geom.ecef;
        const double range = rho.norm();
        const double el = std::asin(rho.dot(geom.up) / range);
        if (el < gs.min_elevation_rad) continue;
        vis.push_back(VisibleSat{static_cast<int>(s), el, range});
      }
    }
  };
  if (pool_ != nullptr) {
    pool_->parallel_for(num_stations, sweep);
  } else {
    sweep(0, num_stations);
  }
}

void VisibilityEngine::sweep_indexed(StepGeometry& out) const {
  const std::size_t num_sats = out.sat_ecef.size();
  const auto num_stations = static_cast<std::int64_t>(stations_->size());
  if (num_stations == 0) return;

  // Per-satellite geocentric radius and the step-wide conservative radius
  // bound (psi_max grows with r, so using r_max for every station only
  // widens its cone).  Computed serially so r_max is trivially
  // thread-count independent.
  radius_scratch_.resize(num_sats);
  double r_max = 0.0;
  for (std::size_t s = 0; s < num_sats; ++s) {
    radius_scratch_[s] = out.sat_ecef[s].norm();
    r_max = std::max(r_max, radius_scratch_[s]);
  }

  // Scatter each satellite into the single band holding its geocentric
  // latitude, then sort every band by (longitude, id) so stations can
  // binary-search the longitude window of their visibility cap.  A
  // station's cap (geocentric radius psi_max around its direction n)
  // bounds both coordinates: |lat_sat - lat_station| <= psi_max, and,
  // when the cap stays clear of the poles, |lon_sat - lon_station| <=
  // asin(sin psi_max / cos lat_station) — the spherical-cap bounding box.
  // Band lists keep their capacity across steps.
  if (band_scratch_.empty()) band_scratch_.resize(kNumBands);
  for (std::vector<BandSat>& band : band_scratch_) band.clear();
  for (std::size_t s = 0; s < num_sats; ++s) {
    const util::Vec3& p = out.sat_ecef[s];
    const double lat = std::asin(p.z / radius_scratch_[s]);
    const double lon = std::atan2(p.y, p.x);
    band_scratch_[static_cast<std::size_t>(latitude_band(lat))].push_back(
        BandSat{lon, static_cast<int>(s)});
  }
  for (std::vector<BandSat>& band : band_scratch_) {
    std::sort(band.begin(), band.end(),
              [](const BandSat& a, const BandSat& b) {
                if (a.lon_rad != b.lon_rad) return a.lon_rad < b.lon_rad;
                return a.sat < b.sat;
              });
  }

  // Per-station cone threshold at the conservative radius, then the
  // identical precise elevation test on survivors.  The cull only ever
  // removes pairs the precise test would reject (DESIGN.md §14), so the
  // lists match the brute-force sweep bit for bit.
  const auto sweep = [&](std::int64_t begin, std::int64_t end) {
    std::int64_t candidates = 0;
    std::int64_t precise = 0;
    for (std::int64_t g = begin; g < end; ++g) {
      const auto gi = static_cast<std::size_t>(g);
      const groundseg::GroundStation& gs = (*stations_)[gi];
      const StationGeom& geom = geom_[gi];
      std::vector<VisibleSat>& vis = out.per_station[gi];
      vis.clear();
      const double psi_max = max_central_angle(
          geom.radius_km, r_max, geom.el_cull_rad, geom.cos_el_cull);
      const double cos_psi_max = std::cos(psi_max);
      const int lo = latitude_band(geom.geocentric_lat_rad - psi_max);
      const int hi = latitude_band(geom.geocentric_lat_rad + psi_max);
      // Longitude half-width of the cap's bounding box; the whole circle
      // when the cap reaches a pole.  The fp slack in lat/lon round-trips
      // is absorbed by the kCullMarginRad already inside psi_max.
      double lon_hw = kPi;
      if (std::abs(geom.geocentric_lat_rad) + psi_max < kPi / 2.0) {
        lon_hw = std::asin(std::min(
            1.0, std::sin(psi_max) / std::cos(geom.geocentric_lat_rad)));
      }
      const auto scan = [&](const std::vector<BandSat>& cand,
                            double lon_lo, double lon_hi) {
        auto first = std::lower_bound(
            cand.begin(), cand.end(), lon_lo,
            [](const BandSat& e, double v) { return e.lon_rad < v; });
        for (; first != cand.end() && first->lon_rad <= lon_hi; ++first) {
          ++candidates;
          const auto s = static_cast<std::size_t>(first->sat);
          if (!gs.constraints.allows(s)) continue;
          // Cone cull: geocentric separation vs the widened visibility
          // cone.  cos(psi) = n . sat_ecef / r, compared multiplied out.
          if (geom.n.dot(out.sat_ecef[s]) <
              cos_psi_max * radius_scratch_[s]) {
            continue;
          }
          ++precise;
          const util::Vec3 rho = out.sat_ecef[s] - geom.ecef;
          const double range = rho.norm();
          const double el = std::asin(rho.dot(geom.up) / range);
          if (el < gs.min_elevation_rad) continue;
          vis.push_back(VisibleSat{first->sat, el, range});
        }
      };
      for (int b = lo; b <= hi; ++b) {
        const std::vector<BandSat>& cand =
            band_scratch_[static_cast<std::size_t>(b)];
        if (lon_hw >= kPi) {
          scan(cand, -kPi, kPi);
          continue;
        }
        const double w_lo = geom.lon_rad - lon_hw;
        const double w_hi = geom.lon_rad + lon_hw;
        if (w_lo < -kPi) {  // window wraps the date line westward
          scan(cand, w_lo + 2.0 * kPi, kPi);
          scan(cand, -kPi, w_hi);
        } else if (w_hi > kPi) {  // wraps eastward
          scan(cand, w_lo, kPi);
          scan(cand, -kPi, w_hi - 2.0 * kPi);
        } else {
          scan(cand, w_lo, w_hi);
        }
      }
      // Survivors arrive grouped by band; restore the brute-force
      // (ascending satellite) order.  Per-satellite values are order-
      // independent, so this is a pure permutation.
      std::sort(vis.begin(), vis.end(),
                [](const VisibleSat& a, const VisibleSat& b) {
                  return a.sat < b.sat;
                });
    }
    // Whole-chunk integer adds: exact for any shard assignment.
    if (cull_candidates_ != nullptr && candidates > 0) {
      cull_candidates_->inc(static_cast<double>(candidates));
    }
    if (cull_precise_ != nullptr && precise > 0) {
      cull_precise_->inc(static_cast<double>(precise));
    }
  };
  if (pool_ != nullptr) {
    pool_->parallel_for(num_stations, sweep);
  } else {
    sweep(0, num_stations);
  }
}

void VisibilityEngine::compute_step_geometry(const util::Epoch& when,
                                             StepGeometry& out) const {
  DGS_TRACE_SPAN("vis.geometry");
  out.sat_ecef.resize(static_cast<std::size_t>(batch_.size()));
  out.per_station.resize(stations_->size());

  // Propagate every satellite once for this instant: batched SGP4 in SoA
  // layout, one shared GMST rotation, chunk-tiled over the pool.
  // Per-index writes keep the result thread-count independent.
  batch_.positions_ecef(when, out.sat_ecef, pool_);
  if (propagations_ != nullptr && batch_.size() > 0) {
    propagations_->inc(static_cast<double>(batch_.size()));
  }

  if (spatial_index_) {
    sweep_indexed(out);
  } else {
    sweep_brute(out);
  }
}

const StepGeometry* VisibilityEngine::step_geometry(
    const util::Epoch& when) const {
  if (cache_ != nullptr) {
    if (const std::optional<std::int64_t> key = cache_->step_key(when)) {
      if (const StepGeometry* hit = cache_->find(*key)) return hit;
      StepGeometry& slot = cache_->emplace(*key);
      compute_step_geometry(when, slot);
      return &slot;
    }
  }
  // Off-grid / uncached steps reuse the engine scratch so the per-step
  // vectors keep their capacity across calls.
  compute_step_geometry(when, scratch_geometry_);
  return &scratch_geometry_;
}

std::vector<ContactEdge> VisibilityEngine::contacts(
    const util::Epoch& when, std::span<const double> forecast_lead_s,
    std::span<const char> station_down) const {
  DGS_ENSURE(forecast_lead_s.empty() ||
                 forecast_lead_s.size() == sats_->size(),
             "forecast_lead_s size=" << forecast_lead_s.size()
                                     << " sats=" << sats_->size());
  DGS_ENSURE(station_down.empty() || station_down.size() == stations_->size(),
             "station_down size=" << station_down.size() << " stations="
                                  << stations_->size());
  DGS_TRACE_SPAN("vis.contacts");

  const StepGeometry* geo = step_geometry(when);

  // Weather sampling and link budgets depend on the forecast lead and the
  // outage mask, so they are evaluated per call (never cached).  Each
  // station produces its own edge list (a scratch slot that keeps its
  // capacity across calls); concatenating them in station order
  // reproduces the serial station-major, satellite-minor order.
  edge_scratch_.resize(stations_->size());
  for (std::vector<ContactEdge>& v : edge_scratch_) v.clear();
  std::vector<std::vector<ContactEdge>>& per_station = edge_scratch_;
  const auto budgets = [&](std::int64_t begin, std::int64_t end) {
    std::int64_t budgets_evaluated = 0;
    std::int64_t edges_produced = 0;
    for (std::int64_t gi = begin; gi < end; ++gi) {
      const auto g = static_cast<std::size_t>(gi);
      if (!station_down.empty() && station_down[g]) continue;
      const groundseg::GroundStation& gs = (*stations_)[g];

      // Zero-lead forecast is shared by all satellites at this station;
      // cache.
      std::optional<weather::WeatherSample> station_wx;

      for (const VisibleSat& v : geo->per_station[g]) {
        const auto s = static_cast<std::size_t>(v.sat);
        weather::WeatherSample wx;  // defaults to clear sky
        if (wx_ != nullptr) {
          const double lead =
              forecast_lead_s.empty() ? 0.0 : forecast_lead_s[s];
          if (lead <= 0.0) {
            if (!station_wx) {
              station_wx = wx_->actual(gs.location.latitude_rad,
                                       gs.location.longitude_rad, when);
            }
            wx = *station_wx;
          } else {
            wx = wx_->forecast(gs.location.latitude_rad,
                               gs.location.longitude_rad, when, lead);
          }
        }

        link::PathConditions path;
        path.range_km = v.range_km;
        path.elevation_rad = v.elevation_rad;
        path.site_latitude_rad = gs.location.latitude_rad;
        path.site_altitude_km = gs.location.altitude_km;
        path.rain_rate_mm_h = wx.rain_rate_mm_h;
        path.cloud_liquid_kg_m2 = wx.cloud_liquid_kg_m2;

        // Beamforming stations split aperture power across their beams;
        // model the conservative full-split penalty by scaling the
        // aperture efficiency down by the beam count.
        link::ReceiveSystem rx = gs.receiver;
        if (gs.beam_count > 1) {
          rx.aperture_efficiency /= gs.beam_count;
        }
        const link::LinkBudget b =
            link::evaluate_link((*sats_)[s].radio, rx, path);
        ++budgets_evaluated;
        if (!b.closes()) continue;
        ++edges_produced;

        ContactEdge e;
        e.sat = v.sat;
        e.station = static_cast<int>(g);
        e.elevation_rad = v.elevation_rad;
        e.range_km = v.range_km;
        e.predicted_rate_bps = b.data_rate_bps;
        e.modcod = b.modcod;
        per_station[g].push_back(e);
      }
    }
    // One whole-chunk integer add per counter: lock-free, and exact for
    // any shard assignment (DESIGN.md §10 determinism rules).
    if (link_budgets_ != nullptr && budgets_evaluated > 0) {
      link_budgets_->inc(static_cast<double>(budgets_evaluated));
    }
    if (contact_edges_ != nullptr && edges_produced > 0) {
      contact_edges_->inc(static_cast<double>(edges_produced));
    }
  };
  if (pool_ != nullptr) {
    pool_->parallel_for(static_cast<std::int64_t>(stations_->size()),
                        budgets);
  } else {
    budgets(0, static_cast<std::int64_t>(stations_->size()));
  }

  std::size_t total = 0;
  for (const std::vector<ContactEdge>& v : per_station) total += v.size();
  std::vector<ContactEdge> edges;
  edges.reserve(total);
  for (const std::vector<ContactEdge>& v : per_station) {
    edges.insert(edges.end(), v.begin(), v.end());
  }
  return edges;
}

}  // namespace dgs::core
