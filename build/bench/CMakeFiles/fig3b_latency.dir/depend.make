# Empty dependencies file for fig3b_latency.
# This may be replaced when dependencies are built.
