#include "src/link/budget.h"

#include <cmath>
#include <stdexcept>

#include "src/link/clouds.h"
#include "src/link/fspl.h"
#include "src/link/gases.h"
#include "src/link/rain.h"
#include "src/util/constants.h"

namespace dgs::link {

LinkBudget evaluate_link(const RadioSpec& radio, const ReceiveSystem& rx,
                         const PathConditions& path) {
  if (radio.channels < 1) {
    throw std::invalid_argument("evaluate_link: channels must be >= 1");
  }
  if (path.range_km <= 0.0) {
    throw std::invalid_argument("evaluate_link: non-positive range");
  }

  LinkBudget b;
  if (path.elevation_rad <= 0.0) return b;  // Below the horizon: no link.

  const double f_ghz = radio.frequency_hz / 1e9;
  b.fspl_db = fspl_db(path.range_km, radio.frequency_hz);
  b.rain_db = rain_attenuation_db(f_ghz, path.rain_rate_mm_h,
                                  path.elevation_rad, path.site_latitude_rad,
                                  path.site_altitude_km);
  b.cloud_db = cloud_attenuation_db(f_ghz, path.cloud_liquid_kg_m2,
                                    path.elevation_rad);
  b.gas_db = gaseous_attenuation_db(f_ghz, path.elevation_rad);
  b.total_atmos_db = b.rain_db + b.cloud_db + b.gas_db;

  b.g_over_t_db = g_over_t_db(rx, radio.frequency_hz, b.total_atmos_db);

  // C/N0 [dBHz] = EIRP - FSPL - A_atmos + G/T - 10log10(k) - L_impl.
  b.cn0_dbhz = radio.eirp_dbw - b.fspl_db - b.total_atmos_db + b.g_over_t_db -
               util::kBoltzmannDb - radio.implementation_loss_db;
  b.esn0_db = b.cn0_dbhz - 10.0 * std::log10(radio.symbol_rate_hz);

  b.modcod = select_modcod(b.esn0_db, radio.modcod_margin_db);
  if (b.modcod != nullptr) {
    b.data_rate_bps =
        bitrate_bps(*b.modcod, radio.symbol_rate_hz) * radio.channels;
  }
  return b;
}

}  // namespace dgs::link
