// Timeseries collection and report export.
#include <gtest/gtest.h>

#include <sstream>

#include "src/core/report.h"
#include "src/faults/profiles.h"
#include "tests/json_lite.h"

namespace dgs::core {
namespace {

const util::Epoch kT0(util::DateTime{2020, 11, 4, 0, 0, 0.0});

SimulationResult run_small(bool timeseries) {
  groundseg::NetworkOptions net;
  net.num_stations = 15;
  net.num_satellites = 8;
  net.seed = 13;
  const auto sats = groundseg::generate_constellation(net, kT0);
  const auto stations = groundseg::generate_dgs_stations(net);
  SimulationOptions opts;
  opts.start = kT0;
  opts.duration_hours = 4.0;
  opts.collect_timeseries = timeseries;
  return Simulator(sats, stations, nullptr, opts).run();
}

TEST(Timeseries, OffByDefault) {
  EXPECT_TRUE(run_small(false).timeseries.empty());
}

TEST(Timeseries, OneRecordPerStep) {
  const SimulationResult r = run_small(true);
  EXPECT_EQ(static_cast<std::int64_t>(r.timeseries.size()), r.steps);
}

TEST(Timeseries, CumulativeCurvesAreMonotone) {
  const SimulationResult r = run_small(true);
  double prev_delivered = -1.0;
  std::int64_t prev_failed = -1;
  double prev_hours = 0.0;
  for (const StepRecord& rec : r.timeseries) {
    EXPECT_GE(rec.delivered_bytes_cum, prev_delivered);
    EXPECT_GE(rec.failed_cum, prev_failed);
    EXPECT_GT(rec.hours, prev_hours);
    EXPECT_GE(rec.backlog_bytes_total, 0.0);
    prev_delivered = rec.delivered_bytes_cum;
    prev_failed = rec.failed_cum;
    prev_hours = rec.hours;
  }
  // Final record matches the summary totals.
  EXPECT_NEAR(r.timeseries.back().delivered_bytes_cum,
              r.total_delivered_bytes, 1.0);
  EXPECT_NEAR(r.timeseries.back().hours, 4.0, 1e-9);
}

TEST(Report, CsvRowPerStepPlusHeader) {
  const SimulationResult r = run_small(true);
  std::stringstream ss;
  write_timeseries_csv(ss, r);
  int lines = 0;
  std::string line;
  while (std::getline(ss, line)) {
    if (lines > 0) {
      EXPECT_EQ(std::count(line.begin(), line.end(), ','), 4) << line;
    }
    ++lines;
  }
  EXPECT_EQ(lines, static_cast<int>(r.timeseries.size()) + 1);
}

TEST(Report, JsonHasStableKeysAndBalancedBraces) {
  const SimulationResult r = run_small(false);
  std::stringstream ss;
  write_summary_json(ss, r);
  const std::string json = ss.str();
  for (const char* key :
       {"latency_minutes", "backlog_gb", "total_delivered_tb",
        "failed_assignments", "mean_station_utilization"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  // Empty sample sets serialize as null, not a crash.
  EXPECT_NE(json.find("\"urgent_latency_minutes\": null"),
            std::string::npos);
}

TEST(Report, SummaryJsonParses) {
  // Both with populated and with empty (null-serialized) sample sets.
  for (const bool timeseries : {false, true}) {
    const SimulationResult r = run_small(timeseries);
    std::stringstream ss;
    write_summary_json(ss, r);
    EXPECT_TRUE(dgs::testing::json_valid(ss.str())) << ss.str();
  }
  std::stringstream empty;
  write_summary_json(empty, SimulationResult{});
  EXPECT_TRUE(dgs::testing::json_valid(empty.str())) << empty.str();
}

TEST(Report, SummaryJsonKeysAreStable) {
  std::stringstream ss;
  write_summary_json(ss, run_small(false));
  const std::string json = ss.str();
  for (const char* key :
       {"latency_minutes", "urgent_latency_minutes", "backlog_gb",
        "ack_delay_minutes", "cloud_latency_minutes", "total_generated_tb",
        "total_delivered_tb", "total_dropped_tb", "delivered_fraction",
        "assignments", "failed_assignments", "wasted_transmission_tb",
        "requeued_tb", "slew_events", "mean_station_utilization", "steps"}) {
    EXPECT_NE(json.find("\"" + std::string(key) + "\":"),
              std::string::npos)
        << key;
  }
}

TEST(Report, CsvHeaderIsStable) {
  std::stringstream ss;
  write_timeseries_csv(ss, run_small(true));
  std::string header;
  ASSERT_TRUE(std::getline(ss, header));
  EXPECT_EQ(header,
            "hours,delivered_tb_cum,backlog_gb_total,active_links,"
            "failed_links_cum");
  EXPECT_EQ(header, std::string(timeseries_csv_header()));
}

// --- Run-artifact schema round trips (run_artifact.h is the contract the
// writers emit; the validators must accept every writer output) -------------

TEST(RunArtifactSchema, SummaryAndTimeseriesValidate) {
  const SimulationResult r = run_small(true);
  std::stringstream json, csv;
  write_summary_json(json, r);
  write_timeseries_csv(csv, r);
  std::string why;
  EXPECT_TRUE(dgs::testing::summary_schema_valid(json.str(), &why)) << why;
  EXPECT_TRUE(dgs::testing::timeseries_schema_valid(csv.str(), &why))
      << why;
  // A default (all-empty) result also honours the schema.
  std::stringstream empty;
  write_summary_json(empty, SimulationResult{});
  EXPECT_TRUE(dgs::testing::summary_schema_valid(empty.str(), &why)) << why;
}

TEST(RunArtifactSchema, SchemaVersionIsPinned) {
  ASSERT_EQ(kRunArtifactSchemaVersion, 2);
  std::stringstream ss;
  write_summary_json(ss, run_small(false));
  double version = 0.0;
  ASSERT_TRUE(dgs::testing::json_number_field(ss.str(), "schema_version",
                                              &version));
  EXPECT_EQ(static_cast<int>(version), kRunArtifactSchemaVersion);
}

// The round trip the CLI performs for every profile: make_profile ->
// validate -> simulate -> write_summary_json must produce a document the
// shared validator accepts, fault accounting included.
TEST(RunArtifactSchema, AllFaultProfilesRoundTrip) {
  groundseg::NetworkOptions net;
  net.num_stations = 15;
  net.num_satellites = 8;
  net.seed = 13;
  const auto sats = groundseg::generate_constellation(net, kT0);
  const auto stations = groundseg::generate_dgs_stations(net);
  for (const char* profile :
       {"none", "churn", "flaky-net", "brownout", "storm"}) {
    SimulationOptions opts;
    opts.start = kT0;
    opts.duration_hours = 2.0;
    opts.faults = faults::make_profile(profile, 7, net.num_stations);
    if (opts.faults.has_backhaul_faults()) {
      opts.station_backhaul_bps = 50e6;
    }
    ASSERT_FALSE(opts.validate(net.num_stations).has_value()) << profile;
    const SimulationResult r =
        Simulator(sats, stations, nullptr, opts).run();
    std::stringstream ss;
    write_summary_json(ss, r);
    std::string why;
    EXPECT_TRUE(dgs::testing::summary_schema_valid(ss.str(), &why))
        << profile << ": " << why;
    double version = 0.0;
    ASSERT_TRUE(dgs::testing::json_number_field(ss.str(),
                                                "schema_version", &version))
        << profile;
    EXPECT_EQ(static_cast<int>(version), kRunArtifactSchemaVersion)
        << profile;
  }
}

}  // namespace
}  // namespace dgs::core
