# Empty compiler generated dependencies file for micro_link.
# This may be replaced when dependencies are built.
