// Scoped trace spans with a Chrome-trace (chrome://tracing / Perfetto)
// JSON exporter.
//
//   void Simulator::step() {
//     DGS_TRACE_SPAN("sim.step");
//     ...
//   }
//
// Two kill switches:
//   * compile-time: configure with -DDGS_OBS_TRACING=OFF and the macro
//     expands to nothing — zero code, zero data;
//   * runtime: tracing defaults to off, and a disabled span costs exactly
//     one relaxed atomic load + branch (no clock read, no allocation).
//
// Span names must be string literals (the collector stores the pointer).
// Recording appends to a per-thread buffer guarded by that buffer's own
// (uncontended) mutex, so concurrent spans from pool workers are safe and
// TSan-clean; buffers outlive their threads, so spans recorded by a
// since-destroyed ThreadPool still export.  Timestamps are wall-clock
// (steady) — traces are a timing artifact and intentionally exempt from the
// determinism contract (DESIGN.md §10).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>

namespace dgs::obs {

namespace internal {
extern std::atomic<bool> g_trace_enabled;
/// Monotonic nanoseconds since an arbitrary process-local origin.
std::int64_t trace_now_ns();
/// Appends one complete span to the calling thread's buffer.
void trace_record(const char* name, std::int64_t start_ns,
                  std::int64_t dur_ns);
}  // namespace internal

/// Runtime kill switch (process-wide).  Spans opened while disabled record
/// nothing, even if tracing is re-enabled before they close.
inline bool trace_enabled() {
  return internal::g_trace_enabled.load(std::memory_order_relaxed);
}
void set_trace_enabled(bool enabled);

/// Serializes every recorded span as Chrome trace-event JSON (the
/// `{"traceEvents": [...]}` object form, "X" complete events, microsecond
/// timestamps) — loadable in chrome://tracing and Perfetto.
void write_chrome_trace(std::ostream& out);

/// Discards all recorded spans (buffers are retained for reuse).
void clear_trace();

/// Number of spans currently buffered (tests/telemetry).
std::size_t trace_span_count();

/// RAII span: records [construction, destruction) under `name`.
/// `name` must outlive the tracer (use string literals).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (!trace_enabled()) return;  // the single disabled-path branch
    name_ = name;
    start_ns_ = internal::trace_now_ns();
  }
  ~TraceSpan() {
    if (name_ == nullptr) return;
    internal::trace_record(name_, start_ns_,
                           internal::trace_now_ns() - start_ns_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  std::int64_t start_ns_ = 0;
};

}  // namespace dgs::obs

#define DGS_OBS_INTERNAL_CONCAT2(a, b) a##b
#define DGS_OBS_INTERNAL_CONCAT(a, b) DGS_OBS_INTERNAL_CONCAT2(a, b)

#ifndef DGS_OBS_NO_TRACING
#define DGS_TRACE_SPAN(name)                                      \
  const ::dgs::obs::TraceSpan DGS_OBS_INTERNAL_CONCAT(            \
      dgs_trace_span_, __LINE__)(name)
#else
#define DGS_TRACE_SPAN(name) static_cast<void>(0)
#endif
