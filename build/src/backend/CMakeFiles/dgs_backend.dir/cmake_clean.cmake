file(REMOVE_RECURSE
  "CMakeFiles/dgs_backend.dir/backhaul.cpp.o"
  "CMakeFiles/dgs_backend.dir/backhaul.cpp.o.d"
  "CMakeFiles/dgs_backend.dir/station_edge.cpp.o"
  "CMakeFiles/dgs_backend.dir/station_edge.cpp.o.d"
  "libdgs_backend.a"
  "libdgs_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgs_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
