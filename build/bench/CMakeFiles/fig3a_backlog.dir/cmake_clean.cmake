file(REMOVE_RECURSE
  "CMakeFiles/fig3a_backlog.dir/fig3a_backlog.cpp.o"
  "CMakeFiles/fig3a_backlog.dir/fig3a_backlog.cpp.o.d"
  "fig3a_backlog"
  "fig3a_backlog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3a_backlog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
