#include "src/netdesign/optimizer.h"

#include <algorithm>
#include <queue>

#include "src/util/check.h"

namespace dgs::netdesign {
namespace {

/// Dense cell index of (sat, step).
std::size_t cell_of(const ValueTable& table, int sat, int step) {
  return static_cast<std::size_t>(sat) *
             static_cast<std::size_t>(table.num_steps) +
         static_cast<std::size_t>(step);
}

/// Marginal gain of `entry` against the current per-cell best values.
double marginal_gain(const ValueTable& table, const CandidateEntry& entry,
                     const std::vector<double>& best) {
  double gain = 0.0;
  for (const PassValue& pass : entry.passes) {
    for (std::size_t j = 0; j < pass.step_values.size(); ++j) {
      const std::size_t cell =
          cell_of(table, pass.sat, pass.first_step + static_cast<int>(j));
      const double v = pass.step_values[j];
      if (v > best[cell]) gain += v - best[cell];
    }
  }
  return gain;
}

/// Folds `entry`'s values into the per-cell best (after accepting it).
void absorb(const ValueTable& table, const CandidateEntry& entry,
            std::vector<double>& best) {
  for (const PassValue& pass : entry.passes) {
    for (std::size_t j = 0; j < pass.step_values.size(); ++j) {
      const std::size_t cell =
          cell_of(table, pass.sat, pass.first_step + static_cast<int>(j));
      best[cell] = std::max(best[cell], pass.step_values[j]);
    }
  }
}

struct HeapEntry {
  double gain = 0.0;
  int candidate = 0;  ///< CandidateEntry::candidate, the tie-break.
  int stamp = 0;      ///< Selection size the gain was evaluated at.
};

/// Max-heap on gain; equal gains surface the smaller candidate id first,
/// which is what makes the selection independent of candidate iteration
/// order.
struct HeapLess {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    if (a.gain != b.gain) return a.gain < b.gain;
    return a.candidate > b.candidate;
  }
};

void validate_table(const ValueTable& table) {
  DGS_ENSURE(table.num_sats >= 1 && table.num_steps >= 1,
             "num_sats=" << table.num_sats
                         << " num_steps=" << table.num_steps);
  for (const CandidateEntry& entry : table.candidates) {
    DGS_ENSURE_GE(entry.candidate, 0);
    for (const PassValue& pass : entry.passes) {
      DGS_ENSURE(pass.sat >= 0 && pass.sat < table.num_sats,
                 "pass.sat=" << pass.sat);
      DGS_ENSURE(pass.first_step >= 0 &&
                     pass.first_step +
                             static_cast<int>(pass.step_values.size()) <=
                         table.num_steps,
                 "pass window [" << pass.first_step << ", "
                                 << pass.first_step +
                                        static_cast<int>(
                                            pass.step_values.size())
                                 << ") outside the grid");
    }
  }
}

}  // namespace

double eval_score(const EvalPoint& p) {
  return p.latency_p90_min + kBacklogWeightMinPerGb * p.backlog_end_gb;
}

GreedyResult lazy_greedy(const ValueTable& table, const GreedyOptions& opts,
                         obs::Registry* metrics) {
  validate_table(table);
  DGS_ENSURE_GE(opts.k, 1);
  DGS_ENSURE_GE(opts.budget, 0.0);

  obs::Counter* gain_evals = nullptr;
  if (metrics != nullptr) {
    gain_evals = metrics->counter(
        "dgs_netdesign_gain_evals_total",
        "Marginal-gain evaluations performed by the lazy-greedy queue");
  }

  // Entries sorted by candidate id so the initial heap content — and with
  // it every later tie-break — is independent of table.candidates order.
  std::vector<const CandidateEntry*> entries;
  entries.reserve(table.candidates.size());
  for (const CandidateEntry& e : table.candidates) entries.push_back(&e);
  std::sort(entries.begin(), entries.end(),
            [](const CandidateEntry* a, const CandidateEntry* b) {
              return a->candidate < b->candidate;
            });
  for (std::size_t i = 1; i < entries.size(); ++i) {
    DGS_ENSURE(entries[i - 1]->candidate != entries[i]->candidate,
               "duplicate candidate id " << entries[i]->candidate);
  }

  std::vector<double> best(static_cast<std::size_t>(table.num_sats) *
                               static_cast<std::size_t>(table.num_steps),
                           0.0);
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapLess> heap;
  for (const CandidateEntry* e : entries) {
    if (gain_evals != nullptr) gain_evals->inc();
    heap.push(HeapEntry{marginal_gain(table, *e, best), e->candidate, 0});
  }
  // candidate id -> position in `entries` (ids need not be dense).
  const auto entry_of = [&](int candidate) -> const CandidateEntry* {
    const auto it = std::lower_bound(
        entries.begin(), entries.end(), candidate,
        [](const CandidateEntry* e, int id) { return e->candidate < id; });
    DGS_CHECK(it != entries.end() && (*it)->candidate == candidate,
              "heap names an unknown candidate");
    return *it;
  };

  GreedyResult result;
  while (static_cast<int>(result.selected.size()) < opts.k &&
         !heap.empty()) {
    HeapEntry top = heap.top();
    heap.pop();
    const CandidateEntry* entry = entry_of(top.candidate);
    if (opts.budget > 0.0 &&
        result.total_cost + entry->cost > opts.budget) {
      continue;  // Cost only grows: infeasible now, infeasible forever.
    }
    const int stamp = static_cast<int>(result.selected.size());
    if (top.stamp != stamp) {
      // Stale upper bound: re-evaluate against the current coverage and
      // re-queue.  Submodularity guarantees the fresh gain is <= the
      // stale one, so the heap order stays an upper-bound order.
      if (gain_evals != nullptr) gain_evals->inc();
      top.gain = marginal_gain(table, *entry, best);
      top.stamp = stamp;
      heap.push(top);
      continue;
    }
    if (top.gain <= 0.0) break;  // Nothing left to cover.
    result.selected.push_back(entry->candidate);
    result.gains.push_back(top.gain);
    result.objective_gb += top.gain;
    result.total_cost += entry->cost;
    absorb(table, *entry, best);
  }
  return result;
}

LocalSearchResult local_search(const ValueTable& table,
                               const std::vector<int>& start_selected,
                               const SubsetEvalFn& evaluate,
                               const LocalSearchOptions& opts,
                               obs::Registry* metrics) {
  validate_table(table);
  DGS_ENSURE(!start_selected.empty(), "empty starting selection");
  DGS_ENSURE(static_cast<bool>(evaluate), "null evaluator");

  obs::Counter* swaps_metric = nullptr;
  obs::Counter* evals_metric = nullptr;
  if (metrics != nullptr) {
    swaps_metric =
        metrics->counter("dgs_netdesign_swaps_total",
                         "Accepted improving swaps in local search");
    evals_metric = metrics->counter(
        "dgs_netdesign_sim_evals_total",
        "Full-simulator subset evaluations (local search + fronts)");
  }

  LocalSearchResult result;
  result.selected = start_selected;
  std::sort(result.selected.begin(), result.selected.end());

  const auto entry_of = [&](int candidate) -> const CandidateEntry* {
    for (const CandidateEntry& e : table.candidates) {
      if (e.candidate == candidate) return &e;
    }
    return nullptr;
  };
  const auto cost_of = [&](const std::vector<int>& sel) {
    double cost = 0.0;
    for (int c : sel) {
      const CandidateEntry* e = entry_of(c);
      DGS_CHECK(e != nullptr, "selection names an unknown candidate");
      cost += e->cost;
    }
    return cost;
  };

  result.eval = evaluate(result.selected);
  result.sim_evals = 1;
  if (evals_metric != nullptr) evals_metric->inc();
  double cur_cost = cost_of(result.selected);
  double cur_score = eval_score(result.eval);

  for (int round = 0; round < opts.max_rounds; ++round) {
    // Swap-in pool: the top_m unselected candidates by standalone value
    // (descending, ties toward the smaller id).
    std::vector<const CandidateEntry*> outside;
    for (const CandidateEntry& e : table.candidates) {
      if (std::find(result.selected.begin(), result.selected.end(),
                    e.candidate) == result.selected.end()) {
        outside.push_back(&e);
      }
    }
    std::sort(outside.begin(), outside.end(),
              [](const CandidateEntry* a, const CandidateEntry* b) {
                const double va = a->standalone_gb();
                const double vb = b->standalone_gb();
                if (va != vb) return va > vb;
                return a->candidate < b->candidate;
              });
    if (outside.size() > static_cast<std::size_t>(opts.top_m)) {
      outside.resize(static_cast<std::size_t>(opts.top_m));
    }

    bool improved = false;
    for (std::size_t oi = 0;
         oi < result.selected.size() && !improved; ++oi) {
      const int out = result.selected[oi];
      const CandidateEntry* out_entry = entry_of(out);
      DGS_CHECK(out_entry != nullptr,
                "selection names an unknown candidate");
      for (const CandidateEntry* in : outside) {
        if (result.sim_evals >= opts.max_evals) break;
        const double trial_cost =
            cur_cost - out_entry->cost + in->cost;
        if (opts.budget > 0.0 && trial_cost > opts.budget) continue;

        std::vector<int> trial = result.selected;
        trial[oi] = in->candidate;
        std::sort(trial.begin(), trial.end());
        const EvalPoint trial_eval = evaluate(trial);
        ++result.sim_evals;
        if (evals_metric != nullptr) evals_metric->inc();
        if (eval_score(trial_eval) + 1e-9 < cur_score) {
          result.selected = std::move(trial);
          result.eval = trial_eval;
          cur_score = eval_score(trial_eval);
          cur_cost = trial_cost;
          ++result.swaps;
          if (swaps_metric != nullptr) swaps_metric->inc();
          improved = true;
          break;
        }
      }
      if (result.sim_evals >= opts.max_evals) break;
    }
    if (!improved) break;
  }
  return result;
}

}  // namespace dgs::netdesign
