// Runtime contract macros for the DGS codebase.
//
// Three families, one formatting path (file:line, failed expression, and an
// optional streamed context carrying operand values):
//
//   * DGS_CHECK(cond, ctx...)  — internal invariant; always compiled in.
//     Failure prints the formatted report to stderr and aborts.  Use for
//     conditions that indicate a bug in *this* codebase (a double-booked
//     station, non-conserved bytes), never for bad caller input.
//   * DGS_DCHECK(cond, ctx...) — debug-build invariant; identical to
//     DGS_CHECK when DGS_ENABLE_DCHECKS is defined (the default CMake
//     configuration defines it; -DDGS_DCHECKS=OFF removes it for
//     production-profile builds).  Use for audits too expensive for hot
//     release paths, e.g. Matching stability or per-step conservation.
//   * DGS_ENSURE(cond, ctx...) — caller-input precondition; always
//     compiled in.  Failure throws std::invalid_argument with the same
//     formatted report, so existing EXPECT_THROW(..., std::invalid_argument)
//     call sites keep their contract.
//
// The optional context is a stream expression evaluated only on failure:
//
//   DGS_ENSURE(bytes >= 0.0, "bytes=" << bytes);
//   DGS_CHECK(g >= 0 && g < num_stations, "station=" << g);
//
// Binary-comparison variants capture both operand values automatically:
//
//   DGS_CHECK_LE(queued, capacity);   // "... (3.5e9 vs 1e9)"
//   DGS_ENSURE_GT(quantum_seconds, 0.0);
//
// Each operand is evaluated exactly once; the condition itself is evaluated
// exactly once in the enabled macros and not at all in disabled DGS_DCHECKs.
#pragma once

#include <sstream>
#include <string>
#include <utility>

namespace dgs::util {
namespace internal {

/// Accumulates the optional streamed context of a failed check.
class CheckContext {
 public:
  template <typename T>
  CheckContext& operator<<(T&& v) {
    stream_ << std::forward<T>(v);
    return *this;
  }

  std::string str() const { return stream_.str(); }

 private:
  std::ostringstream stream_;
};

/// Renders "lhs vs rhs" for the _EQ/_NE/_LT/... operand capture.
template <typename A, typename B>
std::string format_operands(const A& lhs, const B& rhs) {
  std::ostringstream os;
  os << lhs << " vs " << rhs;
  return os.str();
}

/// Prints "<kind> failed at file:line: expr [context]" to stderr, then
/// std::abort()s.  Out of line so the macro expansion stays small.
[[noreturn]] void check_failed(const char* kind, const char* file, int line,
                               const char* expr, const std::string& context);

/// Same report, thrown as std::invalid_argument (what() carries it).
[[noreturn]] void ensure_failed(const char* file, int line, const char* expr,
                                const std::string& context);

}  // namespace internal
}  // namespace dgs::util

// --- Condition macros -------------------------------------------------------

#define DGS_CHECK(cond, ...)                                            \
  do {                                                                  \
    if (!(cond)) [[unlikely]] {                                         \
      ::dgs::util::internal::check_failed(                              \
          "DGS_CHECK", __FILE__, __LINE__, #cond,                       \
          (::dgs::util::internal::CheckContext{} __VA_OPT__(<<)         \
               __VA_ARGS__)                                             \
              .str());                                                  \
    }                                                                   \
  } while (0)

#define DGS_ENSURE(cond, ...)                                           \
  do {                                                                  \
    if (!(cond)) [[unlikely]] {                                         \
      ::dgs::util::internal::ensure_failed(                             \
          __FILE__, __LINE__, #cond,                                    \
          (::dgs::util::internal::CheckContext{} __VA_OPT__(<<)         \
               __VA_ARGS__)                                             \
              .str());                                                  \
    }                                                                   \
  } while (0)

#ifdef DGS_ENABLE_DCHECKS
#define DGS_DCHECK(cond, ...) DGS_CHECK(cond __VA_OPT__(, ) __VA_ARGS__)
#else
// Disabled: the condition must still parse but is never evaluated.
#define DGS_DCHECK(cond, ...) \
  do {                        \
    if (false) {              \
      (void)(cond);           \
    }                         \
  } while (0)
#endif

// --- Binary-comparison variants (capture operand values) --------------------

#define DGS_INTERNAL_CHECK_OP(handler, kind, op, a, b)                  \
  do {                                                                  \
    const auto& dgs_lhs_ = (a);                                         \
    const auto& dgs_rhs_ = (b);                                         \
    if (!(dgs_lhs_ op dgs_rhs_)) [[unlikely]] {                         \
      ::dgs::util::internal::handler(                                   \
          kind, __FILE__, __LINE__, #a " " #op " " #b,                  \
          ::dgs::util::internal::format_operands(dgs_lhs_, dgs_rhs_));  \
    }                                                                   \
  } while (0)

#define DGS_INTERNAL_ENSURE_OP(op, a, b)                                \
  do {                                                                  \
    const auto& dgs_lhs_ = (a);                                         \
    const auto& dgs_rhs_ = (b);                                         \
    if (!(dgs_lhs_ op dgs_rhs_)) [[unlikely]] {                         \
      ::dgs::util::internal::ensure_failed(                             \
          __FILE__, __LINE__, #a " " #op " " #b,                        \
          ::dgs::util::internal::format_operands(dgs_lhs_, dgs_rhs_));  \
    }                                                                   \
  } while (0)

#define DGS_CHECK_EQ(a, b) \
  DGS_INTERNAL_CHECK_OP(check_failed, "DGS_CHECK", ==, a, b)
#define DGS_CHECK_NE(a, b) \
  DGS_INTERNAL_CHECK_OP(check_failed, "DGS_CHECK", !=, a, b)
#define DGS_CHECK_LT(a, b) \
  DGS_INTERNAL_CHECK_OP(check_failed, "DGS_CHECK", <, a, b)
#define DGS_CHECK_LE(a, b) \
  DGS_INTERNAL_CHECK_OP(check_failed, "DGS_CHECK", <=, a, b)
#define DGS_CHECK_GT(a, b) \
  DGS_INTERNAL_CHECK_OP(check_failed, "DGS_CHECK", >, a, b)
#define DGS_CHECK_GE(a, b) \
  DGS_INTERNAL_CHECK_OP(check_failed, "DGS_CHECK", >=, a, b)

#define DGS_ENSURE_EQ(a, b) DGS_INTERNAL_ENSURE_OP(==, a, b)
#define DGS_ENSURE_NE(a, b) DGS_INTERNAL_ENSURE_OP(!=, a, b)
#define DGS_ENSURE_LT(a, b) DGS_INTERNAL_ENSURE_OP(<, a, b)
#define DGS_ENSURE_LE(a, b) DGS_INTERNAL_ENSURE_OP(<=, a, b)
#define DGS_ENSURE_GT(a, b) DGS_INTERNAL_ENSURE_OP(>, a, b)
#define DGS_ENSURE_GE(a, b) DGS_INTERNAL_ENSURE_OP(>=, a, b)

#ifdef DGS_ENABLE_DCHECKS
#define DGS_DCHECK_EQ(a, b) DGS_CHECK_EQ(a, b)
#define DGS_DCHECK_NE(a, b) DGS_CHECK_NE(a, b)
#define DGS_DCHECK_LT(a, b) DGS_CHECK_LT(a, b)
#define DGS_DCHECK_LE(a, b) DGS_CHECK_LE(a, b)
#define DGS_DCHECK_GT(a, b) DGS_CHECK_GT(a, b)
#define DGS_DCHECK_GE(a, b) DGS_CHECK_GE(a, b)
#else
#define DGS_DCHECK_EQ(a, b) DGS_DCHECK((a) == (b))
#define DGS_DCHECK_NE(a, b) DGS_DCHECK((a) != (b))
#define DGS_DCHECK_LT(a, b) DGS_DCHECK((a) < (b))
#define DGS_DCHECK_LE(a, b) DGS_DCHECK((a) <= (b))
#define DGS_DCHECK_GT(a, b) DGS_DCHECK((a) > (b))
#define DGS_DCHECK_GE(a, b) DGS_DCHECK((a) >= (b))
#endif
