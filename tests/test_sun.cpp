// Solar ephemeris and sun-outage prediction.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "src/orbit/sun.h"
#include "src/util/angles.h"

namespace dgs::orbit {
namespace {

using util::deg2rad;
using util::rad2deg;

TEST(SunPosition, DistanceIsOneAu) {
  for (int month = 1; month <= 12; ++month) {
    const util::Epoch t(util::DateTime{2020, month, 15, 0, 0, 0.0});
    const double r_au = sun_position_km(t).norm() / 149597870.7;
    EXPECT_GT(r_au, 0.982) << "month " << month;
    EXPECT_LT(r_au, 1.018) << "month " << month;
  }
  // Perihelion (early January) is closer than aphelion (early July).
  const double january =
      sun_position_km(util::Epoch(util::DateTime{2020, 1, 4, 0, 0, 0.0}))
          .norm();
  const double july =
      sun_position_km(util::Epoch(util::DateTime{2020, 7, 4, 0, 0, 0.0}))
          .norm();
  EXPECT_LT(january, july);
}

TEST(SunPosition, DeclinationBoundedByObliquity) {
  for (int day = 0; day < 365; day += 7) {
    const util::Epoch t =
        util::Epoch(util::DateTime{2020, 1, 1, 12, 0, 0.0}).plus_days(day);
    const util::Vec3 s = sun_position_km(t);
    const double decl = std::asin(s.z / s.norm());
    EXPECT_LE(std::fabs(rad2deg(decl)), 23.45 + 0.05) << "day " << day;
  }
}

TEST(SunPosition, SolsticesAndEquinoxes) {
  // June solstice: declination near +23.4 deg.
  const util::Vec3 june =
      sun_position_km(util::Epoch(util::DateTime{2020, 6, 20, 22, 0, 0.0}));
  EXPECT_NEAR(rad2deg(std::asin(june.z / june.norm())), 23.43, 0.1);
  // December solstice: near -23.4 deg.
  const util::Vec3 dec =
      sun_position_km(util::Epoch(util::DateTime{2020, 12, 21, 10, 0, 0.0}));
  EXPECT_NEAR(rad2deg(std::asin(dec.z / dec.norm())), -23.43, 0.1);
  // March equinox: declination near zero.
  const util::Vec3 mar =
      sun_position_km(util::Epoch(util::DateTime{2020, 3, 20, 4, 0, 0.0}));
  EXPECT_NEAR(rad2deg(std::asin(mar.z / mar.norm())), 0.0, 0.3);
}

TEST(SunAngles, LocalNoonPutsSunHighAndSouthish) {
  // Berlin (52.5 N), June 21 near local solar noon (~11:50 UTC + lon adj).
  const Geodetic site{deg2rad(52.5), deg2rad(13.4), 0.0};
  const util::Epoch noon(util::DateTime{2020, 6, 21, 11, 10, 0.0});
  const SunAngles s = sun_angles(site, noon);
  // Max solar elevation at 52.5 N on the solstice: 90 - 52.5 + 23.4 = 60.9.
  EXPECT_NEAR(rad2deg(s.elevation_rad), 60.9, 2.0);
  const double az = rad2deg(s.azimuth_rad);
  EXPECT_GT(az, 150.0);
  EXPECT_LT(az, 210.0);
}

TEST(SunAngles, MidnightSunIsDown) {
  const Geodetic site{deg2rad(52.5), deg2rad(13.4), 0.0};
  const util::Epoch midnight(util::DateTime{2020, 6, 21, 23, 10, 0.0});
  EXPECT_LT(sun_angles(site, midnight).elevation_rad, 0.0);
}

TEST(SunOutage, TriggeredWhenPointingAtTheSun) {
  const Geodetic site{deg2rad(52.5), deg2rad(13.4), 0.0};
  const util::Epoch noon(util::DateTime{2020, 6, 21, 11, 10, 0.0});
  const SunAngles s = sun_angles(site, noon);
  // Point straight at the sun: outage at any cone.
  EXPECT_TRUE(sun_outage(site, s.azimuth_rad, s.elevation_rad, noon,
                         deg2rad(0.5)));
  // Point 10 degrees away in azimuth: no outage with a 2 deg cone.
  EXPECT_FALSE(sun_outage(site, s.azimuth_rad + deg2rad(10.0),
                          s.elevation_rad, noon, deg2rad(2.0)));
  // ...but a 15 deg cone catches it again (cos(el) scaling notwithstanding).
  EXPECT_TRUE(sun_outage(site, s.azimuth_rad + deg2rad(10.0),
                         s.elevation_rad, noon, deg2rad(15.0)));
}

TEST(SunOutage, NeverAtNight) {
  const Geodetic site{deg2rad(52.5), deg2rad(13.4), 0.0};
  const util::Epoch midnight(util::DateTime{2020, 6, 21, 23, 10, 0.0});
  // Whatever direction we look, a below-horizon sun cannot blind us.
  for (double az = 0.0; az < 360.0; az += 45.0) {
    EXPECT_FALSE(
        sun_outage(site, deg2rad(az), deg2rad(20.0), midnight, deg2rad(5.0)));
  }
}

TEST(SunOutage, RejectsBadCone) {
  const Geodetic site{0.0, 0.0, 0.0};
  const util::Epoch t(util::DateTime{2020, 6, 1, 12, 0, 0.0});
  EXPECT_THROW(sun_outage(site, 0.0, 0.5, t, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace dgs::orbit
