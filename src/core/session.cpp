#include "src/core/session.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

#include "src/core/checkpoint.h"
#include "src/link/dvbs2_framing.h"
#include "src/obs/trace.h"
#include "src/util/angles.h"
#include "src/util/check.h"
#include "src/util/crc32.h"

namespace dgs::core {

namespace {

// --- Checkpoint encoding helpers -------------------------------------------

void put_epoch(BinaryWriter& w, const util::Epoch& e) {
  w.f64(e.jd_whole());
  w.f64(e.jd_frac());
}

util::Epoch get_epoch(BinaryReader& r) {
  const double whole = r.f64();
  const double frac = r.f64();
  return util::Epoch::from_parts(whole, frac);
}

void put_samples(BinaryWriter& w, const util::SampleSet& s) {
  w.u8(s.sort_cached() ? 1 : 0);
  const std::vector<double>& raw = s.raw();
  w.u64(raw.size());
  for (const double v : raw) w.f64(v);
}

util::SampleSet get_samples(BinaryReader& r) {
  const bool sorted = r.u8() != 0;
  const std::uint64_t n = r.u64();
  std::vector<double> raw;
  raw.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) raw.push_back(r.f64());
  util::SampleSet s;
  s.restore(std::move(raw), sorted);
  return s;
}

void put_chunk(BinaryWriter& w, const DataChunk& c) {
  put_epoch(w, c.capture);
  w.f64(c.total_bytes);
  w.f64(c.remaining_bytes);
  w.f64(c.priority);
}

DataChunk get_chunk(BinaryReader& r) {
  DataChunk c;
  c.capture = get_epoch(r);
  c.total_bytes = r.f64();
  c.remaining_bytes = r.f64();
  c.priority = r.f64();
  return c;
}

/// The MODCOD table index of a scheduled MODCOD, or -1 for none.  Edges
/// only ever point into the static link::dvbs2_modcods() table, so the
/// index round-trips the pointer — including pointer *equality*, which the
/// contact-lifecycle modcod_selected comparison relies on.
std::int32_t put_modcod(const link::ModCod* m) {
  return m == nullptr ? -1
                      : static_cast<std::int32_t>(link::modcod_index(*m));
}

const link::ModCod* get_modcod(std::int32_t idx) {
  return idx < 0 ? nullptr
                 : &link::modcod_by_index(static_cast<std::uint8_t>(idx));
}

void put_edge(BinaryWriter& w, const ContactEdge& e) {
  w.i32(e.sat);
  w.i32(e.station);
  w.f64(e.elevation_rad);
  w.f64(e.range_km);
  w.f64(e.predicted_rate_bps);
  w.i32(put_modcod(e.modcod));
  w.f64(e.weight);
}

ContactEdge get_edge(BinaryReader& r) {
  ContactEdge e;
  e.sat = r.i32();
  e.station = r.i32();
  e.elevation_rad = r.f64();
  e.range_km = r.f64();
  e.predicted_rate_bps = r.f64();
  e.modcod = get_modcod(r.i32());
  e.weight = r.f64();
  return e;
}

/// Canonical byte encoding of every option that shapes the simulated
/// trajectory (see Session::options_crc32 for the exclusion list).
void put_options(BinaryWriter& w, const SimulationOptions& o) {
  put_epoch(w, o.start);
  w.f64(o.duration_hours);
  w.f64(o.step_seconds);
  w.u8(static_cast<std::uint8_t>(o.matcher));
  w.u8(static_cast<std::uint8_t>(o.value));
  w.u8(o.weather_aware ? 1 : 0);
  w.u8(o.couple_forecast_to_plan_upload ? 1 : 0);
  w.f64(o.initial_backlog_bytes);
  w.f64(o.initial_backlog_age_hours);
  w.f64(o.urgent_fraction);
  w.f64(o.urgent_priority);
  w.f64(o.lookahead_hours);
  w.f64(o.station_backhaul_bps);
  w.f64(o.slew_seconds);
  w.u8(o.collect_timeseries ? 1 : 0);
  w.u64(o.faults.seed);
  w.u64(o.faults.outages.size());
  for (const faults::OutageWindow& ow : o.faults.outages) {
    w.i32(ow.station_index);
    w.f64(ow.start_hours);
    w.f64(ow.end_hours);
  }
  w.f64(o.faults.churn.mtbf_hours);
  w.f64(o.faults.churn.mttr_hours);
  w.f64(o.faults.churn.station_fraction);
  w.u64(o.faults.backhaul.size());
  for (const faults::BackhaulFault& bf : o.faults.backhaul) {
    w.i32(bf.station_index);
    w.f64(bf.start_hours);
    w.f64(bf.end_hours);
    w.f64(bf.rate_multiplier);
  }
  w.f64(o.faults.ack_relay.loss_probability);
  w.f64(o.faults.ack_relay.initial_backoff_s);
  w.f64(o.faults.ack_relay.backoff_multiplier);
  w.f64(o.faults.ack_relay.max_backoff_s);
  w.i32(o.faults.ack_relay.max_attempts);
  w.f64(o.faults.plan_upload.failure_probability);
  w.u64(o.station_subset.size());
  for (const int id : o.station_subset) w.i32(id);
  w.u64(o.tenants.size());
  for (const TenantSpec& t : o.tenants) {
    w.str(t.name);
    w.f64(t.weight);
    w.f64(t.sla_latency_minutes);
    w.u64(t.satellites.size());
    for (const int s : t.satellites) w.i32(s);
  }
}

}  // namespace

Session::Session(std::vector<groundseg::SatelliteConfig> sats,
                 std::vector<groundseg::GroundStation> stations,
                 const weather::WeatherProvider* actual_weather,
                 const SimulationOptions& opts)
    : sats_(std::move(sats)), stations_(std::move(stations)),
      actual_wx_(actual_weather), opts_(opts),
      clock_(opts.start, opts.step_seconds) {
  DGS_ENSURE(!sats_.empty() && !stations_.empty(),
             "sats=" << sats_.size() << " stations=" << stations_.size());
  // Apply the station-subset restriction before anything else: membership
  // is checked against the *input* station ids, while everything
  // downstream (fault-plan indices, the visibility engine, metrics) sees
  // only the filtered list, in input order.
  std::vector<int> station_ids;
  station_ids.reserve(stations_.size());
  for (const groundseg::GroundStation& gs : stations_) {
    station_ids.push_back(gs.id);
  }
  if (!opts_.station_subset.empty()) {
    std::vector<groundseg::GroundStation> kept;
    kept.reserve(opts_.station_subset.size());
    for (groundseg::GroundStation& gs : stations_) {
      if (std::find(opts_.station_subset.begin(),
                    opts_.station_subset.end(),
                    gs.id) != opts_.station_subset.end()) {
        kept.push_back(std::move(gs));
      }
    }
    stations_ = std::move(kept);
  }
  if (const auto e = opts_.validate(static_cast<int>(stations_.size()),
                                    station_ids,
                                    static_cast<int>(sats_.size()))) {
    // dgslint: allow(R4) -- renders OptionsError; format is test-pinned
    throw std::invalid_argument("SimulationOptions." + e->field + ": " +
                                e->message);
  }

  num_sats_ = static_cast<int>(sats_.size());
  num_stations_ = static_cast<int>(stations_.size());
  dt_ = opts_.step_seconds;
  steps_ = static_cast<std::int64_t>(
      std::llround(opts_.duration_hours * 3600.0 / dt_));
  events_ = opts_.events;

  // Scheduling sees forecasts; outcomes use the actual field.
  const weather::WeatherProvider* forecast_wx =
      opts_.weather_aware ? actual_wx_ : nullptr;
  pool_ = std::make_unique<util::ThreadPool>(opts_.parallel);
  engine_ = std::make_unique<VisibilityEngine>(sats_, stations_,
                                               forecast_wx);
  engine_->set_thread_pool(pool_.get());
  // Must precede Scheduler construction and enable_geometry_cache: both
  // register their counters against the engine's registry at setup time.
  engine_->set_metrics(opts_.metrics);
  if (!opts_.tenants.empty()) {
    arbiter_.emplace(opts_.tenants, num_sats_);
    tenant_latency_.resize(opts_.tenants.size());
    tenant_sla_ok_.assign(opts_.tenants.size(), 0);
  }
  SchedulerConfig sched_cfg;
  sched_cfg.matcher = opts_.matcher;
  sched_cfg.value = opts_.value;
  sched_cfg.quantum_seconds = dt_;
  sched_cfg.edge_value_modifier = opts_.edge_value_modifier;
  if (arbiter_.has_value()) {
    sched_cfg.sat_value_scale = &arbiter_->sat_scale();
  }
  scheduler_ = std::make_unique<Scheduler>(engine_.get(), sched_cfg);

  res_.per_satellite.resize(num_sats_);

  // Fault injection (DESIGN.md §11): the plan is expanded onto the step
  // grid once, on the driver thread; all later queries are pure lookups or
  // stateless hash draws, so fault behaviour is bit-identical at any
  // thread count.
  if (!opts_.faults.empty()) {
    timeline_.emplace(opts_.faults, num_stations_, steps_, dt_);
  }
  station_faults_ =
      timeline_.has_value() && timeline_->has_station_faults();
  backhaul_faults_ =
      timeline_.has_value() && timeline_->has_backhaul_faults();

  register_metrics();

  prev_down_.assign(static_cast<std::size_t>(num_stations_), 0);
  if (station_faults_) {
    down_.assign(static_cast<std::size_t>(num_stations_), 0);
  }
  if (backhaul_faults_) {
    prev_backhaul_mult_.assign(static_cast<std::size_t>(num_stations_),
                               1.0);
  }

  queues_.resize(static_cast<std::size_t>(num_sats_));
  for (int s = 0; s < num_sats_; ++s) {
    if (sats_[s].storage_capacity_bytes > 0.0) {
      queues_[s].set_capacity(sats_[s].storage_capacity_bytes);
    }
  }
  last_plan_.assign(static_cast<std::size_t>(num_sats_), opts_.start);
  station_busy_.assign(static_cast<std::size_t>(num_stations_), 0);
  leads_.assign(static_cast<std::size_t>(num_sats_), 0.0);
  prev_served_.assign(static_cast<std::size_t>(num_stations_), -1);

  // Steady-state warm start: pre-existing backlog captured in the past.
  if (opts_.initial_backlog_bytes > 0.0) {
    const util::Epoch captured =
        opts_.start.plus_seconds(-opts_.initial_backlog_age_hours * 3600.0);
    for (int s = 0; s < num_sats_; ++s) {
      queues_[s].generate(opts_.initial_backlog_bytes, captured);
      res_.per_satellite[s].generated_bytes += opts_.initial_backlog_bytes;
      res_.total_generated_bytes += opts_.initial_backlog_bytes;
      if (om_.generated_bytes != nullptr) {
        om_.generated_bytes->inc(opts_.initial_backlog_bytes);
      }
    }
  }

  // Station edge queues (opts_.station_backhaul_bps > 0).
  if (opts_.station_backhaul_bps > 0.0) {
    edge_queues_.assign(
        static_cast<std::size_t>(num_stations_),
        backend::StationEdgeQueue(opts_.station_backhaul_bps));
    for (backend::StationEdgeQueue& eq : edge_queues_) {
      eq.set_metrics(om_.backhaul_received, om_.backhaul_uploaded);
    }
  }

  // Look-ahead planning state (opts_.lookahead_hours > 0) and the
  // step-geometry memoization, sized to hold a whole planning window.
  plan_window_steps_ =
      opts_.lookahead_hours > 0.0
          ? std::max(1, static_cast<int>(std::llround(
                            opts_.lookahead_hours * 3600.0 / dt_)))
          : 0;
  engine_->enable_geometry_cache(
      opts_.start, dt_, plan_window_steps_ > 0 ? plan_window_steps_ : 4);
}

void Session::register_metrics() {
  obs::Registry* const metrics = opts_.metrics;
  if (metrics == nullptr) return;
  // Sim-level metrics.  All updates happen on the driver thread: byte
  // quantities are non-integer doubles, which the shard-fold determinism
  // contract (DESIGN.md §10) keeps out of parallel regions.  Each counter
  // mirrors the matching SimulationResult field add-for-add, so the two
  // stay bit-identical.
  om_.generated_bytes = metrics->counter(
      "dgs_sim_generated_bytes_total", "Bytes captured at the sensors");
  om_.delivered_bytes = metrics->counter(
      "dgs_sim_delivered_bytes_total", "Bytes captured by the ground");
  om_.dropped_bytes = metrics->counter(
      "dgs_sim_dropped_bytes_total", "Bytes lost to full recorders");
  om_.wasted_bytes = metrics->counter(
      "dgs_sim_wasted_bytes_total",
      "Bytes transmitted into failed (mis-predicted MODCOD) slots");
  om_.requeued_bytes = metrics->counter(
      "dgs_sim_requeued_bytes_total",
      "Bytes re-queued for retransmission after a collated report");
  om_.assignments = metrics->counter(
      "dgs_sim_assignments_total", "Scheduled (sat, station) slots");
  om_.failed_assignments = metrics->counter(
      "dgs_sim_failed_assignments_total",
      "Slots whose scheduled MODCOD did not close");
  om_.slew_events = metrics->counter(
      "dgs_sim_slew_events_total",
      "Station retargets to a new satellite (slew model on)");
  om_.steps = metrics->counter("dgs_sim_steps_total",
                               "Simulation steps executed");
  om_.ack_batches = metrics->counter(
      "dgs_sim_ack_batches_total",
      "Delivery batches acknowledged via collated reports");
  om_.plan_uploads = metrics->counter(
      "dgs_sim_plan_uploads_total",
      "Fresh plans uploaded at transmit-capable contacts");
  om_.backhaul_received = metrics->counter(
      "dgs_backhaul_received_bytes_total",
      "Bytes queued at station edges from the downlink");
  om_.backhaul_uploaded = metrics->counter(
      "dgs_backhaul_uploaded_bytes_total",
      "Bytes uploaded from station edges to the cloud");
  om_.backlog_bytes = metrics->gauge(
      "dgs_sim_backlog_bytes", "Bytes queued on board across satellites");
  om_.pending_ack_bytes = metrics->gauge(
      "dgs_sim_pending_ack_bytes",
      "Bytes delivered but not yet acknowledged");
  om_.station_queued_bytes = metrics->gauge(
      "dgs_backhaul_queued_bytes",
      "Bytes still queued at station edges (not yet in the cloud)");
  om_.latency_minutes = metrics->histogram(
      "dgs_sim_latency_minutes", "Capture-to-ground latency per chunk",
      {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0});

  // Fault metrics, registered only when a fault plan is active so
  // fault-free runs keep their exposition unchanged.
  if (timeline_.has_value()) {
    fm_.outage_transitions = metrics->counter(
        "dgs_faults_outage_transitions_total",
        "Station up->down and down->up transitions");
    fm_.outage_lost_bytes = metrics->counter(
        "dgs_faults_outage_lost_bytes_total",
        "Bytes transmitted into a faulted station's dead contact");
    fm_.ack_retries = metrics->counter(
        "dgs_faults_ack_retries_total",
        "Ack-relay report attempts lost to Internet faults and retried");
    fm_.replans = metrics->counter(
        "dgs_faults_replans_total",
        "Look-ahead replans triggered by an assigned station faulting");
    fm_.plan_upload_failures = metrics->counter(
        "dgs_faults_plan_upload_failures_total",
        "TX contacts whose TT&C exchange failed");
    fm_.backhaul_degraded_steps = metrics->counter(
        "dgs_faults_backhaul_degraded_station_steps_total",
        "Station-steps spent with a degraded backhaul multiplier");
    fm_.stations_down = metrics->gauge(
        "dgs_faults_stations_down", "Stations currently in outage");
  }

  // Per-tenant series (service mode): names carry the validated tenant
  // name, e.g. dgs_tenant_acme_delivered_bytes_total.
  if (arbiter_.has_value()) {
    for (int t = 0; t < arbiter_->num_tenants(); ++t) {
      const std::string& name = arbiter_->tenant(t).name;
      tm_.delivered.push_back(metrics->counter(
          "dgs_tenant_" + name + "_delivered_bytes_total",
          "Bytes delivered for tenant " + name));
      tm_.assignments.push_back(metrics->counter(
          "dgs_tenant_" + name + "_assignments_total",
          "Scheduled slots for tenant " + name));
      tm_.share.push_back(metrics->gauge(
          "dgs_tenant_" + name + "_share",
          "Realized delivered-bytes share of tenant " + name));
    }
  }
}

double Session::realized_rate_bps(const ContactEdge& e,
                                  const util::Epoch& when) const {
  const groundseg::GroundStation& gs = stations_[e.station];
  weather::WeatherSample wx;
  if (actual_wx_ != nullptr) {
    wx = actual_wx_->actual(gs.location.latitude_rad,
                            gs.location.longitude_rad, when);
  }
  link::PathConditions path;
  path.range_km = e.range_km;
  path.elevation_rad = e.elevation_rad;
  path.site_latitude_rad = gs.location.latitude_rad;
  path.site_altitude_km = gs.location.altitude_km;
  path.rain_rate_mm_h = wx.rain_rate_mm_h;
  path.cloud_liquid_kg_m2 = wx.cloud_liquid_kg_m2;

  // The satellite transmits at the *scheduled* MODCOD (receive-only
  // stations cannot request a change mid-pass).  The transfer succeeds iff
  // the actual Es/N0 still meets that MODCOD's requirement.  Beamforming
  // stations pay the same power-split penalty the scheduler assumed.
  link::ReceiveSystem rx = gs.receiver;
  if (gs.beam_count > 1) rx.aperture_efficiency /= gs.beam_count;
  const link::LinkBudget actual =
      link::evaluate_link(sats_[e.sat].radio, rx, path);
  if (e.modcod == nullptr) return 0.0;
  if (actual.esn0_db < e.modcod->required_esn0_db) return 0.0;
  return link::bitrate_bps(*e.modcod, sats_[e.sat].radio.symbol_rate_hz) *
         sats_[e.sat].radio.channels;
}

void Session::step() {
  DGS_ENSURE(!done(), "Session::step past the end of the horizon (step "
                          << step_ << " of " << steps_ << ")");
  DGS_TRACE_SPAN("sim.step");
  const std::int64_t step = step_;
  obs::Registry* const metrics = opts_.metrics;
  obs::EventLog* const events = events_;
  // StepClock is the single timestamp source: step_start drives the
  // physics, end_hours stamps both the timeseries record and every event
  // this step emits, so the two artifacts join without drift.
  const util::Epoch now = clock_.step_start(step);
  if (events != nullptr) events->begin_step(step, clock_.end_hours(step));

  // 0. Fault state for this step: refresh the station down mask and
  // emit up/down transitions.  `new_outage` feeds the look-ahead
  // replan check below.
  bool new_outage = false;
  if (station_faults_) {
    timeline_->fill_station_down(step, &down_);
    for (int g = 0; g < num_stations_; ++g) {
      if (down_[g] != 0 && prev_down_[g] == 0) {
        new_outage = true;
        if (events != nullptr) events->outage_begin(g);
        if (fm_.outage_transitions != nullptr) {
          fm_.outage_transitions->inc();
        }
      } else if (down_[g] == 0 && prev_down_[g] != 0) {
        if (events != nullptr) events->outage_end(g);
        if (fm_.outage_transitions != nullptr) {
          fm_.outage_transitions->inc();
        }
      }
    }
    prev_down_.assign(down_.begin(), down_.end());
  }
  const std::span<const char> down_span =
      station_faults_ ? std::span<const char>(down_)
                      : std::span<const char>();

  // 1. Imaging: continuous data generation, one chunk per step (two when
  // an urgent tier is configured).
  {
    DGS_TRACE_SPAN("sim.generate");
    for (int s = 0; s < num_sats_; ++s) {
      const double bytes =
          sats_[s].data_generation_bytes_per_day * dt_ / 86400.0;
      const double urgent = bytes * opts_.urgent_fraction;
      if (urgent > 0.0) {
        queues_[s].generate(urgent, now, opts_.urgent_priority);
      }
      queues_[s].generate(bytes - urgent, now);
      res_.per_satellite[s].generated_bytes += bytes;
      res_.total_generated_bytes += bytes;
      if (om_.generated_bytes != nullptr) om_.generated_bytes->inc(bytes);
    }
  }

  // 2. Plan staleness per satellite.
  if (opts_.couple_forecast_to_plan_upload) {
    for (int s = 0; s < num_sats_; ++s) {
      leads_[s] = now.seconds_since(last_plan_[s]);
    }
  }  // else all-zero: always-fresh plans.

  // 3. Schedule this instant: either per-instant matching (with failure
  // injection applied) or the pre-computed look-ahead horizon plan.
  std::vector<ContactEdge> assigned;
  {
    DGS_TRACE_SPAN("sim.schedule");
    if (plan_window_steps_ > 0) {
      const bool refresh =
          plan_origin_ < 0 || step - plan_origin_ >= plan_window_steps_;
      if (refresh) {
        const int window = static_cast<int>(
            std::min<std::int64_t>(plan_window_steps_, steps_ - step));
        plan_ = plan_horizon(*engine_, queues_,
                             scheduler_->value_function(), now, window, dt_,
                             down_span);
        plan_origin_ = step;
      }
      assigned = plan_.per_step[step - plan_origin_];
      // Replan-on-failure: a station that just went down while the
      // remainder of this window still assigns it invalidates the plan.
      // This step executes the stale assignments (in-flight
      // transmissions into the dead station are lost below); the
      // horizon from the next step is re-scored with the down mask.
      if (!refresh && new_outage && step + 1 < steps_) {
        int faulted_station = -1;
        const auto rel = static_cast<std::size_t>(step - plan_origin_);
        for (std::size_t k = rel;
             k < plan_.per_step.size() && faulted_station < 0; ++k) {
          for (const ContactEdge& e : plan_.per_step[k]) {
            if (down_[e.station] != 0) {
              faulted_station = e.station;
              break;
            }
          }
        }
        if (faulted_station >= 0) {
          const int window = static_cast<int>(std::min<std::int64_t>(
              plan_window_steps_, steps_ - (step + 1)));
          plan_ = plan_horizon(*engine_, queues_,
                               scheduler_->value_function(),
                               clock_.step_start(step + 1), window, dt_,
                               down_span);
          plan_origin_ = step + 1;
          res_.replans += 1;
          if (fm_.replans != nullptr) fm_.replans->inc();
          if (events != nullptr) {
            events->replan(faulted_station, window);
          }
        }
      }
    } else {
      // Tenant fair share: refresh each tenant's deficit multiplier from
      // the cumulative delivered books before scoring this instant's
      // edges (driver thread; deterministic, DESIGN.md §16).
      if (arbiter_.has_value()) arbiter_->refresh_scales();
      assigned = scheduler_->schedule_instant(now, queues_, leads_,
                                              down_span);
    }
  }

  // 4. Execute the assignments against actual weather.  The satellite
  // always transmits at the scheduled MODCOD and rate (receive-only
  // stations cannot renegotiate); whether the ground captures it depends
  // on the actual Es/N0.
  double step_edge_received = 0.0;
  {
    DGS_TRACE_SPAN("sim.execute");
    for (const ContactEdge& e : assigned) {
      res_.assignments += 1;
      res_.total_matched_value += e.weight;
      station_busy_[e.station] += 1;
      if (om_.assignments != nullptr) om_.assignments->inc();
      const int tenant = arbiter_.has_value() ? arbiter_->tenant_of(e.sat)
                                              : -1;
      if (arbiter_.has_value()) {
        arbiter_->record_assignment(e.sat);
        if (!tm_.assignments.empty()) tm_.assignments[tenant]->inc();
      }

      // Contact lifecycle: a pair entering the assigned set opens a
      // contact; a MODCOD change mid-pass is a reselection.
      if (events != nullptr) {
        const auto key = std::make_pair(e.sat, e.station);
        auto [it, inserted] = open_contacts_.try_emplace(key);
        OpenContact& oc = it->second;
        const std::string_view name =
            e.modcod != nullptr ? e.modcod->name : "none";
        if (inserted) {
          events->contact_open(e.sat, e.station, name,
                               e.predicted_rate_bps,
                               util::rad2deg(e.elevation_rad));
        } else if (oc.modcod != e.modcod) {
          events->modcod_selected(e.sat, e.station, name,
                                  e.predicted_rate_bps);
        }
        oc.modcod = e.modcod;
        oc.held_steps += 1;
        oc.last_step = step;
      }

      // A faulted station captures nothing: the satellite transmits
      // into the dead contact (it cannot tell), and the bytes take the
      // same missing-pieces requeue path as a mis-predicted MODCOD.
      const bool station_up = !station_faults_ || down_[e.station] == 0;
      const bool received = station_up && realized_rate_bps(e, now) > 0.0;
      // Retargeting the dish costs slew/re-lock time out of the quantum.
      double effective_dt = dt_;
      if (opts_.slew_seconds > 0.0 && prev_served_[e.station] != e.sat) {
        effective_dt = std::max(0.0, dt_ - opts_.slew_seconds);
        res_.slew_events += 1;
        if (om_.slew_events != nullptr) om_.slew_events->inc();
      }
      const double link_bytes = e.predicted_rate_bps * effective_dt / 8.0;
      // Ack-relay Internet faults: the station's report upload is lost
      // with some probability and retried with capped exponential
      // backoff, delaying when the batch's verdict reaches the
      // operator (and hence the next TX contact).
      double report_delay_s = 0.0;
      if (received && opts_.faults.has_ack_relay_faults()) {
        const faults::AckRelayOutcome relay =
            timeline_->ack_relay_outcome(step, e.sat, e.station);
        if (relay.retries > 0) {
          report_delay_s = relay.delay_s;
          res_.ack_retries += relay.retries;
          if (fm_.ack_retries != nullptr) {
            fm_.ack_retries->inc(relay.retries);
          }
          if (events != nullptr) {
            events->ack_relay_retry(e.sat, e.station, relay.retries,
                                    relay.delay_s);
          }
        }
      }
      const double sent = queues_[e.sat].transmit(
          link_bytes, now,
          [&](double latency_s, const DataChunk& chunk) {
            res_.latency_minutes.add(latency_s / 60.0);
            if (om_.latency_minutes != nullptr) {
              om_.latency_minutes->observe(latency_s / 60.0);
            }
            if (chunk.priority > 1.0) {
              res_.urgent_latency_minutes.add(latency_s / 60.0);
            } else {
              res_.bulk_latency_minutes.add(latency_s / 60.0);
            }
            if (tenant >= 0) {
              const double lat_min = latency_s / 60.0;
              tenant_latency_[tenant].add(lat_min);
              const double sla =
                  arbiter_->tenant(tenant).sla_latency_minutes;
              if (sla <= 0.0 || lat_min <= sla) {
                tenant_sla_ok_[tenant] += 1;
              }
            }
            if (!edge_queues_.empty()) {
              edge_queues_[e.station].receive(chunk.total_bytes,
                                              chunk.priority,
                                              chunk.capture, now);
              step_edge_received += chunk.total_bytes;
            }
          },
          received, report_delay_s);
      if (received) {
        res_.assigned_capacity_bytes += link_bytes;
        res_.per_satellite[e.sat].delivered_bytes += sent;
        res_.total_delivered_bytes += sent;
        if (om_.delivered_bytes != nullptr) om_.delivered_bytes->inc(sent);
        if (arbiter_.has_value()) {
          arbiter_->record_delivery(e.sat, sent);
          if (!tm_.delivered.empty()) tm_.delivered[tenant]->inc(sent);
        }
      } else {
        res_.failed_assignments += 1;
        res_.wasted_transmission_bytes += sent;
        if (om_.failed_assignments != nullptr) {
          om_.failed_assignments->inc();
        }
        if (om_.wasted_bytes != nullptr) om_.wasted_bytes->inc(sent);
        if (!station_up) {
          res_.outage_lost_bytes += sent;
          if (fm_.outage_lost_bytes != nullptr) {
            fm_.outage_lost_bytes->inc(sent);
          }
          if (events != nullptr) {
            events->outage_loss(e.sat, e.station, sent);
          }
        }
      }
      if (events != nullptr) {
        events->bytes_moved(e.sat, e.station, sent, received);
      }

      // Transmit-capable contact: collated report (acks + missing pieces)
      // and a fresh plan upload.  The S-band TT&C uplink is independent
      // of the X-band downlink outcome, so this happens even if the data
      // transfer failed.
      if (stations_[e.station].tx_capable && station_up) {
        // TT&C plan-upload fault: the whole exchange (acks + fresh
        // plan) is lost; the satellite keeps its stale plan until the
        // next TX opportunity.
        if (opts_.faults.has_plan_upload_faults() &&
            timeline_->plan_upload_fails(step, e.sat, e.station)) {
          res_.plan_upload_failures += 1;
          if (fm_.plan_upload_failures != nullptr) {
            fm_.plan_upload_failures->inc();
          }
          if (events != nullptr) {
            events->plan_upload_failed(e.sat, e.station);
          }
        } else {
          double acked_bytes = 0.0;
          int ack_batches = 0;
          const double requeued = queues_[e.sat].acknowledge_all(
              now, [&](double delay_s, double bytes) {
                res_.ack_delay_minutes.add(delay_s / 60.0);
                acked_bytes += bytes;
                ack_batches += 1;
              });
          res_.requeued_bytes += requeued;
          if (om_.requeued_bytes != nullptr) {
            om_.requeued_bytes->inc(requeued);
          }
          if (om_.ack_batches != nullptr && ack_batches > 0) {
            om_.ack_batches->inc(ack_batches);
          }
          if (om_.plan_uploads != nullptr) om_.plan_uploads->inc();
          if (events != nullptr) {
            events->ack_relayed(e.sat, e.station, acked_bytes, requeued,
                                ack_batches);
            events->plan_uploaded(e.sat, e.station,
                                  now.seconds_since(last_plan_[e.sat]));
          }
          last_plan_[e.sat] = now;
          res_.per_satellite[e.sat].tx_contacts += 1;
        }
      }
    }
  }

  // Contacts absent from this step's assigned set have ended.
  if (events != nullptr) {
    for (auto it = open_contacts_.begin(); it != open_contacts_.end();) {
      if (it->second.last_step != step) {
        events->contact_close(it->first.first, it->first.second,
                              it->second.held_steps);
        it = open_contacts_.erase(it);
      } else {
        ++it;
      }
    }
  }

  // 4b. Track which satellite each station served (slew accounting).
  if (opts_.slew_seconds > 0.0) {
    std::fill(prev_served_.begin(), prev_served_.end(), -1);
    for (const ContactEdge& e : assigned) prev_served_[e.station] = e.sat;
  }

  // 5. Station backhaul: edge queues upload toward the cloud.
  if (!edge_queues_.empty()) {
    DGS_TRACE_SPAN("sim.backhaul");
    const util::Epoch upload_t = now.plus_seconds(dt_);
    double step_uploaded = 0.0;
    std::int64_t degraded_stations = 0;
    for (int g = 0; g < num_stations_; ++g) {
      double mult = 1.0;
      if (backhaul_faults_) {
        mult = timeline_->backhaul_multiplier(g, step);
        if (mult < 1.0) {
          degraded_stations += 1;
          if (events != nullptr && prev_backhaul_mult_[g] >= 1.0) {
            events->backhaul_fault_begin(g, mult);
          }
        } else if (events != nullptr && prev_backhaul_mult_[g] < 1.0) {
          events->backhaul_fault_end(g);
        }
        prev_backhaul_mult_[static_cast<std::size_t>(g)] = mult;
      }
      step_uploaded += edge_queues_[static_cast<std::size_t>(g)].drain(
          dt_, upload_t,
          [&](double latency_s, const backend::EdgeItem&) {
            res_.cloud_latency_minutes.add(latency_s / 60.0);
          },
          mult);
    }
    if (fm_.backhaul_degraded_steps != nullptr && degraded_stations > 0) {
      fm_.backhaul_degraded_steps->inc(
          static_cast<double>(degraded_stations));
    }
    if (events != nullptr) {
      double queued = 0.0;
      for (const backend::StationEdgeQueue& eq : edge_queues_) {
        queued += eq.queued_bytes();
      }
      events->backhaul_step(step_edge_received, step_uploaded, queued);
    }
  }

  // 6. Storage accounting.
  for (int s = 0; s < num_sats_; ++s) {
    res_.per_satellite[s].storage_high_water_bytes =
        std::max(res_.per_satellite[s].storage_high_water_bytes,
                 queues_[s].storage_bytes());
  }

  // 6b. Conservation audit: every byte a sensor offered must be exactly
  // one of dropped / queued / awaiting ack / freed by an ack.  A silent
  // leak here would corrupt every downstream backlog and latency figure.
#ifdef DGS_ENABLE_DCHECKS
  for (int s = 0; s < num_sats_; ++s) {
    const std::string audit = queues_[s].audit_conservation();
    DGS_CHECK(audit.empty(), "step " << step << ", sat " << s << ": "
                                     << audit);
  }
#endif

  // 6c. Geometry-cache deltas accrued during this step.
  if (events != nullptr) {
    if (const GeometryCache* gc = engine_->geometry_cache();
        gc != nullptr) {
      const std::uint64_t h = gc->hits();
      const std::uint64_t m = gc->misses();
      if (h > cache_hits_prev_) {
        events->cache_hit(static_cast<std::int64_t>(h - cache_hits_prev_));
      }
      if (m > cache_misses_prev_) {
        events->cache_miss(
            static_cast<std::int64_t>(m - cache_misses_prev_));
      }
      cache_hits_prev_ = h;
      cache_misses_prev_ = m;
    }
  }

  // 6d. Step-end gauges.
  if (metrics != nullptr) {
    double backlog = 0.0;
    double pending = 0.0;
    for (int s = 0; s < num_sats_; ++s) {
      backlog += queues_[s].queued_bytes();
      pending += queues_[s].pending_ack_bytes();
    }
    om_.backlog_bytes->set(backlog);
    om_.pending_ack_bytes->set(pending);
    double station_queued = 0.0;
    for (const backend::StationEdgeQueue& eq : edge_queues_) {
      station_queued += eq.queued_bytes();
    }
    om_.station_queued_bytes->set(station_queued);
    om_.steps->inc();
    if (fm_.stations_down != nullptr) {
      std::int64_t n_down = 0;
      for (const char d : down_) n_down += (d != 0) ? 1 : 0;
      fm_.stations_down->set(static_cast<double>(n_down));
    }
    if (!tm_.share.empty()) {
      for (int t = 0; t < arbiter_->num_tenants(); ++t) {
        tm_.share[t]->set(arbiter_->share(t));
      }
    }
  }

  // 7. Timeseries capture (same StepClock as the event log).
  if (opts_.collect_timeseries) {
    StepRecord rec;
    rec.hours = clock_.end_hours(step);
    rec.delivered_bytes_cum = res_.total_delivered_bytes;
    for (int s = 0; s < num_sats_; ++s) {
      rec.backlog_bytes_total += queues_[s].queued_bytes();
    }
    rec.active_links = static_cast<int>(assigned.size());
    rec.failed_cum = res_.failed_assignments;
    res_.timeseries.push_back(rec);
  }

  ++step_;
  if (step_ == steps_) finalize();
}

void Session::finalize() {
  if (finalized_) return;
  finalized_ = true;

  // Contacts still open at horizon end close at the final step's stamp.
  if (events_ != nullptr) {
    for (const auto& [key, oc] : open_contacts_) {
      events_->contact_close(key.first, key.second, oc.held_steps);
    }
  }
  open_contacts_.clear();

  for (int s = 0; s < num_sats_; ++s) {
    if (om_.dropped_bytes != nullptr) {
      om_.dropped_bytes->inc(queues_[s].dropped_bytes());
    }
  }

  // Whole-run conservation: the result's aggregate counters must agree
  // with the queues' lifetime books.  Generated splits into delivered +
  // dropped + still-queued + awaiting-ack, with failed transmissions
  // (wasted) either re-queued already or still in limbo awaiting their
  // collated report.
#ifdef DGS_ENABLE_DCHECKS
  {
    double offered = 0.0, acked = 0.0, pending = 0.0, queued = 0.0,
           dropped = 0.0;
    for (int s = 0; s < num_sats_; ++s) {
      offered += queues_[s].offered_bytes();
      acked += queues_[s].acked_bytes();
      pending += queues_[s].pending_ack_bytes();
      queued += queues_[s].queued_bytes();
      dropped += queues_[s].dropped_bytes();
    }
    const double tol = 1e-6 * std::max(1.0, offered);
    DGS_CHECK(std::abs(res_.total_generated_bytes - offered) <= tol,
              "generated=" << res_.total_generated_bytes
                           << " != offered=" << offered);
    DGS_CHECK(std::abs(res_.total_generated_bytes -
                       (dropped + queued + pending + acked)) <= tol,
              "generated=" << res_.total_generated_bytes << " vs dropped="
                           << dropped << " + queued=" << queued
                           << " + pending_ack=" << pending << " + acked="
                           << acked);
    // Sent bytes not yet returned by a report are exactly the pending set.
    DGS_CHECK(std::abs((res_.total_delivered_bytes +
                        res_.wasted_transmission_bytes -
                        res_.requeued_bytes) -
                       (acked + pending)) <= tol,
              "delivered=" << res_.total_delivered_bytes << " + wasted="
                           << res_.wasted_transmission_bytes
                           << " - requeued=" << res_.requeued_bytes
                           << " vs acked=" << acked << " + pending_ack="
                           << pending);
  }
#endif
}

std::int64_t Session::run_until_hours(double t_hours) {
  std::int64_t executed = 0;
  while (!done() &&
         static_cast<double>(step_) * dt_ / 3600.0 < t_hours) {
    step();
    ++executed;
  }
  return executed;
}

SimulationResult Session::run_to_end() {
  while (!done()) step();
  finalize();  // Covers degenerate zero-step horizons.
  return report();
}

SimulationResult Session::report() const {
  SimulationResult out = res_;
  for (int s = 0; s < num_sats_; ++s) {
    SatelliteOutcome& o = out.per_satellite[s];
    o.backlog_bytes = queues_[s].queued_bytes();
    o.pending_ack_bytes = queues_[s].pending_ack_bytes();
    o.dropped_bytes = queues_[s].dropped_bytes();
    out.total_dropped_bytes += o.dropped_bytes;
    out.backlog_gb.add(o.backlog_bytes / 1e9);
  }
  for (const backend::StationEdgeQueue& eq : edge_queues_) {
    out.station_queued_bytes += eq.queued_bytes();
  }
  std::int64_t busy_total = 0;
  for (const std::int64_t b : station_busy_) busy_total += b;
  out.steps = step_;
  out.mean_station_utilization =
      step_ > 0 ? static_cast<double>(busy_total) /
                      static_cast<double>(step_ * num_stations_)
                : 0.0;
  if (arbiter_.has_value()) {
    out.per_tenant.resize(static_cast<std::size_t>(
        arbiter_->num_tenants()));
    for (int t = 0; t < arbiter_->num_tenants(); ++t) {
      const TenantSpec& spec = arbiter_->tenant(t);
      TenantOutcome& to = out.per_tenant[static_cast<std::size_t>(t)];
      to.name = spec.name;
      to.weight = spec.weight;
      to.sla_latency_minutes = spec.sla_latency_minutes;
      to.num_satellites = static_cast<int>(spec.satellites.size());
      for (const int s : spec.satellites) {
        to.generated_bytes += out.per_satellite[s].generated_bytes;
        to.backlog_bytes += queues_[s].queued_bytes();
      }
      to.delivered_bytes = arbiter_->delivered_bytes(t);
      to.assignments = arbiter_->assignments(t);
      to.entitlement = arbiter_->entitlement(t);
      to.share = arbiter_->share(t);
      to.latency_minutes = tenant_latency_[static_cast<std::size_t>(t)];
      const std::size_t delivered_chunks =
          tenant_latency_[static_cast<std::size_t>(t)].size();
      to.sla_attainment =
          delivered_chunks == 0
              ? 1.0
              : static_cast<double>(
                    tenant_sla_ok_[static_cast<std::size_t>(t)]) /
                    static_cast<double>(delivered_chunks);
    }
  }
  return out;
}

std::uint32_t Session::options_crc32() const {
  BinaryWriter w;
  put_options(w, opts_);
  return util::crc32(
      {reinterpret_cast<const std::uint8_t*>(w.data().data()),
       w.data().size()});
}

void Session::snapshot(std::ostream& out) const {
  std::vector<std::pair<std::string, std::string>> sections;

  {  // "result": the accumulators (derived fields are report()-time).
    BinaryWriter w;
    put_samples(w, res_.latency_minutes);
    put_samples(w, res_.urgent_latency_minutes);
    put_samples(w, res_.bulk_latency_minutes);
    put_samples(w, res_.backlog_gb);
    put_samples(w, res_.ack_delay_minutes);
    put_samples(w, res_.cloud_latency_minutes);
    w.f64(res_.station_queued_bytes);
    w.u64(res_.timeseries.size());
    for (const StepRecord& r : res_.timeseries) {
      w.f64(r.hours);
      w.f64(r.delivered_bytes_cum);
      w.f64(r.backlog_bytes_total);
      w.i32(r.active_links);
      w.i64(r.failed_cum);
    }
    w.u64(res_.per_satellite.size());
    for (const SatelliteOutcome& o : res_.per_satellite) {
      w.f64(o.generated_bytes);
      w.f64(o.delivered_bytes);
      w.f64(o.backlog_bytes);
      w.f64(o.pending_ack_bytes);
      w.f64(o.dropped_bytes);
      w.f64(o.storage_high_water_bytes);
      w.i32(o.tx_contacts);
    }
    w.f64(res_.total_generated_bytes);
    w.f64(res_.total_delivered_bytes);
    w.f64(res_.total_dropped_bytes);
    w.f64(res_.assigned_capacity_bytes);
    w.i64(res_.assignments);
    w.f64(res_.total_matched_value);
    w.i64(res_.failed_assignments);
    w.f64(res_.wasted_transmission_bytes);
    w.f64(res_.requeued_bytes);
    w.i64(res_.slew_events);
    w.f64(res_.outage_lost_bytes);
    w.i64(res_.ack_retries);
    w.i64(res_.replans);
    w.i64(res_.plan_upload_failures);
    w.i64(res_.steps);
    w.f64(res_.mean_station_utilization);
    w.u64(open_contacts_.size());
    for (const auto& [key, oc] : open_contacts_) {
      w.i32(key.first);
      w.i32(key.second);
      w.i32(put_modcod(oc.modcod));
      w.i32(oc.held_steps);
      w.i64(oc.last_step);
    }
    sections.emplace_back("result", w.take());
  }

  {  // "queues": per-satellite onboard stores + plan-upload stamps.
    BinaryWriter w;
    w.u64(queues_.size());
    for (const OnboardQueue& q : queues_) {
      w.u64(q.chunks().size());
      for (const DataChunk& c : q.chunks()) put_chunk(w, c);
      w.u64(q.pending_batches().size());
      for (const OnboardQueue::PendingBatch& b : q.pending_batches()) {
        put_epoch(w, b.sent);
        put_epoch(w, b.report_ready);
        w.f64(b.bytes);
        w.u8(b.received ? 1 : 0);
        w.u64(b.pieces.size());
        for (const DataChunk& c : b.pieces) put_chunk(w, c);
      }
      w.f64(q.queued_bytes());
      w.f64(q.pending_ack_bytes());
      w.f64(q.dropped_bytes());
      w.f64(q.offered_bytes());
      w.f64(q.acked_bytes());
    }
    for (const util::Epoch& e : last_plan_) put_epoch(w, e);
    sections.emplace_back("queues", w.take());
  }

  {  // "stations": busy/served/fault masks + edge queues.
    BinaryWriter w;
    w.u64(static_cast<std::uint64_t>(num_stations_));
    for (int g = 0; g < num_stations_; ++g) {
      w.i64(station_busy_[g]);
      w.i32(prev_served_[g]);
    }
    w.u8(station_faults_ ? 1 : 0);
    if (station_faults_) {
      for (const char d : prev_down_) w.u8(static_cast<std::uint8_t>(d));
    }
    w.u8(backhaul_faults_ ? 1 : 0);
    if (backhaul_faults_) {
      for (const double m : prev_backhaul_mult_) w.f64(m);
    }
    w.u8(edge_queues_.empty() ? 0 : 1);
    for (const backend::StationEdgeQueue& eq : edge_queues_) {
      w.u64(eq.items().size());
      for (const backend::EdgeItem& item : eq.items()) {
        put_epoch(w, item.capture);
        put_epoch(w, item.ground_rx);
        w.f64(item.bytes);
        w.f64(item.remaining_bytes);
        w.f64(item.priority);
      }
      w.f64(eq.queued_bytes());
    }
    sections.emplace_back("stations", w.take());
  }

  {  // "planner": the active look-ahead horizon.
    BinaryWriter w;
    w.i64(plan_origin_);
    w.u64(plan_.per_step.size());
    for (const std::vector<ContactEdge>& step_edges : plan_.per_step) {
      w.u64(step_edges.size());
      for (const ContactEdge& e : step_edges) put_edge(w, e);
    }
    sections.emplace_back("planner", w.take());
  }

  {  // "geometry": the memoized step-geometry cache + event-delta bases.
     // Contents AND counters travel together: restoring one without the
     // other would skew the cache_hit/cache_miss deltas of resumed steps.
    BinaryWriter w;
    w.u64(cache_hits_prev_);
    w.u64(cache_misses_prev_);
    const GeometryCache* gc = engine_->geometry_cache();
    w.u8(gc != nullptr ? 1 : 0);
    if (gc != nullptr) {
      w.u64(gc->hits());
      w.u64(gc->misses());
      w.u64(gc->entries().size());
      for (const auto& [key, geom] : gc->entries()) {
        w.i64(key);
        w.u64(geom.sat_ecef.size());
        for (const util::Vec3& v : geom.sat_ecef) {
          w.f64(v.x);
          w.f64(v.y);
          w.f64(v.z);
        }
        w.u64(geom.per_station.size());
        for (const std::vector<VisibleSat>& vis : geom.per_station) {
          w.u64(vis.size());
          for (const VisibleSat& vs : vis) {
            w.i32(vs.sat);
            w.f64(vs.elevation_rad);
            w.f64(vs.range_km);
          }
        }
      }
    }
    sections.emplace_back("geometry", w.take());
  }

  {  // "matcher": warm-start carryover (decides warm vs cold next step).
    BinaryWriter w;
    const WarmStartMatcher& wm = scheduler_->warm_matcher();
    w.u64(wm.prev_pairs().size());
    for (const auto& [sat, station] : wm.prev_pairs()) {
      w.i32(sat);
      w.i32(station);
    }
    w.u64(wm.prev_order().size());
    for (const std::vector<int>& order : wm.prev_order()) {
      w.u64(order.size());
      for (const int g : order) w.i32(g);
    }
    w.i64(wm.warm_hits());
    w.i64(wm.cold_starts());
    w.i64(wm.order_reuses());
    sections.emplace_back("matcher", w.take());
  }

  {  // "tenants": the fair-share books + per-tenant accounting.
    BinaryWriter w;
    w.u8(arbiter_.has_value() ? 1 : 0);
    if (arbiter_.has_value()) {
      w.u64(static_cast<std::uint64_t>(arbiter_->num_tenants()));
      for (int t = 0; t < arbiter_->num_tenants(); ++t) {
        w.f64(arbiter_->delivered_bytes(t));
        w.i64(arbiter_->assignments(t));
        w.i64(tenant_sla_ok_[static_cast<std::size_t>(t)]);
        put_samples(w, tenant_latency_[static_cast<std::size_t>(t)]);
      }
    }
    sections.emplace_back("tenants", w.take());
  }

  {  // "metrics": the registry's folded state, so a resumed run's scrape
     // is byte-identical to an uninterrupted one.
    BinaryWriter w;
    w.u8(opts_.metrics != nullptr ? 1 : 0);
    if (opts_.metrics != nullptr) {
      const std::vector<obs::MetricSnapshot> snap =
          opts_.metrics->snapshot();
      w.u64(snap.size());
      for (const obs::MetricSnapshot& m : snap) {
        w.str(m.name);
        w.str(m.help);
        w.u8(static_cast<std::uint8_t>(m.kind));
        w.f64(m.value);
        w.u64(m.upper_bounds.size());
        for (const double b : m.upper_bounds) w.f64(b);
        w.u64(m.cells.size());
        for (const std::uint64_t c : m.cells) w.u64(c);
        w.f64(m.sum);
      }
    }
    sections.emplace_back("metrics", w.take());
  }

  CheckpointHeader header;
  header.num_satellites = num_sats_;
  header.num_stations = num_stations_;
  header.steps = steps_;
  header.step_index = step_;
  header.step_seconds = dt_;
  header.duration_hours = opts_.duration_hours;
  header.finalized = finalized_;
  header.options_crc32 = options_crc32();
  write_checkpoint(out, header, sections);
}

std::unique_ptr<Session> Session::restore(
    std::istream& in, std::vector<groundseg::SatelliteConfig> sats,
    std::vector<groundseg::GroundStation> stations,
    const weather::WeatherProvider* actual_weather,
    const SimulationOptions& opts) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string data = buffer.str();
  auto session = std::unique_ptr<Session>(
      new Session(std::move(sats), std::move(stations), actual_weather,
                  opts));
  session->apply_checkpoint(data);
  return session;
}

void Session::apply_checkpoint(std::string_view data) {
  CheckpointView view;
  if (const auto e = read_checkpoint(data, &view)) {
    // dgslint: allow(R4) -- renders ArtifactError for the caller/CLI
    throw std::invalid_argument("checkpoint: " + e->where + ": " +
                                e->message);
  }
  const CheckpointHeader& h = view.header;
  const auto mismatch = [](const std::string& what) {
    // dgslint: allow(R4) -- identity mismatch is caller-recoverable
    throw std::invalid_argument("checkpoint: " + what +
                                " does not match this session");
  };
  if (h.num_satellites != num_sats_) mismatch("num_satellites");
  if (h.num_stations != num_stations_) mismatch("num_stations");
  if (h.steps != steps_) mismatch("steps");
  // The header renders the grid at %.6f; compare with matching slack.
  if (std::abs(h.step_seconds - dt_) > 1e-6 * std::max(1.0, dt_)) {
    mismatch("step_seconds");
  }
  if (std::abs(h.duration_hours - opts_.duration_hours) >
      1e-6 * std::max(1.0, opts_.duration_hours)) {
    mismatch("duration_hours");
  }
  if (h.options_crc32 != options_crc32()) mismatch("options_crc32");

  {  // "result"
    BinaryReader r(view.section("result"));
    res_.latency_minutes = get_samples(r);
    res_.urgent_latency_minutes = get_samples(r);
    res_.bulk_latency_minutes = get_samples(r);
    res_.backlog_gb = get_samples(r);
    res_.ack_delay_minutes = get_samples(r);
    res_.cloud_latency_minutes = get_samples(r);
    res_.station_queued_bytes = r.f64();
    const std::uint64_t n_ts = r.u64();
    res_.timeseries.clear();
    res_.timeseries.reserve(n_ts);
    for (std::uint64_t i = 0; i < n_ts; ++i) {
      StepRecord rec;
      rec.hours = r.f64();
      rec.delivered_bytes_cum = r.f64();
      rec.backlog_bytes_total = r.f64();
      rec.active_links = r.i32();
      rec.failed_cum = r.i64();
      res_.timeseries.push_back(rec);
    }
    const std::uint64_t n_sat = r.u64();
    DGS_ENSURE_EQ(n_sat, static_cast<std::uint64_t>(num_sats_));
    for (int s = 0; s < num_sats_; ++s) {
      SatelliteOutcome& o = res_.per_satellite[s];
      o.generated_bytes = r.f64();
      o.delivered_bytes = r.f64();
      o.backlog_bytes = r.f64();
      o.pending_ack_bytes = r.f64();
      o.dropped_bytes = r.f64();
      o.storage_high_water_bytes = r.f64();
      o.tx_contacts = r.i32();
    }
    res_.total_generated_bytes = r.f64();
    res_.total_delivered_bytes = r.f64();
    res_.total_dropped_bytes = r.f64();
    res_.assigned_capacity_bytes = r.f64();
    res_.assignments = r.i64();
    res_.total_matched_value = r.f64();
    res_.failed_assignments = r.i64();
    res_.wasted_transmission_bytes = r.f64();
    res_.requeued_bytes = r.f64();
    res_.slew_events = r.i64();
    res_.outage_lost_bytes = r.f64();
    res_.ack_retries = r.i64();
    res_.replans = r.i64();
    res_.plan_upload_failures = r.i64();
    res_.steps = r.i64();
    res_.mean_station_utilization = r.f64();
    const std::uint64_t n_open = r.u64();
    open_contacts_.clear();
    for (std::uint64_t i = 0; i < n_open; ++i) {
      const int sat = r.i32();
      const int station = r.i32();
      OpenContact oc;
      oc.modcod = get_modcod(r.i32());
      oc.held_steps = r.i32();
      oc.last_step = r.i64();
      open_contacts_.emplace(std::make_pair(sat, station), oc);
    }
    DGS_ENSURE(r.done(), "trailing bytes in checkpoint section 'result'");
  }

  {  // "queues"
    BinaryReader r(view.section("queues"));
    const std::uint64_t n = r.u64();
    DGS_ENSURE_EQ(n, static_cast<std::uint64_t>(num_sats_));
    for (int s = 0; s < num_sats_; ++s) {
      std::deque<DataChunk> chunks;
      const std::uint64_t n_chunks = r.u64();
      for (std::uint64_t i = 0; i < n_chunks; ++i) {
        chunks.push_back(get_chunk(r));
      }
      std::deque<OnboardQueue::PendingBatch> pending;
      const std::uint64_t n_pending = r.u64();
      for (std::uint64_t i = 0; i < n_pending; ++i) {
        OnboardQueue::PendingBatch b;
        b.sent = get_epoch(r);
        b.report_ready = get_epoch(r);
        b.bytes = r.f64();
        b.received = r.u8() != 0;
        const std::uint64_t n_pieces = r.u64();
        for (std::uint64_t j = 0; j < n_pieces; ++j) {
          b.pieces.push_back(get_chunk(r));
        }
        pending.push_back(std::move(b));
      }
      const double queued = r.f64();
      const double pend = r.f64();
      const double dropped = r.f64();
      const double offered = r.f64();
      const double acked = r.f64();
      queues_[s].restore_state(std::move(chunks), std::move(pending),
                               queued, pend, dropped, offered, acked);
    }
    for (int s = 0; s < num_sats_; ++s) last_plan_[s] = get_epoch(r);
    DGS_ENSURE(r.done(), "trailing bytes in checkpoint section 'queues'");
  }

  {  // "stations"
    BinaryReader r(view.section("stations"));
    const std::uint64_t n = r.u64();
    DGS_ENSURE_EQ(n, static_cast<std::uint64_t>(num_stations_));
    for (int g = 0; g < num_stations_; ++g) {
      station_busy_[g] = r.i64();
      prev_served_[g] = r.i32();
    }
    const bool had_station_faults = r.u8() != 0;
    DGS_ENSURE_EQ(had_station_faults, station_faults_);
    if (had_station_faults) {
      for (int g = 0; g < num_stations_; ++g) {
        prev_down_[g] = static_cast<char>(r.u8());
      }
    }
    const bool had_backhaul_faults = r.u8() != 0;
    DGS_ENSURE_EQ(had_backhaul_faults, backhaul_faults_);
    if (had_backhaul_faults) {
      for (int g = 0; g < num_stations_; ++g) {
        prev_backhaul_mult_[g] = r.f64();
      }
    }
    const bool had_edges = r.u8() != 0;
    DGS_ENSURE_EQ(had_edges, !edge_queues_.empty());
    for (backend::StationEdgeQueue& eq : edge_queues_) {
      std::deque<backend::EdgeItem> items;
      const std::uint64_t n_items = r.u64();
      for (std::uint64_t i = 0; i < n_items; ++i) {
        backend::EdgeItem item;
        item.capture = get_epoch(r);
        item.ground_rx = get_epoch(r);
        item.bytes = r.f64();
        item.remaining_bytes = r.f64();
        item.priority = r.f64();
        items.push_back(item);
      }
      const double queued = r.f64();
      eq.restore_state(std::move(items), queued);
    }
    DGS_ENSURE(r.done(), "trailing bytes in checkpoint section 'stations'");
  }

  {  // "planner"
    BinaryReader r(view.section("planner"));
    plan_origin_ = r.i64();
    const std::uint64_t n_steps = r.u64();
    plan_.per_step.assign(n_steps, {});
    for (std::uint64_t i = 0; i < n_steps; ++i) {
      const std::uint64_t n_edges = r.u64();
      plan_.per_step[i].reserve(n_edges);
      for (std::uint64_t j = 0; j < n_edges; ++j) {
        plan_.per_step[i].push_back(get_edge(r));
      }
    }
    DGS_ENSURE(r.done(), "trailing bytes in checkpoint section 'planner'");
  }

  {  // "geometry"
    BinaryReader r(view.section("geometry"));
    cache_hits_prev_ = r.u64();
    cache_misses_prev_ = r.u64();
    const bool had_cache = r.u8() != 0;
    GeometryCache* gc = engine_->mutable_geometry_cache();
    DGS_ENSURE_EQ(had_cache, gc != nullptr);
    if (had_cache) {
      const std::uint64_t hits = r.u64();
      const std::uint64_t misses = r.u64();
      std::map<std::int64_t, StepGeometry> entries;
      const std::uint64_t n_entries = r.u64();
      for (std::uint64_t i = 0; i < n_entries; ++i) {
        const std::int64_t key = r.i64();
        StepGeometry geom;
        const std::uint64_t n_ecef = r.u64();
        geom.sat_ecef.reserve(n_ecef);
        for (std::uint64_t j = 0; j < n_ecef; ++j) {
          util::Vec3 v;
          v.x = r.f64();
          v.y = r.f64();
          v.z = r.f64();
          geom.sat_ecef.push_back(v);
        }
        const std::uint64_t n_st = r.u64();
        geom.per_station.resize(n_st);
        for (std::uint64_t g = 0; g < n_st; ++g) {
          const std::uint64_t n_vis = r.u64();
          geom.per_station[g].reserve(n_vis);
          for (std::uint64_t k = 0; k < n_vis; ++k) {
            VisibleSat vs;
            vs.sat = r.i32();
            vs.elevation_rad = r.f64();
            vs.range_km = r.f64();
            geom.per_station[g].push_back(vs);
          }
        }
        entries.emplace(key, std::move(geom));
      }
      gc->restore_state(std::move(entries), hits, misses);
    }
    DGS_ENSURE(r.done(), "trailing bytes in checkpoint section 'geometry'");
  }

  {  // "matcher"
    BinaryReader r(view.section("matcher"));
    std::vector<std::pair<int, int>> prev_pairs;
    const std::uint64_t n_pairs = r.u64();
    prev_pairs.reserve(n_pairs);
    for (std::uint64_t i = 0; i < n_pairs; ++i) {
      const int sat = r.i32();
      const int station = r.i32();
      prev_pairs.emplace_back(sat, station);
    }
    std::vector<std::vector<int>> prev_order;
    const std::uint64_t n_order = r.u64();
    prev_order.resize(n_order);
    for (std::uint64_t i = 0; i < n_order; ++i) {
      const std::uint64_t m = r.u64();
      prev_order[i].reserve(m);
      for (std::uint64_t j = 0; j < m; ++j) {
        prev_order[i].push_back(r.i32());
      }
    }
    const std::int64_t warm_hits = r.i64();
    const std::int64_t cold_starts = r.i64();
    const std::int64_t order_reuses = r.i64();
    scheduler_->warm_matcher().restore_state(
        std::move(prev_pairs), std::move(prev_order), warm_hits,
        cold_starts, order_reuses);
    DGS_ENSURE(r.done(), "trailing bytes in checkpoint section 'matcher'");
  }

  {  // "tenants"
    BinaryReader r(view.section("tenants"));
    const bool had_tenants = r.u8() != 0;
    DGS_ENSURE_EQ(had_tenants, arbiter_.has_value());
    if (had_tenants) {
      const std::uint64_t n = r.u64();
      DGS_ENSURE_EQ(n, static_cast<std::uint64_t>(
                           arbiter_->num_tenants()));
      std::vector<double> delivered(n);
      std::vector<std::int64_t> assignments(n);
      for (std::uint64_t t = 0; t < n; ++t) {
        delivered[t] = r.f64();
        assignments[t] = r.i64();
        tenant_sla_ok_[t] = r.i64();
        tenant_latency_[t] = get_samples(r);
      }
      arbiter_->restore_state(std::move(delivered),
                              std::move(assignments));
    }
    DGS_ENSURE(r.done(), "trailing bytes in checkpoint section 'tenants'");
  }

  {  // "metrics": restored last so it overwrites the cache counters the
     // geometry section already set (with identical values).  Consumed
     // even when this session has no registry.
    BinaryReader r(view.section("metrics"));
    const bool had_metrics = r.u8() != 0;
    std::vector<obs::MetricSnapshot> snap;
    if (had_metrics) {
      const std::uint64_t n = r.u64();
      snap.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        obs::MetricSnapshot m;
        m.name = r.str();
        m.help = r.str();
        m.kind = r.u8();
        m.value = r.f64();
        const std::uint64_t n_bounds = r.u64();
        m.upper_bounds.reserve(n_bounds);
        for (std::uint64_t j = 0; j < n_bounds; ++j) {
          m.upper_bounds.push_back(r.f64());
        }
        const std::uint64_t n_cells = r.u64();
        m.cells.reserve(n_cells);
        for (std::uint64_t j = 0; j < n_cells; ++j) {
          m.cells.push_back(r.u64());
        }
        m.sum = r.f64();
        snap.push_back(std::move(m));
      }
    }
    if (opts_.metrics != nullptr && !snap.empty()) {
      opts_.metrics->restore(snap);
    }
    DGS_ENSURE(r.done(), "trailing bytes in checkpoint section 'metrics'");
  }

  step_ = h.step_index;
  finalized_ = h.finalized;
}

}  // namespace dgs::core
