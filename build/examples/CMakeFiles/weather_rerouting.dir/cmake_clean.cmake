file(REMOVE_RECURSE
  "CMakeFiles/weather_rerouting.dir/weather_rerouting.cpp.o"
  "CMakeFiles/weather_rerouting.dir/weather_rerouting.cpp.o.d"
  "weather_rerouting"
  "weather_rerouting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weather_rerouting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
