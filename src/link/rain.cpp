#include "src/link/rain.h"

#include <cmath>

#include "src/util/angles.h"
#include "src/util/check.h"
#include "src/util/constants.h"

namespace dgs::link {
namespace {

// ITU-R P.838-3 regression coefficients.
//   log10 k = sum_j a_j * exp(-((log10 f - b_j)/c_j)^2) + m_k*log10 f + c_k
//   alpha   = sum_j a_j * exp(-((log10 f - b_j)/c_j)^2) + m_a*log10 f + c_a
struct Regression {
  const double* a;
  const double* b;
  const double* c;
  int n;
  double m;
  double offset;
};

// k_H
constexpr double kKhA[] = {-5.33980, -0.35351, -0.23789, -0.94158};
constexpr double kKhB[] = {-0.10008, 1.26970, 0.86036, 0.64552};
constexpr double kKhC[] = {1.13098, 0.45400, 0.15354, 0.16817};
constexpr Regression kKh{kKhA, kKhB, kKhC, 4, -0.18961, 0.71147};

// k_V
constexpr double kKvA[] = {-3.80595, -3.44965, -0.39902, 0.50167};
constexpr double kKvB[] = {0.56934, -0.22911, 0.73042, 1.07319};
constexpr double kKvC[] = {0.81061, 0.51059, 0.11899, 0.27195};
constexpr Regression kKv{kKvA, kKvB, kKvC, 4, -0.16398, 0.63297};

// alpha_H
constexpr double kAhA[] = {-0.14318, 0.29591, 0.32177, -5.37610, 16.1721};
constexpr double kAhB[] = {1.82442, 0.77564, 0.63773, -0.96230, -3.29980};
constexpr double kAhC[] = {-0.55187, 0.19822, 0.13164, 1.47828, 3.43990};
constexpr Regression kAh{kAhA, kAhB, kAhC, 5, 0.67849, -1.95537};

// alpha_V
constexpr double kAvA[] = {-0.07771, 0.56727, -0.20238, -48.2991, 48.5833};
constexpr double kAvB[] = {2.33840, 0.95545, 1.14520, 0.791669, 0.791459};
constexpr double kAvC[] = {-0.76284, 0.54039, 0.26809, 0.116226, 0.116479};
constexpr Regression kAv{kAvA, kAvB, kAvC, 5, -0.053739, 0.83433};

double evaluate(const Regression& reg, double log10_f) {
  double sum = 0.0;
  for (int j = 0; j < reg.n; ++j) {
    const double u = (log10_f - reg.b[j]) / reg.c[j];
    sum += reg.a[j] * std::exp(-u * u);
  }
  return sum + reg.m * log10_f + reg.offset;
}

}  // namespace

RainCoefficients rain_coefficients(double freq_ghz, Polarization pol) {
  DGS_ENSURE(freq_ghz >= 1.0 && freq_ghz <= 1000.0,
             "freq=" << freq_ghz << " GHz outside P.838 validity [1, 1000]");
  const double lf = std::log10(freq_ghz);
  const double kh = std::pow(10.0, evaluate(kKh, lf));
  const double kv = std::pow(10.0, evaluate(kKv, lf));
  const double ah = evaluate(kAh, lf);
  const double av = evaluate(kAv, lf);

  switch (pol) {
    case Polarization::kHorizontal:
      return {kh, ah};
    case Polarization::kVertical:
      return {kv, av};
    case Polarization::kCircular: {
      // P.838 combination for tilt angle tau = 45 deg (circular), at the
      // elevation-averaged form: k = (kh+kv)/2, alpha = (kh*ah+kv*av)/(2k).
      const double k = (kh + kv) / 2.0;
      const double alpha = (kh * ah + kv * av) / (2.0 * k);
      return {k, alpha};
    }
  }
  DGS_CHECK(false, "unknown polarization " << static_cast<int>(pol));
}

double rain_specific_attenuation_db_km(double freq_ghz, double rain_mm_h,
                                       Polarization pol) {
  DGS_ENSURE_GE(rain_mm_h, 0.0);
  if (rain_mm_h == 0.0) return 0.0;
  const RainCoefficients c = rain_coefficients(freq_ghz, pol);
  return c.k * std::pow(rain_mm_h, c.alpha);
}

double rain_height_km(double latitude_rad) {
  // P.839 latitude-band climatology (substitute for the digital maps).
  const double lat_deg = std::fabs(util::rad2deg(latitude_rad));
  if (lat_deg <= 23.0) return 5.0;
  return std::max(0.0, 5.0 - 0.075 * (lat_deg - 23.0));
}

double rain_attenuation_db(double freq_ghz, double rain_mm_h,
                           double elevation_rad, double latitude_rad,
                           double station_alt_km, Polarization pol) {
  if (rain_mm_h <= 0.0) return 0.0;
  DGS_ENSURE_GT(elevation_rad, 0.0);
  const double h_r = rain_height_km(latitude_rad);
  const double dh = h_r - station_alt_km;
  if (dh <= 0.0) return 0.0;  // Station above the rain layer.

  const double el = elevation_rad;
  double slant_km;
  if (el >= util::deg2rad(5.0)) {
    slant_km = dh / std::sin(el);
  } else {
    // Spherical-Earth correction for grazing paths (P.618 eq. 2).
    const double re = 8500.0;  // effective Earth radius [km]
    slant_km = 2.0 * dh /
               (std::sqrt(std::sin(el) * std::sin(el) + 2.0 * dh / re) +
                std::sin(el));
  }

  const double gamma =
      rain_specific_attenuation_db_km(freq_ghz, rain_mm_h, pol);
  const double lg = slant_km * std::cos(el);  // horizontal projection
  const double l0 = 35.0 * std::exp(-0.015 * std::min(rain_mm_h, 100.0));
  const double reduction = 1.0 / (1.0 + lg / l0);
  return gamma * slant_km * reduction;
}

}  // namespace dgs::link
