// dgs_serve — multi-tenant service front end for the steppable Session
// API (DESIGN.md §16).
//
//   dgs_serve <tle-file> <stations-csv> [hours]
//             [--tenant <name>:<weight> ...] [--restore <checkpoint>]
//             [--threads <n>] [--stations-subset <file>]
//             [--fault-profile <name>] [--fault-seed <n>]
//             [--events-out <file>]
//
// The binary holds one core::Session and drives it with a newline command
// protocol on stdin; every response line goes to stdout, errors to
// stderr.  Commands:
//
//   step [n]             advance n quanta (default 1)
//   advance <hours>      step until the sim clock reaches <hours>
//   checkpoint <file>    write a dgs.checkpoint.v1 snapshot
//   restore <file>       replace the session from a snapshot
//   report <file|->      write the summary JSON (- = stdout)
//   metrics <file|->     write the Prometheus exposition (- = stdout)
//   quit                 exit (EOF does the same)
//
// --tenant declares fair-share tenants; the fleet is partitioned into
// contiguous equal slices in declaration order (the remainder goes to the
// last tenant).  --restore resumes from a checkpoint before the first
// command is read: the remaining steps reproduce an uninterrupted run
// byte for byte, at any --threads value.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "examples/cli_common.h"
#include "src/core/report.h"
#include "src/core/session.h"
#include "src/groundseg/io.h"
#include "src/obs/events.h"
#include "src/obs/metrics.h"
#include "src/weather/synthetic.h"

namespace {

using namespace dgs;

int usage() {
  std::fprintf(stderr,
               "usage: dgs_serve <tle-file> <stations-csv> [hours]\n"
               "  [--tenant <name>:<weight> ...] [--restore <checkpoint>]\n"
               "%s"
               "commands on stdin: step [n] | advance <hours> | "
               "checkpoint <file> |\n"
               "  restore <file> | report <file|-> | metrics <file|-> | "
               "quit\n",
               examples::common_flags_usage());
  return 2;
}

// "<name>:<weight>" -> TenantSpec with no satellites yet.
bool parse_tenant(const char* arg, core::TenantSpec* spec) {
  const char* colon = std::strchr(arg, ':');
  if (colon == nullptr || colon == arg) return false;
  spec->name.assign(arg, colon - arg);
  char* end = nullptr;
  spec->weight = std::strtod(colon + 1, &end);
  return end != nullptr && *end == '\0' && spec->weight > 0.0;
}

// Contiguous equal slices in declaration order; remainder to the last.
void partition_fleet(int num_sats, std::vector<core::TenantSpec>* tenants) {
  const int n = static_cast<int>(tenants->size());
  const int per = num_sats / n;
  int next = 0;
  for (int t = 0; t < n; ++t) {
    const int count = t + 1 == n ? num_sats - next : per;
    for (int k = 0; k < count; ++k) (*tenants)[t].satellites.push_back(next++);
  }
}

// Writes to `path`, or to stdout when path is "-".
bool with_output(const std::string& path,
                 const std::function<void(std::ostream&)>& fn) {
  if (path == "-") {
    fn(std::cout);
    std::cout.flush();
    return true;
  }
  std::ofstream out(path);
  if (!out) return false;
  fn(out);
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();

  examples::CommonFlags flags;
  std::vector<core::TenantSpec> tenants;
  std::string restore_path;
  core::SimulationOptions opts;
  opts.start = util::Epoch(util::DateTime{2020, 11, 4, 0, 0, 0.0});
  for (int i = 3; i < argc; ++i) {
    const char* v = nullptr;
    if (examples::parse_common_flag(argc, argv, &i, &flags)) {
      continue;
    } else if (std::strcmp(argv[i], "--tenant") == 0 &&
               (v = examples::flag_value(argc, argv, &i))) {
      core::TenantSpec spec;
      if (!parse_tenant(v, &spec)) {
        std::fprintf(stderr, "error: bad --tenant %s (want name:weight)\n",
                     v);
        return 2;
      }
      tenants.push_back(std::move(spec));
    } else if (std::strcmp(argv[i], "--restore") == 0 &&
               (v = examples::flag_value(argc, argv, &i))) {
      restore_path = v;
    } else {
      opts.duration_hours = std::atof(argv[i]);
    }
  }

  try {
    const auto catalog = groundseg::load_tle_file(argv[1]);
    const auto stations = groundseg::load_station_file(argv[2]);
    if (catalog.empty() || stations.empty()) {
      std::fprintf(stderr, "error: empty catalog or station list\n");
      return 2;
    }
    std::vector<groundseg::SatelliteConfig> sats;
    for (const auto& tle : catalog) {
      groundseg::SatelliteConfig sc;
      sc.id = static_cast<int>(sats.size());
      sc.name = tle.name;
      sc.tle = tle;
      sats.push_back(std::move(sc));
    }

    examples::apply_common_flags(flags, static_cast<int>(stations.size()),
                                 &opts);
    if (!tenants.empty()) {
      partition_fleet(static_cast<int>(sats.size()), &tenants);
      opts.tenants = tenants;
    }

    obs::Registry registry;
    opts.metrics = &registry;
    std::ofstream events_file;
    obs::EventLog event_log;
    if (!flags.events_out.empty()) {
      events_file.open(flags.events_out);
      event_log = obs::EventLog(&events_file);
      opts.events = &event_log;
    }

    weather::SyntheticWeatherProvider wx(42, opts.start,
                                         opts.duration_hours + 1.0);
    std::unique_ptr<core::Session> session;
    if (!restore_path.empty()) {
      std::ifstream in(restore_path, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "error: cannot read %s\n",
                     restore_path.c_str());
        return 2;
      }
      session = core::Session::restore(in, sats, stations, &wx, opts);
    } else {
      session = std::make_unique<core::Session>(sats, stations, &wx, opts);
    }
    std::printf("ready step=%lld/%lld tenants=%zu\n",
                static_cast<long long>(session->step_index()),
                static_cast<long long>(session->num_steps()),
                opts.tenants.size());
    std::fflush(stdout);

    std::string line;
    while (std::getline(std::cin, line)) {
      std::istringstream cmd(line);
      std::string verb, arg;
      cmd >> verb >> arg;
      if (verb.empty()) continue;
      if (verb == "quit") break;
      if (verb == "step") {
        std::int64_t n = arg.empty() ? 1 : std::atoll(arg.c_str());
        std::int64_t done = 0;
        for (; done < n && !session->done(); ++done) session->step();
        std::printf("ok step=%lld/%lld advanced=%lld\n",
                    static_cast<long long>(session->step_index()),
                    static_cast<long long>(session->num_steps()),
                    static_cast<long long>(done));
      } else if (verb == "advance") {
        const std::int64_t done = session->run_until_hours(
            std::atof(arg.c_str()));
        std::printf("ok step=%lld/%lld advanced=%lld\n",
                    static_cast<long long>(session->step_index()),
                    static_cast<long long>(session->num_steps()),
                    static_cast<long long>(done));
      } else if (verb == "checkpoint" && !arg.empty()) {
        std::ofstream out(arg, std::ios::binary);
        if (out) session->snapshot(out);
        std::printf(out.good() ? "ok checkpoint=%s\n"
                               : "error checkpoint=%s\n",
                    arg.c_str());
      } else if (verb == "restore" && !arg.empty()) {
        std::ifstream in(arg, std::ios::binary);
        if (in) {
          session = core::Session::restore(in, sats, stations, &wx, opts);
          std::printf("ok step=%lld/%lld restored=%s\n",
                      static_cast<long long>(session->step_index()),
                      static_cast<long long>(session->num_steps()),
                      arg.c_str());
        } else {
          std::printf("error restore=%s\n", arg.c_str());
        }
      } else if (verb == "report" && !arg.empty()) {
        const core::SimulationResult r = session->report();
        const bool ok = with_output(
            arg, [&](std::ostream& out) { core::write_summary_json(out, r); });
        std::printf(ok ? "ok report=%s\n" : "error report=%s\n", arg.c_str());
      } else if (verb == "metrics" && !arg.empty()) {
        const bool ok = with_output(arg, [&](std::ostream& out) {
          registry.write_prometheus(out);
        });
        std::printf(ok ? "ok metrics=%s\n" : "error metrics=%s\n",
                    arg.c_str());
      } else {
        std::printf("error unknown command: %s\n", verb.c_str());
      }
      std::fflush(stdout);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
