// Deterministic random primitives for fault injection.
//
// The standard library's distributions are implementation-defined, so a
// seed would not reproduce across toolchains.  Fault draws therefore use
// a hand-rolled PCG32 (O'Neill's pcg32_oneseq) for sequential streams and
// a SplitMix64 finalizer for stateless keyed draws; both are fully
// specified here and covered by golden tests.
#pragma once

#include <cmath>
#include <cstdint>

namespace dgs::faults {

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.  Used to
/// derive independent stream seeds and for stateless keyed draws.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Folds a key component into a running hash (order-sensitive).
inline std::uint64_t mix_key(std::uint64_t h, std::uint64_t k) {
  return mix64(h ^ k);
}

/// Uniform double in [0, 1) from 53 high bits of a mixed word.
inline double uniform01(std::uint64_t word) {
  return static_cast<double>(word >> 11) * 0x1.0p-53;
}

/// Stateless keyed uniform draw in [0, 1): pure function of its
/// arguments, so the result is independent of evaluation order and
/// thread count.  `stream` namespaces independent fault channels.
inline double keyed_uniform(std::uint64_t seed, std::uint64_t stream,
                            std::uint64_t a, std::uint64_t b,
                            std::uint64_t c) {
  std::uint64_t h = mix_key(seed, stream);
  h = mix_key(h, a);
  h = mix_key(h, b);
  h = mix_key(h, c);
  return uniform01(h);
}

/// Minimal PCG32 (pcg32_oneseq variant): 64-bit LCG state, XSH-RR output.
/// Used where a fault channel needs a *sequence* of draws (churn dwell
/// times); each channel forks its own stream via mix64 so streams are
/// independent.
class Pcg32 {
 public:
  explicit Pcg32(std::uint64_t seed)
      : state_(mix64(seed) + kIncrement) {
    next();
  }

  std::uint32_t next() {
    const std::uint64_t old = state_;
    state_ = old * kMultiplier + kIncrement;
    const auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18) ^ old) >> 27);
    const auto rot = static_cast<std::uint32_t>(old >> 59);
    return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
  }

  /// Uniform double in [0, 1) from two 32-bit outputs.
  double uniform() {
    const std::uint64_t hi = next();
    const std::uint64_t lo = next();
    return uniform01((hi << 32) | lo);
  }

  /// Exponential deviate with the given mean, via inverse CDF.  The
  /// 1 - u argument keeps log() away from 0 exactly.
  double exponential(double mean) {
    return -std::log(1.0 - uniform()) * mean;
  }

 private:
  static constexpr std::uint64_t kMultiplier = 6364136223846793005ULL;
  static constexpr std::uint64_t kIncrement = 1442695040888963407ULL;
  std::uint64_t state_;
};

/// Stream ids namespacing the fault channels (DESIGN.md §11): changing
/// one channel's parameters must not shift another channel's draws.
inline constexpr std::uint64_t kStreamChurn = 0x43485552ULL;      // "CHUR"
inline constexpr std::uint64_t kStreamAckRelay = 0x41434b52ULL;   // "ACKR"
inline constexpr std::uint64_t kStreamPlanUpload = 0x504c414eULL; // "PLAN"
inline constexpr std::uint64_t kStreamCampaign = 0x43414d50ULL;   // "CAMP"

/// Per-sample fault seed for Monte-Carlo campaigns (DESIGN.md §12): the
/// campaign seed and the sample index are mixed through the same keyed
/// SplitMix64 chain the stateless fault draws use, so (a) every sample
/// gets a decorrelated fault-plan seed, (b) sample i's scenario is
/// independent of how many samples the campaign runs, and (c) a single
/// run can be reproduced with
/// `dgs_cli --fault-seed $(campaign_sample_seed(seed, i))`.
inline std::uint64_t campaign_sample_seed(std::uint64_t campaign_seed,
                                          std::int64_t sample_index) {
  return mix_key(mix_key(campaign_seed, kStreamCampaign),
                 static_cast<std::uint64_t>(sample_index));
}

}  // namespace dgs::faults
