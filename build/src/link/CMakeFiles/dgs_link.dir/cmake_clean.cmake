file(REMOVE_RECURSE
  "CMakeFiles/dgs_link.dir/antenna.cpp.o"
  "CMakeFiles/dgs_link.dir/antenna.cpp.o.d"
  "CMakeFiles/dgs_link.dir/budget.cpp.o"
  "CMakeFiles/dgs_link.dir/budget.cpp.o.d"
  "CMakeFiles/dgs_link.dir/clouds.cpp.o"
  "CMakeFiles/dgs_link.dir/clouds.cpp.o.d"
  "CMakeFiles/dgs_link.dir/dvbs2.cpp.o"
  "CMakeFiles/dgs_link.dir/dvbs2.cpp.o.d"
  "CMakeFiles/dgs_link.dir/dvbs2_framing.cpp.o"
  "CMakeFiles/dgs_link.dir/dvbs2_framing.cpp.o.d"
  "CMakeFiles/dgs_link.dir/gases.cpp.o"
  "CMakeFiles/dgs_link.dir/gases.cpp.o.d"
  "CMakeFiles/dgs_link.dir/rain.cpp.o"
  "CMakeFiles/dgs_link.dir/rain.cpp.o.d"
  "CMakeFiles/dgs_link.dir/ttc.cpp.o"
  "CMakeFiles/dgs_link.dir/ttc.cpp.o.d"
  "libdgs_link.a"
  "libdgs_link.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgs_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
