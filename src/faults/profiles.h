// Named fault profiles for the CLI and the ablation benches: canned
// FaultPlan configurations spanning the taxonomy (DESIGN.md §11), so a
// robustness experiment is `--fault-profile storm --fault-seed 7` instead
// of a hand-built plan.
#pragma once

#include <cstdint>
#include <string_view>

#include "src/faults/fault_plan.h"

namespace dgs::faults {

/// Builds the named profile.  `num_stations` lets profiles with concrete
/// per-station windows (backhaul brownouts) pick stations
/// deterministically from `seed`.  Known names (see profile_names()):
///   none      — empty plan (baseline).
///   churn     — station flapping only (MTBF 18 h, MTTR 1.5 h, all
///               stations), the consumer-grade availability regime.
///   flaky-net — ack-relay Internet loss with backoff plus occasional
///               plan-upload failures; stations stay up.
///   brownout  — backhaul degradation windows on ~25% of stations (one in
///               eight a hard blackout); requires station_backhaul_bps.
///   storm     — churn + flaky-net + brownout combined, the worst day.
/// Throws std::invalid_argument for an unknown name.
FaultPlan make_profile(std::string_view name, std::uint64_t seed,
                       int num_stations);

/// Comma-separated list of the known profile names, for usage text.
const char* profile_names();

}  // namespace dgs::faults
