#include "src/core/matching.h"

#include <algorithm>
#include <limits>
#include <sstream>

#include "src/util/check.h"

namespace dgs::core {
namespace {

void validate(const std::vector<Edge>& edges, int num_sats, int num_stations) {
  DGS_ENSURE(num_sats >= 0 && num_stations >= 0,
             "sats=" << num_sats << " stations=" << num_stations);
  for (const Edge& e : edges) {
    DGS_ENSURE(e.sat >= 0 && e.sat < num_sats && e.station >= 0 &&
                   e.station < num_stations,
               "edge endpoint out of range: sat=" << e.sat << " station="
                                                  << e.station);
  }
}

/// Deterministic preference order: higher weight first, then lower partner
/// index.  Used identically on both sides of the market.
bool prefers(double w_new, int idx_new, double w_old, int idx_old) {
  if (w_new != w_old) return w_new > w_old;
  return idx_new < idx_old;
}

}  // namespace

Matching stable_matching(const std::vector<Edge>& edges, int num_sats,
                         int num_stations) {
  validate(edges, num_sats, num_stations);

  // Candidate edges per satellite, best-first.
  std::vector<std::vector<int>> prefs(num_sats);
  for (int i = 0; i < static_cast<int>(edges.size()); ++i) {
    if (edges[i].weight > 0.0) prefs[edges[i].sat].push_back(i);
  }
  for (auto& list : prefs) {
    std::sort(list.begin(), list.end(), [&](int a, int b) {
      return prefers(edges[a].weight, edges[a].station, edges[b].weight,
                     edges[b].station);
    });
  }

  std::vector<int> next_proposal(num_sats, 0);
  std::vector<int> station_edge(num_stations, -1);  // current match per station
  std::vector<int> sat_edge(num_sats, -1);

  // Satellites propose in rounds (classic deferred acceptance).
  std::vector<int> free_sats;
  for (int s = 0; s < num_sats; ++s) {
    if (!prefs[s].empty()) free_sats.push_back(s);
  }
  while (!free_sats.empty()) {
    const int s = free_sats.back();
    free_sats.pop_back();
    bool matched = false;
    while (next_proposal[s] < static_cast<int>(prefs[s].size())) {
      const int ei = prefs[s][next_proposal[s]++];
      const int g = edges[ei].station;
      const int held = station_edge[g];
      if (held == -1) {
        station_edge[g] = ei;
        sat_edge[s] = ei;
        matched = true;
        break;
      }
      if (prefers(edges[ei].weight, s, edges[held].weight, edges[held].sat)) {
        // Station trades up; the displaced satellite re-enters the pool.
        station_edge[g] = ei;
        sat_edge[s] = ei;
        sat_edge[edges[held].sat] = -1;
        free_sats.push_back(edges[held].sat);
        matched = true;
        break;
      }
    }
    (void)matched;
  }

  Matching m;
  for (int g = 0; g < num_stations; ++g) {
    if (station_edge[g] != -1) m.push_back(station_edge[g]);
  }
  return m;
}

Matching optimal_matching(const std::vector<Edge>& edges, int num_sats,
                          int num_stations) {
  validate(edges, num_sats, num_stations);
  if (edges.empty() || num_sats == 0 || num_stations == 0) return {};

  // Compress to nodes that actually carry a positive edge: the contact
  // graph is sparse (most satellites see no station at any instant), and
  // the Hungarian algorithm is cubic in the matrix dimension.
  std::vector<int> sat_map(num_sats, -1), gs_map(num_stations, -1);
  std::vector<int> sat_ids, gs_ids;
  for (const Edge& e : edges) {
    if (e.weight <= 0.0) continue;
    if (sat_map[e.sat] == -1) {
      sat_map[e.sat] = static_cast<int>(sat_ids.size());
      sat_ids.push_back(e.sat);
    }
    if (gs_map[e.station] == -1) {
      gs_map[e.station] = static_cast<int>(gs_ids.size());
      gs_ids.push_back(e.station);
    }
  }
  if (sat_ids.empty()) return {};
  num_sats = static_cast<int>(sat_ids.size());
  num_stations = static_cast<int>(gs_ids.size());

  // Square K x K cost matrix; missing edges cost 0 (equivalent to leaving
  // the node unmatched), real edges cost -weight so minimization maximizes
  // total weight.  Keep the edge index for recovery.
  const int k = std::max(num_sats, num_stations);
  std::vector<double> cost(static_cast<std::size_t>(k) * k, 0.0);
  std::vector<int> edge_of(static_cast<std::size_t>(k) * k, -1);
  for (int i = 0; i < static_cast<int>(edges.size()); ++i) {
    const Edge& e = edges[i];
    if (e.weight <= 0.0) continue;
    const std::size_t idx =
        static_cast<std::size_t>(sat_map[e.sat]) * k + gs_map[e.station];
    if (-e.weight < cost[idx]) {
      cost[idx] = -e.weight;
      edge_of[idx] = i;
    }
  }

  // Hungarian algorithm with potentials (O(K^3)), 1-indexed formulation.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> u(k + 1, 0.0), v(k + 1, 0.0);
  std::vector<int> p(k + 1, 0), way(k + 1, 0);
  for (int i = 1; i <= k; ++i) {
    p[0] = i;
    int j0 = 0;
    std::vector<double> minv(k + 1, kInf);
    std::vector<char> used(k + 1, 0);
    do {
      used[j0] = 1;
      const int i0 = p[j0];
      double delta = kInf;
      int j1 = 0;
      for (int j = 1; j <= k; ++j) {
        if (used[j]) continue;
        const double cur =
            cost[static_cast<std::size_t>(i0 - 1) * k + (j - 1)] - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (int j = 0; j <= k; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      const int j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  Matching m;
  for (int j = 1; j <= k; ++j) {
    const int i = p[j];
    if (i == 0) continue;
    const int ei = edge_of[static_cast<std::size_t>(i - 1) * k + (j - 1)];
    if (ei != -1) m.push_back(ei);
  }
  return m;
}

Matching greedy_matching(const std::vector<Edge>& edges, int num_sats,
                         int num_stations) {
  validate(edges, num_sats, num_stations);
  std::vector<int> order;
  order.reserve(edges.size());
  for (int i = 0; i < static_cast<int>(edges.size()); ++i) {
    if (edges[i].weight > 0.0) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (edges[a].weight != edges[b].weight) {
      return edges[a].weight > edges[b].weight;
    }
    if (edges[a].sat != edges[b].sat) return edges[a].sat < edges[b].sat;
    return edges[a].station < edges[b].station;
  });
  std::vector<char> sat_used(num_sats, 0), gs_used(num_stations, 0);
  Matching m;
  for (int i : order) {
    if (sat_used[edges[i].sat] || gs_used[edges[i].station]) continue;
    sat_used[edges[i].sat] = 1;
    gs_used[edges[i].station] = 1;
    m.push_back(i);
  }
  return m;
}

double matching_value(const std::vector<Edge>& edges, const Matching& m) {
  double total = 0.0;
  for (int i : m) total += edges.at(i).weight;
  return total;
}

bool is_stable(const std::vector<Edge>& edges, const Matching& m, int num_sats,
               int num_stations) {
  validate(edges, num_sats, num_stations);
  std::vector<double> sat_w(num_sats, 0.0), gs_w(num_stations, 0.0);
  std::vector<int> sat_partner(num_sats, -1), gs_partner(num_stations, -1);
  for (int i : m) {
    const Edge& e = edges.at(i);
    sat_w[e.sat] = e.weight;
    gs_w[e.station] = e.weight;
    sat_partner[e.sat] = e.station;
    gs_partner[e.station] = e.sat;
  }
  // A pair blocks iff BOTH sides strictly improve by defecting to it
  // (weak stability, which Gale-Shapley guarantees).
  for (const Edge& e : edges) {
    if (e.weight <= 0.0) continue;
    if (sat_partner[e.sat] == e.station) continue;  // already matched pair
    const bool sat_gains =
        sat_partner[e.sat] == -1 || e.weight > sat_w[e.sat];
    const bool gs_gains =
        gs_partner[e.station] == -1 || e.weight > gs_w[e.station];
    if (sat_gains && gs_gains) return false;
  }
  return true;
}

namespace {

void validate_capacities(const std::vector<Edge>& edges, int num_sats,
                         const std::vector<int>& capacities) {
  validate(edges, num_sats, static_cast<int>(capacities.size()));
  for (int c : capacities) {
    DGS_ENSURE(c >= 0, "station capacity=" << c);
  }
}

}  // namespace

Matching stable_b_matching(const std::vector<Edge>& edges, int num_sats,
                           const std::vector<int>& capacities) {
  validate_capacities(edges, num_sats, capacities);
  const int num_stations = static_cast<int>(capacities.size());

  std::vector<std::vector<int>> prefs(num_sats);
  for (int i = 0; i < static_cast<int>(edges.size()); ++i) {
    if (edges[i].weight > 0.0) prefs[edges[i].sat].push_back(i);
  }
  for (auto& list : prefs) {
    std::sort(list.begin(), list.end(), [&](int a, int b) {
      return prefers(edges[a].weight, edges[a].station, edges[b].weight,
                     edges[b].station);
    });
  }

  // Each station holds up to capacity edges; track its worst held edge.
  std::vector<std::vector<int>> held(num_stations);
  std::vector<int> next_proposal(num_sats, 0);

  auto worst_held = [&](int g) {
    int worst = held[g][0];
    for (int ei : held[g]) {
      if (prefers(edges[worst].weight, edges[worst].sat, edges[ei].weight,
                  edges[ei].sat)) {
        worst = ei;
      }
    }
    return worst;
  };

  std::vector<int> free_sats;
  for (int s = 0; s < num_sats; ++s) {
    if (!prefs[s].empty()) free_sats.push_back(s);
  }
  while (!free_sats.empty()) {
    const int s = free_sats.back();
    free_sats.pop_back();
    while (next_proposal[s] < static_cast<int>(prefs[s].size())) {
      const int ei = prefs[s][next_proposal[s]++];
      const int g = edges[ei].station;
      if (capacities[g] == 0) continue;
      if (static_cast<int>(held[g].size()) < capacities[g]) {
        held[g].push_back(ei);
        break;
      }
      const int worst = worst_held(g);
      if (prefers(edges[ei].weight, s, edges[worst].weight,
                  edges[worst].sat)) {
        // Station trades up; the displaced satellite resumes proposing.
        for (int& h : held[g]) {
          if (h == worst) {
            h = ei;
            break;
          }
        }
        free_sats.push_back(edges[worst].sat);
        break;
      }
    }
  }

  Matching m;
  for (int g = 0; g < num_stations; ++g) {
    for (int ei : held[g]) m.push_back(ei);
  }
  return m;
}

Matching greedy_b_matching(const std::vector<Edge>& edges, int num_sats,
                           const std::vector<int>& capacities) {
  validate_capacities(edges, num_sats, capacities);
  std::vector<int> order;
  order.reserve(edges.size());
  for (int i = 0; i < static_cast<int>(edges.size()); ++i) {
    if (edges[i].weight > 0.0) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (edges[a].weight != edges[b].weight) {
      return edges[a].weight > edges[b].weight;
    }
    if (edges[a].sat != edges[b].sat) return edges[a].sat < edges[b].sat;
    return edges[a].station < edges[b].station;
  });
  std::vector<char> sat_used(num_sats, 0);
  std::vector<int> slots(capacities);
  Matching m;
  for (int i : order) {
    if (sat_used[edges[i].sat] || slots[edges[i].station] == 0) continue;
    sat_used[edges[i].sat] = 1;
    slots[edges[i].station] -= 1;
    m.push_back(i);
  }
  return m;
}

bool is_stable_b_matching(const std::vector<Edge>& edges, const Matching& m,
                          int num_sats, const std::vector<int>& capacities) {
  validate_capacities(edges, num_sats, capacities);
  const int num_stations = static_cast<int>(capacities.size());
  std::vector<double> sat_w(num_sats, 0.0);
  std::vector<int> sat_partner(num_sats, -1);
  std::vector<int> gs_load(num_stations, 0);
  // Worst weight a station currently holds (only meaningful when full).
  std::vector<double> gs_worst(num_stations,
                               std::numeric_limits<double>::infinity());
  for (int i : m) {
    const Edge& e = edges.at(i);
    sat_w[e.sat] = e.weight;
    sat_partner[e.sat] = e.station;
    gs_load[e.station] += 1;
    gs_worst[e.station] = std::min(gs_worst[e.station], e.weight);
  }
  for (const Edge& e : edges) {
    if (e.weight <= 0.0) continue;
    if (sat_partner[e.sat] == e.station) continue;
    if (capacities[e.station] == 0) continue;
    const bool sat_gains = sat_partner[e.sat] == -1 || e.weight > sat_w[e.sat];
    const bool gs_gains = gs_load[e.station] < capacities[e.station] ||
                          e.weight > gs_worst[e.station];
    if (sat_gains && gs_gains) return false;
  }
  return true;
}

std::string validate_matching(const std::vector<Edge>& edges,
                              const Matching& m, int num_sats,
                              int num_stations, bool require_stable) {
  std::ostringstream err;
  std::vector<int> sat_of(num_sats, -1), gs_of(num_stations, -1);
  for (int ei : m) {
    if (ei < 0 || ei >= static_cast<int>(edges.size())) {
      err << "edge index " << ei << " outside [0, " << edges.size() << ")";
      return err.str();
    }
    const Edge& e = edges[ei];
    if (e.sat < 0 || e.sat >= num_sats || e.station < 0 ||
        e.station >= num_stations) {
      err << "edge " << ei << " endpoint out of range: sat=" << e.sat
          << " station=" << e.station;
      return err.str();
    }
    if (e.weight <= 0.0) {
      err << "edge " << ei << " selected with non-positive weight "
          << e.weight;
      return err.str();
    }
    if (sat_of[e.sat] != -1) {
      err << "satellite " << e.sat << " double-booked (edges "
          << sat_of[e.sat] << " and " << ei << ")";
      return err.str();
    }
    if (gs_of[e.station] != -1) {
      err << "station " << e.station << " double-booked (edges "
          << gs_of[e.station] << " and " << ei << ")";
      return err.str();
    }
    sat_of[e.sat] = ei;
    gs_of[e.station] = ei;
  }
  if (require_stable && !is_stable(edges, m, num_sats, num_stations)) {
    err << "matching is unstable: a satellite-station pair exists that both "
           "prefer over their assignments";
    return err.str();
  }
  return {};
}

std::string validate_b_matching(const std::vector<Edge>& edges,
                                const Matching& m, int num_sats,
                                const std::vector<int>& capacities,
                                bool require_stable) {
  const int num_stations = static_cast<int>(capacities.size());
  std::ostringstream err;
  std::vector<int> sat_of(num_sats, -1);
  std::vector<int> gs_load(num_stations, 0);
  for (int ei : m) {
    if (ei < 0 || ei >= static_cast<int>(edges.size())) {
      err << "edge index " << ei << " outside [0, " << edges.size() << ")";
      return err.str();
    }
    const Edge& e = edges[ei];
    if (e.sat < 0 || e.sat >= num_sats || e.station < 0 ||
        e.station >= num_stations) {
      err << "edge " << ei << " endpoint out of range: sat=" << e.sat
          << " station=" << e.station;
      return err.str();
    }
    if (e.weight <= 0.0) {
      err << "edge " << ei << " selected with non-positive weight "
          << e.weight;
      return err.str();
    }
    if (sat_of[e.sat] != -1) {
      err << "satellite " << e.sat << " double-booked (edges "
          << sat_of[e.sat] << " and " << ei << ")";
      return err.str();
    }
    sat_of[e.sat] = ei;
    gs_load[e.station] += 1;
    if (gs_load[e.station] > capacities[e.station]) {
      err << "station " << e.station << " over capacity: holds "
          << gs_load[e.station] << " links, capacity "
          << capacities[e.station];
      return err.str();
    }
  }
  if (require_stable && !is_stable_b_matching(edges, m, num_sats, capacities)) {
    err << "capacitated matching is unstable: a satellite and a station with "
           "spare (or worse-used) capacity both prefer each other";
    return err.str();
  }
  return {};
}

void WarmStartMatcher::reset() {
  prev_pairs_.clear();
  prev_order_.clear();
}

Matching WarmStartMatcher::match(const std::vector<Edge>& edges, int num_sats,
                                 int num_stations) {
  validate(edges, num_sats, num_stations);

  // Positive candidate edges per satellite, in ascending edge order.
  std::vector<std::vector<int>> by_sat(num_sats);
  for (int i = 0; i < static_cast<int>(edges.size()); ++i) {
    if (edges[i].weight > 0.0) by_sat[edges[i].sat].push_back(i);
  }

  // Duplicate (sat, station) pairs make the winning edge index ambiguous
  // under equal weights; detect them with a per-station stamp and fall
  // back to a plain cold start.
  stamp_.assign(static_cast<std::size_t>(num_stations), -1);
  slot_.assign(static_cast<std::size_t>(num_stations), -1);
  bool duplicates = false;
  for (int s = 0; s < num_sats && !duplicates; ++s) {
    for (const int ei : by_sat[s]) {
      const int g = edges[ei].station;
      if (stamp_[g] == s) {
        duplicates = true;
        break;
      }
      stamp_[g] = s;
    }
  }
  if (duplicates) {
    prev_order_.clear();  // station->edge mapping is ambiguous; drop hints
    const Matching m = cold_start(edges, num_sats, num_stations, by_sat,
                                  /*allow_carryover=*/false);
    prev_pairs_.clear();
    for (const int ei : m) prev_pairs_.emplace_back(edges[ei].sat,
                                                    edges[ei].station);
    return m;
  }

  // Tier 1: map the previous pairs onto the new edge set and audit.  The
  // unique-stable-matching property (see header) makes a passing audit a
  // proof that this IS the Gale-Shapley result.
  if (!prev_pairs_.empty()) {
    Matching cand;
    cand.reserve(prev_pairs_.size());
    bool mappable = true;
    for (const auto& [s, g] : prev_pairs_) {
      if (s >= num_sats || g >= num_stations) {
        mappable = false;
        break;
      }
      // At most one candidate edge per (sat, station) here (no dups).
      for (const int ei : by_sat[s]) {
        if (edges[ei].station == g) {
          cand.push_back(ei);
          break;
        }
      }
    }
    if (mappable) {
      // Vanished pairs simply leave both endpoints unmatched; emit in the
      // station-ascending order Gale-Shapley uses.
      std::sort(cand.begin(), cand.end(), [&](int a, int b) {
        return edges[a].station < edges[b].station;
      });
      if (is_stable(edges, cand, num_sats, num_stations)) {
        ++warm_hits_;
        prev_pairs_.clear();
        for (const int ei : cand) {
          prev_pairs_.emplace_back(edges[ei].sat, edges[ei].station);
        }
        return cand;
      }
    }
  }

  // Tier 2: cold start with proposal-pointer carryover.
  const Matching m =
      cold_start(edges, num_sats, num_stations, by_sat,
                 /*allow_carryover=*/true);
  prev_pairs_.clear();
  for (const int ei : m) {
    prev_pairs_.emplace_back(edges[ei].sat, edges[ei].station);
  }
  return m;
}

Matching WarmStartMatcher::cold_start(
    const std::vector<Edge>& edges, int num_sats, int num_stations,
    const std::vector<std::vector<int>>& by_sat, bool allow_carryover) {
  ++cold_starts_;

  // Per-satellite preference lists, best-first — the exact lists
  // stable_matching sorts, but seeded from the previous instant's order
  // when it still agrees with the new weights.  The order comparator is a
  // strict total order over a satellite's candidates (stations are
  // distinct), so a sequence that passes the adjacent-pair sweep IS the
  // sorted sequence.
  std::vector<std::vector<int>> prefs(num_sats);
  const bool have_orders =
      allow_carryover &&
      static_cast<int>(prev_order_.size()) == num_sats;
  for (int s = 0; s < num_sats; ++s) {
    const std::vector<int>& cand = by_sat[s];
    std::vector<int>& list = prefs[s];
    list = cand;
    if (have_orders &&
        prev_order_[s].size() == cand.size() && !cand.empty()) {
      for (const int ei : cand) {
        stamp_[edges[ei].station] = s;
        slot_[edges[ei].station] = ei;
      }
      bool ok = true;
      for (std::size_t k = 0; k < prev_order_[s].size(); ++k) {
        const int g = prev_order_[s][k];
        if (g < 0 || g >= num_stations || stamp_[g] != s) {
          ok = false;
          break;
        }
        list[k] = slot_[g];
        if (k > 0 && !prefers(edges[list[k - 1]].weight,
                              edges[list[k - 1]].station,
                              edges[list[k]].weight,
                              edges[list[k]].station)) {
          ok = false;
          break;
        }
      }
      if (ok) {
        ++order_reuses_;
        continue;
      }
      list = cand;  // fall through to a fresh sort
    }
    std::sort(list.begin(), list.end(), [&](int a, int b) {
      return prefers(edges[a].weight, edges[a].station, edges[b].weight,
                     edges[b].station);
    });
  }

  // Remember the station orders for the next instant.
  prev_order_.assign(static_cast<std::size_t>(num_sats), {});
  for (int s = 0; s < num_sats; ++s) {
    prev_order_[s].reserve(prefs[s].size());
    for (const int ei : prefs[s]) prev_order_[s].push_back(edges[ei].station);
  }

  // Deferred acceptance, identical to stable_matching.
  std::vector<int> next_proposal(num_sats, 0);
  std::vector<int> station_edge(num_stations, -1);
  std::vector<int> sat_edge(num_sats, -1);
  std::vector<int> free_sats;
  for (int s = 0; s < num_sats; ++s) {
    if (!prefs[s].empty()) free_sats.push_back(s);
  }
  while (!free_sats.empty()) {
    const int s = free_sats.back();
    free_sats.pop_back();
    while (next_proposal[s] < static_cast<int>(prefs[s].size())) {
      const int ei = prefs[s][next_proposal[s]++];
      const int g = edges[ei].station;
      const int held = station_edge[g];
      if (held == -1) {
        station_edge[g] = ei;
        sat_edge[s] = ei;
        break;
      }
      if (prefers(edges[ei].weight, s, edges[held].weight, edges[held].sat)) {
        station_edge[g] = ei;
        sat_edge[s] = ei;
        sat_edge[edges[held].sat] = -1;
        free_sats.push_back(edges[held].sat);
        break;
      }
    }
  }

  Matching m;
  for (int g = 0; g < num_stations; ++g) {
    if (station_edge[g] != -1) m.push_back(station_edge[g]);
  }
  return m;
}

std::string_view matcher_name(MatcherKind kind) {
  switch (kind) {
    case MatcherKind::kStable:
      return "stable (Gale-Shapley)";
    case MatcherKind::kOptimal:
      return "optimal (Hungarian)";
    case MatcherKind::kGreedy:
      return "greedy";
  }
  return "unknown";
}

Matching run_matcher(MatcherKind kind, const std::vector<Edge>& edges,
                     int num_sats, int num_stations) {
  switch (kind) {
    case MatcherKind::kStable:
      return stable_matching(edges, num_sats, num_stations);
    case MatcherKind::kOptimal:
      return optimal_matching(edges, num_sats, num_stations);
    case MatcherKind::kGreedy:
      return greedy_matching(edges, num_sats, num_stations);
  }
  DGS_CHECK(false, "run_matcher: unknown matcher kind "
                       << static_cast<int>(kind));
}

}  // namespace dgs::core
