file(REMOVE_RECURSE
  "CMakeFiles/dgs_util.dir/crc32.cpp.o"
  "CMakeFiles/dgs_util.dir/crc32.cpp.o.d"
  "CMakeFiles/dgs_util.dir/stats.cpp.o"
  "CMakeFiles/dgs_util.dir/stats.cpp.o.d"
  "CMakeFiles/dgs_util.dir/time.cpp.o"
  "CMakeFiles/dgs_util.dir/time.cpp.o.d"
  "libdgs_util.a"
  "libdgs_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgs_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
