// ThreadPool micro-benchmarks: fork-join overhead, parallel_for speedup on
// the real SGP4 propagation workload, and ordered-reduction cost.  The Arg
// is the lane count, so `--benchmark_filter=Sgp4` sweeps the speedup curve
// this PR's CI acceptance (≥2.5x at 8 lanes on a multi-core runner) reads.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cmath>

#include "src/groundseg/network_gen.h"
#include "src/orbit/frames.h"
#include "src/orbit/sgp4.h"
#include "src/util/thread_pool.h"

namespace {

using namespace dgs;

const util::Epoch kEpoch(util::DateTime{2020, 11, 4, 0, 0, 0.0});

util::ParallelConfig lanes(benchmark::State& state, int chunk = 8) {
  return util::ParallelConfig{
      .num_threads = static_cast<int>(state.range(0)), .chunk_size = chunk};
}

/// Pure fork-join cost: near-empty body over a small range.
void BM_ForkJoinOverhead(benchmark::State& state) {
  util::ThreadPool pool(lanes(state, 1));
  std::atomic<std::int64_t> sink{0};
  for (auto _ : state) {
    pool.parallel_for(pool.concurrency(),
                      [&](std::int64_t b, std::int64_t e) {
                        sink.fetch_add(e - b, std::memory_order_relaxed);
                      });
  }
  benchmark::DoNotOptimize(sink.load());
}
BENCHMARK(BM_ForkJoinOverhead)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// The dominant simulator kernel: propagate the paper constellation one
/// epoch (SGP4 + TEME->ECEF per satellite).
void BM_ParallelSgp4Constellation(benchmark::State& state) {
  static const auto sats =
      groundseg::generate_constellation(groundseg::NetworkOptions{}, kEpoch);
  static const std::vector<orbit::Sgp4> props = [] {
    std::vector<orbit::Sgp4> ps;
    ps.reserve(sats.size());
    for (const auto& sc : sats) ps.emplace_back(sc.tle);
    return ps;
  }();
  util::ThreadPool pool(lanes(state));
  std::vector<util::Vec3> ecef(props.size());
  double minute = 0.0;
  for (auto _ : state) {
    minute += 1.0;
    const util::Epoch t = kEpoch.plus_seconds(minute * 60.0);
    pool.parallel_for(static_cast<std::int64_t>(props.size()),
                      [&](std::int64_t b, std::int64_t e) {
                        for (std::int64_t i = b; i < e; ++i) {
                          const auto s = static_cast<std::size_t>(i);
                          ecef[s] = orbit::teme_to_ecef(
                              props[s].propagate_to(t).position_km, t);
                        }
                      });
    benchmark::DoNotOptimize(ecef.data());
  }
}
BENCHMARK(BM_ParallelSgp4Constellation)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// Ordered reduction over a transcendental-heavy map, the deterministic
/// aggregation pattern the engine uses.
void BM_ReduceOrdered(benchmark::State& state) {
  util::ThreadPool pool(lanes(state, 256));
  const std::int64_t n = 1 << 16;
  for (auto _ : state) {
    const double total = pool.reduce_ordered<double>(
        n, 0.0,
        [](std::int64_t b, std::int64_t e) {
          double s = 0.0;
          for (std::int64_t i = b; i < e; ++i) {
            s += std::sin(static_cast<double>(i) * 1e-3);
          }
          return s;
        },
        [](double acc, double p) { return acc + p; });
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_ReduceOrdered)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
