// SGP4 propagator: canonical verification vectors, physics invariants, and
// an independent cross-check against RK4 numerical integration of the
// J2-perturbed two-body problem.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "src/orbit/numerical.h"
#include "src/orbit/sgp4.h"
#include "src/orbit/tle.h"
#include "src/util/constants.h"

namespace dgs::orbit {
namespace {

constexpr const char* kVanguardL1 =
    "1 00005U 58002B   00179.78495062  .00000023  00000-0  28098-4 0  4753";
constexpr const char* kVanguardL2 =
    "2 00005  34.2682 348.7242 1859667 331.7664  19.3264 10.82419157413667";
constexpr const char* kIssL1 =
    "1 25544U 98067A   08264.51782528 -.00002182  00000-0 -11606-4 0  2927";
constexpr const char* kIssL2 =
    "2 25544  51.6416 247.4627 0006703 130.5360 325.0288 15.72125391563537";

void expect_state_near(const TemeState& s, double x, double y, double z,
                       double vx, double vy, double vz, double pos_tol_km,
                       double vel_tol_km_s) {
  EXPECT_NEAR(s.position_km.x, x, pos_tol_km);
  EXPECT_NEAR(s.position_km.y, y, pos_tol_km);
  EXPECT_NEAR(s.position_km.z, z, pos_tol_km);
  EXPECT_NEAR(s.velocity_km_s.x, vx, vel_tol_km_s);
  EXPECT_NEAR(s.velocity_km_s.y, vy, vel_tol_km_s);
  EXPECT_NEAR(s.velocity_km_s.z, vz, vel_tol_km_s);
}

// Reference values from the standard SGP4 verification output (Vallado,
// "Revisiting Spacetrack Report #3", satellite 00005, WGS-72).
TEST(Sgp4, VerificationVectorSat00005) {
  const Sgp4 prop(parse_tle(kVanguardL1, kVanguardL2));
  expect_state_near(prop.propagate(0.0), 7022.46529266, -1400.08296755,
                    0.03995155, 1.893841015, 6.405893759, 4.534807250, 1e-5,
                    1e-8);
  expect_state_near(prop.propagate(360.0), -7154.03120202, -3783.17682504,
                    -3536.19412294, 4.741887409, -4.151817765, -2.093935425,
                    1e-5, 1e-8);
  expect_state_near(prop.propagate(720.0), -7134.59340119, 6531.68641334,
                    3260.27186483, -4.113793027, -2.911922039, -2.557327851,
                    1e-5, 1e-8);
}

TEST(Sgp4, RecoveredMeanMotionIsCloseToKozai) {
  const Tle t = parse_tle(kIssL1, kIssL2);
  const Sgp4 prop(t);
  const double kozai_rad_min =
      t.mean_motion_revs_per_day * util::kTwoPi / 1440.0;
  // Un-Kozai correction is a small (<0.1%) adjustment for LEO.
  EXPECT_NEAR(prop.mean_motion_rad_per_min() / kozai_rad_min, 1.0, 1e-3);
  EXPECT_NEAR(prop.period_minutes(), t.period_minutes(), 0.1);
}

TEST(Sgp4, OrbitalRadiusWithinEllipseBounds) {
  const Tle t = parse_tle(kIssL1, kIssL2);
  const Sgp4 prop(t);
  const double a = t.semi_major_axis_km();
  for (double ts = 0.0; ts <= 720.0; ts += 7.0) {
    const double r = prop.propagate(ts).position_km.norm();
    // Allow ~20 km slack for short-period J2 oscillation of the osculating
    // radius around the mean ellipse.
    EXPECT_GT(r, a * (1.0 - t.eccentricity) - 20.0) << "t=" << ts;
    EXPECT_LT(r, a * (1.0 + t.eccentricity) + 20.0) << "t=" << ts;
  }
}

TEST(Sgp4, PeriodicityOfGeometry) {
  const Tle t = parse_tle(kIssL1, kIssL2);
  const Sgp4 prop(t);
  const double period_min = prop.period_minutes();
  const double r0 = prop.propagate(0.0).position_km.norm();
  const double r1 = prop.propagate(period_min).position_km.norm();
  // After one orbit the radius returns near its initial value.
  EXPECT_NEAR(r0, r1, 5.0);
}

TEST(Sgp4, SpeedConsistentWithVisViva) {
  const Tle t = parse_tle(kIssL1, kIssL2);
  const Sgp4 prop(t);
  const double a = t.semi_major_axis_km();
  for (double ts : {0.0, 13.0, 47.0, 200.0}) {
    const TemeState s = prop.propagate(ts);
    const double r = s.position_km.norm();
    const double v_expected =
        std::sqrt(util::wgs72::kMu * (2.0 / r - 1.0 / a));
    EXPECT_NEAR(s.velocity_km_s.norm(), v_expected, 0.02) << "t=" << ts;
  }
}

TEST(Sgp4, DeterministicRepeatedCalls) {
  const Sgp4 prop(parse_tle(kIssL1, kIssL2));
  const TemeState a = prop.propagate(123.456);
  const TemeState b = prop.propagate(123.456);
  EXPECT_EQ(a.position_km, b.position_km);
  EXPECT_EQ(a.velocity_km_s, b.velocity_km_s);
}

TEST(Sgp4, BackwardPropagationWorks) {
  const Sgp4 prop(parse_tle(kIssL1, kIssL2));
  const double r = prop.propagate(-60.0).position_km.norm();
  EXPECT_GT(r, 6600.0);
  EXPECT_LT(r, 6900.0);
}

TEST(Sgp4, RejectsDeepSpaceElementSets) {
  // A Molniya-type 12 h orbit (period >= 225 min) requires SDP4.
  Tle t = parse_tle(kIssL1, kIssL2);
  t.mean_motion_revs_per_day = 2.0;
  t.eccentricity = 0.7;
  EXPECT_THROW(Sgp4{t}, std::domain_error);
}

TEST(Sgp4, ReportsDecay) {
  // An absurdly draggy satellite at very low altitude decays quickly.
  Tle t = parse_tle(kIssL1, kIssL2);
  t.mean_motion_revs_per_day = 16.6;  // ~180 km altitude
  t.bstar = 0.1;
  const Sgp4 prop(t);
  EXPECT_THROW(prop.propagate(10000.0), std::domain_error);
}

// Cross-validation: SGP4 vs an independent RK4 integration of two-body + J2
// dynamics, started from the SGP4 epoch state.  Drag and higher zonal terms
// are negligible for the ISS over these horizons, so the trajectories must
// agree to a few km after 2 orbits and a few tens of km after a day.
class Sgp4NumericalCrossCheck : public ::testing::TestWithParam<double> {};

TEST_P(Sgp4NumericalCrossCheck, AgreesWithRk4J2) {
  const double horizon_min = GetParam();
  const Sgp4 prop(parse_tle(kIssL1, kIssL2));
  const TemeState s0 = prop.propagate(0.0);

  StateVector sv{s0.position_km, s0.velocity_km_s};
  sv = propagate_rk4_j2(sv, horizon_min * 60.0, 5.0);

  const TemeState s1 = prop.propagate(horizon_min);
  const double err_km = (s1.position_km - sv.position_km).norm();
  // Error grows roughly linearly (along-track) with time.
  const double tol_km = 2.0 + horizon_min * 0.03;
  EXPECT_LT(err_km, tol_km) << "horizon " << horizon_min << " min";
}

INSTANTIATE_TEST_SUITE_P(Horizons, Sgp4NumericalCrossCheck,
                         ::testing::Values(10.0, 45.0, 92.0, 184.0, 360.0));

TEST(NumericalPropagator, TotalEnergyConserved) {
  // RK4 sanity: the J2 field is conservative and static in the inertial
  // frame, so total specific energy v^2/2 + U(r) is an exact invariant
  // (up to integration error).
  const Sgp4 prop(parse_tle(kIssL1, kIssL2));
  const TemeState s0 = prop.propagate(0.0);
  StateVector sv{s0.position_km, s0.velocity_km_s};

  auto total_energy = [](const StateVector& s) {
    using namespace util::wgs72;
    const double r = s.position_km.norm();
    const double sin2lat = (s.position_km.z * s.position_km.z) / (r * r);
    // U = -mu/r * [1 - J2 (Re/r)^2 * (3 sin^2(lat) - 1)/2]
    const double u = -kMu / r *
                     (1.0 - kJ2 * (kEarthRadiusKm / r) * (kEarthRadiusKm / r) *
                                (3.0 * sin2lat - 1.0) / 2.0);
    return s.velocity_km_s.dot(s.velocity_km_s) / 2.0 + u;
  };

  const double e0 = total_energy(sv);
  const StateVector s1 = propagate_rk4_j2(sv, 6000.0, 5.0);
  EXPECT_NEAR(total_energy(s1), e0, std::fabs(e0) * 1e-9);
}

TEST(NumericalPropagator, RejectsSubsurfaceState) {
  StateVector sv{{6000.0, 0.0, 0.0}, {0.0, 7.5, 0.0}};
  EXPECT_THROW(propagate_rk4_j2(sv, 60.0), std::domain_error);
}

}  // namespace
}  // namespace dgs::orbit
