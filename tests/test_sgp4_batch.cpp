// Batched SGP4 (SoA) vs the scalar propagator: bit-identical by contract.
#include <gtest/gtest.h>

#include <vector>

#include "src/groundseg/network_gen.h"
#include "src/orbit/frames.h"
#include "src/orbit/sgp4.h"
#include "src/orbit/sgp4_batch.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace dgs::orbit {
namespace {

const util::Epoch kEpoch(util::DateTime{2020, 11, 4, 0, 0, 0.0});

std::vector<Tle> make_fleet(int n, std::uint64_t seed) {
  groundseg::NetworkOptions opts;
  opts.num_satellites = n;
  opts.num_stations = 4;
  opts.seed = seed;
  std::vector<Tle> tles;
  for (const groundseg::SatelliteConfig& sc :
       groundseg::generate_constellation(opts, kEpoch)) {
    tles.push_back(sc.tle);
  }
  return tles;
}

TEST(Sgp4Batch, PropagateOneMatchesScalarBitwise) {
  const std::vector<Tle> tles = make_fleet(17, 42);
  const Sgp4Batch batch(tles);
  ASSERT_EQ(batch.size(), 17);
  util::Rng rng(99);
  for (int trial = 0; trial < 40; ++trial) {
    const util::Epoch t = kEpoch.plus_seconds(rng.uniform(0.0, 86400.0));
    for (int s = 0; s < batch.size(); ++s) {
      const Sgp4 scalar(tles[static_cast<std::size_t>(s)]);
      const TemeState a = scalar.propagate_to(t);
      const TemeState b = batch.propagate_one(s, t);
      EXPECT_EQ(a.position_km, b.position_km);
      EXPECT_EQ(a.velocity_km_s, b.velocity_km_s);
    }
  }
}

TEST(Sgp4Batch, PositionsTemeMatchScalar) {
  const std::vector<Tle> tles = make_fleet(23, 5);
  const Sgp4Batch batch(tles);
  const util::Epoch t = kEpoch.plus_seconds(4321.0);
  std::vector<util::Vec3> out(static_cast<std::size_t>(batch.size()));
  batch.positions_teme(t, out);
  for (int s = 0; s < batch.size(); ++s) {
    const Sgp4 scalar(tles[static_cast<std::size_t>(s)]);
    EXPECT_EQ(out[static_cast<std::size_t>(s)],
              scalar.propagate_to(t).position_km);
  }
}

TEST(Sgp4Batch, PositionsEcefMatchPerSatelliteRotation) {
  // The batch shares one GMST evaluation; it must equal per-satellite
  // teme_to_ecef calls bit for bit.
  const std::vector<Tle> tles = make_fleet(11, 8);
  const Sgp4Batch batch(tles);
  util::Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const util::Epoch t = kEpoch.plus_seconds(rng.uniform(0.0, 7200.0));
    std::vector<util::Vec3> out(static_cast<std::size_t>(batch.size()));
    batch.positions_ecef(t, out);
    for (int s = 0; s < batch.size(); ++s) {
      const Sgp4 scalar(tles[static_cast<std::size_t>(s)]);
      EXPECT_EQ(out[static_cast<std::size_t>(s)],
                teme_to_ecef(scalar.propagate_to(t).position_km, t));
    }
  }
}

TEST(Sgp4Batch, ThreadCountDoesNotChangeOutput) {
  const std::vector<Tle> tles = make_fleet(37, 13);
  const Sgp4Batch batch(tles);
  const util::Epoch t = kEpoch.plus_seconds(600.0);
  std::vector<util::Vec3> serial(static_cast<std::size_t>(batch.size()));
  batch.positions_ecef(t, serial);
  for (const int threads : {2, 3, 4}) {
    util::ParallelConfig cfg;
    cfg.num_threads = threads;
    cfg.chunk_size = 5;
    util::ThreadPool pool(cfg);
    std::vector<util::Vec3> parallel(static_cast<std::size_t>(batch.size()));
    batch.positions_ecef(t, parallel, &pool);
    EXPECT_EQ(serial, parallel) << "threads=" << threads;
  }
}

TEST(Sgp4Batch, EpochAccessorMatchesTle) {
  const std::vector<Tle> tles = make_fleet(5, 21);
  const Sgp4Batch batch(tles);
  for (int s = 0; s < batch.size(); ++s) {
    EXPECT_EQ(batch.epoch(s).jd(),
              tles[static_cast<std::size_t>(s)].epoch.jd());
  }
}

}  // namespace
}  // namespace dgs::orbit
