// GeometryCache semantics: grid mapping, hit/miss accounting, bounded
// capacity with oldest-first eviction, and — through VisibilityEngine —
// identical contact graphs with the cache on, off, hit, or missed.
#include "src/core/geometry_cache.h"

#include <gtest/gtest.h>

#include "src/core/visibility.h"
#include "src/groundseg/network_gen.h"
#include "src/weather/synthetic.h"

namespace {

using namespace dgs;

const util::Epoch kT0(util::DateTime{2020, 11, 4, 0, 0, 0.0});

TEST(GeometryCache, StepKeyMapsGridEpochsOnly) {
  core::GeometryCache cache(kT0, 60.0, 8);
  EXPECT_EQ(cache.step_key(kT0), 0);
  EXPECT_EQ(cache.step_key(kT0.plus_seconds(60.0)), 1);
  EXPECT_EQ(cache.step_key(kT0.plus_seconds(50.0 * 60.0)), 50);
  EXPECT_EQ(cache.step_key(kT0.plus_seconds(-120.0)), -2);
  EXPECT_FALSE(cache.step_key(kT0.plus_seconds(30.0)).has_value());
  EXPECT_FALSE(cache.step_key(kT0.plus_seconds(60.5)).has_value());
}

TEST(GeometryCache, EvictsOldestBeyondCapacity) {
  core::GeometryCache cache(kT0, 60.0, 3);
  for (std::int64_t k = 0; k < 5; ++k) cache.emplace(k);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.find(0), nullptr);  // evicted
  EXPECT_EQ(cache.find(1), nullptr);  // evicted
  EXPECT_NE(cache.find(4), nullptr);  // newest retained
}

TEST(GeometryCache, CountsHitsAndMisses) {
  core::GeometryCache cache(kT0, 60.0, 4);
  EXPECT_EQ(cache.find(7), nullptr);
  cache.emplace(7);
  EXPECT_NE(cache.find(7), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
}

struct EngineFixture : public ::testing::Test {
  EngineFixture() {
    groundseg::NetworkOptions net;
    net.num_satellites = 8;
    net.num_stations = 10;
    net.seed = 5;
    sats = groundseg::generate_constellation(net, kT0);
    stations = groundseg::generate_dgs_stations(net);
  }
  std::vector<groundseg::SatelliteConfig> sats;
  std::vector<groundseg::GroundStation> stations;
  weather::SyntheticWeatherProvider wx{13, kT0, 4.0};
};

void expect_same_edges(const std::vector<core::ContactEdge>& a,
                       const std::vector<core::ContactEdge>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].sat, b[i].sat);
    EXPECT_EQ(a[i].station, b[i].station);
    EXPECT_EQ(a[i].elevation_rad, b[i].elevation_rad);
    EXPECT_EQ(a[i].range_km, b[i].range_km);
    EXPECT_EQ(a[i].predicted_rate_bps, b[i].predicted_rate_bps);
    EXPECT_EQ(a[i].modcod, b[i].modcod);
  }
}

TEST_F(EngineFixture, CachedContactsIdenticalToUncached) {
  core::VisibilityEngine plain(sats, stations, &wx);
  core::VisibilityEngine cached(sats, stations, &wx);
  cached.enable_geometry_cache(kT0, 60.0, 16);

  for (int k = 0; k < 10; ++k) {
    const util::Epoch t = kT0.plus_seconds(k * 60.0);
    expect_same_edges(plain.contacts(t), cached.contacts(t));
  }
  // Re-query the same steps: all hits, identical output.
  const std::uint64_t misses_before = cached.geometry_cache()->misses();
  for (int k = 0; k < 10; ++k) {
    const util::Epoch t = kT0.plus_seconds(k * 60.0);
    expect_same_edges(plain.contacts(t), cached.contacts(t));
  }
  EXPECT_EQ(cached.geometry_cache()->misses(), misses_before);
  EXPECT_GE(cached.geometry_cache()->hits(), 10u);
}

TEST_F(EngineFixture, OffGridQueriesBypassTheCache) {
  core::VisibilityEngine plain(sats, stations, &wx);
  core::VisibilityEngine cached(sats, stations, &wx);
  cached.enable_geometry_cache(kT0, 60.0, 16);
  const util::Epoch t = kT0.plus_seconds(90.0);  // between grid steps
  expect_same_edges(plain.contacts(t), cached.contacts(t));
  EXPECT_EQ(cached.geometry_cache()->size(), 0u);
}

TEST_F(EngineFixture, ThreadedContactsIdenticalToSerial) {
  core::VisibilityEngine serial(sats, stations, &wx);
  core::VisibilityEngine threaded(sats, stations, &wx);
  util::ThreadPool pool(
      util::ParallelConfig{.num_threads = 4, .chunk_size = 2});
  threaded.set_thread_pool(&pool);
  threaded.enable_geometry_cache(kT0, 60.0, 8);
  std::vector<double> leads(sats.size(), 1800.0);  // stale-plan forecasts
  for (int k = 0; k < 6; ++k) {
    const util::Epoch t = kT0.plus_seconds(k * 60.0);
    expect_same_edges(serial.contacts(t, leads), threaded.contacts(t, leads));
  }
}

}  // namespace
