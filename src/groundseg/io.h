// File I/O for element sets and station inventories.
//
// DGS's generators produce synthetic populations, but a deployment works
// from files: TLE catalogs in the standard 2-line/3-line text format (as
// served by Celestrak/Space-Track/SatNOGS) and station inventories as CSV.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/groundseg/station.h"
#include "src/orbit/tle.h"

namespace dgs::groundseg {

/// Parses a TLE catalog from a stream: accepts both bare 2-line sets and
/// 3-line sets with a name line; blank lines and '#' comments are skipped.
/// Throws std::invalid_argument naming the offending line number on
/// malformed input.
std::vector<orbit::Tle> read_tle_catalog(std::istream& in);
std::vector<orbit::Tle> load_tle_file(const std::string& path);

/// Writes a catalog as 3-line sets (name line included when non-empty).
void write_tle_catalog(std::ostream& out,
                       const std::vector<orbit::Tle>& catalog);
void save_tle_file(const std::string& path,
                   const std::vector<orbit::Tle>& catalog);

/// Station CSV columns:
///   id,name,lat_deg,lon_deg,alt_km,dish_m,tx_capable,min_el_deg
/// A header row is written and tolerated on read.  Fields with commas are
/// not supported (station names come from controlled inventories).
std::vector<GroundStation> read_station_csv(std::istream& in);
std::vector<GroundStation> load_station_file(const std::string& path);
void write_station_csv(std::ostream& out,
                       const std::vector<GroundStation>& stations);
void save_station_file(const std::string& path,
                       const std::vector<GroundStation>& stations);

/// Station-subset files (`dgs.stations_subset.v1`): the interchange format
/// between `dgs_netdesign` (which writes the selected subset) and
/// `dgs_cli --stations-subset` (which replays any scenario on it).  Text,
/// one non-negative station id per line; blank lines and '#' comments are
/// skipped on read.  Writers emit ids sorted ascending under a
/// `# dgs.stations_subset.v1` banner so files are byte-comparable.
/// Duplicate or negative ids are rejected naming the offending line.
std::vector<int> read_station_subset(std::istream& in);
std::vector<int> load_station_subset(const std::string& path);
void write_station_subset(std::ostream& out, const std::vector<int>& ids);
void save_station_subset(const std::string& path, const std::vector<int>& ids);

}  // namespace dgs::groundseg
