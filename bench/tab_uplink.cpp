// E15 — hybrid-uplink feasibility table (paper §1/§2: "ground stations
// today support Gbps downlink but only hundreds of Kbps uplink").
//
// Sizes the artifacts the TX-capable stations must push — the downlink
// plan and the collated ack report — against the S-band TT&C channel at
// realistic slant ranges, and reports what fraction of a 7-10 minute pass
// the upload consumes.  The punchline that justifies the hybrid design:
// the whole control plane costs seconds per day of uplink time.
#include <cstdio>

#include "bench/common.h"
#include "src/core/plan.h"
#include "src/link/ttc.h"

int main() {
  using namespace dgs;
  using namespace dgs::bench;

  std::printf("=== E15: TT&C uplink feasibility (Sec. 1-2 hybrid design) "
              "===\n\n");

  const link::TtcUplinkSpec gs;
  const link::SatCommandReceiver sat;

  std::printf("S-band command link (%.0f W, %.0f m dish at %.2f GHz):\n",
              gs.tx_power_w, gs.dish_diameter_m, gs.frequency_hz / 1e9);
  std::printf("  %10s %12s %12s\n", "range", "C/N0", "rate");
  for (double range : {500.0, 800.0, 1200.0, 1800.0, 2500.0}) {
    std::printf("  %7.0f km %9.1f dBHz %8.0f kbps\n", range,
                link::ttc_uplink_cn0_dbhz(gs, sat, range),
                link::ttc_uplink_rate_bps(gs, sat, range) / 1e3);
  }

  // How big are the artifacts?  Size plans from a real scheduled day.
  const Setup setup = make_paper_setup();
  weather::SyntheticWeatherProvider wx(kWeatherSeed, kEpoch, 25.0);
  const core::SimulationResult r =
      core::Simulator(setup.sats, setup.dgs, &wx, day_sim()).run();
  const double slots_per_sat =
      static_cast<double>(r.assignments) /
      static_cast<double>(setup.sats.size());

  std::printf("\nControl-plane artifact sizes (from the scheduled day: "
              "%.0f slots/satellite/day):\n",
              slots_per_sat);
  const std::size_t plan_bytes =
      core::plan_wire_size(static_cast<std::size_t>(slots_per_sat));
  const std::size_t ack_bytes = core::ack_wire_size(
      static_cast<std::size_t>(slots_per_sat));  // <= one range per slot
  std::printf("  24 h downlink plan:   %6zu bytes\n", plan_bytes);
  std::printf("  collated ack report:  %6zu bytes (1 range per slot, "
              "worst case)\n",
              ack_bytes);

  std::printf("\nUpload time vs pass duration (2 s session handshake):\n");
  std::printf("  %10s %10s %14s %22s\n", "range", "rate", "upload",
              "fraction of 8-min pass");
  for (double range : {800.0, 1500.0, 2500.0}) {
    const double rate = link::ttc_uplink_rate_bps(gs, sat, range);
    const double t = core::upload_duration_s(plan_bytes + ack_bytes, rate);
    std::printf("  %7.0f km %6.0f kbps %11.2f s %18.2f%%\n", range,
                rate / 1e3, t, 100.0 * t / (8.0 * 60.0));
  }
  std::printf("\n  conclusion: the whole hybrid control plane fits in "
              "seconds of S-band time — receive-only stations with a thin "
              "TX subset are viable (the paper's central design bet).\n");
  return 0;
}
