#include "src/link/gases.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/util/angles.h"
#include "src/util/check.h"

namespace dgs::link {
namespace {

// (frequency [GHz], zenith attenuation [dB]) knots; representative values
// for a mid-latitude sea-level atmosphere away from the 22.2 GHz water
// vapour and 60 GHz oxygen lines.
constexpr double kFreqs[] = {1.0, 2.0, 4.0, 8.0, 12.0, 16.0,
                             20.0, 22.2, 25.0, 30.0, 40.0};
constexpr double kZenithDb[] = {0.035, 0.038, 0.042, 0.05, 0.08, 0.13,
                                0.35, 0.60, 0.30, 0.24, 0.40};
constexpr int kN = sizeof(kFreqs) / sizeof(kFreqs[0]);

}  // namespace

double gaseous_zenith_attenuation_db(double freq_ghz) {
  DGS_ENSURE_GT(freq_ghz, 0.0);
  if (freq_ghz <= kFreqs[0]) return kZenithDb[0];
  if (freq_ghz >= kFreqs[kN - 1]) return kZenithDb[kN - 1];
  for (int i = 1; i < kN; ++i) {
    if (freq_ghz <= kFreqs[i]) {
      const double t = (freq_ghz - kFreqs[i - 1]) / (kFreqs[i] - kFreqs[i - 1]);
      return kZenithDb[i - 1] * (1.0 - t) + kZenithDb[i] * t;
    }
  }
  return kZenithDb[kN - 1];
}

double gaseous_attenuation_db(double freq_ghz, double elevation_rad) {
  DGS_ENSURE_GT(elevation_rad, 0.0);
  // The zenith value depends only on frequency — a per-radio constant
  // recomputed for every edge of a contact sweep.  Single-entry memo;
  // same function on the same input, so the cached value is
  // bit-identical.  The NaN sentinel never compares equal.
  thread_local double memo_freq_ghz =
      std::numeric_limits<double>::quiet_NaN();
  thread_local double memo_zenith_db = 0.0;
  if (freq_ghz != memo_freq_ghz) {
    memo_zenith_db = gaseous_zenith_attenuation_db(freq_ghz);
    memo_freq_ghz = freq_ghz;
  }
  const double el = std::max(elevation_rad, util::deg2rad(5.0));
  return memo_zenith_db / std::sin(el);
}

}  // namespace dgs::link
