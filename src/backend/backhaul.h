// Ground-station backhaul sizing: DGS vs the VERGE architecture.
//
// Paper §2: VERGE (Lockheed/AWS) streams raw RF samples from each antenna
// to the cloud, where a software receiver decodes them; DGS co-locates the
// receiver with the antenna and backhauls decoded (and optionally
// edge-filtered) data, which "significantly reduces the backhaul capacity
// required ... (by orders of magnitude)" and is what makes X-band rates
// viable on consumer Internet links.  This module quantifies both.
#pragma once

#include "src/link/dvbs2.h"

namespace dgs::backend {

/// Raw-IQ streaming rate [bit/s] for a receiver sampling a carrier of
/// `symbol_rate_hz` with `oversampling` (>= 1, Nyquist headroom + roll-off)
/// and `bits_per_component` per I/Q component.
double raw_iq_backhaul_bps(double symbol_rate_hz, double oversampling = 1.25,
                           int bits_per_component = 8);

/// Decoded-data backhaul rate [bit/s] for a co-located receiver at the
/// given MODCOD: the information rate plus a small transport/framing
/// overhead fraction.
double decoded_backhaul_bps(const link::ModCod& mc, double symbol_rate_hz,
                            double transport_overhead = 0.03);

/// VERGE-to-DGS backhaul ratio at a MODCOD — how many times fatter the
/// pipe must be to stream raw RF instead of decoded frames.
double backhaul_reduction_factor(const link::ModCod& mc,
                                 double symbol_rate_hz,
                                 double oversampling = 1.25,
                                 int bits_per_component = 8,
                                 double transport_overhead = 0.03);

}  // namespace dgs::backend
