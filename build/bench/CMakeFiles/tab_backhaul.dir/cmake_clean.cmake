file(REMOVE_RECURSE
  "CMakeFiles/tab_backhaul.dir/tab_backhaul.cpp.o"
  "CMakeFiles/tab_backhaul.dir/tab_backhaul.cpp.o.d"
  "tab_backhaul"
  "tab_backhaul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_backhaul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
