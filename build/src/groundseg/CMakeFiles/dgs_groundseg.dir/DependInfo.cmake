
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/groundseg/io.cpp" "src/groundseg/CMakeFiles/dgs_groundseg.dir/io.cpp.o" "gcc" "src/groundseg/CMakeFiles/dgs_groundseg.dir/io.cpp.o.d"
  "/root/repo/src/groundseg/network_gen.cpp" "src/groundseg/CMakeFiles/dgs_groundseg.dir/network_gen.cpp.o" "gcc" "src/groundseg/CMakeFiles/dgs_groundseg.dir/network_gen.cpp.o.d"
  "/root/repo/src/groundseg/station.cpp" "src/groundseg/CMakeFiles/dgs_groundseg.dir/station.cpp.o" "gcc" "src/groundseg/CMakeFiles/dgs_groundseg.dir/station.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dgs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/orbit/CMakeFiles/dgs_orbit.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/dgs_link.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
