// Whole-system simulation: conservation laws, ack-free protocol behaviour,
// metric plausibility, option handling.  Uses reduced-scale networks so the
// suite stays fast.
#include <gtest/gtest.h>

#include <stdexcept>

#include "src/core/simulator.h"
#include "src/weather/synthetic.h"

namespace dgs::core {
namespace {

const util::Epoch kEpoch(util::DateTime{2020, 11, 4, 0, 0, 0.0});

groundseg::NetworkOptions small_net() {
  groundseg::NetworkOptions opts;
  opts.num_stations = 25;
  opts.num_satellites = 12;
  opts.tx_fraction = 0.2;
  opts.seed = 5;
  return opts;
}

SimulationOptions short_sim() {
  SimulationOptions opts;
  opts.start = kEpoch;
  opts.duration_hours = 6.0;
  opts.step_seconds = 60.0;
  return opts;
}

class SimulatorTest : public ::testing::Test {
 protected:
  SimulatorTest()
      : sats_(groundseg::generate_constellation(small_net(), kEpoch)),
        stations_(groundseg::generate_dgs_stations(small_net())) {}

  std::vector<groundseg::SatelliteConfig> sats_;
  std::vector<groundseg::GroundStation> stations_;
};

TEST_F(SimulatorTest, RejectsBadInputs) {
  EXPECT_THROW(Simulator({}, stations_, nullptr, short_sim()),
               std::invalid_argument);
  EXPECT_THROW(Simulator(sats_, {}, nullptr, short_sim()),
               std::invalid_argument);
  SimulationOptions bad = short_sim();
  bad.duration_hours = 0.0;
  EXPECT_THROW(Simulator(sats_, stations_, nullptr, bad),
               std::invalid_argument);
  bad = short_sim();
  bad.step_seconds = -1.0;
  EXPECT_THROW(Simulator(sats_, stations_, nullptr, bad),
               std::invalid_argument);
}

TEST_F(SimulatorTest, ByteConservation) {
  Simulator sim(sats_, stations_, nullptr, short_sim());
  const SimulationResult r = sim.run();

  double backlog = 0.0, delivered = 0.0, pending = 0.0, generated = 0.0;
  for (const SatelliteOutcome& o : r.per_satellite) {
    backlog += o.backlog_bytes;
    delivered += o.delivered_bytes;
    pending += o.pending_ack_bytes;
    generated += o.generated_bytes;
    // Per-satellite conservation: generated = delivered + backlog.
    EXPECT_NEAR(o.generated_bytes, o.delivered_bytes + o.backlog_bytes,
                o.generated_bytes * 1e-9 + 1.0);
    // Storage high-water at least the final storage.
    EXPECT_GE(o.storage_high_water_bytes,
              o.backlog_bytes + o.pending_ack_bytes - 1.0);
  }
  EXPECT_NEAR(generated, r.total_generated_bytes, 1.0);
  EXPECT_NEAR(delivered, r.total_delivered_bytes, 1.0);
  EXPECT_NEAR(r.total_generated_bytes,
              r.total_delivered_bytes + backlog,
              r.total_generated_bytes * 1e-9 + 1.0);
  // Pending-ack bytes were delivered, so they can never exceed delivered.
  EXPECT_LE(pending, delivered + 1.0);
}

TEST_F(SimulatorTest, GenerationRateIsHonored) {
  Simulator sim(sats_, stations_, nullptr, short_sim());
  const SimulationResult r = sim.run();
  // 12 satellites x 100 GB/day x 6/24 day.
  EXPECT_NEAR(r.total_generated_bytes, 12 * 100e9 * 0.25, 1e6);
}

TEST_F(SimulatorTest, SomethingIsDelivered) {
  Simulator sim(sats_, stations_, nullptr, short_sim());
  const SimulationResult r = sim.run();
  EXPECT_GT(r.total_delivered_bytes, 0.0);
  EXPECT_GT(r.assignments, 0);
  EXPECT_FALSE(r.latency_minutes.empty());
  EXPECT_EQ(r.backlog_gb.size(), sats_.size());
}

TEST_F(SimulatorTest, LatenciesArePositiveAndBounded) {
  Simulator sim(sats_, stations_, nullptr, short_sim());
  const SimulationResult r = sim.run();
  EXPECT_GE(r.latency_minutes.min(), 0.0);
  EXPECT_LE(r.latency_minutes.max(), 6.0 * 60.0 + 1.0);  // within horizon
}

TEST_F(SimulatorTest, ClearSkyNeverFailsAssignments) {
  // With no weather and rates scheduled from the same clear-sky model,
  // every scheduled slot must close.
  Simulator sim(sats_, stations_, nullptr, short_sim());
  const SimulationResult r = sim.run();
  EXPECT_EQ(r.failed_assignments, 0);
}

TEST_F(SimulatorTest, AcksRequireTxContact) {
  Simulator sim(sats_, stations_, nullptr, short_sim());
  const SimulationResult r = sim.run();
  int tx_contacts = 0;
  for (const SatelliteOutcome& o : r.per_satellite) {
    tx_contacts += o.tx_contacts;
  }
  EXPECT_GT(tx_contacts, 0);
  EXPECT_FALSE(r.ack_delay_minutes.empty());
  // Ack delays are non-negative (ack can arrive in the same step).
  EXPECT_GE(r.ack_delay_minutes.min(), 0.0);
}

TEST_F(SimulatorTest, NoTxStationsMeansNoAcksEver) {
  auto rx_only = stations_;
  for (auto& gs : rx_only) gs.tx_capable = false;
  Simulator sim(sats_, rx_only, nullptr, short_sim());
  const SimulationResult r = sim.run();
  EXPECT_TRUE(r.ack_delay_minutes.empty());
  // Delivered-but-unacked data is still aboard every satellite.
  for (const SatelliteOutcome& o : r.per_satellite) {
    EXPECT_NEAR(o.pending_ack_bytes, o.delivered_bytes, 1.0);
    EXPECT_EQ(o.tx_contacts, 0);
  }
}

TEST_F(SimulatorTest, StorageHighWaterGrowsWithoutAcks) {
  auto rx_only = stations_;
  for (auto& gs : rx_only) gs.tx_capable = false;
  Simulator with_tx(sats_, stations_, nullptr, short_sim());
  Simulator without_tx(sats_, rx_only, nullptr, short_sim());
  const SimulationResult a = with_tx.run();
  const SimulationResult b = without_tx.run();
  double hw_with = 0.0, hw_without = 0.0;
  for (const auto& o : a.per_satellite) hw_with += o.storage_high_water_bytes;
  for (const auto& o : b.per_satellite) {
    hw_without += o.storage_high_water_bytes;
  }
  EXPECT_GE(hw_without, hw_with);
}

TEST_F(SimulatorTest, MorePowerfulNetworkDeliversMore) {
  // Doubling station count cannot reduce delivered volume.
  groundseg::NetworkOptions big = small_net();
  big.num_stations = 50;
  auto more_stations = groundseg::generate_dgs_stations(big);
  Simulator small_sim(sats_, stations_, nullptr, short_sim());
  Simulator big_sim(sats_, more_stations, nullptr, short_sim());
  EXPECT_GE(big_sim.run().total_delivered_bytes,
            small_sim.run().total_delivered_bytes * 0.95);
}

TEST_F(SimulatorTest, WarmStartBacklogIsAccounted) {
  SimulationOptions opts = short_sim();
  opts.initial_backlog_bytes = 5e9;
  Simulator sim(sats_, stations_, nullptr, opts);
  const SimulationResult r = sim.run();
  EXPECT_NEAR(r.total_generated_bytes, 12 * (100e9 * 0.25 + 5e9), 1e6);
  // Warm data is older than the horizon start, so some latencies exceed
  // the warm-start age floor is reflected in the tail.
  EXPECT_GT(r.latency_minutes.max(), opts.initial_backlog_age_hours * 60.0);
}

TEST_F(SimulatorTest, DeterministicAcrossRuns) {
  weather::SyntheticWeatherProvider wx(99, kEpoch, 7.0);
  Simulator a(sats_, stations_, &wx, short_sim());
  Simulator b(sats_, stations_, &wx, short_sim());
  const SimulationResult ra = a.run();
  const SimulationResult rb = b.run();
  EXPECT_DOUBLE_EQ(ra.total_delivered_bytes, rb.total_delivered_bytes);
  EXPECT_EQ(ra.assignments, rb.assignments);
  EXPECT_EQ(ra.failed_assignments, rb.failed_assignments);
}

TEST_F(SimulatorTest, WeatherBlindSchedulingFailsSometimes) {
  // Under real weather, a clear-sky scheduler overestimates rates and some
  // slots must fail; a weather-aware scheduler fails far fewer.
  weather::SyntheticWeatherProvider wx(1234, kEpoch, 7.0);
  SimulationOptions aware = short_sim();
  aware.weather_aware = true;
  aware.couple_forecast_to_plan_upload = false;  // perfect forecasts
  SimulationOptions blind = short_sim();
  blind.weather_aware = false;

  const SimulationResult ra =
      Simulator(sats_, stations_, &wx, aware).run();
  const SimulationResult rb =
      Simulator(sats_, stations_, &wx, blind).run();
  EXPECT_EQ(ra.failed_assignments, 0);  // perfect knowledge never fails
  EXPECT_GE(rb.failed_assignments, ra.failed_assignments);
}

TEST_F(SimulatorTest, UtilizationIsAFraction) {
  Simulator sim(sats_, stations_, nullptr, short_sim());
  const SimulationResult r = sim.run();
  EXPECT_GE(r.mean_station_utilization, 0.0);
  EXPECT_LE(r.mean_station_utilization, 1.0);
}

}  // namespace
}  // namespace dgs::core
