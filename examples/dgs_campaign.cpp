// dgs_campaign — Monte-Carlo campaign front end (DESIGN.md §12).
//
//   dgs_campaign [--profile <name>] [--samples <n>] [--workers <n>]
//                [--seed <n>] [--hours <h>] [--sats <n>] [--stations <n>]
//                [--out <dir>] [--no-metrics] [--no-events]
//   dgs_campaign validate <dir>
//
// The first form runs (or resumes) a campaign: N seeded fault scenarios
// sharded across worker processes, per-sample artifacts under
// <dir>/samples/, and an aggregate JSON with mean / p50 / p99 and 95%
// confidence intervals per metric.  Rerunning the same command resumes
// from the manifest, recomputing only samples whose artifacts are missing
// or invalid; the final aggregate is byte-identical either way.
//
// The second form revalidates a campaign directory against the
// run-artifact schema (manifest, every sample summary and event log, the
// aggregate) and exits nonzero on the first violation.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <iostream>

#include "examples/cli_common.h"
#include "src/campaign/campaign.h"
#include "src/faults/profiles.h"

namespace {

using namespace dgs;

int usage() {
  std::fprintf(stderr,
               "usage: dgs_campaign [--profile <%s>]\n"
               "                    [--samples <n>] [--workers <n>] "
               "[--seed <n>]\n"
               "                    [--hours <h>] [--sats <n>] "
               "[--stations <n>]\n"
               "                    [--out <dir>] [--no-metrics] "
               "[--no-events]\n"
               "       dgs_campaign validate <dir>\n",
               faults::profile_names());
  return 2;
}

int cmd_validate(const char* dir) {
  if (const auto e = campaign::validate_campaign_dir(dir)) {
    std::fprintf(stderr, "invalid: %s: %s\n", e->where.c_str(),
                 e->message.c_str());
    return 1;
  }
  std::printf("%s honours run-artifact schema v%d\n", dir,
              core::kRunArtifactSchemaVersion);
  return 0;
}

int cmd_run(int argc, char** argv) {
  campaign::CampaignOptions opts;
  opts.workers = 4;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      return examples::flag_value(argc, argv, &i);
    };
    const char* v = nullptr;
    if (std::strcmp(argv[i], "--profile") == 0 && (v = next())) {
      opts.profile = v;
    } else if (std::strcmp(argv[i], "--samples") == 0 && (v = next())) {
      opts.samples = std::atoi(v);
    } else if (std::strcmp(argv[i], "--workers") == 0 && (v = next())) {
      opts.workers = std::atoi(v);
    } else if (std::strcmp(argv[i], "--seed") == 0 && (v = next())) {
      opts.campaign_seed = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(argv[i], "--hours") == 0 && (v = next())) {
      opts.duration_hours = std::atof(v);
    } else if (std::strcmp(argv[i], "--sats") == 0 && (v = next())) {
      opts.num_satellites = std::atoi(v);
    } else if (std::strcmp(argv[i], "--stations") == 0 && (v = next())) {
      opts.num_stations = std::atoi(v);
    } else if (std::strcmp(argv[i], "--out") == 0 && (v = next())) {
      opts.out_dir = v;
    } else if (std::strcmp(argv[i], "--no-metrics") == 0) {
      opts.write_metrics = false;
    } else if (std::strcmp(argv[i], "--no-events") == 0) {
      opts.write_events = false;
    } else {
      return usage();
    }
  }
  if (const auto e = opts.validate()) {
    std::fprintf(stderr, "error: CampaignOptions.%s: %s\n",
                 e->field.c_str(), e->message.c_str());
    return 2;
  }

  const campaign::CampaignResult r =
      campaign::run_campaign(opts, &std::cout);

  std::printf("\n%-24s %12s %10s %12s %12s  n\n", "metric", "mean",
              "ci95", "p50", "p99");
  for (const auto& [name, a] : r.metrics) {
    std::printf("%-24s %12.3f \xc2\xb1%9.3f %12.3f %12.3f %3lld\n",
                name.c_str(), a.mean, a.ci95, a.p50, a.p99,
                static_cast<long long>(a.count));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc >= 2 && std::strcmp(argv[1], "validate") == 0) {
      if (argc != 3) return usage();
      return cmd_validate(argv[2]);
    }
    return cmd_run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
