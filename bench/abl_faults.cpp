// E23 — fault-injection ablation: how the paper's distributed design
// degrades under the failure regimes its §1 robustness argument invokes
// (consumer stations that fail often but independently, flaky residential
// Internet, congested backhaul) — and what the look-ahead planner's
// replan-on-failure path recovers.
//
// Sweeps the named fault profiles (DESIGN.md §11) over the 24 h
// paper-scale setup, per-instant first, then re-runs the storm under the
// look-ahead planner where mid-window outages force replans.  All runs
// share one fault seed, so every row is reproducible bit-for-bit.
#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace dgs;
  using namespace dgs::bench;

  constexpr std::uint64_t kFaultSeed = 7;

  std::printf("=== E23: fault injection across the taxonomy (24 h) ===\n\n");
  const Setup setup = make_paper_setup();
  weather::SyntheticWeatherProvider wx(kWeatherSeed, kEpoch, 25.0);
  const int num_stations = static_cast<int>(setup.dgs.size());

  auto report = [](const char* label, const core::SimulationResult& r) {
    std::printf("  %-24s lat med %6.1f p99 %7.1f min | deliv %5.1f%% | "
                "lost %6.2f GB | ack retries %6lld | replans %3lld\n",
                label, r.latency_minutes.median(),
                r.latency_minutes.percentile(99.0),
                100.0 * r.delivered_fraction(),
                r.outage_lost_bytes / 1e9,
                static_cast<long long>(r.ack_retries),
                static_cast<long long>(r.replans));
  };

  // Per-instant matching under each profile.  Backhaul is modelled in
  // every run (the brownout rows need an edge queue; the others keep it
  // for comparability).
  for (const char* profile :
       {"none", "churn", "flaky-net", "brownout", "storm"}) {
    core::SimulationOptions opts = day_sim();
    opts.station_backhaul_bps = 50e6;
    opts.faults = faults::make_profile(profile, kFaultSeed, num_stations);
    report(profile,
           core::Simulator(setup.sats, setup.dgs, &wx, opts).run());
  }

  // The storm again, under the look-ahead planner: plans commit an hour
  // ahead, so churn invalidates them mid-window and the replan path (not
  // just candidate exclusion) carries the recovery.
  {
    core::SimulationOptions opts = day_sim();
    opts.station_backhaul_bps = 50e6;
    opts.lookahead_hours = 1.0;
    opts.faults = faults::make_profile("storm", kFaultSeed, num_stations);
    report("storm + lookahead",
           core::Simulator(setup.sats, setup.dgs, &wx, opts).run());
  }

  std::printf("\n  expected shape: per-instant matching absorbs every "
              "profile almost for free — 173 independent stations are the "
              "paper's robustness claim, and the down-mask keeps data away "
              "from faulted sites, so churn barely moves the delivered "
              "fraction while flaky-net only piles up ack retries.  Under "
              "look-ahead the committed windows do lose bytes when a "
              "station faults mid-window; the replan path bounds the "
              "damage to a rounding error of the ~25 TB day instead of "
              "wasting every remaining window step.\n");
  return 0;
}
