// End-to-end control plane: a real scheduled horizon, converted to the
// per-satellite wire-format plan, must serialize/parse losslessly and fit
// the TT&C uplink budget.
#include <gtest/gtest.h>

#include "src/core/agenda.h"
#include "src/core/plan.h"
#include "src/link/dvbs2_framing.h"
#include "src/link/ttc.h"

namespace dgs::core {
namespace {

const util::Epoch kT0(util::DateTime{2020, 11, 4, 0, 0, 0.0});

class PlanIntegration : public ::testing::Test {
 protected:
  PlanIntegration() {
    groundseg::NetworkOptions net;
    net.num_stations = 30;
    net.num_satellites = 20;
    net.seed = 51;
    sats_ = groundseg::generate_constellation(net, kT0);
    stations_ = groundseg::generate_dgs_stations(net);
    engine_ = std::make_unique<VisibilityEngine>(sats_, stations_, nullptr);
    queues_.resize(sats_.size());
    for (auto& q : queues_) q.generate(60e9, kT0.plus_seconds(-3600));
    LatencyValue phi;
    plan_ = plan_horizon(*engine_, queues_, phi, kT0, 12 * 60, 60.0);
  }

  /// Converts one satellite's share of the horizon plan into the wire
  /// format uploaded at a TX contact.
  DownlinkPlan wire_plan_for(int sat) const {
    DownlinkPlan plan;
    plan.sat_id = static_cast<std::uint32_t>(sat);
    plan.epoch = kT0;
    const auto agendas = build_agendas(*engine_, plan_, kT0, 60.0);
    for (const auto& agenda : agendas) {
      for (const auto& e : agenda.entries) {
        if (e.sat != sat) continue;
        PlanEntry entry;
        entry.start_offset_s =
            static_cast<std::uint32_t>(e.start.seconds_since(kT0) + 0.5);
        entry.duration_s =
            static_cast<std::uint16_t>(e.duration_seconds() + 0.5);
        entry.station_id = static_cast<std::uint16_t>(agenda.station);
        entry.modcod_index = e.modcod_index;
        entry.channels = 1;
        plan.entries.push_back(entry);
      }
    }
    // A satellite executes its plan in time order regardless of which
    // station's agenda each slot came from.
    std::sort(plan.entries.begin(), plan.entries.end(),
              [](const PlanEntry& a, const PlanEntry& b) {
                return a.start_offset_s < b.start_offset_s;
              });
    return plan;
  }

  std::vector<groundseg::SatelliteConfig> sats_;
  std::vector<groundseg::GroundStation> stations_;
  std::unique_ptr<VisibilityEngine> engine_;
  std::vector<OnboardQueue> queues_;
  HorizonPlan plan_;
};

TEST_F(PlanIntegration, EverySatellitePlanRoundTripsLosslessly) {
  int nonempty = 0;
  for (int s = 0; s < static_cast<int>(sats_.size()); ++s) {
    const DownlinkPlan plan = wire_plan_for(s);
    if (plan.entries.empty()) continue;
    ++nonempty;
    const auto bytes = serialize(plan);
    const DownlinkPlan back = parse_plan(bytes);
    ASSERT_EQ(back.entries.size(), plan.entries.size());
    for (std::size_t i = 0; i < plan.entries.size(); ++i) {
      EXPECT_EQ(back.entries[i].start_offset_s,
                plan.entries[i].start_offset_s);
      EXPECT_EQ(back.entries[i].station_id, plan.entries[i].station_id);
      EXPECT_EQ(back.entries[i].modcod_index, plan.entries[i].modcod_index);
    }
  }
  EXPECT_GT(nonempty, static_cast<int>(sats_.size()) / 2);
}

TEST_F(PlanIntegration, ModcodIndicesResolveToTableEntries) {
  for (int s = 0; s < static_cast<int>(sats_.size()); ++s) {
    for (const PlanEntry& e : wire_plan_for(s).entries) {
      // Throws (failing the test) if the index is out of table range.
      const link::ModCod& mc = link::modcod_by_index(e.modcod_index);
      EXPECT_GT(mc.spectral_efficiency, 0.0);
    }
  }
}

TEST_F(PlanIntegration, TwelveHourPlanFitsOneTtcContact) {
  const link::TtcUplinkSpec gs;
  const link::SatCommandReceiver sat_rx;
  for (int s = 0; s < static_cast<int>(sats_.size()); ++s) {
    const DownlinkPlan plan = wire_plan_for(s);
    const auto bytes = serialize(plan);
    // Worst realistic command geometry: 2500 km slant range.
    const double rate = link::ttc_uplink_rate_bps(gs, sat_rx, 2500.0);
    ASSERT_GT(rate, 0.0);
    const double upload_s = upload_duration_s(bytes.size(), rate);
    // A pass lasts 7-10 min; the plan must cost a tiny fraction of one.
    EXPECT_LT(upload_s, 30.0) << "sat " << s << " plan " << bytes.size()
                              << " B";
  }
}

TEST_F(PlanIntegration, PlanEntriesAreChronologicalPerSatellite) {
  for (int s = 0; s < static_cast<int>(sats_.size()); ++s) {
    const DownlinkPlan plan = wire_plan_for(s);
    for (std::size_t i = 1; i < plan.entries.size(); ++i) {
      EXPECT_GE(plan.entries[i].start_offset_s,
                plan.entries[i - 1].start_offset_s +
                    plan.entries[i - 1].duration_s)
          << "sat " << s;
    }
  }
}

}  // namespace
}  // namespace dgs::core
