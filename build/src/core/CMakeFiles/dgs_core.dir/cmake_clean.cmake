file(REMOVE_RECURSE
  "CMakeFiles/dgs_core.dir/agenda.cpp.o"
  "CMakeFiles/dgs_core.dir/agenda.cpp.o.d"
  "CMakeFiles/dgs_core.dir/data_queue.cpp.o"
  "CMakeFiles/dgs_core.dir/data_queue.cpp.o.d"
  "CMakeFiles/dgs_core.dir/lookahead.cpp.o"
  "CMakeFiles/dgs_core.dir/lookahead.cpp.o.d"
  "CMakeFiles/dgs_core.dir/market.cpp.o"
  "CMakeFiles/dgs_core.dir/market.cpp.o.d"
  "CMakeFiles/dgs_core.dir/matching.cpp.o"
  "CMakeFiles/dgs_core.dir/matching.cpp.o.d"
  "CMakeFiles/dgs_core.dir/plan.cpp.o"
  "CMakeFiles/dgs_core.dir/plan.cpp.o.d"
  "CMakeFiles/dgs_core.dir/report.cpp.o"
  "CMakeFiles/dgs_core.dir/report.cpp.o.d"
  "CMakeFiles/dgs_core.dir/scheduler.cpp.o"
  "CMakeFiles/dgs_core.dir/scheduler.cpp.o.d"
  "CMakeFiles/dgs_core.dir/simulator.cpp.o"
  "CMakeFiles/dgs_core.dir/simulator.cpp.o.d"
  "CMakeFiles/dgs_core.dir/value.cpp.o"
  "CMakeFiles/dgs_core.dir/value.cpp.o.d"
  "CMakeFiles/dgs_core.dir/visibility.cpp.o"
  "CMakeFiles/dgs_core.dir/visibility.cpp.o.d"
  "libdgs_core.a"
  "libdgs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
