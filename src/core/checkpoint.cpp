#include "src/core/checkpoint.h"

#include <cinttypes>
#include <cstdio>

#include "src/util/crc32.h"

namespace dgs::core {
namespace {

std::optional<ArtifactError> err(std::string where, std::string message) {
  return ArtifactError{std::move(where), std::move(message)};
}

std::span<const std::uint8_t> as_bytes(std::string_view s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

}  // namespace

std::string render_checkpoint_header(const CheckpointHeader& h) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"schema_version\": %d, \"artifact\": \"checkpoint\", "
      "\"num_satellites\": %d, \"num_stations\": %d, \"steps\": %" PRId64
      ", \"step_index\": %" PRId64
      ", \"step_seconds\": %.6f, \"duration_hours\": %.6f, "
      "\"finalized\": %s, \"options_crc32\": %" PRIu32
      ", \"sections\": %zu, \"payload_bytes\": %" PRIu64
      ", \"payload_crc32\": %" PRIu32 "}",
      kRunArtifactSchemaVersion, h.num_satellites, h.num_stations, h.steps,
      h.step_index, h.step_seconds, h.duration_hours,
      h.finalized ? "true" : "false", h.options_crc32,
      checkpoint_section_names().size(), h.payload_bytes, h.payload_crc32);
  return std::string(buf);
}

void write_checkpoint(
    std::ostream& out, CheckpointHeader header,
    std::span<const std::pair<std::string, std::string>> sections) {
  const auto names = checkpoint_section_names();
  DGS_ENSURE_EQ(sections.size(), names.size());
  std::string payload;
  for (std::size_t i = 0; i < sections.size(); ++i) {
    DGS_ENSURE(sections[i].first == names[i],
               "checkpoint section " << i << " must be '" << names[i]
                                     << "', got '" << sections[i].first
                                     << "'");
    BinaryWriter frame;
    frame.str(sections[i].first);
    frame.u64(sections[i].second.size());
    payload += frame.data();
    payload += sections[i].second;
  }
  header.payload_bytes = payload.size();
  header.payload_crc32 = util::crc32(as_bytes(payload));
  const std::string header_json = render_checkpoint_header(header);
  // Emitting through our own validator guarantees the writer can never
  // produce a header the reader rejects.
  if (auto e = validate_checkpoint_header_json(header_json)) {
    DGS_CHECK(false, "checkpoint writer produced an invalid header: " +
                         e->where + ": " + e->message);
  }
  out << kCheckpointMagic;
  BinaryWriter len;
  len.u64(header_json.size());
  out << len.data() << header_json << payload;
}

std::string_view CheckpointView::section(std::string_view name) const {
  for (const auto& [n, body] : sections) {
    if (n == name) return body;
  }
  DGS_CHECK(false, "unknown checkpoint section requested");
  return {};
}

std::optional<ArtifactError> read_checkpoint(std::string_view data,
                                             CheckpointView* out) {
  if (data.substr(0, kCheckpointMagic.size()) != kCheckpointMagic) {
    return err("checkpoint", "missing dgs.checkpoint.v1 magic");
  }
  std::size_t at = kCheckpointMagic.size();
  if (data.size() - at < 8) {
    return err("checkpoint", "truncated before the header length");
  }
  std::uint64_t header_len = 0;
  for (int i = 0; i < 8; ++i) {
    header_len |= static_cast<std::uint64_t>(
                      static_cast<std::uint8_t>(data[at + i]))
                  << (8 * i);
  }
  at += 8;
  if (header_len > data.size() - at) {
    return err("checkpoint", "header length exceeds the file");
  }
  const std::string_view header_json = data.substr(at, header_len);
  at += header_len;
  if (auto e = validate_checkpoint_header_json(header_json)) return e;

  // Re-parse into the struct; the validator already pinned shape+ranges.
  const JsonValue doc = *parse_restricted_json(header_json);
  CheckpointHeader h;
  h.num_satellites = static_cast<int>(doc.find("num_satellites")->number);
  h.num_stations = static_cast<int>(doc.find("num_stations")->number);
  h.steps = static_cast<std::int64_t>(doc.find("steps")->number);
  h.step_index = static_cast<std::int64_t>(doc.find("step_index")->number);
  h.step_seconds = doc.find("step_seconds")->number;
  h.duration_hours = doc.find("duration_hours")->number;
  h.finalized = doc.find("finalized")->boolean;
  h.options_crc32 =
      static_cast<std::uint32_t>(doc.find("options_crc32")->number);
  h.payload_bytes =
      static_cast<std::uint64_t>(doc.find("payload_bytes")->number);
  h.payload_crc32 =
      static_cast<std::uint32_t>(doc.find("payload_crc32")->number);

  const std::string_view payload = data.substr(at);
  if (payload.size() != h.payload_bytes) {
    return err("checkpoint.payload_bytes",
               "header says " + std::to_string(h.payload_bytes) +
                   " payload bytes, file has " +
                   std::to_string(payload.size()));
  }
  if (util::crc32(as_bytes(payload)) != h.payload_crc32) {
    return err("checkpoint.payload_crc32", "payload CRC mismatch");
  }

  const auto names = checkpoint_section_names();
  std::vector<std::pair<std::string, std::string_view>> sections;
  std::size_t p = 0;
  for (const char* expected : names) {
    const std::string where = std::string("checkpoint.") + expected;
    if (payload.size() - p < 4) return err(where, "truncated section name");
    std::uint32_t name_len = 0;
    for (int i = 0; i < 4; ++i) {
      name_len |= static_cast<std::uint32_t>(
                      static_cast<std::uint8_t>(payload[p + i]))
                  << (8 * i);
    }
    p += 4;
    if (payload.size() - p < name_len) {
      return err(where, "truncated section name");
    }
    const std::string_view name = payload.substr(p, name_len);
    p += name_len;
    if (name != expected) {
      return err(where, "expected section '" + std::string(expected) +
                            "', got '" + std::string(name) + "'");
    }
    if (payload.size() - p < 8) return err(where, "truncated section size");
    std::uint64_t body_len = 0;
    for (int i = 0; i < 8; ++i) {
      body_len |= static_cast<std::uint64_t>(
                      static_cast<std::uint8_t>(payload[p + i]))
                  << (8 * i);
    }
    p += 8;
    if (payload.size() - p < body_len) {
      return err(where, "section body exceeds the payload");
    }
    sections.emplace_back(std::string(name), payload.substr(p, body_len));
    p += body_len;
  }
  if (p != payload.size()) {
    return err("checkpoint", "trailing bytes after the final section");
  }
  if (out != nullptr) {
    out->header = h;
    out->sections = std::move(sections);
  }
  return std::nullopt;
}

std::optional<ArtifactError> validate_checkpoint(std::string_view data) {
  return read_checkpoint(data, nullptr);
}

}  // namespace dgs::core
