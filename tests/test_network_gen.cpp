// Synthetic network generator: station footprint, constellation validity,
// TX subset, constraints, subsampling.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>

#include "src/groundseg/network_gen.h"
#include "src/orbit/sgp4.h"
#include "src/util/angles.h"

namespace dgs::groundseg {
namespace {

using util::deg2rad;
using util::rad2deg;

const util::Epoch kEpoch(util::DateTime{2020, 11, 4, 0, 0, 0.0});

TEST(StationGen, CountAndDeterminism) {
  NetworkOptions opts;
  const auto a = generate_dgs_stations(opts);
  const auto b = generate_dgs_stations(opts);
  ASSERT_EQ(a.size(), 173u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].location.latitude_rad, b[i].location.latitude_rad);
    EXPECT_EQ(a[i].tx_capable, b[i].tx_capable);
  }
}

TEST(StationGen, PoolModeMatchesLegacyByteForByte) {
  // network_gen.h promises: (pool_size, pool_seed) == (num_stations, seed)
  // reproduces the legacy generator exactly.  This pin is what lets
  // netdesign candidate pools interoperate with every existing scenario.
  NetworkOptions legacy;
  legacy.num_stations = 40;
  legacy.seed = 9;
  NetworkOptions pooled = legacy;
  pooled.pool_size = 40;
  pooled.pool_seed = 9;
  const auto a = generate_dgs_stations(legacy);
  const auto b = generate_dgs_stations(pooled);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_DOUBLE_EQ(a[i].location.latitude_rad, b[i].location.latitude_rad);
    EXPECT_DOUBLE_EQ(a[i].location.longitude_rad,
                     b[i].location.longitude_rad);
    EXPECT_DOUBLE_EQ(a[i].location.altitude_km, b[i].location.altitude_km);
    EXPECT_EQ(a[i].tx_capable, b[i].tx_capable);
    EXPECT_DOUBLE_EQ(a[i].min_elevation_rad, b[i].min_elevation_rad);
    EXPECT_EQ(a[i].beam_count, b[i].beam_count);
  }
  // And a pool bigger than the scenario's station count must leave the
  // default-options generation untouched (pool_size = 0 path).
  NetworkOptions untouched;
  untouched.num_stations = 40;
  untouched.seed = 9;
  const auto c = generate_dgs_stations(untouched);
  ASSERT_EQ(a.size(), c.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].location.latitude_rad, c[i].location.latitude_rad);
  }
}

TEST(StationGen, FootprintMatchesSatnogsShape) {
  const auto stations = generate_dgs_stations(NetworkOptions{});
  int north = 0, europe_ish = 0;
  for (const auto& gs : stations) {
    const double lat = rad2deg(gs.location.latitude_rad);
    const double lon = rad2deg(gs.location.longitude_rad);
    if (lat > 0.0) ++north;
    if (lat > 36.0 && lat < 69.0 && lon > -10.0 && lon < 40.0) ++europe_ish;
  }
  // SatNOGS is strongly northern-hemisphere and Europe-heavy.
  const auto share = [&](double f) {
    return static_cast<int>(static_cast<double>(stations.size()) * f);
  };
  EXPECT_GT(north, share(0.6));
  EXPECT_GT(europe_ish, share(0.3));
}

TEST(StationGen, TxFractionRespected) {
  NetworkOptions opts;
  opts.tx_fraction = 0.10;
  const auto stations = generate_dgs_stations(opts);
  const int tx = static_cast<int>(
      std::count_if(stations.begin(), stations.end(),
                    [](const GroundStation& g) { return g.tx_capable; }));
  EXPECT_NEAR(tx, 17, 1);  // 10% of 173
}

TEST(StationGen, AtLeastOneTxEvenAtZeroFraction) {
  NetworkOptions opts;
  opts.tx_fraction = 0.0;
  const auto stations = generate_dgs_stations(opts);
  EXPECT_EQ(std::count_if(stations.begin(), stations.end(),
                          [](const GroundStation& g) { return g.tx_capable; }),
            1);
}

TEST(StationGen, ElevationMasksWithinAmateurRange) {
  for (const auto& gs : generate_dgs_stations(NetworkOptions{})) {
    EXPECT_GE(gs.min_elevation_rad, deg2rad(5.0) - 1e-12);
    EXPECT_LE(gs.min_elevation_rad, deg2rad(15.0) + 1e-12);
    EXPECT_DOUBLE_EQ(gs.receiver.dish_diameter_m, 1.0);
  }
}

TEST(StationGen, ConstraintBitmapsApplied) {
  NetworkOptions opts;
  opts.constraint_denial_fraction = 0.2;
  const auto stations = generate_dgs_stations(opts);
  std::size_t denied = 0;
  for (const auto& gs : stations) denied += gs.constraints.denied_count();
  const double frac =
      static_cast<double>(denied) /
      static_cast<double>(stations.size() * opts.num_satellites);
  EXPECT_NEAR(frac, 0.2, 0.03);
}

TEST(StationGen, RejectsBadOptions) {
  NetworkOptions bad;
  bad.num_stations = 0;
  EXPECT_THROW(generate_dgs_stations(bad), std::invalid_argument);
  bad = NetworkOptions{};
  bad.tx_fraction = 1.5;
  EXPECT_THROW(generate_dgs_stations(bad), std::invalid_argument);
}

TEST(BaselineStations, FivePolarHighEndSites) {
  const auto stations = baseline_stations();
  ASSERT_EQ(stations.size(), 5u);
  for (const auto& gs : stations) {
    EXPECT_TRUE(gs.tx_capable);
    EXPECT_DOUBLE_EQ(gs.receiver.dish_diameter_m, 4.0);
    // "Preferably close to the Earth's poles" (paper §2).
    EXPECT_GT(std::fabs(rad2deg(gs.location.latitude_rad)), 50.0);
  }
}

TEST(ConstellationGen, CountAndUniqueIds) {
  const auto sats = generate_constellation(NetworkOptions{}, kEpoch);
  ASSERT_EQ(sats.size(), 259u);
  std::set<int> ids, satnums;
  for (const auto& s : sats) {
    ids.insert(s.id);
    satnums.insert(s.tle.satnum);
  }
  EXPECT_EQ(ids.size(), sats.size());
  EXPECT_EQ(satnums.size(), sats.size());
}

TEST(ConstellationGen, OrbitsAreEoTypical) {
  int sso = 0, iss_like = 0;
  const auto sats = generate_constellation(NetworkOptions{}, kEpoch);
  for (const auto& s : sats) {
    // Paper §1: EO satellites at 300-600 km in low Earth orbit.
    EXPECT_GT(s.tle.perigee_altitude_km(), 400.0) << s.name;
    EXPECT_LT(s.tle.apogee_altitude_km(), 650.0) << s.name;
    EXPECT_GT(s.tle.inclination_deg, 44.0) << s.name;
    EXPECT_LT(s.tle.inclination_deg, 101.0) << s.name;
    EXPECT_GT(s.tle.mean_motion_revs_per_day, 14.0);
    EXPECT_LT(s.tle.mean_motion_revs_per_day, 16.5);
    if (std::fabs(s.tle.inclination_deg - 97.5) < 3.0) ++sso;
    if (std::fabs(s.tle.inclination_deg - 51.6) < 2.0) ++iss_like;
  }
  // The LEO population mix: roughly 45% sun-synchronous, 25% ISS-orbit
  // rideshares (see generate_constellation).
  const double n = static_cast<double>(sats.size());
  EXPECT_NEAR(static_cast<double>(sso) / n, 0.45, 0.12);
  EXPECT_NEAR(static_cast<double>(iss_like) / n, 0.25, 0.10);
}

TEST(ConstellationGen, TlesAreParseableAndPropagable) {
  const auto sats = generate_constellation(NetworkOptions{}, kEpoch);
  for (std::size_t i = 0; i < sats.size(); i += 13) {
    const auto& tle = sats[i].tle;
    // Round-trip through the canonical text representation.
    const orbit::Tle back = orbit::parse_tle(orbit::format_tle_line1(tle),
                                             orbit::format_tle_line2(tle));
    const orbit::Sgp4 prop(back);
    const auto st = prop.propagate(45.0);
    const double r = st.position_km.norm();
    EXPECT_GT(r, 6700.0);
    EXPECT_LT(r, 7100.0);
  }
}

TEST(ConstellationGen, RaanSpreadCoversTheGlobe) {
  const auto sats = generate_constellation(NetworkOptions{}, kEpoch);
  double min_raan = 360.0, max_raan = 0.0;
  for (const auto& s : sats) {
    min_raan = std::min(min_raan, s.tle.raan_deg);
    max_raan = std::max(max_raan, s.tle.raan_deg);
  }
  EXPECT_LT(min_raan, 40.0);
  EXPECT_GT(max_raan, 320.0);
}

TEST(Subsample, QuarterNetworkKeepsSpreadAndTx) {
  const auto all = generate_dgs_stations(NetworkOptions{});
  const auto quarter = subsample_stations(all, 0.25);
  EXPECT_NEAR(static_cast<double>(quarter.size()), 43.0, 1.0);
  EXPECT_TRUE(std::any_of(quarter.begin(), quarter.end(),
                          [](const GroundStation& g) { return g.tx_capable; }));
  // Latitude spread preserved: both hemispheres present.
  const auto [lo, hi] = std::minmax_element(
      quarter.begin(), quarter.end(),
      [](const GroundStation& a, const GroundStation& b) {
        return a.location.latitude_rad < b.location.latitude_rad;
      });
  EXPECT_LT(rad2deg(lo->location.latitude_rad), 0.0);
  EXPECT_GT(rad2deg(hi->location.latitude_rad), 40.0);
}

TEST(Subsample, FullFractionIsIdentity) {
  const auto all = generate_dgs_stations(NetworkOptions{});
  EXPECT_EQ(subsample_stations(all, 1.0).size(), all.size());
}

TEST(Subsample, RejectsBadFraction) {
  const auto all = generate_dgs_stations(NetworkOptions{});
  EXPECT_THROW(subsample_stations(all, 0.0), std::invalid_argument);
  EXPECT_THROW(subsample_stations(all, 1.1), std::invalid_argument);
}

TEST(DownlinkConstraints, DefaultAllowsEverything) {
  DownlinkConstraints c;
  EXPECT_TRUE(c.allows(0));
  EXPECT_TRUE(c.allows(10'000));
  EXPECT_EQ(c.denied_count(), 0u);
}

TEST(DownlinkConstraints, DenyAndReAllow) {
  DownlinkConstraints c(16);
  c.deny(3);
  EXPECT_FALSE(c.allows(3));
  EXPECT_TRUE(c.allows(4));
  EXPECT_EQ(c.denied_count(), 1u);
  c.allow(3);
  EXPECT_TRUE(c.allows(3));
}

TEST(DownlinkConstraints, DenyBeyondSizeGrowsBitmap) {
  DownlinkConstraints c(4);
  c.deny(10);
  EXPECT_FALSE(c.allows(10));
  EXPECT_TRUE(c.allows(9));
}

}  // namespace
}  // namespace dgs::groundseg
