// E24 — Monte-Carlo fault campaign: the storm profile as a *distribution*
// rather than an anecdote.  E23 showed one storm day; this experiment runs
// 200 independently-seeded storm scenarios through the campaign runner
// (DESIGN.md §12) and reports mean ± 95% CI per headline metric, which is
// the statistically defensible form of the paper's §1 robustness claim:
// consumer-grade stations fail often but independently, so the *expected*
// degradation is small and its variance is bounded.
//
// The campaign directory (E24_campaign/) is resumable: rerunning this
// bench reuses every finished sample and reproduces the aggregate
// byte-for-byte.  Reproduce any single row with
//   dgs_cli --fault-profile storm --fault-seed <campaign_sample_seed(1,i)>
#include <cstdio>

#include "src/campaign/campaign.h"

int main() {
  using namespace dgs;

  campaign::CampaignOptions opts;
  opts.profile = "storm";
  opts.campaign_seed = 1;
  opts.samples = 200;
  opts.workers = 0;  // one worker process per hardware thread
  opts.out_dir = "E24_campaign";
  // Scenario defaults: 6 h horizon, 8 satellites, 15 stations — the
  // fault seed is the sampled axis; geometry and weather stay fixed.
  opts.write_events = false;  // 200 event ledgers are bulky; summaries
                              // and metric snapshots carry the result.

  std::printf("=== E24: storm campaign, %d seeds (%g h each) ===\n\n",
              opts.samples, opts.duration_hours);
  const campaign::CampaignResult r = campaign::run_campaign(opts, nullptr);
  std::printf("  samples %d (reused %d, computed %d)\n\n", r.samples,
              r.reused, r.computed);

  std::printf("  %-24s %10s %9s %10s %10s %10s\n", "metric", "mean",
              "ci95", "p50", "p99", "max");
  for (const auto& [name, a] : r.metrics) {
    std::printf("  %-24s %10.3f \xc2\xb1%8.3f %10.3f %10.3f %10.3f\n",
                name.c_str(), a.mean, a.ci95, a.p50, a.p99, a.max);
  }

  if (const auto e = campaign::validate_campaign_dir(opts.out_dir)) {
    std::printf("\n  SCHEMA VIOLATION %s: %s\n", e->where.c_str(),
                e->message.c_str());
    return 1;
  }
  std::printf("\n  %s honours run-artifact schema v%d; rerun to resume "
              "(aggregate is byte-stable).\n", opts.out_dir.c_str(),
              core::kRunArtifactSchemaVersion);

  std::printf("\n  expected shape: the CI half-widths are the point.  "
              "Mean latency lands near 24 \xc2\xb1 0.2 min — independent "
              "station failures average out across seeds — while the p99 "
              "column carries the storm's real cost: the worst seeds "
              "stack churn outages onto ack-relay retries (~80 \xc2\xb1 1 "
              "min here, max ~130).  delivered_fraction barely moves "
              "(0.915 \xc2\xb1 0.001), and outage_lost_tb is exactly zero "
              "at this 6 h scale: the down-mask keeps assignments away "
              "from faulted stations, so bytes are only lost when a "
              "station dies mid-contact — a rare, 24 h-scale event "
              "(see E23).\n");
  return 0;
}
