# Empty dependencies file for abl_constraints.
# This may be replaced when dependencies are built.
