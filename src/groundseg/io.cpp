#include "src/groundseg/io.h"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <fstream>
#include <sstream>

#include "src/util/angles.h"
#include "src/util/check.h"

namespace dgs::groundseg {
namespace {

[[noreturn]] void fail(int line_no, const std::string& what) {
  DGS_ENSURE(false, "line " << line_no << ": " << what);
}

std::string rstrip(std::string s) {
  const auto e = s.find_last_not_of(" \t\r\n");
  return e == std::string::npos ? "" : s.substr(0, e + 1);
}

bool is_tle_line(const std::string& s, char num) {
  return s.size() >= 69 && s[0] == num && s[1] == ' ';
}

}  // namespace

std::vector<orbit::Tle> read_tle_catalog(std::istream& in) {
  std::vector<orbit::Tle> catalog;
  std::string pending_name;
  std::string line1;
  int line_no = 0;
  int line1_no = 0;

  std::string raw;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::string line = rstrip(raw);
    if (line.empty() || line[0] == '#') continue;

    if (is_tle_line(line, '1')) {
      if (!line1.empty()) fail(line1_no, "line 1 without a matching line 2");
      line1 = line;
      line1_no = line_no;
    } else if (is_tle_line(line, '2')) {
      if (line1.empty()) fail(line_no, "line 2 without a preceding line 1");
      try {
        orbit::Tle tle = orbit::parse_tle(line1, line);
        tle.name = pending_name;
        catalog.push_back(std::move(tle));
      } catch (const std::invalid_argument& e) {
        fail(line_no, e.what());
      }
      line1.clear();
      pending_name.clear();
    } else {
      // A name line for the following element set.
      if (!line1.empty()) fail(line_no, "name line between TLE lines");
      pending_name = line.rfind("0 ", 0) == 0 ? line.substr(2) : line;
    }
  }
  if (!line1.empty()) fail(line1_no, "dangling TLE line 1 at end of file");
  return catalog;
}

std::vector<orbit::Tle> load_tle_file(const std::string& path) {
  std::ifstream in(path);
  DGS_ENSURE(in, "cannot open TLE file: " << path);
  return read_tle_catalog(in);
}

void write_tle_catalog(std::ostream& out,
                       const std::vector<orbit::Tle>& catalog) {
  for (const orbit::Tle& tle : catalog) {
    if (!tle.name.empty()) out << tle.name << '\n';
    out << orbit::format_tle_line1(tle) << '\n'
        << orbit::format_tle_line2(tle) << '\n';
  }
}

void save_tle_file(const std::string& path,
                   const std::vector<orbit::Tle>& catalog) {
  std::ofstream out(path);
  DGS_ENSURE(out, "cannot write TLE file: " << path);
  write_tle_catalog(out, catalog);
}

std::vector<GroundStation> read_station_csv(std::istream& in) {
  std::vector<GroundStation> stations;
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::string line = rstrip(raw);
    if (line.empty() || line[0] == '#') continue;
    if (line.rfind("id,", 0) == 0) continue;  // header

    std::istringstream ss(line);
    std::string field;
    std::vector<std::string> fields;
    while (std::getline(ss, field, ',')) fields.push_back(field);
    if (fields.size() != 8) {
      fail(line_no, "expected 8 CSV fields, got " +
                        std::to_string(fields.size()));
    }
    try {
      GroundStation gs;
      gs.id = std::stoi(fields[0]);
      gs.name = fields[1];
      gs.location.latitude_rad = util::deg2rad(std::stod(fields[2]));
      gs.location.longitude_rad = util::deg2rad(std::stod(fields[3]));
      gs.location.altitude_km = std::stod(fields[4]);
      gs.receiver.dish_diameter_m = std::stod(fields[5]);
      gs.tx_capable = std::stoi(fields[6]) != 0;
      gs.min_elevation_rad = util::deg2rad(std::stod(fields[7]));
      if (std::fabs(gs.location.latitude_rad) > util::kPi / 2.0) {
        fail(line_no, "latitude out of range");
      }
      gs.refresh_ecef();
      stations.push_back(std::move(gs));
    } catch (const std::invalid_argument&) {
      fail(line_no, "malformed numeric field");
    }
  }
  return stations;
}

std::vector<GroundStation> load_station_file(const std::string& path) {
  std::ifstream in(path);
  DGS_ENSURE(in, "cannot open station file: " << path);
  return read_station_csv(in);
}

void write_station_csv(std::ostream& out,
                       const std::vector<GroundStation>& stations) {
  out << "id,name,lat_deg,lon_deg,alt_km,dish_m,tx_capable,min_el_deg\n";
  char buf[256];
  for (const GroundStation& gs : stations) {
    std::snprintf(buf, sizeof(buf), "%d,%s,%.6f,%.6f,%.3f,%.2f,%d,%.2f\n",
                  gs.id, gs.name.c_str(),
                  util::rad2deg(gs.location.latitude_rad),
                  util::rad2deg(gs.location.longitude_rad),
                  gs.location.altitude_km, gs.receiver.dish_diameter_m,
                  gs.tx_capable ? 1 : 0,
                  util::rad2deg(gs.min_elevation_rad));
    out << buf;
  }
}

void save_station_file(const std::string& path,
                       const std::vector<GroundStation>& stations) {
  std::ofstream out(path);
  DGS_ENSURE(out, "cannot write station file: " << path);
  write_station_csv(out, stations);
}

std::vector<int> read_station_subset(std::istream& in) {
  std::vector<int> ids;
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::string line = rstrip(raw);
    if (line.empty() || line[0] == '#') continue;

    std::size_t consumed = 0;
    int id = -1;
    try {
      id = std::stoi(line, &consumed);
    } catch (const std::exception&) {
      fail(line_no, "expected a station id, got \"" + line + "\"");
    }
    if (consumed != line.size()) {
      fail(line_no, "trailing characters after station id: \"" + line + "\"");
    }
    if (id < 0) fail(line_no, "negative station id " + std::to_string(id));
    if (std::find(ids.begin(), ids.end(), id) != ids.end()) {
      fail(line_no, "duplicate station id " + std::to_string(id));
    }
    ids.push_back(id);
  }
  return ids;
}

std::vector<int> load_station_subset(const std::string& path) {
  std::ifstream in(path);
  DGS_ENSURE(in, "cannot open station-subset file: " << path);
  return read_station_subset(in);
}

void write_station_subset(std::ostream& out, const std::vector<int>& ids) {
  std::vector<int> sorted = ids;
  std::sort(sorted.begin(), sorted.end());
  out << "# dgs.stations_subset.v1\n";
  for (int id : sorted) {
    DGS_ENSURE_GE(id, 0);
    out << id << '\n';
  }
}

void save_station_subset(const std::string& path,
                         const std::vector<int>& ids) {
  std::ofstream out(path);
  DGS_ENSURE(out, "cannot write station-subset file: " << path);
  write_station_subset(out, ids);
}

}  // namespace dgs::groundseg
