// DVB-S2 framing: the frame structure must re-derive the MODCOD table's
// spectral efficiencies exactly, plus air-time accounting.
#include <gtest/gtest.h>

#include <stdexcept>

#include "src/link/dvbs2_framing.h"

namespace dgs::link {
namespace {

TEST(FecParams, KnownBlockSizes) {
  EXPECT_EQ(fec_params(1.0 / 4).k_bch, 16008);
  EXPECT_EQ(fec_params(1.0 / 4).k_ldpc, 16200);
  EXPECT_EQ(fec_params(1.0 / 2).k_bch, 32208);
  EXPECT_EQ(fec_params(9.0 / 10).k_bch, 58192);
  EXPECT_EQ(fec_params(9.0 / 10).k_ldpc, 58320);
}

TEST(FecParams, LdpcOutputIsAlways64800) {
  // k_ldpc / rate == 64800 for every standard rate.
  for (double rate : {1.0 / 4, 1.0 / 3, 2.0 / 5, 1.0 / 2, 3.0 / 5, 2.0 / 3,
                      3.0 / 4, 4.0 / 5, 5.0 / 6, 8.0 / 9, 9.0 / 10}) {
    const FecParams p = fec_params(rate);
    EXPECT_NEAR(p.k_ldpc / rate, kFecFrameBits, 0.5) << rate;
    EXPECT_LT(p.k_bch, p.k_ldpc);  // BCH parity fits inside LDPC info
  }
}

TEST(FecParams, RejectsNonStandardRates) {
  EXPECT_THROW(fec_params(0.55), std::invalid_argument);
  EXPECT_THROW(fec_params(7.0 / 8), std::invalid_argument);
}

// The headline self-consistency test: for every one of the 28 MODCODs the
// efficiency derived from frame structure (k_bch - 80)/(90 + 64800/eta)
// must equal the table's quoted spectral efficiency.
class FramingDerivesTable : public ::testing::TestWithParam<int> {};

TEST_P(FramingDerivesTable, EfficiencyMatchesTable) {
  const ModCod& mc = dvbs2_modcods()[GetParam()];
  EXPECT_NEAR(derived_efficiency(mc, /*pilots=*/false),
              mc.spectral_efficiency, 5e-7)
      << mc.name;
}

INSTANTIATE_TEST_SUITE_P(All28, FramingDerivesTable, ::testing::Range(0, 28));

TEST(Framing, PilotOverheadIsAboutTwoPercent) {
  for (const ModCod& mc : dvbs2_modcods()) {
    const double ratio = derived_efficiency(mc, true) /
                         derived_efficiency(mc, false);
    EXPECT_LT(ratio, 1.0) << mc.name;
    EXPECT_GT(ratio, 0.97) << mc.name;  // ~2.2-2.4% pilot overhead
  }
}

TEST(Framing, PlframeSymbolCounts) {
  const ModCod& qpsk14 = dvbs2_modcods().front();
  // QPSK: 64800/2 = 32400 data symbols + 90 header.
  EXPECT_EQ(plframe_symbols(qpsk14, false), 32490);
  // 360 slots -> 22 pilot blocks of 36 symbols.
  EXPECT_EQ(plframe_symbols(qpsk14, true), 32490 + 22 * 36);
}

TEST(FrameAccounting, ZeroPayloadZeroFrames) {
  const auto acc = frame_accounting(dvbs2_modcods().front(), 0.0, 1e6);
  EXPECT_EQ(acc.frames, 0);
  EXPECT_EQ(acc.total_symbols, 0);
  EXPECT_DOUBLE_EQ(acc.duration_s, 0.0);
}

TEST(FrameAccounting, SingleFrameExactFill) {
  const ModCod& mc = dvbs2_modcods().front();  // QPSK 1/4
  const double payload = plframe_payload_bits(mc) / 8.0;
  const auto acc = frame_accounting(mc, payload, 1e6);
  EXPECT_EQ(acc.frames, 1);
  EXPECT_NEAR(acc.efficiency_achieved, mc.spectral_efficiency, 1e-6);
  // One more byte spills to a second, nearly-empty frame.
  const auto acc2 = frame_accounting(mc, payload + 1, 1e6);
  EXPECT_EQ(acc2.frames, 2);
  EXPECT_LT(acc2.efficiency_achieved, acc.efficiency_achieved);
}

TEST(FrameAccounting, LargeTransferApproachesTableEfficiency) {
  const ModCod& mc = dvbs2_modcods().back();  // 32APSK 9/10
  const auto acc = frame_accounting(mc, 1e9, 66.7e6);
  EXPECT_NEAR(acc.efficiency_achieved, mc.spectral_efficiency,
              mc.spectral_efficiency * 1e-3);
  // 1 GB at ~297 Mbps is ~27 s of air time.
  EXPECT_NEAR(acc.duration_s, 8e9 / (mc.spectral_efficiency * 66.7e6), 0.1);
}

TEST(FrameAccounting, RejectsBadInputs) {
  const ModCod& mc = dvbs2_modcods().front();
  EXPECT_THROW(frame_accounting(mc, -1.0, 1e6), std::invalid_argument);
  EXPECT_THROW(frame_accounting(mc, 1.0, 0.0), std::invalid_argument);
}

TEST(ModcodIndex, RoundTripsAllEntries) {
  const auto table = dvbs2_modcods();
  for (std::size_t i = 0; i < table.size(); ++i) {
    const std::uint8_t idx = modcod_index(table[i]);
    EXPECT_EQ(idx, i);
    EXPECT_EQ(modcod_by_index(idx).name, table[i].name);
  }
}

TEST(ModcodIndex, RejectsOutOfRange) {
  EXPECT_THROW(modcod_by_index(28), std::invalid_argument);
  const ModCod fake{"FAKE 1/2", Modulation::kQpsk, 0.5, 1.0, 0.0};
  EXPECT_THROW(modcod_index(fake), std::invalid_argument);
}

}  // namespace
}  // namespace dgs::link
