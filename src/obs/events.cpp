#include "src/obs/events.h"

#include <cstdio>
#include <ostream>

namespace dgs::obs {

namespace {

/// Round-trip-exact number rendering (compact when lossless).
void append_number(std::ostream& out, double v) {
  char compact[64];
  std::snprintf(compact, sizeof(compact), "%g", v);
  double back = 0.0;
  std::sscanf(compact, "%lf", &back);
  if (back == v) {
    out << compact;
    return;
  }
  char exact[64];
  std::snprintf(exact, sizeof(exact), "%.17g", v);
  out << exact;
}

/// MODCOD names are plain ASCII, but escape the JSON specials anyway.
void append_string(std::ostream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

}  // namespace

std::ostream& EventLog::begin_line(const char* type) {
  char buf[96];
  // %.4f matches write_timeseries_csv's hours column exactly, so the two
  // artifacts join byte-for-byte on t_hours.
  std::snprintf(buf, sizeof(buf), "{\"t_hours\": %.4f, \"step\": %lld, "
                                  "\"type\": \"%s\"",
                t_hours_, static_cast<long long>(step_), type);
  return *out_ << buf;
}

void EventLog::contact_open(int sat, int station, std::string_view modcod,
                            double rate_bps, double elevation_deg) {
  if (!enabled()) return;
  std::ostream& out = begin_line("contact_open");
  out << ", \"sat\": " << sat << ", \"gs\": " << station << ", \"modcod\": ";
  append_string(out, modcod);
  out << ", \"rate_bps\": ";
  append_number(out, rate_bps);
  out << ", \"elevation_deg\": ";
  append_number(out, elevation_deg);
  out << "}\n";
}

void EventLog::contact_close(int sat, int station, int held_steps) {
  if (!enabled()) return;
  begin_line("contact_close")
      << ", \"sat\": " << sat << ", \"gs\": " << station
      << ", \"held_steps\": " << held_steps << "}\n";
}

void EventLog::modcod_selected(int sat, int station, std::string_view modcod,
                               double rate_bps) {
  if (!enabled()) return;
  std::ostream& out = begin_line("modcod_selected");
  out << ", \"sat\": " << sat << ", \"gs\": " << station << ", \"modcod\": ";
  append_string(out, modcod);
  out << ", \"rate_bps\": ";
  append_number(out, rate_bps);
  out << "}\n";
}

void EventLog::bytes_moved(int sat, int station, double bytes,
                           bool received) {
  if (!enabled()) return;
  std::ostream& out = begin_line("bytes_moved");
  out << ", \"sat\": " << sat << ", \"gs\": " << station << ", \"bytes\": ";
  append_number(out, bytes);
  out << ", \"received\": " << (received ? "true" : "false") << "}\n";
}

void EventLog::ack_relayed(int sat, int station, double acked_bytes,
                           double requeued_bytes, int batches) {
  if (!enabled()) return;
  std::ostream& out = begin_line("ack_relayed");
  out << ", \"sat\": " << sat << ", \"gs\": " << station
      << ", \"acked_bytes\": ";
  append_number(out, acked_bytes);
  out << ", \"requeued_bytes\": ";
  append_number(out, requeued_bytes);
  out << ", \"batches\": " << batches << "}\n";
}

void EventLog::plan_uploaded(int sat, int station, double lead_s) {
  if (!enabled()) return;
  std::ostream& out = begin_line("plan_uploaded");
  out << ", \"sat\": " << sat << ", \"gs\": " << station
      << ", \"lead_s\": ";
  append_number(out, lead_s);
  out << "}\n";
}

void EventLog::outage_begin(int station) {
  if (!enabled()) return;
  begin_line("outage_begin") << ", \"gs\": " << station << "}\n";
}

void EventLog::outage_end(int station) {
  if (!enabled()) return;
  begin_line("outage_end") << ", \"gs\": " << station << "}\n";
}

void EventLog::outage_loss(int sat, int station, double bytes) {
  if (!enabled()) return;
  std::ostream& out = begin_line("outage_loss");
  out << ", \"sat\": " << sat << ", \"gs\": " << station << ", \"bytes\": ";
  append_number(out, bytes);
  out << "}\n";
}

void EventLog::ack_relay_retry(int sat, int station, int retries,
                               double delay_s) {
  if (!enabled()) return;
  std::ostream& out = begin_line("ack_relay_retry");
  out << ", \"sat\": " << sat << ", \"gs\": " << station
      << ", \"retries\": " << retries << ", \"delay_s\": ";
  append_number(out, delay_s);
  out << "}\n";
}

void EventLog::plan_upload_failed(int sat, int station) {
  if (!enabled()) return;
  begin_line("plan_upload_failed")
      << ", \"sat\": " << sat << ", \"gs\": " << station << "}\n";
}

void EventLog::replan(int station, int window_steps) {
  if (!enabled()) return;
  begin_line("replan") << ", \"gs\": " << station
                       << ", \"window_steps\": " << window_steps << "}\n";
}

void EventLog::backhaul_fault_begin(int station, double multiplier) {
  if (!enabled()) return;
  std::ostream& out = begin_line("backhaul_fault_begin");
  out << ", \"gs\": " << station << ", \"multiplier\": ";
  append_number(out, multiplier);
  out << "}\n";
}

void EventLog::backhaul_fault_end(int station) {
  if (!enabled()) return;
  begin_line("backhaul_fault_end") << ", \"gs\": " << station << "}\n";
}

void EventLog::cache_hit(std::int64_t count) {
  if (!enabled()) return;
  begin_line("cache_hit")
      << ", \"count\": " << static_cast<long long>(count) << "}\n";
}

void EventLog::cache_miss(std::int64_t count) {
  if (!enabled()) return;
  begin_line("cache_miss")
      << ", \"count\": " << static_cast<long long>(count) << "}\n";
}

void EventLog::backhaul_step(double received_bytes, double uploaded_bytes,
                             double queued_bytes) {
  if (!enabled()) return;
  std::ostream& out = begin_line("backhaul_step");
  out << ", \"received_bytes\": ";
  append_number(out, received_bytes);
  out << ", \"uploaded_bytes\": ";
  append_number(out, uploaded_bytes);
  out << ", \"queued_bytes\": ";
  append_number(out, queued_bytes);
  out << "}\n";
}

}  // namespace dgs::obs
