# Empty dependencies file for dgs_orbit.
# This may be replaced when dependencies are built.
