file(REMOVE_RECURSE
  "libdgs_groundseg.a"
)
