# Empty compiler generated dependencies file for dgs_weather.
# This may be replaced when dependencies are built.
