# Empty compiler generated dependencies file for dgs_cli.
# This may be replaced when dependencies are built.
