// End-to-end link budget behaviour.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "src/link/budget.h"
#include "src/link/fspl.h"
#include "src/util/angles.h"

namespace dgs::link {
namespace {

using util::deg2rad;

PathConditions leo_path(double elevation_deg, double rain = 0.0,
                        double cloud = 0.0) {
  // Slant range for a 550 km orbit over a spherical Earth.
  const double re = 6371.0, h = 550.0;
  const double el = deg2rad(elevation_deg);
  const double range =
      std::sqrt((re + h) * (re + h) - re * re * std::cos(el) * std::cos(el)) -
      re * std::sin(el);
  PathConditions p;
  p.range_km = range;
  p.elevation_rad = el;
  p.site_latitude_rad = deg2rad(45.0);
  p.site_altitude_km = 0.0;
  p.rain_rate_mm_h = rain;
  p.cloud_liquid_kg_m2 = cloud;
  return p;
}

TEST(Fspl, KnownValue) {
  // 1000 km at 8.2 GHz: 32.45 + 20log10(km) + 20log10(MHz) = 170.7 dB.
  EXPECT_NEAR(fspl_db(1000.0, 8.2e9), 170.7, 0.1);
}

TEST(Fspl, TwentyLogDistanceSlope) {
  EXPECT_NEAR(fspl_db(2000.0, 8.2e9) - fspl_db(1000.0, 8.2e9), 6.02, 0.01);
}

TEST(Fspl, RejectsBadInputs) {
  EXPECT_THROW(fspl_db(0.0, 8.2e9), std::invalid_argument);
  EXPECT_THROW(fspl_db(1000.0, -1.0), std::invalid_argument);
}

TEST(LinkBudget, ClosesAtZenithForDefaultDgsNode) {
  const LinkBudget b = evaluate_link(RadioSpec{}, ReceiveSystem{},
                                     leo_path(90.0));
  ASSERT_TRUE(b.closes());
  EXPECT_GT(b.data_rate_bps, 100e6);  // high-order MODCOD near zenith
}

TEST(LinkBudget, RateDegradesTowardHorizon) {
  double prev = 1e18;
  for (double el : {90.0, 60.0, 30.0, 10.0, 5.0}) {
    const LinkBudget b =
        evaluate_link(RadioSpec{}, ReceiveSystem{}, leo_path(el));
    ASSERT_TRUE(b.closes()) << "el=" << el;
    EXPECT_LE(b.data_rate_bps, prev) << "el=" << el;
    prev = b.data_rate_bps;
  }
}

TEST(LinkBudget, BelowHorizonYieldsNoLink) {
  PathConditions p = leo_path(10.0);
  p.elevation_rad = -0.01;
  const LinkBudget b = evaluate_link(RadioSpec{}, ReceiveSystem{}, p);
  EXPECT_FALSE(b.closes());
  EXPECT_DOUBLE_EQ(b.data_rate_bps, 0.0);
}

TEST(LinkBudget, RainReducesEsN0TwiceOver) {
  // Rain hits twice: path attenuation and receiver noise temperature.
  const LinkBudget clear =
      evaluate_link(RadioSpec{}, ReceiveSystem{}, leo_path(30.0));
  const LinkBudget wet =
      evaluate_link(RadioSpec{}, ReceiveSystem{}, leo_path(30.0, 25.0, 1.0));
  EXPECT_GT(wet.rain_db, 0.0);
  EXPECT_GT(wet.cloud_db, 0.0);
  // Es/N0 drop exceeds the pure path attenuation due to the noise rise.
  EXPECT_GT(clear.esn0_db - wet.esn0_db, wet.total_atmos_db - clear.gas_db);
}

TEST(LinkBudget, SixChannelsScaleRateOnly) {
  RadioSpec one, six;
  six.channels = 6;
  const LinkBudget b1 = evaluate_link(one, ReceiveSystem{}, leo_path(45.0));
  const LinkBudget b6 = evaluate_link(six, ReceiveSystem{}, leo_path(45.0));
  ASSERT_TRUE(b1.closes());
  ASSERT_TRUE(b6.closes());
  EXPECT_DOUBLE_EQ(b1.esn0_db, b6.esn0_db);
  EXPECT_NEAR(b6.data_rate_bps, 6.0 * b1.data_rate_bps, 1.0);
}

TEST(LinkBudget, BaselineStationIsRoughlyTenTimesDgsNode) {
  // Paper §4: each baseline station achieves ~10x the throughput of a DGS
  // node (6 channels + 4 m dish vs 1 channel + 1 m dish).
  RadioSpec dgs_radio, base_radio;
  base_radio.channels = 6;
  ReceiveSystem dgs_rx;  // 1 m
  ReceiveSystem base_rx;
  base_rx.dish_diameter_m = 4.0;
  base_rx.aperture_efficiency = 0.65;
  base_rx.lna_noise_temp_k = 50.0;

  double dgs_total = 0.0, base_total = 0.0;
  for (double el : {10.0, 20.0, 30.0, 45.0, 60.0, 75.0, 90.0}) {
    dgs_total += evaluate_link(dgs_radio, dgs_rx, leo_path(el)).data_rate_bps;
    base_total +=
        evaluate_link(base_radio, base_rx, leo_path(el)).data_rate_bps;
  }
  const double ratio = base_total / dgs_total;
  EXPECT_GT(ratio, 6.0);
  EXPECT_LT(ratio, 14.0);
}

TEST(LinkBudget, HeavyRainCanKillTheLink) {
  RadioSpec radio;
  radio.frequency_hz = 26.5e9;  // Ka band: weather-limited (paper §1)
  const LinkBudget clear =
      evaluate_link(radio, ReceiveSystem{}, leo_path(15.0));
  const LinkBudget storm =
      evaluate_link(radio, ReceiveSystem{}, leo_path(15.0, 50.0, 2.0));
  EXPECT_TRUE(clear.closes());
  EXPECT_GT(storm.rain_db, 10.0);  // the paper's 10-25 dB regime
  EXPECT_LT(storm.data_rate_bps, clear.data_rate_bps * 0.5);
}

TEST(LinkBudget, AccountingIsSelfConsistent) {
  const LinkBudget b =
      evaluate_link(RadioSpec{}, ReceiveSystem{}, leo_path(40.0, 5.0, 0.5));
  EXPECT_NEAR(b.total_atmos_db, b.rain_db + b.cloud_db + b.gas_db, 1e-12);
  const RadioSpec radio;
  EXPECT_NEAR(b.esn0_db,
              b.cn0_dbhz - 10.0 * std::log10(radio.symbol_rate_hz), 1e-9);
}

TEST(LinkBudget, RejectsInvalidInputs) {
  PathConditions p = leo_path(30.0);
  p.range_km = -5.0;
  EXPECT_THROW(evaluate_link(RadioSpec{}, ReceiveSystem{}, p),
               std::invalid_argument);
  RadioSpec radio;
  radio.channels = 0;
  EXPECT_THROW(evaluate_link(radio, ReceiveSystem{}, leo_path(30.0)),
               std::invalid_argument);
}

}  // namespace
}  // namespace dgs::link
