file(REMOVE_RECURSE
  "CMakeFiles/tab_uplink.dir/tab_uplink.cpp.o"
  "CMakeFiles/tab_uplink.dir/tab_uplink.cpp.o.d"
  "tab_uplink"
  "tab_uplink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_uplink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
