// Multi-tenant service mode (DESIGN.md §16): TenantSpec validation, the
// deficit-weighted TenantArbiter, per-tenant accounting in the report,
// and checkpointing of the tenant books.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/report.h"
#include "src/core/session.h"
#include "tests/json_lite.h"

namespace dgs::core {
namespace {

const util::Epoch kT0(util::DateTime{2020, 11, 4, 0, 0, 0.0});

// Contiguous slices covering `num_sats`, one per (name, weight) pair.
std::vector<TenantSpec> make_tenants(
    int num_sats, const std::vector<std::pair<std::string, double>>& specs) {
  std::vector<TenantSpec> tenants;
  const int per = num_sats / static_cast<int>(specs.size());
  int next = 0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    TenantSpec t;
    t.name = specs[i].first;
    t.weight = specs[i].second;
    const int count =
        i + 1 == specs.size() ? num_sats - next : per;
    for (int k = 0; k < count; ++k) t.satellites.push_back(next++);
    tenants.push_back(std::move(t));
  }
  return tenants;
}

SimulationOptions tenant_opts(int num_sats,
                              std::vector<TenantSpec> tenants) {
  SimulationOptions opts;
  opts.start = kT0;
  opts.duration_hours = 4.0;
  opts.tenants = std::move(tenants);
  (void)num_sats;
  return opts;
}

// --- Validation ------------------------------------------------------------

TEST(TenantValidation, AcceptsDisjointCoverage) {
  const auto opts = tenant_opts(8, make_tenants(8, {{"a", 1}, {"b", 2}}));
  EXPECT_FALSE(opts.validate(10, {}, 8).has_value());
}

TEST(TenantValidation, RejectsBadNamesWeightsAndSla) {
  auto opts = tenant_opts(4, make_tenants(4, {{"a", 1}, {"b", 1}}));
  opts.tenants[0].name = "Bad Name";
  auto err = opts.validate(10, {}, 4);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->field, "tenants[0].name");

  opts = tenant_opts(4, make_tenants(4, {{"a", 1}, {"a", 1}}));
  err = opts.validate(10, {}, 4);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->field, "tenants[1].name");

  opts = tenant_opts(4, make_tenants(4, {{"a", 1}, {"b", -2}}));
  err = opts.validate(10, {}, 4);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->field, "tenants[1].weight");

  opts = tenant_opts(4, make_tenants(4, {{"a", 1}, {"b", 1}}));
  opts.tenants[0].sla_latency_minutes = -1.0;
  err = opts.validate(10, {}, 4);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->field, "tenants[0].sla_latency_minutes");
}

TEST(TenantValidation, RejectsOverlapGapAndOutOfRange) {
  // Overlap: satellite 0 claimed twice.
  auto opts = tenant_opts(4, make_tenants(4, {{"a", 1}, {"b", 1}}));
  opts.tenants[1].satellites[0] = 0;
  auto err = opts.validate(10, {}, 4);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->field, "tenants[1].satellites[0]");

  // Gap: satellite 3 unowned.
  opts = tenant_opts(4, make_tenants(4, {{"a", 1}, {"b", 1}}));
  opts.tenants[1].satellites.pop_back();
  err = opts.validate(10, {}, 4);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->field, "tenants");

  // Out of range.
  opts = tenant_opts(4, make_tenants(4, {{"a", 1}, {"b", 1}}));
  opts.tenants[1].satellites.back() = 99;
  err = opts.validate(10, {}, 4);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->field, "tenants[1].satellites[1]");

  // Disjointness is enforced even when the fleet size is unknown.
  opts = tenant_opts(4, make_tenants(4, {{"a", 1}, {"b", 1}}));
  opts.tenants[1].satellites[0] = 1;
  err = opts.validate(10, {}, -1);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->field, "tenants[1].satellites[0]");
}

TEST(TenantValidation, RejectsLookaheadCombination) {
  auto opts = tenant_opts(4, make_tenants(4, {{"a", 1}, {"b", 1}}));
  opts.lookahead_hours = 1.0;
  const auto err = opts.validate(10, {}, 4);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->field, "tenants");
}

// --- TenantArbiter unit behaviour ------------------------------------------

TEST(TenantArbiter, EntitlementsAndInitialScales) {
  TenantArbiter arb(make_tenants(8, {{"a", 1}, {"b", 2}, {"c", 5}}), 8);
  ASSERT_EQ(arb.num_tenants(), 3);
  EXPECT_DOUBLE_EQ(arb.entitlement(0), 1.0 / 8.0);
  EXPECT_DOUBLE_EQ(arb.entitlement(1), 2.0 / 8.0);
  EXPECT_DOUBLE_EQ(arb.entitlement(2), 5.0 / 8.0);
  // No deliveries yet: every tenant sits exactly at entitlement.
  arb.refresh_scales();
  for (int t = 0; t < 3; ++t) EXPECT_DOUBLE_EQ(arb.scale(t), 1.0);
  EXPECT_EQ(arb.tenant_of(0), 0);
  EXPECT_EQ(arb.tenant_of(7), 2);
}

TEST(TenantArbiter, StarvedTenantIsBoostedOverservedDamped) {
  TenantArbiter arb(make_tenants(4, {{"a", 1}, {"b", 1}}), 4);
  arb.record_delivery(0, 1000.0);  // All bytes to tenant a.
  arb.refresh_scales();
  EXPECT_LT(arb.scale(0), 1.0);
  EXPECT_GT(arb.scale(1), 1.0);
  // Fully starved share=0 -> deficit 1 -> scale 2^kDeficitGain.
  EXPECT_DOUBLE_EQ(arb.scale(1),
                   std::exp2(TenantArbiter::kDeficitGain));
  // The per-satellite vector mirrors ownership.
  EXPECT_DOUBLE_EQ(arb.sat_scale()[0], arb.scale(0));
  EXPECT_DOUBLE_EQ(arb.sat_scale()[3], arb.scale(1));
}

TEST(TenantArbiter, DeficitIsClampedForExtremeImbalance) {
  // Tenant a has weight 99 of 100 but received every byte: its deficit
  // clamps at -4, so the damping never exceeds 2^-12.
  TenantArbiter arb(make_tenants(4, {{"a", 99}, {"b", 1}}), 4);
  arb.record_delivery(3, 1000.0);  // Everything to the 1%-weight tenant.
  arb.refresh_scales();
  EXPECT_DOUBLE_EQ(arb.scale(1),
                   std::exp2(-4.0 * TenantArbiter::kDeficitGain));
  EXPECT_GT(arb.scale(0), 1.0);
}

TEST(TenantArbiter, RestoreStateReproducesBooks) {
  TenantArbiter a(make_tenants(4, {{"a", 1}, {"b", 3}}), 4);
  a.record_delivery(0, 500.0);
  a.record_assignment(0);
  a.record_assignment(3);
  TenantArbiter b(make_tenants(4, {{"a", 1}, {"b", 3}}), 4);
  b.restore_state({a.delivered_bytes(0), a.delivered_bytes(1)},
                  {a.assignments(0), a.assignments(1)});
  a.refresh_scales();
  b.refresh_scales();
  for (int t = 0; t < 2; ++t) {
    EXPECT_EQ(a.delivered_bytes(t), b.delivered_bytes(t));
    EXPECT_EQ(a.assignments(t), b.assignments(t));
    EXPECT_EQ(a.scale(t), b.scale(t));
  }
}

// --- End-to-end accounting -------------------------------------------------

struct TenantScenario {
  std::vector<groundseg::SatelliteConfig> sats;
  std::vector<groundseg::GroundStation> stations;
};

TenantScenario tenant_scenario() {
  groundseg::NetworkOptions net;
  net.num_stations = 12;
  net.num_satellites = 9;
  net.seed = 13;
  TenantScenario s;
  s.sats = groundseg::generate_constellation(net, kT0);
  s.stations = groundseg::generate_dgs_stations(net);
  return s;
}

TEST(TenantSim, PerTenantRowsPartitionTheRun) {
  const TenantScenario s = tenant_scenario();
  auto opts = tenant_opts(
      9, make_tenants(9, {{"a", 1}, {"b", 2}, {"c", 4}}));
  const SimulationResult r =
      Simulator(s.sats, s.stations, nullptr, opts).run();
  ASSERT_EQ(r.per_tenant.size(), 3u);
  double delivered = 0.0, generated = 0.0;
  std::int64_t assignments = 0;
  double shares = 0.0;
  for (const TenantOutcome& t : r.per_tenant) {
    EXPECT_EQ(t.num_satellites, 3);
    delivered += t.delivered_bytes;
    generated += t.generated_bytes;
    assignments += t.assignments;
    shares += t.share;
    EXPECT_GE(t.sla_attainment, 0.0);
    EXPECT_LE(t.sla_attainment, 1.0);
  }
  EXPECT_NEAR(delivered, r.total_delivered_bytes, 1.0);
  EXPECT_NEAR(generated, r.total_generated_bytes, 1.0);
  EXPECT_EQ(assignments, r.assignments);
  EXPECT_NEAR(shares, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.per_tenant[0].entitlement, 1.0 / 7.0);
  EXPECT_DOUBLE_EQ(r.per_tenant[2].entitlement, 4.0 / 7.0);
}

TEST(TenantSim, SingleTenantMatchesUntenantedRunExactly) {
  // One tenant owning the whole fleet always sits at entitlement: every
  // scale is exactly 1 and the trajectory is bit-identical to a run with
  // no tenants at all.
  const TenantScenario s = tenant_scenario();
  SimulationOptions plain;
  plain.start = kT0;
  plain.duration_hours = 4.0;
  auto tenanted = plain;
  tenanted.tenants = make_tenants(9, {{"solo", 3.5}});
  const SimulationResult a =
      Simulator(s.sats, s.stations, nullptr, plain).run();
  const SimulationResult b =
      Simulator(s.sats, s.stations, nullptr, tenanted).run();
  EXPECT_EQ(a.total_delivered_bytes, b.total_delivered_bytes);
  EXPECT_EQ(a.assignments, b.assignments);
  EXPECT_EQ(a.failed_assignments, b.failed_assignments);
  ASSERT_EQ(b.per_tenant.size(), 1u);
  EXPECT_DOUBLE_EQ(b.per_tenant[0].entitlement, 1.0);
}

TEST(TenantSim, SummaryJsonGainsTenantRowsAndValidates) {
  const TenantScenario s = tenant_scenario();
  const auto opts = tenant_opts(
      9, make_tenants(9, {{"alpha", 1}, {"beta", 2}, {"gamma", 4}}));
  const SimulationResult r =
      Simulator(s.sats, s.stations, nullptr, opts).run();
  std::stringstream ss;
  write_summary_json(ss, r);
  const std::string json = ss.str();
  std::string why;
  EXPECT_TRUE(dgs::testing::summary_schema_valid(json, &why)) << why;
  for (const char* key : {"\"tenants\":", "\"t_000\":", "\"t_002\":",
                          "\"alpha\"", "\"gamma\"", "\"entitlement\":",
                          "\"share\":", "\"sla_attainment\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

TEST(TenantSim, CheckpointRoundTripsTenantBooks) {
  const TenantScenario s = tenant_scenario();
  const auto opts = tenant_opts(
      9, make_tenants(9, {{"a", 1}, {"b", 2}, {"c", 4}}));

  Session baseline(s.sats, s.stations, nullptr, opts);
  std::stringstream full;
  write_summary_json(full, baseline.run_to_end());

  Session half(s.sats, s.stations, nullptr, opts);
  half.run_until_hours(2.0);
  std::stringstream cp;
  half.snapshot(cp);
  std::unique_ptr<Session> restored =
      Session::restore(cp, s.sats, s.stations, nullptr, opts);
  std::stringstream resumed;
  write_summary_json(resumed, restored->run_to_end());
  EXPECT_EQ(resumed.str(), full.str());
}

// Tenant mix is trajectory-shaping: a checkpoint taken under one weight
// vector must not restore under another.
TEST(TenantSim, CheckpointRejectsDifferentTenantMix) {
  const TenantScenario s = tenant_scenario();
  const auto opts = tenant_opts(
      9, make_tenants(9, {{"a", 1}, {"b", 2}, {"c", 4}}));
  Session session(s.sats, s.stations, nullptr, opts);
  session.run_until_hours(1.0);
  std::stringstream cp;
  session.snapshot(cp);
  auto other = tenant_opts(
      9, make_tenants(9, {{"a", 1}, {"b", 2}, {"c", 5}}));
  EXPECT_THROW(
      Session::restore(cp, s.sats, s.stations, nullptr, other),
      std::invalid_argument);
}

}  // namespace
}  // namespace dgs::core
