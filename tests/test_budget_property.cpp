// Property sweeps over the link budget: the predicted rate must respond
// monotonically to every physical knob, across the operating envelope.
#include <gtest/gtest.h>

#include <cmath>

#include "src/link/budget.h"
#include "src/util/angles.h"

namespace dgs::link {
namespace {

using util::deg2rad;

PathConditions path_at(double el_deg, double rain = 0.0, double cloud = 0.0,
                       double lat_deg = 45.0) {
  const double re = 6371.0, h = 550.0;
  const double el = deg2rad(el_deg);
  PathConditions p;
  p.range_km =
      std::sqrt((re + h) * (re + h) - re * re * std::cos(el) * std::cos(el)) -
      re * std::sin(el);
  p.elevation_rad = el;
  p.site_latitude_rad = deg2rad(lat_deg);
  p.rain_rate_mm_h = rain;
  p.cloud_liquid_kg_m2 = cloud;
  return p;
}

class BudgetElevationSweep : public ::testing::TestWithParam<double> {};

TEST_P(BudgetElevationSweep, RainOnlyEverHurts) {
  const double el = GetParam();
  double prev = 1e18;
  for (double rain : {0.0, 1.0, 5.0, 15.0, 40.0, 90.0}) {
    const LinkBudget b =
        evaluate_link(RadioSpec{}, ReceiveSystem{}, path_at(el, rain, 0.5));
    EXPECT_LE(b.esn0_db, prev + 1e-9) << "rain=" << rain;
    prev = b.esn0_db;
  }
}

TEST_P(BudgetElevationSweep, CloudOnlyEverHurts) {
  const double el = GetParam();
  double prev = 1e18;
  for (double cloud : {0.0, 0.2, 0.5, 1.0, 2.0, 4.0}) {
    const LinkBudget b =
        evaluate_link(RadioSpec{}, ReceiveSystem{}, path_at(el, 0.0, cloud));
    EXPECT_LE(b.esn0_db, prev + 1e-9) << "cloud=" << cloud;
    prev = b.esn0_db;
  }
}

TEST_P(BudgetElevationSweep, BiggerDishNeverHurts) {
  const double el = GetParam();
  double prev = -1e18;
  for (double dish : {0.6, 1.0, 1.8, 2.4, 4.0}) {
    ReceiveSystem rx;
    rx.dish_diameter_m = dish;
    const LinkBudget b =
        evaluate_link(RadioSpec{}, rx, path_at(el, 5.0, 0.5));
    EXPECT_GE(b.esn0_db, prev - 1e-9) << "dish=" << dish;
    EXPECT_GE(b.data_rate_bps, 0.0);
    prev = b.esn0_db;
  }
}

TEST_P(BudgetElevationSweep, MoreEirpNeverHurts) {
  const double el = GetParam();
  double prev = -1e18;
  for (double eirp : {6.0, 10.0, 13.0, 16.0, 20.0}) {
    RadioSpec radio;
    radio.eirp_dbw = eirp;
    const LinkBudget b =
        evaluate_link(radio, ReceiveSystem{}, path_at(el, 2.0, 0.3));
    EXPECT_GE(b.esn0_db, prev - 1e-9) << "eirp=" << eirp;
    prev = b.esn0_db;
  }
}

TEST_P(BudgetElevationSweep, RateFollowsEsN0ThroughTheModcodLadder) {
  // As Es/N0 rises (here via EIRP), the selected rate is non-decreasing.
  const double el = GetParam();
  double prev_rate = -1.0;
  for (double eirp = 0.0; eirp <= 24.0; eirp += 0.5) {
    RadioSpec radio;
    radio.eirp_dbw = eirp;
    const LinkBudget b =
        evaluate_link(radio, ReceiveSystem{}, path_at(el));
    EXPECT_GE(b.data_rate_bps, prev_rate - 1e-6) << "eirp=" << eirp;
    prev_rate = b.data_rate_bps;
  }
}

INSTANTIATE_TEST_SUITE_P(Elevations, BudgetElevationSweep,
                         ::testing::Values(5.0, 12.0, 25.0, 45.0, 70.0,
                                           90.0));

TEST(BudgetProperty, HigherFrequencyIsMoreWeatherSensitive) {
  // The Es/N0 penalty of the same storm grows with frequency.
  double prev_penalty = -1.0;
  for (double f_ghz : {8.2, 12.0, 14.0, 20.0, 26.5}) {
    RadioSpec radio;
    radio.frequency_hz = f_ghz * 1e9;
    const LinkBudget clear =
        evaluate_link(radio, ReceiveSystem{}, path_at(25.0));
    const LinkBudget storm =
        evaluate_link(radio, ReceiveSystem{}, path_at(25.0, 30.0, 1.5));
    const double penalty = clear.esn0_db - storm.esn0_db;
    EXPECT_GT(penalty, prev_penalty) << "f=" << f_ghz;
    prev_penalty = penalty;
  }
}

TEST(BudgetProperty, LatitudeOnlyMattersThroughRainHeight) {
  // Same geometry and weather, different latitude: the high-latitude site
  // has a shallower rain layer, so it suffers LESS rain attenuation.
  const LinkBudget tropics = evaluate_link(RadioSpec{}, ReceiveSystem{},
                                           path_at(20.0, 25.0, 0.0, 5.0));
  const LinkBudget subpolar = evaluate_link(RadioSpec{}, ReceiveSystem{},
                                            path_at(20.0, 25.0, 0.0, 62.0));
  EXPECT_GT(tropics.rain_db, subpolar.rain_db);
  EXPECT_DOUBLE_EQ(tropics.fspl_db, subpolar.fspl_db);
}

}  // namespace
}  // namespace dgs::link
