#pragma once
// dgslint fixture: R6 negative — guarded header, no finding.
inline int r6_guarded() { return 6; }
