// E16 — future work made real: per-instant stable matching vs time-expanded
// look-ahead pass-block planning (paper §3.1: "We do not optimize for links
// across time ... we leave this to future work").
//
// The look-ahead planner allocates whole passes, which (a) removes
// mid-pass handoffs (real stations need slew + re-lock time that the
// per-instant matcher ignores) and (b) lets rarely-served satellites claim
// a future pass before better-connected ones consume it.  Sweep the
// planning horizon and compare.
#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace dgs;
  using namespace dgs::bench;

  std::printf("=== E16: per-instant matching vs look-ahead planning "
              "(24 h, DGS 173) ===\n\n");
  const Setup setup = make_paper_setup();
  weather::SyntheticWeatherProvider wx(kWeatherSeed, kEpoch, 25.0);

  std::printf("  %-26s %11s %11s %11s %12s %9s\n", "scheduler", "lat med",
              "lat p90", "backlog", "delivered", "failed");
  {
    const core::SimulationResult r =
        core::Simulator(setup.sats, setup.dgs, &wx, day_sim()).run();
    std::printf("  %-26s %7.1f min %7.1f min %8.2f GB %9.1f TB %9lld\n",
                "per-instant (paper)", r.latency_minutes.median(),
                r.latency_minutes.percentile(90.0), r.backlog_gb.median(),
                r.total_delivered_bytes / 1e12,
                static_cast<long long>(r.failed_assignments));
  }
  for (double horizon_h : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    core::SimulationOptions opts = day_sim();
    opts.lookahead_hours = horizon_h;
    const core::SimulationResult r =
        core::Simulator(setup.sats, setup.dgs, &wx, opts).run();
    char label[64];
    std::snprintf(label, sizeof(label), "look-ahead %.2f h", horizon_h);
    std::printf("  %-26s %7.1f min %7.1f min %8.2f GB %9.1f TB %9lld\n",
                label, r.latency_minutes.median(),
                r.latency_minutes.percentile(90.0), r.backlog_gb.median(),
                r.total_delivered_bytes / 1e12,
                static_cast<long long>(r.failed_assignments));
  }
  std::printf("\n  reading: short horizons track the per-instant scheduler; "
              "long horizons trade responsiveness (the plan ignores data "
              "captured mid-window and forecast error grows with lead) for "
              "pass-level continuity.  The paper's per-instant choice is a "
              "reasonable default; whole-pass planning matters once slew/"
              "re-lock costs are modelled.\n");
  return 0;
}
