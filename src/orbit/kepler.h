// Classical two-body (Keplerian) utilities.
//
// Used (a) to build synthetic element sets for the constellation generator,
// and (b) as an independent sanity check of SGP4 over short horizons where
// perturbations are small.
#pragma once

#include "src/util/vec3.h"

namespace dgs::orbit {

/// Classical orbital elements (angles in radians).
struct KeplerianElements {
  double semi_major_axis_km = 7000.0;
  double eccentricity = 0.0;
  double inclination_rad = 0.0;
  double raan_rad = 0.0;        ///< Right ascension of the ascending node.
  double arg_perigee_rad = 0.0;
  double mean_anomaly_rad = 0.0;
};

/// Solves Kepler's equation M = E - e*sin(E) for the eccentric anomaly E
/// by Newton iteration.  `ecc` in [0, 1).  Converges to ~1e-12 rad.
double solve_kepler(double mean_anomaly_rad, double ecc);

/// Mean motion [rad/s] for a semi-major axis (WGS-72 mu).
double mean_motion_rad_s(double semi_major_axis_km);

/// Converts elements (with mean anomaly advanced by `dt_seconds`) to an
/// inertial position/velocity state.  Pure two-body motion, no perturbation.
struct StateVector {
  util::Vec3 position_km;
  util::Vec3 velocity_km_s;
};
StateVector propagate_two_body(const KeplerianElements& el, double dt_seconds);

/// Recovers classical elements from an inertial state vector (two-body).
/// Undefined for parabolic/hyperbolic states; throws std::domain_error.
KeplerianElements elements_from_state(const StateVector& sv);

}  // namespace dgs::orbit
