// Atmospheric gaseous absorption (simplified P.676 surrogate).
//
// The full ITU-R P.676 line-by-line oxygen/water-vapour model needs
// pressure/temperature/humidity profiles; at the X-band frequencies DGS
// cares about the zenith gaseous attenuation is a small, slowly varying
// correction (~0.05-0.3 dB).  We tabulate representative clear-air zenith
// attenuations versus frequency (sea level, 7.5 g/m^3 water vapour) and
// scale by the cosecant of the elevation.  DESIGN.md records this
// substitution.
#pragma once

namespace dgs::link {

/// Zenith (90 deg elevation) one-way gaseous attenuation [dB] at `freq_ghz`.
double gaseous_zenith_attenuation_db(double freq_ghz);

/// Slant-path gaseous attenuation [dB] at elevation `elevation_rad` (> 0),
/// cosecant-scaled with a clamp below 5 deg elevation.
double gaseous_attenuation_db(double freq_ghz, double elevation_rad);

}  // namespace dgs::link
