# Empty dependencies file for dgs_groundseg.
# This may be replaced when dependencies are built.
