
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/agenda.cpp" "src/core/CMakeFiles/dgs_core.dir/agenda.cpp.o" "gcc" "src/core/CMakeFiles/dgs_core.dir/agenda.cpp.o.d"
  "/root/repo/src/core/data_queue.cpp" "src/core/CMakeFiles/dgs_core.dir/data_queue.cpp.o" "gcc" "src/core/CMakeFiles/dgs_core.dir/data_queue.cpp.o.d"
  "/root/repo/src/core/lookahead.cpp" "src/core/CMakeFiles/dgs_core.dir/lookahead.cpp.o" "gcc" "src/core/CMakeFiles/dgs_core.dir/lookahead.cpp.o.d"
  "/root/repo/src/core/market.cpp" "src/core/CMakeFiles/dgs_core.dir/market.cpp.o" "gcc" "src/core/CMakeFiles/dgs_core.dir/market.cpp.o.d"
  "/root/repo/src/core/matching.cpp" "src/core/CMakeFiles/dgs_core.dir/matching.cpp.o" "gcc" "src/core/CMakeFiles/dgs_core.dir/matching.cpp.o.d"
  "/root/repo/src/core/plan.cpp" "src/core/CMakeFiles/dgs_core.dir/plan.cpp.o" "gcc" "src/core/CMakeFiles/dgs_core.dir/plan.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/dgs_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/dgs_core.dir/report.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/core/CMakeFiles/dgs_core.dir/scheduler.cpp.o" "gcc" "src/core/CMakeFiles/dgs_core.dir/scheduler.cpp.o.d"
  "/root/repo/src/core/simulator.cpp" "src/core/CMakeFiles/dgs_core.dir/simulator.cpp.o" "gcc" "src/core/CMakeFiles/dgs_core.dir/simulator.cpp.o.d"
  "/root/repo/src/core/value.cpp" "src/core/CMakeFiles/dgs_core.dir/value.cpp.o" "gcc" "src/core/CMakeFiles/dgs_core.dir/value.cpp.o.d"
  "/root/repo/src/core/visibility.cpp" "src/core/CMakeFiles/dgs_core.dir/visibility.cpp.o" "gcc" "src/core/CMakeFiles/dgs_core.dir/visibility.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dgs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/orbit/CMakeFiles/dgs_orbit.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/dgs_link.dir/DependInfo.cmake"
  "/root/repo/build/src/weather/CMakeFiles/dgs_weather.dir/DependInfo.cmake"
  "/root/repo/build/src/groundseg/CMakeFiles/dgs_groundseg.dir/DependInfo.cmake"
  "/root/repo/build/src/backend/CMakeFiles/dgs_backend.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
