#include "src/link/antenna.h"

#include <cmath>
#include <limits>

#include "src/util/check.h"
#include "src/util/constants.h"

namespace dgs::link {

double dish_gain_dbi(double diameter_m, double freq_hz, double efficiency) {
  DGS_ENSURE_GT(diameter_m, 0.0);
  DGS_ENSURE_GT(freq_hz, 0.0);
  DGS_ENSURE(efficiency > 0.0 && efficiency <= 1.0,
             "efficiency=" << efficiency << " outside (0,1]");
  const double x = util::kPi * diameter_m * freq_hz / util::kSpeedOfLight;
  return 10.0 * std::log10(efficiency * x * x);
}

double system_noise_temp_k(const ReceiveSystem& rx, double atmos_loss_db) {
  DGS_ENSURE_GE(atmos_loss_db, 0.0);
  constexpr double kMediumTempK = 275.0;
  const double transmissivity = std::pow(10.0, -atmos_loss_db / 10.0);
  // Clear-sky contribution is attenuated by the medium; the medium emits.
  const double sky = rx.clear_sky_temp_k * transmissivity +
                     kMediumTempK * (1.0 - transmissivity);
  return sky + rx.ground_spillover_k + rx.lna_noise_temp_k;
}

double g_over_t_db(const ReceiveSystem& rx, double freq_hz,
                   double atmos_loss_db) {
  // Dish gain depends only on (diameter, frequency, efficiency), and a
  // network reuses a handful of receiver configurations across millions
  // of edge evaluations, so a single-entry memo skips the identical
  // recomputation.  Same expression on the same inputs — the cached
  // value is bit-identical to an uncached call.  NaN sentinels can never
  // compare equal, so the first call always computes.
  thread_local double memo_diameter_m =
      std::numeric_limits<double>::quiet_NaN();
  thread_local double memo_freq_hz = std::numeric_limits<double>::quiet_NaN();
  thread_local double memo_efficiency =
      std::numeric_limits<double>::quiet_NaN();
  thread_local double memo_gain_dbi = 0.0;
  if (rx.dish_diameter_m != memo_diameter_m || freq_hz != memo_freq_hz ||
      rx.aperture_efficiency != memo_efficiency) {
    memo_gain_dbi =
        dish_gain_dbi(rx.dish_diameter_m, freq_hz, rx.aperture_efficiency);
    memo_diameter_m = rx.dish_diameter_m;
    memo_freq_hz = freq_hz;
    memo_efficiency = rx.aperture_efficiency;
  }
  const double t = system_noise_temp_k(rx, atmos_loss_db);
  return memo_gain_dbi - 10.0 * std::log10(t);
}

}  // namespace dgs::link
