// Look-ahead (time-expanded) scheduling — the paper's future work.
//
// §3.1 closes with: "we run the stable matching algorithm at each time
// instance ... We do not optimize for links across time.  This optimization
// can further benefit DGS but we leave this to future work."  This module
// is that optimization: it sweeps the contact graph over a horizon, fuses
// per-instant edges into contiguous *pass blocks*, scores each block with
// the value function against a queue snapshot, and greedily allocates
// non-overlapping blocks (per satellite and per station) by value density.
// A satellite then holds one station for a whole pass instead of being
// re-matched every quantum.
#pragma once

#include <span>
#include <vector>

#include "src/core/value.h"
#include "src/core/visibility.h"

namespace dgs::core {

/// A maximal contiguous run of visibility between one satellite-station
/// pair, with the per-step link predictions retained for execution.
struct PassBlock {
  int sat = 0;
  int station = 0;
  int first_step = 0;                 ///< Window step index of the first edge.
  std::vector<ContactEdge> steps;     ///< One edge per step, contiguous.

  int last_step() const {
    return first_step + static_cast<int>(steps.size()) - 1;
  }
  /// Volume the block can move [bytes] at the predicted rates.
  double capacity_bytes(double step_seconds) const;
};

/// Sweeps [start, start + steps*dt) and fuses edges into pass blocks.
/// Forecast lead grows with the step offset: planning further into the
/// window uses older information, exactly as a real uploaded plan would.
/// `station_down` (empty or num_stations) excludes faulted stations from
/// every swept instant — the planner schedules around known outages.
std::vector<PassBlock> find_pass_blocks(
    const VisibilityEngine& engine, const util::Epoch& start, int steps,
    double step_seconds, std::span<const char> station_down = {});

/// One planned horizon: per window step, the edges to execute.
struct HorizonPlan {
  std::vector<std::vector<ContactEdge>> per_step;
};

/// Greedy value-density allocation of pass blocks.  `queues` is the queue
/// state at `start` (a snapshot; drain during the window is intentionally
/// not projected — see DESIGN.md).  At most one concurrent block per
/// satellite and per station (beam_count is not considered here).
HorizonPlan plan_horizon(const VisibilityEngine& engine,
                         const std::vector<OnboardQueue>& queues,
                         const ValueFunction& value, const util::Epoch& start,
                         int steps, double step_seconds,
                         std::span<const char> station_down = {});

}  // namespace dgs::core
