// Ground-track and coverage analysis.
//
// Supporting utilities for the Earth-observation context the paper sets up
// (§1-2): where a satellite's imaging swath falls, how often a target is
// revisited, and what fraction of the Earth a constellation covers per day
// — the quantities that determine how much data the downlink must carry.
#pragma once

#include <vector>

#include "src/orbit/frames.h"
#include "src/orbit/sgp4.h"

namespace dgs::orbit {

/// One sampled sub-satellite point.
struct GroundTrackPoint {
  util::Epoch when;
  Geodetic geodetic;
};

/// Samples the sub-satellite track over [start, end] at `step_seconds`.
std::vector<GroundTrackPoint> ground_track(const Sgp4& sat,
                                           const util::Epoch& start,
                                           const util::Epoch& end,
                                           double step_seconds = 30.0);

/// Westward shift of the ascending-node longitude per orbit [rad]: Earth
/// rotation during one period (positive value; secular J2 drift is second
/// order over a day).
double node_shift_per_orbit_rad(const Sgp4& sat);

/// Times at which the satellite's imaging swath (half-width
/// `swath_half_angle_rad`, measured as the great-circle angle from the
/// sub-satellite point) covers the target during [start, end].
std::vector<util::Epoch> target_visits(const Sgp4& sat, const Geodetic& target,
                                       double swath_half_width_km,
                                       const util::Epoch& start,
                                       const util::Epoch& end,
                                       double step_seconds = 30.0);

struct CoverageStats {
  double covered_fraction = 0.0;  ///< Area-weighted fraction of grid cells
                                  ///< imaged at least once.
  int cells_total = 0;
  int cells_covered = 0;
};

/// Fraction of the Earth (area-weighted lat/lon grid with `lat_cells`
/// rows) imaged by the constellation's swaths during [start, end].
CoverageStats coverage(const std::vector<Sgp4>& sats,
                       double swath_half_width_km, const util::Epoch& start,
                       const util::Epoch& end, int lat_cells = 36,
                       double step_seconds = 30.0);

}  // namespace dgs::orbit
