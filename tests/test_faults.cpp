// Fault subsystem unit tests (DESIGN.md §11): timeline determinism,
// half-open step-boundary semantics, ack-relay backoff, the validated
// SimulationOptions API, and the deprecated-outages shim equivalence.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/core/report.h"
#include "src/core/simulator.h"
#include "src/faults/fault_plan.h"
#include "src/faults/profiles.h"
#include "src/groundseg/network_gen.h"

namespace dgs::faults {
namespace {

const util::Epoch kT0(util::DateTime{2020, 11, 4, 0, 0, 0.0});

// ---------------------------------------------------------------------
// Step-grid boundary semantics.

TEST(StepAtOrAfter, ExactBoundariesSnapNotCeil) {
  // 2.0 h at dt = 60 s is exactly step 120; float dust in the product
  // (2.0 * 3600 / 60 may not be an exact 120.0 on every libm) must not
  // push it to 121.
  EXPECT_EQ(step_at_or_after(2.0, 60.0), 120);
  EXPECT_EQ(step_at_or_after(0.0, 60.0), 0);
  // One third of an hour at dt = 120 s: 1200 s / 120 s = step 10.
  EXPECT_EQ(step_at_or_after(1.0 / 3.0, 120.0), 10);
}

TEST(StepAtOrAfter, MidStepTimesRoundUp) {
  // 90 s into the run at dt = 60 s: the first step starting at-or-after
  // is step 2 (step 1 starts at 60 s, before the instant).
  EXPECT_EQ(step_at_or_after(90.0 / 3600.0, 60.0), 2);
  EXPECT_EQ(step_at_or_after(1.0 / 3600.0, 60.0), 1);
}

TEST(FaultTimeline, OutageWindowIsHalfOpenOnTheStepGrid) {
  // Window [1, 2) h at dt = 60 s: steps 60..119 are blanked; step 120
  // (whose start is exactly the window end) is NOT blanked, and step 59
  // (ending exactly at the window start) is not blanked either.
  FaultPlan plan;
  plan.outages.push_back(OutageWindow{3, 1.0, 2.0});
  FaultTimeline tl(plan, 8, 240, 60.0);
  EXPECT_FALSE(tl.station_down(3, 59));
  EXPECT_TRUE(tl.station_down(3, 60));
  EXPECT_TRUE(tl.station_down(3, 119));
  EXPECT_FALSE(tl.station_down(3, 120));
  EXPECT_FALSE(tl.station_down(2, 90));  // other stations untouched
}

TEST(FaultTimeline, AdjacentAndOverlappingWindowsMerge) {
  FaultPlan plan;
  plan.outages.push_back(OutageWindow{0, 2.0, 3.0});
  plan.outages.push_back(OutageWindow{0, 1.0, 2.5});
  plan.outages.push_back(OutageWindow{0, 5.0, 4.0});  // empty after clip
  FaultTimeline tl(plan, 2, 6 * 60, 60.0);
  ASSERT_EQ(tl.down_intervals()[0].size(), 1u);
  EXPECT_EQ(tl.down_intervals()[0][0].begin, 60);
  EXPECT_EQ(tl.down_intervals()[0][0].end, 180);
  EXPECT_TRUE(tl.down_intervals()[1].empty());
}

TEST(FaultTimeline, FillStationDownMatchesPointQueries) {
  FaultPlan plan;
  plan.seed = 9;
  plan.outages.push_back(OutageWindow{1, 0.5, 1.5});
  plan.churn.mtbf_hours = 2.0;
  plan.churn.mttr_hours = 0.5;
  FaultTimeline tl(plan, 5, 12 * 60, 60.0);
  std::vector<char> mask;
  for (std::int64_t k = 0; k < 12 * 60; k += 7) {
    tl.fill_station_down(k, &mask);
    ASSERT_EQ(mask.size(), 5u);
    for (int g = 0; g < 5; ++g) {
      EXPECT_EQ(mask[g] != 0, tl.station_down(g, k))
          << "station " << g << " step " << k;
    }
  }
}

// ---------------------------------------------------------------------
// Determinism of the stochastic draws.

TEST(FaultTimeline, ChurnIsReproducibleForFixedSeed) {
  FaultPlan plan;
  plan.seed = 42;
  plan.churn.mtbf_hours = 6.0;
  plan.churn.mttr_hours = 1.0;
  const FaultTimeline a(plan, 20, 24 * 60, 60.0);
  const FaultTimeline b(plan, 20, 24 * 60, 60.0);
  ASSERT_EQ(a.down_intervals().size(), b.down_intervals().size());
  bool any_down = false;
  for (std::size_t g = 0; g < a.down_intervals().size(); ++g) {
    const auto& ia = a.down_intervals()[g];
    const auto& ib = b.down_intervals()[g];
    ASSERT_EQ(ia.size(), ib.size()) << "station " << g;
    for (std::size_t i = 0; i < ia.size(); ++i) {
      EXPECT_EQ(ia[i].begin, ib[i].begin);
      EXPECT_EQ(ia[i].end, ib[i].end);
      // Intervals are sorted, disjoint, and on-grid.
      EXPECT_LT(ia[i].begin, ia[i].end);
      EXPECT_LE(ia[i].end, 24 * 60);
      if (i > 0) {
        EXPECT_GT(ia[i].begin, ia[i - 1].end);
      }
      any_down = true;
    }
  }
  // 24 h at MTBF 6 h: essentially impossible that no station failed.
  EXPECT_TRUE(any_down);

  plan.seed = 43;
  const FaultTimeline c(plan, 20, 24 * 60, 60.0);
  bool differs = false;
  for (std::size_t g = 0; g < a.down_intervals().size() && !differs; ++g) {
    const auto& ia = a.down_intervals()[g];
    const auto& ic = c.down_intervals()[g];
    if (ia.size() != ic.size()) {
      differs = true;
      break;
    }
    for (std::size_t i = 0; i < ia.size(); ++i) {
      if (ia[i].begin != ic[i].begin || ia[i].end != ic[i].end) {
        differs = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differs) << "changing the seed must change the churn";
}

TEST(FaultTimeline, ChurnFractionZeroDisablesAllStations) {
  FaultPlan plan;
  plan.seed = 7;
  plan.churn.mtbf_hours = 1.0;
  plan.churn.mttr_hours = 1.0;
  plan.churn.station_fraction = 0.0;
  const FaultTimeline tl(plan, 10, 24 * 60, 60.0);
  for (const auto& iv : tl.down_intervals()) EXPECT_TRUE(iv.empty());
}

TEST(FaultTimeline, AckRelayOutcomeIsStatelessAndCapped) {
  FaultPlan plan;
  plan.seed = 1234;
  plan.ack_relay.loss_probability = 0.9;
  plan.ack_relay.initial_backoff_s = 10.0;
  plan.ack_relay.backoff_multiplier = 2.0;
  plan.ack_relay.max_backoff_s = 40.0;
  plan.ack_relay.max_attempts = 6;
  const FaultTimeline tl(plan, 4, 100, 60.0);

  bool any_retry = false;
  for (std::int64_t step = 0; step < 100; step += 3) {
    for (int sat = 0; sat < 3; ++sat) {
      const AckRelayOutcome o1 = tl.ack_relay_outcome(step, sat, 2);
      const AckRelayOutcome o2 = tl.ack_relay_outcome(step, sat, 2);
      EXPECT_EQ(o1.retries, o2.retries);
      EXPECT_EQ(o1.delay_s, o2.delay_s);
      EXPECT_LE(o1.retries, 6);
      if (o1.retries > 0) any_retry = true;
      // Backoff schedule 10, 20, 40, 40, ... capped at max_backoff_s.
      double expect_delay = 0.0, backoff = 10.0;
      for (int r = 0; r < o1.retries; ++r) {
        expect_delay += std::min(backoff, 40.0);
        backoff *= 2.0;
      }
      EXPECT_DOUBLE_EQ(o1.delay_s, expect_delay);
    }
  }
  EXPECT_TRUE(any_retry) << "p=0.9 must lose some attempts";

  FaultPlan clean = plan;
  clean.ack_relay.loss_probability = 0.0;
  const FaultTimeline tl0(clean, 4, 100, 60.0);
  const AckRelayOutcome o = tl0.ack_relay_outcome(50, 1, 2);
  EXPECT_EQ(o.retries, 0);
  EXPECT_EQ(o.delay_s, 0.0);
}

TEST(FaultTimeline, PlanUploadDrawsAreStatelessAndSeedDependent) {
  FaultPlan plan;
  plan.seed = 5;
  plan.plan_upload.failure_probability = 0.3;
  const FaultTimeline tl(plan, 4, 2000, 60.0);
  int failures = 0;
  for (std::int64_t step = 0; step < 2000; ++step) {
    const bool f = tl.plan_upload_fails(step, 0, 1);
    EXPECT_EQ(f, tl.plan_upload_fails(step, 0, 1));
    if (f) ++failures;
  }
  // ~600 expected; a generous band catches a broken hash, not variance.
  EXPECT_GT(failures, 400);
  EXPECT_LT(failures, 800);

  plan.seed = 6;
  const FaultTimeline tl2(plan, 4, 2000, 60.0);
  int agree = 0;
  for (std::int64_t step = 0; step < 2000; ++step) {
    if (tl.plan_upload_fails(step, 0, 1) == tl2.plan_upload_fails(step, 0, 1))
      ++agree;
  }
  EXPECT_LT(agree, 2000) << "changing the seed must change the draws";
}

TEST(FaultTimeline, BackhaulMultiplierTakesTheMinimumOverWindows) {
  FaultPlan plan;
  plan.backhaul.push_back(BackhaulFault{0, 1.0, 3.0, 0.5});
  plan.backhaul.push_back(BackhaulFault{0, 2.0, 4.0, 0.0});
  const FaultTimeline tl(plan, 2, 5 * 60, 60.0);
  EXPECT_EQ(tl.backhaul_multiplier(0, 30), 1.0);    // before
  EXPECT_EQ(tl.backhaul_multiplier(0, 90), 0.5);    // first window only
  EXPECT_EQ(tl.backhaul_multiplier(0, 150), 0.0);   // overlap -> min
  EXPECT_EQ(tl.backhaul_multiplier(0, 210), 0.0);   // second window only
  EXPECT_EQ(tl.backhaul_multiplier(0, 240), 1.0);   // half-open end
  EXPECT_EQ(tl.backhaul_multiplier(1, 150), 1.0);   // other station
}

// ---------------------------------------------------------------------
// Profiles.

TEST(Profiles, KnownNamesBuildAndUnknownThrows) {
  EXPECT_TRUE(make_profile("none", 1, 30).empty());
  EXPECT_TRUE(make_profile("churn", 1, 30).has_station_faults());
  const FaultPlan flaky = make_profile("flaky-net", 1, 30);
  EXPECT_TRUE(flaky.has_ack_relay_faults());
  EXPECT_TRUE(flaky.has_plan_upload_faults());
  EXPECT_TRUE(make_profile("brownout", 1, 30).has_backhaul_faults());
  const FaultPlan storm = make_profile("storm", 1, 30);
  EXPECT_TRUE(storm.has_station_faults());
  EXPECT_TRUE(storm.has_backhaul_faults());
  EXPECT_TRUE(storm.has_ack_relay_faults());
  EXPECT_THROW(make_profile("meteor", 1, 30), std::invalid_argument);
  EXPECT_NE(std::string(profile_names()).find("storm"), std::string::npos);
}

TEST(Profiles, BrownoutIsDeterministicPerSeed) {
  const FaultPlan a = make_profile("brownout", 17, 40);
  const FaultPlan b = make_profile("brownout", 17, 40);
  ASSERT_EQ(a.backhaul.size(), b.backhaul.size());
  EXPECT_FALSE(a.backhaul.empty());
  for (std::size_t i = 0; i < a.backhaul.size(); ++i) {
    EXPECT_EQ(a.backhaul[i].station_index, b.backhaul[i].station_index);
    EXPECT_EQ(a.backhaul[i].start_hours, b.backhaul[i].start_hours);
    EXPECT_EQ(a.backhaul[i].end_hours, b.backhaul[i].end_hours);
    EXPECT_EQ(a.backhaul[i].rate_multiplier, b.backhaul[i].rate_multiplier);
  }
}

}  // namespace
}  // namespace dgs::faults

namespace dgs::core {
namespace {

const util::Epoch kT0(util::DateTime{2020, 11, 4, 0, 0, 0.0});

// ---------------------------------------------------------------------
// SimulationOptions::validate(): structured errors with field names.

TEST(OptionsValidate, ReportsTheOffendingField) {
  SimulationOptions opts;
  opts.start = kT0;
  EXPECT_FALSE(opts.validate().has_value());

  opts.duration_hours = 0.0;
  auto e = opts.validate();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->field, "duration_hours");
  opts.duration_hours = 24.0;

  opts.lookahead_hours = -1.0;
  e = opts.validate();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->field, "lookahead_hours");
  opts.lookahead_hours = 0.0;

  opts.faults.outages.push_back(faults::OutageWindow{12, 0.0, 1.0});
  EXPECT_FALSE(opts.validate().has_value()) << "no station count, no check";
  e = opts.validate(/*num_stations=*/5);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->field, "faults.outages[0].station_index");
  opts.faults.outages.clear();

  opts.faults.outages.push_back(faults::OutageWindow{0, 3.0, 1.0});
  e = opts.validate(5);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->field, "faults.outages[0].end_hours");
  opts.faults.outages.clear();

  opts.faults.ack_relay.loss_probability = 1.0;
  e = opts.validate();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->field, "faults.ack_relay.loss_probability");
  opts.faults.ack_relay.loss_probability = 0.0;

  opts.faults.churn.mtbf_hours = 2.0;
  opts.faults.churn.mttr_hours = 0.0;
  e = opts.validate();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->field, "faults.churn.mttr_hours");
  opts.faults.churn = faults::StationChurn{};

  opts.faults.backhaul.push_back(faults::BackhaulFault{0, 0.0, 1.0, 0.5});
  e = opts.validate(5);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->field, "faults.backhaul");  // needs station_backhaul_bps
  opts.station_backhaul_bps = 50e6;
  EXPECT_FALSE(opts.validate(5).has_value());
  opts.faults.backhaul[0].rate_multiplier = 2.0;
  e = opts.validate(5);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->field, "faults.backhaul[0].rate_multiplier");
}

TEST(OptionsValidate, ConstructorThrowsWithFieldInMessage) {
  groundseg::NetworkOptions net;
  net.num_satellites = 2;
  net.num_stations = 3;
  net.seed = 1;
  const auto sats = groundseg::generate_constellation(net, kT0);
  const auto stations = groundseg::generate_dgs_stations(net);

  SimulationOptions opts;
  opts.start = kT0;
  opts.step_seconds = 0.0;
  try {
    Simulator sim(sats, stations, nullptr, opts);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& ex) {
    EXPECT_NE(std::string(ex.what()).find("SimulationOptions.step_seconds"),
              std::string::npos)
        << ex.what();
  }

  // The constructor sees the real station count, so fault-plan station
  // indices are range-checked at construction too.
  opts.step_seconds = 60.0;
  opts.faults.outages.push_back(faults::OutageWindow{99, 0.0, 1.0});
  EXPECT_THROW(Simulator(sats, stations, nullptr, opts),
               std::invalid_argument);
}

}  // namespace
}  // namespace dgs::core
