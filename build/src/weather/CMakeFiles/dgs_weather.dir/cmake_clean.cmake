file(REMOVE_RECURSE
  "CMakeFiles/dgs_weather.dir/climatology.cpp.o"
  "CMakeFiles/dgs_weather.dir/climatology.cpp.o.d"
  "CMakeFiles/dgs_weather.dir/synthetic.cpp.o"
  "CMakeFiles/dgs_weather.dir/synthetic.cpp.o.d"
  "libdgs_weather.a"
  "libdgs_weather.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgs_weather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
