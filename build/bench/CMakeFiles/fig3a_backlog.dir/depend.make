# Empty dependencies file for fig3a_backlog.
# This may be replaced when dependencies are built.
