// Station-side edge store-and-forward (paper §3.3 "Edge compute on the
// ground station").
//
// A DGS station decodes the downlink locally and uploads the result over
// its own Internet connection, which is far slower than the X-band burst
// rate.  Data therefore queues at the station; edge compute earns its keep
// by uploading latency-sensitive data first and bulk imagery at lower
// priority.  This module models that queue: strict-priority, FIFO within a
// class, drained at the station's backhaul rate.
#pragma once

#include <deque>
#include <functional>

#include "src/obs/metrics.h"
#include "src/util/time.h"

namespace dgs::backend {

/// A decoded data block waiting at the station for upload to the cloud.
struct EdgeItem {
  util::Epoch capture;        ///< When the satellite imaged it.
  util::Epoch ground_rx;      ///< When the station received it.
  double bytes = 0.0;
  double remaining_bytes = 0.0;
  double priority = 1.0;
};

/// Fired when an item's last byte reaches the cloud:
/// (capture-to-cloud latency seconds, item).
using CloudArrivalCallback = std::function<void(double, const EdgeItem&)>;

class StationEdgeQueue {
 public:
  /// `backhaul_bps` > 0: the station's Internet uplink rate.
  explicit StationEdgeQueue(double backhaul_bps);

  /// Enqueues a decoded block received from the downlink.
  void receive(double bytes, double priority, const util::Epoch& capture,
               const util::Epoch& ground_rx);

  /// Uploads for `dt_seconds` ending at `now`; completed items fire
  /// `on_cloud_arrival`.  `rate_multiplier` scales the backhaul rate for
  /// this quantum (fault injection, DESIGN.md §11): 1 = nominal, 0 = hard
  /// blackout (data keeps queueing).  Returns bytes uploaded.
  double drain(double dt_seconds, const util::Epoch& now,
               const CloudArrivalCallback& on_cloud_arrival,
               double rate_multiplier = 1.0);

  double queued_bytes() const { return queued_bytes_; }
  double backhaul_bps() const { return backhaul_bps_; }
  std::size_t depth() const { return items_.size(); }

  /// Observability hooks (borrowed counters, typically shared by every
  /// station queue of a run): bytes entering the queue from the downlink
  /// and bytes leaving it toward the cloud.  Null (the default) disables.
  void set_metrics(obs::Counter* received_bytes, obs::Counter* uploaded_bytes) {
    received_bytes_metric_ = received_bytes;
    uploaded_bytes_metric_ = uploaded_bytes;
  }

  /// Checkpoint access (core::Session): the queue contents in service
  /// order plus the exact queued-bytes aggregate, restored verbatim.
  const std::deque<EdgeItem>& items() const { return items_; }
  void restore_state(std::deque<EdgeItem> items, double queued_bytes) {
    items_ = std::move(items);
    queued_bytes_ = queued_bytes;
  }

 private:
  double backhaul_bps_;
  std::deque<EdgeItem> items_;   ///< Priority desc, ground_rx asc.
  double queued_bytes_ = 0.0;
  obs::Counter* received_bytes_metric_ = nullptr;  ///< Borrowed; may be null.
  obs::Counter* uploaded_bytes_metric_ = nullptr;  ///< Borrowed; may be null.
};

}  // namespace dgs::backend
