// Onboard queue: generation, FIFO transmit, partial chunks, ack-free
// storage semantics.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "src/core/data_queue.h"

namespace dgs::core {
namespace {

const util::Epoch kT0(util::DateTime{2020, 11, 4, 0, 0, 0.0});

TEST(OnboardQueue, StartsEmpty) {
  OnboardQueue q;
  EXPECT_DOUBLE_EQ(q.queued_bytes(), 0.0);
  EXPECT_DOUBLE_EQ(q.pending_ack_bytes(), 0.0);
  EXPECT_DOUBLE_EQ(q.storage_bytes(), 0.0);
}

TEST(OnboardQueue, GenerateAccumulates) {
  OnboardQueue q;
  q.generate(100.0, kT0);
  q.generate(50.0, kT0.plus_seconds(60));
  EXPECT_DOUBLE_EQ(q.queued_bytes(), 150.0);
  EXPECT_EQ(q.chunks().size(), 2u);
  EXPECT_DOUBLE_EQ(q.oldest_capture().jd(), kT0.jd());
}

TEST(OnboardQueue, ZeroGenerationIsNoOp) {
  OnboardQueue q;
  q.generate(0.0, kT0);
  EXPECT_TRUE(q.chunks().empty());
}

TEST(OnboardQueue, RejectsNegativeBytes) {
  OnboardQueue q;
  EXPECT_THROW(q.generate(-1.0, kT0), std::invalid_argument);
  EXPECT_THROW(q.transmit(-1.0, kT0, nullptr), std::invalid_argument);
}

TEST(OnboardQueue, TransmitIsOldestFirst) {
  OnboardQueue q;
  q.generate(100.0, kT0);
  q.generate(100.0, kT0.plus_seconds(600));
  std::vector<double> latencies;
  const double sent = q.transmit(
      100.0, kT0.plus_seconds(1200),
      [&](double lat_s, const DataChunk&) { latencies.push_back(lat_s); });
  EXPECT_DOUBLE_EQ(sent, 100.0);
  ASSERT_EQ(latencies.size(), 1u);
  EXPECT_NEAR(latencies[0], 1200.0, 1e-6);  // the older chunk went first
  EXPECT_DOUBLE_EQ(q.queued_bytes(), 100.0);
}

TEST(OnboardQueue, PartialChunkCompletionLatency) {
  OnboardQueue q;
  q.generate(100.0, kT0);
  std::vector<double> latencies;
  auto cb = [&](double lat_s, const DataChunk& chunk) {
    latencies.push_back(lat_s);
    EXPECT_DOUBLE_EQ(chunk.total_bytes, 100.0);  // the whole chunk
  };
  q.transmit(40.0, kT0.plus_seconds(60), cb);
  EXPECT_TRUE(latencies.empty());  // not finished yet
  EXPECT_DOUBLE_EQ(q.queued_bytes(), 60.0);
  q.transmit(60.0, kT0.plus_seconds(120), cb);
  ASSERT_EQ(latencies.size(), 1u);
  // Latency counts to the moment the LAST byte arrives.
  EXPECT_NEAR(latencies[0], 120.0, 1e-6);
  EXPECT_DOUBLE_EQ(q.queued_bytes(), 0.0);
}

TEST(OnboardQueue, TransmitBoundedByQueue) {
  OnboardQueue q;
  q.generate(30.0, kT0);
  EXPECT_DOUBLE_EQ(q.transmit(100.0, kT0.plus_seconds(10), nullptr), 30.0);
  EXPECT_DOUBLE_EQ(q.transmit(100.0, kT0.plus_seconds(20), nullptr), 0.0);
}

TEST(OnboardQueue, AckFreeStorageSemantics) {
  // Paper §3.3: transmitted data still occupies storage until an ack
  // arrives through a transmit-capable contact.
  OnboardQueue q;
  q.generate(200.0, kT0);
  q.transmit(80.0, kT0.plus_seconds(60), nullptr);
  EXPECT_DOUBLE_EQ(q.queued_bytes(), 120.0);
  EXPECT_DOUBLE_EQ(q.pending_ack_bytes(), 80.0);
  EXPECT_DOUBLE_EQ(q.storage_bytes(), 200.0);  // nothing freed yet

  std::vector<std::pair<double, double>> acks;
  q.acknowledge_all(kT0.plus_seconds(360), [&](double delay_s, double bytes) {
    acks.emplace_back(delay_s, bytes);
  });
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_NEAR(acks[0].first, 300.0, 1e-6);  // sent at t=60, acked at t=360
  EXPECT_DOUBLE_EQ(acks[0].second, 80.0);
  EXPECT_DOUBLE_EQ(q.pending_ack_bytes(), 0.0);
  EXPECT_DOUBLE_EQ(q.storage_bytes(), 120.0);
}

TEST(OnboardQueue, MultipleBatchesAckSeparately) {
  OnboardQueue q;
  q.generate(100.0, kT0);
  q.transmit(30.0, kT0.plus_seconds(60), nullptr);
  q.transmit(30.0, kT0.plus_seconds(120), nullptr);
  std::vector<double> delays;
  q.acknowledge_all(kT0.plus_seconds(600),
                    [&](double d, double) { delays.push_back(d); });
  ASSERT_EQ(delays.size(), 2u);
  EXPECT_NEAR(delays[0], 540.0, 1e-6);
  EXPECT_NEAR(delays[1], 480.0, 1e-6);
}

TEST(OnboardQueue, AckOnEmptyPendingIsNoOp) {
  OnboardQueue q;
  int calls = 0;
  q.acknowledge_all(kT0, [&](double, double) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(OnboardQueue, ConservationUnderRandomizedWorkload) {
  OnboardQueue q;
  double generated = 0.0, delivered_chunks = 0.0, sent_total = 0.0;
  util::Epoch t = kT0;
  for (int i = 0; i < 500; ++i) {
    t = t.plus_seconds(60);
    const double gen = (i * 37 % 97) * 1.0;
    q.generate(gen, t);
    generated += gen;
    const double sent = q.transmit(
        (i * 53 % 83) * 1.0, t,
        [&](double, const DataChunk& c) { delivered_chunks += c.total_bytes; });
    sent_total += sent;
  }
  // Bytes are conserved: generated == queued + sent; sent == pending (no
  // acks were issued); fully-delivered chunk bytes never exceed sent bytes.
  EXPECT_NEAR(q.queued_bytes() + sent_total, generated, 1e-6);
  EXPECT_NEAR(q.pending_ack_bytes(), sent_total, 1e-6);
  EXPECT_LE(delivered_chunks, sent_total + 1e-6);
}

}  // namespace
}  // namespace dgs::core
