// E7 — matching micro-benchmarks: Gale-Shapley convergence cost vs graph
// size (the paper quotes O(K^2), K = max(N, M)), compared with the
// Hungarian optimal matcher (O(K^3)) and greedy (O(E log E)).
#include <benchmark/benchmark.h>

#include "src/core/matching.h"
#include "src/util/rng.h"

namespace {

using dgs::core::Edge;

std::vector<Edge> make_graph(int sats, int stations, double density,
                             std::uint64_t seed) {
  dgs::util::Rng rng(seed);
  std::vector<Edge> edges;
  for (int s = 0; s < sats; ++s) {
    for (int g = 0; g < stations; ++g) {
      if (rng.uniform() < density) {
        edges.push_back(Edge{s, g, rng.uniform(0.1, 100.0)});
      }
    }
  }
  return edges;
}

void BM_StableMatching(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const auto edges = make_graph(k, k, 0.1, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dgs::core::stable_matching(edges, k, k));
  }
  state.SetComplexityN(k);
}
BENCHMARK(BM_StableMatching)->RangeMultiplier(2)->Range(32, 512)->Complexity();

void BM_OptimalMatching(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const auto edges = make_graph(k, k, 0.1, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dgs::core::optimal_matching(edges, k, k));
  }
  state.SetComplexityN(k);
}
BENCHMARK(BM_OptimalMatching)->RangeMultiplier(2)->Range(32, 256)->Complexity();

void BM_GreedyMatching(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const auto edges = make_graph(k, k, 0.1, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dgs::core::greedy_matching(edges, k, k));
  }
  state.SetComplexityN(k);
}
BENCHMARK(BM_GreedyMatching)->RangeMultiplier(2)->Range(32, 512)->Complexity();

// The paper-scale instance: 259 satellites x 173 stations, with the edge
// density a real instant produces (each satellite sees a handful of
// stations).
void BM_StableMatchingPaperScale(benchmark::State& state) {
  const auto edges = make_graph(259, 173, 0.04, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dgs::core::stable_matching(edges, 259, 173));
  }
}
BENCHMARK(BM_StableMatchingPaperScale);

void BM_OptimalMatchingPaperScale(benchmark::State& state) {
  const auto edges = make_graph(259, 173, 0.04, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dgs::core::optimal_matching(edges, 259, 173));
  }
}
BENCHMARK(BM_OptimalMatchingPaperScale);

}  // namespace

BENCHMARK_MAIN();
