// Shared command-line handling for the micro benches.
//
// Google Benchmark owns the `--benchmark_*` namespace; DGS-specific knobs
// are consumed here *before* benchmark::Initialize sees (and rejects)
// them.  Currently: `--threads=N` / `--threads N` selects the ThreadPool
// lane count the benchmarked pipeline runs with (1 = serial, the default;
// 0 = hardware concurrency), so speedup curves are measurable by sweeping
// the flag.
#pragma once

#include <cstdlib>
#include <cstring>
#include <string>

namespace dgs::bench {

/// Extracts `--threads` from argv (compacting it away so Benchmark's own
/// parser never sees it) and returns the requested lane count, or
/// `default_threads` when absent.
inline int consume_threads_flag(int* argc, char** argv,
                                int default_threads = 1) {
  int threads = default_threads;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::atoi(argv[i] + 10);
      continue;
    }
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < *argc) {
      threads = std::atoi(argv[i + 1]);
      ++i;
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  return threads;
}

/// Extracts `--trace-out=FILE` / `--trace-out FILE` (again before
/// Benchmark's parser rejects it).  Returns the path, or "" when absent;
/// the caller enables span tracing and writes the Chrome-trace JSON there
/// after the run.
inline std::string consume_trace_out_flag(int* argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      path = argv[i] + 12;
      continue;
    }
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < *argc) {
      path = argv[i + 1];
      ++i;
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  return path;
}

}  // namespace dgs::bench
