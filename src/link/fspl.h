// Free-space path loss (paper §3.2, eq. 1).
#pragma once

#include <cmath>

#include "src/util/check.h"
#include "src/util/constants.h"

namespace dgs::link {

/// Free-space path loss in dB for slant range `distance_km` at `freq_hz`:
/// L = (4*pi*d*f/c)^2, expressed in dB.
inline double fspl_db(double distance_km, double freq_hz) {
  DGS_ENSURE_GT(distance_km, 0.0);
  DGS_ENSURE_GT(freq_hz, 0.0);
  const double d_m = distance_km * 1000.0;
  return 20.0 * std::log10(4.0 * util::kPi * d_m * freq_hz /
                           util::kSpeedOfLight);
}

}  // namespace dgs::link
