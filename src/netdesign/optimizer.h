// Station-selection optimizers (DESIGN.md §15).
//
// Two tiers, matching how expensive their evaluators are:
//
//   * lazy_greedy maximizes the table's weighted max-coverage objective —
//     monotone submodular, so plain greedy already carries the classic
//     (1 - 1/e) guarantee and the lazy queue (Minoux '78) makes it cheap:
//     a candidate is only re-evaluated when its stale upper bound reaches
//     the top of the heap.
//
//   * local_search refines a selection with bounded swap moves, scoring
//     each trial subset with the *full* Simulator (latency tail + backlog,
//     the metrics the paper actually reports) — the expensive evaluator is
//     reserved for the handful of subsets near the frontier.
//
// Both are deterministic: ties break toward the smaller candidate id, so
// the selection is independent of candidate iteration order (pinned in
// tests/test_netdesign.cpp).
#pragma once

#include <functional>
#include <vector>

#include "src/netdesign/value_table.h"
#include "src/obs/metrics.h"

namespace dgs::netdesign {

struct GreedyOptions {
  int k = 10;          ///< Stations to select (fewer if pool/budget bind).
  double budget = 0.0; ///< Total install-cost cap; 0 = unlimited.
};

struct GreedyResult {
  /// Pool indices (CandidateEntry::candidate) in pick order.
  std::vector<int> selected;
  /// Accepted marginal gain (GB) per pick; non-increasing by
  /// submodularity (test invariant).
  std::vector<double> gains;
  double objective_gb = 0.0;  ///< Sum of gains.
  double total_cost = 0.0;
};

/// Lazy-greedy weighted max-coverage over the table.  Budget-infeasible
/// candidates are discarded as they surface (cost only grows, so they can
/// never become feasible).  Deterministic for a fixed table regardless of
/// the order of table.candidates.
GreedyResult lazy_greedy(const ValueTable& table, const GreedyOptions& opts,
                         obs::Registry* metrics = nullptr);

/// One full-Simulator evaluation of a station subset (see
/// pareto.h's SubsetEvaluator for the production implementation).
struct EvalPoint {
  double latency_p50_min = 0.0;
  double latency_p90_min = 0.0;
  double backlog_end_gb = 0.0;    ///< Sum over satellites, end of horizon.
  double delivered_fraction = 0.0;
};

/// Scalar ranking of an evaluation for the swap search: the p90 latency
/// tail plus a backlog penalty (smaller is better).  One leftover GB is
/// worth kBacklogWeightMinPerGb minutes of tail latency — backlog is data
/// that missed the *whole* horizon, so it outweighs tail minutes.
inline constexpr double kBacklogWeightMinPerGb = 10.0;
double eval_score(const EvalPoint& p);

/// Evaluates a subset given as ascending pool indices.
using SubsetEvalFn = std::function<EvalPoint(const std::vector<int>&)>;

struct LocalSearchOptions {
  int max_rounds = 2;  ///< Swap passes over the selection.
  int top_m = 6;       ///< Swap-in candidates per round (by standalone
                       ///< value).
  int max_evals = 40;  ///< Hard cap on evaluator calls.
  double budget = 0.0; ///< Same semantics as GreedyOptions::budget.
};

struct LocalSearchResult {
  std::vector<int> selected;  ///< Pool indices, ascending.
  EvalPoint eval;             ///< Evaluation of `selected`.
  int sim_evals = 0;
  int swaps = 0;              ///< Accepted improving moves.
};

/// First-improvement swap search from `start_selected` (pool indices).
/// Each accepted move strictly improves eval_score; deterministic move
/// order (out ascending, in by descending standalone value, ties toward
/// the smaller id).
LocalSearchResult local_search(const ValueTable& table,
                               const std::vector<int>& start_selected,
                               const SubsetEvalFn& evaluate,
                               const LocalSearchOptions& opts,
                               obs::Registry* metrics = nullptr);

}  // namespace dgs::netdesign
