// Latitude-band climatology used to seed the synthetic weather generator.
//
// Captures the first-order global precipitation structure: a wet
// inter-tropical convergence zone, dry subtropical ridges, moderate
// mid-latitude storm tracks, and dry polar caps.  Values are relative
// weights, not physical rainfall totals — the synthetic generator scales
// them into storm-cell density and intensity.
#pragma once

namespace dgs::weather {

/// Relative likelihood (0..1) that a storm system exists at this latitude.
double storm_density_weight(double latitude_rad);

/// Typical peak rain rate [mm/h] of convective cells at this latitude.
double typical_peak_rain_mm_h(double latitude_rad);

/// Background (non-storm) cloud liquid water [kg/m^2] climatology.
double background_cloud_kg_m2(double latitude_rad);

}  // namespace dgs::weather
