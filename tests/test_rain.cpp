// ITU-R P.838/P.839 rain model: table values, monotonicity, slant path.
#include <gtest/gtest.h>

#include <stdexcept>

#include "src/link/rain.h"
#include "src/util/angles.h"

namespace dgs::link {
namespace {

using util::deg2rad;

TEST(RainCoefficients, MatchesPublishedTableAt10GHz) {
  // ITU-R P.838-3 tabulates k_H = 0.01217, alpha_H = 1.2571 at 10 GHz.
  const RainCoefficients h = rain_coefficients(10.0, Polarization::kHorizontal);
  EXPECT_NEAR(h.k, 0.01217, 2e-4);
  EXPECT_NEAR(h.alpha, 1.2571, 2e-3);
  // and k_V = 0.01129, alpha_V = 1.2156.
  const RainCoefficients v = rain_coefficients(10.0, Polarization::kVertical);
  EXPECT_NEAR(v.k, 0.01129, 2e-4);
  EXPECT_NEAR(v.alpha, 1.2156, 2e-3);
}

TEST(RainCoefficients, MatchesPublishedTableAt20GHz) {
  // P.838-3: k_H = 0.09164, alpha_H = 1.0568 at 20 GHz.
  const RainCoefficients h = rain_coefficients(20.0, Polarization::kHorizontal);
  EXPECT_NEAR(h.k, 0.09164, 2e-3);
  EXPECT_NEAR(h.alpha, 1.0568, 5e-3);
}

TEST(RainCoefficients, CircularIsBetweenLinearPolarizations) {
  for (double f : {4.0, 8.2, 12.0, 20.0, 30.0}) {
    const auto h = rain_coefficients(f, Polarization::kHorizontal);
    const auto v = rain_coefficients(f, Polarization::kVertical);
    const auto c = rain_coefficients(f, Polarization::kCircular);
    EXPECT_GE(c.k, std::min(h.k, v.k));
    EXPECT_LE(c.k, std::max(h.k, v.k));
  }
}

TEST(RainCoefficients, RejectsOutOfBandFrequencies) {
  EXPECT_THROW(rain_coefficients(0.5, Polarization::kHorizontal),
               std::invalid_argument);
  EXPECT_THROW(rain_coefficients(1500.0, Polarization::kHorizontal),
               std::invalid_argument);
}

TEST(RainSpecificAttenuation, ZeroRainZeroLoss) {
  EXPECT_DOUBLE_EQ(
      rain_specific_attenuation_db_km(8.2, 0.0, Polarization::kCircular), 0.0);
}

TEST(RainSpecificAttenuation, RejectsNegativeRain) {
  EXPECT_THROW(
      rain_specific_attenuation_db_km(8.2, -1.0, Polarization::kCircular),
      std::invalid_argument);
}

TEST(RainSpecificAttenuation, IncreasesWithRainAndFrequency) {
  double prev = 0.0;
  for (double r : {1.0, 5.0, 25.0, 60.0, 100.0}) {
    const double g =
        rain_specific_attenuation_db_km(8.2, r, Polarization::kCircular);
    EXPECT_GT(g, prev);
    prev = g;
  }
  prev = 0.0;
  for (double f : {2.0, 4.0, 8.0, 12.0, 20.0, 30.0}) {
    const double g =
        rain_specific_attenuation_db_km(f, 25.0, Polarization::kCircular);
    EXPECT_GT(g, prev) << "f=" << f;
    prev = g;
  }
}

TEST(RainHeight, LatitudeClimatology) {
  EXPECT_DOUBLE_EQ(rain_height_km(0.0), 5.0);             // tropics
  EXPECT_DOUBLE_EQ(rain_height_km(deg2rad(20.0)), 5.0);
  EXPECT_NEAR(rain_height_km(deg2rad(45.0)), 5.0 - 0.075 * 22.0, 1e-9);
  EXPECT_GE(rain_height_km(deg2rad(89.0)), 0.0);          // never negative
  // Symmetric in hemisphere.
  EXPECT_DOUBLE_EQ(rain_height_km(deg2rad(-45.0)),
                   rain_height_km(deg2rad(45.0)));
}

TEST(RainAttenuation, PaperCitedMagnitudes) {
  // Paper §1/§3.2: rain attenuates 10-25 dB in the X/Ku/Ka bands used for
  // downlink.  Heavy rain (40 mm/h) at Ku/Ka and low-moderate elevation
  // should land in or above that range; X band is at the low edge.
  const double ku = rain_attenuation_db(14.0, 40.0, deg2rad(20.0),
                                        deg2rad(40.0), 0.0);
  const double ka = rain_attenuation_db(27.0, 40.0, deg2rad(20.0),
                                        deg2rad(40.0), 0.0);
  EXPECT_GT(ku, 5.0);
  EXPECT_LT(ku, 40.0);
  EXPECT_GT(ka, 15.0);
}

TEST(RainAttenuation, DecreasesWithElevation) {
  double prev = 1e9;
  for (double el : {5.0, 10.0, 20.0, 45.0, 90.0}) {
    const double a = rain_attenuation_db(12.0, 25.0, deg2rad(el),
                                         deg2rad(45.0), 0.0);
    EXPECT_LT(a, prev) << "el=" << el;
    prev = a;
  }
}

TEST(RainAttenuation, StationAboveRainLayerSeesNone) {
  // A 5.2 km-altitude site poleward of 60 deg sits above the rain height.
  EXPECT_DOUBLE_EQ(
      rain_attenuation_db(12.0, 25.0, deg2rad(30.0), deg2rad(62.0), 5.2), 0.0);
}

TEST(RainAttenuation, GrazingPathUsesSphericalCorrection) {
  // Below 5 deg the spherical-Earth form caps the slant length; the result
  // must stay finite and larger than at 5 deg.
  const double a3 =
      rain_attenuation_db(12.0, 25.0, deg2rad(3.0), deg2rad(45.0), 0.0);
  const double a5 =
      rain_attenuation_db(12.0, 25.0, deg2rad(5.0), deg2rad(45.0), 0.0);
  EXPECT_GT(a3, a5);
  EXPECT_LT(a3, 200.0);
}

TEST(RainAttenuation, RejectsNonPositiveElevation) {
  EXPECT_THROW(rain_attenuation_db(12.0, 25.0, 0.0, 0.0, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace dgs::link
