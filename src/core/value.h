// Value functions Phi (paper §3.1).
//
// Phi(x, t) assigns a value to transmitting data subset x at elapsed time t
// since capture.  The scheduler weights each candidate satellite-station
// edge by the value of the data the satellite could send over that link in
// the next scheduling quantum, so a single framework optimizes latency,
// throughput, or operator-defined priorities (SLAs, bidding).
#pragma once

#include <memory>
#include <string_view>

#include "src/core/data_queue.h"

namespace dgs::core {

class ValueFunction {
 public:
  virtual ~ValueFunction() = default;

  /// Value of using a link that can move `link_bytes` from `queue` at `now`.
  /// Must be >= 0; 0 means the link is worthless (e.g. empty queue).
  virtual double edge_value(const OnboardQueue& queue, const util::Epoch& now,
                            double link_bytes) const = 0;

  virtual std::string_view name() const = 0;
};

/// Phi(x, t) = t: the marginal value of a byte equals its age, so links that
/// can drain the oldest data win — the latency-optimized configuration
/// ("DGS (L)" in Fig. 3c).  Value returned is GB-minutes of age drained.
class LatencyValue final : public ValueFunction {
 public:
  double edge_value(const OnboardQueue& queue, const util::Epoch& now,
                    double link_bytes) const override;
  std::string_view name() const override { return "latency"; }
};

/// Phi(x, t) = |x|: value is the volume moved, so the highest-rate links win
/// regardless of data age — the throughput-optimized configuration
/// ("DGS (T)" in Fig. 3c).  Value returned is GB moved.
class ThroughputValue final : public ValueFunction {
 public:
  double edge_value(const OnboardQueue& queue, const util::Epoch& now,
                    double link_bytes) const override;
  std::string_view name() const override { return "throughput"; }
};

/// Weighted blend: alpha * latency-value + (1-alpha) * throughput-value.
/// Demonstrates the operator-tunable middle ground the paper sketches
/// (geography/SLA weighting reduces to per-chunk multipliers on top).
class BlendedValue final : public ValueFunction {
 public:
  explicit BlendedValue(double alpha);
  double edge_value(const OnboardQueue& queue, const util::Epoch& now,
                    double link_bytes) const override;
  std::string_view name() const override { return "blended"; }

 private:
  double alpha_;
  LatencyValue latency_;
  ThroughputValue throughput_;
};

enum class ValueKind { kLatency, kThroughput };

std::unique_ptr<ValueFunction> make_value_function(ValueKind kind);

}  // namespace dgs::core
