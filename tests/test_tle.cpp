// TLE parsing, validation, checksums, and round-trip formatting.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "src/orbit/tle.h"
#include "src/util/angles.h"

namespace dgs::orbit {
namespace {

// Canonical element sets from the SGP4 verification suite / Celestrak.
constexpr const char* kIssL1 =
    "1 25544U 98067A   08264.51782528 -.00002182  00000-0 -11606-4 0  2927";
constexpr const char* kIssL2 =
    "2 25544  51.6416 247.4627 0006703 130.5360 325.0288 15.72125391563537";
constexpr const char* kVanguardL1 =
    "1 00005U 58002B   00179.78495062  .00000023  00000-0  28098-4 0  4753";
constexpr const char* kVanguardL2 =
    "2 00005  34.2682 348.7242 1859667 331.7664  19.3264 10.82419157413667";

TEST(TleParse, IssFields) {
  const Tle t = parse_tle(kIssL1, kIssL2);
  EXPECT_EQ(t.satnum, 25544);
  EXPECT_EQ(t.classification, 'U');
  EXPECT_EQ(t.intl_designator, "98067A");
  EXPECT_NEAR(t.ndot_over_2, -0.00002182, 1e-10);
  EXPECT_NEAR(t.bstar, -0.11606e-4, 1e-10);
  EXPECT_EQ(t.element_set_number, 292);
  EXPECT_NEAR(t.inclination_deg, 51.6416, 1e-9);
  EXPECT_NEAR(t.raan_deg, 247.4627, 1e-9);
  EXPECT_NEAR(t.eccentricity, 0.0006703, 1e-10);
  EXPECT_NEAR(t.arg_perigee_deg, 130.5360, 1e-9);
  EXPECT_NEAR(t.mean_anomaly_deg, 325.0288, 1e-9);
  EXPECT_NEAR(t.mean_motion_revs_per_day, 15.72125391, 1e-8);
  EXPECT_EQ(t.rev_number, 56353);
}

TEST(TleParse, EpochDecoding) {
  const Tle t = parse_tle(kIssL1, kIssL2);
  const util::DateTime dt = t.epoch.utc();
  // Day 264.51782528 of 2008 = Sep 20, ~12:25:40 UTC.
  EXPECT_EQ(dt.year, 2008);
  EXPECT_EQ(dt.month, 9);
  EXPECT_EQ(dt.day, 20);
  EXPECT_EQ(dt.hour, 12);
}

TEST(TleParse, ExponentNotationFields) {
  const Tle t = parse_tle(kVanguardL1, kVanguardL2);
  EXPECT_NEAR(t.bstar, 0.28098e-4, 1e-12);
  EXPECT_DOUBLE_EQ(t.nddot_over_6, 0.0);
}

TEST(TleParse, DerivedOrbitQuantities) {
  const Tle t = parse_tle(kIssL1, kIssL2);
  EXPECT_NEAR(t.period_minutes(), 1440.0 / 15.72125391, 1e-6);
  // ISS altitude ~340-360 km in 2008.
  EXPECT_GT(t.perigee_altitude_km(), 300.0);
  EXPECT_LT(t.apogee_altitude_km(), 400.0);
  EXPECT_LE(t.perigee_altitude_km(), t.apogee_altitude_km());
}

TEST(TleParse, ThreeLineVariant) {
  const Tle t = parse_tle_3le("ISS (ZARYA)", kIssL1, kIssL2);
  EXPECT_EQ(t.name, "ISS (ZARYA)");
  const Tle t2 = parse_tle_3le("0 ISS (ZARYA)\r\n", kIssL1, kIssL2);
  EXPECT_EQ(t2.name, "ISS (ZARYA)");
}

TEST(TleChecksum, MatchesKnownLines) {
  EXPECT_EQ(tle_checksum(kIssL1), 7);
  EXPECT_EQ(tle_checksum(kIssL2), 7);
  EXPECT_EQ(tle_checksum(kVanguardL1), 3);
  EXPECT_EQ(tle_checksum(kVanguardL2), 7);
}

TEST(TleParse, RejectsBadChecksum) {
  std::string bad(kIssL1);
  bad[68] = '0';  // correct value is 7
  EXPECT_THROW(parse_tle(bad, kIssL2), std::invalid_argument);
}

TEST(TleParse, RejectsWrongLineNumbers) {
  EXPECT_THROW(parse_tle(kIssL2, kIssL1), std::invalid_argument);
}

TEST(TleParse, RejectsShortLines) {
  EXPECT_THROW(parse_tle("1 25544U", kIssL2), std::invalid_argument);
}

TEST(TleParse, RejectsMismatchedCatalogNumbers) {
  // Vanguard line 2 has satnum 00005, ISS line 1 has 25544; fix checksums
  // is unnecessary because the satnum check runs after checksum -- so build
  // a consistent-checksum variant instead by swapping whole lines.
  EXPECT_THROW(parse_tle(kIssL1, kVanguardL2), std::invalid_argument);
}

TEST(TleFormat, RoundTripsIss) {
  const Tle t = parse_tle(kIssL1, kIssL2);
  const std::string l1 = format_tle_line1(t);
  const std::string l2 = format_tle_line2(t);
  ASSERT_EQ(l1.size(), 69u);
  ASSERT_EQ(l2.size(), 69u);
  const Tle back = parse_tle(l1, l2);
  EXPECT_EQ(back.satnum, t.satnum);
  EXPECT_NEAR(back.epoch.jd(), t.epoch.jd(), 1e-7);
  EXPECT_NEAR(back.bstar, t.bstar, 1e-9);
  EXPECT_NEAR(back.inclination_deg, t.inclination_deg, 1e-4);
  EXPECT_NEAR(back.raan_deg, t.raan_deg, 1e-4);
  EXPECT_NEAR(back.eccentricity, t.eccentricity, 1e-7);
  EXPECT_NEAR(back.arg_perigee_deg, t.arg_perigee_deg, 1e-4);
  EXPECT_NEAR(back.mean_anomaly_deg, t.mean_anomaly_deg, 1e-4);
  EXPECT_NEAR(back.mean_motion_revs_per_day, t.mean_motion_revs_per_day, 1e-8);
}

TEST(TleFormat, RoundTripsHighEccentricityAndNegativeBstar) {
  Tle t = parse_tle(kVanguardL1, kVanguardL2);
  t.bstar = -3.2e-5;
  const Tle back = parse_tle(format_tle_line1(t), format_tle_line2(t));
  EXPECT_NEAR(back.bstar, t.bstar, 1e-9);
  EXPECT_NEAR(back.eccentricity, 0.1859667, 1e-7);
}

TEST(TleFormat, ChecksumsAreValid) {
  const Tle t = parse_tle(kIssL1, kIssL2);
  const std::string l1 = format_tle_line1(t);
  const std::string l2 = format_tle_line2(t);
  EXPECT_EQ(tle_checksum(l1), l1[68] - '0');
  EXPECT_EQ(tle_checksum(l2), l2[68] - '0');
}

}  // namespace
}  // namespace dgs::orbit
