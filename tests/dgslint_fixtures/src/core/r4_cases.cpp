// dgslint fixture: R4 — ad-hoc error channels in src/.
#include <cassert>
#include <stdexcept>

void r4_assert(int x) { assert(x > 0); }  // finding: R4 bare assert

void r4_throw(int x) {
  if (x < 0) throw std::runtime_error("bad");  // finding: R4 ad-hoc throw
}

void r4_suppressed(int x) {
  // dgslint: allow(R4) -- fixture: documented exception contract
  if (x < 0) throw std::runtime_error("bad");
}

// Negative: static_assert is a compile-time check, not an error channel.
static_assert(sizeof(int) >= 4, "ILP32 or wider");

// dgslint fixture: a finding absorbed by the fixture baseline.json.
void r4_baselined(int x) {
  if (x > 100) throw std::runtime_error("grandfathered");
}
