// Look-ahead (time-expanded) planner: pass-block construction, conflict-free
// allocation, and end-to-end behaviour through the simulator.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <stdexcept>

#include "src/core/lookahead.h"
#include "src/core/simulator.h"

namespace dgs::core {
namespace {

const util::Epoch kEpoch(util::DateTime{2020, 11, 4, 0, 0, 0.0});
constexpr double kGb = 1e9;

groundseg::NetworkOptions small_net() {
  groundseg::NetworkOptions opts;
  opts.num_stations = 25;
  opts.num_satellites = 15;
  opts.seed = 17;
  return opts;
}

class LookaheadTest : public ::testing::Test {
 protected:
  LookaheadTest()
      : sats_(groundseg::generate_constellation(small_net(), kEpoch)),
        stations_(groundseg::generate_dgs_stations(small_net())),
        engine_(sats_, stations_, nullptr) {}

  std::vector<groundseg::SatelliteConfig> sats_;
  std::vector<groundseg::GroundStation> stations_;
  VisibilityEngine engine_;
};

TEST_F(LookaheadTest, BlocksAreContiguousAndConsistent) {
  const int steps = 120;
  const auto blocks = find_pass_blocks(engine_, kEpoch, steps, 60.0);
  ASSERT_FALSE(blocks.empty());
  for (const PassBlock& b : blocks) {
    EXPECT_GE(b.first_step, 0);
    EXPECT_LT(b.last_step(), steps);
    EXPECT_FALSE(b.steps.empty());
    for (const ContactEdge& e : b.steps) {
      EXPECT_EQ(e.sat, b.sat);
      EXPECT_EQ(e.station, b.station);
      EXPECT_GT(e.predicted_rate_bps, 0.0);
    }
    EXPECT_GT(b.capacity_bytes(60.0), 0.0);
  }
}

TEST_F(LookaheadTest, BlocksCoverExactlyTheVisibleEdges) {
  // The union of block steps equals the per-instant contact sets.
  const int steps = 60;
  const auto blocks = find_pass_blocks(engine_, kEpoch, steps, 60.0);
  std::map<int, std::set<std::pair<int, int>>> from_blocks;
  for (const PassBlock& b : blocks) {
    for (int k = b.first_step; k <= b.last_step(); ++k) {
      EXPECT_TRUE(from_blocks[k].insert({b.sat, b.station}).second)
          << "duplicate pair in blocks at step " << k;
    }
  }
  std::vector<double> leads(engine_.num_sats(), 0.0);
  for (int k = 0; k < steps; ++k) {
    std::fill(leads.begin(), leads.end(), k * 60.0);
    const auto edges =
        engine_.contacts(kEpoch.plus_seconds(k * 60.0), leads);
    std::set<std::pair<int, int>> direct;
    for (const ContactEdge& e : edges) direct.insert({e.sat, e.station});
    EXPECT_EQ(from_blocks[k], direct) << "step " << k;
  }
}

TEST_F(LookaheadTest, PassBlockDurationsAreLeoTypical) {
  const auto blocks = find_pass_blocks(engine_, kEpoch, 24 * 60, 60.0);
  util::SampleSet durations_min;
  for (const PassBlock& b : blocks) {
    durations_min.add(static_cast<double>(b.steps.size()));
  }
  // Above amateur masks, pass blocks run a few minutes; none exceed ~15.
  EXPECT_LE(durations_min.max(), 15.0);
  EXPECT_GE(durations_min.median(), 2.0);
}

TEST_F(LookaheadTest, PlanRespectsMatchingConstraints) {
  std::vector<OnboardQueue> queues(sats_.size());
  for (auto& q : queues) q.generate(50.0 * kGb, kEpoch.plus_seconds(-3600));
  LatencyValue phi;
  const int steps = 180;
  const HorizonPlan plan =
      plan_horizon(engine_, queues, phi, kEpoch, steps, 60.0);
  ASSERT_EQ(plan.per_step.size(), static_cast<std::size_t>(steps));
  for (const auto& assignments : plan.per_step) {
    std::set<int> sats, stations;
    for (const ContactEdge& e : assignments) {
      EXPECT_TRUE(sats.insert(e.sat).second);
      EXPECT_TRUE(stations.insert(e.station).second);
    }
  }
}

TEST_F(LookaheadTest, EmptyQueuesPlanNothing) {
  std::vector<OnboardQueue> queues(sats_.size());
  LatencyValue phi;
  const HorizonPlan plan =
      plan_horizon(engine_, queues, phi, kEpoch, 60, 60.0);
  for (const auto& assignments : plan.per_step) {
    EXPECT_TRUE(assignments.empty());
  }
}

TEST_F(LookaheadTest, SatelliteHoldsStationAcrossWholePass) {
  // The distinguishing behaviour vs per-instant matching: once allocated,
  // a (sat, station) pairing persists for the full block.
  std::vector<OnboardQueue> queues(sats_.size());
  for (auto& q : queues) q.generate(50.0 * kGb, kEpoch.plus_seconds(-3600));
  LatencyValue phi;
  const HorizonPlan plan =
      plan_horizon(engine_, queues, phi, kEpoch, 180, 60.0);
  // Count switches: a satellite changing station between adjacent steps
  // while remaining scheduled.
  int transitions = 0, continuations = 0;
  for (std::size_t k = 1; k < plan.per_step.size(); ++k) {
    for (const ContactEdge& cur : plan.per_step[k]) {
      for (const ContactEdge& prev : plan.per_step[k - 1]) {
        if (prev.sat != cur.sat) continue;
        if (prev.station == cur.station) {
          ++continuations;
        } else {
          ++transitions;
        }
      }
    }
  }
  // Mid-pass handoffs can only happen at block boundaries, so
  // continuations must dominate.
  EXPECT_GT(continuations, 5 * std::max(1, transitions));
}

TEST_F(LookaheadTest, RejectsBadArguments) {
  std::vector<OnboardQueue> queues(sats_.size());
  LatencyValue phi;
  EXPECT_THROW(find_pass_blocks(engine_, kEpoch, 0, 60.0),
               std::invalid_argument);
  EXPECT_THROW(find_pass_blocks(engine_, kEpoch, 10, 0.0),
               std::invalid_argument);
  std::vector<OnboardQueue> wrong(3);
  EXPECT_THROW(plan_horizon(engine_, wrong, phi, kEpoch, 10, 60.0),
               std::invalid_argument);
}

TEST_F(LookaheadTest, SimulatorIntegrationConservesBytes) {
  SimulationOptions opts;
  opts.start = kEpoch;
  opts.duration_hours = 6.0;
  opts.step_seconds = 60.0;
  opts.lookahead_hours = 1.0;
  Simulator sim(sats_, stations_, nullptr, opts);
  const SimulationResult r = sim.run();
  EXPECT_GT(r.total_delivered_bytes, 0.0);
  double backlog = 0.0;
  for (const auto& o : r.per_satellite) backlog += o.backlog_bytes;
  EXPECT_NEAR(r.total_generated_bytes, r.total_delivered_bytes + backlog,
              r.total_generated_bytes * 1e-9 + 1.0);
}

TEST_F(LookaheadTest, SimulatorAcceptsLookaheadWithOutages) {
  // Previously rejected (the planner could not replan on failures); the
  // fault subsystem lifted the restriction — the combined config must run
  // and still conserve bytes.
  SimulationOptions opts;
  opts.start = kEpoch;
  opts.duration_hours = 2.0;
  opts.lookahead_hours = 1.0;
  opts.faults.outages.push_back(faults::OutageWindow{0, 0.0, 1.0});
  Simulator sim(sats_, stations_, nullptr, opts);
  const SimulationResult r = sim.run();
  EXPECT_GT(r.total_delivered_bytes, 0.0);
  // generated == delivered + still-queued + (wasted - requeued): every
  // byte is delivered, on board, or in limbo awaiting its collated
  // report (delivered+wasted-requeued == acked+pending, see the
  // simulator's whole-run conservation audit).
  double backlog = 0.0;
  for (const auto& o : r.per_satellite) backlog += o.backlog_bytes;
  EXPECT_NEAR(r.total_generated_bytes,
              r.total_delivered_bytes + backlog +
                  r.wasted_transmission_bytes - r.requeued_bytes,
              r.total_generated_bytes * 1e-9 + 1.0);
}

TEST_F(LookaheadTest, SimulatorRejectsNegativeLookahead) {
  SimulationOptions opts;
  opts.start = kEpoch;
  opts.duration_hours = 2.0;
  opts.lookahead_hours = -1.0;
  EXPECT_THROW(Simulator(sats_, stations_, nullptr, opts),
               std::invalid_argument);
}

}  // namespace
}  // namespace dgs::core
