// E11 — ablation: weather-aware vs weather-blind scheduling (paper §3.2's
// motivation for the predictive link-quality model).
//
// Three schedulers run against the same actual weather:
//   perfect   — forecasts equal truth (couple_forecast_to_plan_upload off)
//   coupled   — forecasts age with plan staleness (the deployable system)
//   blind     — schedules assuming clear sky everywhere
// A receive-only station cannot ask for a MODCOD change mid-pass, so a
// mis-predicted link wastes the whole slot; the blind scheduler pays that
// price.  Run at X band (the paper's primary) and Ku band (more
// weather-sensitive) to show the effect scale with frequency.
#include <cstdio>

#include "bench/common.h"

namespace {

void run_band(const char* band_name, double freq_hz,
              const dgs::bench::Setup& setup,
              const dgs::weather::SyntheticWeatherProvider& wx) {
  using namespace dgs;
  using namespace dgs::bench;

  auto sats = setup.sats;
  for (auto& s : sats) s.radio.frequency_hz = freq_hz;

  struct Config {
    const char* label;
    bool aware;
    bool coupled;
  };
  const Config configs[] = {
      {"perfect forecast", true, false},
      {"coupled (plan-staleness)", true, true},
      {"weather-blind", false, false},
  };

  std::printf("\n%s (%.1f GHz):\n", band_name, freq_hz / 1e9);
  std::printf("  %-26s %10s %9s %12s %11s %10s\n", "scheduler", "assigned",
              "failed", "fail rate", "lat med", "delivered");
  for (const Config& c : configs) {
    core::SimulationOptions opts = day_sim();
    opts.weather_aware = c.aware;
    opts.couple_forecast_to_plan_upload = c.coupled;
    const core::SimulationResult r =
        core::Simulator(sats, setup.dgs, &wx, opts).run();
    std::printf("  %-26s %10lld %9lld %11.2f%% %7.1f min %7.1f TB\n",
                c.label, static_cast<long long>(r.assignments),
                static_cast<long long>(r.failed_assignments),
                100.0 * static_cast<double>(r.failed_assignments) /
                    static_cast<double>(
                        std::max<std::int64_t>(1, r.assignments)),
                r.latency_minutes.median(),
                r.total_delivered_bytes / 1e12);
  }
}

}  // namespace

int main() {
  using namespace dgs;
  using namespace dgs::bench;

  std::printf("=== E11: weather-aware vs weather-blind scheduling "
              "(24 h, DGS 173) ===\n");
  const Setup setup = make_paper_setup();
  weather::SyntheticWeatherProvider wx(kWeatherSeed, kEpoch, 25.0);

  run_band("X band", 8.2e9, setup, wx);
  run_band("Ku band", 14.0e9, setup, wx);

  std::printf("\n  expected shape: blind scheduling wastes slots on links "
              "that cannot close (failed slots), increasingly so at higher "
              "frequency; the coupled scheduler sits between blind and "
              "perfect because plans age between TX contacts.\n");
  return 0;
}
