# Empty dependencies file for dgs_core.
# This may be replaced when dependencies are built.
