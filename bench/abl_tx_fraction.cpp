// E10 — ablation: the hybrid design's knob.  How does the fraction of
// transmit-capable stations affect ack delay, on-board storage pressure,
// and plan staleness (which degrades weather forecasts)?
//
// The paper fixes "a very small number" of uplink stations (§1, §3); this
// sweep quantifies how small it can go.  The trend to reproduce: ack delay
// and storage high-water grow as the TX fraction shrinks, while delivery
// volume and latency stay nearly flat — downlink never waits for uplink.
#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace dgs;
  using namespace dgs::bench;

  std::printf("=== E10: transmit-capable fraction sweep (24 h, 173 "
              "stations) ===\n\n");
  weather::SyntheticWeatherProvider wx(kWeatherSeed, kEpoch, 25.0);

  std::printf("  %6s %8s %12s %12s %14s %11s %9s\n", "tx", "#tx",
              "ack med", "ack p99", "storage p99", "lat med", "delivered");
  for (double tx_fraction : {0.02, 0.05, 0.10, 0.25, 0.50, 1.00}) {
    groundseg::NetworkOptions opts;
    opts.tx_fraction = tx_fraction;
    const auto sats = groundseg::generate_constellation(opts, kEpoch);
    const auto stations = groundseg::generate_dgs_stations(opts);
    int tx_count = 0;
    for (const auto& gs : stations) tx_count += gs.tx_capable ? 1 : 0;

    const core::SimulationResult r =
        core::Simulator(sats, stations, &wx, day_sim()).run();

    util::SampleSet storage_gb;
    for (const auto& o : r.per_satellite) {
      storage_gb.add(o.storage_high_water_bytes / 1e9);
    }
    std::printf("  %5.0f%% %8d %8.1f min %8.1f min %11.2f GB %7.1f min "
                "%6.1f TB\n",
                tx_fraction * 100.0, tx_count,
                r.ack_delay_minutes.median(),
                r.ack_delay_minutes.percentile(99.0),
                storage_gb.percentile(99.0), r.latency_minutes.median(),
                r.total_delivered_bytes / 1e12);
  }
  std::printf("\n  expected shape: ack delay and storage high-water rise as "
              "TX stations thin out; delivery and latency stay almost "
              "flat.  This is the evidence behind the paper's hybrid claim "
              "that receive-only nodes are the right default.\n");
  return 0;
}
