// Backhaul sizing (VERGE comparison) and the station edge queue.
#include <gtest/gtest.h>

#include <stdexcept>

#include "src/backend/backhaul.h"
#include "src/backend/station_edge.h"
#include "src/core/simulator.h"

namespace dgs::backend {
namespace {

const util::Epoch kT0(util::DateTime{2020, 11, 4, 0, 0, 0.0});

TEST(Backhaul, RawIqRateFormula) {
  // 66.7 Msym/s, 1.25x oversampling, 8-bit I + 8-bit Q = 1.334 Gbps.
  EXPECT_NEAR(raw_iq_backhaul_bps(66.7e6, 1.25, 8), 1.334e9, 1e6);
}

TEST(Backhaul, DecodedTracksInformationRate) {
  const auto& top = link::dvbs2_modcods().back();  // 32APSK 9/10
  EXPECT_NEAR(decoded_backhaul_bps(top, 66.7e6, 0.0),
              link::bitrate_bps(top, 66.7e6), 1.0);
  EXPECT_GT(decoded_backhaul_bps(top, 66.7e6, 0.03),
            decoded_backhaul_bps(top, 66.7e6, 0.0));
}

TEST(Backhaul, VergeReductionClaim) {
  // Paper §2: co-locating the receiver reduces required backhaul "by
  // orders of magnitude" vs streaming raw RF.  At robust MODCODs (which
  // is where receive-only stations spend bad-weather passes) the factor
  // must exceed 10x, approaching 40x at QPSK 1/4 with 8-bit samples.
  const auto mods = link::dvbs2_modcods();
  const double at_qpsk14 = backhaul_reduction_factor(mods.front(), 66.7e6);
  const double at_top = backhaul_reduction_factor(mods.back(), 66.7e6);
  EXPECT_GT(at_qpsk14, 30.0);
  EXPECT_GT(at_top, 4.0);
  // Reduction shrinks as the MODCOD climbs (decoded rate grows, raw rate
  // is constant).
  EXPECT_GT(at_qpsk14, at_top);
}

TEST(Backhaul, RejectsBadInputs) {
  EXPECT_THROW(raw_iq_backhaul_bps(0.0), std::invalid_argument);
  EXPECT_THROW(raw_iq_backhaul_bps(1e6, 0.9), std::invalid_argument);
  EXPECT_THROW(raw_iq_backhaul_bps(1e6, 1.25, 0), std::invalid_argument);
  EXPECT_THROW(
      decoded_backhaul_bps(link::dvbs2_modcods().front(), 1e6, -0.1),
      std::invalid_argument);
}

TEST(StationEdge, DrainRateIsBackhaulLimited) {
  StationEdgeQueue q(80e6);  // 80 Mbps => 10 MB/s
  q.receive(100e6, 1.0, kT0, kT0);
  const double uploaded = q.drain(1.0, kT0.plus_seconds(1), nullptr);
  EXPECT_NEAR(uploaded, 10e6, 1.0);
  EXPECT_NEAR(q.queued_bytes(), 90e6, 1.0);
}

TEST(StationEdge, UrgentUploadsFirst) {
  StationEdgeQueue q(80e6);
  q.receive(50e6, 1.0, kT0, kT0);                       // bulk, earlier
  q.receive(5e6, 8.0, kT0.plus_seconds(60),
            kT0.plus_seconds(60));                      // urgent, later
  std::vector<double> order;
  q.drain(10.0, kT0.plus_seconds(70), [&](double, const EdgeItem& item) {
    order.push_back(item.priority);
  });
  ASSERT_GE(order.size(), 1u);
  EXPECT_DOUBLE_EQ(order[0], 8.0);  // urgent beat the earlier bulk item
}

TEST(StationEdge, CloudLatencySpansCaptureToUpload) {
  StationEdgeQueue q(80e6);
  // Captured at t0, hit the ground at t0+300, uploaded by t0+301.
  q.receive(1e6, 1.0, kT0, kT0.plus_seconds(300));
  std::vector<double> latencies;
  q.drain(1.0, kT0.plus_seconds(301),
          [&](double lat, const EdgeItem&) { latencies.push_back(lat); });
  ASSERT_EQ(latencies.size(), 1u);
  EXPECT_NEAR(latencies[0], 301.0, 1e-6);
}

TEST(StationEdge, FifoWithinPriorityClass) {
  StationEdgeQueue q(8e6);  // 1 MB/s
  q.receive(1e6, 1.0, kT0, kT0.plus_seconds(10));
  q.receive(1e6, 1.0, kT0, kT0.plus_seconds(20));
  std::vector<double> rx_order;
  q.drain(2.0, kT0.plus_seconds(30), [&](double, const EdgeItem& item) {
    rx_order.push_back(item.ground_rx.seconds_since(kT0));
  });
  ASSERT_EQ(rx_order.size(), 2u);
  EXPECT_LT(rx_order[0], rx_order[1]);
}

TEST(StationEdge, RejectsBadInputs) {
  EXPECT_THROW(StationEdgeQueue(0.0), std::invalid_argument);
  StationEdgeQueue q(1e6);
  EXPECT_THROW(q.receive(-1.0, 1.0, kT0, kT0), std::invalid_argument);
  EXPECT_THROW(q.drain(-1.0, kT0, nullptr), std::invalid_argument);
}

TEST(StationEdge, SimulatorCloudLatencyBehindGroundLatency) {
  groundseg::NetworkOptions net;
  net.num_stations = 25;
  net.num_satellites = 12;
  net.seed = 5;
  const auto sats = groundseg::generate_constellation(net, kT0);
  const auto stations = groundseg::generate_dgs_stations(net);

  core::SimulationOptions opts;
  opts.start = kT0;
  opts.duration_hours = 6.0;
  opts.station_backhaul_bps = 50e6;  // consumer uplink, below burst rate
  const core::SimulationResult r =
      core::Simulator(sats, stations, nullptr, opts).run();

  ASSERT_FALSE(r.cloud_latency_minutes.empty());
  // The cloud sees every chunk no earlier than the ground did.
  EXPECT_GE(r.cloud_latency_minutes.median(), r.latency_minutes.median());
  EXPECT_GE(r.cloud_latency_minutes.percentile(90.0),
            r.latency_minutes.percentile(90.0));
  // Ledger: every delivered byte is in the cloud or still at a station.
  EXPECT_GE(r.station_queued_bytes, 0.0);
  EXPECT_LE(r.station_queued_bytes, r.total_delivered_bytes + 1.0);
}

TEST(StationEdge, InfiniteBackhaulByDefault) {
  groundseg::NetworkOptions net;
  net.num_stations = 10;
  net.num_satellites = 5;
  const auto sats = groundseg::generate_constellation(net, kT0);
  const auto stations = groundseg::generate_dgs_stations(net);
  core::SimulationOptions opts;
  opts.start = kT0;
  opts.duration_hours = 3.0;
  const core::SimulationResult r =
      core::Simulator(sats, stations, nullptr, opts).run();
  EXPECT_TRUE(r.cloud_latency_minutes.empty());
  EXPECT_DOUBLE_EQ(r.station_queued_bytes, 0.0);
}

}  // namespace
}  // namespace dgs::backend
