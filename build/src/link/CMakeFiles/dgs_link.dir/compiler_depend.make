# Empty compiler generated dependencies file for dgs_link.
# This may be replaced when dependencies are built.
