// Pass prediction: LEO contact geometry, durations, masks, refinement.
#include <gtest/gtest.h>

#include <stdexcept>

#include "src/orbit/passes.h"
#include "src/orbit/tle.h"
#include "src/util/angles.h"

namespace dgs::orbit {
namespace {

using util::deg2rad;
using util::rad2deg;

constexpr const char* kIssL1 =
    "1 25544U 98067A   08264.51782528 -.00002182  00000-0 -11606-4 0  2927";
constexpr const char* kIssL2 =
    "2 25544  51.6416 247.4627 0006703 130.5360 325.0288 15.72125391563537";

class PassesTest : public ::testing::Test {
 protected:
  PassesTest() : sat_(parse_tle(kIssL1, kIssL2)) {}
  Sgp4 sat_;
};

TEST_F(PassesTest, MidLatitudeSiteSeesSeveralPassesPerDay) {
  const Geodetic site{deg2rad(47.6), deg2rad(-122.3), 0.05};  // Seattle
  const util::Epoch start = sat_.epoch();
  const auto passes = predict_passes(sat_, site, start, start.plus_days(1.0));
  // ISS from a mid-latitude site: typically 4-7 passes/day above 0 deg.
  EXPECT_GE(passes.size(), 3u);
  EXPECT_LE(passes.size(), 9u);
}

TEST_F(PassesTest, PassDurationsAreLeoTypical) {
  const Geodetic site{deg2rad(47.6), deg2rad(-122.3), 0.05};
  const util::Epoch start = sat_.epoch();
  for (const Pass& p :
       predict_passes(sat_, site, start, start.plus_days(1.0))) {
    EXPECT_GT(p.duration_seconds(), 30.0);
    EXPECT_LT(p.duration_seconds(), 12.0 * 60.0);  // < 12 minutes
  }
}

TEST_F(PassesTest, PassesAreChronologicalAndDisjoint) {
  const Geodetic site{deg2rad(47.6), deg2rad(-122.3), 0.05};
  const util::Epoch start = sat_.epoch();
  const auto passes = predict_passes(sat_, site, start, start.plus_days(1.0));
  for (std::size_t i = 1; i < passes.size(); ++i) {
    EXPECT_GT(passes[i].aos.seconds_since(passes[i - 1].los), 0.0);
  }
  for (const Pass& p : passes) {
    EXPECT_GE(p.los.seconds_since(p.aos), 0.0);
    EXPECT_GE(p.tca.seconds_since(p.aos), -1.0);
    EXPECT_GE(p.los.seconds_since(p.tca), -1.0);
  }
}

TEST_F(PassesTest, ElevationAtBoundariesMatchesMask) {
  const Geodetic site{deg2rad(47.6), deg2rad(-122.3), 0.05};
  const util::Epoch start = sat_.epoch();
  PassPredictorOptions opts;
  opts.min_elevation_rad = deg2rad(10.0);
  opts.refine_tolerance_seconds = 0.2;
  const auto passes =
      predict_passes(sat_, site, start, start.plus_days(1.0), opts);
  ASSERT_FALSE(passes.empty());
  for (const Pass& p : passes) {
    // AOS/LOS bracket the mask crossing to within the refinement tolerance.
    EXPECT_NEAR(rad2deg(elevation_at(sat_, site, p.aos)), 10.0, 0.5);
    EXPECT_NEAR(rad2deg(elevation_at(sat_, site, p.los)), 10.0, 0.5);
    EXPECT_GT(p.max_elevation_rad, deg2rad(10.0));
  }
}

TEST_F(PassesTest, TcaIsTheElevationMaximum) {
  const Geodetic site{deg2rad(47.6), deg2rad(-122.3), 0.05};
  const util::Epoch start = sat_.epoch();
  const auto passes = predict_passes(sat_, site, start, start.plus_days(1.0));
  ASSERT_FALSE(passes.empty());
  for (const Pass& p : passes) {
    const double peak = rad2deg(p.max_elevation_rad);
    for (double offset : {-60.0, -30.0, 30.0, 60.0}) {
      const util::Epoch t = p.tca.plus_seconds(offset);
      if (t < p.aos || p.los < t) continue;
      EXPECT_LE(rad2deg(elevation_at(sat_, site, t)), peak + 0.05);
    }
  }
}

TEST_F(PassesTest, HigherMaskYieldsFewerShorterPasses) {
  const Geodetic site{deg2rad(47.6), deg2rad(-122.3), 0.05};
  const util::Epoch start = sat_.epoch();
  PassPredictorOptions lo, hi;
  lo.min_elevation_rad = 0.0;
  hi.min_elevation_rad = deg2rad(25.0);
  const auto plo = predict_passes(sat_, site, start, start.plus_days(1.0), lo);
  const auto phi = predict_passes(sat_, site, start, start.plus_days(1.0), hi);
  EXPECT_LE(phi.size(), plo.size());
  double lo_total = 0.0, hi_total = 0.0;
  for (const Pass& p : plo) lo_total += p.duration_seconds();
  for (const Pass& p : phi) hi_total += p.duration_seconds();
  EXPECT_LT(hi_total, lo_total);
}

TEST_F(PassesTest, HighInclinationSiteOutOfCoverage) {
  // ISS at 51.6 deg inclination never rises above a 15-deg mask at the
  // South Pole.
  const Geodetic pole{deg2rad(-90.0), 0.0, 2.8};
  const util::Epoch start = sat_.epoch();
  PassPredictorOptions opts;
  opts.min_elevation_rad = deg2rad(15.0);
  EXPECT_TRUE(
      predict_passes(sat_, pole, start, start.plus_days(1.0), opts).empty());
}

TEST_F(PassesTest, WindowTruncationIsReported) {
  const Geodetic site{deg2rad(47.6), deg2rad(-122.3), 0.05};
  const util::Epoch start = sat_.epoch();
  const auto day = predict_passes(sat_, site, start, start.plus_days(1.0));
  ASSERT_FALSE(day.empty());
  // Re-run with the window ending mid-pass: the last pass is clipped at end.
  const Pass& first = day.front();
  const util::Epoch mid = first.aos.plus_seconds(first.duration_seconds() / 2);
  const auto clipped = predict_passes(sat_, site, start, mid);
  ASSERT_FALSE(clipped.empty());
  EXPECT_NEAR(clipped.back().los.seconds_since(mid), 0.0, 1e-6);
}

TEST_F(PassesTest, RejectsInvalidWindows) {
  const Geodetic site{0.0, 0.0, 0.0};
  const util::Epoch start = sat_.epoch();
  EXPECT_THROW(predict_passes(sat_, site, start, start.plus_seconds(-10.0)),
               std::invalid_argument);
  PassPredictorOptions bad;
  bad.coarse_step_seconds = 0.0;
  EXPECT_THROW(
      predict_passes(sat_, site, start, start.plus_seconds(10.0), bad),
      std::invalid_argument);
}

}  // namespace
}  // namespace dgs::orbit
