file(REMOVE_RECURSE
  "CMakeFiles/dgs_groundseg.dir/io.cpp.o"
  "CMakeFiles/dgs_groundseg.dir/io.cpp.o.d"
  "CMakeFiles/dgs_groundseg.dir/network_gen.cpp.o"
  "CMakeFiles/dgs_groundseg.dir/network_gen.cpp.o.d"
  "CMakeFiles/dgs_groundseg.dir/station.cpp.o"
  "CMakeFiles/dgs_groundseg.dir/station.cpp.o.d"
  "libdgs_groundseg.a"
  "libdgs_groundseg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgs_groundseg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
