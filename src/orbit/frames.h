// Reference frame transformations.
//
// The chain DGS needs is: SGP4 output (TEME inertial) -> Earth-fixed (ECEF,
// via GMST rotation; polar motion is ignored at TLE accuracy) -> geodetic
// (WGS-84 latitude/longitude/altitude) -> topocentric look angles
// (azimuth/elevation/range from a ground station).
#pragma once

#include "src/util/time.h"
#include "src/util/vec3.h"

namespace dgs::orbit {

/// Geodetic WGS-84 coordinates.
struct Geodetic {
  double latitude_rad = 0.0;   ///< Geodetic latitude, [-pi/2, pi/2].
  double longitude_rad = 0.0;  ///< East longitude, (-pi, pi].
  double altitude_km = 0.0;    ///< Height above the WGS-84 ellipsoid.
};

/// Topocentric observation of a target from a ground site.
struct LookAngles {
  double azimuth_rad = 0.0;    ///< From true north, clockwise, [0, 2pi).
  double elevation_rad = 0.0;  ///< Above the local horizon, [-pi/2, pi/2].
  double range_km = 0.0;       ///< Slant range.
  double range_rate_km_s = 0.0;  ///< d(range)/dt; negative when approaching.
};

/// Rotates a TEME vector into the pseudo-Earth-fixed (ECEF) frame at `when`.
util::Vec3 teme_to_ecef(const util::Vec3& teme, const util::Epoch& when);

/// Rotates TEME position and velocity into ECEF, including the transport
/// (omega x r) term on the velocity.
void teme_to_ecef(const util::Vec3& r_teme, const util::Vec3& v_teme,
                  const util::Epoch& when, util::Vec3& r_ecef,
                  util::Vec3& v_ecef);

/// Geodetic -> ECEF position [km].
util::Vec3 geodetic_to_ecef(const Geodetic& g);

/// ECEF position [km] -> geodetic (Bowring's iteration, mm-level accuracy).
Geodetic ecef_to_geodetic(const util::Vec3& r_ecef);

/// Look angles from a geodetic site to a target given in ECEF, with the
/// target's ECEF velocity used for the range-rate term (pass {} if unused).
LookAngles look_angles(const Geodetic& site, const util::Vec3& target_ecef,
                       const util::Vec3& target_vel_ecef = {});

/// Sub-satellite point (geodetic) of a TEME state at `when`.
Geodetic subsatellite_point(const util::Vec3& r_teme, const util::Epoch& when);

}  // namespace dgs::orbit
