// Bipartite matching between satellites and ground stations (paper §3.1).
//
// At each scheduling instant the contact graph is bipartite: satellites on
// one side, stations on the other, an edge where a downlink is feasible,
// weighted by the value function.  Stations support point-to-point links
// only, so the schedule is a matching.  Three algorithms are provided:
//
//   * Gale-Shapley stable matching — the paper's choice: in a fragmented
//     network no satellite-station pair can defect to a link both prefer.
//   * Maximum-weight matching (Hungarian algorithm) — the "optimal" global
//     alternative the paper discusses and rejects; kept for the ablation.
//   * Greedy descending-weight — the cheap baseline.
//
// Preferences on both sides derive from the edge weights (ties broken by
// index), which makes the stable matching unique (Gale-Shapley proposer
// optimality coincides with receiver optimality for aligned preferences).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace dgs::core {

/// One feasible satellite-station link at a scheduling instant.
struct Edge {
  int sat = 0;
  int station = 0;
  double weight = 0.0;  ///< Value of serving this edge; <= 0 edges ignored.
};

/// Indices into the input edge vector, at most one per satellite and one
/// per station.
using Matching = std::vector<int>;

/// Gale-Shapley stable matching, satellites proposing.  O(E log E + E).
Matching stable_matching(const std::vector<Edge>& edges, int num_sats,
                         int num_stations);

/// Maximum-total-weight matching via the Hungarian algorithm with
/// potentials, O(K^3) for K = max(num_sats, num_stations).
Matching optimal_matching(const std::vector<Edge>& edges, int num_sats,
                          int num_stations);

/// Greedy: repeatedly take the heaviest edge whose endpoints are free.
Matching greedy_matching(const std::vector<Edge>& edges, int num_sats,
                         int num_stations);

/// Sum of weights of the selected edges.
double matching_value(const std::vector<Edge>& edges, const Matching& m);

/// True if no unmatched-but-feasible pair (s, g) exists where both s and g
/// would strictly gain by abandoning their assignment for each other.
/// (The stability property Gale-Shapley guarantees.)
bool is_stable(const std::vector<Edge>& edges, const Matching& m,
               int num_sats, int num_stations);

/// Full audit of a computed matching — the "Matching::validate()" contract
/// the scheduler runs (under DGS_DCHECK) on every result.  Rejects edge
/// indices out of range, non-positive selected weights, and double-booked
/// satellites or stations; with `require_stable` additionally audits weak
/// stability against the weight-derived Gale-Shapley preference order.
/// Returns an empty string when valid, else a description of the first
/// violation found.
std::string validate_matching(const std::vector<Edge>& edges,
                              const Matching& m, int num_sats,
                              int num_stations, bool require_stable = true);

/// Capacitated-market variant: stations may hold up to their capacity,
/// satellites at most one link.
std::string validate_b_matching(const std::vector<Edge>& edges,
                                const Matching& m, int num_sats,
                                const std::vector<int>& capacities,
                                bool require_stable = true);

enum class MatcherKind { kStable, kOptimal, kGreedy };
std::string_view matcher_name(MatcherKind kind);

Matching run_matcher(MatcherKind kind, const std::vector<Edge>& edges,
                     int num_sats, int num_stations);

// --- Beamforming extension (paper §3.3) -------------------------------------
//
// A beamforming ground station can split its aperture across up to
// `capacity` satellites simultaneously (each beam at reduced gain; the
// caller folds that penalty into the edge weights).  Scheduling becomes a
// one-to-many matching: satellites still hold at most one link, stations
// hold up to their capacity.  This is the hospitals/residents variant of
// stable matching.

/// Gale-Shapley with per-station capacities (`capacities.size() ==
/// num_stations`, entries >= 0).  A station holds its `capacity` best
/// proposals and trades up.  Stability: no satellite and station with free
/// capacity (or a strictly worse held satellite) both prefer each other.
Matching stable_b_matching(const std::vector<Edge>& edges, int num_sats,
                           const std::vector<int>& capacities);

/// Greedy descending-weight with per-station capacities.
Matching greedy_b_matching(const std::vector<Edge>& edges, int num_sats,
                           const std::vector<int>& capacities);

/// Stability check for the capacitated market.
bool is_stable_b_matching(const std::vector<Edge>& edges, const Matching& m,
                          int num_sats, const std::vector<int>& capacities);

}  // namespace dgs::core
