file(REMOVE_RECURSE
  "CMakeFiles/abl_slew.dir/abl_slew.cpp.o"
  "CMakeFiles/abl_slew.dir/abl_slew.cpp.o.d"
  "abl_slew"
  "abl_slew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_slew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
