
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/station_agenda.cpp" "examples/CMakeFiles/station_agenda.dir/station_agenda.cpp.o" "gcc" "examples/CMakeFiles/station_agenda.dir/station_agenda.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dgs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/backend/CMakeFiles/dgs_backend.dir/DependInfo.cmake"
  "/root/repo/build/src/groundseg/CMakeFiles/dgs_groundseg.dir/DependInfo.cmake"
  "/root/repo/build/src/weather/CMakeFiles/dgs_weather.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/dgs_link.dir/DependInfo.cmake"
  "/root/repo/build/src/orbit/CMakeFiles/dgs_orbit.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dgs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
