// Doppler shift on the satellite-ground link.
//
// LEO range rates reach +-7.5 km/s, so an X-band downlink sees +-200 kHz
// of carrier offset over a pass; receive-only DGS stations must predict it
// (they cannot be told by the satellite), which the pass geometry provides
// via LookAngles::range_rate_km_s.
#pragma once

#include "src/util/check.h"
#include "src/util/constants.h"

namespace dgs::link {

/// Carrier frequency shift [Hz] observed at the receiver for a transmitter
/// at `freq_hz` with line-of-sight `range_rate_km_s` (positive = opening).
/// Approaching satellites (negative range rate) shift the carrier up.
inline double doppler_shift_hz(double freq_hz, double range_rate_km_s) {
  DGS_ENSURE_GT(freq_hz, 0.0);
  return -range_rate_km_s * 1000.0 / util::kSpeedOfLight * freq_hz;
}

/// Doppler rate [Hz/s] from a range acceleration [km/s^2]; sizing input
/// for the receiver's carrier-tracking loop bandwidth.
inline double doppler_rate_hz_s(double freq_hz, double range_accel_km_s2) {
  DGS_ENSURE_GT(freq_hz, 0.0);
  return -range_accel_km_s2 * 1000.0 / util::kSpeedOfLight * freq_hz;
}

}  // namespace dgs::link
