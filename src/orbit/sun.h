// Low-precision solar ephemeris and sun-outage prediction.
//
// When the sun passes within a fraction of a degree-to-a-few degrees of a
// ground antenna's boresight, solar broadband noise swamps the receiver
// and the pass is lost — a deterministic, predictable outage every
// operational scheduler must avoid.  The solar position model is the
// standard low-precision almanac formula (accurate to ~0.01 deg,
// 1950-2050), ample for an outage cone measured in degrees.
#pragma once

#include "src/orbit/frames.h"
#include "src/util/time.h"
#include "src/util/vec3.h"

namespace dgs::orbit {

/// Sun position in the mean-equator/mean-equinox frame (compatible with
/// TEME at this precision), unit: kilometres.
util::Vec3 sun_position_km(const util::Epoch& when);

/// Apparent solar angles from a ground site: azimuth/elevation and the
/// Earth-sun distance.
struct SunAngles {
  double azimuth_rad = 0.0;
  double elevation_rad = 0.0;
  double distance_km = 0.0;
};
SunAngles sun_angles(const Geodetic& site, const util::Epoch& when);

/// True when the sun is within `cone_rad` of the look direction
/// (azimuth/elevation, radians) from `site` — a solar-noise outage for a
/// receiver pointed there.  Only possible with the sun above the horizon.
bool sun_outage(const Geodetic& site, double look_azimuth_rad,
                double look_elevation_rad, const util::Epoch& when,
                double cone_rad);

}  // namespace dgs::orbit
