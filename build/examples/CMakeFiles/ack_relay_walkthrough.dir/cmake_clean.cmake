file(REMOVE_RECURSE
  "CMakeFiles/ack_relay_walkthrough.dir/ack_relay_walkthrough.cpp.o"
  "CMakeFiles/ack_relay_walkthrough.dir/ack_relay_walkthrough.cpp.o.d"
  "ack_relay_walkthrough"
  "ack_relay_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ack_relay_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
