// Per-station agendas: the artifact DGS distributes to stations.
//
// Paper §3: "This schedule is distributed to all the ground stations over
// the Internet ... receive-only ground stations ... follow the shared
// schedule as well and point to the corresponding satellite."  A station
// does not consume a global matching — it needs its own ordered list of
// tracking jobs with pointing arcs.  This module turns a horizon plan into
// exactly that, plus a CSV export a rotator controller could ingest.
#pragma once

#include <iosfwd>
#include <vector>

#include "src/core/lookahead.h"

namespace dgs::core {

/// Antenna pointing at one moment of a tracking job.
struct Pointing {
  double azimuth_deg = 0.0;
  double elevation_deg = 0.0;
};

/// One contiguous tracking job on one station's agenda.
struct AgendaEntry {
  int sat = 0;
  util::Epoch start;              ///< First scheduled quantum.
  util::Epoch stop;               ///< End of the last quantum.
  Pointing aos_pointing;          ///< Where to point at `start`.
  Pointing tca_pointing;          ///< Mid-job pointing (peak elevation-ish).
  Pointing los_pointing;          ///< Where the job ends.
  double expected_bytes = 0.0;    ///< Volume at the scheduled rates.
  std::uint8_t modcod_index = 0;  ///< MODCOD of the first quantum.

  double duration_seconds() const { return stop.seconds_since(start); }
};

struct StationAgenda {
  int station = 0;
  std::vector<AgendaEntry> entries;  ///< Chronological, non-overlapping.
};

/// Builds every station's agenda from a horizon plan computed at `start`
/// with quantum `step_seconds`.  Consecutive quanta of the same
/// (satellite, station) pair fuse into one tracking job.
std::vector<StationAgenda> build_agendas(const VisibilityEngine& engine,
                                         const HorizonPlan& plan,
                                         const util::Epoch& start,
                                         double step_seconds);

/// CSV export: sat,start,stop,duration_s,az_aos,el_aos,az_los,el_los,
/// expected_gb,modcod.
void write_agenda_csv(std::ostream& out, const StationAgenda& agenda);

}  // namespace dgs::core
