# Empty compiler generated dependencies file for abl_slew.
# This may be replaced when dependencies are built.
