// Orbit-machinery micro-benchmarks: SGP4 propagation, frame transforms,
// pass prediction — the per-step costs of the scheduler's "orbit
// calculations" stage (paper §3.1).
#include <benchmark/benchmark.h>

#include <vector>

#include "src/groundseg/network_gen.h"
#include "src/orbit/frames.h"
#include "src/orbit/passes.h"
#include "src/orbit/sgp4.h"
#include "src/orbit/sgp4_batch.h"
#include "src/orbit/tle.h"
#include "src/util/angles.h"

namespace {

const char* kIssL1 =
    "1 25544U 98067A   08264.51782528 -.00002182  00000-0 -11606-4 0  2927";
const char* kIssL2 =
    "2 25544  51.6416 247.4627 0006703 130.5360 325.0288 15.72125391563537";

void BM_TleParse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(dgs::orbit::parse_tle(kIssL1, kIssL2));
  }
}
BENCHMARK(BM_TleParse);

void BM_Sgp4Init(benchmark::State& state) {
  const auto tle = dgs::orbit::parse_tle(kIssL1, kIssL2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dgs::orbit::Sgp4(tle));
  }
}
BENCHMARK(BM_Sgp4Init);

void BM_Sgp4Propagate(benchmark::State& state) {
  const dgs::orbit::Sgp4 prop(dgs::orbit::parse_tle(kIssL1, kIssL2));
  double t = 0.0;
  for (auto _ : state) {
    t += 1.0;
    benchmark::DoNotOptimize(prop.propagate(t));
  }
}
BENCHMARK(BM_Sgp4Propagate);

void BM_TemeToEcefAndLookAngles(benchmark::State& state) {
  const dgs::orbit::Sgp4 prop(dgs::orbit::parse_tle(kIssL1, kIssL2));
  const auto st = prop.propagate(10.0);
  const dgs::orbit::Geodetic site{dgs::util::deg2rad(47.6),
                                  dgs::util::deg2rad(-122.3), 0.05};
  const dgs::util::Epoch when = prop.epoch().plus_minutes(10.0);
  for (auto _ : state) {
    dgs::util::Vec3 r, v;
    dgs::orbit::teme_to_ecef(st.position_km, st.velocity_km_s, when, r, v);
    benchmark::DoNotOptimize(dgs::orbit::look_angles(site, r, v));
  }
}
BENCHMARK(BM_TemeToEcefAndLookAngles);

void BM_Sgp4BatchPropagateFleet(benchmark::State& state) {
  // Whole-fleet propagation through the SoA batch (one GMST rotation,
  // dense per-field arrays) — the per-step orbit cost at scale.
  const int n = static_cast<int>(state.range(0));
  dgs::groundseg::NetworkOptions opts;
  opts.num_satellites = n;
  opts.num_stations = 4;
  const dgs::util::Epoch epoch(dgs::util::DateTime{2020, 11, 4, 0, 0, 0.0});
  std::vector<dgs::orbit::Tle> tles;
  for (const auto& sc : dgs::groundseg::generate_constellation(opts, epoch)) {
    tles.push_back(sc.tle);
  }
  const dgs::orbit::Sgp4Batch batch(tles);
  std::vector<dgs::util::Vec3> out(static_cast<std::size_t>(n));
  double minutes = 0.0;
  for (auto _ : state) {
    minutes += 1.0;
    batch.positions_ecef(epoch.plus_minutes(minutes), out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Sgp4BatchPropagateFleet)->Arg(256)->Arg(1024);

void BM_PassPredictionOneDay(benchmark::State& state) {
  const dgs::orbit::Sgp4 prop(dgs::orbit::parse_tle(kIssL1, kIssL2));
  const dgs::orbit::Geodetic site{dgs::util::deg2rad(47.6),
                                  dgs::util::deg2rad(-122.3), 0.05};
  for (auto _ : state) {
    benchmark::DoNotOptimize(dgs::orbit::predict_passes(
        prop, site, prop.epoch(), prop.epoch().plus_days(1.0)));
  }
}
BENCHMARK(BM_PassPredictionOneDay);

}  // namespace

BENCHMARK_MAIN();
