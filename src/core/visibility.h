// Contact graph construction (paper §3.1 "Orbit Calculations" and "Graph
// Construction").
//
// For a scheduling instant, the engine propagates every satellite (batched
// SGP4, SoA layout), tests visibility against every station's elevation
// mask and owner constraints, and evaluates the predictive link budget
// (§3.2) with forecast weather to produce the weighted bipartite contact
// graph.
//
// Three optional accelerators, all preserving bit-identical output:
//   * a ThreadPool (set_thread_pool) parallelizes the per-satellite
//     propagation and the per-station visibility + link-budget sweep;
//   * a GeometryCache (enable_geometry_cache) memoizes the weather-
//     independent geometry of on-grid epochs, so repeated queries of the
//     same step (look-ahead planning, replanning) propagate only once;
//   * a spatial visibility index (set_spatial_index, ON by default) culls
//     sat x station pairs by groundtrack latitude bands and a conservative
//     visibility-cone test before the precise elevation check, replacing
//     the O(sats x stations) brute-force sweep at constellation scale.
//     The cull is strictly conservative (DESIGN.md §14), so the surviving
//     pairs — and therefore every produced edge — are bit-identical to
//     the brute-force sweep.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "src/core/geometry_cache.h"
#include "src/groundseg/network_gen.h"
#include "src/link/budget.h"
#include "src/obs/metrics.h"
#include "src/orbit/sgp4_batch.h"
#include "src/util/thread_pool.h"
#include "src/weather/provider.h"

namespace dgs::core {

/// One feasible downlink opportunity at an instant.
struct ContactEdge {
  int sat = 0;
  int station = 0;
  double elevation_rad = 0.0;
  double range_km = 0.0;
  double predicted_rate_bps = 0.0;     ///< At the scheduled MODCOD.
  const link::ModCod* modcod = nullptr;  ///< Scheduled (predicted) MODCOD.
  double weight = 0.0;                 ///< Filled in by the scheduler.
};

class VisibilityEngine {
 public:
  /// `forecast_weather` drives the *predicted* budgets; pass nullptr to
  /// schedule assuming clear sky (the weather-blind ablation).
  VisibilityEngine(const std::vector<groundseg::SatelliteConfig>& sats,
                   const std::vector<groundseg::GroundStation>& stations,
                   const weather::WeatherProvider* forecast_weather);

  /// All feasible edges at `when`.  `forecast_lead_s` gives, per satellite,
  /// how stale its uploaded plan is (seconds); empty means zero lead
  /// (a perfectly fresh plan).  `station_down` optionally marks stations
  /// currently unavailable (failure injection); empty means all up.
  /// Edges that cannot close are omitted.  Output (values and order) is
  /// independent of the thread pool, cache, and spatial-index
  /// configuration.
  std::vector<ContactEdge> contacts(
      const util::Epoch& when, std::span<const double> forecast_lead_s = {},
      std::span<const char> station_down = {}) const;

  /// Geometry-only visibility (no link budget): elevation above the mask.
  bool visible(int sat, int station, const util::Epoch& when) const;

  /// ECEF position of a satellite at `when` (propagation + rotation).
  util::Vec3 satellite_ecef(int sat, const util::Epoch& when) const;

  /// Borrowed pool parallelizing contacts(); nullptr (default) = serial.
  void set_thread_pool(util::ThreadPool* pool) { pool_ = pool; }
  util::ThreadPool* thread_pool() const { return pool_; }

  /// Toggles the spatial visibility index (default on).  Off = the
  /// brute-force all-pairs sweep; results are bit-identical either way
  /// (tests/test_visibility_index.cpp pins this).
  void set_spatial_index(bool enabled) { spatial_index_ = enabled; }
  bool spatial_index() const { return spatial_index_; }

  /// Borrowed metrics registry; nullptr (default) disables instrumentation.
  /// Registers the engine's counters (propagations, link budgets, contact
  /// edges, cull candidates/precise tests) and is handed to any cache
  /// enabled afterwards, so call this before enable_geometry_cache.
  void set_metrics(obs::Registry* registry);
  obs::Registry* metrics() const { return metrics_; }

  /// Memoize step geometry on the grid `base + k * step_seconds`, keeping
  /// the most recent `capacity_steps` steps, additionally bounded by
  /// `max_bytes` of estimated entry footprint (constellation-scale runs
  /// would otherwise hold gigabytes of per-step geometry; see
  /// GeometryCache).  Replaces any prior cache.
  void enable_geometry_cache(
      const util::Epoch& base, double step_seconds, int capacity_steps,
      std::size_t max_bytes = GeometryCache::kDefaultMaxBytes);
  /// The active cache (for tests/telemetry); nullptr when disabled.
  const GeometryCache* geometry_cache() const { return cache_.get(); }
  /// Mutable access for checkpoint restore (core::Session).
  GeometryCache* mutable_geometry_cache() { return cache_.get(); }

  int num_sats() const { return batch_.size(); }
  int num_stations() const { return static_cast<int>(stations_->size()); }
  const groundseg::SatelliteConfig& satellite(int i) const {
    return (*sats_)[i];
  }
  const groundseg::GroundStation& station(int i) const {
    return (*stations_)[i];
  }

 private:
  struct StationGeom {
    util::Vec3 ecef;
    util::Vec3 up;      ///< Geodetic normal (unit).
    util::Vec3 n;       ///< Geocentric direction (unit), ecef / |ecef|.
    double radius_km = 0.0;         ///< |ecef|.
    double geocentric_lat_rad = 0.0;
    double lon_rad = 0.0;      ///< atan2(n.y, n.x), for the longitude cull.
    double cos_el_cull = 0.0;  ///< cos(min_elevation - margin), for psi_max.
    double el_cull_rad = 0.0;  ///< min_elevation - margin.
  };

  /// One satellite in a latitude band, keyed by geocentric longitude so a
  /// station can binary-search its cap's longitude window.
  struct BandSat {
    double lon_rad = 0.0;
    int sat = 0;
  };

  /// Fills `out` with the weather-independent geometry of `when`:
  /// propagates every satellite and sweeps every station's mask.
  /// Parallelized over satellites, then stations, when a pool is set.
  void compute_step_geometry(const util::Epoch& when,
                             StepGeometry& out) const;
  /// The all-pairs sweep (spatial index off, and the cross-validation
  /// reference): every station tests every allowed satellite.
  void sweep_brute(StepGeometry& out) const;
  /// The indexed sweep: latitude-band scatter + conservative cone cull,
  /// then the identical precise elevation test on survivors.
  void sweep_indexed(StepGeometry& out) const;

  /// Geometry for `when`, served from the cache when possible.  The
  /// returned pointer is the engine's scratch or a cache entry; valid
  /// until the next step_geometry call or cache mutation.
  const StepGeometry* step_geometry(const util::Epoch& when) const;

  const std::vector<groundseg::SatelliteConfig>* sats_;
  const std::vector<groundseg::GroundStation>* stations_;
  const weather::WeatherProvider* wx_;  ///< May be null (clear-sky planning).
  orbit::Sgp4Batch batch_;              ///< SoA propagator for the fleet.
  std::vector<StationGeom> geom_;
  util::ThreadPool* pool_ = nullptr;              ///< Borrowed; may be null.
  bool spatial_index_ = true;
  mutable std::unique_ptr<GeometryCache> cache_;  ///< Memoization only.
  /// Scratch reused across steps to avoid per-call allocation churn at
  /// constellation scale.  The engine's query methods are driver-thread
  /// only (the cache already mutates under const); pool workers touch
  /// disjoint per-station slots.
  mutable StepGeometry scratch_geometry_;       ///< Uncached-step storage.
  mutable std::vector<double> radius_scratch_;  ///< Geocentric radii.
  /// Satellites per latitude band, sorted by (longitude, id).
  mutable std::vector<std::vector<BandSat>> band_scratch_;
  mutable std::vector<std::vector<ContactEdge>> edge_scratch_;
  obs::Registry* metrics_ = nullptr;              ///< Borrowed; may be null.
  /// Cached registry handles (null when metrics_ is null).  Incremented
  /// from worker threads in whole-chunk integer steps, which the shard
  /// fold sums deterministically (DESIGN.md §10).
  obs::Counter* propagations_ = nullptr;
  obs::Counter* link_budgets_ = nullptr;
  obs::Counter* contact_edges_ = nullptr;
  obs::Counter* cull_candidates_ = nullptr;
  obs::Counter* cull_precise_ = nullptr;
};

}  // namespace dgs::core
