// Contact graph construction (paper §3.1 "Orbit Calculations" and "Graph
// Construction").
//
// For a scheduling instant, the engine propagates every satellite (SGP4),
// tests visibility against every station's elevation mask and owner
// constraints, and evaluates the predictive link budget (§3.2) with
// forecast weather to produce the weighted bipartite contact graph.
//
// Two optional accelerators, both preserving bit-identical output:
//   * a ThreadPool (set_thread_pool) parallelizes the per-satellite
//     propagation and the per-station visibility + link-budget sweep;
//   * a GeometryCache (enable_geometry_cache) memoizes the weather-
//     independent geometry of on-grid epochs, so repeated queries of the
//     same step (look-ahead planning, replanning) propagate only once.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "src/core/geometry_cache.h"
#include "src/groundseg/network_gen.h"
#include "src/link/budget.h"
#include "src/obs/metrics.h"
#include "src/orbit/sgp4.h"
#include "src/util/thread_pool.h"
#include "src/weather/provider.h"

namespace dgs::core {

/// One feasible downlink opportunity at an instant.
struct ContactEdge {
  int sat = 0;
  int station = 0;
  double elevation_rad = 0.0;
  double range_km = 0.0;
  double predicted_rate_bps = 0.0;     ///< At the scheduled MODCOD.
  const link::ModCod* modcod = nullptr;  ///< Scheduled (predicted) MODCOD.
  double weight = 0.0;                 ///< Filled in by the scheduler.
};

class VisibilityEngine {
 public:
  /// `forecast_weather` drives the *predicted* budgets; pass nullptr to
  /// schedule assuming clear sky (the weather-blind ablation).
  VisibilityEngine(const std::vector<groundseg::SatelliteConfig>& sats,
                   const std::vector<groundseg::GroundStation>& stations,
                   const weather::WeatherProvider* forecast_weather);

  /// All feasible edges at `when`.  `forecast_lead_s` gives, per satellite,
  /// how stale its uploaded plan is (seconds); empty means zero lead
  /// (a perfectly fresh plan).  `station_down` optionally marks stations
  /// currently unavailable (failure injection); empty means all up.
  /// Edges that cannot close are omitted.  Output (values and order) is
  /// independent of the thread pool and cache configuration.
  std::vector<ContactEdge> contacts(
      const util::Epoch& when, std::span<const double> forecast_lead_s = {},
      std::span<const char> station_down = {}) const;

  /// Geometry-only visibility (no link budget): elevation above the mask.
  bool visible(int sat, int station, const util::Epoch& when) const;

  /// ECEF position of a satellite at `when` (propagation + rotation).
  util::Vec3 satellite_ecef(int sat, const util::Epoch& when) const;

  /// Borrowed pool parallelizing contacts(); nullptr (default) = serial.
  void set_thread_pool(util::ThreadPool* pool) { pool_ = pool; }
  util::ThreadPool* thread_pool() const { return pool_; }

  /// Borrowed metrics registry; nullptr (default) disables instrumentation.
  /// Registers the engine's counters (propagations, link budgets, contact
  /// edges) and is handed to any cache enabled afterwards, so call this
  /// before enable_geometry_cache.
  void set_metrics(obs::Registry* registry);
  obs::Registry* metrics() const { return metrics_; }

  /// Memoize step geometry on the grid `base + k * step_seconds`, keeping
  /// the most recent `capacity_steps` steps.  Replaces any prior cache.
  void enable_geometry_cache(const util::Epoch& base, double step_seconds,
                             int capacity_steps);
  /// The active cache (for tests/telemetry); nullptr when disabled.
  const GeometryCache* geometry_cache() const { return cache_.get(); }

  int num_sats() const { return static_cast<int>(props_.size()); }
  int num_stations() const { return static_cast<int>(stations_->size()); }
  const groundseg::SatelliteConfig& satellite(int i) const {
    return (*sats_)[i];
  }
  const groundseg::GroundStation& station(int i) const {
    return (*stations_)[i];
  }

 private:
  struct StationGeom {
    util::Vec3 ecef;
    util::Vec3 up;  ///< Geodetic normal (unit).
  };

  /// Fills `out` with the weather-independent geometry of `when`:
  /// propagates every satellite and sweeps every station's mask.
  /// Parallelized over satellites, then stations, when a pool is set.
  void compute_step_geometry(const util::Epoch& when,
                             StepGeometry& out) const;

  /// Geometry for `when`, served from the cache when possible.  The
  /// returned pointer is `local` or a cache entry; valid until the next
  /// cache mutation.
  const StepGeometry* step_geometry(const util::Epoch& when,
                                    StepGeometry& local) const;

  const std::vector<groundseg::SatelliteConfig>* sats_;
  const std::vector<groundseg::GroundStation>* stations_;
  const weather::WeatherProvider* wx_;  ///< May be null (clear-sky planning).
  std::vector<orbit::Sgp4> props_;
  std::vector<StationGeom> geom_;
  util::ThreadPool* pool_ = nullptr;              ///< Borrowed; may be null.
  mutable std::unique_ptr<GeometryCache> cache_;  ///< Memoization only.
  obs::Registry* metrics_ = nullptr;              ///< Borrowed; may be null.
  /// Cached registry handles (null when metrics_ is null).  Incremented
  /// from worker threads in whole-chunk integer steps, which the shard
  /// fold sums deterministically (DESIGN.md §10).
  obs::Counter* propagations_ = nullptr;
  obs::Counter* link_budgets_ = nullptr;
  obs::Counter* contact_edges_ = nullptr;
};

}  // namespace dgs::core
