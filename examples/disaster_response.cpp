// Disaster-response scenario (paper §1: "this latency is crucial for
// time-sensitive applications of satellite data like flood modeling and
// forest fires").
//
// A wildfire breaks out mid-simulation.  From that moment, satellites tag
// 10% of their imagery (the fire region) as urgent.  We compare how fast
// fire imagery reaches the ground on DGS vs the centralized baseline —
// the difference is the paper's core motivation in one number.
#include <cstdio>

#include "src/core/dgs.h"

int main() {
  using namespace dgs;

  const util::Epoch epoch(util::DateTime{2020, 11, 4, 0, 0, 0.0});
  groundseg::NetworkOptions net;
  net.num_satellites = 120;
  net.num_stations = 173;
  auto sats = groundseg::generate_constellation(net, epoch);
  auto dgs_stations = groundseg::generate_dgs_stations(net);
  auto baseline_stations = groundseg::baseline_stations();
  auto sats_6ch = sats;
  for (auto& s : sats_6ch) s.radio.channels = 6;

  weather::SyntheticWeatherProvider wx(99, epoch, 13.0);

  core::SimulationOptions opts;
  opts.start = epoch;
  opts.duration_hours = 12.0;
  opts.step_seconds = 60.0;
  opts.urgent_fraction = 0.10;  // the fire region's imagery share
  opts.urgent_priority = 10.0;

  std::printf("Wildfire scenario: 10%% of imagery is tagged urgent "
              "(priority 10x), 12 h horizon, %d satellites.\n\n",
              net.num_satellites);

  const core::SimulationResult dgs_run =
      core::Simulator(sats, dgs_stations, &wx, opts).run();
  const core::SimulationResult base_run =
      core::Simulator(sats_6ch, baseline_stations, &wx, opts).run();

  auto report = [](const char* name, const core::SimulationResult& r) {
    std::printf("%s\n", name);
    std::printf("  fire imagery (urgent): median %5.0f min, p90 %5.0f min, "
                "p99 %5.0f min\n",
                r.urgent_latency_minutes.median(),
                r.urgent_latency_minutes.percentile(90.0),
                r.urgent_latency_minutes.percentile(99.0));
    std::printf("  bulk imagery:          median %5.0f min, p90 %5.0f min, "
                "p99 %5.0f min\n\n",
                r.bulk_latency_minutes.median(),
                r.bulk_latency_minutes.percentile(90.0),
                r.bulk_latency_minutes.percentile(99.0));
  };
  report("DGS (173 distributed stations):", dgs_run);
  report("Centralized baseline (5 polar stations):", base_run);

  std::printf("Time for 90%% of fire imagery to reach responders:\n");
  std::printf("  DGS      %5.0f min\n",
              dgs_run.urgent_latency_minutes.percentile(90.0));
  std::printf("  baseline %5.0f min  (%.1fx slower)\n",
              base_run.urgent_latency_minutes.percentile(90.0),
              base_run.urgent_latency_minutes.percentile(90.0) /
                  std::max(1.0,
                           dgs_run.urgent_latency_minutes.percentile(90.0)));
  std::printf("\nThe paper's point (Sec. 1, Sec. 3): for floods and forest "
              "fires the data must arrive in tens of minutes, which only "
              "the geographically distributed design achieves.\n");
  return 0;
}
