// Physical and geodetic constants used across DGS.
//
// The orbit propagator (SGP4) uses the WGS-72 constant set, matching the
// constants baked into the NORAD element sets it consumes.  Geodetic
// conversions (latitude/longitude/altitude of ground stations) use WGS-84.
#pragma once

namespace dgs::util {

// --- Mathematical -----------------------------------------------------------
inline constexpr double kPi = 3.14159265358979323846;
inline constexpr double kTwoPi = 2.0 * kPi;
inline constexpr double kDegPerRad = 180.0 / kPi;
inline constexpr double kRadPerDeg = kPi / 180.0;

// --- Physical ---------------------------------------------------------------
/// Speed of light in vacuum [m/s].
inline constexpr double kSpeedOfLight = 299792458.0;
/// Boltzmann constant [J/K].
inline constexpr double kBoltzmann = 1.380649e-23;
/// Boltzmann constant expressed in dBW/(K*Hz): 10*log10(k).
inline constexpr double kBoltzmannDb = -228.5991672;

// --- WGS-72 (used by SGP4; values from Vallado, "Revisiting Spacetrack
// Report #3") ----------------------------------------------------------------
namespace wgs72 {
/// Earth gravitational parameter [km^3/s^2].
inline constexpr double kMu = 398600.8;
/// Earth equatorial radius [km].
inline constexpr double kEarthRadiusKm = 6378.135;
/// J2 zonal harmonic.
inline constexpr double kJ2 = 0.001082616;
/// J3 zonal harmonic.
inline constexpr double kJ3 = -0.00000253881;
/// J4 zonal harmonic.
inline constexpr double kJ4 = -0.00000165597;
}  // namespace wgs72

// --- WGS-84 (geodesy) -------------------------------------------------------
namespace wgs84 {
/// Semi-major axis [km].
inline constexpr double kSemiMajorKm = 6378.137;
/// Flattening.
inline constexpr double kFlattening = 1.0 / 298.257223563;
/// First eccentricity squared.
inline constexpr double kE2 = kFlattening * (2.0 - kFlattening);
}  // namespace wgs84

/// Earth rotation rate [rad/s] (IAU-82, consistent with GMST model below).
inline constexpr double kEarthRotationRadPerSec = 7.29211514670698e-05;

/// Minutes per day; SGP4 works internally in minutes.
inline constexpr double kMinutesPerDay = 1440.0;
inline constexpr double kSecondsPerDay = 86400.0;

}  // namespace dgs::util
