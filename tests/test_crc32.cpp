// CRC-32 reference vectors and incremental API.
#include <gtest/gtest.h>

#include <cstring>
#include <string_view>
#include <vector>

#include "src/util/crc32.h"

namespace dgs::util {
namespace {

std::vector<std::uint8_t> bytes(std::string_view s) {
  return {s.begin(), s.end()};
}

TEST(Crc32, CheckValue) {
  // The canonical CRC-32/ISO-HDLC check value.
  EXPECT_EQ(crc32(bytes("123456789")), 0xCBF43926u);
}

TEST(Crc32, KnownVectors) {
  EXPECT_EQ(crc32(bytes("")), 0x00000000u);
  EXPECT_EQ(crc32(bytes("a")), 0xE8B7BE43u);
  EXPECT_EQ(crc32(bytes("abc")), 0x352441C2u);
  EXPECT_EQ(crc32(bytes("The quick brown fox jumps over the lazy dog")),
            0x414FA339u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const auto data = bytes("incremental-crc-check-data-0123456789");
  for (std::size_t split = 0; split <= data.size(); split += 5) {
    std::uint32_t s = crc32_init();
    s = crc32_update(s, std::span(data).subspan(0, split));
    s = crc32_update(s, std::span(data).subspan(split));
    EXPECT_EQ(crc32_final(s), crc32(data)) << "split " << split;
  }
}

TEST(Crc32, DetectsSingleBitFlips) {
  auto data = bytes("payload under test");
  const std::uint32_t good = crc32(data);
  for (std::size_t byte = 0; byte < data.size(); byte += 3) {
    for (int bit = 0; bit < 8; bit += 2) {
      data[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_NE(crc32(data), good) << "byte " << byte << " bit " << bit;
      data[byte] ^= static_cast<std::uint8_t>(1u << bit);
    }
  }
}

}  // namespace
}  // namespace dgs::util
