#include "src/core/simulator.h"

#include "src/backend/station_edge.h"
#include "src/core/lookahead.h"
#include "src/obs/trace.h"
#include "src/util/angles.h"
#include "src/util/check.h"

#include <cmath>
#include <map>
#include <string>
#include <utility>

namespace dgs::core {

Simulator::Simulator(std::vector<groundseg::SatelliteConfig> sats,
                     std::vector<groundseg::GroundStation> stations,
                     const weather::WeatherProvider* actual_weather,
                     const SimulationOptions& opts)
    : sats_(std::move(sats)), stations_(std::move(stations)),
      actual_wx_(actual_weather), opts_(opts) {
  DGS_ENSURE(!sats_.empty() && !stations_.empty(),
             "sats=" << sats_.size() << " stations=" << stations_.size());
  DGS_ENSURE_GT(opts.duration_hours, 0.0);
  DGS_ENSURE_GT(opts.step_seconds, 0.0);
  DGS_ENSURE(opts.lookahead_hours <= 0.0 || opts.outages.empty(),
             "lookahead planning does not support outage injection");
  DGS_ENSURE_GE(opts.lookahead_hours, 0.0);
  for (const StationOutage& o : opts.outages) {
    DGS_ENSURE(o.station_index >= 0 &&
                   o.station_index < static_cast<int>(stations_.size()),
               "outage station=" << o.station_index);
    DGS_ENSURE(o.end_hours >= o.start_hours,
               "outage ends (" << o.end_hours << " h) before it starts ("
                               << o.start_hours << " h)");
  }
}

double Simulator::realized_rate_bps(const ContactEdge& e,
                                    const util::Epoch& when) const {
  const groundseg::GroundStation& gs = stations_[e.station];
  weather::WeatherSample wx;
  if (actual_wx_ != nullptr) {
    wx = actual_wx_->actual(gs.location.latitude_rad,
                            gs.location.longitude_rad, when);
  }
  link::PathConditions path;
  path.range_km = e.range_km;
  path.elevation_rad = e.elevation_rad;
  path.site_latitude_rad = gs.location.latitude_rad;
  path.site_altitude_km = gs.location.altitude_km;
  path.rain_rate_mm_h = wx.rain_rate_mm_h;
  path.cloud_liquid_kg_m2 = wx.cloud_liquid_kg_m2;

  // The satellite transmits at the *scheduled* MODCOD (receive-only
  // stations cannot request a change mid-pass).  The transfer succeeds iff
  // the actual Es/N0 still meets that MODCOD's requirement.  Beamforming
  // stations pay the same power-split penalty the scheduler assumed.
  link::ReceiveSystem rx = gs.receiver;
  if (gs.beam_count > 1) rx.aperture_efficiency /= gs.beam_count;
  const link::LinkBudget actual =
      link::evaluate_link(sats_[e.sat].radio, rx, path);
  if (e.modcod == nullptr) return 0.0;
  if (actual.esn0_db < e.modcod->required_esn0_db) return 0.0;
  return link::bitrate_bps(*e.modcod, sats_[e.sat].radio.symbol_rate_hz) *
         sats_[e.sat].radio.channels;
}

SimulationResult Simulator::run() {
  const int num_sats = static_cast<int>(sats_.size());
  const int num_stations = static_cast<int>(stations_.size());
  const double dt = opts_.step_seconds;
  const std::int64_t steps = static_cast<std::int64_t>(
      std::llround(opts_.duration_hours * 3600.0 / dt));

  // Scheduling sees forecasts; outcomes use the actual field.
  const weather::WeatherProvider* forecast_wx =
      opts_.weather_aware ? actual_wx_ : nullptr;
  VisibilityEngine engine(sats_, stations_, forecast_wx);

  // Parallel hot loops + step-geometry memoization.  Both preserve
  // bit-identical results; the cache is sized to hold a whole look-ahead
  // window so a planning sweep propagates each epoch exactly once.
  util::ThreadPool pool(opts_.parallel);
  engine.set_thread_pool(&pool);
  // Must precede Scheduler construction and enable_geometry_cache: both
  // register their counters against the engine's registry at setup time.
  engine.set_metrics(opts_.metrics);
  SchedulerConfig sched_cfg;
  sched_cfg.matcher = opts_.matcher;
  sched_cfg.value = opts_.value;
  sched_cfg.quantum_seconds = dt;
  sched_cfg.edge_value_modifier = opts_.edge_value_modifier;
  Scheduler scheduler(&engine, sched_cfg);

  SimulationResult res;
  res.per_satellite.resize(num_sats);

  // Sim-level metrics.  All updates below happen on the driver thread:
  // byte quantities are non-integer doubles, which the shard-fold
  // determinism contract (DESIGN.md §10) keeps out of parallel regions.
  // Each counter mirrors the matching SimulationResult field add-for-add,
  // so the two stay bit-identical.
  obs::Registry* const metrics = opts_.metrics;
  struct {
    obs::Counter* generated_bytes = nullptr;
    obs::Counter* delivered_bytes = nullptr;
    obs::Counter* dropped_bytes = nullptr;
    obs::Counter* wasted_bytes = nullptr;
    obs::Counter* requeued_bytes = nullptr;
    obs::Counter* assignments = nullptr;
    obs::Counter* failed_assignments = nullptr;
    obs::Counter* slew_events = nullptr;
    obs::Counter* steps = nullptr;
    obs::Counter* ack_batches = nullptr;
    obs::Counter* plan_uploads = nullptr;
    obs::Counter* backhaul_received = nullptr;
    obs::Counter* backhaul_uploaded = nullptr;
    obs::Gauge* backlog_bytes = nullptr;
    obs::Gauge* pending_ack_bytes = nullptr;
    obs::Gauge* station_queued_bytes = nullptr;
    obs::Histogram* latency_minutes = nullptr;
  } om;
  if (metrics != nullptr) {
    om.generated_bytes = metrics->counter(
        "dgs_sim_generated_bytes_total", "Bytes captured at the sensors");
    om.delivered_bytes = metrics->counter(
        "dgs_sim_delivered_bytes_total", "Bytes captured by the ground");
    om.dropped_bytes = metrics->counter(
        "dgs_sim_dropped_bytes_total", "Bytes lost to full recorders");
    om.wasted_bytes = metrics->counter(
        "dgs_sim_wasted_bytes_total",
        "Bytes transmitted into failed (mis-predicted MODCOD) slots");
    om.requeued_bytes = metrics->counter(
        "dgs_sim_requeued_bytes_total",
        "Bytes re-queued for retransmission after a collated report");
    om.assignments = metrics->counter(
        "dgs_sim_assignments_total", "Scheduled (sat, station) slots");
    om.failed_assignments = metrics->counter(
        "dgs_sim_failed_assignments_total",
        "Slots whose scheduled MODCOD did not close");
    om.slew_events = metrics->counter(
        "dgs_sim_slew_events_total",
        "Station retargets to a new satellite (slew model on)");
    om.steps = metrics->counter("dgs_sim_steps_total",
                                "Simulation steps executed");
    om.ack_batches = metrics->counter(
        "dgs_sim_ack_batches_total",
        "Delivery batches acknowledged via collated reports");
    om.plan_uploads = metrics->counter(
        "dgs_sim_plan_uploads_total",
        "Fresh plans uploaded at transmit-capable contacts");
    om.backhaul_received = metrics->counter(
        "dgs_backhaul_received_bytes_total",
        "Bytes queued at station edges from the downlink");
    om.backhaul_uploaded = metrics->counter(
        "dgs_backhaul_uploaded_bytes_total",
        "Bytes uploaded from station edges to the cloud");
    om.backlog_bytes = metrics->gauge(
        "dgs_sim_backlog_bytes", "Bytes queued on board across satellites");
    om.pending_ack_bytes = metrics->gauge(
        "dgs_sim_pending_ack_bytes",
        "Bytes delivered but not yet acknowledged");
    om.station_queued_bytes = metrics->gauge(
        "dgs_backhaul_queued_bytes",
        "Bytes still queued at station edges (not yet in the cloud)");
    om.latency_minutes = metrics->histogram(
        "dgs_sim_latency_minutes", "Capture-to-ground latency per chunk",
        {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0});
  }

  // Event-log state: the shared step clock (also stamps the timeseries)
  // plus per-(sat, station) contact lifecycle tracking.
  obs::EventLog* const events = opts_.events;
  const obs::StepClock clock(opts_.start, dt);
  struct OpenContact {
    const link::ModCod* modcod = nullptr;
    int held_steps = 0;
    std::int64_t last_step = -1;
  };
  std::map<std::pair<int, int>, OpenContact> open_contacts;
  std::vector<char> prev_down(num_stations, 0);
  std::uint64_t cache_hits_prev = 0;
  std::uint64_t cache_misses_prev = 0;

  std::vector<OnboardQueue> queues(num_sats);
  for (int s = 0; s < num_sats; ++s) {
    if (sats_[s].storage_capacity_bytes > 0.0) {
      queues[s].set_capacity(sats_[s].storage_capacity_bytes);
    }
  }
  std::vector<util::Epoch> last_plan(num_sats, opts_.start);
  std::vector<std::int64_t> station_busy(num_stations, 0);

  // Steady-state warm start: pre-existing backlog captured in the past.
  if (opts_.initial_backlog_bytes > 0.0) {
    const util::Epoch captured =
        opts_.start.plus_seconds(-opts_.initial_backlog_age_hours * 3600.0);
    for (int s = 0; s < num_sats; ++s) {
      queues[s].generate(opts_.initial_backlog_bytes, captured);
      res.per_satellite[s].generated_bytes += opts_.initial_backlog_bytes;
      res.total_generated_bytes += opts_.initial_backlog_bytes;
      if (om.generated_bytes != nullptr) {
        om.generated_bytes->inc(opts_.initial_backlog_bytes);
      }
    }
  }

  std::vector<double> leads(num_sats, 0.0);

  // Which satellite each station served in the previous step (-1 = idle);
  // only maintained when slew is modelled.
  std::vector<int> prev_served(num_stations, -1);

  // Station edge queues (opts_.station_backhaul_bps > 0).
  std::vector<backend::StationEdgeQueue> edge_queues;
  if (opts_.station_backhaul_bps > 0.0) {
    edge_queues.assign(num_stations,
                       backend::StationEdgeQueue(opts_.station_backhaul_bps));
    for (backend::StationEdgeQueue& eq : edge_queues) {
      eq.set_metrics(om.backhaul_received, om.backhaul_uploaded);
    }
  }

  // Look-ahead planning state (opts_.lookahead_hours > 0).
  const int plan_window_steps =
      opts_.lookahead_hours > 0.0
          ? std::max(1, static_cast<int>(
                            std::llround(opts_.lookahead_hours * 3600.0 / dt)))
          : 0;
  engine.enable_geometry_cache(
      opts_.start, dt, plan_window_steps > 0 ? plan_window_steps : 4);

  HorizonPlan plan;
  std::int64_t plan_origin = -1;

  for (std::int64_t step = 0; step < steps; ++step) {
    DGS_TRACE_SPAN("sim.step");
    // StepClock is the single timestamp source: step_start drives the
    // physics, end_hours stamps both the timeseries record and every event
    // this step emits, so the two artifacts join without drift.
    const util::Epoch now = clock.step_start(step);
    if (events != nullptr) events->begin_step(step, clock.end_hours(step));

    // 1. Imaging: continuous data generation, one chunk per step (two when
    // an urgent tier is configured).
    {
      DGS_TRACE_SPAN("sim.generate");
      for (int s = 0; s < num_sats; ++s) {
        const double bytes =
            sats_[s].data_generation_bytes_per_day * dt / 86400.0;
        const double urgent = bytes * opts_.urgent_fraction;
        if (urgent > 0.0) {
          queues[s].generate(urgent, now, opts_.urgent_priority);
        }
        queues[s].generate(bytes - urgent, now);
        res.per_satellite[s].generated_bytes += bytes;
        res.total_generated_bytes += bytes;
        if (om.generated_bytes != nullptr) om.generated_bytes->inc(bytes);
      }
    }

    // 2. Plan staleness per satellite.
    if (opts_.couple_forecast_to_plan_upload) {
      for (int s = 0; s < num_sats; ++s) {
        leads[s] = now.seconds_since(last_plan[s]);
      }
    }  // else all-zero: always-fresh plans.

    // 3. Schedule this instant: either per-instant matching (with failure
    // injection applied) or the pre-computed look-ahead horizon plan.
    std::vector<ContactEdge> assigned;
    {
      DGS_TRACE_SPAN("sim.schedule");
      if (plan_window_steps > 0) {
        if (plan_origin < 0 || step - plan_origin >= plan_window_steps) {
          const int window = static_cast<int>(
              std::min<std::int64_t>(plan_window_steps, steps - step));
          plan = plan_horizon(engine, queues, scheduler.value_function(),
                              now, window, dt);
          plan_origin = step;
        }
        assigned = plan.per_step[step - plan_origin];
      } else {
        std::vector<char> down;
        if (!opts_.outages.empty()) {
          down.assign(num_stations, 0);
          const double hours = static_cast<double>(step) * dt / 3600.0;
          for (const StationOutage& o : opts_.outages) {
            if (hours >= o.start_hours && hours < o.end_hours) {
              down.at(o.station_index) = 1;
            }
          }
          if (events != nullptr) {
            for (int g = 0; g < num_stations; ++g) {
              if (down[g] != 0 && prev_down[g] == 0) events->outage_begin(g);
              if (down[g] == 0 && prev_down[g] != 0) events->outage_end(g);
            }
            prev_down.assign(down.begin(), down.end());
          }
        }
        assigned = scheduler.schedule_instant(now, queues, leads, down);
      }
    }

    // 4. Execute the assignments against actual weather.  The satellite
    // always transmits at the scheduled MODCOD and rate (receive-only
    // stations cannot renegotiate); whether the ground captures it depends
    // on the actual Es/N0.
    double step_edge_received = 0.0;
    {
      DGS_TRACE_SPAN("sim.execute");
      for (const ContactEdge& e : assigned) {
        res.assignments += 1;
        res.total_matched_value += e.weight;
        station_busy[e.station] += 1;
        if (om.assignments != nullptr) om.assignments->inc();

        // Contact lifecycle: a pair entering the assigned set opens a
        // contact; a MODCOD change mid-pass is a reselection.
        if (events != nullptr) {
          const auto key = std::make_pair(e.sat, e.station);
          auto [it, inserted] = open_contacts.try_emplace(key);
          OpenContact& oc = it->second;
          const std::string_view name =
              e.modcod != nullptr ? e.modcod->name : "none";
          if (inserted) {
            events->contact_open(e.sat, e.station, name,
                                 e.predicted_rate_bps,
                                 util::rad2deg(e.elevation_rad));
          } else if (oc.modcod != e.modcod) {
            events->modcod_selected(e.sat, e.station, name,
                                    e.predicted_rate_bps);
          }
          oc.modcod = e.modcod;
          oc.held_steps += 1;
          oc.last_step = step;
        }

        const bool received = realized_rate_bps(e, now) > 0.0;
        // Retargeting the dish costs slew/re-lock time out of the quantum.
        double effective_dt = dt;
        if (opts_.slew_seconds > 0.0 && prev_served[e.station] != e.sat) {
          effective_dt = std::max(0.0, dt - opts_.slew_seconds);
          res.slew_events += 1;
          if (om.slew_events != nullptr) om.slew_events->inc();
        }
        const double link_bytes = e.predicted_rate_bps * effective_dt / 8.0;
        const double sent = queues[e.sat].transmit(
            link_bytes, now,
            [&](double latency_s, const DataChunk& chunk) {
              res.latency_minutes.add(latency_s / 60.0);
              if (om.latency_minutes != nullptr) {
                om.latency_minutes->observe(latency_s / 60.0);
              }
              if (chunk.priority > 1.0) {
                res.urgent_latency_minutes.add(latency_s / 60.0);
              } else {
                res.bulk_latency_minutes.add(latency_s / 60.0);
              }
              if (!edge_queues.empty()) {
                edge_queues[e.station].receive(chunk.total_bytes,
                                               chunk.priority, chunk.capture,
                                               now);
                step_edge_received += chunk.total_bytes;
              }
            },
            received);
        if (received) {
          res.assigned_capacity_bytes += link_bytes;
          res.per_satellite[e.sat].delivered_bytes += sent;
          res.total_delivered_bytes += sent;
          if (om.delivered_bytes != nullptr) om.delivered_bytes->inc(sent);
        } else {
          res.failed_assignments += 1;
          res.wasted_transmission_bytes += sent;
          if (om.failed_assignments != nullptr) {
            om.failed_assignments->inc();
          }
          if (om.wasted_bytes != nullptr) om.wasted_bytes->inc(sent);
        }
        if (events != nullptr) {
          events->bytes_moved(e.sat, e.station, sent, received);
        }

        // Transmit-capable contact: collated report (acks + missing pieces)
        // and a fresh plan upload.  The S-band TT&C uplink is independent
        // of the X-band downlink outcome, so this happens even if the data
        // transfer failed.
        if (stations_[e.station].tx_capable) {
          double acked_bytes = 0.0;
          int ack_batches = 0;
          const double requeued = queues[e.sat].acknowledge_all(
              now, [&](double delay_s, double bytes) {
                res.ack_delay_minutes.add(delay_s / 60.0);
                acked_bytes += bytes;
                ack_batches += 1;
              });
          res.requeued_bytes += requeued;
          if (om.requeued_bytes != nullptr) {
            om.requeued_bytes->inc(requeued);
          }
          if (om.ack_batches != nullptr && ack_batches > 0) {
            om.ack_batches->inc(ack_batches);
          }
          if (om.plan_uploads != nullptr) om.plan_uploads->inc();
          if (events != nullptr) {
            events->ack_relayed(e.sat, e.station, acked_bytes, requeued,
                                ack_batches);
            events->plan_uploaded(e.sat, e.station,
                                  now.seconds_since(last_plan[e.sat]));
          }
          last_plan[e.sat] = now;
          res.per_satellite[e.sat].tx_contacts += 1;
        }
      }
    }

    // Contacts absent from this step's assigned set have ended.
    if (events != nullptr) {
      for (auto it = open_contacts.begin(); it != open_contacts.end();) {
        if (it->second.last_step != step) {
          events->contact_close(it->first.first, it->first.second,
                                it->second.held_steps);
          it = open_contacts.erase(it);
        } else {
          ++it;
        }
      }
    }

    // 4b. Track which satellite each station served (slew accounting).
    if (opts_.slew_seconds > 0.0) {
      std::fill(prev_served.begin(), prev_served.end(), -1);
      for (const ContactEdge& e : assigned) prev_served[e.station] = e.sat;
    }

    // 5. Station backhaul: edge queues upload toward the cloud.
    if (!edge_queues.empty()) {
      DGS_TRACE_SPAN("sim.backhaul");
      const util::Epoch upload_t = now.plus_seconds(dt);
      double step_uploaded = 0.0;
      for (backend::StationEdgeQueue& eq : edge_queues) {
        step_uploaded +=
            eq.drain(dt, upload_t,
                     [&](double latency_s, const backend::EdgeItem&) {
                       res.cloud_latency_minutes.add(latency_s / 60.0);
                     });
      }
      if (events != nullptr) {
        double queued = 0.0;
        for (const backend::StationEdgeQueue& eq : edge_queues) {
          queued += eq.queued_bytes();
        }
        events->backhaul_step(step_edge_received, step_uploaded, queued);
      }
    }

    // 6. Storage accounting.
    for (int s = 0; s < num_sats; ++s) {
      res.per_satellite[s].storage_high_water_bytes =
          std::max(res.per_satellite[s].storage_high_water_bytes,
                   queues[s].storage_bytes());
    }

    // 6b. Conservation audit: every byte a sensor offered must be exactly
    // one of dropped / queued / awaiting ack / freed by an ack.  A silent
    // leak here would corrupt every downstream backlog and latency figure.
#ifdef DGS_ENABLE_DCHECKS
    for (int s = 0; s < num_sats; ++s) {
      const std::string audit = queues[s].audit_conservation();
      DGS_CHECK(audit.empty(), "step " << step << ", sat " << s << ": "
                                       << audit);
    }
#endif

    // 6c. Geometry-cache deltas accrued during this step.
    if (events != nullptr) {
      if (const GeometryCache* gc = engine.geometry_cache(); gc != nullptr) {
        const std::uint64_t h = gc->hits();
        const std::uint64_t m = gc->misses();
        if (h > cache_hits_prev) {
          events->cache_hit(static_cast<std::int64_t>(h - cache_hits_prev));
        }
        if (m > cache_misses_prev) {
          events->cache_miss(
              static_cast<std::int64_t>(m - cache_misses_prev));
        }
        cache_hits_prev = h;
        cache_misses_prev = m;
      }
    }

    // 6d. Step-end gauges.
    if (metrics != nullptr) {
      double backlog = 0.0;
      double pending = 0.0;
      for (int s = 0; s < num_sats; ++s) {
        backlog += queues[s].queued_bytes();
        pending += queues[s].pending_ack_bytes();
      }
      om.backlog_bytes->set(backlog);
      om.pending_ack_bytes->set(pending);
      double station_queued = 0.0;
      for (const backend::StationEdgeQueue& eq : edge_queues) {
        station_queued += eq.queued_bytes();
      }
      om.station_queued_bytes->set(station_queued);
      om.steps->inc();
    }

    // 7. Timeseries capture (same StepClock as the event log).
    if (opts_.collect_timeseries) {
      StepRecord rec;
      rec.hours = clock.end_hours(step);
      rec.delivered_bytes_cum = res.total_delivered_bytes;
      for (int s = 0; s < num_sats; ++s) {
        rec.backlog_bytes_total += queues[s].queued_bytes();
      }
      rec.active_links = static_cast<int>(assigned.size());
      rec.failed_cum = res.failed_assignments;
      res.timeseries.push_back(rec);
    }
  }

  // Contacts still open at horizon end close at the final step's stamp.
  if (events != nullptr) {
    for (const auto& [key, oc] : open_contacts) {
      events->contact_close(key.first, key.second, oc.held_steps);
    }
  }

  // Final accounting.
  for (int s = 0; s < num_sats; ++s) {
    SatelliteOutcome& o = res.per_satellite[s];
    o.backlog_bytes = queues[s].queued_bytes();
    o.pending_ack_bytes = queues[s].pending_ack_bytes();
    o.dropped_bytes = queues[s].dropped_bytes();
    res.total_dropped_bytes += o.dropped_bytes;
    res.backlog_gb.add(o.backlog_bytes / 1e9);
    if (om.dropped_bytes != nullptr) om.dropped_bytes->inc(o.dropped_bytes);
  }
  for (const backend::StationEdgeQueue& eq : edge_queues) {
    res.station_queued_bytes += eq.queued_bytes();
  }
  // Whole-run conservation: the result's aggregate counters must agree with
  // the queues' lifetime books.  Generated splits into delivered + dropped +
  // still-queued + awaiting-ack, with failed transmissions (wasted) either
  // re-queued already or still in limbo awaiting their collated report.
#ifdef DGS_ENABLE_DCHECKS
  {
    double offered = 0.0, acked = 0.0, pending = 0.0, queued = 0.0,
           dropped = 0.0;
    for (int s = 0; s < num_sats; ++s) {
      offered += queues[s].offered_bytes();
      acked += queues[s].acked_bytes();
      pending += queues[s].pending_ack_bytes();
      queued += queues[s].queued_bytes();
      dropped += queues[s].dropped_bytes();
    }
    const double tol = 1e-6 * std::max(1.0, offered);
    DGS_CHECK(std::abs(res.total_generated_bytes - offered) <= tol,
              "generated=" << res.total_generated_bytes
                           << " != offered=" << offered);
    DGS_CHECK(std::abs(res.total_generated_bytes -
                       (dropped + queued + pending + acked)) <= tol,
              "generated=" << res.total_generated_bytes << " vs dropped="
                           << dropped << " + queued=" << queued
                           << " + pending_ack=" << pending << " + acked="
                           << acked);
    // Sent bytes not yet returned by a report are exactly the pending set.
    DGS_CHECK(std::abs((res.total_delivered_bytes +
                        res.wasted_transmission_bytes - res.requeued_bytes) -
                       (acked + pending)) <= tol,
              "delivered=" << res.total_delivered_bytes << " + wasted="
                           << res.wasted_transmission_bytes << " - requeued="
                           << res.requeued_bytes << " vs acked=" << acked
                           << " + pending_ack=" << pending);
  }
#endif

  std::int64_t busy_total = 0;
  for (std::int64_t b : station_busy) busy_total += b;
  res.steps = steps;
  res.mean_station_utilization =
      steps > 0 ? static_cast<double>(busy_total) /
                      static_cast<double>(steps * num_stations)
                : 0.0;
  return res;
}

}  // namespace dgs::core
