// Priority-access bidding (paper §3.1: "From a ground station perspective,
// the value function can be assigned by bidding for priority access";
// §3.3: adoption "hinges on appropriate economic incentives").
//
// Operators place per-station bid multipliers; the scheduler scales an
// edge's base value (from Phi) by the bid the satellite's operator holds
// at that station.  Higher bids buy more station time — bought, not taken:
// the stable matching still rules out defection.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace dgs::core {

/// Scales the scheduler's edge values: (sat, station, base) -> value.
using EdgeValueModifier = std::function<double(int, int, double)>;

class BidMatrix {
 public:
  /// `operator_of[sat]` maps each satellite to its operator id.
  explicit BidMatrix(std::vector<int> operator_of);

  /// Sets the multiplier an operator bids at one station (> 0).
  void set_bid(int operator_id, int station, double multiplier);
  /// Sets the multiplier an operator bids network-wide.
  void set_default_bid(int operator_id, double multiplier);

  /// Effective multiplier for a satellite at a station (1.0 if unset).
  double multiplier(int sat, int station) const;

  int operator_of(int sat) const { return operator_of_.at(sat); }
  std::size_t num_satellites() const { return operator_of_.size(); }

  /// The scheduler hook.  The returned callable captures `this`; the
  /// matrix must outlive the scheduler run.
  EdgeValueModifier as_modifier() const;

 private:
  std::vector<int> operator_of_;
  std::map<int, double> default_bid_;                 ///< operator -> mult
  std::map<std::pair<int, int>, double> station_bid_; ///< (op, gs) -> mult
};

// --- Multi-tenant fair share (service mode, DESIGN.md §16) ------------------
//
// GSaaS framing ("The Space above the Sky", arXiv:2501.00354): many
// missions share one ground segment.  Each tenant owns a disjoint slice of
// the satellite fleet and a priority weight; the arbiter keeps delivered
// bytes proportional to the weights by scaling Phi per satellite through
// the SchedulerConfig::sat_value_scale seam.

/// One tenant (mission/customer) sharing the ground segment.
/// SimulationOptions::tenants holds these; validation requires the slices
/// to be disjoint and to cover the whole fleet.
struct TenantSpec {
  std::string name;                  ///< [a-z][a-z0-9_]*, unique per run.
  std::vector<int> satellites;       ///< Indices into the run's sat list.
  double weight = 1.0;               ///< Relative priority share (> 0).
  double sla_latency_minutes = 0.0;  ///< Latency target; 0 = none.
};

/// Deterministic deficit-weighted fair share.  Per scheduling instant the
/// driver thread refreshes one multiplier per tenant from cumulative
/// delivered bytes:
///
///   entitlement_t = w_t / sum(w)          (the target share)
///   share_t       = delivered_t / total   (entitlement when total == 0)
///   deficit_t     = 1 - share_t / entitlement_t, clamped to [-4, 1]
///   scale_t       = exp2(kDeficitGain * deficit_t)
///
/// A tenant exactly at its entitlement gets scale 1; a starved tenant's
/// edges are boosted up to 2^kDeficitGain, an over-served one damped.  All
/// arithmetic is driver-thread doubles over values that are themselves
/// bit-identical across thread counts, so the scales — and the schedules
/// they produce — stay deterministic (DESIGN.md §16).
class TenantArbiter {
 public:
  /// Fairness/efficiency knob.  Higher gain tracks entitlements tighter
  /// but spends more total throughput on the skew (the matcher picks
  /// lower-rate edges to serve starved tenants); 1.5 keeps the E27
  /// arbitration cost under the 2% budget (bench/abl_tenants).  Shares
  /// cannot reach entitlements exactly regardless of gain: a tenant's
  /// achievable bytes are capped by its own fleet's pass windows.
  static constexpr double kDeficitGain = 1.5;

  /// `tenants` as validated by SimulationOptions::validate (disjoint
  /// coverage of `num_sats` satellites, positive weights).
  TenantArbiter(std::vector<TenantSpec> tenants, int num_sats);

  int num_tenants() const { return static_cast<int>(tenants_.size()); }
  const TenantSpec& tenant(int t) const { return tenants_.at(t); }
  /// Owning tenant of a satellite; -1 when uncovered (pre-validation).
  int tenant_of(int sat) const { return tenant_of_.at(sat); }

  /// Recomputes the per-satellite scale vector from the running totals.
  /// Call once per scheduling instant, before schedule_instant.
  void refresh_scales();
  /// Per-satellite multipliers for SchedulerConfig::sat_value_scale; the
  /// vector's address is stable for the arbiter's lifetime.
  const std::vector<double>& sat_scale() const { return sat_scale_; }

  void record_assignment(int sat) { assignments_.at(tenant_of_.at(sat)) += 1; }
  void record_delivery(int sat, double bytes) {
    delivered_.at(tenant_of_.at(sat)) += bytes;
  }

  double delivered_bytes(int t) const { return delivered_.at(t); }
  std::int64_t assignments(int t) const { return assignments_.at(t); }
  double entitlement(int t) const { return entitlement_.at(t); }
  /// Realized share of delivered bytes (entitlement while nothing has
  /// been delivered network-wide).
  double share(int t) const;
  /// Multiplier from the last refresh_scales() (1.0 before the first).
  double scale(int t) const { return scale_.at(t); }

  /// Checkpoint restore (core::Session): the cumulative books, verbatim.
  void restore_state(std::vector<double> delivered,
                     std::vector<std::int64_t> assignments);

 private:
  std::vector<TenantSpec> tenants_;
  std::vector<int> tenant_of_;       ///< Per satellite; -1 = uncovered.
  std::vector<double> entitlement_;  ///< Per tenant, sums to 1.
  std::vector<double> delivered_;    ///< Cumulative bytes per tenant.
  std::vector<std::int64_t> assignments_;  ///< Cumulative slots per tenant.
  std::vector<double> scale_;        ///< Per tenant, last refresh.
  std::vector<double> sat_scale_;    ///< Per satellite, last refresh.
};

}  // namespace dgs::core
