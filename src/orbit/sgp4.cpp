#include "src/orbit/sgp4.h"

#include <cmath>
#include <stdexcept>

#include "src/util/angles.h"
#include "src/util/constants.h"

namespace dgs::orbit {
namespace {

using util::kTwoPi;
using namespace util::wgs72;

// Derived WGS-72 constants (Vallado getgravconst, "wgs72").
const double kXke = 60.0 / std::sqrt(kEarthRadiusKm * kEarthRadiusKm *
                                     kEarthRadiusKm / kMu);
const double kJ3oJ2 = kJ3 / kJ2;
constexpr double kX2o3 = 2.0 / 3.0;

[[noreturn]] void domain_fail(const char* what) {
  // dgslint: allow(R4) -- domain_error is the documented math contract
  throw std::domain_error(std::string("SGP4: ") + what);
}

}  // namespace

Sgp4Params sgp4_init(const Tle& tle) {
  Sgp4Params p;
  p.bstar = tle.bstar;
  p.ecco = tle.eccentricity;
  p.inclo = util::deg2rad(tle.inclination_deg);
  p.nodeo = util::deg2rad(tle.raan_deg);
  p.argpo = util::deg2rad(tle.arg_perigee_deg);
  p.mo = util::deg2rad(tle.mean_anomaly_deg);
  const double no_kozai =
      tle.mean_motion_revs_per_day * kTwoPi / util::kMinutesPerDay;  // rad/min

  if (no_kozai <= 0.0) domain_fail("non-positive mean motion");
  if (p.ecco < 0.0 || p.ecco >= 1.0) domain_fail("eccentricity out of [0,1)");

  // ----- initl: recover the Brouwer mean motion (un-Kozai) ------------------
  const double eccsq = p.ecco * p.ecco;
  const double omeosq = 1.0 - eccsq;
  const double rteosq = std::sqrt(omeosq);
  const double cosio = std::cos(p.inclo);
  const double cosio2 = cosio * cosio;

  const double ak = std::pow(kXke / no_kozai, kX2o3);
  const double d1 = 0.75 * kJ2 * (3.0 * cosio2 - 1.0) / (rteosq * omeosq);
  double del = d1 / (ak * ak);
  const double adel =
      ak * (1.0 - del * del - del * (1.0 / 3.0 + 134.0 * del * del / 81.0));
  del = d1 / (adel * adel);
  p.no_unkozai = no_kozai / (1.0 + del);

  if (kTwoPi / p.no_unkozai >= 225.0) {
    domain_fail("deep-space element set (period >= 225 min) not supported");
  }

  const double ao = std::pow(kXke / p.no_unkozai, kX2o3);
  const double sinio = std::sin(p.inclo);
  const double po = ao * omeosq;
  const double con42 = 1.0 - 5.0 * cosio2;
  p.con41 = -con42 - cosio2 - cosio2;
  const double posq = po * po;
  const double rp = ao * (1.0 - p.ecco);

  if (rp < 1.0) domain_fail("element set epoch below Earth surface");

  // ----- sgp4init: near-earth initialization --------------------------------
  const double ss = 78.0 / kEarthRadiusKm + 1.0;
  const double qzms2t =
      std::pow((120.0 - 78.0) / kEarthRadiusKm, 4.0);

  p.isimp = rp < (220.0 / kEarthRadiusKm + 1.0);

  double sfour = ss;
  double qzms24 = qzms2t;
  const double perige = (rp - 1.0) * kEarthRadiusKm;
  if (perige < 156.0) {
    sfour = perige - 78.0;
    if (perige < 98.0) sfour = 20.0;
    qzms24 = std::pow((120.0 - sfour) / kEarthRadiusKm, 4.0);
    sfour = sfour / kEarthRadiusKm + 1.0;
  }
  const double pinvsq = 1.0 / posq;

  const double tsi = 1.0 / (ao - sfour);
  p.eta = ao * p.ecco * tsi;
  const double etasq = p.eta * p.eta;
  const double eeta = p.ecco * p.eta;
  const double psisq = std::fabs(1.0 - etasq);
  const double coef = qzms24 * std::pow(tsi, 4.0);
  const double coef1 = coef / std::pow(psisq, 3.5);
  const double cc2 =
      coef1 * p.no_unkozai *
      (ao * (1.0 + 1.5 * etasq + eeta * (4.0 + etasq)) +
       0.375 * kJ2 * tsi / psisq * p.con41 *
           (8.0 + 3.0 * etasq * (8.0 + etasq)));
  p.cc1 = p.bstar * cc2;
  double cc3 = 0.0;
  if (p.ecco > 1.0e-4) {
    cc3 = -2.0 * coef * tsi * kJ3oJ2 * p.no_unkozai * sinio / p.ecco;
  }
  p.x1mth2 = 1.0 - cosio2;
  p.cc4 = 2.0 * p.no_unkozai * coef1 * ao * omeosq *
          (p.eta * (2.0 + 0.5 * etasq) + p.ecco * (0.5 + 2.0 * etasq) -
           kJ2 * tsi / (ao * psisq) *
               (-3.0 * p.con41 *
                    (1.0 - 2.0 * eeta + etasq * (1.5 - 0.5 * eeta)) +
                0.75 * p.x1mth2 * (2.0 * etasq - eeta * (1.0 + etasq)) *
                    std::cos(2.0 * p.argpo)));
  p.cc5 = 2.0 * coef1 * ao * omeosq *
          (1.0 + 2.75 * (etasq + eeta) + eeta * etasq);

  const double cosio4 = cosio2 * cosio2;
  const double temp1 = 1.5 * kJ2 * pinvsq * p.no_unkozai;
  const double temp2 = 0.5 * temp1 * kJ2 * pinvsq;
  const double temp3 = -0.46875 * kJ4 * pinvsq * pinvsq * p.no_unkozai;
  p.mdot = p.no_unkozai + 0.5 * temp1 * rteosq * p.con41 +
           0.0625 * temp2 * rteosq * (13.0 - 78.0 * cosio2 + 137.0 * cosio4);
  p.argpdot = -0.5 * temp1 * con42 +
              0.0625 * temp2 * (7.0 - 114.0 * cosio2 + 395.0 * cosio4) +
              temp3 * (3.0 - 36.0 * cosio2 + 49.0 * cosio4);
  const double xhdot1 = -temp1 * cosio;
  p.nodedot = xhdot1 + (0.5 * temp2 * (4.0 - 19.0 * cosio2) +
                        2.0 * temp3 * (3.0 - 7.0 * cosio2)) *
                           cosio;
  p.omgcof = p.bstar * cc3 * std::cos(p.argpo);
  p.xmcof = 0.0;
  if (p.ecco > 1.0e-4) p.xmcof = -kX2o3 * coef * p.bstar / eeta;
  p.nodecf = 3.5 * omeosq * xhdot1 * p.cc1;
  p.t2cof = 1.5 * p.cc1;
  // Guard the xlcof denominator for retrograde equatorial orbits (i ~ 180deg).
  if (std::fabs(cosio + 1.0) > 1.5e-12) {
    p.xlcof =
        -0.25 * kJ3oJ2 * sinio * (3.0 + 5.0 * cosio) / (1.0 + cosio);
  } else {
    p.xlcof = -0.25 * kJ3oJ2 * sinio * (3.0 + 5.0 * cosio) / 1.5e-12;
  }
  p.aycof = -0.5 * kJ3oJ2 * sinio;
  p.delmo = std::pow(1.0 + p.eta * std::cos(p.mo), 3.0);
  p.sinmao = std::sin(p.mo);
  p.x7thm1 = 7.0 * cosio2 - 1.0;

  if (!p.isimp) {
    const double cc1sq = p.cc1 * p.cc1;
    p.d2 = 4.0 * ao * tsi * cc1sq;
    const double temp = p.d2 * tsi * p.cc1 / 3.0;
    p.d3 = (17.0 * ao + sfour) * temp;
    p.d4 = 0.5 * temp * ao * tsi * (221.0 * ao + 31.0 * sfour) * p.cc1;
    p.t3cof = p.d2 + 2.0 * cc1sq;
    p.t4cof = 0.25 * (3.0 * p.d3 + p.cc1 * (12.0 * p.d2 + 10.0 * cc1sq));
    p.t5cof = 0.2 * (3.0 * p.d4 + 12.0 * p.cc1 * p.d3 + 6.0 * p.d2 * p.d2 +
                     15.0 * cc1sq * (2.0 * p.d2 + cc1sq));
  }
  return p;
}

double Sgp4::period_minutes() const { return kTwoPi / p_.no_unkozai; }

TemeState sgp4_propagate(const Sgp4Params& p, double tsince_minutes) {
  const double t = tsince_minutes;

  // ----- secular gravity and atmospheric drag -------------------------------
  const double xmdf = p.mo + p.mdot * t;
  const double argpdf = p.argpo + p.argpdot * t;
  const double nodedf = p.nodeo + p.nodedot * t;
  double argpm = argpdf;
  double mm = xmdf;
  const double t2 = t * t;
  double nodem = nodedf + p.nodecf * t2;
  double tempa = 1.0 - p.cc1 * t;
  double tempe = p.bstar * p.cc4 * t;
  double templ = p.t2cof * t2;

  if (!p.isimp) {
    const double delomg = p.omgcof * t;
    const double delm =
        p.xmcof *
        (std::pow(1.0 + p.eta * std::cos(xmdf), 3.0) - p.delmo);
    const double temp = delomg + delm;
    mm = xmdf + temp;
    argpm = argpdf - temp;
    const double t3 = t2 * t;
    const double t4 = t3 * t;
    tempa = tempa - p.d2 * t2 - p.d3 * t3 - p.d4 * t4;
    tempe = tempe + p.bstar * p.cc5 * (std::sin(mm) - p.sinmao);
    templ = templ + p.t3cof * t3 + t4 * (p.t4cof + t * p.t5cof);
  }

  double nm = p.no_unkozai;
  double em = p.ecco;
  const double inclm = p.inclo;

  const double am = std::pow(kXke / nm, kX2o3) * tempa * tempa;
  nm = kXke / std::pow(am, 1.5);
  em = em - tempe;

  if (em >= 1.0 || em < -0.001) {
    domain_fail("mean eccentricity out of range during propagation");
  }
  if (em < 1.0e-6) em = 1.0e-6;

  mm = mm + p.no_unkozai * templ;
  double xlm = mm + argpm + nodem;

  nodem = std::fmod(nodem, kTwoPi);
  argpm = std::fmod(argpm, kTwoPi);
  xlm = std::fmod(xlm, kTwoPi);
  mm = std::fmod(xlm - argpm - nodem, kTwoPi);

  // ----- long-period periodics ----------------------------------------------
  const double sinip = std::sin(inclm);
  const double cosip = std::cos(inclm);
  const double ep = em;
  const double xincp = inclm;
  const double argpp = argpm;
  const double nodep = nodem;
  const double mp = mm;

  const double axnl = ep * std::cos(argpp);
  double temp = 1.0 / (am * (1.0 - ep * ep));
  const double aynl = ep * std::sin(argpp) + temp * p.aycof;
  const double xl = mp + argpp + nodep + temp * p.xlcof * axnl;

  // ----- Kepler's equation ---------------------------------------------------
  const double u = std::fmod(xl - nodep, kTwoPi);
  double eo1 = u;
  double tem5 = 9999.9;
  double sineo1 = 0.0, coseo1 = 0.0;
  for (int ktr = 1; std::fabs(tem5) >= 1.0e-12 && ktr <= 10; ++ktr) {
    sineo1 = std::sin(eo1);
    coseo1 = std::cos(eo1);
    tem5 = 1.0 - coseo1 * axnl - sineo1 * aynl;
    tem5 = (u - aynl * coseo1 + axnl * sineo1 - eo1) / tem5;
    if (std::fabs(tem5) >= 0.95) tem5 = tem5 > 0.0 ? 0.95 : -0.95;
    eo1 += tem5;
  }

  // ----- short-period preliminary quantities --------------------------------
  const double ecose = axnl * coseo1 + aynl * sineo1;
  const double esine = axnl * sineo1 - aynl * coseo1;
  const double el2 = axnl * axnl + aynl * aynl;
  const double pl = am * (1.0 - el2);
  if (pl < 0.0) domain_fail("semi-latus rectum went negative");

  const double rl = am * (1.0 - ecose);
  const double rdotl = std::sqrt(am) * esine / rl;
  const double rvdotl = std::sqrt(pl) / rl;
  const double betal = std::sqrt(1.0 - el2);
  temp = esine / (1.0 + betal);
  const double sinu = am / rl * (sineo1 - aynl - axnl * temp);
  const double cosu = am / rl * (coseo1 - axnl + aynl * temp);
  double su = std::atan2(sinu, cosu);
  const double sin2u = (cosu + cosu) * sinu;
  const double cos2u = 1.0 - 2.0 * sinu * sinu;
  temp = 1.0 / pl;
  const double temp1 = 0.5 * kJ2 * temp;
  const double temp2 = temp1 * temp;

  const double mrt =
      rl * (1.0 - 1.5 * temp2 * betal * p.con41) +
      0.5 * temp1 * p.x1mth2 * cos2u;
  su = su - 0.25 * temp2 * p.x7thm1 * sin2u;
  const double xnode = nodep + 1.5 * temp2 * cosip * sin2u;
  const double xinc = xincp + 1.5 * temp2 * cosip * sinip * cos2u;
  const double mvt = rdotl - nm * temp1 * p.x1mth2 * sin2u / kXke;
  const double rvdot =
      rvdotl + nm * temp1 * (p.x1mth2 * cos2u + 1.5 * p.con41) / kXke;

  // ----- orientation vectors and state --------------------------------------
  const double sinsu = std::sin(su);
  const double cossu = std::cos(su);
  const double snod = std::sin(xnode);
  const double cnod = std::cos(xnode);
  const double sini = std::sin(xinc);
  const double cosi = std::cos(xinc);
  const double xmx = -snod * cosi;
  const double xmy = cnod * cosi;
  const util::Vec3 uvec{xmx * sinsu + cnod * cossu,
                        xmy * sinsu + snod * cossu, sini * sinsu};
  const util::Vec3 vvec{xmx * cossu - cnod * sinsu,
                        xmy * cossu - snod * sinsu, sini * cossu};

  if (mrt < 1.0) domain_fail("satellite has decayed");

  const double vkmpersec = kEarthRadiusKm * kXke / 60.0;
  TemeState st;
  st.position_km = uvec * (mrt * kEarthRadiusKm);
  st.velocity_km_s = (uvec * mvt + vvec * rvdot) * vkmpersec;
  return st;
}

}  // namespace dgs::orbit
