// Umbrella header: the full DGS public API.
//
// DGS — a distributed and hybrid ground station network for LEO satellites
// (Vasisht & Chandra, HotNets '20).  Typical usage:
//
//   auto stations = dgs::groundseg::generate_dgs_stations(net_opts);
//   auto sats     = dgs::groundseg::generate_constellation(net_opts, epoch);
//   dgs::weather::SyntheticWeatherProvider wx(seed, epoch, 24.0);
//   dgs::core::SimulationOptions sim_opts{.start = epoch};
//   dgs::core::Simulator sim(sats, stations, &wx, sim_opts);
//   auto result = sim.run();
//   std::cout << dgs::util::summary_row(result.latency_minutes, "min");
#pragma once

#include "src/backend/backhaul.h"    // IWYU pragma: export
#include "src/backend/station_edge.h"   // IWYU pragma: export
#include "src/core/agenda.h"         // IWYU pragma: export
#include "src/core/data_queue.h"     // IWYU pragma: export
#include "src/core/lookahead.h"      // IWYU pragma: export
#include "src/core/market.h"         // IWYU pragma: export
#include "src/core/matching.h"       // IWYU pragma: export
#include "src/core/plan.h"           // IWYU pragma: export
#include "src/core/report.h"         // IWYU pragma: export
#include "src/core/scheduler.h"      // IWYU pragma: export
#include "src/core/simulator.h"      // IWYU pragma: export
#include "src/core/value.h"          // IWYU pragma: export
#include "src/core/visibility.h"     // IWYU pragma: export
#include "src/faults/fault_plan.h"   // IWYU pragma: export
#include "src/faults/profiles.h"     // IWYU pragma: export
#include "src/groundseg/io.h"        // IWYU pragma: export
#include "src/groundseg/network_gen.h"  // IWYU pragma: export
#include "src/link/budget.h"         // IWYU pragma: export
#include "src/link/doppler.h"        // IWYU pragma: export
#include "src/link/dvbs2_framing.h"  // IWYU pragma: export
#include "src/link/ttc.h"            // IWYU pragma: export
#include "src/orbit/groundtrack.h"   // IWYU pragma: export
#include "src/orbit/passes.h"        // IWYU pragma: export
#include "src/orbit/sun.h"           // IWYU pragma: export
#include "src/util/angles.h"         // IWYU pragma: export
#include "src/util/stats.h"          // IWYU pragma: export
#include "src/weather/synthetic.h"   // IWYU pragma: export
