
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_agenda.cpp" "tests/CMakeFiles/dgs_tests.dir/test_agenda.cpp.o" "gcc" "tests/CMakeFiles/dgs_tests.dir/test_agenda.cpp.o.d"
  "/root/repo/tests/test_antenna.cpp" "tests/CMakeFiles/dgs_tests.dir/test_antenna.cpp.o" "gcc" "tests/CMakeFiles/dgs_tests.dir/test_antenna.cpp.o.d"
  "/root/repo/tests/test_b_matching.cpp" "tests/CMakeFiles/dgs_tests.dir/test_b_matching.cpp.o" "gcc" "tests/CMakeFiles/dgs_tests.dir/test_b_matching.cpp.o.d"
  "/root/repo/tests/test_backend.cpp" "tests/CMakeFiles/dgs_tests.dir/test_backend.cpp.o" "gcc" "tests/CMakeFiles/dgs_tests.dir/test_backend.cpp.o.d"
  "/root/repo/tests/test_beams.cpp" "tests/CMakeFiles/dgs_tests.dir/test_beams.cpp.o" "gcc" "tests/CMakeFiles/dgs_tests.dir/test_beams.cpp.o.d"
  "/root/repo/tests/test_budget.cpp" "tests/CMakeFiles/dgs_tests.dir/test_budget.cpp.o" "gcc" "tests/CMakeFiles/dgs_tests.dir/test_budget.cpp.o.d"
  "/root/repo/tests/test_budget_property.cpp" "tests/CMakeFiles/dgs_tests.dir/test_budget_property.cpp.o" "gcc" "tests/CMakeFiles/dgs_tests.dir/test_budget_property.cpp.o.d"
  "/root/repo/tests/test_clouds_gases.cpp" "tests/CMakeFiles/dgs_tests.dir/test_clouds_gases.cpp.o" "gcc" "tests/CMakeFiles/dgs_tests.dir/test_clouds_gases.cpp.o.d"
  "/root/repo/tests/test_crc32.cpp" "tests/CMakeFiles/dgs_tests.dir/test_crc32.cpp.o" "gcc" "tests/CMakeFiles/dgs_tests.dir/test_crc32.cpp.o.d"
  "/root/repo/tests/test_data_queue.cpp" "tests/CMakeFiles/dgs_tests.dir/test_data_queue.cpp.o" "gcc" "tests/CMakeFiles/dgs_tests.dir/test_data_queue.cpp.o.d"
  "/root/repo/tests/test_dvbs2.cpp" "tests/CMakeFiles/dgs_tests.dir/test_dvbs2.cpp.o" "gcc" "tests/CMakeFiles/dgs_tests.dir/test_dvbs2.cpp.o.d"
  "/root/repo/tests/test_dvbs2_framing.cpp" "tests/CMakeFiles/dgs_tests.dir/test_dvbs2_framing.cpp.o" "gcc" "tests/CMakeFiles/dgs_tests.dir/test_dvbs2_framing.cpp.o.d"
  "/root/repo/tests/test_frames.cpp" "tests/CMakeFiles/dgs_tests.dir/test_frames.cpp.o" "gcc" "tests/CMakeFiles/dgs_tests.dir/test_frames.cpp.o.d"
  "/root/repo/tests/test_groundtrack.cpp" "tests/CMakeFiles/dgs_tests.dir/test_groundtrack.cpp.o" "gcc" "tests/CMakeFiles/dgs_tests.dir/test_groundtrack.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/dgs_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/dgs_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_io.cpp" "tests/CMakeFiles/dgs_tests.dir/test_io.cpp.o" "gcc" "tests/CMakeFiles/dgs_tests.dir/test_io.cpp.o.d"
  "/root/repo/tests/test_kepler.cpp" "tests/CMakeFiles/dgs_tests.dir/test_kepler.cpp.o" "gcc" "tests/CMakeFiles/dgs_tests.dir/test_kepler.cpp.o.d"
  "/root/repo/tests/test_lookahead.cpp" "tests/CMakeFiles/dgs_tests.dir/test_lookahead.cpp.o" "gcc" "tests/CMakeFiles/dgs_tests.dir/test_lookahead.cpp.o.d"
  "/root/repo/tests/test_market.cpp" "tests/CMakeFiles/dgs_tests.dir/test_market.cpp.o" "gcc" "tests/CMakeFiles/dgs_tests.dir/test_market.cpp.o.d"
  "/root/repo/tests/test_matching.cpp" "tests/CMakeFiles/dgs_tests.dir/test_matching.cpp.o" "gcc" "tests/CMakeFiles/dgs_tests.dir/test_matching.cpp.o.d"
  "/root/repo/tests/test_matching_bruteforce.cpp" "tests/CMakeFiles/dgs_tests.dir/test_matching_bruteforce.cpp.o" "gcc" "tests/CMakeFiles/dgs_tests.dir/test_matching_bruteforce.cpp.o.d"
  "/root/repo/tests/test_network_gen.cpp" "tests/CMakeFiles/dgs_tests.dir/test_network_gen.cpp.o" "gcc" "tests/CMakeFiles/dgs_tests.dir/test_network_gen.cpp.o.d"
  "/root/repo/tests/test_passes.cpp" "tests/CMakeFiles/dgs_tests.dir/test_passes.cpp.o" "gcc" "tests/CMakeFiles/dgs_tests.dir/test_passes.cpp.o.d"
  "/root/repo/tests/test_plan.cpp" "tests/CMakeFiles/dgs_tests.dir/test_plan.cpp.o" "gcc" "tests/CMakeFiles/dgs_tests.dir/test_plan.cpp.o.d"
  "/root/repo/tests/test_plan_integration.cpp" "tests/CMakeFiles/dgs_tests.dir/test_plan_integration.cpp.o" "gcc" "tests/CMakeFiles/dgs_tests.dir/test_plan_integration.cpp.o.d"
  "/root/repo/tests/test_priority.cpp" "tests/CMakeFiles/dgs_tests.dir/test_priority.cpp.o" "gcc" "tests/CMakeFiles/dgs_tests.dir/test_priority.cpp.o.d"
  "/root/repo/tests/test_rain.cpp" "tests/CMakeFiles/dgs_tests.dir/test_rain.cpp.o" "gcc" "tests/CMakeFiles/dgs_tests.dir/test_rain.cpp.o.d"
  "/root/repo/tests/test_report.cpp" "tests/CMakeFiles/dgs_tests.dir/test_report.cpp.o" "gcc" "tests/CMakeFiles/dgs_tests.dir/test_report.cpp.o.d"
  "/root/repo/tests/test_retransmit.cpp" "tests/CMakeFiles/dgs_tests.dir/test_retransmit.cpp.o" "gcc" "tests/CMakeFiles/dgs_tests.dir/test_retransmit.cpp.o.d"
  "/root/repo/tests/test_scheduler.cpp" "tests/CMakeFiles/dgs_tests.dir/test_scheduler.cpp.o" "gcc" "tests/CMakeFiles/dgs_tests.dir/test_scheduler.cpp.o.d"
  "/root/repo/tests/test_sgp4.cpp" "tests/CMakeFiles/dgs_tests.dir/test_sgp4.cpp.o" "gcc" "tests/CMakeFiles/dgs_tests.dir/test_sgp4.cpp.o.d"
  "/root/repo/tests/test_sgp4_property.cpp" "tests/CMakeFiles/dgs_tests.dir/test_sgp4_property.cpp.o" "gcc" "tests/CMakeFiles/dgs_tests.dir/test_sgp4_property.cpp.o.d"
  "/root/repo/tests/test_simulator.cpp" "tests/CMakeFiles/dgs_tests.dir/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/dgs_tests.dir/test_simulator.cpp.o.d"
  "/root/repo/tests/test_slew.cpp" "tests/CMakeFiles/dgs_tests.dir/test_slew.cpp.o" "gcc" "tests/CMakeFiles/dgs_tests.dir/test_slew.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/dgs_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/dgs_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_storage_doppler.cpp" "tests/CMakeFiles/dgs_tests.dir/test_storage_doppler.cpp.o" "gcc" "tests/CMakeFiles/dgs_tests.dir/test_storage_doppler.cpp.o.d"
  "/root/repo/tests/test_sun.cpp" "tests/CMakeFiles/dgs_tests.dir/test_sun.cpp.o" "gcc" "tests/CMakeFiles/dgs_tests.dir/test_sun.cpp.o.d"
  "/root/repo/tests/test_time.cpp" "tests/CMakeFiles/dgs_tests.dir/test_time.cpp.o" "gcc" "tests/CMakeFiles/dgs_tests.dir/test_time.cpp.o.d"
  "/root/repo/tests/test_tle.cpp" "tests/CMakeFiles/dgs_tests.dir/test_tle.cpp.o" "gcc" "tests/CMakeFiles/dgs_tests.dir/test_tle.cpp.o.d"
  "/root/repo/tests/test_ttc.cpp" "tests/CMakeFiles/dgs_tests.dir/test_ttc.cpp.o" "gcc" "tests/CMakeFiles/dgs_tests.dir/test_ttc.cpp.o.d"
  "/root/repo/tests/test_value.cpp" "tests/CMakeFiles/dgs_tests.dir/test_value.cpp.o" "gcc" "tests/CMakeFiles/dgs_tests.dir/test_value.cpp.o.d"
  "/root/repo/tests/test_visibility.cpp" "tests/CMakeFiles/dgs_tests.dir/test_visibility.cpp.o" "gcc" "tests/CMakeFiles/dgs_tests.dir/test_visibility.cpp.o.d"
  "/root/repo/tests/test_weather.cpp" "tests/CMakeFiles/dgs_tests.dir/test_weather.cpp.o" "gcc" "tests/CMakeFiles/dgs_tests.dir/test_weather.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dgs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/groundseg/CMakeFiles/dgs_groundseg.dir/DependInfo.cmake"
  "/root/repo/build/src/weather/CMakeFiles/dgs_weather.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/dgs_link.dir/DependInfo.cmake"
  "/root/repo/build/src/orbit/CMakeFiles/dgs_orbit.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dgs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/backend/CMakeFiles/dgs_backend.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
