// Steppable simulation session (service mode, DESIGN.md §16).
//
// core::Session is the stateful heart of the simulator: it owns every piece
// of mutable per-run state that Simulator::run() used to keep in locals —
// onboard queues, station edge queues, the horizon plan, fault masks, the
// warm-start matcher, contact lifecycle tracking, the result accumulators —
// and exposes the run as an explicit state machine:
//
//   * step() advances exactly one scheduling quantum;
//   * report() renders a full SimulationResult at ANY point mid-run;
//   * snapshot()/restore() round-trip the whole session through the
//     versioned `dgs.checkpoint.v1` artifact (checkpoint.h) such that a
//     restored run's remaining steps — Report, Prometheus exposition, and
//     event JSONL — are byte-identical to an uninterrupted run, at any
//     thread count;
//   * multi-tenant fair-share arbitration (SimulationOptions::tenants,
//     TenantArbiter) with per-tenant accounting and metrics.
//
// Simulator (simulator.h) survives as the run-to-completion convenience
// wrapper: Simulator::run() == Session(...).run_to_end().
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "src/backend/station_edge.h"
#include "src/core/lookahead.h"
#include "src/core/simulator.h"
#include "src/obs/events.h"

namespace dgs::core {

class Session {
 public:
  /// Same contract as the Simulator constructor: `actual_weather` decides
  /// transmission outcomes (nullptr = permanently clear skies), the
  /// station-subset restriction is applied before anything else, and
  /// invalid options throw std::invalid_argument rendering the
  /// OptionsError.
  Session(std::vector<groundseg::SatelliteConfig> sats,
          std::vector<groundseg::GroundStation> stations,
          const weather::WeatherProvider* actual_weather,
          const SimulationOptions& opts);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  int num_satellites() const { return num_sats_; }
  int num_stations() const { return num_stations_; }
  std::int64_t step_index() const { return step_; }
  std::int64_t num_steps() const { return steps_; }
  bool done() const { return step_ >= steps_; }
  /// True once end-of-horizon bookkeeping (open-contact flush, final
  /// dropped-bytes metrics, conservation audit) has run.
  bool finalized() const { return finalized_; }

  /// Advances exactly one scheduling quantum.  Throws when done().
  /// The final step additionally finalizes the session.
  void step();

  /// Steps until the sim clock reaches `t_hours` (or the horizon ends);
  /// returns the number of steps executed.
  std::int64_t run_until_hours(double t_hours);

  /// Steps to the end of the horizon and returns the final report.
  /// A fresh session's run_to_end() is exactly Simulator::run().
  SimulationResult run_to_end();

  /// Renders the full result at the CURRENT step.  Callable mid-run: the
  /// derived figures (per-satellite backlog, dropped totals, utilization,
  /// per-tenant rows) are computed against the live state, and calling it
  /// does not perturb the run.
  SimulationResult report() const;

  /// Writes a complete `dgs.checkpoint.v1` snapshot of the session.
  void snapshot(std::ostream& out) const;

  /// Reconstructs a session from a snapshot.  The scenario inputs must
  /// match the snapshotting run (satellites, stations, weather, options up
  /// to execution-irrelevant fields — thread count and observability
  /// sinks); mismatches are rejected via the header identity and
  /// options_crc32().  Throws std::invalid_argument on a malformed or
  /// mismatched checkpoint.
  static std::unique_ptr<Session> restore(
      std::istream& in, std::vector<groundseg::SatelliteConfig> sats,
      std::vector<groundseg::GroundStation> stations,
      const weather::WeatherProvider* actual_weather,
      const SimulationOptions& opts);

  /// CRC32 over the canonical encoding of every option that affects the
  /// simulated trajectory.  Excluded on purpose: `parallel` (any thread
  /// count produces identical results — restoring under a different count
  /// is the point), the metrics/events sinks, and edge_value_modifier
  /// (opaque callable; runs using it cannot assert checkpoint identity
  /// on it).
  std::uint32_t options_crc32() const;

 private:
  struct SimMetrics {
    obs::Counter* generated_bytes = nullptr;
    obs::Counter* delivered_bytes = nullptr;
    obs::Counter* dropped_bytes = nullptr;
    obs::Counter* wasted_bytes = nullptr;
    obs::Counter* requeued_bytes = nullptr;
    obs::Counter* assignments = nullptr;
    obs::Counter* failed_assignments = nullptr;
    obs::Counter* slew_events = nullptr;
    obs::Counter* steps = nullptr;
    obs::Counter* ack_batches = nullptr;
    obs::Counter* plan_uploads = nullptr;
    obs::Counter* backhaul_received = nullptr;
    obs::Counter* backhaul_uploaded = nullptr;
    obs::Gauge* backlog_bytes = nullptr;
    obs::Gauge* pending_ack_bytes = nullptr;
    obs::Gauge* station_queued_bytes = nullptr;
    obs::Histogram* latency_minutes = nullptr;
  };
  struct FaultMetrics {
    obs::Counter* outage_transitions = nullptr;
    obs::Counter* outage_lost_bytes = nullptr;
    obs::Counter* ack_retries = nullptr;
    obs::Counter* replans = nullptr;
    obs::Counter* plan_upload_failures = nullptr;
    obs::Counter* backhaul_degraded_steps = nullptr;
    obs::Gauge* stations_down = nullptr;
  };
  /// Per-tenant series, indexed by tenant declaration order; empty unless
  /// both a registry and tenants are configured.
  struct TenantMetrics {
    std::vector<obs::Counter*> delivered;
    std::vector<obs::Counter*> assignments;
    std::vector<obs::Gauge*> share;
  };
  /// Contact lifecycle tracking for the event log.
  struct OpenContact {
    const link::ModCod* modcod = nullptr;
    int held_steps = 0;
    std::int64_t last_step = -1;
  };

  void register_metrics();
  /// End-of-horizon bookkeeping; idempotent.
  void finalize();
  double realized_rate_bps(const ContactEdge& e,
                           const util::Epoch& when) const;
  /// Applies a validated checkpoint buffer to this (freshly constructed)
  /// session.  Throws std::invalid_argument on any mismatch.
  void apply_checkpoint(std::string_view data);

  // --- Immutable run inputs ------------------------------------------------
  std::vector<groundseg::SatelliteConfig> sats_;
  std::vector<groundseg::GroundStation> stations_;
  const weather::WeatherProvider* actual_wx_;
  SimulationOptions opts_;
  const obs::StepClock clock_;

  // --- Derived configuration (fixed after construction) --------------------
  int num_sats_ = 0;
  int num_stations_ = 0;
  double dt_ = 0.0;
  std::int64_t steps_ = 0;
  int plan_window_steps_ = 0;
  bool station_faults_ = false;
  bool backhaul_faults_ = false;

  // --- Fixed machinery -----------------------------------------------------
  std::unique_ptr<util::ThreadPool> pool_;
  std::unique_ptr<VisibilityEngine> engine_;
  std::unique_ptr<Scheduler> scheduler_;
  std::optional<faults::FaultTimeline> timeline_;
  std::optional<TenantArbiter> arbiter_;
  SimMetrics om_;
  FaultMetrics fm_;
  TenantMetrics tm_;
  obs::EventLog* events_ = nullptr;

  // --- Mutable per-run state (everything snapshot() serializes) ------------
  std::map<std::pair<int, int>, OpenContact> open_contacts_;
  std::vector<char> down_;              ///< Scratch, refilled each step.
  std::vector<char> prev_down_;
  std::vector<double> prev_backhaul_mult_;
  std::uint64_t cache_hits_prev_ = 0;
  std::uint64_t cache_misses_prev_ = 0;
  std::vector<OnboardQueue> queues_;
  std::vector<util::Epoch> last_plan_;
  std::vector<std::int64_t> station_busy_;
  std::vector<double> leads_;           ///< Scratch, refilled each step.
  std::vector<int> prev_served_;
  std::vector<backend::StationEdgeQueue> edge_queues_;
  HorizonPlan plan_;
  std::int64_t plan_origin_ = -1;
  std::vector<util::SampleSet> tenant_latency_;
  std::vector<std::int64_t> tenant_sla_ok_;
  SimulationResult res_;                ///< Accumulators; derived fields
                                        ///< are filled by report().
  std::int64_t step_ = 0;
  bool finalized_ = false;
};

}  // namespace dgs::core
