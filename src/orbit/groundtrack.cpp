#include "src/orbit/groundtrack.h"

#include <cmath>

#include "src/util/angles.h"
#include "src/util/check.h"
#include "src/util/constants.h"

namespace dgs::orbit {
namespace {
constexpr double kEarthRadiusKm = 6371.0;
}

std::vector<GroundTrackPoint> ground_track(const Sgp4& sat,
                                           const util::Epoch& start,
                                           const util::Epoch& end,
                                           double step_seconds) {
  DGS_ENSURE(!(end < start), "end precedes start by "
                                 << start.seconds_since(end) << " s");
  DGS_ENSURE_GT(step_seconds, 0.0);
  std::vector<GroundTrackPoint> track;
  for (util::Epoch t = start; !(end < t); t = t.plus_seconds(step_seconds)) {
    const TemeState st = sat.propagate_to(t);
    track.push_back(GroundTrackPoint{t, subsatellite_point(st.position_km, t)});
  }
  return track;
}

double node_shift_per_orbit_rad(const Sgp4& sat) {
  return util::kEarthRotationRadPerSec * sat.period_minutes() * 60.0;
}

std::vector<util::Epoch> target_visits(const Sgp4& sat, const Geodetic& target,
                                       double swath_half_width_km,
                                       const util::Epoch& start,
                                       const util::Epoch& end,
                                       double step_seconds) {
  DGS_ENSURE_GT(swath_half_width_km, 0.0);
  const double swath_angle = swath_half_width_km / kEarthRadiusKm;
  std::vector<util::Epoch> visits;
  bool in_view = false;
  for (const GroundTrackPoint& p :
       ground_track(sat, start, end, step_seconds)) {
    const double sep = util::great_circle_angle(
        p.geodetic.latitude_rad, p.geodetic.longitude_rad,
        target.latitude_rad, target.longitude_rad);
    const bool covered = sep <= swath_angle;
    if (covered && !in_view) visits.push_back(p.when);  // record entries
    in_view = covered;
  }
  return visits;
}

CoverageStats coverage(const std::vector<Sgp4>& sats,
                       double swath_half_width_km, const util::Epoch& start,
                       const util::Epoch& end, int lat_cells,
                       double step_seconds) {
  DGS_ENSURE_GE(lat_cells, 2);
  DGS_ENSURE_GT(swath_half_width_km, 0.0);
  // Area-weighted grid: rows span latitude uniformly; the number of
  // longitude cells per row scales with cos(lat) so cells are near-equal
  // area.
  struct Row {
    int cols;
    std::vector<char> hit;
  };
  std::vector<Row> grid(lat_cells);
  const int equator_cols = 2 * lat_cells;
  for (int r = 0; r < lat_cells; ++r) {
    const double lat =
        (-90.0 + 180.0 * (r + 0.5) / lat_cells) * util::kRadPerDeg;
    const int cols =
        std::max(1, static_cast<int>(std::lround(equator_cols *
                                                 std::cos(lat))));
    grid[r] = Row{cols, std::vector<char>(cols, 0)};
  }

  const double swath_angle = swath_half_width_km / kEarthRadiusKm;
  // Mark every cell whose centre is within the swath of a track sample.
  // The latitude band touched by one sample spans +- swath_angle.
  for (const Sgp4& sat : sats) {
    for (const GroundTrackPoint& p :
         ground_track(sat, start, end, step_seconds)) {
      const double lat = p.geodetic.latitude_rad;
      const double lon = p.geodetic.longitude_rad;
      const int r_lo = std::max(
          0, static_cast<int>(std::floor(
                 (lat - swath_angle + util::kPi / 2) / util::kPi * lat_cells)));
      const int r_hi = std::min(
          lat_cells - 1,
          static_cast<int>(std::floor(
              (lat + swath_angle + util::kPi / 2) / util::kPi * lat_cells)));
      for (int r = r_lo; r <= r_hi; ++r) {
        Row& row = grid[r];
        const double row_lat =
            (-90.0 + 180.0 * (r + 0.5) / lat_cells) * util::kRadPerDeg;
        for (int c = 0; c < row.cols; ++c) {
          if (row.hit[c]) continue;
          const double cell_lon =
              -util::kPi + util::kTwoPi * (c + 0.5) / row.cols;
          if (util::great_circle_angle(lat, lon, row_lat, cell_lon) <=
              swath_angle) {
            row.hit[c] = 1;
          }
        }
      }
    }
  }

  CoverageStats stats;
  for (const Row& row : grid) {
    for (char h : row.hit) {
      ++stats.cells_total;
      if (h) ++stats.cells_covered;
    }
  }
  stats.covered_fraction =
      stats.cells_total > 0
          ? static_cast<double>(stats.cells_covered) / stats.cells_total
          : 0.0;
  return stats;
}

}  // namespace dgs::orbit
