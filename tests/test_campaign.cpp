// Monte-Carlo campaign runner: artifact-level determinism, per-sample
// seed derivation, resume semantics, and worker-count invariance
// (DESIGN.md §12).  The headline properties:
//   - same fault seed  -> byte-equal summary / metrics / events artifacts,
//   - different seeds  -> different fault-event sequences,
//   - resume and worker count never change a byte of the aggregate.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/campaign/campaign.h"
#include "src/faults/fault_rng.h"
#include "tests/json_lite.h"

namespace dgs::campaign {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in.good()) << p;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Fresh per-test scratch directory under gtest's temp root.
std::string temp_root(const char* name) {
  const fs::path p = fs::path(::testing::TempDir()) / name;
  fs::remove_all(p);
  return p.string();
}

/// A campaign small enough for unit tests but with every fault channel
/// active (storm = churn + flaky-net + brownout).
CampaignOptions small_opts(const std::string& dir) {
  CampaignOptions o;
  o.profile = "storm";
  o.campaign_seed = 1;
  o.samples = 6;
  o.workers = 1;
  o.out_dir = dir;
  o.duration_hours = 2.0;
  o.num_satellites = 4;
  o.num_stations = 10;
  return o;
}

/// The fault-injection subsequence of an events.jsonl body: the lines
/// whose "type" is one of the fault event types.  Contact/transfer events
/// are excluded so the comparison isolates the seeded fault draws.
std::vector<std::string> fault_lines(const std::string& jsonl) {
  static const std::set<std::string> kFaultTypes = {
      "outage_begin",         "outage_end",      "outage_loss",
      "ack_relay_retry",      "plan_upload_failed", "replan",
      "backhaul_fault_begin", "backhaul_fault_end"};
  std::vector<std::string> out;
  std::istringstream in(jsonl);
  std::string line;
  while (std::getline(in, line)) {
    std::string type;
    if (dgs::testing::json_string_field(line, "type", &type) &&
        kFaultTypes.count(type)) {
      out.push_back(line);
    }
  }
  return out;
}

TEST(CampaignSeeds, DerivationIsPureAndDecorrelated) {
  std::set<std::uint64_t> seen;
  for (std::int64_t i = 0; i < 256; ++i) {
    const std::uint64_t s = faults::campaign_sample_seed(7, i);
    // Matches the documented keyed-SplitMix64 chain exactly.
    EXPECT_EQ(s, faults::mix_key(faults::mix_key(7, faults::kStreamCampaign),
                                 static_cast<std::uint64_t>(i)));
    seen.insert(s);
  }
  // No collisions across the campaign and no collision with the raw seed.
  EXPECT_EQ(seen.size(), 256u);
  EXPECT_FALSE(seen.count(7));
}

TEST(CampaignDeterminism, SameSeedSameArtifactBytes) {
  const std::string dir_a = temp_root("camp_det_a");
  const std::string dir_b = temp_root("camp_det_b");
  CampaignOptions a = small_opts(dir_a);
  CampaignOptions b = small_opts(dir_b);
  fs::create_directories(sample_dir(a, 3));
  fs::create_directories(sample_dir(b, 3));
  run_sample(a, 3);
  run_sample(b, 3);
  for (const char* artifact : {"summary.json", "metrics.txt",
                               "events.jsonl"}) {
    const std::string bytes_a =
        slurp(fs::path(sample_dir(a, 3)) / artifact);
    EXPECT_EQ(bytes_a, slurp(fs::path(sample_dir(b, 3)) / artifact))
        << artifact;
    EXPECT_FALSE(bytes_a.empty()) << artifact;
  }
  std::string why;
  EXPECT_TRUE(dgs::testing::summary_schema_valid(
      slurp(fs::path(sample_dir(a, 3)) / "summary.json"), &why))
      << why;
  EXPECT_TRUE(dgs::testing::events_schema_valid(
      slurp(fs::path(sample_dir(a, 3)) / "events.jsonl"), &why))
      << why;
}

TEST(CampaignDeterminism, DifferentSeedsDifferentFaultSequences) {
  const std::string dir_a = temp_root("camp_seed_a");
  const std::string dir_b = temp_root("camp_seed_b");
  CampaignOptions a = small_opts(dir_a);
  CampaignOptions b = small_opts(dir_b);
  b.campaign_seed = 2;
  fs::create_directories(sample_dir(a, 0));
  fs::create_directories(sample_dir(b, 0));
  run_sample(a, 0);
  run_sample(b, 0);
  const auto faults_a =
      fault_lines(slurp(fs::path(sample_dir(a, 0)) / "events.jsonl"));
  const auto faults_b =
      fault_lines(slurp(fs::path(sample_dir(b, 0)) / "events.jsonl"));
  // Storm injects faults on any seed at this horizon, and the two seeds
  // must draw different sequences.
  EXPECT_FALSE(faults_a.empty());
  EXPECT_FALSE(faults_b.empty());
  EXPECT_NE(faults_a, faults_b);
}

TEST(CampaignDeterminism, SampleIndexSelectsDifferentScenario) {
  const std::string dir = temp_root("camp_idx");
  const CampaignOptions o = small_opts(dir);
  fs::create_directories(sample_dir(o, 0));
  fs::create_directories(sample_dir(o, 1));
  run_sample(o, 0);
  run_sample(o, 1);
  EXPECT_NE(fault_lines(slurp(fs::path(sample_dir(o, 0)) / "events.jsonl")),
            fault_lines(slurp(fs::path(sample_dir(o, 1)) / "events.jsonl")));
}

TEST(Campaign, EndToEndResumeAndAggregateStability) {
  const std::string dir = temp_root("camp_e2e");
  CampaignOptions o = small_opts(dir);
  o.workers = 2;

  const CampaignResult first = run_campaign(o);
  EXPECT_EQ(first.samples, o.samples);
  EXPECT_EQ(first.computed, o.samples);
  EXPECT_EQ(first.reused, 0);
  EXPECT_FALSE(first.metrics.empty());
  EXPECT_FALSE(validate_campaign_dir(dir).has_value());
  const std::string aggregate = slurp(aggregate_path(o));
  std::string why;
  EXPECT_TRUE(dgs::testing::json_valid(aggregate));

  // Rerun: everything is done, nothing recomputes, same bytes.
  const CampaignResult rerun = run_campaign(o);
  EXPECT_EQ(rerun.reused, o.samples);
  EXPECT_EQ(rerun.computed, 0);
  EXPECT_EQ(slurp(aggregate_path(o)), aggregate);

  // Kill two shards (delete their done markers) and resume: exactly those
  // recompute and the aggregate is byte-identical.
  fs::remove(fs::path(sample_dir(o, 1)) / "summary.json");
  fs::remove(fs::path(sample_dir(o, 4)) / "summary.json");
  const CampaignResult resumed = run_campaign(o);
  EXPECT_EQ(resumed.reused, o.samples - 2);
  EXPECT_EQ(resumed.computed, 2);
  EXPECT_EQ(slurp(aggregate_path(o)), aggregate);
  EXPECT_FALSE(validate_campaign_dir(dir).has_value());
}

TEST(Campaign, AggregateInvariantToWorkerCount) {
  const std::string dir_serial = temp_root("camp_w1");
  const std::string dir_forked = temp_root("camp_w2");
  CampaignOptions serial = small_opts(dir_serial);
  CampaignOptions forked = small_opts(dir_forked);
  serial.samples = forked.samples = 4;
  serial.workers = 1;
  forked.workers = 2;
  run_campaign(serial);
  run_campaign(forked);
  EXPECT_EQ(slurp(aggregate_path(serial)), slurp(aggregate_path(forked)));
  // Per-sample artifacts match too: sharding only changes who computes.
  for (int i = 0; i < serial.samples; ++i) {
    EXPECT_EQ(slurp(fs::path(sample_dir(serial, i)) / "summary.json"),
              slurp(fs::path(sample_dir(forked, i)) / "summary.json"))
        << i;
  }
}

TEST(Campaign, ManifestMismatchIsRejected) {
  const std::string dir = temp_root("camp_manifest");
  CampaignOptions o = small_opts(dir);
  o.samples = 2;
  run_campaign(o);
  CampaignOptions changed = o;
  changed.profile = "churn";
  EXPECT_THROW(run_campaign(changed), std::runtime_error);
  // The original campaign directory is untouched and still valid.
  EXPECT_FALSE(validate_campaign_dir(dir).has_value());
}

TEST(Campaign, OptionsValidateCatchesBadFields) {
  CampaignOptions o = small_opts(temp_root("camp_opts"));
  EXPECT_FALSE(o.validate().has_value());
  o.profile = "hurricane";
  ASSERT_TRUE(o.validate().has_value());
  EXPECT_EQ(o.validate()->field, "profile");
  o = small_opts("x");
  o.samples = 0;
  EXPECT_EQ(o.validate()->field, "samples");
  o = small_opts("x");
  o.workers = -1;
  EXPECT_EQ(o.validate()->field, "workers");
  o = small_opts("x");
  o.out_dir.clear();
  EXPECT_EQ(o.validate()->field, "out_dir");
}

TEST(Campaign, MetricsArtifactsAreOptional) {
  const std::string dir = temp_root("camp_no_sinks");
  CampaignOptions o = small_opts(dir);
  o.samples = 2;
  o.write_metrics = false;
  o.write_events = false;
  const CampaignResult r = run_campaign(o);
  EXPECT_EQ(r.computed, 2);
  EXPECT_FALSE(fs::exists(fs::path(sample_dir(o, 0)) / "metrics.txt"));
  EXPECT_FALSE(fs::exists(fs::path(sample_dir(o, 0)) / "events.jsonl"));
  EXPECT_FALSE(validate_campaign_dir(dir).has_value());
}

}  // namespace
}  // namespace dgs::campaign
