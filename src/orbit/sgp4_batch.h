// Constellation-scale SGP4: a whole fleet propagated per scheduling step.
//
// Sgp4Batch stores the derived constants of N element sets in SoA layout
// (one contiguous array per Sgp4Params field) and propagates every
// satellite to the same absolute epoch in one call, chunk-tiled through
// the deterministic ThreadPool.  Against N scalar Sgp4 objects this keeps
// the per-step working set dense (the scalar path walks 300+ bytes of
// object per satellite), shares one GMST rotation across the fleet for
// the TEME->ECEF step instead of recomputing it per satellite, and gives
// the per-satellite loop a branch-light body the compiler can pipeline.
//
// Determinism contract (DESIGN.md §14): every state is produced by the
// same sgp4_propagate kernel the scalar Sgp4 class calls, with identical
// per-satellite inputs, so batch output is bit-identical to the scalar
// path — per satellite, per epoch, at any thread count.  Chunk tiling
// writes disjoint per-index outputs only.
#pragma once

#include <span>
#include <vector>

#include "src/orbit/sgp4.h"
#include "src/util/thread_pool.h"

namespace dgs::orbit {

// The double-valued Sgp4Params fields, X-macro'd so the SoA scatter and
// gather can never drift from the struct definition.
#define DGS_SGP4_PARAM_FIELDS(X)                                        \
  X(ecco) X(inclo) X(nodeo) X(argpo) X(mo) X(no_unkozai) X(bstar)       \
  X(aycof) X(con41) X(cc1) X(cc4) X(cc5) X(d2) X(d3) X(d4)              \
  X(delmo) X(eta) X(argpdot) X(omgcof) X(sinmao) X(t2cof) X(t3cof)      \
  X(t4cof) X(t5cof) X(x1mth2) X(x7thm1) X(mdot) X(nodedot) X(xlcof)     \
  X(xmcof) X(nodecf)

class Sgp4Batch {
 public:
  /// Initializes every element set (same validation as Sgp4; throws
  /// std::domain_error on the first invalid one).
  explicit Sgp4Batch(std::span<const Tle> tles);

  int size() const { return static_cast<int>(epochs_.size()); }
  const util::Epoch& epoch(int sat) const {
    return epochs_[static_cast<std::size_t>(sat)];
  }

  /// State of one satellite at `when` — bit-identical to
  /// Sgp4(tle).propagate_to(when).
  TemeState propagate_one(int sat, const util::Epoch& when) const;

  /// TEME positions of the whole fleet at `when`, written to the
  /// index-aligned `out` (size() entries).  Chunk-tiled over `pool` when
  /// non-null; output is identical for any pool configuration.
  void positions_teme(const util::Epoch& when, std::span<util::Vec3> out,
                      util::ThreadPool* pool = nullptr) const;

  /// ECEF positions of the whole fleet at `when` (GMST rotation computed
  /// once and shared).  Bit-identical to rotating each satellite with
  /// orbit::teme_to_ecef.
  void positions_ecef(const util::Epoch& when, std::span<util::Vec3> out,
                      util::ThreadPool* pool = nullptr) const;

 private:
  /// Reassembles satellite `i`'s Sgp4Params from the per-field arrays.
  Sgp4Params gather(std::size_t i) const;

  // SoA storage: one array per Sgp4Params double field, all size()-long.
#define DGS_SGP4_DECL(name) std::vector<double> name##_;
  DGS_SGP4_PARAM_FIELDS(DGS_SGP4_DECL)
#undef DGS_SGP4_DECL
  std::vector<char> isimp_;
  std::vector<util::Epoch> epochs_;
};

}  // namespace dgs::orbit
