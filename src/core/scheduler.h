// The DGS downlink scheduler (paper §3.1).
//
// Per scheduling instant: build the contact graph (VisibilityEngine), weight
// each edge with the value function Phi applied to the data the satellite
// could move across it, then select a matching (stable by default).
#pragma once

#include <memory>

#include "src/core/market.h"
#include "src/core/matching.h"
#include "src/core/value.h"
#include "src/core/visibility.h"

namespace dgs::core {

struct SchedulerConfig {
  MatcherKind matcher = MatcherKind::kStable;
  ValueKind value = ValueKind::kLatency;
  /// Length of one scheduling quantum; converts edge rate to edge bytes.
  double quantum_seconds = 60.0;
  /// Optional hook scaling each edge's value after Phi — bidding (see
  /// BidMatrix::as_modifier), geographic SLAs, operator policy.
  EdgeValueModifier edge_value_modifier;
  /// Optional per-satellite value multipliers applied between Phi and
  /// edge_value_modifier: the tenant fair-share arbiter (TenantArbiter)
  /// points this at its scale vector.  Borrowed; the driver thread may
  /// rewrite the contents between instants, but they are fixed during one
  /// schedule_instant call and read per-index, so — unlike the stateful
  /// edge_value_modifier — the parallel weigh path stays bit-identical to
  /// serial.  Size must be >= the engine's satellite count.
  const std::vector<double>* sat_value_scale = nullptr;
  /// Warm-start the stable matcher from the previous instant
  /// (WarmStartMatcher).  Results are identical either way; this is a
  /// performance toggle only.  Applies to the point-to-point kStable path.
  bool warm_start = true;
};

class Scheduler {
 public:
  /// The engine is borrowed and must outlive the scheduler.  If the engine
  /// carries a metrics registry (VisibilityEngine::set_metrics, called
  /// before this constructor), the scheduler registers its own counters
  /// there and updates them on every schedule_instant call.
  Scheduler(const VisibilityEngine* engine, const SchedulerConfig& config);

  /// Computes the downlink assignments for instant `when`.
  /// `queues` holds each satellite's onboard buffer (size == num_sats);
  /// `forecast_lead_s` is each satellite's plan staleness (may be empty);
  /// `station_down` optionally marks failed stations.  Returned edges have
  /// `weight` filled in; at most one per satellite and at most
  /// `beam_count` per station.
  std::vector<ContactEdge> schedule_instant(
      const util::Epoch& when, const std::vector<OnboardQueue>& queues,
      std::span<const double> forecast_lead_s = {},
      std::span<const char> station_down = {}) const;

  const SchedulerConfig& config() const { return config_; }
  const ValueFunction& value_function() const { return *value_; }

  /// Checkpoint access (core::Session): the warm-start matcher whose
  /// carried-over state must survive a snapshot/restore round trip.
  WarmStartMatcher& warm_matcher() const { return warm_; }

 private:
  const VisibilityEngine* engine_;
  SchedulerConfig config_;
  std::unique_ptr<ValueFunction> value_;
  /// Warm-start state for the stable matcher.  Mutable: schedule_instant
  /// is logically const (identical results with or without the state);
  /// call from the thread driving the simulation only.
  mutable WarmStartMatcher warm_;
  /// Registry handles (null when the engine has no registry).
  obs::Counter* instants_ = nullptr;
  obs::Counter* matched_edges_ = nullptr;
  obs::Counter* warm_hits_ = nullptr;
  obs::Counter* cold_starts_ = nullptr;
};

}  // namespace dgs::core
