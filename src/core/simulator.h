// Whole-system discrete-time simulation (paper §4).
//
// Drives the DGS scheduler over a multi-hour horizon: satellites generate
// imagery continuously, the scheduler assigns downlinks per step, actual
// weather decides whether each scheduled MODCOD really closes, receive-only
// deliveries wait for acks via transmit-capable contacts (§3.3), and the
// harness collects the paper's metrics: per-chunk capture-to-ground latency,
// per-satellite end-of-horizon backlog, ack delays, storage high-water.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/core/scheduler.h"
#include "src/faults/fault_plan.h"
#include "src/obs/events.h"
#include "src/obs/metrics.h"
#include "src/util/stats.h"
#include "src/util/thread_pool.h"

namespace dgs::core {

/// A single invalid field found by SimulationOptions::validate():
/// which option is wrong and why, suitable for CLI error messages.
struct OptionsError {
  std::string field;    ///< e.g. "faults.ack_relay.loss_probability".
  std::string message;  ///< Human-readable constraint description.
};

struct SimulationOptions {
  util::Epoch start;
  double duration_hours = 24.0;
  double step_seconds = 60.0;
  /// Fault injection (robustness experiments; paper §1 calls the
  /// centralized link "a single point of failure"): scheduled/stochastic
  /// station outages, backhaul degradation, ack-relay Internet loss, and
  /// plan-upload failures, all reproducible from faults.seed.  See
  /// DESIGN.md §11.
  faults::FaultPlan faults;
  MatcherKind matcher = MatcherKind::kStable;
  ValueKind value = ValueKind::kLatency;
  /// Schedule with forecast weather (true) or assume clear sky (false,
  /// the weather-blind ablation).
  bool weather_aware = true;
  /// When true, a satellite's forecast error grows with the time since its
  /// last plan upload (transmit-capable contact) — the coupling the hybrid
  /// design introduces.  When false, plans are always fresh (lead 0).
  bool couple_forecast_to_plan_upload = true;
  /// Satellites start the horizon with this much backlog already queued
  /// (captured `initial_backlog_age_hours` ago), modelling steady state.
  double initial_backlog_bytes = 0.0;
  double initial_backlog_age_hours = 12.0;
  /// Latency-critical tier (paper §3.3 edge-compute / disaster imagery):
  /// this fraction of every satellite's production is tagged with
  /// `urgent_priority` instead of bulk priority 1.0.
  double urgent_fraction = 0.0;
  double urgent_priority = 8.0;
  /// > 0 enables the time-expanded look-ahead planner (the paper's future
  /// work): the schedule is recomputed as whole pass-block allocations
  /// every `lookahead_hours` instead of per-instant matching.  Composes
  /// with fault injection: faulted stations are excluded at plan time and
  /// the planner replans when an assigned station faults mid-window
  /// (DESIGN.md §11).
  double lookahead_hours = 0.0;
  /// > 0 models the station -> cloud backhaul (paper §3.3 edge compute):
  /// decoded data queues at the station and uploads at this rate, urgent
  /// tier first; capture-to-cloud latencies land in
  /// SimulationResult::cloud_latency_minutes.  0 = infinite backhaul.
  double station_backhaul_bps = 0.0;
  /// Optional bidding/policy hook; forwarded to the scheduler (see
  /// BidMatrix).  The callable must outlive the run.
  EdgeValueModifier edge_value_modifier;
  /// Antenna retarget + carrier re-lock time [s].  When a station serves a
  /// different satellite than in the previous step (or comes back from
  /// idle), the first `slew_seconds` of the quantum move no data.  The
  /// per-instant matcher is blind to this cost; the look-ahead planner
  /// avoids it by holding pass blocks (E16/E20).
  double slew_seconds = 0.0;
  /// Record the per-step timeseries (SimulationResult::timeseries) for
  /// report export; off by default to keep result objects small.
  bool collect_timeseries = false;
  /// Parallel execution of the propagation / visibility / link-budget hot
  /// loops.  The default (num_threads = 1) runs serially, preserving
  /// today's behaviour exactly; any thread count produces a bit-identical
  /// SimulationResult (see DESIGN.md §9).
  util::ParallelConfig parallel;
  /// Observability sinks (DESIGN.md §10); both are borrowed and must
  /// outlive the run.  Null (the default) disables that sink entirely.
  /// Metric folds and the event log are deterministic for any thread
  /// count; trace spans (a timing artifact) are enabled separately via
  /// obs::set_trace_enabled.
  obs::Registry* metrics = nullptr;
  obs::EventLog* events = nullptr;
  /// Restrict the run to these station ids (GroundStation::id), the
  /// netdesign interchange format (`dgs_cli --stations-subset`, see
  /// groundseg::read_station_subset).  Empty (the default) runs every
  /// station passed to the Simulator.  Ids must be unique, non-negative,
  /// and name stations that exist; the simulator filters its station list
  /// (preserving input order) before anything else runs, so fault-plan
  /// station indices refer to the *filtered* list.
  std::vector<int> station_subset;
  /// Multi-tenant service mode (DESIGN.md §16): the fleet is partitioned
  /// across named tenants and schedule_instant arbitrates fair shares
  /// between them (TenantArbiter scaling Phi per satellite).  Empty (the
  /// default) runs single-tenant with no arbitration.  Validation:
  /// lowercase unique names, positive weights, satellite slices disjoint
  /// and covering the whole fleet; incompatible with lookahead_hours > 0
  /// (the arbiter is defined for per-instant scheduling only).
  std::vector<TenantSpec> tenants;

  /// Validates every field (and their combinations) in one documented
  /// place, replacing the scattered run-time checks the constructor used
  /// to perform.  Returns the first violated constraint, or nullopt when
  /// the options are runnable.  `num_stations` bounds station indices in
  /// the fault plan; pass -1 to skip those checks (e.g. before the
  /// network is built).  `station_ids` lists the available
  /// GroundStation::ids for station_subset membership checks; empty skips
  /// the membership check (uniqueness/sign are always enforced).
  /// `num_satellites` bounds tenant satellite indices and enables the
  /// fleet-coverage check; -1 skips both.
  std::optional<OptionsError> validate(
      int num_stations = -1, std::span<const int> station_ids = {},
      int num_satellites = -1) const;
};

/// One simulation step's aggregate state (collect_timeseries).
struct StepRecord {
  double hours = 0.0;               ///< Since simulation start (step end).
  double delivered_bytes_cum = 0.0;
  double backlog_bytes_total = 0.0; ///< Sum of queued bytes across sats.
  int active_links = 0;             ///< Assignments executed this step.
  std::int64_t failed_cum = 0;      ///< Failed assignments so far.
};

/// Per-satellite end-of-run accounting.
struct SatelliteOutcome {
  double generated_bytes = 0.0;     ///< Captured at the sensor (attempted).
  double delivered_bytes = 0.0;
  double backlog_bytes = 0.0;       ///< Still queued (never transmitted).
  double pending_ack_bytes = 0.0;   ///< Delivered but not yet acknowledged.
  double dropped_bytes = 0.0;       ///< Lost to a full recorder.
  double storage_high_water_bytes = 0.0;
  int tx_contacts = 0;              ///< Plan-upload opportunities used.
};

/// Per-tenant end-of-run accounting (service mode); empty unless
/// SimulationOptions::tenants is configured.  Rows are in tenant
/// declaration order.
struct TenantOutcome {
  std::string name;
  double weight = 0.0;
  double sla_latency_minutes = 0.0;  ///< 0 = no target.
  int num_satellites = 0;
  double generated_bytes = 0.0;
  double delivered_bytes = 0.0;
  double backlog_bytes = 0.0;        ///< Queued on board at horizon end.
  std::int64_t assignments = 0;
  util::SampleSet latency_minutes;   ///< Per delivered chunk.
  double entitlement = 0.0;          ///< weight / sum(weights).
  double share = 0.0;                ///< delivered / total delivered.
  /// Fraction of delivered chunks within the SLA latency target (1 when
  /// no target is configured).
  double sla_attainment = 1.0;
};

struct SimulationResult {
  util::SampleSet latency_minutes;    ///< Per delivered chunk (all tiers).
  util::SampleSet urgent_latency_minutes;  ///< Chunks with priority > 1.
  util::SampleSet bulk_latency_minutes;    ///< Priority-1.0 chunks.
  util::SampleSet backlog_gb;         ///< Per satellite, end of horizon.
  util::SampleSet ack_delay_minutes;  ///< Per acknowledged batch.
  /// Capture-to-cloud latency per chunk; only populated when
  /// station_backhaul_bps > 0 (otherwise cloud == ground).
  util::SampleSet cloud_latency_minutes;
  /// Bytes still queued at stations (not yet in the cloud) at horizon end.
  double station_queued_bytes = 0.0;
  /// Per-step aggregates; empty unless collect_timeseries was set.
  std::vector<StepRecord> timeseries;
  std::vector<SatelliteOutcome> per_satellite;
  std::vector<TenantOutcome> per_tenant;  ///< Service mode only.

  double total_generated_bytes = 0.0;
  double total_delivered_bytes = 0.0;
  double total_dropped_bytes = 0.0;   ///< Lost to full recorders.
  /// Aggregate link capacity of all assigned (and closing) slots, whether
  /// or not data was available — the headline "could download X TB/day".
  double assigned_capacity_bytes = 0.0;
  std::int64_t assignments = 0;       ///< Scheduled (sat, station) slots.
  double total_matched_value = 0.0;   ///< Sum of assigned edge weights (Phi).
  std::int64_t failed_assignments = 0;  ///< Slots lost to mis-predicted SNR.
  /// Bytes transmitted into failed slots: the satellite sent them at the
  /// scheduled MODCOD but the ground captured nothing; they sit in limbo
  /// until the next TX contact reports them missing.
  double wasted_transmission_bytes = 0.0;
  /// Bytes re-queued for retransmission after a collated report.
  double requeued_bytes = 0.0;
  /// Times a station had to retarget to a new satellite (slew model on).
  std::int64_t slew_events = 0;
  /// Bytes transmitted into a contact whose station was down (fault
  /// injection): a subset of wasted_transmission_bytes, recovered via the
  /// same missing-pieces requeue loop as mis-predicted MODCODs.
  double outage_lost_bytes = 0.0;
  /// Ack-relay report attempts lost to Internet faults and retried with
  /// backoff before the report became available to a TX contact.
  std::int64_t ack_retries = 0;
  /// Look-ahead replans triggered by an assigned station faulting
  /// mid-window (scheduled window refreshes are not counted).
  std::int64_t replans = 0;
  /// TX contacts whose TT&C exchange (acks + fresh plan) failed.
  std::int64_t plan_upload_failures = 0;
  std::int64_t steps = 0;
  double mean_station_utilization = 0.0;  ///< Busy-steps / total steps.

  double delivered_fraction() const {
    return total_generated_bytes > 0.0
               ? total_delivered_bytes / total_generated_bytes
               : 0.0;
  }
};

/// Run-to-completion convenience wrapper over core::Session (session.h),
/// which owns all mutable per-run state and additionally supports
/// stepping, mid-run reports, and snapshot/restore checkpointing.
class Simulator {
 public:
  /// `actual_weather` decides transmission outcomes; it may differ from the
  /// forecast provider feeding the scheduler.  Both are borrowed.
  /// Pass nullptr for permanently clear skies.
  Simulator(std::vector<groundseg::SatelliteConfig> sats,
            std::vector<groundseg::GroundStation> stations,
            const weather::WeatherProvider* actual_weather,
            const SimulationOptions& opts);

  /// Runs the full horizon.  Deterministic for fixed inputs.
  /// Equivalent to Session(...).run_to_end().
  SimulationResult run();

 private:
  std::vector<groundseg::SatelliteConfig> sats_;
  std::vector<groundseg::GroundStation> stations_;
  const weather::WeatherProvider* actual_wx_;
  SimulationOptions opts_;
};

}  // namespace dgs::core
