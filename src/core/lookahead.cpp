#include "src/core/lookahead.h"

#include <algorithm>
#include <map>

#include "src/obs/trace.h"
#include "src/util/check.h"

namespace dgs::core {

double PassBlock::capacity_bytes(double step_seconds) const {
  double bytes = 0.0;
  for (const ContactEdge& e : steps) {
    bytes += e.predicted_rate_bps * step_seconds / 8.0;
  }
  return bytes;
}

std::vector<PassBlock> find_pass_blocks(
    const VisibilityEngine& engine, const util::Epoch& start, int steps,
    double step_seconds, std::span<const char> station_down) {
  DGS_ENSURE(steps > 0 && step_seconds > 0.0,
             "steps=" << steps << ", step_seconds=" << step_seconds);
  DGS_TRACE_SPAN("plan.blocks");

  std::vector<PassBlock> blocks;
  // Open block per (sat, station) pair, indexed into `blocks`.
  std::map<std::pair<int, int>, int> open;

  // The plan is computed at `start`; looking `k` steps ahead means relying
  // on a forecast with lead k*dt.
  std::vector<double> leads(engine.num_sats(), 0.0);
  for (int k = 0; k < steps; ++k) {
    const util::Epoch t = start.plus_seconds(k * step_seconds);
    std::fill(leads.begin(), leads.end(), k * step_seconds);
    const std::vector<ContactEdge> edges =
        engine.contacts(t, leads, station_down);

    std::map<std::pair<int, int>, int> still_open;
    for (const ContactEdge& e : edges) {
      const auto key = std::make_pair(e.sat, e.station);
      const auto it = open.find(key);
      if (it != open.end() && blocks[it->second].last_step() == k - 1) {
        blocks[it->second].steps.push_back(e);
        still_open[key] = it->second;
      } else {
        PassBlock b;
        b.sat = e.sat;
        b.station = e.station;
        b.first_step = k;
        b.steps.push_back(e);
        blocks.push_back(std::move(b));
        still_open[key] = static_cast<int>(blocks.size()) - 1;
      }
    }
    open = std::move(still_open);
  }
  return blocks;
}

HorizonPlan plan_horizon(const VisibilityEngine& engine,
                         const std::vector<OnboardQueue>& queues,
                         const ValueFunction& value, const util::Epoch& start,
                         int steps, double step_seconds,
                         std::span<const char> station_down) {
  DGS_ENSURE_EQ(static_cast<int>(queues.size()), engine.num_sats());
  DGS_TRACE_SPAN("plan.horizon");
  std::vector<PassBlock> blocks =
      find_pass_blocks(engine, start, steps, step_seconds, station_down);

  // Score blocks against the queue snapshot at the block's mid-time.
  // Per-block values are computed in parallel (pure const reads of the
  // queues); the filtered list is then built serially in block order, so
  // the ranking is identical at any thread count.
  std::vector<double> block_value(blocks.size());
  const auto score = [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t i = begin; i < end; ++i) {
      const PassBlock& b = blocks[static_cast<std::size_t>(i)];
      const double mid_s =
          (b.first_step + static_cast<double>(b.steps.size()) / 2.0) *
          step_seconds;
      block_value[static_cast<std::size_t>(i)] =
          value.edge_value(queues[b.sat], start.plus_seconds(mid_s),
                           b.capacity_bytes(step_seconds));
    }
  };
  if (util::ThreadPool* pool = engine.thread_pool(); pool != nullptr) {
    pool->parallel_for(static_cast<std::int64_t>(blocks.size()), score);
  } else {
    score(0, static_cast<std::int64_t>(blocks.size()));
  }

  struct Scored {
    int block_index;
    double density;  ///< value per step
  };
  std::vector<Scored> scored;
  scored.reserve(blocks.size());
  for (int i = 0; i < static_cast<int>(blocks.size()); ++i) {
    const double v = block_value[static_cast<std::size_t>(i)];
    if (v <= 0.0) continue;
    const PassBlock& b = blocks[i];
    scored.push_back(Scored{i, v / static_cast<double>(b.steps.size())});
  }
  std::sort(scored.begin(), scored.end(), [&](const Scored& a,
                                              const Scored& b) {
    if (a.density != b.density) return a.density > b.density;
    return a.block_index < b.block_index;  // deterministic ties
  });

  // Greedy allocation with per-satellite and per-station busy masks over
  // the window steps.
  const auto mask_size = static_cast<std::size_t>(steps);
  std::vector<std::vector<char>> sat_busy(
      engine.num_sats(), std::vector<char>(mask_size, 0));
  std::vector<std::vector<char>> gs_busy(
      engine.num_stations(), std::vector<char>(mask_size, 0));

  HorizonPlan plan;
  plan.per_step.resize(mask_size);
  for (const Scored& s : scored) {
    const PassBlock& b = blocks[s.block_index];
    bool conflict = false;
    for (int k = b.first_step; k <= b.last_step() && !conflict; ++k) {
      conflict = sat_busy[b.sat][k] || gs_busy[b.station][k];
    }
    if (conflict) continue;
    for (int k = b.first_step; k <= b.last_step(); ++k) {
      sat_busy[b.sat][k] = 1;
      gs_busy[b.station][k] = 1;
      plan.per_step[k].push_back(b.steps[k - b.first_step]);
    }
  }
  return plan;
}

}  // namespace dgs::core
