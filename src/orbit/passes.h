// Pass (contact window) prediction between a satellite and a ground site.
//
// A "pass" is the interval during which the satellite is above the site's
// minimum elevation mask.  The predictor scans the horizon function at a
// coarse step and refines the rise/set crossings by bisection, which is
// robust for LEO passes (several minutes long) at a fraction of the cost of
// a fine uniform scan.
#pragma once

#include <vector>

#include "src/orbit/frames.h"
#include "src/orbit/sgp4.h"

namespace dgs::orbit {

/// One contact window.
struct Pass {
  util::Epoch aos;              ///< Acquisition of signal (rise time).
  util::Epoch los;              ///< Loss of signal (set time).
  util::Epoch tca;              ///< Time of closest approach (max elevation).
  double max_elevation_rad = 0.0;
  double duration_seconds() const { return los.seconds_since(aos); }
};

struct PassPredictorOptions {
  double min_elevation_rad = 0.0;   ///< Elevation mask.
  double coarse_step_seconds = 30;  ///< Scan step; must undersample no pass.
  double refine_tolerance_seconds = 0.5;  ///< Bisection stop tolerance.
};

/// Elevation [rad] of the satellite above the site's horizon at `when`.
double elevation_at(const Sgp4& sat, const Geodetic& site,
                    const util::Epoch& when);

/// All passes with AOS inside [start, end].  A pass already in progress at
/// `start` is reported with aos == start; one still in progress at `end`
/// is reported with los == end.
std::vector<Pass> predict_passes(const Sgp4& sat, const Geodetic& site,
                                 const util::Epoch& start,
                                 const util::Epoch& end,
                                 const PassPredictorOptions& opts = {});

}  // namespace dgs::orbit
