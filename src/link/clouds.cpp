#include "src/link/clouds.h"

#include <algorithm>
#include <cmath>

#include "src/util/angles.h"
#include "src/util/check.h"

namespace dgs::link {

WaterPermittivity water_permittivity(double freq_ghz, double temp_k) {
  DGS_ENSURE_GT(temp_k, 0.0);
  const double theta = 300.0 / temp_k;
  const double eps0 = 77.66 + 103.3 * (theta - 1.0);
  const double eps1 = 0.0671 * eps0;
  const double eps2 = 3.52;
  const double fp = 20.20 - 146.0 * (theta - 1.0) +
                    316.0 * (theta - 1.0) * (theta - 1.0);  // GHz
  const double fs = 39.8 * fp;                              // GHz
  const double f = freq_ghz;

  const double f_fp = f / fp;
  const double f_fs = f / fs;
  WaterPermittivity e;
  e.real = (eps0 - eps1) / (1.0 + f_fp * f_fp) +
           (eps1 - eps2) / (1.0 + f_fs * f_fs) + eps2;
  e.imag = f_fp * (eps0 - eps1) / (1.0 + f_fp * f_fp) +
           f_fs * (eps1 - eps2) / (1.0 + f_fs * f_fs);
  return e;
}

double cloud_specific_attenuation_coeff(double freq_ghz, double temp_k) {
  DGS_ENSURE(freq_ghz > 0.0 && freq_ghz <= 200.0,
             "freq=" << freq_ghz << " GHz outside P.840 validity (0, 200]");
  const WaterPermittivity e = water_permittivity(freq_ghz, temp_k);
  const double eta = (2.0 + e.real) / e.imag;
  return 0.819 * freq_ghz / (e.imag * (1.0 + eta * eta));
}

double cloud_attenuation_db(double freq_ghz, double liquid_water_kg_m2,
                            double elevation_rad, double temp_k) {
  DGS_ENSURE_GE(liquid_water_kg_m2, 0.0);
  DGS_ENSURE_GT(elevation_rad, 0.0);
  if (liquid_water_kg_m2 == 0.0) return 0.0;
  const double kl = cloud_specific_attenuation_coeff(freq_ghz, temp_k);
  const double el = std::max(elevation_rad, util::deg2rad(5.0));
  return liquid_water_kg_m2 * kl / std::sin(el);
}

}  // namespace dgs::link
