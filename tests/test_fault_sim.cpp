// End-to-end fault injection through the simulator (DESIGN.md §11):
// graceful degradation under outages, replanning in the look-ahead
// planner, ack-relay delays, plan-upload failures, backhaul blackouts,
// and the fixed-seed golden fault-event sequence that must be
// bit-identical across thread counts and across runs.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/core/simulator.h"
#include "src/groundseg/network_gen.h"
#include "src/obs/events.h"
#include "src/obs/metrics.h"
#include "src/weather/synthetic.h"

namespace dgs::core {
namespace {

const util::Epoch kT0(util::DateTime{2020, 11, 4, 0, 0, 0.0});

groundseg::NetworkOptions mid_net() {
  groundseg::NetworkOptions net;
  net.num_satellites = 10;
  net.num_stations = 12;
  net.tx_fraction = 0.25;
  net.seed = 99;
  return net;
}

class FaultSimTest : public ::testing::Test {
 protected:
  FaultSimTest()
      : sats_(groundseg::generate_constellation(mid_net(), kT0)),
        stations_(groundseg::generate_dgs_stations(mid_net())) {}

  SimulationOptions base_opts() const {
    SimulationOptions opts;
    opts.start = kT0;
    opts.duration_hours = 8.0;
    opts.step_seconds = 60.0;
    opts.urgent_fraction = 0.05;
    return opts;
  }

  double conservation_slack(const SimulationResult& r) const {
    return r.total_generated_bytes * 1e-9 + 1.0;
  }

  double total_backlog(const SimulationResult& r) const {
    double backlog = 0.0;
    for (const auto& o : r.per_satellite) backlog += o.backlog_bytes;
    return backlog;
  }

  std::vector<groundseg::SatelliteConfig> sats_;
  std::vector<groundseg::GroundStation> stations_;
};

TEST_F(FaultSimTest, LookaheadReplansWhenAssignedStationsFault) {
  // Every station drops out mid-horizon, after the plan covering that
  // window was already committed.  The planner must (a) keep running —
  // this configuration used to be rejected outright — (b) replan at
  // least once, and (c) lose the stale step's bytes into the ordinary
  // wasted/requeue loop rather than dropping them on the floor.  The
  // 2.4 h start deliberately falls inside a plan window (refreshes land
  // on whole hours here), so the begin step executes stale assignments.
  SimulationOptions opts = base_opts();
  opts.lookahead_hours = 1.0;
  for (int g = 0; g < static_cast<int>(stations_.size()); ++g) {
    opts.faults.outages.push_back(faults::OutageWindow{g, 2.4, 4.4});
  }
  Simulator sim(sats_, stations_, nullptr, opts);
  const SimulationResult r = sim.run();

  EXPECT_GT(r.total_delivered_bytes, 0.0);
  EXPECT_GE(r.replans, 1);
  EXPECT_GT(r.outage_lost_bytes, 0.0);
  // Clear sky (nullptr weather), no slew: outages are the only way to
  // waste a transmission, so the two ledgers agree exactly.
  EXPECT_EQ(r.wasted_transmission_bytes, r.outage_lost_bytes);
  EXPECT_NEAR(r.total_generated_bytes,
              r.total_delivered_bytes + total_backlog(r) +
                  r.wasted_transmission_bytes - r.requeued_bytes,
              conservation_slack(r));
}

TEST_F(FaultSimTest, PerInstantSchedulerAvoidsFaultedStations) {
  // With the down mask excluding candidates at match time, only the
  // steps where the outage *begins* mid-plan can waste bytes; per-instant
  // matching sees the mask every step, so nothing is ever sent into a
  // known-down station.
  SimulationOptions opts = base_opts();
  opts.faults.outages.push_back(faults::OutageWindow{0, 1.0, 7.0});
  opts.faults.outages.push_back(faults::OutageWindow{1, 1.0, 7.0});
  Simulator sim(sats_, stations_, nullptr, opts);
  const SimulationResult r = sim.run();
  EXPECT_GT(r.total_delivered_bytes, 0.0);
  EXPECT_EQ(r.outage_lost_bytes, 0.0);
  EXPECT_EQ(r.replans, 0);
}

TEST_F(FaultSimTest, ChurnDegradesButConserves) {
  weather::SyntheticWeatherProvider wx(31, kT0, 25.0);
  SimulationOptions clean = base_opts();
  Simulator clean_sim(sats_, stations_, &wx, clean);
  const SimulationResult baseline = clean_sim.run();

  SimulationOptions opts = base_opts();
  opts.faults.seed = 7;
  opts.faults.churn.mtbf_hours = 4.0;
  opts.faults.churn.mttr_hours = 1.0;
  Simulator sim(sats_, stations_, &wx, opts);
  const SimulationResult r = sim.run();

  EXPECT_GT(r.total_delivered_bytes, 0.0);
  EXPECT_LT(r.total_delivered_bytes, baseline.total_delivered_bytes);
  EXPECT_NEAR(r.total_generated_bytes,
              r.total_delivered_bytes + total_backlog(r) +
                  r.wasted_transmission_bytes - r.requeued_bytes,
              conservation_slack(r));
}

TEST_F(FaultSimTest, AckRelayLossDelaysAcknowledgements) {
  SimulationOptions clean = base_opts();
  Simulator clean_sim(sats_, stations_, nullptr, clean);
  const SimulationResult baseline = clean_sim.run();
  ASSERT_FALSE(baseline.ack_delay_minutes.empty());

  SimulationOptions opts = base_opts();
  opts.faults.seed = 11;
  opts.faults.ack_relay.loss_probability = 0.6;
  opts.faults.ack_relay.initial_backoff_s = 120.0;
  opts.faults.ack_relay.backoff_multiplier = 2.0;
  opts.faults.ack_relay.max_backoff_s = 1800.0;
  Simulator sim(sats_, stations_, nullptr, opts);
  const SimulationResult r = sim.run();

  EXPECT_GT(r.ack_retries, 0);
  ASSERT_FALSE(r.ack_delay_minutes.empty());
  // Reports held back by retries make the mean ack delay visibly worse.
  EXPECT_GT(r.ack_delay_minutes.mean(), baseline.ack_delay_minutes.mean());
  EXPECT_EQ(r.outage_lost_bytes, 0.0);  // stations stayed up
}

TEST_F(FaultSimTest, PlanUploadFailuresAreCountedAndDegrade) {
  SimulationOptions opts = base_opts();
  opts.faults.seed = 23;
  opts.faults.plan_upload.failure_probability = 0.5;
  Simulator sim(sats_, stations_, nullptr, opts);
  const SimulationResult r = sim.run();
  EXPECT_GT(r.plan_upload_failures, 0);
  EXPECT_GT(r.total_delivered_bytes, 0.0);
  EXPECT_NEAR(r.total_generated_bytes,
              r.total_delivered_bytes + total_backlog(r) +
                  r.wasted_transmission_bytes - r.requeued_bytes,
              conservation_slack(r));
}

TEST_F(FaultSimTest, BackhaulBlackoutStrandsDataAtTheEdge) {
  // A whole-run hard blackout on every station: chunks reach the ground
  // (delivery accounting is untouched) but never reach the cloud.
  SimulationOptions opts = base_opts();
  opts.station_backhaul_bps = 50e6;
  for (int g = 0; g < static_cast<int>(stations_.size()); ++g) {
    opts.faults.backhaul.push_back(
        faults::BackhaulFault{g, 0.0, opts.duration_hours, 0.0});
  }
  Simulator sim(sats_, stations_, nullptr, opts);
  const SimulationResult r = sim.run();
  EXPECT_GT(r.total_delivered_bytes, 0.0);
  EXPECT_TRUE(r.cloud_latency_minutes.empty());
  EXPECT_GT(r.station_queued_bytes, 0.0);
}

// ---------------------------------------------------------------------
// Fixed-seed golden fault-event sequence: the JSONL fault events are a
// deterministic artifact — bit-identical across thread counts and
// across repeated runs (ISSUE acceptance; DESIGN.md §9 + §11).

std::string run_fault_events(int num_threads) {
  const auto sats = groundseg::generate_constellation(mid_net(), kT0);
  const auto stations = groundseg::generate_dgs_stations(mid_net());
  weather::SyntheticWeatherProvider wx(31, kT0, 25.0);

  SimulationOptions opts;
  opts.start = kT0;
  opts.duration_hours = 8.0;
  opts.step_seconds = 60.0;
  opts.urgent_fraction = 0.05;
  opts.lookahead_hours = 1.0;
  opts.station_backhaul_bps = 40e6;
  opts.parallel.num_threads = num_threads;
  opts.parallel.chunk_size = 4;

  opts.faults.seed = 20201104;
  opts.faults.churn.mtbf_hours = 5.0;
  opts.faults.churn.mttr_hours = 1.0;
  opts.faults.ack_relay.loss_probability = 0.35;
  opts.faults.ack_relay.initial_backoff_s = 30.0;
  opts.faults.ack_relay.max_backoff_s = 900.0;
  opts.faults.plan_upload.failure_probability = 0.15;
  opts.faults.backhaul.push_back(faults::BackhaulFault{2, 1.0, 5.0, 0.0});
  opts.faults.backhaul.push_back(faults::BackhaulFault{7, 2.0, 6.0, 0.25});

  std::ostringstream events;
  obs::EventLog log(&events);
  opts.events = &log;
  Simulator sim(sats, stations, &wx, opts);
  const SimulationResult r = sim.run();
  EXPECT_GT(r.total_delivered_bytes, 0.0);
  return events.str();
}

std::string fault_lines_only(const std::string& jsonl) {
  static const char* kFaultTypes[] = {
      "outage_begin", "outage_end", "outage_loss", "ack_relay_retry",
      "plan_upload_failed", "replan", "backhaul_fault_begin",
      "backhaul_fault_end"};
  std::string out;
  std::istringstream in(jsonl);
  std::string line;
  while (std::getline(in, line)) {
    for (const char* type : kFaultTypes) {
      if (line.find(std::string("\"type\": \"") + type + "\"") !=
          std::string::npos) {
        out += line;
        out += '\n';
        break;
      }
    }
  }
  return out;
}

TEST(FaultGolden, EventSequenceIsBitIdenticalAcrossThreadsAndRuns) {
  const std::string serial_a = fault_lines_only(run_fault_events(1));
  const std::string serial_b = fault_lines_only(run_fault_events(1));
  const std::string threaded = fault_lines_only(run_fault_events(4));

  ASSERT_FALSE(serial_a.empty());
  // The storm-like plan exercises the whole taxonomy.
  EXPECT_NE(serial_a.find("\"type\": \"outage_begin\""), std::string::npos);
  EXPECT_NE(serial_a.find("\"type\": \"ack_relay_retry\""),
            std::string::npos);
  EXPECT_NE(serial_a.find("\"type\": \"backhaul_fault_begin\""),
            std::string::npos);

  EXPECT_EQ(serial_a, serial_b) << "same seed, same run: not reproducible";
  EXPECT_EQ(serial_a, threaded) << "fault events depend on thread count";
}

TEST(FaultGolden, FaultMetricsMirrorTheResultExactly) {
  const auto sats = groundseg::generate_constellation(mid_net(), kT0);
  const auto stations = groundseg::generate_dgs_stations(mid_net());

  SimulationOptions opts;
  opts.start = kT0;
  opts.duration_hours = 6.0;
  opts.step_seconds = 60.0;
  opts.lookahead_hours = 1.0;
  opts.faults.seed = 3;
  opts.faults.churn.mtbf_hours = 3.0;
  opts.faults.churn.mttr_hours = 1.0;
  opts.faults.plan_upload.failure_probability = 0.25;

  obs::Registry registry;
  opts.metrics = &registry;
  Simulator sim(sats, stations, nullptr, opts);
  const SimulationResult r = sim.run();

  EXPECT_EQ(
      registry.counter("dgs_faults_outage_lost_bytes_total", "")->value(),
      r.outage_lost_bytes);
  EXPECT_EQ(registry.counter("dgs_faults_replans_total", "")->value(),
            static_cast<double>(r.replans));
  EXPECT_EQ(
      registry.counter("dgs_faults_plan_upload_failures_total", "")->value(),
      static_cast<double>(r.plan_upload_failures));
  EXPECT_EQ(registry.counter("dgs_faults_ack_retries_total", "")->value(),
            static_cast<double>(r.ack_retries));
  EXPECT_GT(
      registry.counter("dgs_faults_outage_transitions_total", "")->value(),
      0.0);
}

TEST(FaultGolden, FaultFreeRunsRegisterNoFaultMetrics) {
  // An empty plan must leave the exposition exactly as it was before the
  // fault subsystem existed — no dgs_faults_* series appear.
  const auto sats = groundseg::generate_constellation(mid_net(), kT0);
  const auto stations = groundseg::generate_dgs_stations(mid_net());
  SimulationOptions opts;
  opts.start = kT0;
  opts.duration_hours = 2.0;
  obs::Registry registry;
  opts.metrics = &registry;
  Simulator sim(sats, stations, nullptr, opts);
  (void)sim.run();
  std::ostringstream prom;
  registry.write_prometheus(prom);
  EXPECT_EQ(prom.str().find("dgs_faults_"), std::string::npos);
}

}  // namespace
}  // namespace dgs::core
