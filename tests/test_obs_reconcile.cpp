// End-to-end observability reconciliation (DESIGN.md §10): a 24 h run with
// every sink enabled must produce
//   (1) a Prometheus exposition with >= 20 series whose counters mirror the
//       SimulationResult aggregates bit-for-bit,
//   (2) a Perfetto-loadable Chrome trace, and
//   (3) a JSONL event log that balances exactly against the Report — the
//       log is a ledger, not a sampling — and whose (step, t_hours) stamps
//       join the timeseries CSV with no off-by-one-step drift.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/dgs.h"
#include "src/core/report.h"
#include "src/obs/events.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "tests/json_lite.h"

namespace dgs::core {
namespace {

using dgs::testing::json_number_field;
using dgs::testing::json_string_field;
using dgs::testing::json_valid;

const util::Epoch kT0(util::DateTime{2020, 11, 4, 0, 0, 0.0});

TEST(ObsReconcile, TwentyFourHourRunBalancesExactly) {
  groundseg::NetworkOptions net;
  net.num_satellites = 6;
  net.num_stations = 12;
  net.seed = 5;
  const auto sats = groundseg::generate_constellation(net, kT0);
  const auto stations = groundseg::generate_dgs_stations(net);
  weather::SyntheticWeatherProvider wx(11, kT0, 25.0);

  SimulationOptions opts;
  opts.start = kT0;
  opts.duration_hours = 24.0;
  opts.step_seconds = 60.0;
  opts.collect_timeseries = true;
  opts.urgent_fraction = 0.2;
  opts.station_backhaul_bps = 50e6;
  opts.slew_seconds = 5.0;
  opts.faults.outages.push_back(faults::OutageWindow{0, 2.0, 4.0});

  obs::Registry registry;
  opts.metrics = &registry;
  std::stringstream events;
  obs::EventLog log(&events);
  opts.events = &log;
  obs::clear_trace();
  obs::set_trace_enabled(true);

  const SimulationResult r = Simulator(sats, stations, &wx, opts).run();
  obs::set_trace_enabled(false);

  const int num_sats = static_cast<int>(sats.size());

  // --- (1) Prometheus exposition --------------------------------------
  EXPECT_GE(registry.series_count(), 20u);
  std::stringstream prom;
  registry.write_prometheus(prom);
  const std::string prom_text = prom.str();
  EXPECT_NE(prom_text.find("# TYPE dgs_sim_delivered_bytes_total counter"),
            std::string::npos);
  EXPECT_NE(prom_text.find("# TYPE dgs_sim_latency_minutes histogram"),
            std::string::npos);
  // Counters mirror the result add-for-add, so equality is exact.
  EXPECT_EQ(registry.counter("dgs_sim_generated_bytes_total", "")->value(),
            r.total_generated_bytes);
  EXPECT_EQ(registry.counter("dgs_sim_delivered_bytes_total", "")->value(),
            r.total_delivered_bytes);
  EXPECT_EQ(registry.counter("dgs_sim_wasted_bytes_total", "")->value(),
            r.wasted_transmission_bytes);
  EXPECT_EQ(registry.counter("dgs_sim_requeued_bytes_total", "")->value(),
            r.requeued_bytes);
  EXPECT_EQ(registry.counter("dgs_sim_assignments_total", "")->value(),
            static_cast<double>(r.assignments));
  EXPECT_EQ(
      registry.counter("dgs_sim_failed_assignments_total", "")->value(),
      static_cast<double>(r.failed_assignments));
  EXPECT_EQ(registry.counter("dgs_sim_slew_events_total", "")->value(),
            static_cast<double>(r.slew_events));
  EXPECT_EQ(registry.counter("dgs_sim_steps_total", "")->value(),
            static_cast<double>(r.steps));
  EXPECT_EQ(registry.gauge("dgs_backhaul_queued_bytes", "")->value(),
            r.station_queued_bytes);
  EXPECT_GT(registry.counter("dgs_vis_propagations_total", "")->value(),
            0.0);

  // --- (2) Chrome trace ------------------------------------------------
#ifndef DGS_OBS_NO_TRACING
  EXPECT_GT(obs::trace_span_count(), 0u);
  std::stringstream trace;
  obs::write_chrome_trace(trace);
  const std::string trace_text = trace.str();
  EXPECT_TRUE(json_valid(trace_text));
  EXPECT_NE(trace_text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace_text.find("sim.step"), std::string::npos);
  EXPECT_NE(trace_text.find("sched.instant"), std::string::npos);
  obs::clear_trace();
#endif  // DGS_OBS_NO_TRACING

  // --- (3) JSONL ledger balances against the Report --------------------
  std::vector<double> delivered(num_sats, 0.0);
  double wasted = 0.0;
  double requeued = 0.0;
  std::int64_t bytes_moved_events = 0;
  std::int64_t contact_opens = 0;
  std::int64_t contact_closes = 0;
  std::int64_t held_steps_sum = 0;
  bool saw_outage_begin = false;
  bool saw_outage_end = false;
  std::map<std::int64_t, double> step_t_hours;

  std::string line;
  while (std::getline(events, line)) {
    ASSERT_TRUE(json_valid(line)) << line;
    std::string type;
    ASSERT_TRUE(json_string_field(line, "type", &type)) << line;
    double step = 0.0;
    double t_hours = 0.0;
    ASSERT_TRUE(json_number_field(line, "step", &step)) << line;
    ASSERT_TRUE(json_number_field(line, "t_hours", &t_hours)) << line;
    step_t_hours[static_cast<std::int64_t>(step)] = t_hours;

    if (type == "bytes_moved") {
      double sat = 0.0, bytes = 0.0;
      ASSERT_TRUE(json_number_field(line, "sat", &sat));
      ASSERT_TRUE(json_number_field(line, "bytes", &bytes));
      const bool received = line.find("\"received\": true") !=
                            std::string::npos;
      if (received) {
        delivered[static_cast<int>(sat)] += bytes;
      } else {
        wasted += bytes;
      }
      ++bytes_moved_events;
    } else if (type == "ack_relayed") {
      double rq = 0.0;
      ASSERT_TRUE(json_number_field(line, "requeued_bytes", &rq));
      requeued += rq;
    } else if (type == "contact_open") {
      ++contact_opens;
    } else if (type == "contact_close") {
      double held = 0.0;
      ASSERT_TRUE(json_number_field(line, "held_steps", &held));
      held_steps_sum += static_cast<std::int64_t>(held);
      ++contact_closes;
    } else if (type == "outage_begin") {
      saw_outage_begin = true;
    } else if (type == "outage_end") {
      saw_outage_end = true;
    }
  }

  // Per-queue delivered bytes: the ledger replays the exact accumulation
  // order of the result, so the sums are bit-identical, not just close.
  for (int s = 0; s < num_sats; ++s) {
    EXPECT_EQ(delivered[s], r.per_satellite[s].delivered_bytes) << "sat "
                                                                << s;
  }
  EXPECT_EQ(wasted, r.wasted_transmission_bytes);
  EXPECT_EQ(requeued, r.requeued_bytes);
  // One bytes_moved per executed assignment; every open contact closes and
  // is held once per assignment.
  EXPECT_EQ(bytes_moved_events, r.assignments);
  EXPECT_EQ(contact_opens, contact_closes);
  EXPECT_EQ(held_steps_sum, r.assignments);
  EXPECT_TRUE(saw_outage_begin);
  EXPECT_TRUE(saw_outage_end);

  // --- (4) Timeseries join: shared StepClock, no drift ------------------
  ASSERT_EQ(static_cast<std::int64_t>(r.timeseries.size()), r.steps);
  for (const auto& [step, t_hours] : step_t_hours) {
    ASSERT_GE(step, 0);
    ASSERT_LT(step, r.steps);
    // Both artifacts print the same double with %.4f; parsing the CSV's
    // rendering must give back exactly the event's stamp.
    char csv_hours[32];
    std::snprintf(csv_hours, sizeof(csv_hours), "%.4f",
                  r.timeseries[static_cast<std::size_t>(step)].hours);
    EXPECT_EQ(t_hours, std::atof(csv_hours)) << "step " << step;
  }
}

}  // namespace
}  // namespace dgs::core
