// Time utilities: Julian date round trips, GMST reference values, Epoch
// arithmetic.
#include <gtest/gtest.h>

#include "src/util/angles.h"
#include "src/util/time.h"

namespace dgs::util {
namespace {

TEST(JulianDate, J2000ReferenceEpoch) {
  // 2000-01-01 12:00 UTC is JD 2451545.0 by definition.
  EXPECT_DOUBLE_EQ(julian_date(DateTime{2000, 1, 1, 12, 0, 0.0}), 2451545.0);
}

TEST(JulianDate, KnownHistoricalValues) {
  // Vallado, example 3-4: 1996-10-26 14:20:00 UTC -> 2450383.09722222.
  EXPECT_NEAR(julian_date(DateTime{1996, 10, 26, 14, 20, 0.0}),
              2450383.09722222, 1e-8);
  // Unix epoch: 1970-01-01 00:00 UTC.
  EXPECT_DOUBLE_EQ(julian_date(DateTime{1970, 1, 1, 0, 0, 0.0}), 2440587.5);
}

TEST(JulianDate, MidnightIsHalfDay) {
  const double jd = julian_date(DateTime{2020, 11, 4, 0, 0, 0.0});
  EXPECT_DOUBLE_EQ(jd - std::floor(jd), 0.5);
}

TEST(CalendarFromJd, RoundTripsWholeDates) {
  for (int month = 1; month <= 12; ++month) {
    const DateTime dt{2020, month, 15, 6, 30, 15.5};
    const DateTime back = calendar_from_jd(julian_date(dt));
    EXPECT_EQ(back.year, dt.year);
    EXPECT_EQ(back.month, dt.month);
    EXPECT_EQ(back.day, dt.day);
    EXPECT_EQ(back.hour, dt.hour);
    EXPECT_EQ(back.minute, dt.minute);
    EXPECT_NEAR(back.second, dt.second, 1e-4);
  }
}

TEST(CalendarFromJd, LeapYearFebruary29) {
  const DateTime dt{2020, 2, 29, 23, 59, 30.0};
  const DateTime back = calendar_from_jd(julian_date(dt));
  EXPECT_EQ(back.month, 2);
  EXPECT_EQ(back.day, 29);
}

TEST(CalendarFromJd, YearBoundary) {
  const DateTime dt{2019, 12, 31, 23, 0, 0.0};
  const DateTime back = calendar_from_jd(julian_date(dt));
  EXPECT_EQ(back.year, 2019);
  EXPECT_EQ(back.month, 12);
  EXPECT_EQ(back.day, 31);
  EXPECT_EQ(back.hour, 23);
}

TEST(Gmst, ValladoReferenceCase) {
  // Vallado example 3-5: 1992-08-20 12:14 UT1 -> GMST 152.578787886 deg.
  const double jd = julian_date(DateTime{1992, 8, 20, 12, 14, 0.0});
  EXPECT_NEAR(rad2deg(gmst(jd)), 152.578787886, 1e-6);
}

TEST(Gmst, StaysInRange) {
  for (double jd = 2451545.0; jd < 2451545.0 + 400.0; jd += 0.37) {
    const double g = gmst(jd);
    EXPECT_GE(g, 0.0);
    EXPECT_LT(g, kTwoPi);
  }
}

TEST(Gmst, AdvancesBySiderealRate) {
  // Over one solar day GMST advances ~360.9856 deg (mod 360) ~ 0.9856 deg.
  const double jd0 = 2459000.5;
  const double delta = wrap_two_pi(gmst(jd0 + 1.0) - gmst(jd0));
  EXPECT_NEAR(rad2deg(delta), 0.98565, 1e-3);
}

TEST(Epoch, SecondsArithmeticRoundTrip) {
  const Epoch e0(DateTime{2020, 11, 4, 0, 0, 0.0});
  const Epoch e1 = e0.plus_seconds(86399.25);
  EXPECT_NEAR(e1.seconds_since(e0), 86399.25, 1e-6);
  EXPECT_NEAR(e0.seconds_since(e1), -86399.25, 1e-6);
}

TEST(Epoch, SubSecondResolutionOverDays) {
  const Epoch e0(DateTime{2020, 1, 1, 0, 0, 0.0});
  Epoch e = e0;
  for (int i = 0; i < 1000; ++i) e = e.plus_seconds(61.0);
  EXPECT_NEAR(e.seconds_since(e0), 61000.0, 1e-5);
}

TEST(Epoch, ComparisonOperators) {
  const Epoch a(DateTime{2020, 1, 1, 0, 0, 0.0});
  const Epoch b = a.plus_seconds(1.0);
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b > a);
  EXPECT_TRUE(a == a);
}

TEST(Epoch, FromTleEpochConvention) {
  // Day 1.0 of 2020 == Jan 1 00:00.
  const Epoch e = Epoch::from_tle_epoch(20, 1.0);
  const DateTime dt = e.utc();
  EXPECT_EQ(dt.year, 2020);
  EXPECT_EQ(dt.month, 1);
  EXPECT_EQ(dt.day, 1);
  EXPECT_EQ(dt.hour, 0);
  // Two-digit years 57..99 map to the 1900s.
  EXPECT_EQ(Epoch::from_tle_epoch(58, 1.0).utc().year, 1958);
  EXPECT_EQ(Epoch::from_tle_epoch(0, 179.5).utc().year, 2000);
}

TEST(Epoch, ToStringFormat) {
  const Epoch e(DateTime{2020, 11, 4, 9, 5, 3.2});
  EXPECT_EQ(e.to_string(), "2020-11-04T09:05:03Z");
}

}  // namespace
}  // namespace dgs::util
