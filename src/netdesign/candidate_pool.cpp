#include "src/netdesign/candidate_pool.h"

#include <algorithm>
#include <cmath>

#include "src/util/angles.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace dgs::netdesign {
namespace {

/// Distinct RNG stream for the economics so adding a cost-model field can
/// never perturb the station population itself (same pattern as
/// generate_constellation's seed offset).
constexpr std::uint64_t kEconomicsStream = 0x9e3779b97f4a7c15ull;

}  // namespace

std::vector<CandidateSite> make_candidate_pool(
    const groundseg::NetworkOptions& net) {
  const std::vector<groundseg::GroundStation> stations =
      groundseg::generate_dgs_stations(net);
  const std::uint64_t seed =
      (net.pool_size > 0 ? net.pool_seed : net.seed) ^ kEconomicsStream;
  util::Rng rng(seed);

  std::vector<CandidateSite> pool;
  pool.reserve(stations.size());
  for (const groundseg::GroundStation& gs : stations) {
    CandidateSite site;
    site.station = gs;
    // Economics: a site costs a base price, plus dish area (the only
    // hardware knob the paper's low-complexity design exposes), plus a
    // logistics premium that grows poleward of 50 deg (the expensive
    // real estate the paper's polar baseline occupies), plus an uplink
    // licence premium for TX sites, all scaled by bounded per-site noise.
    const double d = gs.receiver.dish_diameter_m;
    const double lat_deg =
        std::abs(util::rad2deg(gs.location.latitude_rad));
    double cost = 10.0;
    cost += 2.0 * d * d;
    cost += 6.0 * std::max(0.0, lat_deg - 50.0) / 40.0;
    if (gs.tx_capable) cost += 5.0;
    cost *= rng.uniform(0.9, 1.15);
    site.install_cost = cost;
    site.availability = rng.uniform(0.90, 0.995);
    pool.push_back(std::move(site));
  }
  return pool;
}

std::vector<groundseg::GroundStation> pool_stations(
    const std::vector<CandidateSite>& pool) {
  std::vector<groundseg::GroundStation> stations;
  stations.reserve(pool.size());
  for (const CandidateSite& site : pool) stations.push_back(site.station);
  return stations;
}

}  // namespace dgs::netdesign
