// On-board storage limits (recorder-full drops) and Doppler prediction.
#include <gtest/gtest.h>

#include <stdexcept>

#include "src/core/simulator.h"
#include "src/link/doppler.h"
#include "src/orbit/passes.h"
#include "src/orbit/tle.h"
#include "src/util/angles.h"

namespace dgs {
namespace {

const util::Epoch kT0(util::DateTime{2020, 11, 4, 0, 0, 0.0});

TEST(StorageCapacity, TailDropWhenFull) {
  core::OnboardQueue q;
  q.set_capacity(100.0);
  q.generate(80.0, kT0);
  EXPECT_DOUBLE_EQ(q.dropped_bytes(), 0.0);
  q.generate(50.0, kT0.plus_seconds(60));
  EXPECT_DOUBLE_EQ(q.queued_bytes(), 100.0);  // only 20 fit
  EXPECT_DOUBLE_EQ(q.dropped_bytes(), 30.0);
  // Completely full: everything dropped.
  q.generate(10.0, kT0.plus_seconds(120));
  EXPECT_DOUBLE_EQ(q.dropped_bytes(), 40.0);
}

TEST(StorageCapacity, PendingAckCountsTowardCapacity) {
  // Paper §3.3: delivered-but-unacked data still occupies the recorder.
  core::OnboardQueue q;
  q.set_capacity(100.0);
  q.generate(100.0, kT0);
  q.transmit(60.0, kT0.plus_seconds(60), nullptr);
  EXPECT_DOUBLE_EQ(q.storage_bytes(), 100.0);  // 40 queued + 60 pending
  q.generate(30.0, kT0.plus_seconds(120));
  EXPECT_DOUBLE_EQ(q.dropped_bytes(), 30.0);   // nothing fits
  // Acks free the space.
  q.acknowledge_all(kT0.plus_seconds(180), nullptr);
  q.generate(30.0, kT0.plus_seconds(240));
  EXPECT_DOUBLE_EQ(q.dropped_bytes(), 30.0);   // fits now
  EXPECT_DOUBLE_EQ(q.queued_bytes(), 70.0);
}

TEST(StorageCapacity, UnlimitedByDefault) {
  core::OnboardQueue q;
  q.generate(1e15, kT0);
  EXPECT_DOUBLE_EQ(q.dropped_bytes(), 0.0);
}

TEST(StorageCapacity, RejectsNonPositiveCapacity) {
  core::OnboardQueue q;
  EXPECT_THROW(q.set_capacity(0.0), std::invalid_argument);
  EXPECT_THROW(q.set_capacity(-5.0), std::invalid_argument);
}

TEST(StorageCapacity, SimulatorAccountsDrops) {
  groundseg::NetworkOptions net;
  net.num_stations = 10;
  net.num_satellites = 6;
  net.tx_fraction = 0.0;  // one TX station; acks are rare
  auto sats = groundseg::generate_constellation(net, kT0);
  for (auto& s : sats) s.storage_capacity_bytes = 5e9;  // tiny recorder
  const auto stations = groundseg::generate_dgs_stations(net);

  core::SimulationOptions opts;
  opts.start = kT0;
  opts.duration_hours = 8.0;
  const core::SimulationResult r =
      core::Simulator(sats, stations, nullptr, opts).run();

  EXPECT_GT(r.total_dropped_bytes, 0.0);
  double generated = 0.0, delivered = 0.0, backlog = 0.0, dropped = 0.0;
  for (const auto& o : r.per_satellite) {
    generated += o.generated_bytes;
    delivered += o.delivered_bytes;
    backlog += o.backlog_bytes;
    dropped += o.dropped_bytes;
    // Storage never exceeded the recorder.
    EXPECT_LE(o.storage_high_water_bytes, 5e9 + 1.0);
  }
  // Conservation with drops: captured = delivered + queued + dropped.
  EXPECT_NEAR(generated, delivered + backlog + dropped,
              generated * 1e-9 + 1.0);
}

TEST(Doppler, MagnitudeAtXBandLeo) {
  // 7.5 km/s closing speed at 8.2 GHz: ~205 kHz upshift.
  const double shift = link::doppler_shift_hz(8.2e9, -7.5);
  EXPECT_NEAR(shift, 205.1e3, 0.5e3);
  EXPECT_GT(shift, 0.0);  // approaching -> carrier up
  // Opening: symmetric, negative.
  EXPECT_NEAR(link::doppler_shift_hz(8.2e9, 7.5), -shift, 1e-9);
  // Zero at closest approach.
  EXPECT_DOUBLE_EQ(link::doppler_shift_hz(8.2e9, 0.0), 0.0);
}

TEST(Doppler, ScalesLinearlyWithFrequency) {
  EXPECT_NEAR(link::doppler_shift_hz(16.4e9, -3.0),
              2.0 * link::doppler_shift_hz(8.2e9, -3.0), 1e-9);
}

TEST(Doppler, PredictedOverARealPass) {
  // Compute Doppler along an ISS pass; it must sweep monotonically from
  // positive (approaching) through ~0 near TCA to negative (receding).
  const orbit::Tle tle = orbit::parse_tle(
      "1 25544U 98067A   08264.51782528 -.00002182  00000-0 -11606-4 0  2927",
      "2 25544  51.6416 247.4627 0006703 130.5360 325.0288 "
      "15.72125391563537");
  const orbit::Sgp4 sat(tle);
  const orbit::Geodetic site{util::deg2rad(47.6), util::deg2rad(-122.3),
                             0.05};
  const auto passes = orbit::predict_passes(sat, site, sat.epoch(),
                                            sat.epoch().plus_days(1.0));
  ASSERT_FALSE(passes.empty());
  const orbit::Pass& p = passes.front();

  auto doppler_at = [&](const util::Epoch& t) {
    const orbit::TemeState st = sat.propagate_to(t);
    util::Vec3 r, v;
    orbit::teme_to_ecef(st.position_km, st.velocity_km_s, t, r, v);
    const orbit::LookAngles la = orbit::look_angles(site, r, v);
    return link::doppler_shift_hz(8.2e9, la.range_rate_km_s);
  };

  const double at_aos = doppler_at(p.aos.plus_seconds(5.0));
  const double at_tca = doppler_at(p.tca);
  const double at_los = doppler_at(p.los.plus_seconds(-5.0));
  EXPECT_GT(at_aos, 50e3);
  EXPECT_LT(at_los, -50e3);
  EXPECT_LT(std::fabs(at_tca), std::fabs(at_aos));
  EXPECT_LT(std::fabs(at_tca), 40e3);
}

TEST(Doppler, RejectsBadFrequency) {
  EXPECT_THROW(link::doppler_shift_hz(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(link::doppler_rate_hz_s(-1.0, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace dgs
