// Shared harness for the figure/table reproduction benches.
//
// Builds the paper's evaluation setup (§4): 259 satellites, 173 DGS ground
// stations (43 in the 25% variant), 5 high-end polar baseline stations, a
// 24-hour horizon at 60 s scheduling quanta, 100 GB/day generated per
// satellite, synthetic weather.
#pragma once

#include <cstdio>
#include <string>

#include "src/core/dgs.h"

namespace dgs::bench {

inline const util::Epoch kEpoch(util::DateTime{2020, 11, 4, 0, 0, 0.0});
inline constexpr std::uint64_t kWeatherSeed = 777;

struct Setup {
  std::vector<groundseg::SatelliteConfig> sats;       ///< 1-channel radio.
  std::vector<groundseg::SatelliteConfig> sats_6ch;   ///< Baseline radio.
  std::vector<groundseg::GroundStation> dgs;          ///< 173 stations.
  std::vector<groundseg::GroundStation> dgs25;        ///< 43 stations.
  std::vector<groundseg::GroundStation> baseline;     ///< 5 polar stations.
};

inline Setup make_paper_setup() {
  groundseg::NetworkOptions opts;  // defaults = paper scale
  Setup s;
  s.sats = groundseg::generate_constellation(opts, kEpoch);
  s.sats_6ch = s.sats;
  for (auto& sat : s.sats_6ch) sat.radio.channels = 6;
  s.dgs = groundseg::generate_dgs_stations(opts);
  s.dgs25 = groundseg::subsample_stations(s.dgs, 0.25);
  s.baseline = groundseg::baseline_stations();
  return s;
}

inline core::SimulationOptions day_sim(
    core::ValueKind value = core::ValueKind::kLatency) {
  core::SimulationOptions o;
  o.start = kEpoch;
  o.duration_hours = 24.0;
  o.step_seconds = 60.0;
  o.value = value;
  return o;
}

/// Prints "label: median (p90, p99)" in the format the paper reports.
inline void print_percentiles(const char* label, const util::SampleSet& s,
                              const char* unit) {
  std::printf("  %-28s median %7.1f %s   p90 %7.1f %s   p99 %7.1f %s\n",
              label, s.percentile(50.0), unit, s.percentile(90.0), unit,
              s.percentile(99.0), unit);
}

/// Prints an evenly-spaced CDF (the data behind the paper's CDF plots).
inline void print_cdf(const char* label, const util::SampleSet& s,
                      const char* unit, int points = 21) {
  std::printf("  CDF of %s [%s]:\n", label, unit);
  std::printf("    %10s  %6s\n", unit, "F(x)");
  for (const auto& [x, f] : s.cdf_curve(points)) {
    std::printf("    %10.1f  %6.3f\n", x, f);
  }
}

}  // namespace dgs::bench
