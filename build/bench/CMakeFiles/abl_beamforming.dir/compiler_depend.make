# Empty compiler generated dependencies file for abl_beamforming.
# This may be replaced when dependencies are built.
