#include "src/obs/trace.h"

#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

namespace dgs::obs {

namespace internal {

std::atomic<bool> g_trace_enabled{false};

std::int64_t trace_now_ns() {
  // dgslint: allow(R1) -- trace timestamps are profiling-only, not replayed
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             now.time_since_epoch())
      .count();
}

namespace {

struct TraceEvent {
  const char* name;
  std::int64_t start_ns;
  std::int64_t dur_ns;
};

/// One per recording thread; owned by the global collector so spans
/// survive their thread (pool workers die with their Simulator).
struct TraceBuffer {
  std::mutex mutex;  ///< Uncontended except against an exporter.
  std::vector<TraceEvent> events;
  int tid = 0;  ///< Stable export id, assigned at registration.
};

struct Collector {
  std::mutex mutex;
  std::vector<std::unique_ptr<TraceBuffer>> buffers;
};

Collector& collector() {
  static Collector c;
  return c;
}

TraceBuffer& this_thread_buffer() {
  thread_local TraceBuffer* buf = [] {
    Collector& c = collector();
    const std::lock_guard<std::mutex> lock(c.mutex);
    c.buffers.push_back(std::make_unique<TraceBuffer>());
    c.buffers.back()->tid = static_cast<int>(c.buffers.size());
    return c.buffers.back().get();
  }();
  return *buf;
}

}  // namespace

void trace_record(const char* name, std::int64_t start_ns,
                  std::int64_t dur_ns) {
  TraceBuffer& buf = this_thread_buffer();
  const std::lock_guard<std::mutex> lock(buf.mutex);
  buf.events.push_back(TraceEvent{name, start_ns, dur_ns});
}

}  // namespace internal

void set_trace_enabled(bool enabled) {
  internal::g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

void write_chrome_trace(std::ostream& out) {
  internal::Collector& c = internal::collector();
  const std::lock_guard<std::mutex> lock(c.mutex);
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  char buf[192];
  bool first = true;
  for (const auto& tb : c.buffers) {
    const std::lock_guard<std::mutex> buf_lock(tb->mutex);
    for (const internal::TraceEvent& e : tb->events) {
      std::snprintf(buf, sizeof(buf),
                    "%s\n{\"name\": \"%s\", \"cat\": \"dgs\", \"ph\": \"X\", "
                    "\"pid\": 1, \"tid\": %d, \"ts\": %.3f, \"dur\": %.3f}",
                    first ? "" : ",", e.name, tb->tid,
                    static_cast<double>(e.start_ns) / 1e3,
                    static_cast<double>(e.dur_ns) / 1e3);
      out << buf;
      first = false;
    }
  }
  out << "\n]}\n";
}

void clear_trace() {
  internal::Collector& c = internal::collector();
  const std::lock_guard<std::mutex> lock(c.mutex);
  for (const auto& tb : c.buffers) {
    const std::lock_guard<std::mutex> buf_lock(tb->mutex);
    tb->events.clear();
  }
}

std::size_t trace_span_count() {
  internal::Collector& c = internal::collector();
  const std::lock_guard<std::mutex> lock(c.mutex);
  std::size_t n = 0;
  for (const auto& tb : c.buffers) {
    const std::lock_guard<std::mutex> buf_lock(tb->mutex);
    n += tb->events.size();
  }
  return n;
}

}  // namespace dgs::obs
