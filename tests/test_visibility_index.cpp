// Spatial visibility index vs the brute-force sweep: identical output.
//
// The index (latitude-band scatter + conservative cone cull, DESIGN.md
// §14) may only ever discard pairs the precise elevation test would
// reject, so the contact graph must match the brute-force sweep bit for
// bit — same edges, same order, same doubles — across constellations,
// epochs, masks, and engine configurations.
#include <gtest/gtest.h>

#include <vector>

#include "src/core/visibility.h"
#include "src/util/angles.h"
#include "src/util/rng.h"

namespace dgs::core {
namespace {

using util::deg2rad;

const util::Epoch kEpoch(util::DateTime{2020, 11, 4, 0, 0, 0.0});

struct Network {
  std::vector<groundseg::SatelliteConfig> sats;
  std::vector<groundseg::GroundStation> stations;
};

Network make_network(int num_sats, int num_stations, std::uint64_t seed) {
  groundseg::NetworkOptions opts;
  opts.num_satellites = num_sats;
  opts.num_stations = num_stations;
  opts.seed = seed;
  return {groundseg::generate_constellation(opts, kEpoch),
          groundseg::generate_dgs_stations(opts)};
}

void expect_identical_contacts(const VisibilityEngine& brute,
                               const VisibilityEngine& indexed,
                               const util::Epoch& t) {
  const std::vector<ContactEdge> a = brute.contacts(t);
  const std::vector<ContactEdge> b = indexed.contacts(t);
  ASSERT_EQ(a.size(), b.size()) << "at " << t.to_string();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].sat, b[i].sat);
    EXPECT_EQ(a[i].station, b[i].station);
    // Bitwise equality: the index must not perturb a single ulp.
    EXPECT_EQ(a[i].elevation_rad, b[i].elevation_rad);
    EXPECT_EQ(a[i].range_km, b[i].range_km);
    EXPECT_EQ(a[i].predicted_rate_bps, b[i].predicted_rate_bps);
    EXPECT_EQ(a[i].modcod, b[i].modcod);
  }
}

TEST(VisibilityIndex, MatchesBruteForceOverRandomizedEpochs) {
  for (const std::uint64_t seed : {1u, 3u, 9u}) {
    const Network net = make_network(24, 16, seed);
    VisibilityEngine brute(net.sats, net.stations, nullptr);
    brute.set_spatial_index(false);
    VisibilityEngine indexed(net.sats, net.stations, nullptr);
    ASSERT_TRUE(indexed.spatial_index());
    util::Rng rng(seed * 1000 + 17);
    for (int trial = 0; trial < 25; ++trial) {
      const util::Epoch t = kEpoch.plus_seconds(rng.uniform(0.0, 86400.0));
      expect_identical_contacts(brute, indexed, t);
    }
  }
}

TEST(VisibilityIndex, MatchesBruteForceAcrossElevationMaskBoundaries) {
  // Stress the cull margin: masks from "horizon" (0 deg, where the
  // visibility cone is widest) up to near-zenith-only (75 deg, where it
  // almost closes), including the paper's 5-40 deg operating range.
  Network net = make_network(32, 12, 11);
  const double masks_deg[] = {0.0, 1.0, 5.0, 10.0, 25.0, 40.0, 60.0, 75.0};
  for (std::size_t g = 0; g < net.stations.size(); ++g) {
    net.stations[g].min_elevation_rad =
        deg2rad(masks_deg[g % (sizeof(masks_deg) / sizeof(masks_deg[0]))]);
  }
  VisibilityEngine brute(net.sats, net.stations, nullptr);
  brute.set_spatial_index(false);
  VisibilityEngine indexed(net.sats, net.stations, nullptr);
  for (int m = 0; m < 120; m += 3) {
    expect_identical_contacts(brute, indexed, kEpoch.plus_seconds(m * 60.0));
  }
}

TEST(VisibilityIndex, MatchesBruteForceWithOwnerConstraints) {
  Network net = make_network(20, 10, 4);
  for (std::size_t g = 0; g < net.stations.size(); ++g) {
    net.stations[g].constraints =
        groundseg::DownlinkConstraints(net.sats.size());
    // Each station denies a different slice of the fleet.
    for (std::size_t s = g; s < net.sats.size(); s += 3) {
      net.stations[g].constraints.deny(s);
    }
  }
  VisibilityEngine brute(net.sats, net.stations, nullptr);
  brute.set_spatial_index(false);
  VisibilityEngine indexed(net.sats, net.stations, nullptr);
  for (int m = 0; m < 200; m += 7) {
    expect_identical_contacts(brute, indexed, kEpoch.plus_seconds(m * 60.0));
  }
}

TEST(VisibilityIndex, ThreadPoolAndCacheDoNotChangeIndexedOutput) {
  const Network net = make_network(28, 14, 6);
  VisibilityEngine plain(net.sats, net.stations, nullptr);
  VisibilityEngine tuned(net.sats, net.stations, nullptr);
  util::ParallelConfig cfg;
  cfg.num_threads = 4;
  cfg.chunk_size = 3;
  util::ThreadPool pool(cfg);
  tuned.set_thread_pool(&pool);
  tuned.enable_geometry_cache(kEpoch, 60.0, 16);
  for (int pass = 0; pass < 2; ++pass) {  // second pass hits the cache
    for (int m = 0; m < 30; m += 2) {
      const util::Epoch t = kEpoch.plus_seconds(m * 60.0);
      const auto a = plain.contacts(t);
      const auto b = tuned.contacts(t);
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].sat, b[i].sat);
        EXPECT_EQ(a[i].station, b[i].station);
        EXPECT_EQ(a[i].elevation_rad, b[i].elevation_rad);
        EXPECT_EQ(a[i].range_km, b[i].range_km);
      }
    }
  }
}

TEST(VisibilityIndex, CullCountersAreConsistent) {
  const Network net = make_network(30, 12, 2);
  obs::Registry registry;
  VisibilityEngine engine(net.sats, net.stations, nullptr);
  engine.set_metrics(&registry);
  int edges = 0;
  for (int m = 0; m < 60; m += 5) {
    edges += static_cast<int>(
        engine.contacts(kEpoch.plus_seconds(m * 60.0)).size());
  }
  const double candidates =
      registry.counter("dgs_vis_cull_candidates_total", "")->value();
  const double precise =
      registry.counter("dgs_vis_cull_precise_total", "")->value();
  // The cull can only narrow: candidates >= precise tests >= edges kept.
  EXPECT_GE(candidates, precise);
  EXPECT_GE(precise, static_cast<double>(edges));
  EXPECT_GT(candidates, 0.0);
  // And it must actually cull something vs the all-pairs product.
  const double all_pairs = 12.0 * 30.0 * 12.0;  // steps x sats x stations
  EXPECT_LT(candidates, all_pairs);
}

TEST(VisibilityIndex, GeometryCacheByteBudgetEvicts) {
  const Network net = make_network(16, 8, 5);
  VisibilityEngine engine(net.sats, net.stations, nullptr);
  // A budget far below one entry's footprint: the cache must keep
  // evicting down to a single resident step, and results stay correct.
  engine.enable_geometry_cache(kEpoch, 60.0, 64, /*max_bytes=*/1);
  VisibilityEngine reference(net.sats, net.stations, nullptr);
  for (int m = 0; m < 10; ++m) {
    const util::Epoch t = kEpoch.plus_seconds(m * 60.0);
    const auto a = reference.contacts(t);
    const auto b = engine.contacts(t);
    ASSERT_EQ(a.size(), b.size());
  }
  ASSERT_NE(engine.geometry_cache(), nullptr);
  EXPECT_LE(engine.geometry_cache()->size(), 2u);
}

}  // namespace
}  // namespace dgs::core
