// Memoized per-step propagation and visibility geometry.
//
// The simulator and the look-ahead planner both query the contact graph on
// the same fixed time grid (one query per scheduling quantum — and, with
// look-ahead replanning or repeated planning sweeps, the same epoch many
// times).  Everything weather-independent about such a query is a pure
// function of (satellite set, station set, epoch): the SGP4 state + ECEF
// position of every satellite, and per station the satellites above its
// elevation mask with their elevation/range.  This cache stores that
// geometry keyed by the integer step index on the grid, so an epoch is
// propagated at most once per horizon instead of up to `lookahead_steps`
// times.
//
// Invalidation rules (DESIGN.md §9): entries are immutable once computed —
// the satellite and station sets a VisibilityEngine is built over never
// change, so a cached step can only become useless, never wrong.  Capacity
// is bounded; when full, the oldest step is evicted (the simulation clock
// only moves forward).  Off-grid epochs bypass the cache entirely.
//
// Sizing (DESIGN.md §14): at constellation scale one step holds tens of
// thousands of satellite positions plus the per-station visibility lists,
// so a step-count bound alone can balloon to gigabytes.  The cache is
// therefore additionally bounded by an estimated byte footprint
// (`max_bytes`), evicting oldest-first until under budget.  Eviction is a
// capacity policy only — it can never change produced values.
//
// Thread-safety: find/emplace are called only from the thread driving the
// simulation; worker threads fill the (pre-sized) vectors of the entry they
// were handed, writing disjoint indices.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "src/obs/metrics.h"
#include "src/util/time.h"
#include "src/util/vec3.h"

namespace dgs::core {

/// One satellite above a station's elevation mask at a step, with the
/// topocentric geometry the link budget needs.
struct VisibleSat {
  int sat = 0;
  double elevation_rad = 0.0;
  double range_km = 0.0;
};

/// Weather-independent geometry of one scheduling step.
struct StepGeometry {
  std::vector<util::Vec3> sat_ecef;  ///< Per satellite, index-aligned.
  /// Per station: satellites above the mask (owner constraints applied),
  /// in ascending satellite order.
  std::vector<std::vector<VisibleSat>> per_station;
};

class GeometryCache {
 public:
  /// Default byte budget for resident step geometry (256 MiB).
  static constexpr std::size_t kDefaultMaxBytes = std::size_t{256} << 20;

  /// Steps are `step_seconds` apart starting at `base`; at most
  /// `capacity_steps` entries are retained (≥ the look-ahead window keeps
  /// a whole planning horizon resident), further bounded by `max_bytes`
  /// of estimated entry footprint.  When `metrics` is non-null, the
  /// hit/miss counters live in that registry
  /// (`dgs_geometry_cache_{hits,misses}_total`); otherwise the cache owns
  /// private counters.  Either way there is a single source of truth —
  /// hits()/misses() read whatever counter backs the cache.
  GeometryCache(const util::Epoch& base, double step_seconds,
                int capacity_steps, obs::Registry* metrics = nullptr,
                std::size_t max_bytes = kDefaultMaxBytes);

  /// Step index of `when` if it lies on the grid (sub-millisecond
  /// tolerance); std::nullopt for off-grid epochs, which must not be
  /// cached under a rounded key.
  std::optional<std::int64_t> step_key(const util::Epoch& when) const;

  /// The cached geometry for a step, or nullptr.  Counts hits/misses.
  const StepGeometry* find(std::int64_t key);

  /// Inserts an empty entry for `key` (evicting oldest steps while past
  /// capacity or over the byte budget) and returns it for the caller to
  /// fill in place.  Byte accounting sees an entry's footprint from the
  /// next emplace on (entries are filled in place after insertion).
  StepGeometry& emplace(std::int64_t key);

  std::size_t size() const { return entries_.size(); }
  std::size_t max_bytes() const { return max_bytes_; }
  /// Estimated footprint of the resident entries.
  std::size_t approx_bytes() const;
  std::uint64_t hits() const {
    return static_cast<std::uint64_t>(hits_->value());
  }
  std::uint64_t misses() const {
    return static_cast<std::uint64_t>(misses_->value());
  }

  /// Checkpoint access (core::Session): resident entries in ascending
  /// step order.  Restoring the contents *and* the hit/miss counts keeps
  /// a resumed run's cache_hit/cache_miss event deltas — and, with a
  /// registry, the scraped counters — bit-identical to an uninterrupted
  /// run.
  const std::map<std::int64_t, StepGeometry>& entries() const {
    return entries_;
  }
  void restore_state(std::map<std::int64_t, StepGeometry> entries,
                     std::uint64_t hits, std::uint64_t misses) {
    entries_ = std::move(entries);
    hits_->reset_to(static_cast<double>(hits));
    misses_->reset_to(static_cast<double>(misses));
  }

 private:
  util::Epoch base_;
  double step_seconds_;
  std::size_t capacity_;
  std::size_t max_bytes_;
  /// Ordered by step: eviction removes the oldest entry first.
  std::map<std::int64_t, StepGeometry> entries_;
  /// Backing for the standalone (no-registry) case.
  std::unique_ptr<obs::Counter> own_hits_;
  std::unique_ptr<obs::Counter> own_misses_;
  obs::Counter* hits_;    ///< Registry-owned or own_hits_.
  obs::Counter* misses_;  ///< Registry-owned or own_misses_.
};

}  // namespace dgs::core
