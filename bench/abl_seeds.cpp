// E18 — sensitivity: do the headline conclusions survive different random
// worlds?  Re-runs the Fig. 3 comparison across five independent seeds for
// the network, constellation, and weather, and reports mean +- spread of
// the key metrics.  A reproduction whose conclusions flip with the seed
// would be worthless; this bench is the guard.
#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace dgs;
  using namespace dgs::bench;

  std::printf("=== E18: seed sensitivity of the Fig. 3 conclusions "
              "(12 h runs) ===\n\n");

  util::SampleSet base_med, dgs_med, ratio_lat, ratio_backlog;
  std::printf("  %6s %14s %14s %14s %14s\n", "seed", "base lat med",
              "DGS lat med", "lat ratio", "backlog ratio");
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    groundseg::NetworkOptions opts;
    opts.seed = seed * 1000 + 7;
    auto sats = groundseg::generate_constellation(opts, kEpoch);
    auto stations = groundseg::generate_dgs_stations(opts);
    auto baseline = groundseg::baseline_stations();
    auto sats6 = sats;
    for (auto& s : sats6) s.radio.channels = 6;
    weather::SyntheticWeatherProvider wx(seed, kEpoch, 13.0);

    core::SimulationOptions sim = day_sim();
    sim.duration_hours = 12.0;  // 2x faster; same orderings

    const core::SimulationResult rb =
        core::Simulator(sats6, baseline, &wx, sim).run();
    const core::SimulationResult rd =
        core::Simulator(sats, stations, &wx, sim).run();

    const double lat_ratio =
        rb.latency_minutes.median() / rd.latency_minutes.median();
    const double backlog_ratio =
        rb.backlog_gb.median() / std::max(1e-9, rd.backlog_gb.median());
    base_med.add(rb.latency_minutes.median());
    dgs_med.add(rd.latency_minutes.median());
    ratio_lat.add(lat_ratio);
    ratio_backlog.add(backlog_ratio);
    std::printf("  %6llu %10.1f min %10.1f min %13.2fx %13.2fx\n",
                static_cast<unsigned long long>(seed),
                rb.latency_minutes.median(), rd.latency_minutes.median(),
                lat_ratio, backlog_ratio);
  }

  std::printf("\n  across seeds: baseline median %.1f-%.1f min, DGS "
              "%.1f-%.1f min\n",
              base_med.min(), base_med.max(), dgs_med.min(), dgs_med.max());
  std::printf("  DGS latency advantage: %.2fx-%.2fx (mean %.2fx); backlog "
              "advantage %.2fx-%.2fx\n",
              ratio_lat.min(), ratio_lat.max(), ratio_lat.mean(),
              ratio_backlog.min(), ratio_backlog.max());
  std::printf("  conclusion holds iff every ratio > 1; the paper's "
              "qualitative claim is seed-robust when this prints no value "
              "at or below 1.\n");
  return 0;
}
