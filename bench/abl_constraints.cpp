// E22 — owner downlink constraints (paper §3.1): "ground station owners
// can maintain control over their resources ... or to maintain regulatory
// restrictions".  Each station's M-bit bitmap denies a random fraction of
// satellites.  How much fragmentation can the network absorb before the
// distributed advantage erodes?
#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace dgs;
  using namespace dgs::bench;

  std::printf("=== E22: owner constraint bitmaps (24 h, 173 stations) "
              "===\n\n");
  weather::SyntheticWeatherProvider wx(kWeatherSeed, kEpoch, 25.0);

  std::printf("  %10s %12s %12s %12s %12s %11s\n", "denied", "lat med",
              "lat p90", "backlog med", "backlog p99", "delivered");
  for (double denial : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9}) {
    groundseg::NetworkOptions opts;
    opts.constraint_denial_fraction = denial;
    const auto sats = groundseg::generate_constellation(opts, kEpoch);
    const auto stations = groundseg::generate_dgs_stations(opts);
    const core::SimulationResult r =
        core::Simulator(sats, stations, &wx, day_sim()).run();
    std::printf("  %9.0f%% %8.1f min %8.1f min %9.2f GB %9.2f GB %8.1f TB\n",
                denial * 100.0, r.latency_minutes.median(),
                r.latency_minutes.percentile(90.0), r.backlog_gb.median(),
                r.backlog_gb.percentile(99.0),
                r.total_delivered_bytes / 1e12);
  }
  std::printf("\n  reading: random fragmentation removes capacity smoothly "
              "(each satellite still finds SOME allowed station), so even "
              "a heavily balkanized network degrades gracefully — the "
              "constraint bitmap is cheap to honor, supporting the paper's "
              "choice to make it a first-class scheduling input.\n");
  return 0;
}
