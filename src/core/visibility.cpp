#include "src/core/visibility.h"

#include <cmath>

#include "src/orbit/frames.h"
#include "src/util/check.h"

namespace dgs::core {

VisibilityEngine::VisibilityEngine(
    const std::vector<groundseg::SatelliteConfig>& sats,
    const std::vector<groundseg::GroundStation>& stations,
    const weather::WeatherProvider* forecast_weather)
    : sats_(&sats), stations_(&stations), wx_(forecast_weather) {
  props_.reserve(sats.size());
  for (const groundseg::SatelliteConfig& sc : sats) {
    props_.emplace_back(sc.tle);
  }
  geom_.reserve(stations.size());
  for (const groundseg::GroundStation& gs : stations) {
    StationGeom g;
    g.ecef = orbit::geodetic_to_ecef(gs.location);
    const double clat = std::cos(gs.location.latitude_rad);
    g.up = {clat * std::cos(gs.location.longitude_rad),
            clat * std::sin(gs.location.longitude_rad),
            std::sin(gs.location.latitude_rad)};
    geom_.push_back(g);
  }
}

util::Vec3 VisibilityEngine::satellite_ecef(int sat,
                                            const util::Epoch& when) const {
  const orbit::TemeState st = props_.at(sat).propagate_to(when);
  return orbit::teme_to_ecef(st.position_km, when);
}

bool VisibilityEngine::visible(int sat, int station,
                               const util::Epoch& when) const {
  const util::Vec3 sat_ecef = satellite_ecef(sat, when);
  const StationGeom& g = geom_.at(station);
  const util::Vec3 rho = sat_ecef - g.ecef;
  const double el = std::asin(rho.dot(g.up) / rho.norm());
  return el >= (*stations_)[station].min_elevation_rad;
}

std::vector<ContactEdge> VisibilityEngine::contacts(
    const util::Epoch& when, std::span<const double> forecast_lead_s,
    std::span<const char> station_down) const {
  DGS_ENSURE(forecast_lead_s.empty() ||
                 forecast_lead_s.size() == props_.size(),
             "forecast_lead_s size=" << forecast_lead_s.size()
                                     << " sats=" << props_.size());
  DGS_ENSURE(station_down.empty() || station_down.size() == stations_->size(),
             "station_down size=" << station_down.size() << " stations="
                                  << stations_->size());

  // Propagate every satellite once for this instant.
  std::vector<util::Vec3> sat_ecef(props_.size());
  for (std::size_t s = 0; s < props_.size(); ++s) {
    sat_ecef[s] = satellite_ecef(static_cast<int>(s), when);
  }

  std::vector<ContactEdge> edges;
  for (std::size_t g = 0; g < stations_->size(); ++g) {
    if (!station_down.empty() && station_down[g]) continue;
    const groundseg::GroundStation& gs = (*stations_)[g];
    const StationGeom& geom = geom_[g];

    // Zero-lead forecast is shared by all satellites at this station; cache.
    std::optional<weather::WeatherSample> station_wx;

    for (std::size_t s = 0; s < props_.size(); ++s) {
      if (!gs.constraints.allows(s)) continue;
      const util::Vec3 rho = sat_ecef[s] - geom.ecef;
      const double range = rho.norm();
      const double el = std::asin(rho.dot(geom.up) / range);
      if (el < gs.min_elevation_rad) continue;

      weather::WeatherSample wx;  // defaults to clear sky
      if (wx_ != nullptr) {
        const double lead =
            forecast_lead_s.empty() ? 0.0 : forecast_lead_s[s];
        if (lead <= 0.0) {
          if (!station_wx) {
            station_wx = wx_->actual(gs.location.latitude_rad,
                                     gs.location.longitude_rad, when);
          }
          wx = *station_wx;
        } else {
          wx = wx_->forecast(gs.location.latitude_rad,
                             gs.location.longitude_rad, when, lead);
        }
      }

      link::PathConditions path;
      path.range_km = range;
      path.elevation_rad = el;
      path.site_latitude_rad = gs.location.latitude_rad;
      path.site_altitude_km = gs.location.altitude_km;
      path.rain_rate_mm_h = wx.rain_rate_mm_h;
      path.cloud_liquid_kg_m2 = wx.cloud_liquid_kg_m2;

      // Beamforming stations split aperture power across their beams;
      // model the conservative full-split penalty by scaling the
      // aperture efficiency down by the beam count.
      link::ReceiveSystem rx = gs.receiver;
      if (gs.beam_count > 1) {
        rx.aperture_efficiency /= gs.beam_count;
      }
      const link::LinkBudget b =
          link::evaluate_link((*sats_)[s].radio, rx, path);
      if (!b.closes()) continue;

      ContactEdge e;
      e.sat = static_cast<int>(s);
      e.station = static_cast<int>(g);
      e.elevation_rad = el;
      e.range_km = range;
      e.predicted_rate_bps = b.data_rate_bps;
      e.modcod = b.modcod;
      edges.push_back(e);
    }
  }
  return edges;
}

}  // namespace dgs::core
