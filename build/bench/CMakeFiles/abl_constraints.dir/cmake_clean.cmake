file(REMOVE_RECURSE
  "CMakeFiles/abl_constraints.dir/abl_constraints.cpp.o"
  "CMakeFiles/abl_constraints.dir/abl_constraints.cpp.o.d"
  "abl_constraints"
  "abl_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
