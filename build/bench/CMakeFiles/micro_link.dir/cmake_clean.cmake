file(REMOVE_RECURSE
  "CMakeFiles/micro_link.dir/micro_link.cpp.o"
  "CMakeFiles/micro_link.dir/micro_link.cpp.o.d"
  "micro_link"
  "micro_link.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
