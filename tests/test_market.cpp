// Bidding market: multiplier resolution and scheduler/station-time effects.
#include <gtest/gtest.h>

#include <stdexcept>

#include "src/core/market.h"
#include "src/core/simulator.h"

namespace dgs::core {
namespace {

const util::Epoch kT0(util::DateTime{2020, 11, 4, 0, 0, 0.0});

TEST(BidMatrix, DefaultsToUnity) {
  BidMatrix bids({0, 0, 1});
  EXPECT_DOUBLE_EQ(bids.multiplier(0, 5), 1.0);
  EXPECT_DOUBLE_EQ(bids.multiplier(2, 0), 1.0);
}

TEST(BidMatrix, StationBidOverridesDefaultBid) {
  BidMatrix bids({0, 1});
  bids.set_default_bid(1, 2.0);
  bids.set_bid(1, 7, 5.0);
  EXPECT_DOUBLE_EQ(bids.multiplier(1, 3), 2.0);   // default
  EXPECT_DOUBLE_EQ(bids.multiplier(1, 7), 5.0);   // station-specific
  EXPECT_DOUBLE_EQ(bids.multiplier(0, 7), 1.0);   // other operator
}

TEST(BidMatrix, RejectsBadInputs) {
  EXPECT_THROW(BidMatrix({}), std::invalid_argument);
  BidMatrix bids({0});
  EXPECT_THROW(bids.set_bid(0, 0, 0.0), std::invalid_argument);
  EXPECT_THROW(bids.set_default_bid(0, -1.0), std::invalid_argument);
}

TEST(BidMatrix, ModifierScalesValues) {
  BidMatrix bids({0, 1});
  bids.set_default_bid(1, 3.0);
  const EdgeValueModifier mod = bids.as_modifier();
  EXPECT_DOUBLE_EQ(mod(0, 4, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(mod(1, 4, 10.0), 30.0);
}

TEST(Market, HigherBidderWinsContestedStations) {
  // Two operators with identical fleets; operator 1 bids 4x everywhere.
  groundseg::NetworkOptions net;
  net.num_stations = 8;   // scarce stations => real contention
  net.num_satellites = 24;
  net.seed = 29;
  const auto sats = groundseg::generate_constellation(net, kT0);
  const auto stations = groundseg::generate_dgs_stations(net);

  std::vector<int> operator_of(sats.size());
  for (std::size_t s = 0; s < sats.size(); ++s) {
    operator_of[s] = s % 2;  // interleaved so orbits are comparable
  }
  BidMatrix bids(operator_of);
  bids.set_default_bid(1, 4.0);

  SimulationOptions opts;
  opts.start = kT0;
  opts.duration_hours = 8.0;
  opts.edge_value_modifier = bids.as_modifier();
  const SimulationResult r =
      Simulator(sats, stations, nullptr, opts).run();

  double delivered[2] = {0.0, 0.0};
  for (std::size_t s = 0; s < sats.size(); ++s) {
    delivered[operator_of[s]] += r.per_satellite[s].delivered_bytes;
  }
  EXPECT_GT(delivered[1], delivered[0] * 1.05)
      << "the 4x bidder should move measurably more data";
}

TEST(Market, UnitBidsChangeNothing) {
  groundseg::NetworkOptions net;
  net.num_stations = 12;
  net.num_satellites = 10;
  const auto sats = groundseg::generate_constellation(net, kT0);
  const auto stations = groundseg::generate_dgs_stations(net);
  BidMatrix bids(std::vector<int>(sats.size(), 0));

  SimulationOptions plain;
  plain.start = kT0;
  plain.duration_hours = 4.0;
  SimulationOptions with_bids = plain;
  with_bids.edge_value_modifier = bids.as_modifier();

  const SimulationResult a = Simulator(sats, stations, nullptr, plain).run();
  const SimulationResult b =
      Simulator(sats, stations, nullptr, with_bids).run();
  EXPECT_DOUBLE_EQ(a.total_delivered_bytes, b.total_delivered_bytes);
  EXPECT_EQ(a.assignments, b.assignments);
}

}  // namespace
}  // namespace dgs::core
