// Figure 3a — data backlog CDF: Baseline vs DGS vs DGS(25%).
//
// Paper numbers (24 h, 259 satellites, 100 GB/day each):
//   baseline: median 8.5 GB (p90 28.9, p99 80.7)
//   DGS:      median 1.9 GB (p90  5.3, p99 16.7)   -> ~5x better
//   DGS(25%): median 3.9 GB (p90 20.1, p99 66.7)
// Also reproduces the §4 headline totals (E4): data downloaded by DGS in a
// day, plus the aggregate assigned link capacity ("could download" volume).
#include "bench/common.h"

int main() {
  using namespace dgs;
  using namespace dgs::bench;

  std::printf(
      "=== Fig. 3a: Data backlog CDF (24 h, 259 sats, 100 GB/day) ===\n");
  const Setup setup = make_paper_setup();
  weather::SyntheticWeatherProvider wx(kWeatherSeed, kEpoch, 25.0);

  const core::SimulationResult baseline =
      core::Simulator(setup.sats_6ch, setup.baseline, &wx, day_sim()).run();
  const core::SimulationResult dgs =
      core::Simulator(setup.sats, setup.dgs, &wx, day_sim()).run();
  const core::SimulationResult dgs25 =
      core::Simulator(setup.sats, setup.dgs25, &wx, day_sim()).run();

  std::printf("\nEnd-of-day backlog per satellite (paper Fig. 3a):\n");
  print_percentiles("Baseline (5 polar, 6ch)", baseline.backlog_gb, "GB");
  print_percentiles("DGS (173 stations)", dgs.backlog_gb, "GB");
  print_percentiles("DGS(25%) (43 stations)", dgs25.backlog_gb, "GB");

  std::printf("\n");
  print_cdf("backlog: Baseline", baseline.backlog_gb, "GB");
  print_cdf("backlog: DGS", dgs.backlog_gb, "GB");
  print_cdf("backlog: DGS(25%)", dgs25.backlog_gb, "GB");

  std::printf("\n=== E4: daily transfer totals ===\n");
  std::printf("  generated (workload):        %7.1f TB\n",
              dgs.total_generated_bytes / 1e12);
  std::printf("  DGS delivered:               %7.1f TB (%.1f%% of workload)\n",
              dgs.total_delivered_bytes / 1e12,
              100.0 * dgs.delivered_fraction());
  std::printf("  DGS assigned link capacity:  %7.1f TB (paper: >250 TB "
              "including capacity beyond the 100 GB/day workload)\n",
              dgs.assigned_capacity_bytes / 1e12);
  std::printf("  baseline delivered:          %7.1f TB\n",
              baseline.total_delivered_bytes / 1e12);
  std::printf("\n  improvement DGS vs baseline: median %.1fx, p90 %.1fx, "
              "p99 %.1fx (paper: ~5x)\n",
              baseline.backlog_gb.median() / dgs.backlog_gb.median(),
              baseline.backlog_gb.percentile(90.0) /
                  dgs.backlog_gb.percentile(90.0),
              baseline.backlog_gb.percentile(99.0) /
                  dgs.backlog_gb.percentile(99.0));
  return 0;
}
