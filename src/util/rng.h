// Deterministic random number generation.
//
// Every stochastic component in DGS (weather fields, synthetic constellation,
// workload arrivals) draws from an explicitly seeded Rng so whole-system runs
// are reproducible bit-for-bit.  We wrap the standard 64-bit Mersenne engine
// behind a narrow interface so call sites stay independent of the engine.
#pragma once

#include <cstdint>
#include <random>

namespace dgs::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Normal with the given mean and standard deviation.
  double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Exponential with the given rate (lambda).
  double exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Bernoulli trial.
  bool chance(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Derives an independent child stream; used to give each subsystem its own
  /// stream so adding draws in one place does not perturb another.
  Rng fork(std::uint64_t stream_id) {
    // SplitMix64 finalizer over (state, stream) gives well-decorrelated seeds.
    std::uint64_t z = engine_() + 0x9E3779B97F4A7C15ull * (stream_id + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return Rng(z ^ (z >> 31));
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace dgs::util
