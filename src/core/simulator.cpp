#include "src/core/simulator.h"

#include "src/core/session.h"
#include "src/util/check.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

namespace dgs::core {

namespace {

/// Builds the structured error for one violated constraint.
std::optional<OptionsError> err(std::string field, std::string message) {
  return OptionsError{std::move(field), std::move(message)};
}

std::string num(double v) {
  std::ostringstream s;
  s << v;
  return s.str();
}

/// Shared checks for a scheduled fault window (station outages and
/// backhaul degradations alike).
std::optional<OptionsError> check_window(const std::string& field,
                                         int station_index,
                                         double start_hours,
                                         double end_hours,
                                         int num_stations) {
  if (num_stations >= 0 &&
      (station_index < 0 || station_index >= num_stations)) {
    return err(field + ".station_index",
               "station index " + num(station_index) +
                   " out of range [0, " + num(num_stations) + ")");
  }
  if (end_hours < start_hours) {
    return err(field + ".end_hours",
               "window ends (" + num(end_hours) +
                   " h) before it starts (" + num(start_hours) + " h)");
  }
  return std::nullopt;
}

bool valid_tenant_name(const std::string& name) {
  if (name.empty()) return false;
  if (!(name[0] >= 'a' && name[0] <= 'z')) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

std::optional<OptionsError> SimulationOptions::validate(
    int num_stations, std::span<const int> station_ids,
    int num_satellites) const {
  if (!(duration_hours > 0.0)) {
    return err("duration_hours",
               "must be > 0 (got " + num(duration_hours) + ")");
  }
  if (!(step_seconds > 0.0)) {
    return err("step_seconds",
               "must be > 0 (got " + num(step_seconds) + ")");
  }
  if (lookahead_hours < 0.0) {
    return err("lookahead_hours",
               "must be >= 0 (got " + num(lookahead_hours) + ")");
  }
  if (urgent_fraction < 0.0 || urgent_fraction > 1.0) {
    return err("urgent_fraction",
               "must be in [0, 1] (got " + num(urgent_fraction) + ")");
  }
  if (urgent_fraction > 0.0 && !(urgent_priority > 0.0)) {
    return err("urgent_priority",
               "must be > 0 (got " + num(urgent_priority) + ")");
  }
  if (initial_backlog_bytes < 0.0) {
    return err("initial_backlog_bytes",
               "must be >= 0 (got " + num(initial_backlog_bytes) + ")");
  }
  if (station_backhaul_bps < 0.0) {
    return err("station_backhaul_bps",
               "must be >= 0 (got " + num(station_backhaul_bps) + ")");
  }
  if (slew_seconds < 0.0) {
    return err("slew_seconds",
               "must be >= 0 (got " + num(slew_seconds) + ")");
  }
  if (parallel.num_threads < 0) {
    return err("parallel.num_threads",
               "must be >= 0 (got " + num(parallel.num_threads) + ")");
  }
  if (parallel.chunk_size <= 0) {
    return err("parallel.chunk_size",
               "must be > 0 (got " + num(parallel.chunk_size) + ")");
  }

  for (std::size_t i = 0; i < station_subset.size(); ++i) {
    const int id = station_subset[i];
    const std::string field =
        "station_subset[" + num(static_cast<double>(i)) + "]";
    if (id < 0) {
      return err(field, "station id must be >= 0 (got " + num(id) + ")");
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (station_subset[j] == id) {
        return err(field, "duplicate station id " + num(id));
      }
    }
    if (!station_ids.empty() &&
        std::find(station_ids.begin(), station_ids.end(), id) ==
            station_ids.end()) {
      return err(field,
                 "unknown station id " + num(id) +
                     " (not in the loaded station set)");
    }
  }

  for (std::size_t i = 0; i < faults.outages.size(); ++i) {
    const faults::OutageWindow& o = faults.outages[i];
    if (auto e = check_window(
            "faults.outages[" + num(static_cast<double>(i)) + "]",
            o.station_index, o.start_hours, o.end_hours, num_stations)) {
      return e;
    }
  }

  const faults::StationChurn& churn = faults.churn;
  if (churn.mtbf_hours < 0.0) {
    return err("faults.churn.mtbf_hours",
               "must be >= 0 (got " + num(churn.mtbf_hours) + ")");
  }
  if (churn.mtbf_hours > 0.0 && !(churn.mttr_hours > 0.0)) {
    return err("faults.churn.mttr_hours",
               "must be > 0 when churn is enabled (got " +
                   num(churn.mttr_hours) + ")");
  }
  if (churn.station_fraction < 0.0 || churn.station_fraction > 1.0) {
    return err("faults.churn.station_fraction",
               "must be in [0, 1] (got " + num(churn.station_fraction) +
                   ")");
  }

  if (!faults.backhaul.empty() && !(station_backhaul_bps > 0.0)) {
    return err("faults.backhaul",
               "backhaul degradation requires station_backhaul_bps > 0 "
               "(no edge queues are modelled otherwise)");
  }
  for (std::size_t i = 0; i < faults.backhaul.size(); ++i) {
    const faults::BackhaulFault& f = faults.backhaul[i];
    const std::string field =
        "faults.backhaul[" + num(static_cast<double>(i)) + "]";
    if (auto e = check_window(field, f.station_index, f.start_hours,
                              f.end_hours, num_stations)) {
      return e;
    }
    if (f.rate_multiplier < 0.0 || f.rate_multiplier > 1.0) {
      return err(field + ".rate_multiplier",
                 "must be in [0, 1] (got " + num(f.rate_multiplier) + ")");
    }
  }

  const faults::AckRelayFaults& ack = faults.ack_relay;
  if (ack.loss_probability < 0.0 || ack.loss_probability >= 1.0) {
    return err("faults.ack_relay.loss_probability",
               "must be in [0, 1) (got " + num(ack.loss_probability) +
                   ")");
  }
  if (ack.loss_probability > 0.0) {
    if (!(ack.initial_backoff_s > 0.0)) {
      return err("faults.ack_relay.initial_backoff_s",
                 "must be > 0 (got " + num(ack.initial_backoff_s) + ")");
    }
    if (ack.backoff_multiplier < 1.0) {
      return err("faults.ack_relay.backoff_multiplier",
                 "must be >= 1 (got " + num(ack.backoff_multiplier) + ")");
    }
    if (ack.max_backoff_s < ack.initial_backoff_s) {
      return err("faults.ack_relay.max_backoff_s",
                 "must be >= initial_backoff_s (got " +
                     num(ack.max_backoff_s) + ")");
    }
    if (ack.max_attempts < 1) {
      return err("faults.ack_relay.max_attempts",
                 "must be >= 1 (got " + num(ack.max_attempts) + ")");
    }
  }

  const double pu = faults.plan_upload.failure_probability;
  if (pu < 0.0 || pu >= 1.0) {
    return err("faults.plan_upload.failure_probability",
               "must be in [0, 1) (got " + num(pu) + ")");
  }

  // Multi-tenant service mode (DESIGN.md §16).  The tenant slices must
  // partition the fleet: disjoint always; covering whenever the fleet
  // size is known.
  if (!tenants.empty()) {
    if (lookahead_hours > 0.0) {
      return err("tenants",
                 "multi-tenant arbitration requires per-instant "
                 "scheduling (lookahead_hours must be 0)");
    }
    std::vector<char> claimed(
        num_satellites >= 0 ? static_cast<std::size_t>(num_satellites) : 0,
        0);
    std::size_t total_claimed = 0;
    for (std::size_t i = 0; i < tenants.size(); ++i) {
      const TenantSpec& t = tenants[i];
      const std::string field =
          "tenants[" + num(static_cast<double>(i)) + "]";
      if (!valid_tenant_name(t.name)) {
        return err(field + ".name",
                   "must match [a-z][a-z0-9_]* (got \"" + t.name + "\")");
      }
      for (std::size_t j = 0; j < i; ++j) {
        if (tenants[j].name == t.name) {
          return err(field + ".name",
                     "duplicate tenant name \"" + t.name + "\"");
        }
      }
      if (!(t.weight > 0.0) || !std::isfinite(t.weight)) {
        return err(field + ".weight",
                   "must be finite and > 0 (got " + num(t.weight) + ")");
      }
      if (t.sla_latency_minutes < 0.0) {
        return err(field + ".sla_latency_minutes",
                   "must be >= 0 (got " + num(t.sla_latency_minutes) +
                       ")");
      }
      if (t.satellites.empty()) {
        return err(field + ".satellites",
                   "tenant must own at least one satellite");
      }
      for (std::size_t k = 0; k < t.satellites.size(); ++k) {
        const int s = t.satellites[k];
        const std::string sat_field =
            field + ".satellites[" + num(static_cast<double>(k)) + "]";
        if (s < 0) {
          return err(sat_field,
                     "satellite index must be >= 0 (got " + num(s) + ")");
        }
        if (num_satellites >= 0) {
          if (s >= num_satellites) {
            return err(sat_field, "satellite index " + num(s) +
                                      " out of range [0, " +
                                      num(num_satellites) + ")");
          }
          if (claimed[static_cast<std::size_t>(s)] != 0) {
            return err(sat_field, "satellite " + num(s) +
                                      " already claimed by an earlier "
                                      "tenant");
          }
          claimed[static_cast<std::size_t>(s)] = 1;
        } else {
          for (std::size_t j = 0; j <= i; ++j) {
            for (std::size_t m = 0;
                 m < (j == i ? k : tenants[j].satellites.size()); ++m) {
              if (tenants[j].satellites[m] == s) {
                return err(sat_field,
                           "satellite " + num(s) +
                               " already claimed by an earlier tenant");
              }
            }
          }
        }
        total_claimed += 1;
      }
    }
    if (num_satellites >= 0 &&
        total_claimed != static_cast<std::size_t>(num_satellites)) {
      return err("tenants",
                 "tenant slices cover " +
                     num(static_cast<double>(total_claimed)) + " of " +
                     num(num_satellites) +
                     " satellites; every satellite must belong to "
                     "exactly one tenant");
    }
  }
  return std::nullopt;
}

Simulator::Simulator(std::vector<groundseg::SatelliteConfig> sats,
                     std::vector<groundseg::GroundStation> stations,
                     const weather::WeatherProvider* actual_weather,
                     const SimulationOptions& opts)
    : sats_(std::move(sats)), stations_(std::move(stations)),
      actual_wx_(actual_weather), opts_(opts) {
  // Session repeats the full validation at construction; running it here
  // too preserves the long-standing contract that an invalid Simulator
  // throws at *construction*, not at run().
  DGS_ENSURE(!sats_.empty() && !stations_.empty(),
             "sats=" << sats_.size() << " stations=" << stations_.size());
  std::vector<int> station_ids;
  station_ids.reserve(stations_.size());
  for (const groundseg::GroundStation& gs : stations_) {
    station_ids.push_back(gs.id);
  }
  int num_filtered = static_cast<int>(stations_.size());
  if (!opts_.station_subset.empty()) {
    num_filtered = 0;
    for (const groundseg::GroundStation& gs : stations_) {
      if (std::find(opts_.station_subset.begin(),
                    opts_.station_subset.end(),
                    gs.id) != opts_.station_subset.end()) {
        num_filtered += 1;
      }
    }
  }
  if (const auto e = opts_.validate(num_filtered, station_ids,
                                    static_cast<int>(sats_.size()))) {
    // dgslint: allow(R4) -- renders OptionsError; format is test-pinned
    throw std::invalid_argument("SimulationOptions." + e->field + ": " +
                                e->message);
  }
}

SimulationResult Simulator::run() {
  Session session(sats_, stations_, actual_wx_, opts_);
  return session.run_to_end();
}

}  // namespace dgs::core
