// CRC-32 (IEEE 802.3 polynomial), used to integrity-protect serialized
// downlink plans and ack reports crossing the TT&C uplink.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace dgs::util {

/// CRC-32/ISO-HDLC: poly 0x04C11DB7 (reflected 0xEDB88320), init 0xFFFFFFFF,
/// reflected in/out, final xor 0xFFFFFFFF.  crc32("123456789") ==
/// 0xCBF43926.
std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Incremental form: feed `data` into a running CRC.  Start with
/// crc32_init(), finish with crc32_final().
std::uint32_t crc32_init();
std::uint32_t crc32_update(std::uint32_t state,
                           std::span<const std::uint8_t> data);
std::uint32_t crc32_final(std::uint32_t state);

}  // namespace dgs::util
