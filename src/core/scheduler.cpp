#include "src/core/scheduler.h"

#include "src/obs/trace.h"
#include "src/util/check.h"

namespace dgs::core {

Scheduler::Scheduler(const VisibilityEngine* engine,
                     const SchedulerConfig& config)
    : engine_(engine), config_(config),
      value_(make_value_function(config.value)) {
  DGS_ENSURE(engine_ != nullptr, "null visibility engine");
  DGS_ENSURE_GT(config.quantum_seconds, 0.0);
  if (obs::Registry* metrics = engine_->metrics(); metrics != nullptr) {
    instants_ = metrics->counter("dgs_sched_instants_total",
                                 "schedule_instant invocations");
    matched_edges_ = metrics->counter(
        "dgs_sched_matched_edges_total",
        "Assignments selected by the matcher across all instants");
    warm_hits_ = metrics->counter(
        "dgs_sched_warm_hits_total",
        "Instants where the previous stable matching was reused as-is");
    cold_starts_ = metrics->counter(
        "dgs_sched_cold_starts_total",
        "Instants that ran full Gale-Shapley deferred acceptance");
  }
}

std::vector<ContactEdge> Scheduler::schedule_instant(
    const util::Epoch& when, const std::vector<OnboardQueue>& queues,
    std::span<const double> forecast_lead_s,
    std::span<const char> station_down) const {
  DGS_ENSURE_EQ(static_cast<int>(queues.size()), engine_->num_sats());
  DGS_TRACE_SPAN("sched.instant");
  if (instants_ != nullptr) instants_->inc();

  std::vector<ContactEdge> contacts =
      engine_->contacts(when, forecast_lead_s, station_down);

  // Weight edges by the value of the data each could move this quantum.
  // Per-index writes keep the parallel path bit-identical to serial; a
  // user-supplied edge_value_modifier may be stateful (e.g. bidding), so
  // its presence forces the serial path.
  std::vector<Edge> edges(contacts.size());
  const auto weigh = [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t i = begin; i < end; ++i) {
      ContactEdge& c = contacts[static_cast<std::size_t>(i)];
      const double link_bytes =
          c.predicted_rate_bps * config_.quantum_seconds / 8.0;
      c.weight = value_->edge_value(queues[c.sat], when, link_bytes);
      if (config_.sat_value_scale != nullptr) {
        c.weight *=
            (*config_.sat_value_scale)[static_cast<std::size_t>(c.sat)];
      }
      if (config_.edge_value_modifier) {
        c.weight = config_.edge_value_modifier(c.sat, c.station, c.weight);
      }
      edges[static_cast<std::size_t>(i)] = Edge{c.sat, c.station, c.weight};
    }
  };
  util::ThreadPool* pool = engine_->thread_pool();
  if (pool != nullptr && !config_.edge_value_modifier) {
    pool->parallel_for(static_cast<std::int64_t>(contacts.size()), weigh);
  } else {
    weigh(0, static_cast<std::int64_t>(contacts.size()));
  }

  // Beamforming stations (beam_count > 1) turn the problem into a
  // capacitated matching; node-duplicate for the optimal matcher.
  bool any_beams = false;
  std::vector<int> capacities(engine_->num_stations());
  for (int g = 0; g < engine_->num_stations(); ++g) {
    capacities[g] = std::max(1, engine_->station(g).beam_count);
    any_beams |= capacities[g] > 1;
  }

  DGS_TRACE_SPAN("sched.match");
  Matching m;
  if (!any_beams) {
    if (config_.matcher == MatcherKind::kStable && config_.warm_start) {
      // Warm-start from the previous instant; the result is identical to
      // stable_matching (unique stable matching, see matching.h).
      const std::int64_t hits_before = warm_.warm_hits();
      const std::int64_t colds_before = warm_.cold_starts();
      m = warm_.match(edges, engine_->num_sats(), engine_->num_stations());
      if (warm_hits_ != nullptr && warm_.warm_hits() > hits_before) {
        warm_hits_->inc();
      }
      if (cold_starts_ != nullptr && warm_.cold_starts() > colds_before) {
        cold_starts_->inc();
      }
    } else {
      m = run_matcher(config_.matcher, edges, engine_->num_sats(),
                      engine_->num_stations());
    }
  } else {
    switch (config_.matcher) {
      case MatcherKind::kStable:
        m = stable_b_matching(edges, engine_->num_sats(), capacities);
        break;
      case MatcherKind::kGreedy:
        m = greedy_b_matching(edges, engine_->num_sats(), capacities);
        break;
      case MatcherKind::kOptimal: {
        // Duplicate each station into `capacity` slots and solve the
        // one-to-one problem; slots map back to the original station.
        std::vector<int> slot_of_station(engine_->num_stations() + 1, 0);
        for (int g = 0; g < engine_->num_stations(); ++g) {
          slot_of_station[g + 1] = slot_of_station[g] + capacities[g];
        }
        std::vector<Edge> expanded;
        std::vector<int> expanded_to_original;
        expanded.reserve(edges.size() * 2);
        for (std::size_t i = 0; i < edges.size(); ++i) {
          for (int k = 0; k < capacities[edges[i].station]; ++k) {
            expanded.push_back(Edge{edges[i].sat,
                                    slot_of_station[edges[i].station] + k,
                                    edges[i].weight});
            expanded_to_original.push_back(static_cast<int>(i));
          }
        }
        const Matching slots =
            optimal_matching(expanded, engine_->num_sats(),
                             slot_of_station[engine_->num_stations()]);
        for (int ei : slots) m.push_back(expanded_to_original[ei]);
        break;
      }
    }
  }

  // Invariant audit: the selected matching must be physically valid (no
  // double-booked satellite; stations within beam capacity) and — for the
  // Gale-Shapley matcher — stable.  Optimal/greedy matchings are valid but
  // intentionally not stable, so stability is only asserted for kStable.
#ifdef DGS_ENABLE_DCHECKS
  const bool audit_stability = config_.matcher == MatcherKind::kStable;
  const std::string audit =
      any_beams ? validate_b_matching(edges, m, engine_->num_sats(),
                                      capacities, audit_stability)
                : validate_matching(edges, m, engine_->num_sats(),
                                    engine_->num_stations(), audit_stability);
  DGS_CHECK(audit.empty(), audit);
#endif

  std::vector<ContactEdge> out;
  out.reserve(m.size());
  for (int ei : m) out.push_back(contacts[ei]);
  if (matched_edges_ != nullptr) {
    matched_edges_->inc(static_cast<double>(m.size()));
  }
  return out;
}

}  // namespace dgs::core
