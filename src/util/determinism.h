#pragma once

/// Compile-time enforcement of the determinism contract (DESIGN.md §9 and
/// §13).  When DGS_ENFORCE_DETERMINISM is defined (the dev-preset default)
/// this header is force-included into every src/ translation unit and
/// poisons the APIs that dgslint rules R1/R3 ban textually, so a violation
/// that dodges the linter (macros, generated code) still fails to compile.
///
/// Poisoning strategy: `#pragma GCC poison` rejects *any* later use of a
/// token, including inside standard headers.  Every standard header that
/// legitimately mentions a poisoned identifier is therefore included first
/// — its include guard turns any later textual inclusion into a no-op, so
/// the pragmas only ever fire on project code.
///
/// Escape hatches:
///  - DGS_DETERMINISM_ALLOW_WALL_CLOCK (per-file compile definition) keeps
///    the chrono clocks usable; src/obs/trace.cpp gets it because trace
///    timestamps are profiling observability outside the contract.
///  - `thread`, `mt19937`, and `time` cannot be token-poisoned (the first
///    two are spelled in src/util/thread_pool.h and src/util/rng.h, the
///    whitelisted owners; `time` is too common a word).  R3/R1 keep
///    covering those textually, and the deleted dgs::time overload below
///    catches unqualified ::time(...) calls inside the project namespace.

#if defined(DGS_ENFORCE_DETERMINISM) && defined(__GNUC__)

#include <algorithm>
#include <array>
#include <atomic>
#include <cctype>
#include <chrono>
#include <clocale>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <deque>
#include <filesystem>
#include <fstream>
#include <functional>
#include <future>
#include <iomanip>
#include <iterator>
#include <limits>
#include <locale>
#include <map>
#include <memory>
#include <mutex>
#include <numeric>
#include <optional>
#include <random>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

// R1 — nondeterministic value/seed sources.  Seeds come from
// SimulationOptions/FaultPlan; generators are util::SplitMix64,
// faults::Pcg32, or the whitelisted util::Rng.
#pragma GCC poison rand srand rand_r drand48 lrand48 mrand48 srand48
#pragma GCC poison random_device

// R1 — locale- and timezone-dependent formatting.  Artifacts are
// byte-stable: snprintf with "%.*f" and util::Epoch only.
#pragma GCC poison setlocale localtime gmtime strftime put_time

// R3 — ad-hoc task launch.  Parallelism goes through util::ThreadPool so
// shard/chunk assignment stays deterministic.
#pragma GCC poison async

#ifndef DGS_DETERMINISM_ALLOW_WALL_CLOCK
// R1 — wall clocks.  Simulation time advances via StepClock/util::Epoch.
#pragma GCC poison system_clock steady_clock high_resolution_clock
#endif

namespace dgs {
/// Unqualified time(...) inside namespace dgs resolves here and fails to
/// compile; qualified ::time is already unreachable through code review +
/// dgslint R1.
template <typename... Args>
void time(Args&&...) = delete;
}  // namespace dgs

#endif  // DGS_ENFORCE_DETERMINISM && __GNUC__
