// Station agendas: job fusion, non-overlap, pointing sanity, CSV export.
#include <gtest/gtest.h>

#include <sstream>

#include "src/core/agenda.h"
#include "src/util/angles.h"

namespace dgs::core {
namespace {

const util::Epoch kT0(util::DateTime{2020, 11, 4, 0, 0, 0.0});

class AgendaTest : public ::testing::Test {
 protected:
  AgendaTest() {
    groundseg::NetworkOptions net;
    net.num_stations = 20;
    net.num_satellites = 15;
    net.seed = 41;
    sats_ = groundseg::generate_constellation(net, kT0);
    stations_ = groundseg::generate_dgs_stations(net);
    engine_ = std::make_unique<VisibilityEngine>(sats_, stations_, nullptr);
    queues_.resize(sats_.size());
    for (auto& q : queues_) q.generate(50e9, kT0.plus_seconds(-3600));
    plan_ = plan_horizon(*engine_, queues_, phi_, kT0, 360, 60.0);
    agendas_ = build_agendas(*engine_, plan_, kT0, 60.0);
  }

  std::vector<groundseg::SatelliteConfig> sats_;
  std::vector<groundseg::GroundStation> stations_;
  std::unique_ptr<VisibilityEngine> engine_;
  std::vector<OnboardQueue> queues_;
  LatencyValue phi_;
  HorizonPlan plan_;
  std::vector<StationAgenda> agendas_;
};

TEST_F(AgendaTest, EveryStationGetsAnAgendaObject) {
  EXPECT_EQ(agendas_.size(), stations_.size());
  int total_jobs = 0;
  for (const auto& a : agendas_) {
    total_jobs += static_cast<int>(a.entries.size());
  }
  EXPECT_GT(total_jobs, 0);
}

TEST_F(AgendaTest, JobsAreChronologicalAndNonOverlapping) {
  for (const auto& a : agendas_) {
    for (std::size_t i = 1; i < a.entries.size(); ++i) {
      EXPECT_GE(a.entries[i].start.seconds_since(a.entries[i - 1].stop),
                -1e-6)
          << "station " << a.station;
    }
    for (const auto& e : a.entries) {
      EXPECT_GT(e.duration_seconds(), 0.0);
    }
  }
}

TEST_F(AgendaTest, AgendaVolumeMatchesPlanVolume) {
  double plan_bytes = 0.0;
  for (const auto& step : plan_.per_step) {
    for (const ContactEdge& e : step) {
      plan_bytes += e.predicted_rate_bps * 60.0 / 8.0;
    }
  }
  double agenda_bytes = 0.0;
  for (const auto& a : agendas_) {
    for (const auto& e : a.entries) agenda_bytes += e.expected_bytes;
  }
  EXPECT_NEAR(agenda_bytes, plan_bytes, plan_bytes * 1e-9 + 1.0);
}

TEST_F(AgendaTest, PointingIsAboveTheMaskDuringJobs) {
  for (const auto& a : agendas_) {
    const double mask_deg =
        util::rad2deg(stations_[a.station].min_elevation_rad);
    for (const auto& e : a.entries) {
      // Quantization of job boundaries allows a small dip below the mask
      // at the very edges; the mid-job pointing must be comfortably up.
      EXPECT_GT(e.tca_pointing.elevation_deg, mask_deg - 1.0);
      EXPECT_GE(e.aos_pointing.elevation_deg, mask_deg - 3.0);
      EXPECT_GE(e.aos_pointing.azimuth_deg, 0.0);
      EXPECT_LT(e.aos_pointing.azimuth_deg, 360.0);
    }
  }
}

TEST_F(AgendaTest, JobsAreFusedNotPerQuantum) {
  // At 60 s quanta a 6-10 minute pass must fuse into one job, so the mean
  // job duration is far above one quantum.
  double total = 0.0;
  int count = 0;
  for (const auto& a : agendas_) {
    for (const auto& e : a.entries) {
      total += e.duration_seconds();
      ++count;
    }
  }
  ASSERT_GT(count, 0);
  EXPECT_GT(total / count, 150.0);  // > 2.5 quanta on average
}

TEST_F(AgendaTest, CsvExportIsParseable) {
  const StationAgenda* busiest = &agendas_[0];
  for (const auto& a : agendas_) {
    if (a.entries.size() > busiest->entries.size()) busiest = &a;
  }
  std::stringstream ss;
  write_agenda_csv(ss, *busiest);
  std::string line;
  int lines = 0;
  while (std::getline(ss, line)) {
    if (lines == 0) {
      EXPECT_NE(line.find("sat,start,stop"), std::string::npos);
    } else {
      // 10 comma-separated fields per row.
      EXPECT_EQ(std::count(line.begin(), line.end(), ','), 9) << line;
    }
    ++lines;
  }
  EXPECT_EQ(lines, static_cast<int>(busiest->entries.size()) + 1);
}

}  // namespace
}  // namespace dgs::core
