file(REMOVE_RECURSE
  "libdgs_backend.a"
)
