// Two-body utilities: Kepler equation solver, element <-> state round trips,
// orbital period behaviour.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "src/orbit/kepler.h"
#include "src/util/angles.h"
#include "src/util/constants.h"

namespace dgs::orbit {
namespace {

using util::deg2rad;

TEST(SolveKepler, CircularOrbitIsIdentity) {
  for (double m = -3.0; m <= 3.0; m += 0.37) {
    EXPECT_NEAR(solve_kepler(m, 0.0), util::wrap_pi(m), 1e-12);
  }
}

TEST(SolveKepler, SatisfiesKeplersEquation) {
  for (double e : {0.001, 0.1, 0.5, 0.9, 0.99}) {
    for (double m = -3.1; m <= 3.1; m += 0.17) {
      const double ea = solve_kepler(m, e);
      EXPECT_NEAR(ea - e * std::sin(ea), util::wrap_pi(m), 1e-10)
          << "e=" << e << " m=" << m;
    }
  }
}

TEST(SolveKepler, RejectsInvalidEccentricity) {
  EXPECT_THROW(solve_kepler(1.0, -0.1), std::domain_error);
  EXPECT_THROW(solve_kepler(1.0, 1.0), std::domain_error);
}

TEST(MeanMotion, MatchesKeplersThirdLaw) {
  // GEO: a = 42164 km -> period of one sidereal day.
  const double n = mean_motion_rad_s(42164.0);
  EXPECT_NEAR(util::kTwoPi / n, 86164.0, 30.0);
  // 550 km LEO: ~95.6 min period.
  const double n_leo = mean_motion_rad_s(6928.0);
  EXPECT_NEAR(util::kTwoPi / n_leo / 60.0, 95.6, 0.3);
}

TEST(TwoBody, RadiusBoundsRespectEccentricity) {
  KeplerianElements el;
  el.semi_major_axis_km = 7000.0;
  el.eccentricity = 0.1;
  el.inclination_rad = deg2rad(51.6);
  const double period_s = util::kTwoPi / mean_motion_rad_s(7000.0);
  for (double t = 0.0; t < period_s; t += period_s / 37.0) {
    const double r = propagate_two_body(el, t).position_km.norm();
    EXPECT_GE(r, 7000.0 * 0.9 - 1e-6);
    EXPECT_LE(r, 7000.0 * 1.1 + 1e-6);
  }
}

TEST(TwoBody, PeriodReturnsToStart) {
  KeplerianElements el;
  el.semi_major_axis_km = 6928.0;
  el.eccentricity = 0.02;
  el.inclination_rad = deg2rad(97.5);
  el.raan_rad = deg2rad(123.0);
  el.arg_perigee_rad = deg2rad(45.0);
  el.mean_anomaly_rad = deg2rad(200.0);
  const double period_s = util::kTwoPi / mean_motion_rad_s(6928.0);
  const StateVector s0 = propagate_two_body(el, 0.0);
  const StateVector s1 = propagate_two_body(el, period_s);
  EXPECT_NEAR((s1.position_km - s0.position_km).norm(), 0.0, 1e-6);
  EXPECT_NEAR((s1.velocity_km_s - s0.velocity_km_s).norm(), 0.0, 1e-9);
}

TEST(TwoBody, AngularMomentumIsConserved) {
  KeplerianElements el;
  el.semi_major_axis_km = 7200.0;
  el.eccentricity = 0.3;
  el.inclination_rad = deg2rad(63.4);
  const util::Vec3 h0 = propagate_two_body(el, 0.0).position_km.cross(
      propagate_two_body(el, 0.0).velocity_km_s);
  for (double t : {100.0, 1000.0, 5000.0}) {
    const StateVector s = propagate_two_body(el, t);
    const util::Vec3 h = s.position_km.cross(s.velocity_km_s);
    EXPECT_NEAR((h - h0).norm(), 0.0, 1e-6 * h0.norm());
  }
}

class ElementsRoundTrip
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(ElementsRoundTrip, StateToElementsInvertsPropagation) {
  const auto [ecc, incl_deg, ma_deg] = GetParam();
  KeplerianElements el;
  el.semi_major_axis_km = 6928.0;
  el.eccentricity = ecc;
  el.inclination_rad = deg2rad(incl_deg);
  el.raan_rad = deg2rad(77.0);
  el.arg_perigee_rad = deg2rad(130.0);
  el.mean_anomaly_rad = deg2rad(ma_deg);

  const StateVector sv = propagate_two_body(el, 0.0);
  const KeplerianElements back = elements_from_state(sv);

  EXPECT_NEAR(back.semi_major_axis_km, el.semi_major_axis_km, 1e-6);
  EXPECT_NEAR(back.eccentricity, el.eccentricity, 1e-9);
  EXPECT_NEAR(back.inclination_rad, el.inclination_rad, 1e-9);
  if (ecc > 1e-6) {
    EXPECT_NEAR(util::wrap_pi(back.raan_rad - el.raan_rad), 0.0, 1e-8);
    EXPECT_NEAR(util::wrap_pi(back.arg_perigee_rad - el.arg_perigee_rad), 0.0,
                1e-7);
    EXPECT_NEAR(util::wrap_pi(back.mean_anomaly_rad - el.mean_anomaly_rad),
                0.0, 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ElementsRoundTrip,
    ::testing::Values(std::make_tuple(0.001, 51.6, 10.0),
                      std::make_tuple(0.1, 97.5, 123.0),
                      std::make_tuple(0.3, 28.5, 250.0),
                      std::make_tuple(0.6, 63.4, 359.0),
                      std::make_tuple(0.001, 5.0, 45.0)));

TEST(ElementsFromState, RejectsHyperbolic) {
  StateVector sv{{7000.0, 0.0, 0.0}, {0.0, 12.0, 0.0}};  // > escape speed
  EXPECT_THROW(elements_from_state(sv), std::domain_error);
}

}  // namespace
}  // namespace dgs::orbit
