file(REMOVE_RECURSE
  "CMakeFiles/station_agenda.dir/station_agenda.cpp.o"
  "CMakeFiles/station_agenda.dir/station_agenda.cpp.o.d"
  "station_agenda"
  "station_agenda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/station_agenda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
