// Beamforming end-to-end: the power-split penalty in visibility and the
// capacitated matching in the scheduler/simulator.
#include <gtest/gtest.h>

#include <map>

#include "src/core/simulator.h"

namespace dgs::core {
namespace {

const util::Epoch kT0(util::DateTime{2020, 11, 4, 0, 0, 0.0});

groundseg::NetworkOptions small_net() {
  groundseg::NetworkOptions net;
  net.num_stations = 8;    // scarce => contention
  net.num_satellites = 25;
  net.seed = 47;
  return net;
}

TEST(Beams, SplitReducesPredictedRates) {
  const auto sats = groundseg::generate_constellation(small_net(), kT0);
  auto single = groundseg::generate_dgs_stations(small_net());
  auto multi = single;
  for (auto& gs : multi) gs.beam_count = 4;

  VisibilityEngine e1(sats, single, nullptr);
  VisibilityEngine e4(sats, multi, nullptr);
  int compared = 0;
  for (double m = 0.0; m < 360.0; m += 10.0) {
    const util::Epoch t = kT0.plus_seconds(m * 60.0);
    const auto a = e1.contacts(t);
    const auto b = e4.contacts(t);
    for (const auto& ea : a) {
      for (const auto& eb : b) {
        if (ea.sat == eb.sat && ea.station == eb.station) {
          EXPECT_LE(eb.predicted_rate_bps, ea.predicted_rate_bps + 1e-6);
          ++compared;
        }
      }
    }
    // The 4-beam graph can only lose edges (weaker per-beam link).
    EXPECT_LE(b.size(), a.size());
  }
  EXPECT_GT(compared, 10);
}

TEST(Beams, SchedulerServesUpToBeamCountPerStation) {
  const auto sats = groundseg::generate_constellation(small_net(), kT0);
  auto stations = groundseg::generate_dgs_stations(small_net());
  for (auto& gs : stations) gs.beam_count = 3;

  VisibilityEngine engine(sats, stations, nullptr);
  Scheduler sched(&engine, SchedulerConfig{});
  std::vector<OnboardQueue> queues(sats.size());
  for (auto& q : queues) q.generate(50e9, kT0.plus_seconds(-3600));

  bool saw_multi = false;
  for (double m = 0.0; m < 720.0; m += 5.0) {
    const auto assigned =
        sched.schedule_instant(kT0.plus_seconds(m * 60.0), queues);
    std::map<int, int> per_station;
    std::map<int, int> per_sat;
    for (const ContactEdge& e : assigned) {
      per_station[e.station] += 1;
      per_sat[e.sat] += 1;
    }
    for (const auto& [g, n] : per_station) {
      EXPECT_LE(n, 3) << "station " << g;
      if (n > 1) saw_multi = true;
    }
    for (const auto& [s, n] : per_sat) {
      EXPECT_EQ(n, 1) << "satellite " << s;
    }
  }
  EXPECT_TRUE(saw_multi) << "contention should exercise multiple beams";
}

TEST(Beams, SimulatorServesMoreSatellitesUnderContention) {
  const auto sats = groundseg::generate_constellation(small_net(), kT0);
  auto single = groundseg::generate_dgs_stations(small_net());
  auto multi = single;
  for (auto& gs : multi) gs.beam_count = 3;

  SimulationOptions opts;
  opts.start = kT0;
  opts.duration_hours = 8.0;
  const SimulationResult r1 =
      Simulator(sats, single, nullptr, opts).run();
  const SimulationResult r3 =
      Simulator(sats, multi, nullptr, opts).run();
  // More simultaneous service slots were used...
  EXPECT_GT(r3.assignments, r1.assignments);
  // ...and the system keeps functioning: whether the extra slots beat the
  // 4.8 dB per-beam penalty is parameter-dependent (see bench E12), so
  // only assert the trade stays bounded.
  EXPECT_GT(r3.total_delivered_bytes, r1.total_delivered_bytes * 0.7);
  EXPECT_LT(r3.latency_minutes.median(),
            r1.latency_minutes.median() * 2.0);
}

TEST(Beams, OptimalMatcherHandlesCapacitiesViaDuplication) {
  const auto sats = groundseg::generate_constellation(small_net(), kT0);
  auto stations = groundseg::generate_dgs_stations(small_net());
  for (auto& gs : stations) gs.beam_count = 2;

  VisibilityEngine engine(sats, stations, nullptr);
  SchedulerConfig cfg;
  cfg.matcher = MatcherKind::kOptimal;
  Scheduler sched(&engine, cfg);
  std::vector<OnboardQueue> queues(sats.size());
  for (auto& q : queues) q.generate(50e9, kT0.plus_seconds(-3600));

  for (double m = 0.0; m < 240.0; m += 20.0) {
    const auto assigned =
        sched.schedule_instant(kT0.plus_seconds(m * 60.0), queues);
    std::map<int, int> per_station;
    for (const ContactEdge& e : assigned) per_station[e.station] += 1;
    for (const auto& [g, n] : per_station) EXPECT_LE(n, 2);
  }
}

}  // namespace
}  // namespace dgs::core
