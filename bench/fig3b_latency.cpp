// Figure 3b — capture-to-ground latency CDF: Baseline vs DGS vs DGS(25%).
//
// Paper numbers:
//   baseline: median 58 min (p90 293, p99 438)
//   DGS:      median 12 min (p90  44, p99  88)   -> 4-5x lower
//   DGS(25%): median 20 min (p90  58, p99  88)
// The headline claim: even with aggregate capacity BELOW the baseline,
// DGS(25%) achieves much lower latency because a satellite encounters many
// more ground stations along its orbit.
#include "bench/common.h"

int main() {
  using namespace dgs;
  using namespace dgs::bench;

  std::printf("=== Fig. 3b: Latency CDF (24 h, 259 sats, 100 GB/day) ===\n");
  const Setup setup = make_paper_setup();
  weather::SyntheticWeatherProvider wx(kWeatherSeed, kEpoch, 25.0);

  const core::SimulationResult baseline =
      core::Simulator(setup.sats_6ch, setup.baseline, &wx, day_sim()).run();
  const core::SimulationResult dgs =
      core::Simulator(setup.sats, setup.dgs, &wx, day_sim()).run();
  const core::SimulationResult dgs25 =
      core::Simulator(setup.sats, setup.dgs25, &wx, day_sim()).run();

  std::printf("\nCapture-to-reception latency per chunk (paper Fig. 3b):\n");
  print_percentiles("Baseline (5 polar, 6ch)", baseline.latency_minutes,
                    "min");
  print_percentiles("DGS (173 stations)", dgs.latency_minutes, "min");
  print_percentiles("DGS(25%) (43 stations)", dgs25.latency_minutes, "min");

  std::printf("\n");
  print_cdf("latency: Baseline", baseline.latency_minutes, "min");
  print_cdf("latency: DGS", dgs.latency_minutes, "min");
  print_cdf("latency: DGS(25%)", dgs25.latency_minutes, "min");

  std::printf("\n  improvement DGS vs baseline: median %.1fx, p90 %.1fx "
              "(paper: ~4-5x)\n",
              baseline.latency_minutes.median() / dgs.latency_minutes.median(),
              baseline.latency_minutes.percentile(90.0) /
                  dgs.latency_minutes.percentile(90.0));
  std::printf("  mean latency: baseline %.0f min vs DGS %.0f min "
              "(paper: 58 -> 12)\n",
              baseline.latency_minutes.mean(), dgs.latency_minutes.mean());
  return 0;
}
