
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/link/antenna.cpp" "src/link/CMakeFiles/dgs_link.dir/antenna.cpp.o" "gcc" "src/link/CMakeFiles/dgs_link.dir/antenna.cpp.o.d"
  "/root/repo/src/link/budget.cpp" "src/link/CMakeFiles/dgs_link.dir/budget.cpp.o" "gcc" "src/link/CMakeFiles/dgs_link.dir/budget.cpp.o.d"
  "/root/repo/src/link/clouds.cpp" "src/link/CMakeFiles/dgs_link.dir/clouds.cpp.o" "gcc" "src/link/CMakeFiles/dgs_link.dir/clouds.cpp.o.d"
  "/root/repo/src/link/dvbs2.cpp" "src/link/CMakeFiles/dgs_link.dir/dvbs2.cpp.o" "gcc" "src/link/CMakeFiles/dgs_link.dir/dvbs2.cpp.o.d"
  "/root/repo/src/link/dvbs2_framing.cpp" "src/link/CMakeFiles/dgs_link.dir/dvbs2_framing.cpp.o" "gcc" "src/link/CMakeFiles/dgs_link.dir/dvbs2_framing.cpp.o.d"
  "/root/repo/src/link/gases.cpp" "src/link/CMakeFiles/dgs_link.dir/gases.cpp.o" "gcc" "src/link/CMakeFiles/dgs_link.dir/gases.cpp.o.d"
  "/root/repo/src/link/rain.cpp" "src/link/CMakeFiles/dgs_link.dir/rain.cpp.o" "gcc" "src/link/CMakeFiles/dgs_link.dir/rain.cpp.o.d"
  "/root/repo/src/link/ttc.cpp" "src/link/CMakeFiles/dgs_link.dir/ttc.cpp.o" "gcc" "src/link/CMakeFiles/dgs_link.dir/ttc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dgs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
