#!/usr/bin/env python3
"""Merge google-benchmark JSON outputs and gate on regressions.

Used by the CI bench-smoke lane:

  1. each micro bench runs with --benchmark_format=json --benchmark_out=...
  2. this script merges those files into one artifact (BENCH_micro.json)
  3. benchmarks whose names appear in the baseline are compared; if any
     gated benchmark's real_time exceeds baseline * threshold the script
     exits non-zero and prints the offenders.

The baseline (bench/baseline.json) pins the gated family (micro_simulator)
on the runner class CI uses; refresh it by copying the artifact's
"benchmarks" entries for the gated names after a deliberate perf change:

  python3 bench/check_regression.py --merge-only --out bench/baseline.json \
      BENCH_micro_simulator.json

Only relative time matters, so a baseline captured on slower hardware makes
the gate lenient, never flaky-strict, for faster runners.
"""

import argparse
import json
import re
import sys


def load_benchmarks(paths):
    merged = {"benchmarks": [], "contexts": {}}
    for path in paths:
        with open(path) as fh:
            data = json.load(fh)
        merged["benchmarks"].extend(data.get("benchmarks", []))
        if "context" in data:
            exe = data["context"].get("executable", path)
            merged["contexts"][exe] = data["context"]
    return merged


def by_name(doc):
    out = {}
    for b in doc.get("benchmarks", []):
        # aggregate rows (mean/median/stddev) would double-count; keep the
        # plain iteration rows only.
        if b.get("run_type", "iteration") != "iteration":
            continue
        out[b["name"]] = b
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("inputs", nargs="+",
                    help="google-benchmark JSON output files")
    ap.add_argument("--baseline", default=None,
                    help="checked-in baseline JSON to gate against")
    ap.add_argument("--threshold", type=float, default=1.25,
                    help="fail when real_time > baseline * threshold")
    ap.add_argument("--out", default=None,
                    help="write the merged artifact here")
    ap.add_argument("--merge-only", action="store_true",
                    help="merge and write --out without gating")
    ap.add_argument("--filter", default=None, metavar="REGEX",
                    help="gate only baseline entries whose name matches "
                         "(lets lanes share one baseline file)")
    ap.add_argument("--exclude", default=None, metavar="REGEX",
                    help="skip baseline entries whose name matches")
    args = ap.parse_args()

    merged = load_benchmarks(args.inputs)
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(merged, fh, indent=1, sort_keys=True)
        print(f"wrote {args.out} ({len(merged['benchmarks'])} benchmarks)")
    if args.merge_only:
        return 0

    if not args.baseline:
        print("no --baseline given and not --merge-only", file=sys.stderr)
        return 2
    with open(args.baseline) as fh:
        baseline = by_name(json.load(fh))
    current = by_name(merged)

    failures = []
    compared = 0
    for name, base in sorted(baseline.items()):
        if args.filter and not re.search(args.filter, name):
            continue
        if args.exclude and re.search(args.exclude, name):
            continue
        cur = current.get(name)
        if cur is None:
            failures.append(f"{name}: present in baseline but not in run")
            continue
        compared += 1
        ratio = cur["real_time"] / base["real_time"]
        status = "OK " if ratio <= args.threshold else "FAIL"
        print(f"  [{status}] {name}: {cur['real_time']:.0f} vs baseline "
              f"{base['real_time']:.0f} {base.get('time_unit', 'ns')} "
              f"(x{ratio:.2f}, limit x{args.threshold:.2f})")
        if ratio > args.threshold:
            failures.append(
                f"{name}: {ratio:.2f}x the baseline real_time "
                f"(limit {args.threshold:.2f}x)")

    if compared == 0:
        failures.append("no benchmark in the run matched the baseline")
    if failures:
        print("\nbench regression gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print(f"\nbench regression gate passed ({compared} benchmarks).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
