file(REMOVE_RECURSE
  "CMakeFiles/tab_pass_stats.dir/tab_pass_stats.cpp.o"
  "CMakeFiles/tab_pass_stats.dir/tab_pass_stats.cpp.o.d"
  "tab_pass_stats"
  "tab_pass_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_pass_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
