#include "src/weather/climatology.h"

#include <cmath>

#include "src/util/angles.h"

namespace dgs::weather {

double storm_density_weight(double latitude_rad) {
  const double lat = std::fabs(util::rad2deg(latitude_rad));
  if (lat < 10.0) return 1.0;             // ITCZ: deep convection.
  if (lat < 25.0) return 0.35;            // Subtropical ridge: suppressed.
  if (lat < 60.0) return 0.7;             // Mid-latitude storm tracks.
  if (lat < 75.0) return 0.35;            // Subpolar.
  return 0.15;                            // Polar deserts.
}

double typical_peak_rain_mm_h(double latitude_rad) {
  const double lat = std::fabs(util::rad2deg(latitude_rad));
  if (lat < 10.0) return 40.0;   // Tropical convective cores.
  if (lat < 25.0) return 25.0;
  if (lat < 60.0) return 15.0;   // Frontal/stratiform dominated.
  return 5.0;                    // Cold, low-moisture precipitation.
}

double background_cloud_kg_m2(double latitude_rad) {
  const double lat = std::fabs(util::rad2deg(latitude_rad));
  if (lat < 10.0) return 0.25;
  if (lat < 25.0) return 0.08;
  if (lat < 60.0) return 0.20;
  return 0.12;
}

}  // namespace dgs::weather
