#include "src/link/dvbs2_framing.h"

#include <cmath>

#include "src/util/check.h"

namespace dgs::link {
namespace {

/// EN 302 307 table 5a: normal FECFRAME BCH/LDPC block sizes.
struct RateRow {
  int num, den;  ///< Code rate as a fraction.
  int k_bch, k_ldpc;
};
constexpr RateRow kRates[] = {
    {1, 4, 16008, 16200},  {1, 3, 21408, 21600},  {2, 5, 25728, 25920},
    {1, 2, 32208, 32400},  {3, 5, 38688, 38880},  {2, 3, 43040, 43200},
    {3, 4, 48408, 48600},  {4, 5, 51648, 51840},  {5, 6, 53840, 54000},
    {8, 9, 57472, 57600},  {9, 10, 58192, 58320},
};

}  // namespace

FecParams fec_params(double code_rate) {
  for (const RateRow& r : kRates) {
    if (std::fabs(code_rate - static_cast<double>(r.num) / r.den) < 1e-9) {
      return FecParams{r.k_bch, r.k_ldpc};
    }
  }
  DGS_ENSURE(false, "code_rate=" << code_rate
                                 << " is not a DVB-S2 normal-frame rate");
}

int bits_per_symbol(Modulation mod) {
  switch (mod) {
    case Modulation::kQpsk:
      return 2;
    case Modulation::k8psk:
      return 3;
    case Modulation::k16apsk:
      return 4;
    case Modulation::k32apsk:
      return 5;
  }
  DGS_CHECK(false, "unknown modulation " << static_cast<int>(mod));
}

int plframe_payload_bits(const ModCod& mc) {
  return fec_params(mc.code_rate).k_bch - kBbHeaderBits;
}

int plframe_symbols(const ModCod& mc, bool pilots) {
  const int data_symbols = kFecFrameBits / bits_per_symbol(mc.modulation);
  int symbols = kPlHeaderSymbols + data_symbols;
  if (pilots) {
    const int slots = data_symbols / kSlotSymbols;
    // A 36-symbol pilot block follows every 16th slot, except after the
    // last slot group (EN 302 307 §5.5.3).
    symbols += (slots - 1) / 16 * kPilotBlockSymbols;
  }
  return symbols;
}

double derived_efficiency(const ModCod& mc, bool pilots) {
  return static_cast<double>(plframe_payload_bits(mc)) /
         plframe_symbols(mc, pilots);
}

FrameAccounting frame_accounting(const ModCod& mc, double payload_bytes,
                                 double symbol_rate_hz, bool pilots) {
  DGS_ENSURE_GE(payload_bytes, 0.0);
  DGS_ENSURE_GT(symbol_rate_hz, 0.0);
  FrameAccounting acc;
  const double payload_bits = payload_bytes * 8.0;
  const int per_frame = plframe_payload_bits(mc);
  acc.frames = static_cast<std::int64_t>(
      std::ceil(payload_bits / per_frame));
  acc.total_symbols = acc.frames * plframe_symbols(mc, pilots);
  acc.duration_s = static_cast<double>(acc.total_symbols) / symbol_rate_hz;
  acc.efficiency_achieved =
      acc.total_symbols > 0
          ? payload_bits / static_cast<double>(acc.total_symbols)
          : 0.0;
  return acc;
}

std::uint8_t modcod_index(const ModCod& mc) {
  const auto table = dvbs2_modcods();
  for (std::size_t i = 0; i < table.size(); ++i) {
    if (&table[i] == &mc || table[i].name == mc.name) {
      return static_cast<std::uint8_t>(i);
    }
  }
  DGS_ENSURE(false, "modcod '" << mc.name << "' is not a table entry");
}

const ModCod& modcod_by_index(std::uint8_t index) {
  const auto table = dvbs2_modcods();
  DGS_ENSURE(index < table.size(),
             "index=" << static_cast<int>(index) << " vs table size "
                      << table.size());
  return table[index];
}

}  // namespace dgs::link
