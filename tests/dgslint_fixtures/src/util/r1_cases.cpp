// dgslint fixture: R1 positives, a suppressed case, and negatives.
#include <chrono>
#include <cstdlib>
#include <random>

int r1_rand() { return rand(); }                      // finding: R1 rand()
int r1_time() { return static_cast<int>(time(nullptr)); }  // finding: R1
std::mt19937 r1_engine(42);                           // finding: R1 engine

long r1_suppressed_clock() {
  // dgslint: allow(R1) -- fixture: suppression on the line above
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

long r1_suppressed_inline() {
  return rand();  // dgslint: allow(R1) -- fixture: same-line suppression
}

// Negatives: "rand" inside identifiers/strings/comments must not fire.
int operand_count = 0;                     // 'rand' inside a word
const char* r1_string = "call rand() now"; // inside a string literal
// comment mentioning rand() and steady_clock
