#include "src/link/antenna.h"

#include <cmath>
#include <stdexcept>

#include "src/util/constants.h"

namespace dgs::link {

double dish_gain_dbi(double diameter_m, double freq_hz, double efficiency) {
  if (diameter_m <= 0.0 || freq_hz <= 0.0) {
    throw std::invalid_argument("dish_gain_dbi: non-positive diameter/freq");
  }
  if (efficiency <= 0.0 || efficiency > 1.0) {
    throw std::invalid_argument("dish_gain_dbi: efficiency outside (0,1]");
  }
  const double x = util::kPi * diameter_m * freq_hz / util::kSpeedOfLight;
  return 10.0 * std::log10(efficiency * x * x);
}

double system_noise_temp_k(const ReceiveSystem& rx, double atmos_loss_db) {
  if (atmos_loss_db < 0.0) {
    throw std::invalid_argument("system_noise_temp_k: negative loss");
  }
  constexpr double kMediumTempK = 275.0;
  const double transmissivity = std::pow(10.0, -atmos_loss_db / 10.0);
  // Clear-sky contribution is attenuated by the medium; the medium emits.
  const double sky = rx.clear_sky_temp_k * transmissivity +
                     kMediumTempK * (1.0 - transmissivity);
  return sky + rx.ground_spillover_k + rx.lna_noise_temp_k;
}

double g_over_t_db(const ReceiveSystem& rx, double freq_hz,
                   double atmos_loss_db) {
  const double g = dish_gain_dbi(rx.dish_diameter_m, freq_hz,
                                 rx.aperture_efficiency);
  const double t = system_noise_temp_k(rx, atmos_loss_db);
  return g - 10.0 * std::log10(t);
}

}  // namespace dgs::link
