# Empty dependencies file for abl_outage.
# This may be replaced when dependencies are built.
