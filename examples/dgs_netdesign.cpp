// dgs_netdesign — ground-station selection with cost/performance fronts.
//
//   dgs_netdesign [--pool <n>] [--pool-seed <n>] [--sats <n>]
//                 [--hours <h>] [--step <s>] [--k <a,b,c>]
//                 [--budget <cost>] [--refine] [--threads <n>]
//                 [--front-out <file>] [--subset-out <file>]
//                 [--metrics-out <file>]
//
// Selects K stations from a seeded candidate pool (lazy-greedy over the
// precomputed value table, optionally refined by full-simulator local
// search), sweeps the requested Ks into a cost-vs-latency/backlog Pareto
// front (`dgs.netdesign.v1`), and writes the best subset in the
// --stations-subset format every other CLI replays.  Output artifacts are
// byte-identical for any --threads value and across reruns.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "examples/cli_common.h"
#include "src/core/run_artifact.h"
#include "src/groundseg/io.h"
#include "src/netdesign/pareto.h"
#include "src/obs/metrics.h"
#include "src/weather/synthetic.h"

namespace {

using namespace dgs;

constexpr std::uint64_t kWeatherSeed = 42;

util::Epoch start_epoch() {
  // Fixed reference epoch: runs must be reproducible.
  return util::Epoch(util::DateTime{2020, 11, 4, 0, 0, 0.0});
}

std::vector<int> parse_k_list(const char* arg) {
  std::vector<int> ks;
  std::stringstream ss(arg);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    const int k = std::atoi(tok.c_str());
    if (k <= 0) return {};
    ks.push_back(k);
  }
  return ks;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: dgs_netdesign [--pool <n>] [--pool-seed <n>] [--sats <n>]\n"
      "                     [--hours <h>] [--step <s>] [--k <a,b,c>]\n"
      "                     [--budget <cost>] [--refine] [--threads <n>]\n"
      "                     [--front-out <file>] [--subset-out <file>]\n"
      "                     [--metrics-out <file>]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  groundseg::NetworkOptions net;
  net.pool_size = 60;
  net.pool_seed = 42;
  net.num_satellites = 40;
  double hours = 6.0;
  double step_seconds = 60.0;
  std::vector<int> ks = {8, 16, 24};
  double budget = 0.0;
  bool refine = false;
  std::string front_path, subset_path;
  examples::CommonFlags flags;

  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (examples::parse_common_flag(argc, argv, &i, &flags)) {
      continue;  // --threads / --metrics-out
    } else if (std::strcmp(argv[i], "--pool") == 0 &&
               (v = examples::flag_value(argc, argv, &i))) {
      net.pool_size = std::atoi(v);
    } else if (std::strcmp(argv[i], "--pool-seed") == 0 &&
               (v = examples::flag_value(argc, argv, &i))) {
      net.pool_seed = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(argv[i], "--sats") == 0 &&
               (v = examples::flag_value(argc, argv, &i))) {
      net.num_satellites = std::atoi(v);
    } else if (std::strcmp(argv[i], "--hours") == 0 &&
               (v = examples::flag_value(argc, argv, &i))) {
      hours = std::atof(v);
    } else if (std::strcmp(argv[i], "--step") == 0 &&
               (v = examples::flag_value(argc, argv, &i))) {
      step_seconds = std::atof(v);
    } else if (std::strcmp(argv[i], "--k") == 0 &&
               (v = examples::flag_value(argc, argv, &i))) {
      ks = parse_k_list(v);
    } else if (std::strcmp(argv[i], "--budget") == 0 &&
               (v = examples::flag_value(argc, argv, &i))) {
      budget = std::atof(v);
    } else if (std::strcmp(argv[i], "--refine") == 0) {
      refine = true;
    } else if (std::strcmp(argv[i], "--front-out") == 0 &&
               (v = examples::flag_value(argc, argv, &i))) {
      front_path = v;
    } else if (std::strcmp(argv[i], "--subset-out") == 0 &&
               (v = examples::flag_value(argc, argv, &i))) {
      subset_path = v;
    } else {
      return usage();
    }
  }
  const int threads = flags.threads;
  const std::string& metrics_path = flags.metrics_out;
  if (net.pool_size <= 0 || net.num_satellites <= 0 || hours <= 0.0 ||
      step_seconds <= 0.0 || ks.empty() || threads < 0 || budget < 0.0) {
    return usage();
  }
  for (std::size_t i = 0; i < ks.size(); ++i) {
    if (ks[i] > net.pool_size || (i > 0 && ks[i] <= ks[i - 1])) {
      std::fprintf(stderr,
                   "error: --k must be strictly ascending and <= --pool\n");
      return 2;
    }
  }

  try {
    const util::Epoch start = start_epoch();
    const auto pool = netdesign::make_candidate_pool(net);
    const auto sats = groundseg::generate_constellation(net, start);
    weather::SyntheticWeatherProvider wx(kWeatherSeed, start, hours + 1.0);

    obs::Registry registry;
    obs::Registry* metrics = metrics_path.empty() ? nullptr : &registry;

    netdesign::ValueTableOptions table_opts;
    table_opts.start = start;
    table_opts.duration_hours = hours;
    table_opts.step_seconds = step_seconds;
    table_opts.parallel.num_threads = threads;
    table_opts.metrics = metrics;
    const netdesign::ValueTable table =
        netdesign::build_value_table(sats, pool, &wx, table_opts);

    core::SimulationOptions sim_opts;
    sim_opts.start = start;
    sim_opts.duration_hours = hours;
    sim_opts.step_seconds = step_seconds;
    sim_opts.parallel.num_threads = threads;
    const netdesign::SubsetEvaluator evaluator(sats, pool, &wx, sim_opts);

    netdesign::SweepOptions sweep;
    sweep.ks = ks;
    sweep.budget = budget;
    sweep.refine = refine;
    const std::vector<netdesign::FrontPoint> front =
        netdesign::budget_sweep(table, pool, evaluator, sweep, metrics);
    if (front.empty()) {
      std::fprintf(stderr, "error: budget admits no stations\n");
      return 1;
    }

    netdesign::FrontIdentity identity;
    identity.pool_size = net.pool_size;
    identity.pool_seed = static_cast<long long>(net.pool_seed);
    identity.num_satellites = net.num_satellites;
    identity.network_seed = static_cast<long long>(net.seed);
    identity.weather_seed = static_cast<long long>(kWeatherSeed);
    identity.duration_hours = hours;
    identity.step_seconds = step_seconds;

    std::printf("pool %d sites, %d satellites, %.1f h @ %.0f s%s\n",
                net.pool_size, net.num_satellites, hours, step_seconds,
                refine ? ", local-search refinement" : "");
    std::printf("%6s %10s %12s %14s %14s %11s %5s\n", "K", "cost",
                "objective", "latency p50", "latency p90", "backlog",
                "front");
    const netdesign::FrontPoint* best = nullptr;
    for (const netdesign::FrontPoint& p : front) {
      std::printf("%6zu %10.2f %9.2f GB %10.1f min %10.1f min %8.2f GB %5s\n",
                  p.station_ids.size(), p.cost, p.objective_gb,
                  p.eval.latency_p50_min, p.eval.latency_p90_min,
                  p.eval.backlog_end_gb, p.dominated ? "-" : "*");
      if (!p.dominated &&
          (best == nullptr ||
           netdesign::eval_score(p.eval) < netdesign::eval_score(best->eval))) {
        best = &p;
      }
    }

    if (!front_path.empty()) {
      std::ostringstream doc;
      netdesign::write_netdesign_front(doc, identity, front);
      if (const auto err =
              core::validate_netdesign_front_json(doc.str())) {
        std::fprintf(stderr, "error: front failed validation: %s: %s\n",
                     err->where.c_str(), err->message.c_str());
        return 1;
      }
      std::ofstream out(front_path);
      out << doc.str();
      std::printf("wrote front (%zu points) to %s\n", front.size(),
                  front_path.c_str());
    }
    if (!subset_path.empty() && best != nullptr) {
      groundseg::save_station_subset(subset_path, best->station_ids);
      std::printf("wrote best subset (%zu stations, score %.2f) to %s\n",
                  best->station_ids.size(),
                  netdesign::eval_score(best->eval), subset_path.c_str());
    }
    if (!metrics_path.empty()) {
      std::ofstream out(metrics_path);
      registry.write_prometheus(out);
      std::printf("wrote %zu metric series to %s\n",
                  registry.series_count(), metrics_path.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
