#include "src/core/market.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace dgs::core {

BidMatrix::BidMatrix(std::vector<int> operator_of)
    : operator_of_(std::move(operator_of)) {
  DGS_ENSURE(!operator_of_.empty(), "empty operator mapping");
}

void BidMatrix::set_bid(int operator_id, int station, double multiplier) {
  DGS_ENSURE_GT(multiplier, 0.0);
  station_bid_[{operator_id, station}] = multiplier;
}

void BidMatrix::set_default_bid(int operator_id, double multiplier) {
  DGS_ENSURE_GT(multiplier, 0.0);
  default_bid_[operator_id] = multiplier;
}

double BidMatrix::multiplier(int sat, int station) const {
  const int op = operator_of_.at(sat);
  if (const auto it = station_bid_.find({op, station});
      it != station_bid_.end()) {
    return it->second;
  }
  if (const auto it = default_bid_.find(op); it != default_bid_.end()) {
    return it->second;
  }
  return 1.0;
}

EdgeValueModifier BidMatrix::as_modifier() const {
  return [this](int sat, int station, double base) {
    return base * multiplier(sat, station);
  };
}

TenantArbiter::TenantArbiter(std::vector<TenantSpec> tenants, int num_sats)
    : tenants_(std::move(tenants)) {
  DGS_ENSURE(!tenants_.empty(), "tenant arbiter needs at least one tenant");
  DGS_ENSURE_GT(num_sats, 0);
  tenant_of_.assign(static_cast<std::size_t>(num_sats), -1);
  double total_weight = 0.0;
  for (std::size_t t = 0; t < tenants_.size(); ++t) {
    DGS_ENSURE_GT(tenants_[t].weight, 0.0);
    total_weight += tenants_[t].weight;
    for (const int s : tenants_[t].satellites) {
      DGS_ENSURE(s >= 0 && s < num_sats,
                 "tenant '" << tenants_[t].name << "' satellite " << s
                            << " out of range [0, " << num_sats << ")");
      DGS_ENSURE(tenant_of_[static_cast<std::size_t>(s)] < 0,
                 "satellite " << s << " claimed by two tenants");
      tenant_of_[static_cast<std::size_t>(s)] = static_cast<int>(t);
    }
  }
  entitlement_.resize(tenants_.size());
  for (std::size_t t = 0; t < tenants_.size(); ++t) {
    entitlement_[t] = tenants_[t].weight / total_weight;
  }
  delivered_.assign(tenants_.size(), 0.0);
  assignments_.assign(tenants_.size(), 0);
  scale_.assign(tenants_.size(), 1.0);
  sat_scale_.assign(static_cast<std::size_t>(num_sats), 1.0);
}

double TenantArbiter::share(int t) const {
  double total = 0.0;
  for (const double d : delivered_) total += d;
  return total > 0.0 ? delivered_.at(t) / total : entitlement_.at(t);
}

void TenantArbiter::refresh_scales() {
  double total = 0.0;
  for (const double d : delivered_) total += d;
  for (std::size_t t = 0; t < tenants_.size(); ++t) {
    const double realized =
        total > 0.0 ? delivered_[t] / total : entitlement_[t];
    const double deficit =
        std::clamp(1.0 - realized / entitlement_[t], -4.0, 1.0);
    scale_[t] = std::exp2(kDeficitGain * deficit);
  }
  for (std::size_t s = 0; s < sat_scale_.size(); ++s) {
    const int t = tenant_of_[s];
    sat_scale_[s] = t >= 0 ? scale_[static_cast<std::size_t>(t)] : 1.0;
  }
}

void TenantArbiter::restore_state(std::vector<double> delivered,
                                  std::vector<std::int64_t> assignments) {
  DGS_ENSURE_EQ(delivered.size(), tenants_.size());
  DGS_ENSURE_EQ(assignments.size(), tenants_.size());
  delivered_ = std::move(delivered);
  assignments_ = std::move(assignments);
}

}  // namespace dgs::core
