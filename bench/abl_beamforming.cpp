// E12 — extension: beamforming ground stations (paper §3.3 "Beamforming").
//
// The paper leaves multi-beam stations as future work: a station that can
// split power between k satellites serves more of the contention but pays
// 10*log10(k) dB of gain per beam.  This sweep quantifies that trade-off
// on the full DGS network: at some k the per-beam MODCOD drops enough that
// total volume stops improving, while tail latency keeps improving because
// more satellites get simultaneous service.
#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace dgs;
  using namespace dgs::bench;

  std::printf("=== E12: beamforming sweep (24 h, DGS 173) ===\n\n");
  const Setup setup = make_paper_setup();
  weather::SyntheticWeatherProvider wx(kWeatherSeed, kEpoch, 25.0);

  std::printf("  %6s %12s %11s %11s %11s %12s\n", "beams", "gain/beam",
              "lat med", "lat p90", "backlog", "delivered");
  for (int beams : {1, 2, 3, 4, 8}) {
    auto stations = setup.dgs;
    for (auto& gs : stations) gs.beam_count = beams;
    const core::SimulationResult r =
        core::Simulator(setup.sats, stations, &wx, day_sim()).run();
    std::printf("  %6d %9.1f dB %7.1f min %7.1f min %8.2f GB %8.1f TB\n",
                beams, -10.0 * std::log10(static_cast<double>(beams)),
                r.latency_minutes.median(),
                r.latency_minutes.percentile(90.0), r.backlog_gb.median(),
                r.total_delivered_bytes / 1e12);
  }

  std::printf("\n  Beamforming on the *baseline* (where contention is "
              "brutal, 259 sats on 5 stations):\n");
  std::printf("  %6s %11s %11s %11s %12s\n", "beams", "lat med", "lat p90",
              "backlog", "delivered");
  for (int beams : {1, 2, 4, 6}) {
    auto stations = setup.baseline;
    for (auto& gs : stations) gs.beam_count = beams;
    const core::SimulationResult r =
        core::Simulator(setup.sats_6ch, stations, &wx, day_sim()).run();
    std::printf("  %6d %7.1f min %7.1f min %8.2f GB %8.1f TB\n", beams,
                r.latency_minutes.median(),
                r.latency_minutes.percentile(90.0), r.backlog_gb.median(),
                r.total_delivered_bytes / 1e12);
  }
  std::printf("\n  expected shape: beams buy tail latency under contention; "
              "per-beam SNR loss caps the volume gain.\n");
  return 0;
}
