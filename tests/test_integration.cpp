// End-to-end paper-shape checks at reduced scale: DGS vs the centralized
// baseline must reproduce the orderings of Fig. 3 (latency and backlog
// advantages, value-function adaptability).  Absolute numbers differ from
// the paper (synthetic geometry, shorter horizon); orderings must not.
#include <gtest/gtest.h>

#include "src/core/simulator.h"
#include "src/weather/synthetic.h"

namespace dgs::core {
namespace {

const util::Epoch kEpoch(util::DateTime{2020, 11, 4, 0, 0, 0.0});

struct Systems {
  std::vector<groundseg::SatelliteConfig> sats;
  std::vector<groundseg::GroundStation> dgs;
  std::vector<groundseg::GroundStation> dgs25;
  std::vector<groundseg::GroundStation> baseline;
};

Systems make_systems() {
  // Reduced satellite count (for runtime) but the full station network:
  // the DGS advantage needs both baseline contention (paper: 259 sats vs
  // 5 stations, ~52:1; we keep 30:1) and enough DGS(25%) stations to cover
  // the longitudes (43 stations, as in the paper).
  groundseg::NetworkOptions opts;
  opts.num_stations = 173;
  opts.num_satellites = 150;
  opts.seed = 2020;
  Systems sys;
  sys.sats = groundseg::generate_constellation(opts, kEpoch);
  sys.dgs = groundseg::generate_dgs_stations(opts);
  sys.dgs25 = groundseg::subsample_stations(sys.dgs, 0.25);
  sys.baseline = groundseg::baseline_stations();
  // Baseline radios: 6 channels on the satellite side when talking to the
  // high-end stations is modelled by upgrading the satellite radio in the
  // baseline runs (the paper's baseline combines 6 channels per link).
  return sys;
}

std::vector<groundseg::SatelliteConfig> six_channel(
    std::vector<groundseg::SatelliteConfig> sats) {
  for (auto& s : sats) s.radio.channels = 6;
  return sats;
}

SimulationOptions sim_opts(ValueKind value = ValueKind::kLatency) {
  SimulationOptions o;
  o.start = kEpoch;
  o.duration_hours = 12.0;
  o.step_seconds = 60.0;
  o.value = value;
  return o;
}

class PaperShape : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sys_ = new Systems(make_systems());
    wx_ = new weather::SyntheticWeatherProvider(777, kEpoch, 13.0);

    dgs_ = new SimulationResult(
        Simulator(sys_->sats, sys_->dgs, wx_, sim_opts()).run());
    dgs25_ = new SimulationResult(
        Simulator(sys_->sats, sys_->dgs25, wx_, sim_opts()).run());
    baseline_ = new SimulationResult(
        Simulator(six_channel(sys_->sats), sys_->baseline, wx_, sim_opts())
            .run());
  }
  static void TearDownTestSuite() {
    delete dgs_;
    delete dgs25_;
    delete baseline_;
    delete wx_;
    delete sys_;
    dgs_ = dgs25_ = baseline_ = nullptr;
    wx_ = nullptr;
    sys_ = nullptr;
  }

  static Systems* sys_;
  static weather::SyntheticWeatherProvider* wx_;
  static SimulationResult* dgs_;
  static SimulationResult* dgs25_;
  static SimulationResult* baseline_;
};

Systems* PaperShape::sys_ = nullptr;
weather::SyntheticWeatherProvider* PaperShape::wx_ = nullptr;
SimulationResult* PaperShape::dgs_ = nullptr;
SimulationResult* PaperShape::dgs25_ = nullptr;
SimulationResult* PaperShape::baseline_ = nullptr;

TEST_F(PaperShape, AllSystemsDeliverData) {
  EXPECT_GT(dgs_->total_delivered_bytes, 0.0);
  EXPECT_GT(dgs25_->total_delivered_bytes, 0.0);
  EXPECT_GT(baseline_->total_delivered_bytes, 0.0);
}

TEST_F(PaperShape, DgsLatencyBeatsBaseline) {
  // Fig. 3b: DGS median and tail latency are several times lower.
  EXPECT_LT(dgs_->latency_minutes.median(),
            baseline_->latency_minutes.median());
  EXPECT_LT(dgs_->latency_minutes.percentile(90.0),
            baseline_->latency_minutes.percentile(90.0));
}

TEST_F(PaperShape, EvenQuarterDgsLatencyBeatsBaseline) {
  // The paper's key claim: geographic diversity, not aggregate capacity,
  // drives latency; DGS(25%) has less capacity than the baseline yet much
  // lower latency.
  EXPECT_LT(dgs25_->latency_minutes.median(),
            baseline_->latency_minutes.median());
  EXPECT_LT(dgs25_->latency_minutes.percentile(90.0),
            baseline_->latency_minutes.percentile(90.0));
}

TEST_F(PaperShape, DgsBacklogBeatsBaseline) {
  // Fig. 3a: the full DGS network keeps backlog below the baseline.
  EXPECT_LT(dgs_->backlog_gb.median(), baseline_->backlog_gb.median() + 1e-9);
  EXPECT_LT(dgs_->backlog_gb.percentile(90.0),
            baseline_->backlog_gb.percentile(90.0) + 1e-9);
}

TEST_F(PaperShape, QuarterDgsBetweenFullAndNothing) {
  // DGS(25%) backlog sits at or above full DGS.
  EXPECT_GE(dgs25_->backlog_gb.median(), dgs_->backlog_gb.median() - 1e-9);
  // And its latency at or above full DGS.
  EXPECT_GE(dgs25_->latency_minutes.median(),
            dgs_->latency_minutes.median() - 1e-9);
}

TEST_F(PaperShape, ThroughputValueRaisesLatencyTail) {
  // Fig. 3c: switching Phi from latency to throughput raises the tail
  // latency on the same network.
  const SimulationResult t =
      Simulator(sys_->sats, sys_->dgs25, wx_, sim_opts(ValueKind::kThroughput))
          .run();
  EXPECT_GE(t.latency_minutes.percentile(90.0),
            dgs25_->latency_minutes.percentile(90.0));
  // ...without delivering less data overall (it is throughput-optimized).
  EXPECT_GE(t.total_delivered_bytes, dgs25_->total_delivered_bytes * 0.95);
}

TEST_F(PaperShape, BaselineStationsAreBusier) {
  // Five baseline stations serve everything: near-saturated; DGS spreads
  // the load thin.
  EXPECT_GT(baseline_->mean_station_utilization,
            dgs_->mean_station_utilization);
}

}  // namespace
}  // namespace dgs::core
