// Deterministic fork-join thread pool for the simulation hot loops.
//
// The pool runs chunked index-range parallel-for jobs over a fixed set of
// worker threads (the calling thread participates as one lane).  Chunk
// boundaries depend only on `chunk_size`, never on the thread count or on
// scheduling, so any algorithm that writes per-index outputs — or reduces
// per-chunk partials in chunk order (`reduce_ordered`) — produces results
// bit-identical to a serial run.  See DESIGN.md §9 "Threading model".
//
// Guarantees:
//   * body is invoked exactly once per chunk, with chunk-aligned ranges
//     [c*chunk_size, min(n, (c+1)*chunk_size)), for c = 0, 1, ...;
//   * exceptions thrown by the body are captured (first one wins), the
//     remaining chunks are abandoned, and the exception is rethrown on the
//     calling thread;
//   * a parallel_for issued from inside a running region (nested submit,
//     from a worker or the caller lane) runs inline on that thread —
//     never deadlocks, same chunking;
//   * with num_threads == 1 the pool spawns no workers and parallel_for
//     degenerates to the serial chunked loop.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dgs::util {

/// Detected hardware lane count, never less than 1.  The only sanctioned
/// way to read std::thread::hardware_concurrency() outside this module
/// (dgslint R3 keeps raw threading primitives behind ThreadPool).
inline int hardware_concurrency() {
  return std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
}

/// Parallelism knobs threaded through SimulationOptions and the bench
/// `--threads` flag.
struct ParallelConfig {
  /// Total lanes (workers + calling thread).  1 = serial (today's
  /// behaviour, the default); 0 = hardware concurrency.
  int num_threads = 1;
  /// Iterations per chunk.  Fixed chunking keeps ordered reductions
  /// independent of the thread count; tune for task granularity only.
  int chunk_size = 16;
};

class ThreadPool {
 public:
  explicit ThreadPool(const ParallelConfig& config = {});
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total lanes: worker threads + the calling thread.
  int concurrency() const { return static_cast<int>(workers_.size()) + 1; }
  int chunk_size() const { return static_cast<int>(chunk_); }

  /// Invoked with a chunk-aligned [begin, end) subrange of [0, n).
  using RangeBody = std::function<void(std::int64_t, std::int64_t)>;

  /// Runs `body` over [0, n) in chunks; blocks until every chunk finished.
  /// Rethrows the first exception a chunk raised.  Safe to call again after
  /// an exception.  Must not be called concurrently from multiple external
  /// threads (one fork-join region at a time); nested calls from worker
  /// threads run inline.
  void parallel_for(std::int64_t n, const RangeBody& body);

  /// out[i] = fn(i) for i in [0, n).  Per-index writes, so the result is
  /// identical for any thread count.
  template <typename T, typename Fn>
  std::vector<T> map(std::int64_t n, Fn&& fn) {
    std::vector<T> out(static_cast<std::size_t>(n > 0 ? n : 0));
    parallel_for(n, [&](std::int64_t begin, std::int64_t end) {
      for (std::int64_t i = begin; i < end; ++i) {
        out[static_cast<std::size_t>(i)] = fn(i);
      }
    });
    return out;
  }

  /// Deterministic ordered reduction: computes one partial per chunk (in
  /// parallel), then folds the partials in ascending chunk order on the
  /// calling thread.  Because chunk boundaries are fixed by `chunk_size`,
  /// the fold sequence — and therefore the result, bit for bit — is
  /// independent of the thread count.
  /// `map_chunk(begin, end) -> T`; `reduce(acc, partial) -> T`.
  template <typename T, typename MapFn, typename ReduceFn>
  T reduce_ordered(std::int64_t n, T init, MapFn&& map_chunk,
                   ReduceFn&& reduce) {
    if (n <= 0) return init;
    const std::int64_t chunks = (n + chunk_ - 1) / chunk_;
    std::vector<T> partials(static_cast<std::size_t>(chunks));
    parallel_for(n, [&](std::int64_t begin, std::int64_t end) {
      partials[static_cast<std::size_t>(begin / chunk_)] =
          map_chunk(begin, end);
    });
    T acc = std::move(init);
    for (T& p : partials) acc = reduce(std::move(acc), std::move(p));
    return acc;
  }

 private:
  void worker_loop();
  /// Pulls chunks off the shared counter until the job is exhausted (or a
  /// chunk failed).  Runs on workers and on the calling thread alike.
  void run_chunks(const RangeBody& body, std::int64_t n);
  void run_serial(std::int64_t n, const RangeBody& body);

  std::int64_t chunk_ = 16;

  // Job slot (one fork-join region at a time, guarded by job_mutex_).
  std::mutex job_mutex_;
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  const RangeBody* body_ = nullptr;   // guarded by wake_mutex_
  std::int64_t n_ = 0;                // guarded by wake_mutex_
  std::uint64_t job_seq_ = 0;         // guarded by wake_mutex_
  int remaining_ = 0;                 // workers yet to finish, wake_mutex_
  bool stop_ = false;                 // guarded by wake_mutex_
  std::atomic<std::int64_t> next_chunk_{0};
  std::atomic<bool> failed_{false};
  std::mutex error_mutex_;
  std::exception_ptr error_;          // guarded by error_mutex_

  std::vector<std::thread> workers_;
};

}  // namespace dgs::util
