#include "src/groundseg/station.h"

#include <algorithm>

namespace dgs::groundseg {

std::size_t DownlinkConstraints::denied_count() const {
  return static_cast<std::size_t>(
      std::count(bits_.begin(), bits_.end(), false));
}

void GroundStation::refresh_ecef() {
  ecef_ = orbit::geodetic_to_ecef(location);
}

}  // namespace dgs::groundseg
