// Satellite on-board data store with ack-free downlink semantics (paper
// §3.3): data that has been transmitted to a receive-only station cannot be
// discarded until an acknowledgement arrives via a transmit-capable contact,
// so the store tracks two populations — queued (not yet sent) and
// pending-ack (sent, still occupying storage).
#pragma once

#include <deque>
#include <functional>
#include <string>

#include "src/util/time.h"

namespace dgs::core {

/// A contiguous block of captured imagery awaiting downlink.
struct DataChunk {
  util::Epoch capture;
  double total_bytes = 0.0;
  double remaining_bytes = 0.0;
  /// Operator-assigned priority (paper §3.1: Phi can "prioritize data based
  /// on geography, e.g. to honor SLAs"; §3.3: latency-sensitive tiers for
  /// disaster imagery).  1.0 = bulk imagery; higher = more urgent.  The
  /// queue serves strictly by (priority desc, capture asc).
  double priority = 1.0;
};

/// Invoked once per chunk when its last byte reaches the ground:
/// (capture-to-reception latency in seconds, the delivered chunk).
using DeliveryCallback = std::function<void(double, const DataChunk&)>;
/// Invoked per acknowledged transmission batch:
/// (transmit-to-ack delay in seconds, bytes acknowledged).
using AckCallback = std::function<void(double, double)>;

class OnboardQueue {
 public:
  /// Caps total on-board storage (queued + pending-ack); data captured
  /// while full is dropped at the sensor (tail drop) and counted in
  /// dropped_bytes().  Paper §3.3: because acks arrive late, DGS does not
  /// reduce the storage requirement — this models what happens when the
  /// recorder actually fills.  Default: unlimited.
  void set_capacity(double bytes);

  /// Adds newly captured data at `priority` (>= 0).  The queue keeps
  /// chunks sorted by (priority desc, capture asc), so urgent data jumps
  /// ahead of the bulk backlog.  Bytes beyond the storage capacity are
  /// dropped.  No-op for zero bytes; throws std::invalid_argument for
  /// negative sizes or priority.
  void generate(double bytes, const util::Epoch& capture,
                double priority = 1.0);

  /// Transmits up to `budget_bytes` in queue order (priority desc, oldest
  /// first) at time `now`.  `received` says whether the ground actually
  /// captured the transmission (the satellite cannot tell — receive-only
  /// stations give no feedback):
  ///   * received == true: completed chunks fire `on_delivered`, and the
  ///     bytes await a positive ack.
  ///   * received == false (mis-predicted MODCOD, §3.2): the bytes still
  ///     leave the queue and occupy storage, but at the next
  ///     transmit-capable contact the collated report marks them missing
  ///     and they are re-queued with their original capture times —
  ///     the paper's "missing pieces" loop (§3).
  /// `report_delay_s` >= 0 delays when the station's report about this
  /// batch reaches the operator (ack-relay Internet faults, DESIGN.md
  /// §11): acknowledge_all ignores the batch until `now + report_delay_s`.
  /// Returns bytes actually sent (min of budget and queue).
  double transmit(double budget_bytes, const util::Epoch& now,
                  const DeliveryCallback& on_delivered, bool received = true,
                  double report_delay_s = 0.0);

  /// Processes the collated report at a transmit-capable contact: batches
  /// the ground received are freed (firing `on_ack` per batch); batches it
  /// missed are re-queued for retransmission.  Batches whose report is
  /// still in flight (report_delay_s on transmit) stay pending for a
  /// later contact.  Returns re-queued bytes.
  double acknowledge_all(const util::Epoch& now, const AckCallback& on_ack);

  double queued_bytes() const { return queued_bytes_; }
  double pending_ack_bytes() const { return pending_bytes_; }
  /// Total storage the satellite cannot reclaim yet.
  double storage_bytes() const { return queued_bytes_ + pending_bytes_; }
  /// Bytes lost at the sensor because storage was full.
  double dropped_bytes() const { return dropped_bytes_; }
  /// Lifetime bytes the sensor attempted to capture (accepted + dropped).
  double offered_bytes() const { return offered_bytes_; }
  /// Lifetime bytes freed by a positive acknowledgement.
  double acked_bytes() const { return acked_bytes_; }

  /// Conservation audit over the queue's whole history: every offered byte
  /// must be exactly one of dropped, still queued, awaiting ack, or freed
  /// by an ack — nothing silently created or destroyed.  Returns an empty
  /// string when the books balance (within float tolerance), else a
  /// description of the imbalance.  The simulator runs this per step under
  /// DGS_DCHECK.
  std::string audit_conservation() const;

  /// Capture time of the chunk at the head of the service order; only
  /// valid when queued_bytes() > 0.
  const util::Epoch& oldest_capture() const { return chunks_.front().capture; }

  /// Read access for value functions, in service order (priority desc,
  /// then oldest first).
  const std::deque<DataChunk>& chunks() const { return chunks_; }

  /// One in-flight transmission batch (public for checkpoint I/O; the
  /// service semantics live entirely in transmit/acknowledge_all).
  struct PendingBatch {
    util::Epoch sent;
    util::Epoch report_ready;        ///< Report available from here on.
    double bytes = 0.0;
    bool received = true;            ///< Ground captured the transmission.
    std::deque<DataChunk> pieces;    ///< For re-queue when !received.
  };

  /// Checkpoint access (core::Session).  The aggregates are restored
  /// verbatim rather than recomputed so a resumed run's floating-point
  /// books are bit-identical to an uninterrupted one.
  const std::deque<PendingBatch>& pending_batches() const { return pending_; }
  double capacity_bytes() const { return capacity_bytes_; }
  void restore_state(std::deque<DataChunk> chunks,
                     std::deque<PendingBatch> pending, double queued_bytes,
                     double pending_bytes, double dropped_bytes,
                     double offered_bytes, double acked_bytes) {
    chunks_ = std::move(chunks);
    pending_ = std::move(pending);
    queued_bytes_ = queued_bytes;
    pending_bytes_ = pending_bytes;
    dropped_bytes_ = dropped_bytes;
    offered_bytes_ = offered_bytes;
    acked_bytes_ = acked_bytes;
  }

 private:
  void insert_sorted(DataChunk chunk);

  std::deque<DataChunk> chunks_;
  std::deque<PendingBatch> pending_;
  double queued_bytes_ = 0.0;
  double pending_bytes_ = 0.0;
  double capacity_bytes_ = 0.0;  ///< 0 == unlimited.
  double dropped_bytes_ = 0.0;
  double offered_bytes_ = 0.0;  ///< Lifetime capture attempts.
  double acked_bytes_ = 0.0;    ///< Lifetime positively-acked bytes.
};

}  // namespace dgs::core
